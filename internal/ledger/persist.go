package ledger

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
)

// Ledger persistence mirrors the serve layer's jobs.jsonl discipline:
// one JSON line appended per transition, the file is never rewritten,
// the last record per reference wins (states only move forward, so
// replay applies transitions in file order and stale duplicates are
// no-ops), and corrupt or torn lines are skipped rather than fatal.
// Committed charges persist their accountant *parameters*, not the RDP
// floats — replay re-derives each curve and re-accumulates in original
// commit order, which reproduces the committed balance bit for bit.

// record is one ledger.jsonl line.
type record struct {
	Ref    string `json:"ref"`
	Tenant string `json:"tenant"`
	Graph  string `json:"graph"`
	// State is the transition: reserved, committed, refunded, forfeited.
	State string `json:"state"`
	// Eps is the ε the transition moved: the reservation amount, the
	// scalar committed spend, or the refunded/forfeited reservation.
	Eps float64 `json:"eps"`
	// Charge holds the committed run's accounting (committed records).
	Charge *Charge `json:"charge,omitempty"`
}

// appendLocked durably appends one record; the caller holds l.mu, which
// also serializes writers, so file order equals in-memory apply order.
// Persistence failures are logged, not fatal — the ledger keeps
// enforcing with in-memory state (same stance as the job table).
func (l *Ledger) appendLocked(rec record) {
	if l.opts.Path == "" {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		l.opts.Logf("ledger: marshal %s %s: %v", rec.State, rec.Ref, err)
		return
	}
	f, err := os.OpenFile(l.opts.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.opts.Logf("ledger: %v", err)
		return
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		l.opts.Logf("ledger: append %s: %v", rec.Ref, err)
	}
}

// replay restores the ledger from Options.Path. A missing file is a
// fresh ledger, not an error.
func (l *Ledger) replay() error {
	f, err := os.Open(l.opts.Path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	l.mu.Lock()
	defer l.mu.Unlock()
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec record
		// Every state except an anonymous commit needs a reference.
		if err := json.Unmarshal(line, &rec); err != nil || (rec.Ref == "" && rec.State != stateCommitted) {
			l.opts.Logf("ledger: %s: skipping corrupt line %d", l.opts.Path, lineNo)
			continue
		}
		switch rec.State {
		case stateReserved:
			l.applyReserveLocked(rec)
		case stateCommitted:
			l.applyCommitLocked(rec)
		case stateRefunded:
			l.applyRefundLocked(rec)
		case stateForfeited:
			l.applyForfeitLocked(rec)
		default:
			l.opts.Logf("ledger: %s: skipping unknown state %q on line %d", l.opts.Path, rec.State, lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		l.opts.Logf("ledger: %s: %v (replayed %d line(s) before the error)", l.opts.Path, err, lineNo)
	}
	return nil
}
