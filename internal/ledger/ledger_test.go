package ledger

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"privim/internal/dp"
	"privim/internal/obs"
)

const fpA = "00000000deadbeef"

func testAcct() dp.Accountant { return dp.Accountant{M: 64, B: 16, Ng: 4, Sigma: 2} }

func trainCharge(acct dp.Accountant, T int, delta float64) Charge {
	return Charge{Acct: acct, Iterations: T, Epsilon: acct.Epsilon(T, delta)}
}

func mustOpen(t *testing.T, opts Options) *Ledger {
	t.Helper()
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestReserveCommitLifecycle(t *testing.T) {
	l := mustOpen(t, Options{Budget: 10})
	if err := l.Reserve("job-1", "acme", fpA, 3); err != nil {
		t.Fatal(err)
	}
	b := l.Balance("acme", fpA)
	if b.Reserved != 3 || b.Committed != 0 || b.Remaining != 7 || !b.Enforced {
		t.Fatalf("after reserve: %+v", b)
	}
	ch := trainCharge(testAcct(), 10, 1e-5)
	l.Commit("job-1", "acme", fpA, ch)
	b = l.Balance("acme", fpA)
	if b.Reserved != 0 {
		t.Fatalf("commit left reservation: %+v", b)
	}
	if b.Committed <= 0 || b.Committed > ch.Epsilon*1.0001 {
		t.Fatalf("committed %v, want (0, %v]", b.Committed, ch.Epsilon)
	}
	// Unknown tenants are empty, not errors.
	if b := l.Balance("ghost", fpA); b.Committed != 0 || b.Reserved != 0 {
		t.Fatalf("ghost tenant: %+v", b)
	}
}

func TestReserveDeniesWhenExhausted(t *testing.T) {
	l := mustOpen(t, Options{Budget: 5})
	if err := l.Reserve("a", "t", fpA, 4); err != nil {
		t.Fatal(err)
	}
	err := l.Reserve("b", "t", fpA, 2)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("over-budget reserve = %v, want ErrExhausted", err)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error %T carries no ExhaustedError", err)
	}
	if ex.Requested != 2 || ex.Balance.Remaining != 1 {
		t.Fatalf("denial detail: %+v", ex)
	}
	// Another tenant, and another graph of the same tenant, are isolated.
	if err := l.Reserve("c", "other", fpA, 4); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve("d", "t", "feedfacefeedface", 4); err != nil {
		t.Fatal(err)
	}
	// Refund frees the budget again.
	l.Refund("a")
	if err := l.Reserve("e", "t", fpA, 5); err != nil {
		t.Fatalf("reserve after refund: %v", err)
	}
}

func TestReserveValidation(t *testing.T) {
	l := mustOpen(t, Options{Budget: 5})
	for _, eps := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if err := l.Reserve("r", "t", fpA, eps); err == nil {
			t.Fatalf("reserve ε=%v accepted", eps)
		}
	}
	if err := l.Reserve("dup", "t", fpA, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve("dup", "t", fpA, 1); err == nil {
		t.Fatal("duplicate reference accepted")
	}
}

// TestRDPCompositionTighterThanScalar: two half-length runs committed as
// RDP curves compose to exactly one full-length run's ε — strictly below
// the naive sum of their individual guarantees.
func TestRDPCompositionTighterThanScalar(t *testing.T) {
	const delta = 1e-5
	acct := testAcct()
	l := mustOpen(t, Options{Delta: delta})
	half := trainCharge(acct, 20, delta)
	l.Commit("r1", "t", fpA, half)
	l.Commit("r2", "t", fpA, half)
	got := l.Balance("t", fpA).Committed
	want := acct.Epsilon(40, delta)
	if rel := math.Abs(got-want) / want; rel > 1e-12 {
		t.Fatalf("RDP-composed spend %v, one full run %v (rel %v)", got, want, rel)
	}
	if naive := 2 * half.Epsilon; got >= naive {
		t.Fatalf("RDP composition %v not tighter than naive sum %v", got, naive)
	}
}

func TestScalarCommitAndForfeit(t *testing.T) {
	l := mustOpen(t, Options{Budget: 10})
	// A failed run commits only its observed scalar spend.
	if err := l.Reserve("fail", "t", fpA, 3); err != nil {
		t.Fatal(err)
	}
	l.Commit("fail", "t", fpA, Charge{Epsilon: 0.5})
	if b := l.Balance("t", fpA); b.Committed != 0.5 || b.Reserved != 0 {
		t.Fatalf("after scalar commit: %+v", b)
	}
	// An interrupted run with unknowable spend forfeits everything it
	// reserved.
	if err := l.Reserve("lost", "t", fpA, 2); err != nil {
		t.Fatal(err)
	}
	l.Forfeit("lost")
	if b := l.Balance("t", fpA); b.Committed != 2.5 || b.Reserved != 0 {
		t.Fatalf("after forfeit: %+v", b)
	}
	// Terminal refs stay terminal: double commit/refund/forfeit are no-ops.
	l.Commit("fail", "t", fpA, Charge{Epsilon: 9})
	l.Refund("lost")
	l.Forfeit("fail")
	if b := l.Balance("t", fpA); b.Committed != 2.5 {
		t.Fatalf("terminal refs moved the balance: %+v", b)
	}
}

// TestReplayBitForBit: a restarted ledger replays ledger.jsonl to the
// exact committed and reserved balances, bit for bit.
func TestReplayBitForBit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	opts := Options{Budget: 20, Path: path}
	l1 := mustOpen(t, opts)
	acct := testAcct()
	if err := l1.Reserve("j1", "a", fpA, 3); err != nil {
		t.Fatal(err)
	}
	l1.Commit("j1", "a", fpA, trainCharge(acct, 10, 1e-5))
	if err := l1.Reserve("j2", "a", fpA, 2); err != nil {
		t.Fatal(err)
	}
	if err := l1.Reserve("j3", "b", fpA, 1.5); err != nil {
		t.Fatal(err)
	}
	l1.Refund("j3")
	l1.Commit("j4", "a", fpA, Charge{Epsilon: 0.25}) // commit without reserve
	want := l1.Balance("a", fpA)

	l2 := mustOpen(t, opts)
	got := l2.Balance("a", fpA)
	if math.Float64bits(got.Committed) != math.Float64bits(want.Committed) {
		t.Fatalf("replayed committed %v != original %v", got.Committed, want.Committed)
	}
	if math.Float64bits(got.Reserved) != math.Float64bits(want.Reserved) {
		t.Fatalf("replayed reserved %v != original %v", got.Reserved, want.Reserved)
	}
	// The outstanding reservation survived the restart: committing it now
	// must not double-spend, and re-reserving its ref must fail.
	if l2.Reserved("j2") != 2 {
		t.Fatalf("reservation j2 lost in replay: %v", l2.Reserved("j2"))
	}
	if err := l2.Reserve("j2", "a", fpA, 2); err == nil {
		t.Fatal("replayed ledger accepted duplicate ref")
	}
	if b := l2.Balance("b", fpA); b.Committed != 0 || b.Reserved != 0 {
		t.Fatalf("refunded tenant b balance: %+v", b)
	}
}

func TestReplaySkipsCorruptLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l1 := mustOpen(t, Options{Budget: 10, Path: path})
	if err := l1.Reserve("j1", "t", fpA, 1); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"ref\":\"torn\n\x00garbage\n{\"state\":\"committed\"}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l1.Commit("j1", "t", fpA, Charge{Epsilon: 0.75})

	l2 := mustOpen(t, Options{Budget: 10, Path: path})
	if b := l2.Balance("t", fpA); b.Committed != 0.75 || b.Reserved != 0 {
		t.Fatalf("balance after corrupt-line replay: %+v", b)
	}
}

func TestLedgerEvents(t *testing.T) {
	var ops []obs.LedgerOp
	l := mustOpen(t, Options{Budget: 2, Observer: obs.ObserverFunc(func(e obs.Event) {
		if op, ok := e.(obs.LedgerOp); ok {
			ops = append(ops, op)
		}
	})})
	if err := l.Reserve("j1", "t", fpA, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve("j2", "t", fpA, 1); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want deny, got %v", err)
	}
	l.Commit("j1", "t", fpA, Charge{Epsilon: 1.25})
	kinds := make([]string, len(ops))
	for i, op := range ops {
		kinds[i] = op.Op
	}
	want := []string{"reserve", "deny", "commit"}
	if len(kinds) != len(want) {
		t.Fatalf("ops %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("ops %v, want %v", kinds, want)
		}
	}
	if last := ops[len(ops)-1]; last.Committed != 1.25 || last.Reserved != 0 {
		t.Fatalf("commit event totals: %+v", last)
	}
	// The registry aggregates the same events into per-tenant gauges.
	reg := obs.NewRegistry()
	reg.Emit(ops[len(ops)-1])
	snap := reg.Snapshot()
	if v, ok := snap[obs.Labeled("ledger.epsilon_committed", "tenant", "t")]; !ok || v.(float64) != 1.25 {
		t.Fatalf("per-tenant committed gauge missing or wrong: %v", snap)
	}
}

func TestUnenforcedLedgerTracksButNeverDenies(t *testing.T) {
	l := mustOpen(t, Options{})
	for i := 0; i < 5; i++ {
		l.Commit("", "t", fpA, Charge{Epsilon: 100})
	}
	b := l.Balance("t", fpA)
	if b.Enforced || b.Budget != 0 || b.Remaining != 0 {
		t.Fatalf("unenforced balance: %+v", b)
	}
	if b.Committed != 500 {
		t.Fatalf("committed %v, want 500", b.Committed)
	}
	if err := l.Reserve("r", "t", fpA, 1e9); err != nil {
		t.Fatalf("unenforced reserve denied: %v", err)
	}
}

func TestOpenRejectsBadDelta(t *testing.T) {
	for _, d := range []float64{-1, 1, 2} {
		if _, err := Open(Options{Delta: d}); err == nil {
			t.Fatalf("delta %v accepted", d)
		}
	}
}

// TestPublishPositions: a replayed ledger re-emits per-tenant positions
// so observers (the per-tenant gauges, burn-rate history) start from the
// persisted balance instead of zero.
func TestPublishPositions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l1 := mustOpen(t, Options{Budget: 10, Path: path})
	l1.Commit("j1", "a", fpA, Charge{Epsilon: 2})
	l1.Commit("j2", "b", fpA, Charge{Epsilon: 0.5})

	var ops []obs.LedgerOp
	l2 := mustOpen(t, Options{Budget: 10, Path: path, Observer: obs.ObserverFunc(func(e obs.Event) {
		if op, ok := e.(obs.LedgerOp); ok {
			ops = append(ops, op)
		}
	})})
	if len(ops) != 0 {
		t.Fatalf("replay itself emitted %d events, want 0", len(ops))
	}
	l2.PublishPositions()
	if len(ops) != 2 {
		t.Fatalf("PublishPositions emitted %d events, want one per tenant: %+v", len(ops), ops)
	}
	// Sorted tenant order, committed totals from the replayed state.
	if ops[0].Tenant != "a" || ops[0].Op != "sync" || ops[0].Committed != 2 {
		t.Fatalf("ops[0] = %+v", ops[0])
	}
	if ops[1].Tenant != "b" || ops[1].Committed != 0.5 {
		t.Fatalf("ops[1] = %+v", ops[1])
	}

	// No observer: a safe no-op.
	l1.PublishPositions()
}
