// Package ledger is the cross-job privacy-budget accounting layer: a
// crash-safe ledger of differential-privacy spend keyed on
// (tenant, graph fingerprint), composed at the Rényi-DP level over
// internal/dp's alpha grid so repeated training runs against the same
// graph compose tighter than naive ε-summation.
//
// Theorem 1/3 of the paper cover one training run; a serving daemon that
// accepts unlimited /v1/train jobs against the same graph lets the
// composed privacy loss grow unbounded. The ledger makes the daemon's DP
// story end-to-end with a reserve → commit/refund lifecycle:
//
//   - Reserve takes the job's requested ε off the budget at admission,
//     before the job is queued — an exhausted budget denies admission;
//   - Commit replaces the reservation with the actually-spent privacy
//     loss at completion, as an RDP curve when the run's accountant
//     parameters are known (tight composition) or as a scalar ε when
//     only the observed spend survives (failed runs);
//   - Refund releases the reservation of a job that never spent
//     anything (canceled while queued);
//   - Forfeit commits the full reservation of a job whose true spend is
//     unknowable (interrupted without a resumable checkpoint) — the
//     conservative, privacy-safe resolution.
//
// With a path configured the ledger is durable: every transition appends
// one JSON line to an append-only ledger.jsonl (same discipline as the
// serve layer's jobs.jsonl — last record per reference wins, corrupt
// lines are skipped), and Open replays the file so a restarted daemon
// resumes with the exact committed balance, bit for bit: committed RDP
// curves are re-derived from the persisted accountant parameters and
// re-accumulated in original commit order.
package ledger

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"privim/internal/dp"
	"privim/internal/obs"
)

// ErrExhausted is the sentinel all budget denials unwrap to.
var ErrExhausted = errors.New("privacy budget exhausted")

// ExhaustedError is a denial with the machine-readable budget position
// the HTTP layer serializes into the 403 body.
type ExhaustedError struct {
	Balance   Balance
	Requested float64
}

// Error implements error.
func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("privacy budget exhausted for tenant %q graph %s: requested ε=%g, remaining ε=%g (budget %g, committed %g, reserved %g)",
		e.Balance.Tenant, e.Balance.Graph, e.Requested, e.Balance.Remaining,
		e.Balance.Budget, e.Balance.Committed, e.Balance.Reserved)
}

// Unwrap lets errors.Is(err, ErrExhausted) match.
func (e *ExhaustedError) Unwrap() error { return ErrExhausted }

// Charge describes the privacy loss of one completed training run.
type Charge struct {
	// Acct carries the run's accountant parameters (M, B, Ng, σ). When
	// valid and Iterations > 0, the charge composes at the RDP level:
	// its per-order curve Acct.RDPCurve(Iterations) adds into the
	// entry's accumulated curve. Deterministically re-derivable, so the
	// ledger persists the parameters, not the floats of the curve.
	Acct dp.Accountant `json:"acct"`
	// Iterations is the run's completed iteration count T.
	Iterations int `json:"iterations,omitempty"`
	// Epsilon is the run's own (ε, δ) guarantee — the scalar spend used
	// when the accountant parameters are absent (e.g. a failed run where
	// only the trainer's last observed ε survives). Scalars compose by
	// summation: valid, just looser than the RDP path.
	Epsilon float64 `json:"epsilon"`
}

// composable reports whether the charge carries a usable RDP curve.
func (c Charge) composable() bool {
	return c.Iterations > 0 && c.Acct.Validate() == nil
}

// Balance is the public budget position of one (tenant, graph) entry.
type Balance struct {
	Tenant string `json:"tenant"`
	// Graph is the graph.Fingerprint hex the entry is keyed on.
	Graph string `json:"graph"`
	// Budget is the enforced per-entry ε limit (0 when unenforced).
	Budget float64 `json:"budget,omitempty"`
	// Committed is the composed spend of every committed charge: the
	// accumulated RDP curve converted via Theorem 1 at the ledger's δ,
	// plus any scalar commits.
	Committed float64 `json:"committed"`
	// Reserved is the ε held by outstanding reservations.
	Reserved float64 `json:"reserved"`
	// Remaining is budget − committed − reserved, floored at 0; 0 when
	// unenforced.
	Remaining float64 `json:"remaining"`
	// Enforced says whether Reserve can deny (a budget is configured).
	Enforced bool `json:"enforced"`
}

// Options configure Open.
type Options struct {
	// Budget is the per-(tenant, graph) ε limit Reserve enforces; <= 0
	// disables enforcement (the ledger still records every spend).
	Budget float64
	// Delta is the δ at which accumulated RDP converts to the committed
	// ε (default 1e-5). Fixed per ledger: composing guarantees at
	// different δ is not meaningful.
	Delta float64
	// Path is the append-only JSONL ledger file; "" keeps the ledger in
	// memory only (tests, enforcement without durability).
	Path string
	// Observer receives a LedgerOp event per transition (nil = none).
	Observer obs.Observer
	// Logf receives operational log lines (default: discard).
	Logf func(string, ...any)
}

// key identifies one budget entry.
type key struct{ tenant, graph string }

// entry accumulates the committed spend and outstanding reservations of
// one (tenant, graph). rdp is the elementwise sum of every composable
// commit's curve, in commit order — replay re-adds in file order, which
// is the same order, so the float sum is bit-for-bit reproducible.
type entry struct {
	rdp      []float64
	scalar   float64
	reserved map[string]float64
}

// refState tracks one reservation reference through its lifecycle so
// replay and retries are idempotent.
type refState struct {
	tenant, graph string
	eps           float64
	state         string // stateReserved | stateCommitted | stateRefunded | stateForfeited
}

const (
	stateReserved  = "reserved"
	stateCommitted = "committed"
	stateRefunded  = "refunded"
	stateForfeited = "forfeited"
)

// Ledger is the cross-job budget store. Safe for concurrent use.
type Ledger struct {
	mu      sync.Mutex
	opts    Options
	entries map[key]*entry
	refs    map[string]*refState
}

// Open builds a ledger, replaying Options.Path when it exists.
func Open(opts Options) (*Ledger, error) {
	if opts.Delta == 0 {
		opts.Delta = 1e-5
	}
	if opts.Delta <= 0 || opts.Delta >= 1 {
		return nil, fmt.Errorf("ledger: delta %v outside (0, 1)", opts.Delta)
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	l := &Ledger{
		opts:    opts,
		entries: make(map[key]*entry),
		refs:    make(map[string]*refState),
	}
	if opts.Path != "" {
		if err := l.replay(); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Enforced reports whether Reserve can deny admissions.
func (l *Ledger) Enforced() bool { return l.opts.Budget > 0 }

// Delta is the δ the ledger composes at. Runs charged to the ledger
// should train at this δ: a run calibrated at a looser δ converts to a
// larger ε here and can commit more than it reserved.
func (l *Ledger) Delta() float64 { return l.opts.Delta }

func (l *Ledger) entryLocked(k key) *entry {
	e, ok := l.entries[k]
	if !ok {
		e = &entry{reserved: make(map[string]float64)}
		l.entries[k] = e
	}
	return e
}

// committedLocked is the entry's composed spend: the accumulated RDP
// curve converted once at the ledger's δ, plus scalar commits.
func (e *entry) committedLocked(delta float64) float64 {
	total := e.scalar
	if e.rdp != nil {
		if eps := dp.EpsilonFromCurve(e.rdp, delta); eps > 0 {
			total += eps
		}
	}
	return total
}

// reservedLocked sums outstanding reservations in sorted-ref order, so
// the float sum is deterministic across restarts and map iteration.
func (e *entry) reservedLocked() float64 {
	refs := make([]string, 0, len(e.reserved))
	for ref := range e.reserved {
		refs = append(refs, ref)
	}
	sort.Strings(refs)
	total := 0.0
	for _, ref := range refs {
		total += e.reserved[ref]
	}
	return total
}

func (l *Ledger) balanceLocked(k key) Balance {
	b := Balance{Tenant: k.tenant, Graph: k.graph, Enforced: l.Enforced()}
	if e, ok := l.entries[k]; ok {
		b.Committed = e.committedLocked(l.opts.Delta)
		b.Reserved = e.reservedLocked()
	}
	if l.Enforced() {
		b.Budget = l.opts.Budget
		if b.Remaining = b.Budget - b.Committed - b.Reserved; b.Remaining < 0 {
			b.Remaining = 0
		}
	}
	return b
}

// Reserve holds eps of the (tenant, graph) budget under ref before a
// job is queued. It fails with an *ExhaustedError when the remaining
// budget cannot cover the request, and a plain error on a duplicate ref
// or non-positive/non-finite eps.
func (l *Ledger) Reserve(ref, tenant, graph string, eps float64) error {
	if eps <= 0 || math.IsInf(eps, 0) || math.IsNaN(eps) {
		return fmt.Errorf("ledger: cannot reserve ε=%v (want finite > 0)", eps)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if st, ok := l.refs[ref]; ok {
		return fmt.Errorf("ledger: reference %q already %s", ref, st.state)
	}
	k := key{tenant, graph}
	if l.Enforced() {
		b := l.balanceLocked(k)
		if eps > b.Remaining {
			l.emitLocked("deny", tenant, graph, ref, eps)
			return &ExhaustedError{Balance: b, Requested: eps}
		}
	}
	l.refs[ref] = &refState{tenant: tenant, graph: graph, eps: eps, state: stateReserved}
	l.entryLocked(k).reserved[ref] = eps
	l.appendLocked(record{Ref: ref, Tenant: tenant, Graph: graph, State: stateReserved, Eps: eps})
	l.emitLocked("reserve", tenant, graph, ref, eps)
	return nil
}

// Commit replaces ref's reservation with the actually-spent charge. A
// ref the ledger has never seen commits anyway under (tenant, graph) —
// that covers jobs admitted before budget tracking existed. A ref
// already terminal is a no-op: a crash between the ledger append and the
// job-table append makes the resumed job re-commit the identical charge,
// and double-counting it would overstate the spend. An empty ref is an
// anonymous spend: it skips the reference lifecycle and always adds.
func (l *Ledger) Commit(ref, tenant, graph string, c Charge) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if st, ok := l.refs[ref]; ok {
		if st.state != stateReserved {
			l.opts.Logf("ledger: commit on %s reference %q ignored", st.state, ref)
			return
		}
		tenant, graph = st.tenant, st.graph
	}
	rec := record{Ref: ref, Tenant: tenant, Graph: graph, State: stateCommitted, Eps: c.Epsilon, Charge: &c}
	l.applyCommitLocked(rec)
	l.appendLocked(rec)
	l.emitLocked("commit", tenant, graph, ref, c.Epsilon)
}

// Refund releases ref's reservation without committing any spend — for
// jobs canceled before they ran. Unknown or terminal refs are no-ops.
func (l *Ledger) Refund(ref string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.refs[ref]
	if !ok || st.state != stateReserved {
		return
	}
	rec := record{Ref: ref, Tenant: st.tenant, Graph: st.graph, State: stateRefunded, Eps: st.eps}
	l.applyRefundLocked(rec)
	l.appendLocked(rec)
	l.emitLocked("refund", st.tenant, st.graph, ref, rec.Eps)
}

// Forfeit commits ref's full reservation as scalar spend — for
// interrupted jobs whose true spend is unknowable. Conservative by
// construction: the run spent at most what it reserved. Unknown or
// terminal refs are no-ops.
func (l *Ledger) Forfeit(ref string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.refs[ref]
	if !ok || st.state != stateReserved {
		return
	}
	rec := record{Ref: ref, Tenant: st.tenant, Graph: st.graph, State: stateForfeited, Eps: st.eps}
	l.applyForfeitLocked(rec)
	l.appendLocked(rec)
	l.emitLocked("forfeit", st.tenant, st.graph, ref, rec.Eps)
}

// Reserved returns the outstanding reservation under ref (0 when none).
func (l *Ledger) Reserved(ref string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if st, ok := l.refs[ref]; ok && st.state == stateReserved {
		return st.eps
	}
	return 0
}

// Balance returns the budget position of one (tenant, graph) entry.
func (l *Ledger) Balance(tenant, graph string) Balance {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.balanceLocked(key{tenant, graph})
}

// Balances returns every entry of the tenant, sorted by graph.
func (l *Ledger) Balances(tenant string) []Balance {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Balance
	for k := range l.entries {
		if k.tenant == tenant {
			out = append(out, l.balanceLocked(k))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Graph < out[j].Graph })
	return out
}

// PublishPositions emits one synthetic LedgerOp (Op "sync") per tenant
// with the current committed/reserved totals. Replay does not emit
// events, so after a restart the per-tenant gauges (and any burn-rate
// history built on them) would otherwise start from zero and misread
// the first post-restart commit as the whole balance; the serve layer
// calls this once at startup to seed the baselines. Tenants are emitted
// in sorted order, keeping the resulting metric creation deterministic.
func (l *Ledger) PublishPositions() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.Observer == nil {
		return
	}
	tenants := make(map[string]bool, len(l.entries))
	for k := range l.entries {
		tenants[k.tenant] = true
	}
	names := make([]string, 0, len(tenants))
	for t := range tenants {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		l.emitLocked("sync", t, "", "", 0)
	}
}

// --- shared state transitions (runtime ops and replay both run these) ---

func (l *Ledger) applyReserveLocked(rec record) {
	if _, ok := l.refs[rec.Ref]; ok {
		return
	}
	l.refs[rec.Ref] = &refState{tenant: rec.Tenant, graph: rec.Graph, eps: rec.Eps, state: stateReserved}
	l.entryLocked(key{rec.Tenant, rec.Graph}).reserved[rec.Ref] = rec.Eps
}

func (l *Ledger) applyCommitLocked(rec record) {
	if rec.Ref != "" {
		if st, ok := l.refs[rec.Ref]; ok {
			if st.state != stateReserved {
				return
			}
			st.state = stateCommitted
			delete(l.entryLocked(key{st.tenant, st.graph}).reserved, rec.Ref)
		} else {
			l.refs[rec.Ref] = &refState{tenant: rec.Tenant, graph: rec.Graph, state: stateCommitted}
		}
	}
	e := l.entryLocked(key{rec.Tenant, rec.Graph})
	if c := rec.Charge; c != nil && c.composable() {
		e.rdp = dp.AddCurve(e.rdp, c.Acct.RDPCurve(c.Iterations))
	} else if rec.Eps > 0 {
		e.scalar += rec.Eps
	}
}

func (l *Ledger) applyRefundLocked(rec record) {
	st, ok := l.refs[rec.Ref]
	if !ok || st.state != stateReserved {
		return
	}
	st.state = stateRefunded
	delete(l.entryLocked(key{st.tenant, st.graph}).reserved, rec.Ref)
}

func (l *Ledger) applyForfeitLocked(rec record) {
	st, ok := l.refs[rec.Ref]
	if !ok || st.state != stateReserved {
		return
	}
	st.state = stateForfeited
	e := l.entryLocked(key{st.tenant, st.graph})
	delete(e.reserved, rec.Ref)
	e.scalar += rec.Eps
}

// emitLocked reports one transition with the tenant's totals after it.
func (l *Ledger) emitLocked(op, tenant, graph, ref string, eps float64) {
	if l.opts.Observer == nil {
		return
	}
	var committed, reserved float64
	keys := make([]key, 0, len(l.entries))
	for k := range l.entries {
		if k.tenant == tenant {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].graph < keys[j].graph })
	for _, k := range keys {
		e := l.entries[k]
		committed += e.committedLocked(l.opts.Delta)
		reserved += e.reservedLocked()
	}
	l.opts.Observer.Emit(obs.LedgerOp{
		Op: op, Tenant: tenant, Graph: graph, Ref: ref,
		Epsilon: eps, Committed: committed, Reserved: reserved,
	})
}
