package dp

import (
	"fmt"
	"math"
	"math/rand"
)

// GaussianNoise fills dst with independent N(0, scale²) samples added to
// the existing values (the Gaussian mechanism's perturbation step).
func GaussianNoise(dst []float64, scale float64, rng *rand.Rand) {
	if scale < 0 {
		panic(fmt.Sprintf("dp: GaussianNoise scale %v < 0", scale))
	}
	if scale == 0 {
		return
	}
	for i := range dst {
		dst[i] += rng.NormFloat64() * scale
	}
}

// LaplaceNoise adds independent Laplace(0, b) samples to dst; b is the
// scale Δf/ε of the classical Laplace mechanism (Example 2 of the paper
// uses it to show why noisy greedy fails).
func LaplaceNoise(dst []float64, b float64, rng *rand.Rand) {
	if b < 0 {
		panic(fmt.Sprintf("dp: LaplaceNoise scale %v < 0", b))
	}
	if b == 0 {
		return
	}
	for i := range dst {
		dst[i] += SampleLaplace(b, rng)
	}
}

// SampleLaplace draws one Laplace(0, b) variate by inverse transform.
func SampleLaplace(b float64, rng *rand.Rand) float64 {
	u := rng.Float64() - 0.5
	if u >= 0 {
		return -b * math.Log(1-2*u)
	}
	return b * math.Log(1+2*u)
}

// SMLNoise adds symmetric multivariate Laplace noise with scale parameter
// s to dst, the mechanism the HP baseline (Xiang et al.) pairs with
// HeterPoisson sampling. SML(s) is a Gaussian scale mixture: draw
// W ~ Exponential(1) once per vector, then add √W·N(0, s²) per coordinate,
// which produces the heavier-than-Gaussian tails the HP analysis needs.
func SMLNoise(dst []float64, s float64, rng *rand.Rand) {
	if s < 0 {
		panic(fmt.Sprintf("dp: SMLNoise scale %v < 0", s))
	}
	if s == 0 {
		return
	}
	w := rng.ExpFloat64()
	sw := math.Sqrt(w) * s
	for i := range dst {
		dst[i] += rng.NormFloat64() * sw
	}
}

// GaussianMechanismSigma returns the classical analytic noise scale
// σ = Δ·√(2·ln(1.25/δ))/ε for a single release of an l2-sensitivity-Δ
// query under (ε, δ)-DP — used as a sanity reference against the RDP
// accountant (which is tighter under composition).
func GaussianMechanismSigma(delta, eps, delta2Sensitivity float64) float64 {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("dp: GaussianMechanismSigma(eps=%v, delta=%v) invalid", eps, delta))
	}
	return delta2Sensitivity * math.Sqrt(2*math.Log(1.25/delta)) / eps
}
