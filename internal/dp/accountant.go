// Package dp implements the differential-privacy machinery of PrivIM:
// noise mechanisms (Gaussian, Laplace, and the symmetric multivariate
// Laplace used by the HP baseline), the node-level sensitivity bounds of
// Lemmas 1–2, the Rényi-DP accountant of Theorem 3 (a binomial mixture of
// subsampled Gaussians, computed in log space), the RDP→(ε,δ) conversion of
// Theorem 1, and binary-search calibration of the noise multiplier σ for a
// target privacy budget.
package dp

import (
	"fmt"
	"math"

	"privim/internal/tensor"
)

// Accountant tracks the per-iteration Rényi DP cost of Algorithm 2.
//
// The setting (Theorem 3): a container of M subgraphs, batches of B drawn
// per iteration, any single node touching at most Ng subgraphs, per-sample
// gradients clipped to C, and Gaussian noise N(0, (σ·Δ)² I) with Δ = C·Ng
// added to the summed batch gradient. σ is the dimensionless noise
// multiplier.
type Accountant struct {
	M     int     // subgraph container size m
	B     int     // batch size
	Ng    int     // max occurrences of any node across subgraphs (N_g or M threshold)
	Sigma float64 // noise multiplier σ
}

// Validate reports configuration errors.
func (a Accountant) Validate() error {
	switch {
	case a.M < 1:
		return fmt.Errorf("dp: container size M = %d < 1", a.M)
	case a.B < 1 || a.B > a.M:
		return fmt.Errorf("dp: batch size B = %d outside [1, M=%d]", a.B, a.M)
	case a.Ng < 1:
		return fmt.Errorf("dp: occurrence bound Ng = %d < 1", a.Ng)
	case a.Sigma <= 0:
		return fmt.Errorf("dp: noise multiplier sigma = %v <= 0", a.Sigma)
	}
	return nil
}

// RDP returns γ(α), the per-iteration Rényi divergence bound of Theorem 3:
//
//	γ = 1/(α−1) · log Σ_{i=0}^{Ng} ρ_i · exp(α(α−1)·i² / (2·Ng²·σ²)),
//	ρ_i = C(B,i)·(Ng/M)^i·(1−Ng/M)^{B−i}
//
// The mixture index i counts how many of the (at most Ng) affected
// subgraphs land in the batch; each contributes sensitivity i·C·Ng/Ng = i·C
// relative to the σ·C·Ng noise, giving the i²/Ng² exponent. Computation is
// in log space to survive large B and small σ.
func (a Accountant) RDP(alpha float64) float64 {
	return a.rdp(alpha, nil)
}

// rdp is RDP with a caller-owned scratch buffer for the mixture terms
// (cap ≥ min(B,Ng)+1 makes the call allocation-free; nil allocates). The
// terms are assembled in the same index order regardless of scratch, so
// the LogSumExp result is bit-identical either way.
func (a Accountant) rdp(alpha float64, terms []float64) float64 {
	if alpha <= 1 {
		panic(fmt.Sprintf("dp: RDP order alpha = %v must exceed 1", alpha))
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	q := float64(a.Ng) / float64(a.M)
	if q > 1 {
		q = 1
	}
	upper := a.Ng
	if a.B < upper {
		upper = a.B
	}
	ng2 := float64(a.Ng) * float64(a.Ng)
	terms = terms[:0]
	for i := 0; i <= upper; i++ {
		logRho := logBinomPMF(a.B, i, q)
		fi := float64(i)
		exponent := alpha * (alpha - 1) * fi * fi / (2 * ng2 * a.Sigma * a.Sigma)
		terms = append(terms, logRho+exponent)
	}
	lse := tensor.LogSumExp(terms)
	g := lse / (alpha - 1)
	if g < 0 {
		// Numerical floor: the true γ is nonnegative (D_α ≥ 0).
		g = 0
	}
	return g
}

// logBinomPMF returns log C(n,k) + k·log(p) + (n−k)·log(1−p), handling the
// p∈{0,1} edge cases.
func logBinomPMF(n, k int, p float64) float64 {
	switch {
	case p <= 0:
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	case p >= 1:
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	return logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
}

// logChoose returns log C(n, k) via log-gamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// ConvertRDP applies Theorem 1: for a mechanism that is (α, γ)-RDP,
// it is (ε, δ)-DP with
//
//	ε = γ + log((α−1)/α) − (log δ + log α)/(α−1).
func ConvertRDP(alpha, gamma, delta float64) float64 {
	if alpha <= 1 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("dp: ConvertRDP(alpha=%v, delta=%v) invalid", alpha, delta))
	}
	return gamma + math.Log((alpha-1)/alpha) - (math.Log(delta)+math.Log(alpha))/(alpha-1)
}

// alphaGrid is the package's shared, read-only order grid; public entry
// points hand out copies (AlphaGrid) but internal conversions index it
// directly so the hot calibration loop never rebuilds it.
var alphaGrid = defaultAlphaGrid()

// defaultAlphaGrid covers the orders over which Epsilon optimizes; the
// range mirrors standard DP-SGD accountants.
func defaultAlphaGrid() []float64 {
	grid := make([]float64, 0, 126)
	for a := 1.25; a < 2; a += 0.25 {
		grid = append(grid, a)
	}
	for a := 2.0; a <= 64; a++ {
		grid = append(grid, a)
	}
	for a := 80.0; a <= 512; a *= 1.25 {
		grid = append(grid, a)
	}
	return grid
}

// Epsilon returns the tightest (ε, δ)-DP guarantee for T iterations of
// Algorithm 2, minimizing the Theorem 1 conversion over a grid of Rényi
// orders (sequential composition gives (α, γT)-RDP per Definition 5).
// It is RDPCurve + EpsilonFromCurve in one step.
func (a Accountant) Epsilon(T int, delta float64) float64 {
	if T < 1 {
		panic(fmt.Sprintf("dp: Epsilon T = %d < 1", T))
	}
	return EpsilonFromCurve(a.RDPCurve(T), delta)
}

// CalibrateSigma returns the smallest noise multiplier σ (within rel. tol.
// 1e-3) such that T iterations satisfy (ε, δ)-DP for the given sampling
// setup. It binary searches on σ, using that ε is monotonically decreasing
// in σ. Returns an error if even an enormous σ cannot meet the target
// (which indicates an infeasible configuration).
func CalibrateSigma(targetEps, delta float64, T, B, M, Ng int) (float64, error) {
	if targetEps <= 0 {
		return 0, fmt.Errorf("dp: target epsilon %v <= 0", targetEps)
	}
	lo, hi := 1e-3, 1.0
	// One curve and one mixture-term buffer serve every σ probe: the search
	// evaluates Epsilon dozens of times and B, Ng, T never change.
	upper := Ng
	if B < upper {
		upper = B
	}
	terms := make([]float64, 0, upper+1)
	curve := make([]float64, len(alphaGrid))
	epsAt := func(sigma float64) float64 {
		acc := Accountant{M: M, B: B, Ng: Ng, Sigma: sigma}
		if err := acc.Validate(); err != nil {
			panic(err)
		}
		if T < 1 {
			panic(fmt.Sprintf("dp: Epsilon T = %d < 1", T))
		}
		for i, alpha := range alphaGrid {
			curve[i] = acc.rdp(alpha, terms) * float64(T)
		}
		return EpsilonFromCurve(curve, delta)
	}
	// Grow hi until the target is met.
	const maxSigma = 1e7
	for epsAt(hi) > targetEps {
		hi *= 2
		if hi > maxSigma {
			return 0, fmt.Errorf("dp: cannot reach epsilon %v even with sigma %g (T=%d B=%d M=%d Ng=%d)",
				targetEps, maxSigma, T, B, M, Ng)
		}
	}
	// Shrink lo until the target is violated (so the root is bracketed).
	for epsAt(lo) <= targetEps {
		lo /= 2
		if lo < 1e-9 {
			return lo, nil // effectively no noise needed
		}
	}
	for hi/lo > 1.001 {
		mid := math.Sqrt(lo * hi)
		if epsAt(mid) <= targetEps {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// NodeSensitivity returns the Lemma 2 bound Δ_g = C·Ng on the l2 distance
// between summed clipped batch gradients of node-adjacent graphs.
func NodeSensitivity(clipBound float64, ng int) float64 {
	if clipBound <= 0 || ng < 1 {
		panic(fmt.Sprintf("dp: NodeSensitivity(C=%v, Ng=%d) invalid", clipBound, ng))
	}
	return clipBound * float64(ng)
}

// EdgeSensitivity returns the edge-level analogue of Lemma 2: removing one
// edge perturbs only subgraphs containing both endpoints, bounded by the
// smaller of the two endpoint occurrence bounds — with a shared occurrence
// cap this is again occ, so Δ = C·occ with occ the per-edge co-occurrence
// bound (the sampler audits it empirically). Exposed for the paper's
// edge-level DP extension.
func EdgeSensitivity(clipBound float64, occ int) float64 {
	if clipBound <= 0 || occ < 1 {
		panic(fmt.Sprintf("dp: EdgeSensitivity(C=%v, occ=%d) invalid", clipBound, occ))
	}
	return clipBound * float64(occ)
}
