package dp

import (
	"fmt"
	"math"
)

// Cross-run RDP composition. A single training run's guarantee comes from
// Accountant.Epsilon; when the *same* graph is trained repeatedly (the
// serving daemon's multi-tenant regime), the runs compose. Summing their
// (ε, δ) guarantees is valid but loose; summing their per-order Rényi
// costs first and converting once (Definition 5 sequential composition +
// Theorem 1) is tighter. The helpers here expose the per-order cost
// vector over the package's fixed alpha grid so an external ledger
// (internal/ledger) can accumulate privacy loss across process
// lifetimes and convert the total on demand.

// AlphaGrid returns a fresh copy of the Rényi-order grid every
// conversion in this package optimizes over. The grid is fixed for the
// lifetime of the package (persisted RDP curves index into it), so its
// length is a compatibility contract: code serializing curves should
// store len(AlphaGrid()) alongside and reject mismatches.
func AlphaGrid() []float64 {
	return append([]float64(nil), alphaGrid...)
}

// RDPCurve returns the accumulated Rényi cost γ(α)·T of T iterations at
// every order of AlphaGrid, in grid order — the composable representation
// of this run's privacy loss. Curves from independent runs over the same
// grid add elementwise (sequential composition, Definition 5).
func (a Accountant) RDPCurve(T int) []float64 {
	if T < 1 {
		panic(fmt.Sprintf("dp: RDPCurve T = %d < 1", T))
	}
	upper := a.Ng
	if a.B < upper {
		upper = a.B
	}
	terms := make([]float64, 0, upper+1)
	curve := make([]float64, len(alphaGrid))
	for i, alpha := range alphaGrid {
		curve[i] = a.rdp(alpha, terms) * float64(T)
	}
	return curve
}

// EpsilonFromCurve converts an accumulated per-order RDP curve (aligned
// with AlphaGrid) into the tightest (ε, δ)-DP guarantee via Theorem 1,
// minimizing over the grid. It panics when the curve length does not
// match the grid — a mismatch means the curve was built against a
// different grid and converting it would be silently wrong.
func EpsilonFromCurve(curve []float64, delta float64) float64 {
	grid := alphaGrid
	if len(curve) != len(grid) {
		panic(fmt.Sprintf("dp: curve has %d orders, grid has %d", len(curve), len(grid)))
	}
	best := math.Inf(1)
	for i, alpha := range grid {
		if eps := ConvertRDP(alpha, curve[i], delta); eps < best {
			best = eps
		}
	}
	return best
}

// AddCurve adds charge into total elementwise, allocating when total is
// nil — the accumulation step of sequential composition. Both curves
// must align with AlphaGrid.
func AddCurve(total, charge []float64) []float64 {
	if total == nil {
		total = make([]float64, len(charge))
	}
	if len(total) != len(charge) {
		panic(fmt.Sprintf("dp: adding curve of %d orders into %d", len(charge), len(total)))
	}
	for i, v := range charge {
		total[i] += v
	}
	return total
}
