package dp

import (
	"math"
	"testing"
)

// numericalMixtureRDP computes the true Rényi divergence
// D_α(P‖Q) of the Theorem 3 setting by direct numerical integration in
// one dimension: Q = N(0, 1) and P = Σ_i ρ_i·N(μ_i, 1) with μ_i = i/(Ng·σ)
// (the shift of i affected batch elements, measured in units of the
// injected noise std σ·C·Ng with C=1).
func numericalMixtureRDP(alpha float64, a Accountant) float64 {
	q := float64(a.Ng) / float64(a.M)
	upper := a.Ng
	if a.B < upper {
		upper = a.B
	}
	rho := make([]float64, upper+1)
	for i := 0; i <= upper; i++ {
		rho[i] = math.Exp(logBinomPMF(a.B, i, q))
	}
	mu := make([]float64, upper+1)
	for i := range mu {
		mu[i] = float64(i) / (float64(a.Ng) * a.Sigma)
	}
	normPDF := func(x, mean float64) float64 {
		d := x - mean
		return math.Exp(-d*d/2) / math.Sqrt(2*math.Pi)
	}
	// E_Q[(P/Q)^α] = ∫ P(x)^α Q(x)^{1−α} dx over a wide grid.
	const (
		lo, hi = -30.0, 40.0
		steps  = 140000
	)
	dx := (hi - lo) / steps
	integral := 0.0
	for s := 0; s <= steps; s++ {
		x := lo + float64(s)*dx
		p := 0.0
		for i := range rho {
			p += rho[i] * normPDF(x, mu[i])
		}
		qd := normPDF(x, 0)
		if p <= 0 || qd <= 0 {
			continue
		}
		w := dx
		if s == 0 || s == steps {
			w /= 2
		}
		integral += math.Pow(p, alpha) * math.Pow(qd, 1-alpha) * w
	}
	return math.Log(integral) / (alpha - 1)
}

// Theorem 3's γ must upper-bound the numerically computed Rényi divergence
// of the actual subsampled-Gaussian mixture (Lemma 6 is a quasi-convexity
// upper bound, so equality is not expected).
func TestTheorem3BoundsTrueDivergence(t *testing.T) {
	cases := []Accountant{
		{M: 50, B: 8, Ng: 3, Sigma: 1},
		{M: 100, B: 16, Ng: 4, Sigma: 0.8},
		{M: 200, B: 16, Ng: 2, Sigma: 2},
		{M: 40, B: 4, Ng: 5, Sigma: 1.5},
	}
	for _, a := range cases {
		for _, alpha := range []float64{2, 4, 8} {
			gamma := a.RDP(alpha)
			truth := numericalMixtureRDP(alpha, a)
			if truth > gamma+1e-6 {
				t.Errorf("accountant %+v alpha=%v: true divergence %v exceeds bound %v",
					a, alpha, truth, gamma)
			}
			// The bound should not be vacuous either: within a couple of
			// orders of magnitude when the divergence is non-negligible.
			if truth > 1e-4 && gamma > 1000*truth {
				t.Errorf("accountant %+v alpha=%v: bound %v is vacuously loose vs %v",
					a, alpha, gamma, truth)
			}
		}
	}
}
