package dp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func validAcc(sigma float64) Accountant {
	return Accountant{M: 200, B: 16, Ng: 4, Sigma: sigma}
}

func TestAccountantValidate(t *testing.T) {
	good := validAcc(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Accountant{
		{M: 0, B: 1, Ng: 1, Sigma: 1},
		{M: 10, B: 0, Ng: 1, Sigma: 1},
		{M: 10, B: 11, Ng: 1, Sigma: 1},
		{M: 10, B: 5, Ng: 0, Sigma: 1},
		{M: 10, B: 5, Ng: 1, Sigma: 0},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, a)
		}
	}
}

func TestRDPNonnegativeAndIncreasingInAlpha(t *testing.T) {
	a := validAcc(1.5)
	prev := 0.0
	for _, alpha := range []float64{1.5, 2, 4, 8, 16, 32} {
		g := a.RDP(alpha)
		if g < 0 || math.IsNaN(g) {
			t.Fatalf("gamma(%v) = %v", alpha, g)
		}
		if g < prev-1e-12 {
			t.Fatalf("gamma not nondecreasing: gamma(%v)=%v < prev %v", alpha, g, prev)
		}
		prev = g
	}
}

func TestRDPDecreasingInSigma(t *testing.T) {
	prev := math.Inf(1)
	for _, sigma := range []float64{0.5, 1, 2, 4, 8} {
		g := validAcc(sigma).RDP(8)
		if g > prev+1e-12 {
			t.Fatalf("gamma not decreasing in sigma: %v after %v", g, prev)
		}
		prev = g
	}
	// Huge sigma drives gamma to ~0.
	if g := validAcc(1e6).RDP(8); g > 1e-6 {
		t.Fatalf("gamma at huge sigma = %v, want ≈0", g)
	}
}

func TestSmallerNgNeedsLessAbsoluteNoise(t *testing.T) {
	// The dual-stage scheme's whole point: the injected noise has scale
	// σ·C·Ng, so at a fixed privacy target the *absolute* noise magnitude
	// shrinks when Ng drops (PrivIM* caps occurrences at M < N_g). Note the
	// per-iteration γ at fixed σ actually moves the other way — larger Ng
	// means a smaller worst-case relative shift B/Ng — which is why the
	// comparison must be made after calibration.
	const C = 1.0
	sigmaHi, err := CalibrateSigma(3, 1e-5, 50, 16, 200, 50)
	if err != nil {
		t.Fatal(err)
	}
	sigmaLo, err := CalibrateSigma(3, 1e-5, 50, 16, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	noiseHi := sigmaHi * C * 50
	noiseLo := sigmaLo * C * 4
	if noiseLo >= noiseHi {
		t.Fatalf("absolute noise with Ng=4 (%v) should be < with Ng=50 (%v)", noiseLo, noiseHi)
	}
}

func TestRDPPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for alpha <= 1")
		}
	}()
	a := validAcc(1)
	a.RDP(1)
}

func TestConvertRDP(t *testing.T) {
	// Hand-computed: alpha=2, gamma=1, delta=1e-5:
	// eps = 1 + log(1/2) − (log 1e-5 + log 2)/1.
	want := 1 + math.Log(0.5) - (math.Log(1e-5) + math.Log(2))
	if got := ConvertRDP(2, 1, 1e-5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ConvertRDP = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for delta >= 1")
		}
	}()
	ConvertRDP(2, 1, 1)
}

func TestEpsilonComposesLinearlyInT(t *testing.T) {
	a := validAcc(2)
	e1 := a.Epsilon(10, 1e-5)
	e2 := a.Epsilon(100, 1e-5)
	if e2 <= e1 {
		t.Fatalf("epsilon must grow with T: eps(100)=%v <= eps(10)=%v", e2, e1)
	}
	// Sublinear growth thanks to RDP composition: eps(100) < 10*eps(10)
	// once the delta conversion overhead is amortized.
	if e2 >= 10*e1 {
		t.Fatalf("RDP composition should beat naive linear: eps(100)=%v vs 10*eps(10)=%v", e2, 10*e1)
	}
}

func TestCalibrateSigmaMeetsTarget(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 3, 6} {
		sigma, err := CalibrateSigma(eps, 1e-5, 50, 16, 200, 4)
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		got := (Accountant{M: 200, B: 16, Ng: 4, Sigma: sigma}).Epsilon(50, 1e-5)
		if got > eps*1.0001 {
			t.Fatalf("eps=%v: calibrated sigma %v achieves only %v", eps, sigma, got)
		}
		// Tightness: 1% smaller sigma must violate the target.
		loose := (Accountant{M: 200, B: 16, Ng: 4, Sigma: sigma / 1.05}).Epsilon(50, 1e-5)
		if loose <= eps {
			t.Fatalf("eps=%v: sigma %v not tight (sigma/1.05 still satisfies: %v)", eps, sigma, loose)
		}
	}
}

func TestCalibrateSigmaMonotoneInEpsilon(t *testing.T) {
	prev := math.Inf(1)
	for _, eps := range []float64{1, 2, 3, 4, 5, 6} {
		sigma, err := CalibrateSigma(eps, 1e-5, 50, 16, 200, 4)
		if err != nil {
			t.Fatal(err)
		}
		if sigma > prev {
			t.Fatalf("sigma must shrink as epsilon grows: sigma(%v)=%v > prev %v", eps, sigma, prev)
		}
		prev = sigma
	}
}

func TestCalibrateSigmaBadTarget(t *testing.T) {
	if _, err := CalibrateSigma(0, 1e-5, 10, 4, 100, 2); err == nil {
		t.Fatal("expected error for epsilon <= 0")
	}
}

// Property: calibration always meets the target for random valid configs.
func TestCalibrateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 50 + rng.Intn(500)
		b := 1 + rng.Intn(m/2+1)
		ng := 1 + rng.Intn(10)
		T := 1 + rng.Intn(100)
		eps := 0.5 + rng.Float64()*5
		sigma, err := CalibrateSigma(eps, 1e-5, T, b, m, ng)
		if err != nil {
			return false
		}
		got := (Accountant{M: m, B: b, Ng: ng, Sigma: sigma}).Epsilon(T, 1e-5)
		return got <= eps*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSensitivities(t *testing.T) {
	if got := NodeSensitivity(0.5, 11); got != 5.5 {
		t.Fatalf("NodeSensitivity = %v, want 5.5", got)
	}
	if got := EdgeSensitivity(2, 3); got != 6 {
		t.Fatalf("EdgeSensitivity = %v, want 6", got)
	}
	for _, fn := range []func(){
		func() { NodeSensitivity(0, 1) },
		func() { NodeSensitivity(1, 0) },
		func() { EdgeSensitivity(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLogChoose(t *testing.T) {
	// C(10,3) = 120.
	if got := math.Exp(logChoose(10, 3)); math.Abs(got-120) > 1e-9 {
		t.Fatalf("C(10,3) = %v", got)
	}
	if !math.IsInf(logChoose(3, 5), -1) {
		t.Fatal("C(3,5) must be -Inf in log space")
	}
}

func TestLogBinomPMFSumsToOne(t *testing.T) {
	n, p := 20, 0.17
	total := 0.0
	for k := 0; k <= n; k++ {
		total += math.Exp(logBinomPMF(n, k, p))
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("binomial pmf sums to %v", total)
	}
	// Degenerate p.
	if math.Exp(logBinomPMF(5, 0, 0)) != 1 || !math.IsInf(logBinomPMF(5, 1, 0), -1) {
		t.Fatal("p=0 pmf wrong")
	}
	if math.Exp(logBinomPMF(5, 5, 1)) != 1 || !math.IsInf(logBinomPMF(5, 4, 1), -1) {
		t.Fatal("p=1 pmf wrong")
	}
}

func TestGaussianNoiseStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 20000)
	GaussianNoise(v, 3, rng)
	var sum, sq float64
	for _, x := range v {
		sum += x
		sq += x * x
	}
	n := float64(len(v))
	std := math.Sqrt(sq/n - (sum/n)*(sum/n))
	if std < 2.9 || std > 3.1 {
		t.Fatalf("gaussian std %v, want ≈3", std)
	}
	// Zero scale is a no-op.
	w := []float64{1, 2}
	GaussianNoise(w, 0, rng)
	if w[0] != 1 || w[1] != 2 {
		t.Fatal("scale 0 must not modify")
	}
}

func TestLaplaceNoiseStats(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := make([]float64, 50000)
	LaplaceNoise(v, 2, rng)
	var absSum float64
	for _, x := range v {
		absSum += math.Abs(x)
	}
	// E|Laplace(0,b)| = b.
	mean := absSum / float64(len(v))
	if mean < 1.9 || mean > 2.1 {
		t.Fatalf("laplace E|X| = %v, want ≈2", mean)
	}
}

func TestSMLNoiseHeavierTails(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const trials = 4000
	const dim = 16
	// Kurtosis of SML coordinates exceeds Gaussian's 3.
	var sq, quad float64
	for i := 0; i < trials; i++ {
		v := make([]float64, dim)
		SMLNoise(v, 1, rng)
		for _, x := range v {
			sq += x * x
			quad += x * x * x * x
		}
	}
	n := float64(trials * dim)
	kurt := (quad / n) / math.Pow(sq/n, 2)
	if kurt < 3.5 {
		t.Fatalf("SML kurtosis %v, want > 3.5 (heavier than Gaussian)", kurt)
	}
}

func TestGaussianMechanismSigma(t *testing.T) {
	// Known closed form at eps=1, delta=1e-5, Δ=1.
	want := math.Sqrt(2 * math.Log(1.25e5))
	if got := GaussianMechanismSigma(1e-5, 1, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("analytic sigma = %v, want %v", got, want)
	}
}

func TestNoisePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, fn := range []func(){
		func() { GaussianNoise(nil, -1, rng) },
		func() { LaplaceNoise(nil, -1, rng) },
		func() { SMLNoise(nil, -1, rng) },
		func() { GaussianMechanismSigma(1e-5, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
