package dp

import (
	"math"
	"testing"
)

// TestEpsilonMonotoneInT: more iterations can only spend more budget.
func TestEpsilonMonotoneInT(t *testing.T) {
	acc := Accountant{M: 64, B: 16, Ng: 4, Sigma: 2}
	prev := 0.0
	for _, T := range []int{1, 2, 5, 10, 20, 40, 80, 160} {
		eps := acc.Epsilon(T, 1e-5)
		if eps <= prev {
			t.Fatalf("Epsilon(T=%d) = %v not above Epsilon at smaller T (%v)", T, eps, prev)
		}
		prev = eps
	}
}

// TestEpsilonIsGridOptimum: Epsilon must equal the minimum of the
// Theorem 1 conversion over the published alpha grid — no order may beat
// it, and at least one must achieve it.
func TestEpsilonIsGridOptimum(t *testing.T) {
	acc := Accountant{M: 100, B: 20, Ng: 4, Sigma: 1.5}
	const T, delta = 30, 1e-5
	eps := acc.Epsilon(T, delta)
	best := math.Inf(1)
	for _, alpha := range AlphaGrid() {
		conv := ConvertRDP(alpha, acc.RDP(alpha)*float64(T), delta)
		if conv < eps {
			t.Fatalf("order alpha=%v converts to %v, below Epsilon=%v", alpha, conv, eps)
		}
		if conv < best {
			best = conv
		}
	}
	if best != eps {
		t.Fatalf("grid optimum %v != Epsilon %v", best, eps)
	}
}

// TestSequentialCompositionProperty: composing two T/2 runs at the RDP
// level costs exactly one T run (γ·T/2 + γ·T/2 = γ·T per order), while
// naive (ε, δ) summation is strictly looser — the reason the budget
// ledger composes curves rather than scalars.
func TestSequentialCompositionProperty(t *testing.T) {
	acc := Accountant{M: 80, B: 16, Ng: 4, Sigma: 2}
	const delta = 1e-5
	for _, T := range []int{2, 10, 40, 100} {
		half := acc.RDPCurve(T / 2)
		composed := AddCurve(AddCurve(nil, half), half)
		got := EpsilonFromCurve(composed, delta)
		want := acc.Epsilon(T, delta)
		if rel := math.Abs(got-want) / want; rel > 1e-12 {
			t.Fatalf("T=%d: RDP-composed two halves = %v, one full run = %v (rel %v)", T, got, want, rel)
		}
		if naive := 2 * acc.Epsilon(T/2, delta); naive < want {
			t.Fatalf("T=%d: naive sum %v below true composed %v", T, naive, want)
		}
	}
}

// TestRDPCurveAlignsWithGrid: curve length, order, and panic contracts.
func TestRDPCurveAlignsWithGrid(t *testing.T) {
	acc := Accountant{M: 50, B: 10, Ng: 2, Sigma: 1}
	grid := AlphaGrid()
	curve := acc.RDPCurve(3)
	if len(curve) != len(grid) {
		t.Fatalf("curve has %d orders, grid %d", len(curve), len(grid))
	}
	for i, alpha := range grid {
		if want := acc.RDP(alpha) * 3; curve[i] != want {
			t.Fatalf("curve[%d] = %v, want %v", i, curve[i], want)
		}
	}
	mustPanic(t, "short curve", func() { EpsilonFromCurve(curve[:3], 1e-5) })
	mustPanic(t, "curve length mismatch", func() { AddCurve(curve, curve[:5]) })
	mustPanic(t, "T<1", func() { acc.RDPCurve(0) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
