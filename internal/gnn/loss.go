package gnn

import (
	"fmt"
	"math"

	"privim/internal/autodiff"
	"privim/internal/graph"
)

// LossConfig parameterizes the IM probabilistic penalty loss (Eq. 5).
type LossConfig struct {
	// Steps is the diffusion horizon j; Theorem 2 requires j ≤ r (the GNN
	// depth), and the paper's experiments use j = 1.
	Steps int
	// Lambda trades off influence coverage against seed-set size (Eq. 5's λ).
	Lambda float64
}

// IMLoss builds the Eq. 5 loss on the tape:
//
//	L = Σ_u Π_{i=1..j} (1 − p̂_i(u)) + λ Σ_u x_u
//
// where x is the model's seed-probability output and p̂_i is the Theorem 2
// message-passing upper bound on the step-i activation probability,
// p̂_i(u) = φ(Σ_{v∈N(u)} w_vu a_{i-1,v}) with φ = tanh restricted to
// nonnegative inputs (φ(0)=0, saturating at 1).
//
// Note the first term deliberately does NOT credit a node for being a seed
// itself (no (1−x_u) factor): gradients flow only through the p̂ sums, so
// seed mass is pushed toward nodes with large outgoing influence — the
// hubs top-k selection should return. Crediting self-seeding instead
// drives uncoverable low-in-degree nodes to x≈1, which inverts the
// ranking.
//
// The returned node is a 1×1 scalar suitable for Tape.Backward.
func IMLoss(tp *autodiff.Tape, g *graph.Graph, scores *autodiff.Node, cfg LossConfig) *autodiff.Node {
	return IMLossAdj(tp, g, scores, cfg, autodiff.InAdjacency(g))
}

// IMLossAdj is IMLoss with the in-adjacency aggregation operator supplied
// by the caller (from autodiff.InAdjacency on the same graph). Training
// loops evaluate the loss on the same subgraph every iteration; caching
// the operator there removes the dominant per-sample allocation.
func IMLossAdj(tp *autodiff.Tape, g *graph.Graph, scores *autodiff.Node, cfg LossConfig, adj *autodiff.SparseMat) *autodiff.Node {
	if cfg.Steps < 1 {
		panic(fmt.Sprintf("gnn: IMLoss steps %d < 1", cfg.Steps))
	}
	if scores.Value.Cols != 1 || scores.Value.Rows != g.NumNodes() {
		panic(fmt.Sprintf("gnn: IMLoss scores %dx%d for %d-node graph",
			scores.Value.Rows, scores.Value.Cols, g.NumNodes()))
	}
	if adj.NumRows != g.NumNodes() || adj.NumCols != g.NumNodes() {
		panic(fmt.Sprintf("gnn: IMLossAdj adjacency %dx%d for %d-node graph",
			adj.NumRows, adj.NumCols, g.NumNodes()))
	}
	// a_0 = x (probability of being active at step 0 = being a seed).
	act := scores
	var survival *autodiff.Node
	for i := 0; i < cfg.Steps; i++ {
		// p̂_{i+1}(u) = φ(Σ_v w_vu a_i(v)); inputs are nonnegative so tanh
		// maps [0,∞) → [0,1) monotonically with φ(0)=0.
		p := autodiff.Tanh(autodiff.SpMM(adj, act))
		if survival == nil {
			survival = autodiff.OneMinus(p)
		} else {
			survival = autodiff.Mul(survival, autodiff.OneMinus(p))
		}
		act = p
	}
	coverage := autodiff.Sum(survival)
	penalty := autodiff.Scale(autodiff.Sum(scores), cfg.Lambda)
	return autodiff.Add(coverage, penalty)
}

// BooleActivationBound returns, for every node, the Theorem 2 / Lemma 7
// upper bound on the 1-step IC activation probability with the exact
// Boole-inequality form φ(x) = min(x, 1):
//
//	p̂(u) = min(Σ_{v∈N(u)} w_vu·x_v, 1) ≥ 1 − Π_{v∈N(u)} (1 − w_vu·x_v)
//
// where x_v ∈ [0,1] is the probability node v is active. The training loss
// uses a smooth φ (tanh) instead; this function keeps the paper's exact
// bound available for verification and analysis.
func BooleActivationBound(g *graph.Graph, active []float64) []float64 {
	n := g.NumNodes()
	if len(active) != n {
		panic(fmt.Sprintf("gnn: BooleActivationBound got %d activations for %d nodes", len(active), n))
	}
	out := make([]float64, n)
	for u := 0; u < n; u++ {
		sum := 0.0
		for _, a := range g.In(graph.NodeID(u)) {
			sum += a.Weight * active[a.To]
		}
		if sum > 1 {
			sum = 1
		}
		out[u] = sum
	}
	return out
}

// ExactOneStepActivation returns the true probability each node is
// activated by one IC step from independent per-node activation
// probabilities: p(u) = 1 − Π_{v∈N(u)} (1 − w_vu·x_v).
func ExactOneStepActivation(g *graph.Graph, active []float64) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	for u := 0; u < n; u++ {
		survive := 1.0
		for _, a := range g.In(graph.NodeID(u)) {
			survive *= 1 - a.Weight*active[a.To]
		}
		out[u] = 1 - survive
	}
	return out
}

// ExpectedSpreadUpperBound returns the Theorem 2 / Eq. 4 upper bound
// P̂_j(S) on total influence spread for a fixed (non-differentiable) score
// vector, evaluated with the same φ as IMLoss. Exposed for diagnostics and
// the max-coverage extension.
func ExpectedSpreadUpperBound(g *graph.Graph, scores []float64, steps int) float64 {
	if steps < 1 {
		panic("gnn: ExpectedSpreadUpperBound steps < 1")
	}
	n := g.NumNodes()
	act := append([]float64(nil), scores...)
	survival := make([]float64, n)
	for u := range survival {
		survival[u] = 1 - scores[u]
	}
	next := make([]float64, n)
	for i := 0; i < steps; i++ {
		for u := 0; u < n; u++ {
			sum := 0.0
			for _, a := range g.In(graph.NodeID(u)) {
				sum += a.Weight * act[a.To]
			}
			next[u] = math.Tanh(sum)
		}
		for u := 0; u < n; u++ {
			survival[u] *= 1 - next[u]
		}
		act, next = next, act
	}
	total := 0.0
	for _, s := range survival {
		total += 1 - s
	}
	return total
}
