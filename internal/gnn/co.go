package gnn

import (
	"fmt"

	"privim/internal/autodiff"
	"privim/internal/graph"
)

// This file implements the paper's §VI-C remark that the PrivIM framework
// extends to other coverage-type combinatorial optimization problems:
// probabilistic penalty losses for maximum coverage and maximum cut, built
// from the same differentiable machinery as the IM loss.

// MaxCoverLoss builds the Erdős-style penalty loss for the maximum
// coverage problem: choose ≤ k nodes so that as many nodes as possible are
// covered (a node is covered if it or one of its in-neighbors is chosen).
//
//	L = Σ_u Π_{v ∈ N(u) ∪ {u}} (1 − x_v) + β·relu(Σ_v x_v − k)
//
// The product is computed stably as exp(Σ log(1−x_v)) via a sparse
// aggregation of logs. The cardinality term is a linear Lagrangian
// penalty: its per-node gradient is β, so any node covering more than β
// otherwise-uncovered nodes keeps net-positive pressure — a quadratic
// penalty instead crushes every score into sigmoid saturation before the
// coverage term can act.
func MaxCoverLoss(tp *autodiff.Tape, g *graph.Graph, scores *autodiff.Node, k int, beta float64) *autodiff.Node {
	return MaxCoverLossCover(tp, g, scores, k, beta, CoverMatrix(g))
}

// CoverMatrix builds the binary coverage operator MaxCoverLoss aggregates
// with: row u selects u and its (deduplicated) in-neighbors. Precompute it
// once per subgraph when the loss is evaluated repeatedly.
func CoverMatrix(g *graph.Graph) *autodiff.SparseMat {
	n := g.NumNodes()
	var dst, src []int32
	var w []float64
	for u := 0; u < n; u++ {
		dst = append(dst, int32(u))
		src = append(src, int32(u))
		w = append(w, 1)
		seen := map[graph.NodeID]bool{graph.NodeID(u): true}
		for _, a := range g.In(graph.NodeID(u)) {
			if !seen[a.To] {
				seen[a.To] = true
				dst = append(dst, int32(u))
				src = append(src, int32(a.To))
				w = append(w, 1)
			}
		}
	}
	return autodiff.NewSparse(n, n, dst, src, w)
}

// MaxCoverLossCover is MaxCoverLoss with the coverage operator supplied by
// the caller (from CoverMatrix on the same graph).
func MaxCoverLossCover(tp *autodiff.Tape, g *graph.Graph, scores *autodiff.Node, k int, beta float64, cover *autodiff.SparseMat) *autodiff.Node {
	if scores.Value.Cols != 1 || scores.Value.Rows != g.NumNodes() {
		panic(fmt.Sprintf("gnn: MaxCoverLoss scores %dx%d for %d-node graph",
			scores.Value.Rows, scores.Value.Cols, g.NumNodes()))
	}
	if k < 1 || beta < 0 {
		panic(fmt.Sprintf("gnn: MaxCoverLoss(k=%d, beta=%v) invalid", k, beta))
	}
	if cover.NumRows != g.NumNodes() || cover.NumCols != g.NumNodes() {
		panic(fmt.Sprintf("gnn: MaxCoverLossCover operator %dx%d for %d-node graph",
			cover.NumRows, cover.NumCols, g.NumNodes()))
	}

	logSurvive := autodiff.Log(autodiff.OneMinus(scores)) // log(1 − x_v)
	sumLogs := autodiff.SpMM(cover, logSurvive)           // Σ over cover(u)
	uncovered := autodiff.Sum(autodiff.Exp(sumLogs))      // Σ_u Π (1 − x_v)

	// Soft cardinality: β·relu(Σx − k).
	total := autodiff.Sum(scores)
	excess := autodiff.ReLU(autodiff.AddScalar(total, -float64(k)))
	penalty := autodiff.Scale(excess, beta)
	return autodiff.Add(uncovered, penalty)
}

// CoverageValue evaluates the (deterministic) coverage of a chosen node
// set: the number of nodes that are chosen or have a chosen in-neighbor.
func CoverageValue(g *graph.Graph, chosen []graph.NodeID) int {
	mark := make([]bool, g.NumNodes())
	for _, v := range chosen {
		mark[v] = true
		for _, a := range g.Out(v) {
			mark[a.To] = true
		}
	}
	covered := 0
	for _, m := range mark {
		if m {
			covered++
		}
	}
	return covered
}

// GreedyMaxCover returns the classic greedy (1−1/e)-approximate solution,
// the ground truth the learned solver is compared against.
func GreedyMaxCover(g *graph.Graph, k int) []graph.NodeID {
	n := g.NumNodes()
	covered := make([]bool, n)
	chosen := make([]graph.NodeID, 0, k)
	inSet := make([]bool, n)
	for len(chosen) < k && len(chosen) < n {
		best, bestGain := graph.NodeID(-1), -1
		for v := 0; v < n; v++ {
			if inSet[v] {
				continue
			}
			gain := 0
			if !covered[v] {
				gain++
			}
			for _, a := range g.Out(graph.NodeID(v)) {
				if !covered[a.To] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = graph.NodeID(v), gain
			}
		}
		if best < 0 {
			break
		}
		inSet[best] = true
		chosen = append(chosen, best)
		covered[best] = true
		for _, a := range g.Out(best) {
			covered[a.To] = true
		}
	}
	return chosen
}

// MaxCutLoss builds the penalty loss for maximum cut: partition nodes into
// two sides (x_u ≈ 1 vs ≈ 0) to maximize the number of edges crossing.
//
//	L = −Σ_{(u,v)∈E} [x_u(1−x_v) + x_v(1−x_u)]
//
// Minimizing L maximizes the expected cut under independent rounding.
func MaxCutLoss(tp *autodiff.Tape, g *graph.Graph, scores *autodiff.Node) *autodiff.Node {
	if scores.Value.Cols != 1 || scores.Value.Rows != g.NumNodes() {
		panic(fmt.Sprintf("gnn: MaxCutLoss scores %dx%d for %d-node graph",
			scores.Value.Rows, scores.Value.Cols, g.NumNodes()))
	}
	edges := g.Edges()
	if len(edges) == 0 {
		return autodiff.Sum(autodiff.Scale(scores, 0))
	}
	us := make([]int32, len(edges))
	vs := make([]int32, len(edges))
	for i, e := range edges {
		us[i] = int32(e.From)
		vs[i] = int32(e.To)
	}
	xu := autodiff.GatherRows(scores, us)
	xv := autodiff.GatherRows(scores, vs)
	cross := autodiff.Add(
		autodiff.Mul(xu, autodiff.OneMinus(xv)),
		autodiff.Mul(xv, autodiff.OneMinus(xu)),
	)
	return autodiff.Scale(autodiff.Sum(cross), -1)
}

// CutValue counts edges crossing the partition defined by side (true =
// side A).
func CutValue(g *graph.Graph, side []bool) int {
	cut := 0
	for _, e := range g.Edges() {
		if side[e.From] != side[e.To] {
			cut++
		}
	}
	return cut
}
