// Package gnn implements the message-passing models evaluated in the paper
// (Appendix G): GCN, GraphSAGE, GAT, GRAT, and GIN, plus the probabilistic
// penalty loss for influence maximization (Eq. 5, built on the Theorem 2
// diffusion upper bound). Models are expressed over the autodiff tape so
// DP-SGD (Algorithm 2) can obtain exact per-subgraph gradients.
package gnn

import (
	"context"
	"fmt"
	"math/rand"

	"privim/internal/autodiff"
	"privim/internal/graph"
	"privim/internal/nn"
	"privim/internal/tensor"
)

// Kind selects a GNN architecture.
type Kind string

// Supported architectures. GRAT (source-normalized graph attention) is the
// paper's default.
const (
	GCN       Kind = "gcn"
	GraphSAGE Kind = "sage"
	GAT       Kind = "gat"
	GRAT      Kind = "grat"
	GIN       Kind = "gin"
)

// AllKinds lists the architectures in the paper's Figure 9 order.
func AllKinds() []Kind { return []Kind{GRAT, GraphSAGE, GCN, GAT, GIN} }

// Config describes a model instance.
type Config struct {
	Kind      Kind
	InputDim  int // node feature dimension d
	HiddenDim int // paper: 32
	Layers    int // paper: 3 (this is r, the GNN depth)
	// LeakySlope is the LeakyReLU negative slope for attention scores
	// (default 0.2 as in GAT).
	LeakySlope float64
	// Heads is the number of attention heads for GAT/GRAT (default 1).
	// Heads share the layer projection and average their aggregations.
	Heads int
}

func (c *Config) normalize() error {
	switch c.Kind {
	case GCN, GraphSAGE, GAT, GRAT, GIN:
	default:
		return fmt.Errorf("gnn: unknown kind %q", c.Kind)
	}
	if c.InputDim < 1 || c.HiddenDim < 1 || c.Layers < 1 {
		return fmt.Errorf("gnn: invalid dims %+v", *c)
	}
	if c.LeakySlope == 0 {
		c.LeakySlope = 0.2
	}
	if c.Heads == 0 {
		c.Heads = 1
	}
	if c.Heads < 0 {
		return fmt.Errorf("gnn: negative attention heads %d", c.Heads)
	}
	return nil
}

// Model is a GNN with trainable parameters. One Model is shared across all
// subgraphs; Forward builds a fresh computation per subgraph.
type Model struct {
	Cfg    Config
	Params *nn.ParamSet

	// Parameter positions resolved at construction so Forward indexes
	// bound[] directly instead of formatting names per call.
	layers             []layerRefs
	readoutW, readoutB int
}

// layerRefs holds one layer's parameter positions in the ParamSet layout.
// Unused slots for a given Kind stay zero and are never read.
type layerRefs struct {
	w, w2, eps, b int
	attn          []int
}

// New constructs a model and registers its parameters (uninitialized; call
// Init).
func New(cfg Config) (*Model, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	m := &Model{Cfg: cfg, Params: nn.NewParamSet()}
	add := func(name string, rows, cols int) int {
		i := len(m.Params.All())
		m.Params.Add(name, rows, cols)
		return i
	}
	in := cfg.InputDim
	m.layers = make([]layerRefs, cfg.Layers)
	for l := 0; l < cfg.Layers; l++ {
		out := cfg.HiddenDim
		refs := &m.layers[l]
		switch cfg.Kind {
		case GCN:
			refs.w = add(lname(l, "w"), in, out)
		case GraphSAGE:
			// Concatenated [self | mean-neighbors] projection.
			refs.w = add(lname(l, "w"), 2*in, out)
		case GAT, GRAT:
			refs.w = add(lname(l, "w"), in, out)
			refs.attn = make([]int, cfg.Heads)
			for h := 0; h < cfg.Heads; h++ {
				refs.attn[h] = add(hname(l, h), 2*out, 1)
			}
		case GIN:
			refs.w = add(lname(l, "w1"), in, out)
			refs.w2 = add(lname(l, "w2"), out, out)
			refs.eps = add(lname(l, "eps"), 1, 1)
		}
		refs.b = add(lname(l, "b"), 1, out)
		in = out
	}
	// Readout: [final hidden | raw features] -> scalar seed-probability
	// logit. The skip connection to the raw features keeps degree-scale
	// information available at inference even when normalized aggregation
	// (e.g. GCN's symmetric normalization) attenuates it through the
	// layers.
	m.readoutW = add("readout.w", in+cfg.InputDim, 1)
	m.readoutB = add("readout.b", 1, 1)
	return m, nil
}

func lname(l int, part string) string { return fmt.Sprintf("layer%d.%s", l, part) }

func hname(l, head int) string { return fmt.Sprintf("layer%d.attn%d", l, head) }

// Init initializes all parameters (Glorot) deterministically from rng.
func (m *Model) Init(rng *rand.Rand) { m.Params.GlorotInit(rng) }

// edgeList materializes g's arcs v→u as (dst=u, src=v) slices with self
// loops appended, the form attention layers consume.
func edgeList(g *graph.Graph) (dst, src []int32) {
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		for _, a := range g.In(graph.NodeID(u)) {
			dst = append(dst, int32(u))
			src = append(src, int32(a.To))
		}
	}
	for u := 0; u < n; u++ {
		dst = append(dst, int32(u))
		src = append(src, int32(u))
	}
	return dst, src
}

// meanInAdjacency builds the row-normalized in-neighbor averaging operator
// used by GraphSAGE.
func meanInAdjacency(g *graph.Graph) *autodiff.SparseMat {
	n := g.NumNodes()
	var dst, src []int32
	var w []float64
	for u := 0; u < n; u++ {
		in := g.In(graph.NodeID(u))
		if len(in) == 0 {
			continue
		}
		inv := 1 / float64(len(in))
		for _, a := range in {
			dst = append(dst, int32(u))
			src = append(src, int32(a.To))
			w = append(w, inv)
		}
	}
	return autodiff.NewSparse(n, n, dst, src, w)
}

// sumInAdjacency builds the unweighted in-neighbor sum operator (GIN).
func sumInAdjacency(g *graph.Graph) *autodiff.SparseMat {
	n := g.NumNodes()
	var dst, src []int32
	var w []float64
	for u := 0; u < n; u++ {
		for _, a := range g.In(graph.NodeID(u)) {
			dst = append(dst, int32(u))
			src = append(src, int32(a.To))
			w = append(w, 1)
		}
	}
	return autodiff.NewSparse(n, n, dst, src, w)
}

// Prep caches the graph-derived, parameter-independent inputs one Forward
// pass needs: the aggregation operator (GCN/SAGE/GIN), the self-looped
// edge list (GAT/GRAT), and the GIN ε-broadcast ones column. Building
// these per call dominated Forward's allocations; a Prep is built once
// per (model kind, graph) pair and reused across iterations. Preps are
// read-only after construction and safe to share across workers.
type Prep struct {
	kind Kind
	n    int

	adj      *autodiff.SparseMat // GCN/SAGE/GIN aggregation operator
	dst, src []int32             // GAT/GRAT edge list with self loops
	ones     *tensor.Matrix      // GIN: n×1 of ones for ε broadcast
}

// NewPrep precomputes the Forward inputs for subgraph g under m's
// architecture.
func (m *Model) NewPrep(g *graph.Graph) *Prep {
	p := &Prep{kind: m.Cfg.Kind, n: g.NumNodes()}
	switch m.Cfg.Kind {
	case GCN:
		p.adj = autodiff.GCNNormalized(g)
	case GraphSAGE:
		p.adj = meanInAdjacency(g)
	case GAT, GRAT:
		p.dst, p.src = edgeList(g)
	case GIN:
		p.adj = sumInAdjacency(g)
		p.ones = tensor.New(p.n, 1)
		p.ones.Fill(1)
	}
	return p
}

// Forward runs the model on subgraph g with node features x (n×InputDim)
// and returns the n×1 vector of seed-selection probabilities in (0,1).
// bound must come from nn.Bind(tp, m.Params). The graph-derived operators
// are rebuilt per call; training loops should precompute a Prep once per
// subgraph and use ForwardPrep.
func (m *Model) Forward(tp *autodiff.Tape, bound []*autodiff.Node, g *graph.Graph, x *tensor.Matrix) *autodiff.Node {
	return m.ForwardPrep(tp, bound, g, x, m.NewPrep(g))
}

// ForwardPrep is Forward with the graph-derived structures supplied by a
// cached Prep (from NewPrep on the same model kind and graph).
func (m *Model) ForwardPrep(tp *autodiff.Tape, bound []*autodiff.Node, g *graph.Graph, x *tensor.Matrix, p *Prep) *autodiff.Node {
	out, _ := m.forwardPrep(nil, tp, bound, g, x, p)
	return out
}

// forwardPrep is the ForwardPrep core with an optional context: a
// non-nil ctx is checked before every layer, so a canceled inference
// stops within one layer's SpMM/GEMM work. A nil ctx never errors.
func (m *Model) forwardPrep(ctx context.Context, tp *autodiff.Tape, bound []*autodiff.Node, g *graph.Graph, x *tensor.Matrix, p *Prep) (*autodiff.Node, error) {
	if x.Rows != g.NumNodes() || x.Cols != m.Cfg.InputDim {
		panic(fmt.Sprintf("gnn: Forward features %dx%d for graph with %d nodes, input dim %d",
			x.Rows, x.Cols, g.NumNodes(), m.Cfg.InputDim))
	}
	if p.kind != m.Cfg.Kind || p.n != g.NumNodes() {
		panic(fmt.Sprintf("gnn: ForwardPrep prep built for kind %q / %d nodes, model is %q / %d",
			p.kind, p.n, m.Cfg.Kind, g.NumNodes()))
	}
	h := tp.Leaf(x)
	switch m.Cfg.Kind {
	case GCN:
		for l := 0; l < m.Cfg.Layers; l++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			agg := autodiff.SpMM(p.adj, h)
			z := autodiff.MatMul(agg, bound[m.layers[l].w])
			z = autodiff.AddRowBroadcast(z, bound[m.layers[l].b])
			h = autodiff.ReLU(z)
		}
	case GraphSAGE:
		for l := 0; l < m.Cfg.Layers; l++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			neigh := autodiff.SpMM(p.adj, h)
			cat := autodiff.ConcatCols(h, neigh)
			z := autodiff.MatMul(cat, bound[m.layers[l].w])
			z = autodiff.AddRowBroadcast(z, bound[m.layers[l].b])
			h = autodiff.ReLU(z)
		}
	case GAT, GRAT:
		dst, src := p.dst, p.src
		// GAT normalizes attention over each destination's in-edges
		// (Eq. 35); GRAT normalizes over each source's out-edges (Eq. 39),
		// reducing the reward for overlapping coverage.
		seg := dst
		if m.Cfg.Kind == GRAT {
			seg = src
		}
		n := g.NumNodes()
		for l := 0; l < m.Cfg.Layers; l++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			wh := autodiff.MatMul(h, bound[m.layers[l].w])
			hd := autodiff.GatherRows(wh, dst)
			hs := autodiff.GatherRows(wh, src)
			cat := autodiff.ConcatCols(hd, hs)
			// Each head computes its own attention distribution over the
			// shared projection; head outputs are averaged.
			var agg *autodiff.Node
			for head := 0; head < m.Cfg.Heads; head++ {
				e := autodiff.MatMul(cat, bound[m.layers[l].attn[head]])
				e = autodiff.LeakyReLU(e, m.Cfg.LeakySlope)
				alpha := autodiff.SegmentSoftmax(e, seg, n)
				msg := autodiff.MulColBroadcast(hs, alpha)
				headAgg := autodiff.ScatterAddRows(msg, dst, n)
				if agg == nil {
					agg = headAgg
				} else {
					agg = autodiff.Add(agg, headAgg)
				}
			}
			if m.Cfg.Heads > 1 {
				agg = autodiff.Scale(agg, 1/float64(m.Cfg.Heads))
			}
			agg = autodiff.AddRowBroadcast(agg, bound[m.layers[l].b])
			h = autodiff.ReLU(agg)
		}
	case GIN:
		for l := 0; l < m.Cfg.Layers; l++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			neigh := autodiff.SpMM(p.adj, h)
			// (1+ε)·h + Σ_neighbors h, with learnable scalar ε broadcast.
			epsNode := bound[m.layers[l].eps]
			col := autodiff.MatMul(tp.Leaf(p.ones), epsNode) // n×1 of ε
			scaled := autodiff.MulColBroadcast(h, col)
			z := autodiff.Add(autodiff.Add(h, scaled), neigh)
			z = autodiff.MatMul(z, bound[m.layers[l].w])
			z = autodiff.ReLU(z)
			z = autodiff.MatMul(z, bound[m.layers[l].w2])
			z = autodiff.AddRowBroadcast(z, bound[m.layers[l].b])
			h = autodiff.ReLU(z)
		}
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	skip := autodiff.ConcatCols(h, tp.Leaf(x))
	logits := autodiff.MatMul(skip, bound[m.readoutW])
	logits = autodiff.AddRowBroadcast(logits, bound[m.readoutB])
	return autodiff.Sigmoid(logits), nil
}

// Score runs a forward pass outside any training loop and returns the
// plain seed probabilities for graph g.
func (m *Model) Score(g *graph.Graph, x *tensor.Matrix) []float64 {
	tp := autodiff.NewTape()
	bound := nn.Bind(tp, m.Params)
	out := m.Forward(tp, bound, g, x)
	scores := make([]float64, g.NumNodes())
	copy(scores, out.Value.Data)
	return scores
}

// ScoreContext is Score under a caller context: the forward pass checks
// ctx between layers, so a canceled or deadline-expired query stops
// within one layer's SpMM/GEMM work instead of running the full model.
// A completed call returns exactly Score's output.
func (m *Model) ScoreContext(ctx context.Context, g *graph.Graph, x *tensor.Matrix) ([]float64, error) {
	tp := autodiff.NewTape()
	bound := nn.Bind(tp, m.Params)
	out, err := m.forwardPrep(ctx, tp, bound, g, x, m.NewPrep(g))
	if err != nil {
		return nil, err
	}
	scores := make([]float64, g.NumNodes())
	copy(scores, out.Value.Data)
	return scores, nil
}
