package gnn

import (
	"math"
	"math/rand"
	"testing"

	"privim/internal/autodiff"
	"privim/internal/graph"
	"privim/internal/nn"
	"privim/internal/tensor"
)

func TestMaxCoverLossExtremes(t *testing.T) {
	g := tinyGraph()
	n := g.NumNodes()

	// x = 0: nothing covered, loss = n.
	tp := autodiff.NewTape()
	zero := tp.Leaf(tensor.New(n, 1))
	l0 := MaxCoverLoss(tp, g, zero, 2, 1)
	if math.Abs(l0.Value.Data[0]-float64(n)) > 1e-9 {
		t.Fatalf("loss at x=0 = %v, want %d", l0.Value.Data[0], n)
	}

	// Hub chosen with certainty: hub covers itself + 4 leaves = everything
	// except nothing (node 0 covers all 5 nodes of the star). Coverage
	// term ≈ 0 for covered nodes... leaves are covered by hub (in-neighbor),
	// hub covered by itself.
	tp2 := autodiff.NewTape()
	x := tensor.New(n, 1)
	x.Data[0] = 1 - 1e-9
	hub := tp2.Leaf(x)
	l1 := MaxCoverLoss(tp2, g, hub, 2, 1)
	if l1.Value.Data[0] > 0.01 {
		t.Fatalf("loss with hub chosen = %v, want ≈0", l1.Value.Data[0])
	}

	// Cardinality penalty activates above k.
	tp3 := autodiff.NewTape()
	all := tensor.New(n, 1)
	all.Fill(0.9)
	over := tp3.Leaf(all)
	l2 := MaxCoverLoss(tp3, g, over, 1, 10)
	// Σx = 4.5, k=1 ⇒ penalty 10·3.5 = 35 dominates.
	if l2.Value.Data[0] < 35 {
		t.Fatalf("cardinality penalty missing: loss = %v", l2.Value.Data[0])
	}
}

func TestMaxCoverLossGradCheck(t *testing.T) {
	g := tinyGraph()
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(4))
	raw := tensor.New(n, 1)
	raw.RandUniform(0.4, rng)
	for i := range raw.Data {
		raw.Data[i] += 0.5 // keep x in (0.1, 0.9), away from Log's floor
	}
	eval := func() float64 {
		tp := autodiff.NewTape()
		x := tp.Leaf(raw.Clone())
		return MaxCoverLoss(tp, g, x, 2, 1.5).Value.Data[0]
	}
	tp := autodiff.NewTape()
	x := tp.Leaf(raw)
	loss := MaxCoverLoss(tp, g, x, 2, 1.5)
	tp.Backward(loss)
	const eps = 1e-6
	for i := range raw.Data {
		orig := raw.Data[i]
		raw.Data[i] = orig + eps
		fp := eval()
		raw.Data[i] = orig - eps
		fm := eval()
		raw.Data[i] = orig
		numeric := (fp - fm) / (2 * eps)
		if d := math.Abs(numeric - x.Grad.Data[i]); d > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("grad[%d]: analytic %v vs numeric %v", i, x.Grad.Data[i], numeric)
		}
	}
}

func TestGreedyMaxCover(t *testing.T) {
	// Two stars: greedy must pick both hubs.
	g := graph.NewWithNodes(10, true)
	for v := 1; v <= 5; v++ {
		g.AddEdge(0, graph.NodeID(v), 1)
	}
	for v := 7; v <= 9; v++ {
		g.AddEdge(6, graph.NodeID(v), 1)
	}
	chosen := GreedyMaxCover(g, 2)
	if len(chosen) != 2 || chosen[0] != 0 || chosen[1] != 6 {
		t.Fatalf("greedy chose %v, want [0 6]", chosen)
	}
	if got := CoverageValue(g, chosen); got != 10 {
		t.Fatalf("coverage = %d, want 10", got)
	}
	// k larger than useful set.
	many := GreedyMaxCover(g, 100)
	if len(many) != 10 {
		t.Fatalf("greedy with huge k chose %d nodes", len(many))
	}
}

func TestMaxCutLoss(t *testing.T) {
	// Single edge: best split puts endpoints on opposite sides.
	g := graph.NewWithNodes(2, true)
	g.AddEdge(0, 1, 1)
	tp := autodiff.NewTape()
	x := tp.Leaf(tensor.FromSlice(2, 1, []float64{1, 0}))
	l := MaxCutLoss(tp, g, x)
	if math.Abs(l.Value.Data[0]+1) > 1e-12 {
		t.Fatalf("cut loss for perfect split = %v, want -1", l.Value.Data[0])
	}
	// Same side: loss 0.
	tp2 := autodiff.NewTape()
	same := tp2.Leaf(tensor.FromSlice(2, 1, []float64{1, 1}))
	l2 := MaxCutLoss(tp2, g, same)
	if math.Abs(l2.Value.Data[0]) > 1e-12 {
		t.Fatalf("cut loss same side = %v, want 0", l2.Value.Data[0])
	}
	// Edgeless graph: zero loss, no panic.
	tp3 := autodiff.NewTape()
	empty := graph.NewWithNodes(3, true)
	z := tp3.Leaf(tensor.New(3, 1))
	if MaxCutLoss(tp3, empty, z).Value.Data[0] != 0 {
		t.Fatal("edgeless cut loss should be 0")
	}
}

func TestCutValue(t *testing.T) {
	g := graph.NewWithNodes(4, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	if got := CutValue(g, []bool{true, false, true, false}); got != 3 {
		t.Fatalf("alternating cut = %d, want 3", got)
	}
	if got := CutValue(g, []bool{true, true, true, true}); got != 0 {
		t.Fatalf("one-side cut = %d, want 0", got)
	}
}

// Training a GNN with MaxCutLoss on a bipartite-ish graph should find a
// large cut.
func TestMaxCutTraining(t *testing.T) {
	// Complete bipartite K3,3: max cut = 9 with the bipartition.
	g := graph.NewWithNodes(6, false)
	for u := 0; u < 3; u++ {
		for v := 3; v < 6; v++ {
			g.AddEdge(graph.NodeID(u), graph.NodeID(v), 1)
		}
	}
	rng := rand.New(rand.NewSource(6))
	m, err := New(Config{Kind: GCN, InputDim: 2, HiddenDim: 8, Layers: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.Init(rng)
	x := tensor.New(6, 2)
	x.RandUniform(1, rng)
	opt := nn.NewAdam(m.Params, 0.05)
	grads := nn.NewGrads(m.Params)
	for epoch := 0; epoch < 300; epoch++ {
		tp := autodiff.NewTape()
		bound := nn.Bind(tp, m.Params)
		scores := m.Forward(tp, bound, g, x)
		loss := MaxCutLoss(tp, g, scores)
		tp.Backward(loss)
		nn.Collect(bound, grads)
		opt.Step(grads)
	}
	scores := m.Score(g, x)
	side := make([]bool, 6)
	for v, s := range scores {
		side[v] = s > 0.5
	}
	if got := CutValue(g, side); got < 8 {
		t.Fatalf("learned cut = %d, want >= 8 of 9", got)
	}
}

func TestMaxCoverLossPanics(t *testing.T) {
	g := tinyGraph()
	tp := autodiff.NewTape()
	x := tp.Leaf(tensor.New(g.NumNodes(), 1))
	for _, fn := range []func(){
		func() { MaxCoverLoss(tp, g, x, 0, 1) },
		func() { MaxCoverLoss(tp, g, x, 1, -1) },
		func() { MaxCoverLoss(tp, g, tp.Leaf(tensor.New(2, 1)), 1, 1) },
		func() { MaxCutLoss(tp, g, tp.Leaf(tensor.New(2, 1))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
