package gnn

import (
	"math"
	"math/rand"
	"testing"

	"privim/internal/autodiff"
	"privim/internal/graph"
	"privim/internal/nn"
	"privim/internal/tensor"
)

// tinyGraph: star with hub 0 pointing at 1..4, plus a back edge.
func tinyGraph() *graph.Graph {
	g := graph.NewWithNodes(5, true)
	for v := 1; v < 5; v++ {
		g.AddEdge(0, graph.NodeID(v), 1)
	}
	g.AddEdge(1, 0, 0.5)
	return g
}

func tinyFeatures(g *graph.Graph, dim int, rng *rand.Rand) *tensor.Matrix {
	x := tensor.New(g.NumNodes(), dim)
	x.RandUniform(1, rng)
	return x
}

func TestNewModelValidation(t *testing.T) {
	if _, err := New(Config{Kind: "bogus", InputDim: 4, HiddenDim: 8, Layers: 2}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	if _, err := New(Config{Kind: GCN, InputDim: 0, HiddenDim: 8, Layers: 2}); err == nil {
		t.Fatal("expected error for zero input dim")
	}
}

func TestAllKindsForwardShapeAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := tinyGraph()
	for _, kind := range AllKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			m, err := New(Config{Kind: kind, InputDim: 3, HiddenDim: 8, Layers: 2})
			if err != nil {
				t.Fatal(err)
			}
			m.Init(rng)
			x := tinyFeatures(g, 3, rng)
			scores := m.Score(g, x)
			if len(scores) != g.NumNodes() {
				t.Fatalf("scores length %d, want %d", len(scores), g.NumNodes())
			}
			for i, s := range scores {
				if s <= 0 || s >= 1 || math.IsNaN(s) {
					t.Fatalf("score[%d] = %v outside (0,1)", i, s)
				}
			}
		})
	}
}

// Every architecture must produce exact gradients end to end (finite
// difference check over all parameters on a small graph).
func TestAllKindsGradCheck(t *testing.T) {
	g := tinyGraph()
	for _, kind := range AllKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			m, err := New(Config{Kind: kind, InputDim: 2, HiddenDim: 3, Layers: 2})
			if err != nil {
				t.Fatal(err)
			}
			m.Init(rng)
			x := tinyFeatures(g, 2, rng)

			eval := func() float64 {
				tp := autodiff.NewTape()
				bound := nn.Bind(tp, m.Params)
				out := m.Forward(tp, bound, g, x)
				return IMLoss(tp, g, out, LossConfig{Steps: 2, Lambda: 0.3}).Value.Data[0]
			}

			tp := autodiff.NewTape()
			bound := nn.Bind(tp, m.Params)
			out := m.Forward(tp, bound, g, x)
			loss := IMLoss(tp, g, out, LossConfig{Steps: 2, Lambda: 0.3})
			tp.Backward(loss)
			grads := nn.NewGrads(m.Params)
			nn.Collect(bound, grads)

			const eps = 1e-6
			const tol = 2e-4
			for pi, p := range m.Params.All() {
				for k := range p.Value.Data {
					orig := p.Value.Data[k]
					p.Value.Data[k] = orig + eps
					fp := eval()
					p.Value.Data[k] = orig - eps
					fm := eval()
					p.Value.Data[k] = orig
					numeric := (fp - fm) / (2 * eps)
					analytic := grads.Mats()[pi].Data[k]
					if d := math.Abs(numeric - analytic); d > tol*(1+math.Abs(numeric)) {
						t.Fatalf("%s param %s[%d]: analytic %v vs numeric %v", kind, p.Name, k, analytic, numeric)
					}
				}
			}
		})
	}
}

func TestIMLossValidation(t *testing.T) {
	g := tinyGraph()
	tp := autodiff.NewTape()
	bad := tp.Leaf(tensor.New(2, 1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for wrong score shape")
			}
		}()
		IMLoss(tp, g, bad, LossConfig{Steps: 1})
	}()
	ok := tp.Leaf(tensor.New(g.NumNodes(), 1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for steps < 1")
			}
		}()
		IMLoss(tp, g, ok, LossConfig{Steps: 0})
	}()
}

func TestIMLossExtremes(t *testing.T) {
	g := tinyGraph()
	n := g.NumNodes()

	// All-zero seed probabilities: coverage term = n, penalty = 0.
	tp := autodiff.NewTape()
	zero := tp.Leaf(tensor.New(n, 1))
	l0 := IMLoss(tp, g, zero, LossConfig{Steps: 1, Lambda: 0.5})
	if math.Abs(l0.Value.Data[0]-float64(n)) > 1e-9 {
		t.Fatalf("loss at x=0 is %v, want %d", l0.Value.Data[0], n)
	}

	// All-one seed probabilities: leaves 1..4 have one in-arc of weight 1
	// (p̂ = tanh 1); the hub's only in-arc has weight 0.5 (p̂ = tanh 0.5);
	// the penalty adds λ·n.
	tp2 := autodiff.NewTape()
	onesM := tensor.New(n, 1)
	onesM.Fill(1)
	one := tp2.Leaf(onesM)
	l1 := IMLoss(tp2, g, one, LossConfig{Steps: 1, Lambda: 0.5})
	want := 4*(1-math.Tanh(1)) + (1 - math.Tanh(0.5)) + 0.5*float64(n)
	if math.Abs(l1.Value.Data[0]-want) > 1e-9 {
		t.Fatalf("loss at x=1 is %v, want %v", l1.Value.Data[0], want)
	}
}

func TestIMLossSeedingHubHelps(t *testing.T) {
	// Putting seed mass on the hub (which reaches everyone) must beat
	// putting the same mass on a leaf.
	g := tinyGraph()
	n := g.NumNodes()
	lossFor := func(seedIdx int) float64 {
		tp := autodiff.NewTape()
		x := tensor.New(n, 1)
		x.Data[seedIdx] = 0.9
		s := tp.Leaf(x)
		return IMLoss(tp, g, s, LossConfig{Steps: 1, Lambda: 0.1}).Value.Data[0]
	}
	hub, leaf := lossFor(0), lossFor(3)
	if hub >= leaf {
		t.Fatalf("hub seeding loss %v should be < leaf seeding loss %v", hub, leaf)
	}
}

func TestExpectedSpreadUpperBound(t *testing.T) {
	g := tinyGraph()
	scores := make([]float64, g.NumNodes())
	scores[0] = 1 // hub is a certain seed
	got := ExpectedSpreadUpperBound(g, scores, 1)
	// Hub active; each leaf activated with p = tanh(1·1) ≈ 0.7616.
	want := 1 + 4*math.Tanh(1)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("upper bound = %v, want %v", got, want)
	}
	// More steps cannot decrease the bound.
	if got2 := ExpectedSpreadUpperBound(g, scores, 3); got2 < got-1e-12 {
		t.Fatalf("bound decreased with more steps: %v < %v", got2, got)
	}
}

// Training with the IM loss on the star graph must rank the hub first.
func TestTrainingRanksHubFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := tinyGraph()
	m, err := New(Config{Kind: GCN, InputDim: 2, HiddenDim: 8, Layers: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.Init(rng)
	// Features: normalized out-degree and bias.
	x := tensor.New(g.NumNodes(), 2)
	for v := 0; v < g.NumNodes(); v++ {
		x.Set(v, 0, float64(g.OutDegree(graph.NodeID(v)))/4)
		x.Set(v, 1, 1)
	}
	opt := nn.NewAdam(m.Params, 0.02)
	grads := nn.NewGrads(m.Params)
	for epoch := 0; epoch < 200; epoch++ {
		tp := autodiff.NewTape()
		bound := nn.Bind(tp, m.Params)
		out := m.Forward(tp, bound, g, x)
		loss := IMLoss(tp, g, out, LossConfig{Steps: 1, Lambda: 0.5})
		tp.Backward(loss)
		nn.Collect(bound, grads)
		opt.Step(grads)
	}
	scores := m.Score(g, x)
	// Node 1 also has outgoing influence (back edge to the hub), so the
	// clean comparison is hub vs the pure leaves 2..4.
	for v := 2; v < len(scores); v++ {
		if scores[0] <= scores[v] {
			t.Fatalf("hub score %v not above leaf %d score %v after training", scores[0], v, scores[v])
		}
	}
}

func TestModelParamCounts(t *testing.T) {
	// 3-layer GRAT with 32 hidden units on 4-dim input (the paper's config)
	// must register per-layer W, attn, b plus readout.
	m, err := New(Config{Kind: GRAT, InputDim: 4, HiddenDim: 32, Layers: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := (4*32 + 64*1 + 32) + 2*(32*32+64*1+32) + (32 + 4 + 1)
	if got := m.Params.NumParams(); got != want {
		t.Fatalf("GRAT params = %d, want %d", got, want)
	}
}

func TestMultiHeadAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := tinyGraph()
	for _, kind := range []Kind{GAT, GRAT} {
		m, err := New(Config{Kind: kind, InputDim: 2, HiddenDim: 4, Layers: 2, Heads: 3})
		if err != nil {
			t.Fatal(err)
		}
		m.Init(rng)
		// 3 attention vectors per layer.
		for l := 0; l < 2; l++ {
			for h := 0; h < 3; h++ {
				if m.Params.Get(hname(l, h)) == nil {
					t.Fatalf("%s missing head param %s", kind, hname(l, h))
				}
			}
		}
		x := tinyFeatures(g, 2, rng)
		scores := m.Score(g, x)
		for i, s := range scores {
			if s <= 0 || s >= 1 || math.IsNaN(s) {
				t.Fatalf("%s heads=3 score[%d] = %v", kind, i, s)
			}
		}
	}
	if _, err := New(Config{Kind: GAT, InputDim: 2, HiddenDim: 4, Layers: 1, Heads: -1}); err == nil {
		t.Fatal("expected error for negative heads")
	}
}

// Multi-head gradients must stay exact.
func TestMultiHeadGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := tinyGraph()
	m, err := New(Config{Kind: GRAT, InputDim: 2, HiddenDim: 3, Layers: 1, Heads: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.Init(rng)
	x := tinyFeatures(g, 2, rng)
	eval := func() float64 {
		tp := autodiff.NewTape()
		bound := nn.Bind(tp, m.Params)
		out := m.Forward(tp, bound, g, x)
		return IMLoss(tp, g, out, LossConfig{Steps: 1, Lambda: 0.2}).Value.Data[0]
	}
	tp := autodiff.NewTape()
	bound := nn.Bind(tp, m.Params)
	out := m.Forward(tp, bound, g, x)
	loss := IMLoss(tp, g, out, LossConfig{Steps: 1, Lambda: 0.2})
	tp.Backward(loss)
	grads := nn.NewGrads(m.Params)
	nn.Collect(bound, grads)
	const eps = 1e-6
	for pi, p := range m.Params.All() {
		for k := range p.Value.Data {
			orig := p.Value.Data[k]
			p.Value.Data[k] = orig + eps
			fp := eval()
			p.Value.Data[k] = orig - eps
			fm := eval()
			p.Value.Data[k] = orig
			numeric := (fp - fm) / (2 * eps)
			analytic := grads.Mats()[pi].Data[k]
			if d := math.Abs(numeric - analytic); d > 2e-4*(1+math.Abs(numeric)) {
				t.Fatalf("param %s[%d]: analytic %v vs numeric %v", p.Name, k, analytic, numeric)
			}
		}
	}
}

func TestForwardShapePanic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := tinyGraph()
	m, _ := New(Config{Kind: GCN, InputDim: 3, HiddenDim: 4, Layers: 1})
	m.Init(rng)
	tp := autodiff.NewTape()
	bound := nn.Bind(tp, m.Params)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong feature dim")
		}
	}()
	m.Forward(tp, bound, g, tensor.New(g.NumNodes(), 2))
}
