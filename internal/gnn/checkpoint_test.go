package gnn

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := tinyGraph()
	for _, kind := range AllKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			src, err := New(Config{Kind: kind, InputDim: 3, HiddenDim: 6, Layers: 2})
			if err != nil {
				t.Fatal(err)
			}
			src.Init(rng)
			x := tinyFeatures(g, 3, rng)
			want := src.Score(g, x)

			var buf bytes.Buffer
			if err := src.Save(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cfg != src.Cfg {
				t.Fatalf("config lost: %+v vs %+v", got.Cfg, src.Cfg)
			}
			scores := got.Score(g, x)
			for i := range want {
				if scores[i] != want[i] {
					t.Fatalf("score[%d]: %v != %v after reload", i, scores[i], want[i])
				}
			}
		})
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json\nxx")); err == nil {
		t.Fatal("expected header error")
	}
	if _, err := Load(bytes.NewBufferString(`{"Kind":"bogus","InputDim":1,"HiddenDim":1,"Layers":1}` + "\n")); err == nil {
		t.Fatal("expected config error")
	}
	if _, err := Load(bytes.NewBufferString(`{"Kind":"gcn","InputDim":2,"HiddenDim":4,"Layers":1}` + "\n" + "truncated")); err == nil {
		t.Fatal("expected payload error")
	}
}
