package gnn

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Save writes a self-describing model checkpoint: a one-line JSON header
// with the architecture config followed by the binary parameter payload.
// Load reconstructs the model without needing the original Config.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	header, err := json.Marshal(m.Cfg)
	if err != nil {
		return fmt.Errorf("gnn: encoding checkpoint header: %w", err)
	}
	if _, err := bw.Write(append(header, '\n')); err != nil {
		return err
	}
	if _, err := m.Params.WriteTo(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads a checkpoint written by Save and returns the reconstructed
// model with its trained weights.
func Load(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("gnn: reading checkpoint header: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(line, &cfg); err != nil {
		return nil, fmt.Errorf("gnn: decoding checkpoint header: %w", err)
	}
	m, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("gnn: checkpoint config invalid: %w", err)
	}
	if err := m.Params.ReadInto(br); err != nil {
		return nil, err
	}
	return m, nil
}
