package gnn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"privim/internal/dataset"
	"privim/internal/graph"
)

// Theorem 2 (via Lemma 7 / Boole's inequality): the message-passing
// aggregate min(Σ w·x, 1) upper-bounds the exact 1-step activation
// probability 1 − Π(1 − w·x), for every node, on every graph and every
// activation vector.
func TestTheorem2BooleBoundHolds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dataset.ErdosRenyi(25, 80, true, rng)
		// Re-draw with random influence weights; activations in [0,1].
		gw := graph.NewWithNodes(25, true)
		for _, e := range g.Edges() {
			gw.AddEdge(e.From, e.To, rng.Float64())
		}
		active := make([]float64, 25)
		for i := range active {
			active[i] = rng.Float64()
		}
		bound := BooleActivationBound(gw, active)
		exact := ExactOneStepActivation(gw, active)
		for u := range bound {
			if bound[u] < exact[u]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem2BoundTightForSingleNeighbor(t *testing.T) {
	// With one in-neighbor the Boole bound is exact: Σ = 1 − (1 − w·x).
	g := graph.NewWithNodes(2, true)
	g.AddEdge(0, 1, 0.35)
	active := []float64{0.8, 0}
	bound := BooleActivationBound(g, active)
	exact := ExactOneStepActivation(g, active)
	if math.Abs(bound[1]-exact[1]) > 1e-12 {
		t.Fatalf("single-neighbor bound %v != exact %v", bound[1], exact[1])
	}
	if math.Abs(bound[1]-0.28) > 1e-12 {
		t.Fatalf("bound = %v, want 0.28", bound[1])
	}
}

func TestTheorem2BoundClampsAtOne(t *testing.T) {
	// Many strong in-neighbors: the sum exceeds 1 and must clamp.
	g := graph.NewWithNodes(4, true)
	for v := 1; v < 4; v++ {
		g.AddEdge(graph.NodeID(v), 0, 0.9)
	}
	active := []float64{0, 1, 1, 1}
	bound := BooleActivationBound(g, active)
	if bound[0] != 1 {
		t.Fatalf("bound = %v, want clamp at 1", bound[0])
	}
	exact := ExactOneStepActivation(g, active)
	if exact[0] >= 1 || exact[0] <= 0.99 {
		t.Fatalf("exact = %v, want 1 − 0.1³", exact[0])
	}
}

func TestBooleBoundValidation(t *testing.T) {
	g := graph.NewWithNodes(3, true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong activation length")
		}
	}()
	BooleActivationBound(g, []float64{1})
}
