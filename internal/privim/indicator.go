package privim

import (
	"fmt"
	"math"
)

// Indicator is the Gamma-pdf parameter-selection indicator of §IV-C: it
// models how PrivIM*'s utility varies with the subgraph size n and the
// frequency threshold M, and adapts the curve's peak to the dataset size
// through the shape parameters
//
//	β_n = k_n·ln|V| + b_n,   β_M = k_M/ln|V| + b_M.
//
// The scale parameters ψ and the (k, b) pairs come either from the paper's
// fitted values (DefaultIndicator) or from FitIndicator on prior
// experiments (Appendix H).
type Indicator struct {
	PsiN, PsiM float64
	KN, BN     float64
	KM, BM     float64
}

// DefaultIndicator returns the paper's fitted parameters (§V-D):
// ψ_n=25, k_n=0.47, b_n=−1.03 and ψ_M=5, k_M=4.02, b_M=1.22.
func DefaultIndicator() Indicator {
	return Indicator{PsiN: 25, KN: 0.47, BN: -1.03, PsiM: 5, KM: 4.02, BM: 1.22}
}

// Shapes returns (β_n, β_M) for a dataset with numNodes nodes (Eq. 12).
func (ind Indicator) Shapes(numNodes int) (betaN, betaM float64) {
	if numNodes < 2 {
		panic(fmt.Sprintf("privim: Indicator.Shapes numNodes = %d", numNodes))
	}
	lv := math.Log(float64(numNodes))
	return ind.KN*lv + ind.BN, ind.KM/lv + ind.BM
}

// GammaPDF evaluates the Gamma(β, ψ) probability density at x (Eq. 11),
// computed in log space for stability. Returns 0 for x <= 0.
func GammaPDF(x, beta, psi float64) float64 {
	if beta <= 0 || psi <= 0 {
		panic(fmt.Sprintf("privim: GammaPDF(beta=%v, psi=%v) invalid", beta, psi))
	}
	if x <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(beta)
	logp := (beta-1)*math.Log(x) - x/psi - beta*math.Log(psi) - lg
	return math.Exp(logp)
}

// Raw returns the unnormalized indicator ξ(n) + ξ(M) for a dataset of
// numNodes nodes.
func (ind Indicator) Raw(n, m, numNodes int) float64 {
	betaN, betaM := ind.Shapes(numNodes)
	return GammaPDF(float64(n), betaN, ind.PsiN) + GammaPDF(float64(m), betaM, ind.PsiM)
}

// Values evaluates I(n, M) (Eq. 10) over the cross product of the given
// grids, normalized so the maximum is 1. The result is indexed
// [i][j] = I(nGrid[i], mGrid[j]).
func (ind Indicator) Values(nGrid, mGrid []int, numNodes int) [][]float64 {
	out := make([][]float64, len(nGrid))
	max := 0.0
	for i, n := range nGrid {
		out[i] = make([]float64, len(mGrid))
		for j, m := range mGrid {
			v := ind.Raw(n, m, numNodes)
			out[i][j] = v
			if v > max {
				max = v
			}
		}
	}
	if max > 0 {
		for i := range out {
			for j := range out[i] {
				out[i][j] /= max
			}
		}
	}
	return out
}

// Best returns the (n, M) pair from the grids with the highest indicator
// value — the recommended parameters for a dataset of numNodes nodes,
// found without spending privacy budget on a parameter sweep.
func (ind Indicator) Best(nGrid, mGrid []int, numNodes int) (bestN, bestM int) {
	if len(nGrid) == 0 || len(mGrid) == 0 {
		panic("privim: Indicator.Best with empty grid")
	}
	vals := ind.Values(nGrid, mGrid, numNodes)
	bi, bj, best := 0, 0, -1.0
	for i := range vals {
		for j := range vals[i] {
			if vals[i][j] > best {
				bi, bj, best = i, j, vals[i][j]
			}
		}
	}
	return nGrid[bi], mGrid[bj]
}

// PeakN returns the mode of the ξ(n; β_n, ψ_n) component, (β_n−1)·ψ_n
// (Eq. 46) — the continuous-valued recommended subgraph size.
func (ind Indicator) PeakN(numNodes int) float64 {
	betaN, _ := ind.Shapes(numNodes)
	return (betaN - 1) * ind.PsiN
}

// PeakM returns the mode of the ξ(M; β_M, ψ_M) component, (β_M−1)·ψ_M.
func (ind Indicator) PeakM(numNodes int) float64 {
	_, betaM := ind.Shapes(numNodes)
	return (betaM - 1) * ind.PsiM
}

// Observation records one prior experiment: the dataset size and the
// empirically best (n, M) found there. FitIndicator turns a handful of
// these into indicator parameters (Appendix H, Eq. 48–51).
type Observation struct {
	NumNodes int
	BestN    int
	BestM    int
}

// FitIndicator fits (k_n, b_n, k_M, b_M) by least squares given fixed scale
// parameters ψ_n and ψ_M, using the closed forms of Eq. 48–51: the mode
// condition n/ψ_n = k_n·ln|V| + b_n − 1 regressed on ln|V|, and
// M/ψ_M = k_M·ln(1/|V|)... against 1/ln|V| per Eq. 12's reciprocal form.
func FitIndicator(obs []Observation, psiN, psiM float64) (Indicator, error) {
	if len(obs) < 2 {
		return Indicator{}, fmt.Errorf("privim: FitIndicator needs >= 2 observations, got %d", len(obs))
	}
	if psiN <= 0 || psiM <= 0 {
		return Indicator{}, fmt.Errorf("privim: FitIndicator scales must be positive")
	}
	// Regress y_n = n_i/ψ_n + 1 on x = ln|V_i| (slope k_n, intercept b_n).
	var xs, yn, ym []float64
	for _, o := range obs {
		if o.NumNodes < 2 || o.BestN < 1 || o.BestM < 1 {
			return Indicator{}, fmt.Errorf("privim: FitIndicator bad observation %+v", o)
		}
		lv := math.Log(float64(o.NumNodes))
		xs = append(xs, lv)
		yn = append(yn, float64(o.BestN)/psiN+1)
		ym = append(ym, float64(o.BestM)/psiM+1)
	}
	kn, bn, err := leastSquares(xs, yn)
	if err != nil {
		return Indicator{}, err
	}
	// β_M = k_M/ln|V| + b_M, so regress y_M on 1/ln|V|.
	invXs := make([]float64, len(xs))
	for i, x := range xs {
		invXs[i] = 1 / x
	}
	km, bm, err := leastSquares(invXs, ym)
	if err != nil {
		return Indicator{}, err
	}
	return Indicator{PsiN: psiN, KN: kn, BN: bn, PsiM: psiM, KM: km, BM: bm}, nil
}

// leastSquares fits y = k·x + b, returning an error on degenerate x.
func leastSquares(xs, ys []float64) (k, b float64, err error) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return 0, 0, fmt.Errorf("privim: leastSquares degenerate x values")
	}
	k = (n*sxy - sx*sy) / den
	b = (sy - k*sx) / n
	return k, b, nil
}
