package privim

import "fmt"

// CanceledError reports a training run stopped early because its context
// was canceled or its deadline expired. The DP-SGD loop only honors
// cancellation between iterations and during the per-sample gradient
// pass (never after the noisy update has been applied), so the partial
// state is always "exactly Iter completed iterations":
//
//   - Partial.Model holds the parameters after Iter iterations;
//   - Partial.LossHistory / NoisyLossHistory hold Iter entries;
//   - Partial.EpsilonSpent is the ε actually spent — the accountant at
//     Iter iterations, not the full-run figure — which is what a budget
//     ledger must commit for the canceled run;
//   - CheckpointPath, when non-empty, is a final checkpoint written at
//     the stop point, from which a rerun resumes bit-for-bit.
//
// Unwrap yields the context error, so errors.Is(err, context.Canceled)
// works through it.
type CanceledError struct {
	// Partial is the result as of the last completed iteration.
	Partial *Result
	// Iter is the number of completed DP-SGD iterations.
	Iter int
	// CheckpointPath is the final checkpoint written on cancel ("" when
	// no checkpoint directory is configured, Iter is 0, or the save
	// failed).
	CheckpointPath string
	// Err is the underlying context error.
	Err error
}

// Error implements error.
func (e *CanceledError) Error() string {
	total := 0
	if e.Partial != nil {
		total = e.Partial.Config.Iterations
	}
	return fmt.Sprintf("privim: training canceled after %d/%d iterations: %v", e.Iter, total, e.Err)
}

// Unwrap returns the context error.
func (e *CanceledError) Unwrap() error { return e.Err }
