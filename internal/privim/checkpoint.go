package privim

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"privim/internal/graph"
	"privim/internal/nn"
	"privim/internal/obs"
)

// Crash-safe training checkpoints. A checkpoint captures everything the
// DP-SGD loop needs to continue bit-for-bit identically to an
// uninterrupted run: model parameters, optimizer moments, the RNG stream
// position (so batch picks and noise draws line up), the loss histories,
// and the privacy-accounting scalars for cross-checking. The file layer
// (temp file + checksum trailer + atomic rename, nn.WriteFileAtomic) is
// shared with the rest of the repo's durable state.
//
// Resume does NOT skip Module 1: extraction and model init are
// deterministic functions of (graph, config, seed), so Train re-runs
// them, then fast-forwards the RNG from its post-init position to the
// checkpointed draw count. That keeps checkpoints small (no subgraph
// container on disk) and makes every restored tensor verifiable against
// a freshly computed layout.
const (
	trainCkptMagic   = "PVIMTRN1"
	trainCkptVersion = uint32(1)
	// checkpointKeep is how many recent checkpoint files a run retains;
	// older ones are pruned after each save. More than one survives so a
	// corrupted newest file still leaves a previous good checkpoint to
	// fall back to.
	checkpointKeep = 3
)

// countingSource wraps math/rand's Source64 and counts every draw, so
// the stream position can be persisted as a single integer and replayed
// with Skip. Both Int63 and Uint64 advance the underlying generator by
// exactly one state step, so the count is method-agnostic.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	// math/rand's NewSource has implemented Source64 since Go 1.8; the
	// assertion keeps rand.Rand on the same Uint64 fast path it uses over
	// the unwrapped source, so wrapping does not change the stream.
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

// Seed satisfies rand.Source; the training loop never reseeds.
func (c *countingSource) Seed(seed int64) {
	c.src = rand.NewSource(seed).(rand.Source64)
	c.draws = 0
}

// Draws returns the number of values drawn since seeding.
func (c *countingSource) Draws() uint64 { return c.draws }

// Skip advances the stream by n draws without handing the values out —
// the resume fast-forward. It is cheap (one generator step per draw)
// next to the forward/backward passes those draws originally drove.
func (c *countingSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.draws += n
}

// configFingerprint hashes every config field that shapes the training
// stream, plus the training graph's content fingerprint. A checkpoint
// resumes only into a run whose fingerprint matches; anything that would
// change extraction, accounting, the batch schedule, or the noise draws
// is included. Workers is deliberately excluded (results are bit-for-bit
// width-independent, the PR 3 contract), as are Observer and the
// checkpoint knobs themselves.
func configFingerprint(cfg Config, g *graph.Graph) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "v1|graph=%016x|mode=%s|obj=%s|cover=%d|gnn=%s|hid=%d|layers=%d",
		g.Fingerprint(), cfg.Mode, cfg.Objective, cfg.CoverBudget, cfg.GNNKind, cfg.HiddenDim, cfg.Layers)
	fmt.Fprintf(h, "|eps=%x|delta=%x|n=%d|theta=%d|tau=%x|mu=%x|q=%x|L=%d|M=%d|s=%d",
		math.Float64bits(cfg.Epsilon), math.Float64bits(cfg.Delta), cfg.SubgraphSize, cfg.Theta,
		math.Float64bits(cfg.Tau), math.Float64bits(cfg.Mu), math.Float64bits(cfg.SamplingRate),
		cfg.WalkLength, cfg.Threshold, cfg.BESDivisor)
	fmt.Fprintf(h, "|T=%d|B=%d|lr=%x|C=%x|j=%d|lambda=%x|wd=%x|seed=%d|initseed=%d",
		cfg.Iterations, cfg.BatchSize, math.Float64bits(cfg.LearnRate), math.Float64bits(cfg.ClipBound),
		cfg.LossSteps, math.Float64bits(cfg.Lambda), math.Float64bits(cfg.WeightDecay),
		cfg.Seed, cfg.InitSeed)
	return h.Sum64()
}

// trainState is the decoded payload of one training checkpoint.
type trainState struct {
	fingerprint uint64
	iter        int
	rngDraws    uint64
	sigma       float64
	epsSpent    float64
	loss        []float64
	noisy       []float64
	params      []byte // ParamSet.WriteTo section, restored by the caller
	opt         []byte // StatefulOptimizer.StateTo section
}

// checkpointer owns one run's checkpoint directory: atomic saves, pruned
// retention, and newest-good-first resume.
type checkpointer struct {
	dir   string
	every int
	fp    uint64
	sigma float64 // expected noise multiplier, cross-checked on resume
	eps   float64 // expected EpsilonSpent at full T
	o     obs.Observer
}

func newCheckpointer(cfg Config, g *graph.Graph, sigma, eps float64, o obs.Observer) (*checkpointer, error) {
	if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
		return nil, fmt.Errorf("privim: checkpoint dir: %w", err)
	}
	return &checkpointer{
		dir:   cfg.CheckpointDir,
		every: cfg.CheckpointEvery,
		fp:    configFingerprint(cfg, g),
		sigma: sigma,
		eps:   eps,
		o:     o,
	}, nil
}

func checkpointPath(dir string, iter int) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%08d.ckpt", iter))
}

// list returns the directory's checkpoint files sorted newest first
// (zero-padded iteration numbers make lexicographic order numeric).
func (c *checkpointer) list() []string {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if name := e.Name(); strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".ckpt") {
			names = append(names, name)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = filepath.Join(c.dir, n)
	}
	return paths
}

// save writes the full training state after iter completed iterations
// and prunes old checkpoints beyond checkpointKeep.
func (c *checkpointer) save(iter int, draws uint64, params *nn.ParamSet, opt nn.StatefulOptimizer, res *Result) error {
	start := time.Now()
	path := checkpointPath(c.dir, iter)

	var paramBuf, optBuf bytes.Buffer
	if _, err := params.WriteTo(&paramBuf); err != nil {
		return err
	}
	if err := opt.StateTo(&optBuf); err != nil {
		return err
	}

	n, err := nn.WriteFileAtomic(path, func(w io.Writer) error {
		le := binary.LittleEndian
		if _, err := w.Write([]byte(trainCkptMagic)); err != nil {
			return err
		}
		if err := binary.Write(w, le, trainCkptVersion); err != nil {
			return err
		}
		if err := binary.Write(w, le, c.fp); err != nil {
			return err
		}
		if err := binary.Write(w, le, uint32(iter)); err != nil {
			return err
		}
		if err := binary.Write(w, le, draws); err != nil {
			return err
		}
		if err := binary.Write(w, le, math.Float64bits(c.sigma)); err != nil {
			return err
		}
		if err := binary.Write(w, le, math.Float64bits(c.eps)); err != nil {
			return err
		}
		for _, hist := range [][]float64{res.LossHistory, res.NoisyLossHistory} {
			if err := binary.Write(w, le, uint32(len(hist))); err != nil {
				return err
			}
			for _, v := range hist {
				if err := binary.Write(w, le, math.Float64bits(v)); err != nil {
					return err
				}
			}
		}
		for _, section := range [][]byte{paramBuf.Bytes(), optBuf.Bytes()} {
			if err := binary.Write(w, le, uint64(len(section))); err != nil {
				return err
			}
			if _, err := w.Write(section); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("privim: writing checkpoint %s: %w", path, err)
	}
	obs.Emit(c.o, obs.CheckpointSaved{Iter: iter, Path: path, Bytes: n, Elapsed: time.Since(start)})

	if paths := c.list(); len(paths) > checkpointKeep {
		for _, old := range paths[checkpointKeep:] {
			os.Remove(old) // best effort; a leftover is re-pruned next save
		}
	}
	return nil
}

// decode parses a verified checkpoint payload.
func decodeTrainState(payload []byte) (*trainState, error) {
	r := bytes.NewReader(payload)
	le := binary.LittleEndian
	magic := make([]byte, len(trainCkptMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("reading magic: %w", err)
	}
	if string(magic) != trainCkptMagic {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(r, le, &version); err != nil {
		return nil, err
	}
	if version != trainCkptVersion {
		return nil, fmt.Errorf("unsupported version %d", version)
	}
	st := &trainState{}
	var fp uint64
	if err := binary.Read(r, le, &fp); err != nil {
		return nil, err
	}
	var iter uint32
	if err := binary.Read(r, le, &iter); err != nil {
		return nil, err
	}
	st.iter = int(iter)
	if err := binary.Read(r, le, &st.rngDraws); err != nil {
		return nil, err
	}
	var sigmaBits, epsBits uint64
	if err := binary.Read(r, le, &sigmaBits); err != nil {
		return nil, err
	}
	if err := binary.Read(r, le, &epsBits); err != nil {
		return nil, err
	}
	st.sigma = math.Float64frombits(sigmaBits)
	st.epsSpent = math.Float64frombits(epsBits)
	st.fingerprint = fp
	for _, hist := range []*[]float64{&st.loss, &st.noisy} {
		var n uint32
		if err := binary.Read(r, le, &n); err != nil {
			return nil, err
		}
		if int(n) > len(payload)/8 {
			return nil, fmt.Errorf("implausible history length %d", n)
		}
		vs := make([]float64, n)
		for i := range vs {
			var bits uint64
			if err := binary.Read(r, le, &bits); err != nil {
				return nil, err
			}
			vs[i] = math.Float64frombits(bits)
		}
		*hist = vs
	}
	for _, section := range []*[]byte{&st.params, &st.opt} {
		var n uint64
		if err := binary.Read(r, le, &n); err != nil {
			return nil, err
		}
		if n > uint64(r.Len()) {
			return nil, fmt.Errorf("section length %d exceeds remaining %d bytes", n, r.Len())
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		*section = b
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%d trailing bytes", r.Len())
	}
	return st, nil
}

// resume scans the checkpoint directory newest-first, restores the first
// checkpoint that verifies against this run (file integrity, config and
// graph fingerprint, accounting scalars, RNG position not behind the
// post-init stream), and fast-forwards the RNG. It returns nil when no
// usable checkpoint exists — a fresh start, which is always correct.
func (c *checkpointer) resume(cfg Config, params *nn.ParamSet, opt nn.StatefulOptimizer, src *countingSource) *trainState {
	reject := func(path, reason string) {
		obs.Emit(c.o, obs.CheckpointRejected{Path: path, Reason: reason})
	}
	for _, path := range c.list() {
		payload, err := nn.ReadFileVerified(path)
		if err != nil {
			reject(path, err.Error())
			continue
		}
		st, err := decodeTrainState(payload)
		if err != nil {
			reject(path, err.Error())
			continue
		}
		if st.fingerprint != c.fp {
			reject(path, fmt.Sprintf("config/graph fingerprint %016x does not match run %016x", st.fingerprint, c.fp))
			continue
		}
		switch {
		case st.iter <= 0 || st.iter >= cfg.Iterations:
			reject(path, fmt.Sprintf("iteration %d outside (0, %d)", st.iter, cfg.Iterations))
			continue
		case math.Float64bits(st.sigma) != math.Float64bits(c.sigma):
			reject(path, fmt.Sprintf("noise multiplier %v does not match run's %v", st.sigma, c.sigma))
			continue
		case math.Float64bits(st.epsSpent) != math.Float64bits(c.eps):
			reject(path, fmt.Sprintf("epsilon %v does not match run's %v", st.epsSpent, c.eps))
			continue
		case len(st.loss) != st.iter || len(st.noisy) != st.iter:
			reject(path, fmt.Sprintf("history lengths %d/%d do not match iteration %d", len(st.loss), len(st.noisy), st.iter))
			continue
		case st.rngDraws < src.Draws():
			reject(path, fmt.Sprintf("RNG position %d behind post-init position %d", st.rngDraws, src.Draws()))
			continue
		}
		if err := params.ReadInto(bytes.NewReader(st.params)); err != nil {
			reject(path, "params: "+err.Error())
			continue
		}
		if err := opt.StateFrom(bytes.NewReader(st.opt)); err != nil {
			reject(path, "optimizer: "+err.Error())
			continue
		}
		src.Skip(st.rngDraws - src.Draws())
		obs.Emit(c.o, obs.CheckpointResumed{Iter: st.iter, Path: path, RNGDraws: st.rngDraws})
		return st
	}
	return nil
}
