package privim

import (
	"reflect"
	"sync"
	"testing"

	"privim/internal/obs"
)

// eventCollector is a threadsafe recording observer.
type eventCollector struct {
	mu     sync.Mutex
	events []obs.Event
}

func (c *eventCollector) Emit(e obs.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func (c *eventCollector) all() []obs.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]obs.Event(nil), c.events...)
}

// TestTrainEmitsEventStream is the observability smoke test of the
// acceptance criteria: a Train run with an observer attached must emit a
// balanced span tree covering Modules 1–3 and one IterationEnd per
// iteration with a monotone ε trajectory ending at Result.EpsilonSpent.
func TestTrainEmitsEventStream(t *testing.T) {
	ds := quickDataset(t)
	train := ds.TrainSubgraph().G
	cfg := quickConfig(ModeDual)
	c := &eventCollector{}
	cfg.Observer = c

	res, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}

	events := c.all()
	if len(events) == 0 {
		t.Fatal("no events emitted")
	}

	// Span open/close balance + the Module 1–3 coverage.
	open := map[uint64]obs.SpanStart{}
	closed := map[string]int{}
	for _, e := range events {
		switch ev := e.(type) {
		case obs.SpanStart:
			if _, dup := open[ev.ID]; dup {
				t.Fatalf("span ID %d opened twice", ev.ID)
			}
			open[ev.ID] = ev
		case obs.SpanEnd:
			st, ok := open[ev.ID]
			if !ok {
				t.Fatalf("SpanEnd %d (%s) without matching SpanStart", ev.ID, ev.Span)
			}
			if st.Span != ev.Span || st.Parent != ev.Parent {
				t.Fatalf("span %d start/end mismatch: %+v vs %+v", ev.ID, st, ev)
			}
			delete(open, ev.ID)
			closed[ev.Span]++
		}
	}
	if len(open) != 0 {
		t.Fatalf("unbalanced span tree, still open: %v", open)
	}
	for _, name := range []string{"train", "module1.extract", "module2.account", "module3.dpsgd"} {
		if closed[name] != 1 {
			t.Fatalf("span %q closed %d times, want 1 (closed=%v)", name, closed[name], closed)
		}
	}

	// One IterationEnd per iteration, ε monotone nondecreasing, final ε
	// equal to the result's accounting.
	var iters []obs.IterationEnd
	for _, e := range events {
		if ev, ok := e.(obs.IterationEnd); ok {
			iters = append(iters, ev)
		}
	}
	if len(iters) != cfg.Iterations {
		t.Fatalf("got %d IterationEnd events, want %d", len(iters), cfg.Iterations)
	}
	prevEps := 0.0
	for i, ev := range iters {
		if ev.Iter != i {
			t.Fatalf("IterationEnd %d has Iter=%d", i, ev.Iter)
		}
		if ev.EpsilonSpent < prevEps {
			t.Fatalf("epsilon not monotone: iter %d spent %v after %v", i, ev.EpsilonSpent, prevEps)
		}
		prevEps = ev.EpsilonSpent
		if ev.Loss != res.LossHistory[i] {
			t.Fatalf("iter %d loss %v != LossHistory %v", i, ev.Loss, res.LossHistory[i])
		}
		if ev.NoisyLoss != res.NoisyLossHistory[i] {
			t.Fatalf("iter %d noisy loss %v != NoisyLossHistory %v", i, ev.NoisyLoss, res.NoisyLossHistory[i])
		}
		if ev.GradNorm < 0 || ev.ClipFraction < 0 || ev.ClipFraction > 1 {
			t.Fatalf("iter %d has implausible telemetry: %+v", i, ev)
		}
	}
	if prevEps != res.EpsilonSpent {
		t.Fatalf("final IterationEnd eps %v != Result.EpsilonSpent %v", prevEps, res.EpsilonSpent)
	}

	// Module 1 telemetry: the dual-stage sampler reports its SCS stage
	// (BES only runs when a boundary remains).
	stages := map[string]obs.ExtractionDone{}
	for _, e := range events {
		if ev, ok := e.(obs.ExtractionDone); ok {
			stages[ev.Stage] = ev
		}
	}
	scs, ok := stages["scs"]
	if !ok {
		t.Fatalf("no scs ExtractionDone event (stages=%v)", stages)
	}
	if scs.Subgraphs == 0 || scs.Walks == 0 {
		t.Fatalf("empty scs telemetry: %+v", scs)
	}
	if scs.MaxOccurrence > cfg.Threshold {
		t.Fatalf("scs max occurrence %d breaches threshold %d", scs.MaxOccurrence, cfg.Threshold)
	}
}

// TestTrainObserverDoesNotPerturbRun pins the zero-interference contract:
// attaching an observer must not change the training trajectory.
func TestTrainObserverDoesNotPerturbRun(t *testing.T) {
	ds := quickDataset(t)
	train := ds.TrainSubgraph().G

	plain, err := Train(train, quickConfig(ModeDual))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(ModeDual)
	cfg.Observer = &eventCollector{}
	observed, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.LossHistory, observed.LossHistory) {
		t.Fatalf("observer changed the run:\nplain    = %v\nobserved = %v",
			plain.LossHistory, observed.LossHistory)
	}
	if plain.EpsilonSpent != observed.EpsilonSpent {
		t.Fatalf("observer changed accounting: %v vs %v", plain.EpsilonSpent, observed.EpsilonSpent)
	}
}

// TestNoisyLossHistory covers the new Result field: recorded every
// iteration alongside LossHistory, for private and non-private runs.
func TestNoisyLossHistory(t *testing.T) {
	ds := quickDataset(t)
	train := ds.TrainSubgraph().G
	for _, mode := range []Mode{ModeDual, ModeNonPrivate} {
		res, err := Train(train, quickConfig(mode))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.NoisyLossHistory) != len(res.LossHistory) {
			t.Fatalf("%s: NoisyLossHistory has %d entries, LossHistory %d",
				mode, len(res.NoisyLossHistory), len(res.LossHistory))
		}
		for i, v := range res.NoisyLossHistory {
			if v <= 0 {
				t.Fatalf("%s: NoisyLossHistory[%d] = %v, want > 0", mode, i, v)
			}
		}
	}
}
