package privim

import (
	"testing"

	"privim/internal/obs"
)

// TestTrainWorkersBitExact verifies the tentpole determinism guarantee for
// DP-SGD: the per-sample fan-out plus fixed-shape tree reduction must make
// every loss, noisy loss, and trained weight bit-for-bit identical at any
// worker count (the paper's privacy accounting assumes a single well-defined
// mechanism, not one per scheduler interleaving).
func TestTrainWorkersBitExact(t *testing.T) {
	ds := quickDataset(t)
	train := ds.TrainSubgraph().G

	run := func(workers int) *Result {
		cfg := quickConfig(ModeDual)
		cfg.Workers = workers
		res, err := Train(train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	ref := run(1)
	for _, w := range []int{2, 3, 8} {
		got := run(w)
		if len(got.LossHistory) != len(ref.LossHistory) {
			t.Fatalf("workers=%d: %d loss entries, want %d", w, len(got.LossHistory), len(ref.LossHistory))
		}
		for i := range ref.LossHistory {
			if got.LossHistory[i] != ref.LossHistory[i] {
				t.Fatalf("workers=%d iter %d: loss %v != %v", w, i, got.LossHistory[i], ref.LossHistory[i])
			}
			if got.NoisyLossHistory[i] != ref.NoisyLossHistory[i] {
				t.Fatalf("workers=%d iter %d: noisy loss %v != %v", w, i, got.NoisyLossHistory[i], ref.NoisyLossHistory[i])
			}
		}
		refParams := ref.Model.Params.All()
		for pi, p := range got.Model.Params.All() {
			for j, v := range p.Value.Data {
				if v != refParams[pi].Value.Data[j] {
					t.Fatalf("workers=%d: param %s[%d] = %v != %v", w, p.Name, j, v, refParams[pi].Value.Data[j])
				}
			}
		}
		if got.EpsilonSpent != ref.EpsilonSpent {
			t.Fatalf("workers=%d: epsilon %v != %v", w, got.EpsilonSpent, ref.EpsilonSpent)
		}
	}
}

// TestTrainEmitsParallelFor checks the DP-SGD fan-out site reports pool
// activity through the observability stream.
func TestTrainEmitsParallelFor(t *testing.T) {
	ds := quickDataset(t)
	var events []obs.ParallelFor
	cfg := quickConfig(ModeDual)
	cfg.Workers = 2
	cfg.Observer = obs.ObserverFunc(func(e obs.Event) {
		if pf, ok := e.(obs.ParallelFor); ok {
			events = append(events, pf)
		}
	})
	if _, err := Train(ds.TrainSubgraph().G, cfg); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pf := range events {
		if pf.Site == "train.dpsgd" {
			found = true
			if pf.Tasks <= 0 || pf.Workers <= 0 {
				t.Fatalf("degenerate ParallelFor event: %+v", pf)
			}
		}
	}
	if !found {
		t.Fatal("no ParallelFor event for site train.dpsgd")
	}
}
