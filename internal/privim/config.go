// Package privim is the core of the reproduction: the PrivIM framework for
// training node-level differentially private GNNs for influence
// maximization (§III), the dual-stage adaptive frequency sampling upgrade
// PrivIM* (§IV), the Gamma-distribution parameter-selection indicator
// (§IV-C), and the EGN / HP / HP-GRAT baselines used in the evaluation
// (§V-A).
package privim

import (
	"fmt"
	"math"

	"privim/internal/gnn"
	"privim/internal/obs"
)

// Mode selects a method from the paper's competitor list.
type Mode string

// The evaluated methods. ModeNaive is "PrivIM" (Algorithm 1 sampling),
// ModeSCS adds stage 1 only, ModeDual is PrivIM* (both stages), and the
// rest are baselines.
const (
	ModeNaive      Mode = "privim"
	ModeSCS        Mode = "privim+scs"
	ModeDual       Mode = "privim*"
	ModeNonPrivate Mode = "non-private"
	ModeEGN        Mode = "egn"
	ModeHP         Mode = "hp"
	ModeHPGRAT     Mode = "hp-grat"
)

// AllModes lists the trainable methods in the paper's Figure 5 order.
func AllModes() []Mode {
	return []Mode{ModeDual, ModeNaive, ModeHPGRAT, ModeHP, ModeEGN, ModeNonPrivate}
}

// Objective selects what the GNN is trained to optimize.
type Objective string

// Training objectives: influence maximization (the paper's task) and the
// §VI-C maximum-coverage extension — both run under the identical DP-SGD
// pipeline and privacy accounting, which is the point of the remark.
const (
	ObjectiveIM       Objective = "im"
	ObjectiveMaxCover Objective = "maxcover"
)

// Config assembles every knob of the pipeline. Zero values fall back to
// the paper's defaults (§V-A) via normalize.
type Config struct {
	Mode Mode

	// Objective picks the training loss (default ObjectiveIM).
	Objective Objective
	// CoverBudget is the per-subgraph cardinality k for ObjectiveMaxCover
	// (default SubgraphSize/4, min 1).
	CoverBudget int

	// GNNKind overrides the architecture (default: GRAT for PrivIM
	// variants and HP-GRAT, GCN for HP and EGN, per §V-A).
	GNNKind   gnn.Kind
	HiddenDim int // default 32
	Layers    int // default 3 (this is r)

	// Epsilon is the privacy budget. 0 (unset) and +Inf both mean
	// non-private — no noise — and non-private mode forces +Inf;
	// negative is a validation error (the serve layer rejects it with
	// 400 before a job is created). Delta defaults to 1/|V_train|.
	Epsilon float64
	Delta   float64

	// Sampling parameters (Algorithms 1 and 3).
	SubgraphSize int     // n (default 20)
	Theta        int     // θ (default 10)
	Tau          float64 // τ (default 0.3)
	Mu           float64 // µ decay (default 1)
	SamplingRate float64 // q (default 256/|V|)
	WalkLength   int     // L (default 200)
	Threshold    int     // M (default 4)
	BESDivisor   int     // s (default 2)

	// Training parameters (Algorithm 2).
	Iterations int     // T (default 40)
	BatchSize  int     // B (default 16)
	LearnRate  float64 // η (default 0.005, the paper's setting)
	ClipBound  float64 // C (default 1)
	LossSteps  int     // j diffusion steps in the loss (default 1)
	Lambda     float64 // λ seed-mass penalty (default 0.5)
	// WeightDecay regularizes private training: the injected DP noise is
	// zero-mean, so decay pulls the parameter random walk back toward the
	// origin while the (persistent) gradient signal survives — without it,
	// noisy runs drift until every sigmoid saturates and scores tie.
	// Default 2 for private runs (decoupled decay with Adam lr keeps the
	// equilibrium weight scale near 0.5), 0 for non-private.
	WeightDecay float64

	// Workers caps the worker pool used by this run's parallel paths:
	// the per-sample gradient fan-out of Algorithm 2 and the tree
	// reduction feeding the noise accumulator. 0 means the process-wide
	// default (-workers flag, PRIVIM_WORKERS, then GOMAXPROCS); the
	// serving daemon sets it per training job so concurrent jobs do not
	// oversubscribe the machine. Results are bit-for-bit independent of
	// the value — only wall-clock changes.
	Workers int

	// CheckpointDir, when non-empty, makes Train crash-safe: every
	// CheckpointEvery iterations the full training state — parameters,
	// optimizer moments, RNG stream position, loss histories, and the
	// accounting scalars — is written atomically (temp file + checksum +
	// rename) into the directory, and on start Train resumes from the
	// newest valid checkpoint found there. A resumed run is bit-for-bit
	// identical to an uninterrupted one (same final model, seed set, and
	// EpsilonSpent) at any worker count. Checkpoints are keyed to a
	// config+graph fingerprint, so a directory holding state from a
	// different run is safely ignored. Empty (the default) disables
	// checkpointing entirely.
	CheckpointDir string
	// CheckpointEvery is the save cadence in iterations (default 10 when
	// CheckpointDir is set; ignored otherwise). The final iteration never
	// writes a checkpoint — a finished run has nothing to resume.
	CheckpointEvery int

	// Observer receives live pipeline events (spans over Modules 1–3,
	// per-iteration loss/clip/ε telemetry, extraction histograms); see
	// internal/obs for the taxonomy and sinks. nil (the default) disables
	// all instrumentation at zero per-iteration cost.
	Observer obs.Observer

	Seed int64
	// InitSeed, when nonzero, seeds parameter initialization separately
	// from the sampling/noise randomness. Privacy audits pin it so the
	// distinguishing attack is not washed out by init variance (the DP
	// guarantee quantifies only over the mechanism's internal randomness;
	// initialization is public).
	InitSeed int64
}

// normalize fills defaults; numNodes is the training-graph size.
func (c Config) normalize(numNodes int) (Config, error) {
	switch c.Mode {
	case ModeNaive, ModeSCS, ModeDual, ModeNonPrivate, ModeEGN, ModeHP, ModeHPGRAT:
	case "":
		c.Mode = ModeDual
	default:
		return c, fmt.Errorf("privim: unknown mode %q", c.Mode)
	}
	if c.GNNKind == "" {
		switch c.Mode {
		case ModeEGN, ModeHP:
			c.GNNKind = gnn.GCN
		default:
			c.GNNKind = gnn.GRAT
		}
	}
	if c.HiddenDim == 0 {
		c.HiddenDim = 32
	}
	if c.Layers == 0 {
		c.Layers = 3
	}
	if c.Mode == ModeNonPrivate {
		c.Epsilon = math.Inf(1)
	}
	if c.Delta == 0 {
		c.Delta = 1 / float64(numNodes+1)
	}
	if c.SubgraphSize == 0 {
		c.SubgraphSize = 20
	}
	if c.SubgraphSize > numNodes {
		c.SubgraphSize = numNodes
	}
	if c.Theta == 0 {
		c.Theta = 10
	}
	if c.Tau == 0 {
		c.Tau = 0.3
	}
	if c.Mu == 0 {
		c.Mu = 1
	}
	if c.SamplingRate == 0 {
		c.SamplingRate = 256 / float64(numNodes)
		if c.SamplingRate > 1 {
			c.SamplingRate = 1
		}
	}
	if c.WalkLength == 0 {
		c.WalkLength = 200
	}
	if c.Threshold == 0 {
		c.Threshold = 4
	}
	if c.BESDivisor == 0 {
		c.BESDivisor = 2
	}
	if c.Iterations == 0 {
		c.Iterations = 40
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.005
	}
	if c.ClipBound == 0 {
		c.ClipBound = 1
	}
	if c.LossSteps == 0 {
		c.LossSteps = 1
	}
	if c.Lambda == 0 {
		c.Lambda = 0.5
	}
	if c.WeightDecay == 0 && c.privatized() {
		c.WeightDecay = 2
	}
	if c.Workers < 0 {
		c.Workers = 0
	}
	if c.CheckpointEvery < 0 {
		return c, fmt.Errorf("privim: checkpoint every %d must be >= 0", c.CheckpointEvery)
	}
	if c.CheckpointDir != "" && c.CheckpointEvery == 0 {
		c.CheckpointEvery = 10
	}
	switch c.Objective {
	case "":
		c.Objective = ObjectiveIM
	case ObjectiveIM, ObjectiveMaxCover:
	default:
		return c, fmt.Errorf("privim: unknown objective %q", c.Objective)
	}
	if c.CoverBudget == 0 {
		c.CoverBudget = c.SubgraphSize / 4
		if c.CoverBudget < 1 {
			c.CoverBudget = 1
		}
	}
	// Epsilon semantics: negative is an error, zero (unset) and +Inf both
	// mean non-private.
	if c.Epsilon < 0 {
		return c, fmt.Errorf("privim: epsilon %v must be positive (or 0 / +Inf for non-private)", c.Epsilon)
	}
	if c.Epsilon == 0 {
		c.Epsilon = math.Inf(1)
	}
	return c, nil
}

// privatized reports whether this config injects DP noise.
func (c Config) privatized() bool {
	return c.Mode != ModeNonPrivate && !math.IsInf(c.Epsilon, 1) && c.Epsilon > 0
}
