package privim

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"privim/internal/graph"
	"privim/internal/obs"
)

// TestCountingSourceMatchesPlainSource pins the wrapper contract: the
// stream is identical to an unwrapped rand.NewSource, every draw is
// counted, and Skip(n) lands on exactly the state n draws would have.
func TestCountingSourceMatchesPlainSource(t *testing.T) {
	plain := rand.New(rand.NewSource(42))
	src := newCountingSource(42)
	counted := rand.New(src)
	for i := 0; i < 200; i++ {
		switch i % 3 {
		case 0:
			if a, b := plain.Intn(1000), counted.Intn(1000); a != b {
				t.Fatalf("draw %d: Intn diverged: %d vs %d", i, a, b)
			}
		case 1:
			if a, b := plain.NormFloat64(), counted.NormFloat64(); a != b {
				t.Fatalf("draw %d: NormFloat64 diverged: %v vs %v", i, a, b)
			}
		default:
			if a, b := plain.Float64(), counted.Float64(); a != b {
				t.Fatalf("draw %d: Float64 diverged: %v vs %v", i, a, b)
			}
		}
	}
	if src.Draws() == 0 {
		t.Fatal("no draws counted")
	}

	// Skip(n) ≡ drawing n values and discarding them.
	a := newCountingSource(7)
	b := newCountingSource(7)
	ra := rand.New(a)
	for i := 0; i < 57; i++ {
		ra.Int63()
	}
	b.Skip(a.Draws())
	if a.Draws() != b.Draws() {
		t.Fatalf("draw counts diverged: %d vs %d", a.Draws(), b.Draws())
	}
	rb := rand.New(b)
	for i := 0; i < 20; i++ {
		if x, y := ra.Int63(), rb.Int63(); x != y {
			t.Fatalf("post-skip draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

// crashPanic is the sentinel a simulated crash unwinds with.
type crashPanic struct{ iter int }

// crashObserver panics out of Train when iteration `at` completes — an
// in-process stand-in for kill -9 mid-train: the iterations already
// checkpointed are on disk, everything after is lost.
func crashObserver(at int) obs.Observer {
	return obs.ObserverFunc(func(e obs.Event) {
		if ie, ok := e.(obs.IterationEnd); ok && ie.Iter == at {
			panic(crashPanic{iter: at})
		}
	})
}

// trainExpectCrash runs Train and requires it to die at the simulated
// crash point.
func trainExpectCrash(t *testing.T, g *graph.Graph, cfg Config) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("training survived the injected crash")
		}
		if _, ok := r.(crashPanic); !ok {
			panic(r) // a real failure, not our sentinel
		}
	}()
	_, err := Train(g, cfg)
	t.Fatalf("Train returned (%v) instead of crashing", err)
}

// eventTrap records every event, concurrency-safe.
type eventTrap struct {
	mu     sync.Mutex
	events []obs.Event
}

func (tr *eventTrap) Emit(e obs.Event) {
	tr.mu.Lock()
	tr.events = append(tr.events, e)
	tr.mu.Unlock()
}

func (tr *eventTrap) count(kind string) int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := 0
	for _, e := range tr.events {
		if e.EventKind() == kind {
			n++
		}
	}
	return n
}

func paramBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := res.Model.Params.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func floatsEqualBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// requireSameRun asserts the resumed result is bit-for-bit the baseline:
// parameters, privacy spend, histories, and the seed set they induce.
func requireSameRun(t *testing.T, g *graph.Graph, want, got *Result) {
	t.Helper()
	if !bytes.Equal(paramBytes(t, want), paramBytes(t, got)) {
		t.Fatal("final parameters differ from uninterrupted run")
	}
	if math.Float64bits(want.EpsilonSpent) != math.Float64bits(got.EpsilonSpent) {
		t.Fatalf("EpsilonSpent differs: %v vs %v", want.EpsilonSpent, got.EpsilonSpent)
	}
	if !floatsEqualBits(want.LossHistory, got.LossHistory) {
		t.Fatalf("LossHistory differs:\nwant %v\ngot  %v", want.LossHistory, got.LossHistory)
	}
	if !floatsEqualBits(want.NoisyLossHistory, got.NoisyLossHistory) {
		t.Fatalf("NoisyLossHistory differs:\nwant %v\ngot  %v", want.NoisyLossHistory, got.NoisyLossHistory)
	}
	ws, gs := want.SelectSeeds(g, 5), got.SelectSeeds(g, 5)
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("selected seeds differ: %v vs %v", ws, gs)
		}
	}
}

func checkpointFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	return paths
}

// TestTrainResumeBitForBit is the tentpole guarantee: a run killed
// mid-train and resumed from its last checkpoint — at a different worker
// count — produces the identical final model, seed set, ε spend, and
// loss histories as a run that never stopped. Exercised across the
// Gaussian (privim*), SML-noise (hp), and noiseless training paths.
func TestTrainResumeBitForBit(t *testing.T) {
	ds := quickDataset(t)
	train := ds.TrainSubgraph().G
	for _, mode := range []Mode{ModeDual, ModeHP, ModeNonPrivate} {
		mode := mode
		t.Run(string(mode), func(t *testing.T) {
			base := quickConfig(mode)
			base.Workers = 1
			baseline, err := Train(train, base)
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			crashed := base
			crashed.Workers = 3
			crashed.CheckpointDir = dir
			crashed.CheckpointEvery = 2
			crashed.Observer = crashObserver(3) // dies after iteration 3; last checkpoint is iter 2
			trainExpectCrash(t, train, crashed)
			if files := checkpointFiles(t, dir); len(files) == 0 {
				t.Fatal("crash left no checkpoints behind")
			}

			trap := &eventTrap{}
			resumed := crashed
			resumed.Workers = 2
			resumed.Observer = trap
			got, err := Train(train, resumed)
			if err != nil {
				t.Fatal(err)
			}
			if n := trap.count("checkpoint_resumed"); n != 1 {
				t.Fatalf("expected exactly one resume event, got %d", n)
			}
			if n := trap.count("iteration_end"); n != base.Iterations-2 {
				t.Fatalf("resumed run re-ran %d iterations, want %d", n, base.Iterations-2)
			}
			requireSameRun(t, train, baseline, got)
		})
	}
}

// TestTrainResumeFallsBackPastCorruptCheckpoints: when the newest
// checkpoint is truncated (torn write) and the next is bit-flipped, the
// loader rejects both and resumes from the surviving older file — and
// the run still matches the uninterrupted baseline exactly.
func TestTrainResumeFallsBackPastCorruptCheckpoints(t *testing.T) {
	ds := quickDataset(t)
	train := ds.TrainSubgraph().G
	base := quickConfig(ModeDual)
	baseline, err := Train(train, base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	crashed := base
	crashed.CheckpointDir = dir
	crashed.CheckpointEvery = 1
	crashed.Observer = crashObserver(3) // checkpoints at 1, 2, 3
	trainExpectCrash(t, train, crashed)
	files := checkpointFiles(t, dir)
	if len(files) != 3 {
		t.Fatalf("expected 3 checkpoints, got %v", files)
	}

	// Torn write: newest file loses its tail.
	info, err := os.Stat(files[2])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[2], info.Size()-7); err != nil {
		t.Fatal(err)
	}
	// Bit rot: second-newest gets one payload byte flipped.
	blob, err := os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/3] ^= 0x10
	if err := os.WriteFile(files[1], blob, 0o644); err != nil {
		t.Fatal(err)
	}

	trap := &eventTrap{}
	resumed := crashed
	resumed.Observer = trap
	got, err := Train(train, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if n := trap.count("checkpoint_rejected"); n != 2 {
		t.Fatalf("expected 2 rejected checkpoints, got %d", n)
	}
	if n := trap.count("checkpoint_resumed"); n != 1 {
		t.Fatalf("expected a resume from the surviving checkpoint, got %d resumes", n)
	}
	requireSameRun(t, train, baseline, got)

	// All checkpoints destroyed → fresh start, still the same run.
	for _, f := range checkpointFiles(t, dir) {
		if err := os.Truncate(f, 3); err != nil {
			t.Fatal(err)
		}
	}
	trap2 := &eventTrap{}
	resumed.Observer = trap2
	got2, err := Train(train, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if n := trap2.count("checkpoint_resumed"); n != 0 {
		t.Fatal("resumed from a destroyed checkpoint")
	}
	requireSameRun(t, train, baseline, got2)
}

// TestTrainResumeRejectsForeignCheckpoints: a checkpoint directory left
// over from a different run (different seed → different fingerprint)
// must be ignored, not resumed into the wrong stream.
func TestTrainResumeRejectsForeignCheckpoints(t *testing.T) {
	ds := quickDataset(t)
	train := ds.TrainSubgraph().G
	dir := t.TempDir()

	other := quickConfig(ModeDual)
	other.Seed = 1234
	other.CheckpointDir = dir
	other.CheckpointEvery = 2
	if _, err := Train(train, other); err != nil {
		t.Fatal(err)
	}
	if len(checkpointFiles(t, dir)) == 0 {
		t.Fatal("expected leftover checkpoints from the other run")
	}

	base := quickConfig(ModeDual)
	baseline, err := Train(train, base)
	if err != nil {
		t.Fatal(err)
	}
	trap := &eventTrap{}
	cfg := base
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 2
	cfg.Observer = trap
	got, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := trap.count("checkpoint_resumed"); n != 0 {
		t.Fatal("resumed from a foreign run's checkpoint")
	}
	if trap.count("checkpoint_rejected") == 0 {
		t.Fatal("foreign checkpoints were not reported as rejected")
	}
	requireSameRun(t, train, baseline, got)
}

// TestCheckpointRetention: a long enough run keeps only the most recent
// checkpointKeep files.
func TestCheckpointRetention(t *testing.T) {
	ds := quickDataset(t)
	train := ds.TrainSubgraph().G
	dir := t.TempDir()
	cfg := quickConfig(ModeDual)
	cfg.Iterations = 8
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 1
	trap := &eventTrap{}
	cfg.Observer = trap
	if _, err := Train(train, cfg); err != nil {
		t.Fatal(err)
	}
	if n := trap.count("checkpoint_saved"); n != 7 {
		t.Fatalf("expected 7 saves (every iteration but the last), got %d", n)
	}
	files := checkpointFiles(t, dir)
	if len(files) != checkpointKeep {
		t.Fatalf("retention kept %d files (%v), want %d", len(files), files, checkpointKeep)
	}
	if filepath.Base(files[len(files)-1]) != "ckpt-00000007.ckpt" {
		t.Fatalf("newest retained checkpoint is %s, want iter 7", files[len(files)-1])
	}
}
