package privim

import (
	"context"
	"errors"
	"testing"

	"privim/internal/obs"
)

// cancelAtIteration cancels ctx when the trainer reports 0-based
// iteration `at` done; the loop-top check catches it before the next
// iteration starts, so at+1 iterations complete in total.
func cancelAtIteration(cancel context.CancelFunc, at int) obs.Observer {
	return obs.ObserverFunc(func(e obs.Event) {
		if ie, ok := e.(obs.IterationEnd); ok && ie.Iter == at {
			cancel()
		}
	})
}

// TestTrainCancelResumesBitForBit is the cancellation tentpole: a run
// canceled mid-train returns a typed CanceledError carrying exactly the
// completed-iteration state and a final checkpoint, commits only the ε
// those iterations released, and a rerun against the same checkpoint
// directory — at a different worker count — finishes bit-for-bit
// identical to a run that was never interrupted.
func TestTrainCancelResumesBitForBit(t *testing.T) {
	ds := quickDataset(t)
	train := ds.TrainSubgraph().G
	base := quickConfig(ModeDual)
	base.Workers = 1
	baseline, err := Train(train, base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trap := &eventTrap{}
	canceled := base
	canceled.Workers = 3
	canceled.CheckpointDir = dir
	canceled.CheckpointEvery = 100 // only the cancel-time save may produce the resume point
	canceled.Observer = obs.Multi(trap, cancelAtIteration(cancel, 2))
	_, err = TrainContext(ctx, train, canceled)
	var cerr *CanceledError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CanceledError must unwrap to context.Canceled, got %v", err)
	}
	if cerr.Iter != 3 {
		t.Fatalf("canceled after %d iterations, want 3", cerr.Iter)
	}
	if cerr.CheckpointPath == "" {
		t.Fatal("cancel with a checkpoint dir must write a final checkpoint")
	}
	if got := cerr.Partial.EpsilonSpent; got <= 0 || got >= baseline.EpsilonSpent {
		t.Fatalf("partial ε = %v, want in (0, %v): must be the 3-iteration spend, not the full-run figure",
			got, baseline.EpsilonSpent)
	}
	if n := trap.count("canceled"); n != 1 {
		t.Fatalf("expected exactly one canceled event, got %d", n)
	}
	if got := len(cerr.Partial.LossHistory); got != 3 {
		t.Fatalf("partial LossHistory has %d entries, want 3", got)
	}

	// Resume from the cancel checkpoint and require bit-identity with the
	// uninterrupted baseline.
	trap2 := &eventTrap{}
	resumed := canceled
	resumed.Workers = 2
	resumed.Observer = trap2
	got, err := Train(train, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if n := trap2.count("checkpoint_resumed"); n != 1 {
		t.Fatalf("expected exactly one resume event, got %d", n)
	}
	if n := trap2.count("iteration_end"); n != base.Iterations-3 {
		t.Fatalf("resumed run re-ran %d iterations, want %d", n, base.Iterations-3)
	}
	requireSameRun(t, train, baseline, got)
}

// A context dead before training starts cancels at iteration 0: no
// iterations ran, no ε was spent, no checkpoint exists to resume.
func TestTrainPreCanceled(t *testing.T) {
	ds := quickDataset(t)
	train := ds.TrainSubgraph().G
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := quickConfig(ModeDual)
	cfg.CheckpointDir = t.TempDir()
	_, err := TrainContext(ctx, train, cfg)
	var cerr *CanceledError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if cerr.Iter != 0 {
		t.Fatalf("Iter = %d, want 0", cerr.Iter)
	}
	if cerr.Partial.EpsilonSpent != 0 {
		t.Fatalf("EpsilonSpent = %v for zero iterations, want 0", cerr.Partial.EpsilonSpent)
	}
	if cerr.CheckpointPath != "" {
		t.Fatalf("zero-iteration cancel wrote checkpoint %q", cerr.CheckpointPath)
	}
	if files := checkpointFiles(t, cfg.CheckpointDir); len(files) != 0 {
		t.Fatalf("zero-iteration cancel left checkpoint files: %v", files)
	}
}
