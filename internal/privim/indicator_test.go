package privim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGammaPDFBasics(t *testing.T) {
	// Gamma(1, ψ) is Exponential(1/ψ): pdf(0+) = 1/ψ.
	if got := GammaPDF(1e-9, 1, 2); math.Abs(got-0.5) > 1e-6 {
		t.Fatalf("Gamma(1,2) pdf near 0 = %v, want 0.5", got)
	}
	if got := GammaPDF(-1, 2, 1); got != 0 {
		t.Fatalf("pdf at negative x = %v, want 0", got)
	}
	if got := GammaPDF(0, 2, 1); got != 0 {
		t.Fatalf("pdf at 0 = %v, want 0 for beta > 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad shape")
		}
	}()
	GammaPDF(1, 0, 1)
}

func TestGammaPDFIntegratesToOne(t *testing.T) {
	// Trapezoid integration over a wide range.
	for _, tc := range []struct{ beta, psi float64 }{{2, 3}, {5, 1}, {1.5, 10}} {
		total := 0.0
		dx := 0.01
		for x := dx; x < 200; x += dx {
			total += GammaPDF(x, tc.beta, tc.psi) * dx
		}
		if math.Abs(total-1) > 0.01 {
			t.Errorf("Gamma(%v,%v) integrates to %v", tc.beta, tc.psi, total)
		}
	}
}

func TestGammaPDFPeakAtMode(t *testing.T) {
	// Mode of Gamma(beta, psi) is (beta-1)*psi for beta > 1.
	beta, psi := 3.0, 4.0
	mode := (beta - 1) * psi
	atMode := GammaPDF(mode, beta, psi)
	for _, x := range []float64{mode * 0.5, mode * 0.9, mode * 1.1, mode * 2} {
		if GammaPDF(x, beta, psi) > atMode {
			t.Fatalf("pdf(%v) exceeds pdf at mode %v", x, mode)
		}
	}
}

func TestIndicatorShapesTrend(t *testing.T) {
	ind := DefaultIndicator()
	// Larger datasets: larger beta_n (larger optimal n), smaller beta_M
	// (smaller optimal M) — the §IV-C intuition.
	bn1, bm1 := ind.Shapes(1_000)
	bn2, bm2 := ind.Shapes(200_000)
	if bn2 <= bn1 {
		t.Fatalf("beta_n should grow with |V|: %v vs %v", bn1, bn2)
	}
	if bm2 >= bm1 {
		t.Fatalf("beta_M should shrink with |V|: %v vs %v", bm1, bm2)
	}
}

func TestIndicatorPeaks(t *testing.T) {
	ind := DefaultIndicator()
	// For the paper's datasets the peak subgraph size should land in the
	// evaluated 10..80 range and the peak threshold in 1..12.
	for _, nodes := range []int{1_000, 7_600, 22_500, 196_000} {
		pn := ind.PeakN(nodes)
		pm := ind.PeakM(nodes)
		// Gowalla's peak may exceed the swept 80 — consistent with Fig. 7,
		// where its spread keeps growing through n=80.
		if pn < 10 || pn > 100 {
			t.Errorf("|V|=%d: peak n = %v outside the paper's sweep range", nodes, pn)
		}
		if pm < 0.5 || pm > 13 {
			t.Errorf("|V|=%d: peak M = %v outside the paper's sweep range", nodes, pm)
		}
	}
	// Monotone: bigger dataset -> bigger recommended n, smaller or equal M.
	if ind.PeakN(196_000) <= ind.PeakN(1_000) {
		t.Error("peak n should grow with dataset size")
	}
	if ind.PeakM(196_000) >= ind.PeakM(1_000) {
		t.Error("peak M should shrink with dataset size")
	}
}

func TestIndicatorValuesNormalized(t *testing.T) {
	ind := DefaultIndicator()
	nGrid := []int{10, 20, 40, 60, 80}
	mGrid := []int{2, 4, 6, 8, 10}
	vals := ind.Values(nGrid, mGrid, 7600)
	max := 0.0
	for i := range vals {
		for j := range vals[i] {
			v := vals[i][j]
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("I(%d,%d) = %v outside [0,1]", nGrid[i], mGrid[j], v)
			}
			if v > max {
				max = v
			}
		}
	}
	if math.Abs(max-1) > 1e-12 {
		t.Fatalf("max normalized value %v, want 1", max)
	}
}

func TestIndicatorBest(t *testing.T) {
	ind := DefaultIndicator()
	nGrid := []int{10, 20, 40, 60, 80}
	mGrid := []int{2, 4, 6, 8, 10}
	n, m := ind.Best(nGrid, mGrid, 7600)
	// Best must be on the grid.
	found := false
	for _, g := range nGrid {
		if g == n {
			found = true
		}
	}
	if !found {
		t.Fatalf("best n %d not on grid", n)
	}
	// And it must coincide with the argmax of Values.
	vals := ind.Values(nGrid, mGrid, 7600)
	for i, gn := range nGrid {
		for j, gm := range mGrid {
			if vals[i][j] > 0.9999999 && (gn != n || gm != m) {
				t.Fatalf("Best returned (%d,%d) but argmax is (%d,%d)", n, m, gn, gm)
			}
		}
	}
}

func TestIndicatorBestPanicsOnEmptyGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultIndicator().Best(nil, []int{1}, 100)
}

func TestFitIndicatorRecovers(t *testing.T) {
	// Generate observations from known parameters and verify recovery.
	truth := Indicator{PsiN: 25, KN: 0.5, BN: -1, PsiM: 5, KM: 4, BM: 1.2}
	var obs []Observation
	for _, nodes := range []int{1_000, 5_000, 20_000, 100_000} {
		bn, bm := truth.Shapes(nodes)
		obs = append(obs, Observation{
			NumNodes: nodes,
			BestN:    int(math.Round((bn - 1) * truth.PsiN)),
			BestM:    int(math.Round((bm - 1) * truth.PsiM)),
		})
	}
	fit, err := FitIndicator(obs, truth.PsiN, truth.PsiM)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.KN-truth.KN) > 0.05 || math.Abs(fit.BN-truth.BN) > 0.5 {
		t.Fatalf("n fit (k=%v, b=%v), want (%v, %v)", fit.KN, fit.BN, truth.KN, truth.BN)
	}
	if math.Abs(fit.KM-truth.KM) > 1 || math.Abs(fit.BM-truth.BM) > 0.3 {
		t.Fatalf("M fit (k=%v, b=%v), want (%v, %v)", fit.KM, fit.BM, truth.KM, truth.BM)
	}
}

func TestFitIndicatorErrors(t *testing.T) {
	if _, err := FitIndicator(nil, 25, 5); err == nil {
		t.Fatal("expected error for too few observations")
	}
	obs := []Observation{{NumNodes: 100, BestN: 10, BestM: 2}, {NumNodes: 100, BestN: 10, BestM: 2}}
	if _, err := FitIndicator(obs, 25, 5); err == nil {
		t.Fatal("expected error for degenerate x (same |V|)")
	}
	bad := []Observation{{NumNodes: 0, BestN: 10, BestM: 2}, {NumNodes: 200, BestN: 10, BestM: 2}}
	if _, err := FitIndicator(bad, 25, 5); err == nil {
		t.Fatal("expected error for bad observation")
	}
	if _, err := FitIndicator(obs, -1, 5); err == nil {
		t.Fatal("expected error for negative scale")
	}
}

// Property: indicator values are finite for any sane grid.
func TestIndicatorFiniteProperty(t *testing.T) {
	ind := DefaultIndicator()
	f := func(rawNodes uint32) bool {
		nodes := int(rawNodes%1_000_000) + 100
		v := ind.Raw(40, 4, nodes)
		return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
