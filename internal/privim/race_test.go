//go:build race

package privim

// raceEnabled gates allocation-count assertions: under -race, sync.Pool
// deliberately drops some Puts (to expose reuse races), so AllocsPerRun
// floors do not hold. The invariance halves of these tests still run.
const raceEnabled = true
