//go:build !race

package privim

const raceEnabled = false
