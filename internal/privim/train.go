package privim

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"privim/internal/autodiff"
	"privim/internal/dataset"
	"privim/internal/dp"
	"privim/internal/gnn"
	"privim/internal/graph"
	"privim/internal/im"
	"privim/internal/nn"
	"privim/internal/obs"
	"privim/internal/parallel"
	"privim/internal/sampling"
	"privim/internal/tensor"
)

// Result bundles a trained model with the privacy accounting and timing
// data the evaluation reports.
type Result struct {
	Config Config
	Model  *gnn.Model

	// Sigma is the calibrated noise multiplier (0 for non-private).
	Sigma float64
	// NoiseScale is the absolute per-coordinate noise std σ·Δ_g.
	NoiseScale float64
	// EpsilonSpent is the accountant's (ε, δ) guarantee after training
	// (+Inf sentinel is never stored; non-private runs report 0 spend with
	// Private=false).
	EpsilonSpent float64
	Private      bool

	// NumSubgraphs is m; OccurrenceBound is the N_g (or M) the accounting
	// used; MaxOccurrence is the audited empirical maximum.
	NumSubgraphs    int
	OccurrenceBound int
	MaxOccurrence   int

	// Preprocess and PerEpoch are the Table III timing measurements.
	Preprocess time.Duration
	PerEpoch   time.Duration

	// LossHistory records the mean per-sample training loss at each
	// iteration (pre-noise, so it reflects what the model actually
	// optimizes); useful for convergence diagnostics.
	LossHistory []float64
	// acct is the run's RDP accountant (valid only when Private); exposed
	// via Accountant for cross-run composition in budget ledgers.
	acct dp.Accountant

	// NoisyLossHistory records, for each iteration, the same batch's mean
	// per-sample loss re-evaluated after the noisy parameter update
	// (forward pass only). The gap to LossHistory[t] isolates how much
	// the DP noise (plus the step itself) perturbed this batch's
	// objective — the noise-impact diagnostic LossHistory alone cannot
	// provide. For non-private runs it degenerates to the post-update
	// loss.
	NoisyLossHistory []float64
}

// Accountant returns the run's RDP accountant parameters, for composing
// this run's privacy loss with other runs at the Rényi level (tighter
// than summing (ε, δ) scalars). ok is false for non-private runs, which
// have no accountant.
func (r *Result) Accountant() (acct dp.Accountant, ok bool) {
	return r.acct, r.Private
}

// Train runs the full pipeline of the configured method on the training
// graph g: subgraph extraction (Module 1), privacy accounting (Module 2),
// and DP-GNN training (Module 3).
func Train(g *graph.Graph, cfg Config) (*Result, error) {
	return TrainContext(context.Background(), g, cfg)
}

// TrainContext is Train under a caller context: the run's span tree
// roots under the context's span (the serving layer's per-job span) and
// inherits the context's trace ID, so every event the run emits is
// attributable to the request that caused it.
//
// Cancellation is honored at two preemption points — the top of every
// DP-SGD iteration and the chunk boundaries of the per-sample gradient
// pass — and never after an iteration's noisy update has been applied,
// so a canceled run always stops on a completed-iteration boundary.
// On cancel TrainContext returns a *CanceledError carrying the partial
// Result (model, histories, and the ε actually spent), after writing a
// final checkpoint when a checkpoint directory is configured. Runs that
// complete without cancellation are bit-for-bit identical to runs under
// an uncancelable context at any worker count.
func TrainContext(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg, err := cfg.normalize(g.NumNodes())
	if err != nil {
		return nil, err
	}
	// The training RNG runs over a draw-counting source so the stream
	// position can be checkpointed and replayed exactly (see checkpoint.go);
	// the stream itself is identical to rand.NewSource(cfg.Seed).
	src := newCountingSource(cfg.Seed)
	rng := rand.New(src)
	o := cfg.Observer
	root := obs.StartSpanCtx(ctx, o, "train")

	// Module 1: subgraph extraction.
	m1 := root.Child("module1.extract")
	preStart := time.Now()
	container, bound, err := extractContainer(g, cfg, rng)
	preprocess := time.Since(preStart)
	m1.End()
	if err != nil {
		root.End()
		return nil, err
	}
	if container.Len() == 0 {
		root.End()
		return nil, fmt.Errorf("privim: extraction produced no subgraphs (|V|=%d, n=%d, q=%v)",
			g.NumNodes(), cfg.SubgraphSize, cfg.SamplingRate)
	}

	// Module 2: privacy accounting.
	m2 := root.Child("module2.account")
	res := &Result{
		Config:          cfg,
		NumSubgraphs:    container.Len(),
		OccurrenceBound: bound,
		MaxOccurrence:   container.MaxOccurrence(),
		Preprocess:      preprocess,
	}
	batch := cfg.BatchSize
	if batch > container.Len() {
		batch = container.Len()
	}
	if batch < 1 {
		batch = 1
	}
	var sigma, noiseScale float64
	var accountant dp.Accountant
	if cfg.privatized() {
		ngEff := bound
		if ngEff > container.Len() {
			ngEff = container.Len() // a node cannot appear in more than m subgraphs
		}
		sigma, err = dp.CalibrateSigma(cfg.Epsilon, cfg.Delta, cfg.Iterations, batch, container.Len(), ngEff)
		if err != nil {
			m2.End()
			root.End()
			return nil, err
		}
		noiseScale = sigma * dp.NodeSensitivity(cfg.ClipBound, ngEff)
		res.Sigma = sigma
		res.NoiseScale = noiseScale
		res.Private = true
		accountant = dp.Accountant{M: container.Len(), B: batch, Ng: ngEff, Sigma: sigma}
		res.EpsilonSpent = accountant.Epsilon(cfg.Iterations, cfg.Delta)
		res.OccurrenceBound = ngEff
		res.acct = accountant
	}
	m2.End()

	// Module 3: DP-GNN training (Algorithm 2).
	model, err := gnn.New(gnn.Config{
		Kind:      cfg.GNNKind,
		InputDim:  dataset.NumStructuralFeatures,
		HiddenDim: cfg.HiddenDim,
		Layers:    cfg.Layers,
	})
	if err != nil {
		root.End()
		return nil, err
	}
	if cfg.InitSeed != 0 {
		model.Init(rand.New(rand.NewSource(cfg.InitSeed)))
	} else {
		model.Init(rng)
	}
	res.Model = model

	opt := nn.NewAdam(model.Params, cfg.LearnRate)
	sum := nn.NewGrads(model.Params)
	// Per-sample gradients are independent; fan them out on the shared
	// worker pool and reduce with a fixed-shape tree so the accumulated
	// (clipped) gradient — and therefore every noisy update — is
	// bit-for-bit identical at any worker count.
	workers := parallel.Resolve(cfg.Workers)
	if workers > batch {
		workers = batch
	}
	batchGrads := make([]*nn.Grads, batch)
	for i := range batchGrads {
		batchGrads[i] = nn.NewGrads(model.Params)
	}

	// Pre-compute per-subgraph features, Forward preps (aggregation
	// operators, edge lists), and loss operators once: they derive from
	// subgraph structure only, and rebuilding them per sample per
	// iteration was the second-largest allocation source after the tape.
	features := make([]*tensor.Matrix, container.Len())
	preps := make([]*gnn.Prep, container.Len())
	lossAdj := make([]*autodiff.SparseMat, container.Len())
	for i, s := range container.Subgraphs {
		features[i] = tensor.FromSlice(s.G.NumNodes(), dataset.NumStructuralFeatures,
			dataset.StructuralFeatures(s.G))
		preps[i] = model.NewPrep(s.G)
		if cfg.Objective == ObjectiveMaxCover {
			lossAdj[i] = gnn.CoverMatrix(s.G)
		} else {
			lossAdj[i] = autodiff.InAdjacency(s.G)
		}
	}

	m3 := root.Child("module3.dpsgd")
	trainStart := time.Now()
	lossCfg := gnn.LossConfig{Steps: cfg.LossSteps, Lambda: cfg.Lambda}
	res.LossHistory = make([]float64, 0, cfg.Iterations)
	res.NoisyLossHistory = make([]float64, 0, cfg.Iterations)

	// Crash safety: with a checkpoint directory configured, restore the
	// newest valid checkpoint (parameters, optimizer moments, histories)
	// and fast-forward the RNG to its recorded position, then continue the
	// loop from there — bit-for-bit identical to never having stopped.
	startIter := 0
	var ck *checkpointer
	if cfg.CheckpointDir != "" {
		ck, err = newCheckpointer(cfg, g, res.Sigma, res.EpsilonSpent, o)
		if err != nil {
			m3.End()
			root.End()
			return nil, err
		}
		rs := m3.Child("checkpoint.resume")
		st := ck.resume(cfg, model.Params, opt, src)
		rs.End()
		if st != nil {
			startIter = st.iter
			res.LossHistory = append(res.LossHistory, st.loss...)
			res.NoisyLossHistory = append(res.NoisyLossHistory, st.noisy...)
		}
	}

	batchLosses := make([]float64, batch)
	batchNorms := make([]float64, batch)
	picks := make([]int, batch)

	// Per-worker scratch: one tape (node arena + matrix pool) and one
	// bound-parameter slice per worker slot, reused across samples and
	// iterations. Tape buffers never leave the worker — losses and
	// gradients are copied out into batchLosses/batchGrads before the
	// tape is reset by the next sample.
	scratch := parallel.NewScratch(func() *trainScratch {
		return &trainScratch{tape: autodiff.NewTape()}
	})
	scratch.Grow(workers)

	// The pass bodies are hoisted out of the iteration loop: closures
	// handed to parallel.For escape (For spawns goroutines), so building
	// them per iteration would allocate; every captured variable below is
	// loop-invariant.
	forwardLoss := func(sc *trainScratch, idx int) *autodiff.Node {
		s := container.Subgraphs[idx]
		sc.tape.Reset()
		sc.bound = nn.BindInto(sc.tape, model.Params, sc.bound)
		scores := model.ForwardPrep(sc.tape, sc.bound, s.G, features[idx], preps[idx])
		if cfg.Objective == ObjectiveMaxCover {
			return gnn.MaxCoverLossCover(sc.tape, s.G, scores, cfg.CoverBudget, 1, lossAdj[idx])
		}
		return gnn.IMLossAdj(sc.tape, s.G, scores, lossCfg, lossAdj[idx])
	}
	gradPass := func(w, lo, hi int) {
		sc := scratch.Get(w)
		for b := lo; b < hi; b++ {
			idx := picks[b]
			loss := forwardLoss(sc, idx)
			sc.tape.Backward(loss)
			batchLosses[b] = loss.Value.Data[0] / float64(container.Subgraphs[idx].G.NumNodes())
			nn.Collect(sc.bound, batchGrads[b])
			switch {
			case cfg.privatized():
				// ClipL2 reports the pre-clip norm for free.
				batchNorms[b] = batchGrads[b].ClipL2(cfg.ClipBound)
			case o != nil:
				batchNorms[b] = batchGrads[b].Norm2()
			}
		}
	}
	noisyPass := func(w, lo, hi int) {
		sc := scratch.Get(w)
		for b := lo; b < hi; b++ {
			idx := picks[b]
			loss := forwardLoss(sc, idx)
			batchLosses[b] = loss.Value.Data[0] / float64(container.Subgraphs[idx].G.NumNodes())
		}
	}

	// Cancellation plumbing. The clock is nil (free) for uncancelable
	// contexts; canceled settles the partial result — true ε spent, final
	// checkpoint, spans closed — and builds the CanceledError. draws must
	// be the RNG position at the stop point's iteration boundary: when the
	// gradient pass is interrupted the batch picks were already drawn, so
	// the caller passes the position captured before them.
	cancelable := ctx.Done() != nil
	clk := obs.WatchCancel(ctx)
	defer clk.Stop()
	canceled := func(iter int, draws uint64, cause error) error {
		if cfg.privatized() {
			if iter > 0 {
				res.EpsilonSpent = accountant.Epsilon(iter, cfg.Delta)
			} else {
				res.EpsilonSpent = 0
			}
		}
		cerr := &CanceledError{Partial: res, Iter: iter, Err: cause}
		if ck != nil && iter > 0 {
			cs := m3.Child("checkpoint.save")
			if err := ck.save(iter, draws, model.Params, opt, res); err == nil {
				cerr.CheckpointPath = checkpointPath(ck.dir, iter)
			}
			cs.End()
		}
		if ran := iter - startIter; ran > 0 {
			res.PerEpoch = time.Since(trainStart) / time.Duration(ran)
		}
		obs.Emit(o, obs.Canceled{
			Phase:   "train",
			Done:    iter,
			Total:   cfg.Iterations,
			Reason:  cause.Error(),
			Latency: clk.Latency(),
		})
		m3.End()
		root.End()
		return cerr
	}

	var poolStats parallel.Stats
	for t := startIter; t < cfg.Iterations; t++ {
		if cancelable {
			if err := ctx.Err(); err != nil {
				return nil, canceled(t, src.Draws(), err)
			}
		}
		// The RNG position at this iteration boundary, for the final
		// checkpoint if the gradient pass below is interrupted.
		drawsBefore := src.Draws()
		// Draw the whole batch first so rng consumption is independent of
		// scheduling, then fan the per-sample passes out to the pool.
		for b := range picks {
			picks[b] = rng.Intn(container.Len())
		}
		var st parallel.Stats
		if cancelable {
			var err error
			st, err = parallel.ForCtx(ctx, workers, batch, 1, gradPass)
			if err != nil {
				return nil, canceled(t, drawsBefore, err)
			}
		} else {
			st = parallel.For(workers, batch, 1, gradPass)
		}
		poolStats.Workers = st.Workers
		poolStats.Chunks += st.Chunks
		poolStats.MaxChunks += st.MaxChunks
		poolStats.MinChunks += st.MinChunks
		// Deterministic tree reduction of the clipped per-sample gradients
		// into the noise accumulator: the tree shape depends only on the
		// batch size, so the float result is worker-count independent.
		nn.SumTree(batchGrads[:batch], workers)
		sum.CopyFrom(batchGrads[0])
		meanLoss := 0.0
		for b := 0; b < batch; b++ {
			meanLoss += batchLosses[b]
		}
		meanLoss /= float64(batch)
		res.LossHistory = append(res.LossHistory, meanLoss)
		if cfg.privatized() {
			switch cfg.Mode {
			case ModeHP, ModeHPGRAT:
				// HP pairs HeterPoisson sampling with symmetric multivariate
				// Laplace noise at the same calibrated scale.
				addSML(sum, noiseScale, rng)
			default:
				sum.AddGaussianNoise(noiseScale, rng)
			}
		}
		sum.Scale(1 / float64(batch))
		opt.Step(sum)
		if cfg.WeightDecay > 0 {
			// Decoupled (AdamW-style) decay; see Config.WeightDecay.
			decay := 1 - cfg.LearnRate*cfg.WeightDecay
			for _, p := range model.Params.All() {
				for i := range p.Value.Data {
					p.Value.Data[i] *= decay
				}
			}
		}
		// Re-evaluate the same batch against the post-update parameters — a
		// forward-only pass, recorded as the post-noise loss. batchLosses is
		// clobbered here; the pre-update mean was taken above.
		parallel.For(workers, batch, 1, noisyPass)
		noisyLoss := 0.0
		for b := 0; b < batch; b++ {
			noisyLoss += batchLosses[b]
		}
		noisyLoss /= float64(batch)
		res.NoisyLossHistory = append(res.NoisyLossHistory, noisyLoss)
		if o != nil {
			var gradNorm, clipped float64
			for b := 0; b < batch; b++ {
				gradNorm += batchNorms[b]
				if cfg.privatized() && batchNorms[b] > cfg.ClipBound {
					clipped++
				}
			}
			epsSpent := 0.0
			if cfg.privatized() {
				epsSpent = accountant.Epsilon(t+1, cfg.Delta)
			}
			obs.Emit(o, obs.IterationEnd{
				Iter:         t,
				Loss:         meanLoss,
				NoisyLoss:    noisyLoss,
				GradNorm:     gradNorm / float64(batch),
				ClipFraction: clipped / float64(batch),
				EpsilonSpent: epsSpent,
			})
		}
		// Checkpoint after every CheckpointEvery-th completed iteration,
		// except the last (a finished run has nothing to resume). Saving
		// after the observer emit keeps the journal and the checkpoint in
		// the same order a resumed run reproduces them.
		if ck != nil && (t+1)%cfg.CheckpointEvery == 0 && t+1 < cfg.Iterations {
			cs := m3.Child("checkpoint.save")
			err := ck.save(t+1, src.Draws(), model.Params, opt, res)
			cs.End()
			if err != nil {
				m3.End()
				root.End()
				return nil, err
			}
		}
	}
	// Timing and pool stats cover only the iterations this process ran;
	// a resumed run reports the resumed range, not the checkpointed past.
	if ran := cfg.Iterations - startIter; ran > 0 {
		res.PerEpoch = time.Since(trainStart) / time.Duration(ran)
	}
	if o != nil && cfg.Iterations > startIter {
		obs.Emit(o, obs.ParallelFor{
			Site:      "train.dpsgd",
			Workers:   poolStats.Workers,
			Tasks:     batch * (cfg.Iterations - startIter),
			Chunks:    poolStats.Chunks,
			Imbalance: poolStats.Imbalance(),
			Elapsed:   time.Since(trainStart),
		})
	}
	m3.End()
	root.End()
	return res, nil
}

// trainScratch is one worker slot's reusable state for the DP-SGD passes:
// a tape whose Reset recycles every node and matrix between samples, and
// the bound-parameter slice rebuilt (in place) on it each sample.
type trainScratch struct {
	tape  *autodiff.Tape
	bound []*autodiff.Node
}

// addSML adds symmetric multivariate Laplace noise of scale s to every
// gradient coordinate (one mixing variable per parameter tensor).
func addSML(g *nn.Grads, s float64, rng *rand.Rand) {
	for _, m := range g.Mats() {
		dp.SMLNoise(m.Data, s, rng)
	}
}

// extractContainer dispatches Module 1 per method and returns the
// container together with the occurrence bound the privacy analysis uses.
func extractContainer(g *graph.Graph, cfg Config, rng *rand.Rand) (*sampling.Container, int, error) {
	switch cfg.Mode {
	case ModeNaive:
		c, _, err := sampling.ExtractRWR(g, sampling.RWRConfig{
			SubgraphSize: cfg.SubgraphSize,
			Theta:        cfg.Theta,
			Tau:          cfg.Tau,
			SamplingRate: cfg.SamplingRate,
			WalkLength:   cfg.WalkLength,
			Hops:         cfg.Layers,
			Obs:          cfg.Observer,
		}, rng)
		if err != nil {
			return nil, 0, err
		}
		// Lemma 1: the worst-case occurrence bound grows as Σθ^i.
		return c, graph.MaxOccurrence(cfg.Theta, cfg.Layers), nil

	case ModeSCS, ModeDual, ModeNonPrivate:
		fc := sampling.FreqConfig{
			SubgraphSize: cfg.SubgraphSize,
			Tau:          cfg.Tau,
			Mu:           cfg.Mu,
			SamplingRate: cfg.SamplingRate,
			WalkLength:   cfg.WalkLength,
			Threshold:    cfg.Threshold,
			BESDivisor:   cfg.BESDivisor,
			Obs:          cfg.Observer,
		}
		if cfg.Mode == ModeSCS {
			fc.BESDivisor = 0
		}
		c, err := sampling.ExtractDualStage(g, fc, rng)
		if err != nil {
			return nil, 0, err
		}
		// The frequency cap makes N_g* = M exact.
		return c, cfg.Threshold, nil

	case ModeEGN:
		return extractEGN(g, cfg, rng)

	case ModeHP, ModeHPGRAT:
		return extractHP(g, cfg, rng)
	}
	return nil, 0, fmt.Errorf("privim: extractContainer: unhandled mode %q", cfg.Mode)
}

// Scores runs the trained model over an evaluation graph (typically the
// held-out test subgraph) and returns per-node seed probabilities.
func (r *Result) Scores(g *graph.Graph) []float64 {
	x := tensor.FromSlice(g.NumNodes(), dataset.NumStructuralFeatures, dataset.StructuralFeatures(g))
	return r.Model.Score(g, x)
}

// SelectSeeds scores g and returns the top-k nodes, the paper's seed
// selection rule.
func (r *Result) SelectSeeds(g *graph.Graph, k int) []graph.NodeID {
	return im.TopKScores(r.Scores(g), k)
}

// SaveModel writes the trained model as a checkpoint readable by
// gnn.Load (and the privim.LoadModel facade) — the symmetric half of the
// load path, so callers never need to reach into Result.Model. The
// checkpoint captures architecture and weights only; privacy accounting
// lives in the Result and is not persisted.
func (r *Result) SaveModel(w io.Writer) error {
	return r.Model.Save(w)
}

// String summarizes the result for logs.
func (r *Result) String() string {
	eps := "∞"
	if r.Private {
		eps = fmt.Sprintf("%.3f", r.EpsilonSpent)
	}
	return fmt.Sprintf("privim.Result(mode=%s, m=%d, Ng=%d (audit %d), σ=%.4g, ε=%s)",
		r.Config.Mode, r.NumSubgraphs, r.OccurrenceBound, r.MaxOccurrence, r.Sigma, eps)
}

// Infinity reports +Inf for use in non-private configs.
func Infinity() float64 { return math.Inf(1) }
