package privim

import (
	"math"
	"testing"

	"privim/internal/dataset"
	"privim/internal/gnn"
	"privim/internal/im"
)

// quickDataset returns a small deterministic training graph.
func quickDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Email, dataset.Options{Scale: 0.2, Seed: 1, InfluenceProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// quickConfig keeps training tiny for unit tests.
func quickConfig(mode Mode) Config {
	return Config{
		Mode:         mode,
		HiddenDim:    8,
		Layers:       2,
		Epsilon:      4,
		SubgraphSize: 10,
		SamplingRate: 0.6,
		WalkLength:   100,
		Threshold:    3,
		Iterations:   5,
		BatchSize:    4,
		Seed:         7,
	}
}

func TestTrainAllModes(t *testing.T) {
	ds := quickDataset(t)
	train := ds.TrainSubgraph().G
	for _, mode := range AllModes() {
		mode := mode
		t.Run(string(mode), func(t *testing.T) {
			res, err := Train(train, quickConfig(mode))
			if err != nil {
				t.Fatal(err)
			}
			if res.Model == nil || res.NumSubgraphs == 0 {
				t.Fatalf("result incomplete: %v", res)
			}
			if mode == ModeNonPrivate {
				if res.Private || res.Sigma != 0 {
					t.Fatalf("non-private run reported privacy: %v", res)
				}
			} else {
				if !res.Private || res.Sigma <= 0 {
					t.Fatalf("private run missing noise: %v", res)
				}
				if res.EpsilonSpent > 4*1.001 {
					t.Fatalf("epsilon spent %v exceeds budget 4", res.EpsilonSpent)
				}
			}
			// Seed selection works end to end.
			test := ds.TestSubgraph().G
			seeds := res.SelectSeeds(test, 5)
			if err := im.ValidateSeeds(seeds, test.NumNodes()); err != nil {
				t.Fatal(err)
			}
			if len(seeds) != 5 {
				t.Fatalf("got %d seeds", len(seeds))
			}
			// Scores are probabilities.
			for i, s := range res.Scores(test) {
				if s <= 0 || s >= 1 || math.IsNaN(s) {
					t.Fatalf("score[%d] = %v", i, s)
				}
			}
		})
	}
}

func TestTrainSCSMode(t *testing.T) {
	ds := quickDataset(t)
	res, err := Train(ds.TrainSubgraph().G, quickConfig(ModeSCS))
	if err != nil {
		t.Fatal(err)
	}
	if res.OccurrenceBound != 3 {
		t.Fatalf("SCS occurrence bound %d, want threshold 3", res.OccurrenceBound)
	}
	if res.MaxOccurrence > 3 {
		t.Fatalf("audited occurrence %d exceeds M=3", res.MaxOccurrence)
	}
}

func TestDualStageOccurrenceInvariant(t *testing.T) {
	ds := quickDataset(t)
	res, err := Train(ds.TrainSubgraph().G, quickConfig(ModeDual))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxOccurrence > res.Config.Threshold {
		t.Fatalf("PrivIM* audit %d exceeds threshold %d", res.MaxOccurrence, res.Config.Threshold)
	}
}

func TestNaiveUsesLemma1Bound(t *testing.T) {
	ds := quickDataset(t)
	cfg := quickConfig(ModeNaive)
	cfg.Theta = 3
	res, err := Train(ds.TrainSubgraph().G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 1 with theta=3, r=2: 1+3+9 = 13, capped at container size.
	want := 13
	if res.NumSubgraphs < want {
		want = res.NumSubgraphs
	}
	if res.OccurrenceBound != want {
		t.Fatalf("naive bound %d, want min(13, m=%d)", res.OccurrenceBound, res.NumSubgraphs)
	}
}

func TestSmallerThresholdLessNoise(t *testing.T) {
	ds := quickDataset(t)
	train := ds.TrainSubgraph().G
	lo := quickConfig(ModeDual)
	lo.Threshold = 2
	hi := quickConfig(ModeDual)
	hi.Threshold = 12
	resLo, err := Train(train, lo)
	if err != nil {
		t.Fatal(err)
	}
	resHi, err := Train(train, hi)
	if err != nil {
		t.Fatal(err)
	}
	if resLo.NoiseScale >= resHi.NoiseScale {
		t.Fatalf("noise with M=2 (%v) should be < M=12 (%v)", resLo.NoiseScale, resHi.NoiseScale)
	}
}

func TestEGNGetsWorstNoise(t *testing.T) {
	ds := quickDataset(t)
	train := ds.TrainSubgraph().G
	egn, err := Train(train, quickConfig(ModeEGN))
	if err != nil {
		t.Fatal(err)
	}
	dual, err := Train(train, quickConfig(ModeDual))
	if err != nil {
		t.Fatal(err)
	}
	if egn.NoiseScale <= dual.NoiseScale {
		t.Fatalf("EGN noise %v should exceed PrivIM* noise %v", egn.NoiseScale, dual.NoiseScale)
	}
}

func TestConfigErrors(t *testing.T) {
	ds := quickDataset(t)
	train := ds.TrainSubgraph().G
	bad := quickConfig("bogus")
	if _, err := Train(train, bad); err == nil {
		t.Fatal("expected error for unknown mode")
	}
	neg := quickConfig(ModeDual)
	neg.Epsilon = -2
	if _, err := Train(train, neg); err == nil {
		t.Fatal("expected error for negative epsilon")
	}
}

func TestConfigDefaults(t *testing.T) {
	c, err := Config{}.normalize(1000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Mode != ModeDual || c.GNNKind != gnn.GRAT || c.HiddenDim != 32 || c.Layers != 3 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if c.Theta != 10 || c.Tau != 0.3 || c.WalkLength != 200 {
		t.Fatalf("sampling defaults wrong: %+v", c)
	}
	if c.SamplingRate != 256.0/1000 {
		t.Fatalf("q default = %v, want 0.256", c.SamplingRate)
	}
	if !math.IsInf(c.Epsilon, 1) {
		t.Fatalf("epsilon default should be +Inf (non-private until set), got %v", c.Epsilon)
	}
	// Baseline kinds.
	ce, _ := Config{Mode: ModeEGN}.normalize(100)
	if ce.GNNKind != gnn.GCN {
		t.Fatalf("EGN should default to GCN, got %v", ce.GNNKind)
	}
	ch, _ := Config{Mode: ModeHPGRAT}.normalize(100)
	if ch.GNNKind != gnn.GRAT {
		t.Fatalf("HP-GRAT should default to GRAT, got %v", ch.GNNKind)
	}
}

func TestResultString(t *testing.T) {
	ds := quickDataset(t)
	res, err := Train(ds.TrainSubgraph().G, quickConfig(ModeDual))
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestMaxCoverObjective(t *testing.T) {
	ds := quickDataset(t)
	train := ds.TrainSubgraph().G
	cfg := quickConfig(ModeDual)
	cfg.Objective = ObjectiveMaxCover
	cfg.Iterations = 20
	res, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Private {
		t.Fatal("max-cover objective must keep the DP pipeline")
	}
	test := ds.TestSubgraph().G
	seeds := res.SelectSeeds(test, 5)
	if len(seeds) != 5 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	// Unknown objective errors.
	bad := quickConfig(ModeDual)
	bad.Objective = "bogus"
	if _, err := Train(train, bad); err == nil {
		t.Fatal("expected error for unknown objective")
	}
}

func TestLossHistoryConverges(t *testing.T) {
	ds := quickDataset(t)
	cfg := quickConfig(ModeNonPrivate)
	cfg.Iterations = 40
	res, err := Train(ds.TrainSubgraph().G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LossHistory) != 40 {
		t.Fatalf("loss history length %d, want 40", len(res.LossHistory))
	}
	// Non-private training must reduce the loss substantially: compare the
	// mean of the first and last 5 iterations.
	head, tail := 0.0, 0.0
	for i := 0; i < 5; i++ {
		head += res.LossHistory[i]
		tail += res.LossHistory[len(res.LossHistory)-1-i]
	}
	if tail >= head {
		t.Fatalf("loss did not decrease: head %v, tail %v", head/5, tail/5)
	}
	for i, l := range res.LossHistory {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("loss[%d] = %v", i, l)
		}
	}
}

func TestTrainTimingPopulated(t *testing.T) {
	ds := quickDataset(t)
	res, err := Train(ds.TrainSubgraph().G, quickConfig(ModeDual))
	if err != nil {
		t.Fatal(err)
	}
	if res.Preprocess <= 0 || res.PerEpoch <= 0 {
		t.Fatalf("timings not recorded: pre=%v epoch=%v", res.Preprocess, res.PerEpoch)
	}
}
