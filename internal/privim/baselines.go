package privim

import (
	"math/rand"

	"privim/internal/graph"
	"privim/internal/sampling"
)

// extractEGN implements the EGN baseline's sampling (Karalias & Loukas
// adapted with DP-SGD, §V-A): subgraphs are unconstrained BFS balls from
// random start nodes. Nothing bounds how often a node recurs across
// subgraphs, so the worst-case occurrence bound for privacy accounting is
// the container size itself — the "excessive DP noise" the paper reports.
func extractEGN(g *graph.Graph, cfg Config, rng *rand.Rand) (*sampling.Container, int, error) {
	c := sampling.NewContainer(g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		if rng.Float64() >= cfg.SamplingRate {
			continue
		}
		nodes := graph.BFSOrder(g, graph.NodeID(v), cfg.SubgraphSize)
		if len(nodes) < 2 {
			continue
		}
		c.Add(graph.Induce(g, nodes))
	}
	if c.Len() == 0 {
		// Guarantee at least one subgraph so training can proceed on tiny
		// graphs.
		nodes := graph.BFSOrder(g, 0, cfg.SubgraphSize)
		if len(nodes) >= 2 {
			c.Add(graph.Induce(g, nodes))
		}
	}
	// Worst case: a node could appear in every subgraph.
	return c, c.Len(), nil
}

// extractHP implements the HP baseline's HeterPoisson-style sampling
// (Xiang et al., §V-A): one θ-truncated 1-hop ego network per Poisson-
// sampled node. Each node additionally appears as a neighbor in at most θ
// other ego networks (extra occurrences are dropped), bounding the
// occurrence count at θ+1 — node-level privacy holds, but the 1-hop
// structure discards exactly the long-range information IM needs.
func extractHP(g *graph.Graph, cfg Config, rng *rand.Rand) (*sampling.Container, int, error) {
	c := sampling.NewContainer(g.NumNodes())
	neighborUse := make([]int, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		if rng.Float64() >= hpRate(cfg) {
			continue
		}
		ego := []graph.NodeID{graph.NodeID(v)}
		// In-neighbors drive message passing toward v; cap at θ and respect
		// each neighbor's remaining occurrence budget.
		for _, a := range g.In(graph.NodeID(v)) {
			if len(ego) > cfg.Theta {
				break
			}
			if a.To == graph.NodeID(v) || neighborUse[a.To] >= cfg.Theta {
				continue
			}
			ego = append(ego, a.To)
		}
		if len(ego) < 2 {
			continue
		}
		for _, u := range ego[1:] {
			neighborUse[u]++
		}
		c.Add(graph.Induce(g, ego))
	}
	if c.Len() == 0 {
		// Fall back to the densest node's ego net.
		best, bestDeg := graph.NodeID(0), -1
		for v := 0; v < g.NumNodes(); v++ {
			if d := g.InDegree(graph.NodeID(v)); d > bestDeg {
				best, bestDeg = graph.NodeID(v), d
			}
		}
		ego := []graph.NodeID{best}
		for _, a := range g.In(best) {
			if len(ego) > cfg.Theta {
				break
			}
			if a.To != best {
				ego = append(ego, a.To)
			}
		}
		if len(ego) >= 2 {
			c.Add(graph.Induce(g, ego))
		}
	}
	return c, cfg.Theta + 1, nil
}

// hpRate boosts the per-node Poisson rate so HP's tiny ego subgraphs yield
// a container of comparable size to PrivIM's (the paper notes HP obtains
// more subgraphs due to the unconstrained per-node sampling).
func hpRate(cfg Config) float64 {
	r := cfg.SamplingRate * float64(cfg.SubgraphSize)
	if r > 1 {
		r = 1
	}
	return r
}
