package privim

import (
	"testing"
)

// TestTrainSteadyStateAllocs pins the steady-state cost of one DP-SGD
// iteration. Setup (dataset tensors, parameter init, sigma calibration)
// allocates freely; the per-iteration marginal must stay flat, which is
// what the scratch-arena reuse in train.go / sampling / autodiff buys.
// Measured by differencing two Train calls that differ only in iteration
// count, so everything outside the loop cancels exactly.
func TestTrainSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc floors do not hold under -race (sync.Pool drops Puts)")
	}
	ds := quickDataset(t)
	train := ds.TrainSubgraph().G

	runAllocs := func(iters int) float64 {
		cfg := quickConfig(ModeDual)
		cfg.Workers = 1
		cfg.Iterations = iters
		return testing.AllocsPerRun(3, func() {
			if _, err := Train(train, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}

	runAllocs(2) // warm package-level pools
	short, long := runAllocs(2), runAllocs(10)
	perIter := (long - short) / 8
	t.Logf("marginal allocs per DP-SGD iteration: %.1f (iters=2: %.0f, iters=10: %.0f)", perIter, short, long)
	// Measured ~4/iter (map-bucket jitter in subgraph bookkeeping); 20
	// leaves headroom for GC timing while still catching any per-iteration
	// buffer that stops being reused.
	if perIter > 20 {
		t.Fatalf("steady-state DP-SGD iteration allocates %.1f objects, want <= 20", perIter)
	}
}
