// Package parallel is the shared worker-pool layer behind every compute
// kernel in the repo: blocked GEMM row panels (internal/tensor), sparse
// aggregation rows (internal/autodiff), per-sample DP-SGD passes
// (internal/privim), Monte-Carlo cascade rounds (internal/diffusion), and
// RR-set / marginal-gain fan-outs (internal/im).
//
// Two invariants make it safe to thread through DP code:
//
//   - Determinism: For splits [0, n) into fixed grain-sized chunks and
//     workers claim chunks dynamically, so *which* goroutine runs a chunk
//     varies — but callers only ever write to disjoint index ranges (or
//     reduce with order-independent integer sums), so results are
//     bit-for-bit identical at any worker count. Randomized work draws its
//     randomness from Stream(seed, i), a per-index SplitMix64 stream, never
//     from a shared sequential RNG.
//   - Observability: every For returns Stats (workers used, chunks run per
//     worker, imbalance), and package-wide atomic totals are exposed via
//     Totals so speedups are measurable rather than asserted.
//
// The process-wide worker cap comes from, in priority order: SetLimit
// (the -workers flag), the PRIVIM_WORKERS environment variable, and
// GOMAXPROCS.
package parallel

import (
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

var limit atomic.Int64

func init() {
	if s := os.Getenv("PRIVIM_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			limit.Store(int64(n))
		}
	}
}

// SetLimit sets the process-wide default worker cap (the -workers flag).
// n <= 0 restores the GOMAXPROCS / PRIVIM_WORKERS default.
func SetLimit(n int) {
	if n < 0 {
		n = 0
	}
	limit.Store(int64(n))
}

// Limit returns the process-wide default worker count: the SetLimit /
// PRIVIM_WORKERS override when present, GOMAXPROCS otherwise.
func Limit() int {
	if n := limit.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Resolve maps a per-call worker request to an effective count: n > 0 is
// honored as-is, n <= 0 falls back to Limit().
func Resolve(n int) int {
	if n > 0 {
		return n
	}
	return Limit()
}

// Stats describes one For call, for obs counters and tests.
type Stats struct {
	// Workers is the number of goroutines that ran chunks (1 = inline).
	Workers int
	// Chunks is the number of grain-sized index ranges executed.
	Chunks int
	// MaxChunks and MinChunks are the largest and smallest per-worker
	// chunk counts; their gap measures scheduling imbalance.
	MaxChunks, MinChunks int
}

// Imbalance returns (max−min)/chunks ∈ [0, 1]: 0 when every worker ran
// the same number of chunks, approaching 1 when one worker ran nearly
// all of them.
func (s Stats) Imbalance() float64 {
	if s.Chunks == 0 {
		return 0
	}
	return float64(s.MaxChunks-s.MinChunks) / float64(s.Chunks)
}

// Package-wide totals, maintained by For.
var (
	totalCalls    atomic.Int64
	totalParallel atomic.Int64
	totalChunks   atomic.Int64
)

// Totals reports cumulative For activity since process start: total
// calls, calls that actually fanned out (vs inline serial), and chunks
// executed. Exposed so debug endpoints and tests can observe that the
// parallel paths are exercised.
func Totals() (calls, parallelCalls, chunks int64) {
	return totalCalls.Load(), totalParallel.Load(), totalChunks.Load()
}

// For splits [0, n) into chunks of size grain (grain < 1 means one chunk
// per worker, rounded up) and runs fn(worker, lo, hi) over them on up to
// `workers` goroutines (0 = Limit()). Chunks are claimed dynamically via
// an atomic cursor in ascending order, so fast workers absorb slow
// chunks. The worker index passed to fn is stable within a call and in
// [0, Stats.Workers); use it to key per-worker scratch, never to derive
// randomness or output ordering. For returns after every chunk finished.
//
// fn must write only to locations indexed by [lo, hi) (or accumulate
// into per-worker slots that are later reduced in a fixed order) for the
// result to be deterministic — every call site in this repo does.
func For(workers, n, grain int, fn func(worker, lo, hi int)) Stats {
	if n <= 0 {
		return Stats{}
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if grain < 1 {
		grain = (n + workers - 1) / workers
	}
	chunks := (n + grain - 1) / grain
	totalCalls.Add(1)
	totalChunks.Add(int64(chunks))
	if workers <= 1 || chunks == 1 {
		fn(0, 0, n)
		return Stats{Workers: 1, Chunks: chunks, MaxChunks: chunks, MinChunks: chunks}
	}
	if workers > chunks {
		workers = chunks
	}
	totalParallel.Add(1)
	// Capture a never-reassigned copy: capturing grain itself (assigned
	// above) would force it to the heap in For's prologue, costing one
	// allocation even on the inline serial path.
	sz := grain
	var cursor atomic.Int64
	ran := make([]int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				c := int(cursor.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * sz
				hi := lo + sz
				if hi > n {
					hi = n
				}
				fn(w, lo, hi)
				ran[w]++
			}
		}(w)
	}
	wg.Wait()
	st := Stats{Workers: workers, Chunks: chunks, MinChunks: chunks}
	for _, r := range ran {
		if r > st.MaxChunks {
			st.MaxChunks = r
		}
		if r < st.MinChunks {
			st.MinChunks = r
		}
	}
	return st
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// source is a rand.Source64 over a SplitMix64 sequence. Unlike
// rand.NewSource it has O(1) construction (no 607-word lagged-Fibonacci
// warm-up), which matters when deriving one stream per RR set or
// Monte-Carlo round.
type source struct{ state uint64 }

func (s *source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *source) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *source) Seed(seed int64) { s.state = splitmix64(uint64(seed)) }

// Stream returns the i-th deterministic RNG stream of a seeded family:
// independent per-index streams let parallel loops consume randomness
// without any cross-worker ordering, so output is identical at any
// worker count. Streams with the same (seed, i) are identical; distinct
// indices decorrelate through a double SplitMix64 avalanche.
func Stream(seed int64, i uint64) *rand.Rand {
	return rand.New(&source{state: splitmix64(splitmix64(uint64(seed)) + i)})
}

// StreamRNG is a reusable stream generator: SetStream repositions it to
// any (seed, i) stream of the Stream family without allocating, so hot
// loops that burn one stream per work item (RR-set draws, Monte-Carlo
// rounds) can keep one StreamRNG per worker instead of a rand.New per
// item. Not safe for concurrent use; keep one per worker.
type StreamRNG struct {
	src source
	*rand.Rand
}

// NewStreamRNG returns a StreamRNG positioned at Stream(0, 0).
func NewStreamRNG() *StreamRNG {
	r := &StreamRNG{}
	r.Rand = rand.New(&r.src)
	return r
}

// SetStream repositions r so its subsequent draws are exactly those of a
// fresh Stream(seed, i).
func (r *StreamRNG) SetStream(seed int64, i uint64) {
	r.src.state = splitmix64(splitmix64(uint64(seed)) + i)
}
