package parallel

// Scratch is a typed per-worker scratch arena for For/ForObserved
// callbacks: one lazily-built value of T per worker slot, keyed by the
// worker index fn receives. It exists so worker-local temporaries (tapes,
// gradient buffers, frontier queues, RNGs) are built once and reused
// across chunks and across calls instead of being per-call makes.
//
// Ownership rules (see DESIGN.md §"Scratch arenas"):
//
//   - Within one For call, slot w is owned exclusively by the goroutine
//     running worker index w; no locking is needed to mutate it.
//   - Between For calls on the same Scratch, any goroutine may touch any
//     slot, but never concurrently with a For that uses the Scratch.
//   - Values handed out by Get stay owned by the Scratch. Results that
//     outlive the loop must be copied out, never aliased.
//
// Grow must be called (or the Scratch otherwise warmed to the width) on
// the coordinating goroutine before fanning out: Get itself only
// lazily fills slot w and is safe because distinct workers touch
// distinct slots, but growing the backing slice from inside worker
// goroutines would race. The zero Scratch with a New func set via
// NewScratch is ready to use.
type Scratch[T any] struct {
	// New builds a fresh per-worker value the first time a slot is used.
	// It must not retain references shared across slots unless those are
	// themselves safe for concurrent use.
	New func() T

	slots []T
	init  []bool
}

// NewScratch returns a Scratch whose slots are built by newFn on first use.
func NewScratch[T any](newFn func() T) *Scratch[T] {
	return &Scratch[T]{New: newFn}
}

// Grow ensures the Scratch has at least `workers` slots, allocating (but
// not initializing) the backing arrays. Call it with the resolved worker
// count before For so that Get never has to grow the slice from inside a
// worker goroutine.
func (s *Scratch[T]) Grow(workers int) {
	if workers <= len(s.slots) {
		return
	}
	slots := make([]T, workers)
	copy(slots, s.slots)
	s.slots = slots
	init := make([]bool, workers)
	copy(init, s.init)
	s.init = init
}

// Get returns worker w's scratch value, building it with New on first
// use. w must be < the width passed to the last Grow. Distinct workers
// access distinct slots, so concurrent Get calls from a For body are
// race-free without locking.
func (s *Scratch[T]) Get(w int) T {
	if !s.init[w] {
		s.slots[w] = s.New()
		s.init[w] = true
	}
	return s.slots[w]
}

// Len reports the current slot capacity (the largest width Grow saw).
func (s *Scratch[T]) Len() int { return len(s.slots) }

// Each calls fn over every initialized slot in ascending worker order.
// Use it for fixed-order reductions of per-worker accumulators; never
// call it concurrently with a For that uses this Scratch.
func (s *Scratch[T]) Each(fn func(w int, v T)) {
	for w := range s.slots {
		if s.init[w] {
			fn(w, s.slots[w])
		}
	}
}
