package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 33} {
		for _, n := range []int{0, 1, 7, 64, 1000} {
			for _, grain := range []int{0, 1, 3, 64, 5000} {
				hits := make([]int32, n)
				st := For(workers, n, grain, func(w, lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d hit %d times", workers, n, grain, i, h)
					}
				}
				if n > 0 && st.Chunks == 0 {
					t.Fatalf("workers=%d n=%d grain=%d: zero chunks", workers, n, grain)
				}
			}
		}
	}
}

func TestForWorkerIndexInRange(t *testing.T) {
	var bad atomic.Int64
	st := For(4, 100, 1, func(w, lo, hi int) {
		if w < 0 || w >= 4 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker index out of range")
	}
	if st.Workers < 1 || st.Workers > 4 {
		t.Fatalf("Stats.Workers = %d", st.Workers)
	}
}

func TestForDeterministicOutput(t *testing.T) {
	// Disjoint index writes must produce identical results at any worker
	// count — the contract every call site in the repo depends on.
	n := 4096
	ref := make([]uint64, n)
	For(1, n, 7, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			ref[i] = Stream(42, uint64(i)).Uint64()
		}
	})
	for _, workers := range []int{2, 5, 16} {
		got := make([]uint64, n)
		For(workers, n, 7, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = Stream(42, uint64(i)).Uint64()
			}
		})
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: index %d differs", workers, i)
			}
		}
	}
}

func TestStreamsIndependentAndStable(t *testing.T) {
	a1 := Stream(1, 0)
	a2 := Stream(1, 0)
	b := Stream(1, 1)
	c := Stream(2, 0)
	x1, x2 := a1.Uint64(), a2.Uint64()
	if x1 != x2 {
		t.Fatal("same (seed, stream) must replay identically")
	}
	if y := b.Uint64(); y == x1 {
		t.Fatal("adjacent streams collide on first draw")
	}
	if z := c.Uint64(); z == x1 {
		t.Fatal("different seeds collide on first draw")
	}
	// Float64 must be in [0, 1) — exercised because RR-set sampling
	// compares it against arc weights.
	for i := 0; i < 1000; i++ {
		if f := a1.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestStreamUniformity(t *testing.T) {
	// Coarse sanity: across many streams, first draws should fill all
	// 16 top-nibble buckets (catches catastrophic mixing bugs).
	var buckets [16]int
	for i := 0; i < 4096; i++ {
		buckets[Stream(7, uint64(i)).Uint64()>>60]++
	}
	for b, c := range buckets {
		if c == 0 {
			t.Fatalf("bucket %d empty", b)
		}
	}
}

func TestLimitAndResolve(t *testing.T) {
	old := Limit()
	SetLimit(3)
	if Limit() != 3 {
		t.Fatalf("Limit = %d after SetLimit(3)", Limit())
	}
	if Resolve(0) != 3 || Resolve(5) != 5 {
		t.Fatal("Resolve precedence wrong")
	}
	SetLimit(0)
	if Limit() < 1 {
		t.Fatal("default Limit must be >= 1")
	}
	_ = old
}

func TestStatsImbalance(t *testing.T) {
	if (Stats{}).Imbalance() != 0 {
		t.Fatal("zero Stats imbalance")
	}
	s := Stats{Workers: 2, Chunks: 10, MaxChunks: 9, MinChunks: 1}
	if got := s.Imbalance(); got != 0.8 {
		t.Fatalf("imbalance = %v", got)
	}
}

// TestForHammer drives many concurrent For calls from competing
// goroutines; run with -race to catch pool-layer data races.
func TestForHammer(t *testing.T) {
	var wg = make(chan struct{}, 8)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg <- struct{}{}
		go func(g int) {
			defer func() { <-wg }()
			sum := int64(0)
			for rep := 0; rep < 20; rep++ {
				parts := make([]int64, 16)
				For(4, 500, 9, func(w, lo, hi int) {
					var local int64
					for i := lo; i < hi; i++ {
						local += int64(i)
					}
					atomic.AddInt64(&parts[w], local)
				})
				sum = 0
				for _, p := range parts {
					sum += p
				}
			}
			if sum != 500*499/2 {
				done <- errSum(sum)
				return
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type errSum int64

func (e errSum) Error() string { return "bad hammer sum" }

func TestTotalsAdvance(t *testing.T) {
	calls0, _, chunks0 := Totals()
	For(2, 100, 10, func(w, lo, hi int) {})
	calls1, _, chunks1 := Totals()
	if calls1 <= calls0 || chunks1 < chunks0+10 {
		t.Fatalf("totals did not advance: %d->%d calls, %d->%d chunks", calls0, calls1, chunks0, chunks1)
	}
}
