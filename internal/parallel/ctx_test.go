package parallel

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// A completed ForCtx must execute exactly the work For does — same index
// coverage, so call sites writing disjoint ranges get bit-identical
// output at any worker count.
func TestForCtxMatchesFor(t *testing.T) {
	const n = 1003
	for _, workers := range []int{1, 2, 4, 7} {
		ref := make([]float64, n)
		For(workers, n, 16, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				ref[i] = math.Sqrt(float64(i)) * 1.5
			}
		})
		got := make([]float64, n)
		st, err := ForCtx(context.Background(), workers, n, 16, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = math.Sqrt(float64(i)) * 1.5
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if want := (n + 15) / 16; st.Chunks != want {
			t.Fatalf("workers=%d: ran %d chunks, want %d", workers, st.Chunks, want)
		}
		for i := range ref {
			if math.Float64bits(ref[i]) != math.Float64bits(got[i]) {
				t.Fatalf("workers=%d: output diverges at %d: %v vs %v", workers, i, ref[i], got[i])
			}
		}
	}
}

func TestForCtxNilContextDelegates(t *testing.T) {
	var calls atomic.Int64
	st, err := ForCtx(nil, 4, 100, 10, func(_, lo, hi int) { calls.Add(int64(hi - lo)) })
	if err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if calls.Load() != 100 {
		t.Fatalf("nil ctx covered %d of 100 indices", calls.Load())
	}
	if st.Chunks == 0 {
		t.Fatalf("nil ctx reported zero chunks")
	}
}

// A context canceled before the call starts must stop the fan-out
// without running any chunk.
func TestForCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		st, err := ForCtx(ctx, workers, 1000, 10, func(_, _, _ int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got != 0 {
			t.Fatalf("workers=%d: %d chunks ran on a dead context", workers, got)
		}
		if st.Chunks != 0 {
			t.Fatalf("workers=%d: Stats.Chunks = %d, want 0", workers, st.Chunks)
		}
	}
}

// Canceling mid-flight stops the remaining chunks: with a serial worker
// the check runs before every chunk, so canceling inside chunk 0 means
// only chunk 0 executes.
func TestForCtxSerialCancelStopsAtChunkBoundary(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	st, err := ForCtx(ctx, 1, 100, 10, func(_, _, _ int) {
		ran.Add(1)
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d chunks ran after cancel, want exactly 1", got)
	}
	if st.Chunks != 1 {
		t.Fatalf("Stats.Chunks = %d, want 1", st.Chunks)
	}
}

// Cancellation latency: with chunks that take ~1ms, a cancel must
// surface within a small multiple of one grain of work per worker, far
// under the 2s budget the serving layer promises.
func TestForCtxCancelLatency(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := ForCtx(ctx, 4, 100000, 1, func(_, _, _ int) {
		time.Sleep(time.Millisecond)
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancel took %v, want well under 2s", elapsed)
	}
}
