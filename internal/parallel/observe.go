package parallel

import (
	"context"
	"time"

	"privim/internal/obs"
)

// ForObserved is For wrapped in observability: the fan-out runs inside a
// child span of parent named "parallel.<site>" and emits one
// obs.ParallelFor event to the parent's observer, so kernel-level
// concurrency shows up in traces and metrics without every call site
// hand-rolling the bookkeeping. A nil parent degrades to plain For —
// zero events, zero allocations — preserving the nil-observer contract
// of the instrumented pipelines.
func ForObserved(parent *obs.Span, site string, workers, n, grain int, fn func(worker, lo, hi int)) Stats {
	if parent == nil {
		return For(workers, n, grain, fn)
	}
	sp := parent.Child("parallel." + site)
	start := time.Now()
	st := For(workers, n, grain, fn)
	sp.End()
	obs.Emit(parent.Observer(), obs.ParallelFor{
		Site:      site,
		Workers:   st.Workers,
		Tasks:     n,
		Chunks:    st.Chunks,
		Imbalance: st.Imbalance(),
		Elapsed:   time.Since(start),
	})
	return st
}

// ForObservedCtx is ForObserved over ForCtx: the same span + ParallelFor
// event bookkeeping, with cancellation checked at chunk boundaries. The
// ParallelFor event is emitted even on a canceled call (its Chunks count
// then reflects the partial execution), so traces show where a canceled
// request actually stopped.
func ForObservedCtx(ctx context.Context, parent *obs.Span, site string, workers, n, grain int, fn func(worker, lo, hi int)) (Stats, error) {
	if parent == nil {
		return ForCtx(ctx, workers, n, grain, fn)
	}
	sp := parent.Child("parallel." + site)
	start := time.Now()
	st, err := ForCtx(ctx, workers, n, grain, fn)
	sp.End()
	obs.Emit(parent.Observer(), obs.ParallelFor{
		Site:      site,
		Workers:   st.Workers,
		Tasks:     n,
		Chunks:    st.Chunks,
		Imbalance: st.Imbalance(),
		Elapsed:   time.Since(start),
	})
	return st, err
}
