package parallel

import (
	"sync/atomic"
	"testing"
)

func TestScratchLazyInit(t *testing.T) {
	var built atomic.Int64
	s := NewScratch(func() []int {
		built.Add(1)
		return make([]int, 0, 8)
	})
	s.Grow(4)
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	_ = s.Get(0)
	_ = s.Get(0)
	_ = s.Get(2)
	if got := built.Load(); got != 2 {
		t.Fatalf("New ran %d times, want 2 (lazy, once per touched slot)", got)
	}
}

func TestScratchGrowPreservesSlots(t *testing.T) {
	s := NewScratch(func() *int { v := new(int); return v })
	s.Grow(2)
	p0 := s.Get(0)
	*p0 = 42
	s.Grow(8)
	if got := s.Get(0); got != p0 || *got != 42 {
		t.Fatalf("Grow dropped slot 0: got %p=%d, want %p=42", got, *got, p0)
	}
	s.Grow(3) // shrinking request is a no-op
	if s.Len() != 8 {
		t.Fatalf("Len = %d after no-op Grow, want 8", s.Len())
	}
}

func TestScratchPerWorkerIsolationUnderFor(t *testing.T) {
	type buf struct{ sum int64 }
	s := NewScratch(func() *buf { return new(buf) })
	const workers, n = 4, 10_000
	s.Grow(workers)
	for rep := 0; rep < 10; rep++ {
		s.Each(func(w int, b *buf) { b.sum = 0 })
		For(workers, n, 64, func(w, lo, hi int) {
			b := s.Get(w)
			for i := lo; i < hi; i++ {
				b.sum += int64(i)
			}
		})
		var total int64
		s.Each(func(w int, b *buf) { total += b.sum })
		if total != n*(n-1)/2 {
			t.Fatalf("rep %d: per-worker sums total %d, want %d", rep, total, n*(n-1)/2)
		}
	}
}

func TestScratchEachOrderAndSkipsUninitialized(t *testing.T) {
	s := NewScratch(func() int { return 7 })
	s.Grow(5)
	_ = s.Get(3)
	_ = s.Get(1)
	var order []int
	s.Each(func(w int, v int) {
		if v != 7 {
			t.Fatalf("slot %d holds %d, want 7", w, v)
		}
		order = append(order, w)
	})
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("Each visited %v, want [1 3] in ascending order", order)
	}
}

func TestScratchZeroAllocSteadyState(t *testing.T) {
	s := NewScratch(func() []float64 { return make([]float64, 16) })
	s.Grow(2)
	_ = s.Get(0)
	_ = s.Get(1)
	allocs := testing.AllocsPerRun(100, func() {
		b := s.Get(0)
		b[0]++
		b = s.Get(1)
		b[0]++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get allocates %.1f/op, want 0", allocs)
	}
}
