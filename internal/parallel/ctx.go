package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// ForCtx is For under a caller-supplied context: cancellation is checked
// at every chunk boundary — before each dynamic chunk claim on the
// parallel path, before each chunk on the inline serial path — so a
// canceled context stops the fan-out within one grain of work per
// worker. A nil ctx degrades to plain For.
//
// Determinism contract: a ForCtx call that returns a nil error executed
// exactly the chunk set For would have, over the same index ranges, so
// completed calls are bit-for-bit identical to For at any worker count
// (call sites write only disjoint [lo, hi) ranges). When the context is
// canceled mid-flight, ForCtx returns ctx.Err() and the output arrays
// hold an unspecified mix of written and unwritten ranges — callers must
// treat partial output as garbage, never publish it.
//
// Stats always reflects the chunks actually executed, so cancellation
// latency is observable: a canceled call reports Chunks < the full chunk
// count.
func ForCtx(ctx context.Context, workers, n, grain int, fn func(worker, lo, hi int)) (Stats, error) {
	if ctx == nil {
		return For(workers, n, grain, fn), nil
	}
	if n <= 0 {
		return Stats{}, ctx.Err()
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if grain < 1 {
		grain = (n + workers - 1) / workers
	}
	chunks := (n + grain - 1) / grain
	totalCalls.Add(1)
	if workers <= 1 || chunks == 1 {
		// Serial inline path: unlike For (one fn(0, 0, n) call), iterate
		// chunk-by-chunk so a single-threaded caller still observes
		// cancellation at grain granularity. Identical output when it
		// completes — fn writes disjoint ranges either way.
		done := 0
		for c := 0; c < chunks; c++ {
			if err := ctx.Err(); err != nil {
				totalChunks.Add(int64(done))
				return Stats{Workers: 1, Chunks: done, MaxChunks: done, MinChunks: done}, err
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(0, lo, hi)
			done++
		}
		totalChunks.Add(int64(done))
		return Stats{Workers: 1, Chunks: done, MaxChunks: done, MinChunks: done}, nil
	}
	if workers > chunks {
		workers = chunks
	}
	totalParallel.Add(1)
	sz := grain
	var cursor atomic.Int64
	ran := make([]int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				c := int(cursor.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * sz
				hi := lo + sz
				if hi > n {
					hi = n
				}
				fn(w, lo, hi)
				ran[w]++
			}
		}(w)
	}
	wg.Wait()
	st := Stats{Workers: workers, MinChunks: ran[0]}
	for _, r := range ran {
		st.Chunks += r
		if r > st.MaxChunks {
			st.MaxChunks = r
		}
		if r < st.MinChunks {
			st.MinChunks = r
		}
	}
	totalChunks.Add(int64(st.Chunks))
	if st.Chunks < chunks {
		// The only way to leave chunks unclaimed is a context error; by
		// the time every worker has exited, ctx.Err() is non-nil.
		return st, ctx.Err()
	}
	// Every chunk ran: the output is complete and valid even if the
	// context was canceled an instant after the last chunk finished.
	return st, nil
}
