package im

import (
	"testing"

	"privim/internal/diffusion"
	"privim/internal/graph"
	"privim/internal/obs"
	"privim/internal/parallel"
)

// parallelTestGraph builds a small weighted digraph with a clear hub
// structure so solver outputs are stable and meaningful.
func parallelTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	n := 40
	g := graph.NewWithNodes(n, true)
	for i := 0; i < n; i++ {
		// Ring for connectivity.
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n), 0.3)
	}
	for i := 1; i < 10; i++ {
		// Node 0 is a hub.
		g.AddEdge(0, graph.NodeID(i*4%n), 0.8)
		g.AddEdge(graph.NodeID((i*7)%n), graph.NodeID((i*11)%n), 0.5)
	}
	return g
}

func sameSeeds(t *testing.T, name string, a, b []graph.NodeID) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d seeds", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: seed %d differs: %v vs %v", name, i, a, b)
		}
	}
}

// TestSolversWorkerInvariant verifies every parallelized solver returns
// bit-identical seed sets at any worker count.
func TestSolversWorkerInvariant(t *testing.T) {
	g := parallelTestGraph(t)
	model := &diffusion.IC{G: g, MaxSteps: 2}
	for _, w := range []int{2, 3, 8} {
		celf1 := &CELF{Model: model, Rounds: 50, Seed: 5, NumNodes: g.NumNodes(), Workers: 1}
		celfW := &CELF{Model: model, Rounds: 50, Seed: 5, NumNodes: g.NumNodes(), Workers: w}
		sameSeeds(t, "celf", celf1.Select(4), celfW.Select(4))
		if celf1.Evaluations != celfW.Evaluations {
			t.Fatalf("celf evaluations differ: %d vs %d", celf1.Evaluations, celfW.Evaluations)
		}

		greedy1 := &Greedy{Model: model, Rounds: 50, Seed: 5, NumNodes: g.NumNodes(), Workers: 1}
		greedyW := &Greedy{Model: model, Rounds: 50, Seed: 5, NumNodes: g.NumNodes(), Workers: w}
		sameSeeds(t, "greedy", greedy1.Select(3), greedyW.Select(3))

		ris1 := &RIS{G: g, Samples: 300, Seed: 9, Workers: 1}
		risW := &RIS{G: g, Samples: 300, Seed: 9, Workers: w}
		sameSeeds(t, "ris", ris1.Select(4), risW.Select(4))

		imm1 := &IMM{G: g, Seed: 9, MaxSamples: 400, Workers: 1}
		immW := &IMM{G: g, Seed: 9, MaxSamples: 400, Workers: w}
		sameSeeds(t, "imm", imm1.Select(4), immW.Select(4))
	}
}

// TestGenerateRRSetsStreamStable checks set i only depends on (seed, base+i):
// one batch of 2n sets equals two stacked batches of n.
func TestGenerateRRSetsStreamStable(t *testing.T) {
	g := parallelTestGraph(t)
	newScratch := func() *parallel.Scratch[*rrScratch] {
		return parallel.NewScratch(func() *rrScratch { return newRRScratch(g.NumNodes()) })
	}
	var whole rrArena
	generateRRSets(nil, g, &whole, 100, 0, 0, 42, 3, newScratch(), nil, nil, "")
	// Two stacked batches at different widths into one arena.
	var stacked rrArena
	sc := newScratch()
	locs, _, _ := generateRRSets(nil, g, &stacked, 60, 0, 0, 42, 2, sc, nil, nil, "")
	generateRRSets(nil, g, &stacked, 40, 60, 0, 42, 5, sc, locs, nil, "")
	if whole.numSets() != stacked.numSets() {
		t.Fatalf("%d vs %d sets", whole.numSets(), stacked.numSets())
	}
	for i := 0; i < whole.numSets(); i++ {
		a, b := whole.set(i), stacked.set(i)
		if len(a) != len(b) {
			t.Fatalf("set %d: %d vs %d nodes", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("set %d node %d differs", i, j)
			}
		}
	}
}

// TestReverseReachableScratchClean verifies a draw leaves the scratch set
// empty, so reuse across draws cannot leak visited state.
func TestReverseReachableScratchClean(t *testing.T) {
	g := parallelTestGraph(t)
	sc := newRRScratch(g.NumNodes())
	for i := 0; i < 50; i++ {
		rng := parallel.Stream(3, uint64(i))
		target := graph.NodeID(rng.Intn(g.NumNodes()))
		start, end := reverseReachable(g, target, 0, rng, sc)
		set := sc.arena[start:end]
		if len(set) == 0 || set[0] != target {
			t.Fatalf("draw %d: set %v does not start at target %d", i, set, target)
		}
		if got := sc.seen.Count(); got != 0 {
			t.Fatalf("draw %d left %d bits set in scratch", i, got)
		}
	}
}

// TestRISEmitsParallelFor checks the RR-generation site reports pool stats.
func TestRISEmitsParallelFor(t *testing.T) {
	g := parallelTestGraph(t)
	var got []obs.ParallelFor
	r := &RIS{G: g, Samples: 100, Seed: 1, Workers: 2,
		Obs: obs.ObserverFunc(func(e obs.Event) {
			if pf, ok := e.(obs.ParallelFor); ok {
				got = append(got, pf)
			}
		})}
	r.Select(3)
	if len(got) != 1 || got[0].Site != "im.ris.rrsets" || got[0].Tasks != 100 {
		t.Fatalf("unexpected ParallelFor events: %+v", got)
	}
}
