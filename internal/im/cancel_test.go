package im

import (
	"context"
	"errors"
	"testing"

	"privim/internal/diffusion"
	"privim/internal/graph"
)

// Each solver's SelectContext must return the same seeds as Select when
// it completes, and a typed *CanceledError (unwrapping to the context
// error) on a dead context.
func TestSelectContextSolvers(t *testing.T) {
	g := twoStars()
	model := &diffusion.IC{G: g}
	solvers := []struct {
		name   string
		plain  func(k int) []graph.NodeID
		ctxSel func(ctx context.Context, k int) ([]graph.NodeID, error)
	}{
		{
			name: "celf",
			plain: func(k int) []graph.NodeID {
				return (&CELF{Model: model, Rounds: 10, Seed: 1, NumNodes: g.NumNodes()}).Select(k)
			},
			ctxSel: func(ctx context.Context, k int) ([]graph.NodeID, error) {
				return (&CELF{Model: model, Rounds: 10, Seed: 1, NumNodes: g.NumNodes()}).SelectContext(ctx, k)
			},
		},
		{
			name: "greedy",
			plain: func(k int) []graph.NodeID {
				return (&Greedy{Model: model, Rounds: 10, Seed: 1, NumNodes: g.NumNodes()}).Select(k)
			},
			ctxSel: func(ctx context.Context, k int) ([]graph.NodeID, error) {
				return (&Greedy{Model: model, Rounds: 10, Seed: 1, NumNodes: g.NumNodes()}).SelectContext(ctx, k)
			},
		},
		{
			name: "ris",
			plain: func(k int) []graph.NodeID {
				return (&RIS{G: g, Samples: 200, Seed: 1}).Select(k)
			},
			ctxSel: func(ctx context.Context, k int) ([]graph.NodeID, error) {
				return (&RIS{G: g, Samples: 200, Seed: 1}).SelectContext(ctx, k)
			},
		},
		{
			name: "imm",
			plain: func(k int) []graph.NodeID {
				return (&IMM{G: g, Seed: 1}).Select(k)
			},
			ctxSel: func(ctx context.Context, k int) ([]graph.NodeID, error) {
				return (&IMM{G: g, Seed: 1}).SelectContext(ctx, k)
			},
		},
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	for _, s := range solvers {
		want := s.plain(2)
		got, err := s.ctxSel(context.Background(), 2)
		if err != nil {
			t.Fatalf("%s: SelectContext(Background): %v", s.name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: SelectContext returned %v, Select returned %v", s.name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: seed %d diverges: SelectContext %v vs Select %v", s.name, i, got, want)
			}
		}

		_, err = s.ctxSel(dead, 2)
		var cerr *CanceledError
		if !errors.As(err, &cerr) {
			t.Fatalf("%s: canceled err = %v, want *CanceledError", s.name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: CanceledError must unwrap to context.Canceled, got %v", s.name, err)
		}
		if cerr.K != 2 {
			t.Fatalf("%s: CanceledError.K = %d, want 2", s.name, cerr.K)
		}
	}
}
