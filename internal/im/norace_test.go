//go:build !race

package im

const raceEnabled = false
