package im

import (
	"math/rand"
	"testing"

	"privim/internal/diffusion"
	"privim/internal/graph"
)

// twoStars builds two disjoint stars: hub 0 → {1..5}, hub 6 → {7..9}.
// With w=1 the optimal 2-seed set is {0, 6}.
func twoStars() *graph.Graph {
	g := graph.NewWithNodes(10, true)
	for v := 1; v <= 5; v++ {
		g.AddEdge(0, graph.NodeID(v), 1)
	}
	for v := 7; v <= 9; v++ {
		g.AddEdge(6, graph.NodeID(v), 1)
	}
	return g
}

func seedsContain(seeds []graph.NodeID, want ...graph.NodeID) bool {
	set := make(map[graph.NodeID]bool, len(seeds))
	for _, s := range seeds {
		set[s] = true
	}
	for _, w := range want {
		if !set[w] {
			return false
		}
	}
	return true
}

func TestCELFPicksBothHubs(t *testing.T) {
	g := twoStars()
	c := &CELF{Model: &diffusion.IC{G: g}, Rounds: 20, Seed: 1, NumNodes: g.NumNodes()}
	seeds := c.Select(2)
	if err := ValidateSeeds(seeds, g.NumNodes()); err != nil {
		t.Fatal(err)
	}
	if !seedsContain(seeds, 0, 6) {
		t.Fatalf("CELF seeds = %v, want both hubs {0, 6}", seeds)
	}
}

func TestCELFMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.NewWithNodes(25, true)
	for i := 0; i < 80; i++ {
		u, v := graph.NodeID(rng.Intn(25)), graph.NodeID(rng.Intn(25))
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v, 1) // deterministic cascades -> exact equivalence
		}
	}
	model := &diffusion.IC{G: g}
	c := &CELF{Model: model, Rounds: 1, Seed: 2, NumNodes: 25}
	gr := &Greedy{Model: model, Rounds: 1, Seed: 2, NumNodes: 25}
	cs, gs := c.Select(3), gr.Select(3)
	// Same spread value (seed identity may differ on exact ties).
	cSpread := diffusion.Estimate(model, cs, 1, 2)
	gSpread := diffusion.Estimate(model, gs, 1, 2)
	if cSpread != gSpread {
		t.Fatalf("CELF spread %v != greedy spread %v (seeds %v vs %v)", cSpread, gSpread, cs, gs)
	}
}

func TestCELFLazyEvaluationSavesWork(t *testing.T) {
	g := twoStars()
	model := &diffusion.IC{G: g}
	c := &CELF{Model: model, Rounds: 5, Seed: 3, NumNodes: g.NumNodes()}
	c.Select(3)
	celfEvals := c.Evaluations
	// Plain greedy would need numNodes evaluations per round: 10+9+8 = 27.
	if celfEvals >= 27 {
		t.Fatalf("CELF used %d evaluations, plain greedy would use 27 — laziness broken", celfEvals)
	}
	// And the first pass alone costs numNodes.
	if celfEvals < g.NumNodes() {
		t.Fatalf("CELF used %d evaluations, must at least scan all %d nodes once", celfEvals, g.NumNodes())
	}
}

func TestCELFCandidateRestriction(t *testing.T) {
	g := twoStars()
	c := &CELF{
		Model:      &diffusion.IC{G: g},
		Rounds:     5,
		Seed:       1,
		Candidates: []graph.NodeID{1, 2, 6},
	}
	seeds := c.Select(2)
	for _, s := range seeds {
		if s != 1 && s != 2 && s != 6 {
			t.Fatalf("seed %d outside candidate set", s)
		}
	}
	if !seedsContain(seeds, 6) {
		t.Fatalf("seeds %v must include hub 6 (only influential candidate)", seeds)
	}
}

func TestCELFEdgeCases(t *testing.T) {
	g := twoStars()
	c := &CELF{Model: &diffusion.IC{G: g}, Rounds: 2, Seed: 1, NumNodes: g.NumNodes()}
	if got := c.Select(0); got != nil {
		t.Fatalf("Select(0) = %v, want nil", got)
	}
	if got := c.Select(100); len(got) != g.NumNodes() {
		t.Fatalf("Select(100) returned %d seeds, want all %d nodes", len(got), g.NumNodes())
	}
}

func TestDegreeSolver(t *testing.T) {
	g := twoStars()
	d := &Degree{G: g}
	seeds := d.Select(2)
	if !seedsContain(seeds, 0, 6) {
		t.Fatalf("degree seeds = %v, want hubs", seeds)
	}
	if err := ValidateSeeds(seeds, g.NumNodes()); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeDiscountAvoidsOverlap(t *testing.T) {
	// Hub 0 → {1,2,3,4}; node 1 → {2,3,4} overlaps hub coverage; node 5 → {6,7}.
	// Plain degree picks {0, 1}; degree-discount should prefer {0, 5}.
	g := graph.NewWithNodes(8, true)
	for v := 1; v <= 4; v++ {
		g.AddEdge(0, graph.NodeID(v), 1)
	}
	for v := 2; v <= 4; v++ {
		g.AddEdge(1, graph.NodeID(v), 1)
	}
	g.AddEdge(5, 6, 1)
	g.AddEdge(5, 7, 1)

	dd := &DegreeDiscount{G: g, P: 0.5}
	seeds := dd.Select(2)
	if !seedsContain(seeds, 0, 5) {
		t.Fatalf("degree-discount seeds = %v, want {0, 5}", seeds)
	}
}

func TestRISPicksHubs(t *testing.T) {
	g := twoStars()
	r := &RIS{G: g, Samples: 2000, Seed: 7}
	seeds := r.Select(2)
	if err := ValidateSeeds(seeds, g.NumNodes()); err != nil {
		t.Fatal(err)
	}
	if !seedsContain(seeds, 0, 6) {
		t.Fatalf("RIS seeds = %v, want hubs {0, 6}", seeds)
	}
}

func TestRISAllCoveredFallback(t *testing.T) {
	// Edgeless graph: every RR set is a single node; after covering, fill
	// deterministically without duplicates.
	g := graph.NewWithNodes(5, true)
	r := &RIS{G: g, Samples: 50, Seed: 1}
	seeds := r.Select(4)
	if err := ValidateSeeds(seeds, 5); err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 4 {
		t.Fatalf("got %d seeds, want 4", len(seeds))
	}
}

func TestTopKScores(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	top := TopKScores(scores, 2)
	// Ties broken by lower ID: 1 before 3.
	if len(top) != 2 || top[0] != 1 || top[1] != 3 {
		t.Fatalf("TopKScores = %v, want [1 3]", top)
	}
	if got := TopKScores(scores, 10); len(got) != 5 {
		t.Fatalf("k > n must clamp: got %d", len(got))
	}
}

func TestCoverageRatio(t *testing.T) {
	if got := CoverageRatio(50, 100); got != 50 {
		t.Fatalf("CoverageRatio = %v, want 50", got)
	}
	if got := CoverageRatio(10, 0); got != 0 {
		t.Fatalf("CoverageRatio with zero reference = %v, want 0", got)
	}
}

func TestValidateSeeds(t *testing.T) {
	if err := ValidateSeeds([]graph.NodeID{0, 1, 2}, 3); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSeeds([]graph.NodeID{0, 0}, 3); err == nil {
		t.Fatal("expected duplicate error")
	}
	if err := ValidateSeeds([]graph.NodeID{5}, 3); err == nil {
		t.Fatal("expected range error")
	}
}

func TestSolverNames(t *testing.T) {
	g := twoStars()
	solvers := []Solver{
		&CELF{Model: &diffusion.IC{G: g}, NumNodes: 10},
		&Greedy{Model: &diffusion.IC{G: g}, NumNodes: 10},
		&Degree{G: g},
		&DegreeDiscount{G: g},
		&RIS{G: g},
	}
	seen := map[string]bool{}
	for _, s := range solvers {
		if s.Name() == "" || seen[s.Name()] {
			t.Fatalf("bad or duplicate solver name %q", s.Name())
		}
		seen[s.Name()] = true
	}
}
