// Package im implements the classical influence-maximization solvers the
// paper compares against: CELF lazy greedy (the ground truth with its
// (1−1/e) guarantee, §V-A), plain greedy, degree and degree-discount
// heuristics, and an RIS (reverse-influence-sampling) baseline. It also
// provides the coverage-ratio metric used throughout the evaluation.
package im

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"privim/internal/diffusion"
	"privim/internal/graph"
	"privim/internal/obs"
)

// Solver selects a seed set of size k for a diffusion model.
type Solver interface {
	// Select returns k seed nodes (fewer if the graph is smaller).
	Select(k int) []graph.NodeID
	// Name identifies the solver for reporting.
	Name() string
}

// celfEntry is one lazy-greedy priority-queue element.
type celfEntry struct {
	node graph.NodeID
	gain float64
	// round is the greedy iteration at which gain was last evaluated;
	// a gain is exact only if round equals the current iteration.
	round int
}

type celfQueue []*celfEntry

func (q celfQueue) Len() int            { return len(q) }
func (q celfQueue) Less(i, j int) bool  { return q[i].gain > q[j].gain }
func (q celfQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *celfQueue) Push(x interface{}) { *q = append(*q, x.(*celfEntry)) }
func (q *celfQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// CELF is the cost-effective lazy-forward greedy solver. It exploits
// submodularity of the spread function: a node's marginal gain can only
// shrink as the seed set grows, so stale queue entries are upper bounds and
// most re-evaluations are skipped.
type CELF struct {
	Model diffusion.Model
	// Rounds Monte Carlo simulations per spread estimate.
	Rounds int
	// Seed drives the simulation RNG streams.
	Seed int64
	// Candidates restricts seed selection to these nodes (nil = all nodes).
	Candidates []graph.NodeID
	// numNodes is required when Candidates is nil.
	NumNodes int

	// Evaluations counts spread estimates performed by the last Select call
	// (exported for the lazy-evaluation efficiency tests).
	Evaluations int

	// Obs, when non-nil, receives one SeedSelected event per pick,
	// carrying the marginal gain and the cumulative number of spread
	// estimates lazy evaluation saved versus plain greedy.
	Obs obs.Observer
}

// Name implements Solver.
func (c *CELF) Name() string { return "celf" }

// Select implements Solver.
func (c *CELF) Select(k int) []graph.NodeID {
	cands := c.Candidates
	if cands == nil {
		cands = make([]graph.NodeID, c.NumNodes)
		for i := range cands {
			cands[i] = graph.NodeID(i)
		}
	}
	if k > len(cands) {
		k = len(cands)
	}
	if k <= 0 {
		return nil
	}
	rounds := c.Rounds
	if rounds < 1 {
		rounds = 100
	}
	c.Evaluations = 0
	spread := func(seeds []graph.NodeID) float64 {
		c.Evaluations++
		return diffusion.Estimate(c.Model, seeds, rounds, c.Seed)
	}

	// Initial pass: evaluate every candidate's solo spread.
	q := make(celfQueue, 0, len(cands))
	for _, v := range cands {
		q = append(q, &celfEntry{node: v, gain: spread([]graph.NodeID{v}), round: 0})
	}
	heap.Init(&q)

	seeds := make([]graph.NodeID, 0, k)
	base := 0.0
	for len(seeds) < k && q.Len() > 0 {
		top := heap.Pop(&q).(*celfEntry)
		if top.round == len(seeds) {
			// Gain is exact for the current seed set: take it.
			seeds = append(seeds, top.node)
			base += top.gain
			if c.Obs != nil {
				// Plain greedy evaluates every remaining candidate on each
				// pick: Σ_{j=0..picks-1}(n−j) estimates so far. The lazy
				// queue's saving is the gap to our actual evaluation count.
				picks := len(seeds)
				greedyEvals := picks*len(cands) - picks*(picks-1)/2
				obs.Emit(c.Obs, obs.SeedSelected{
					K:            len(seeds),
					Node:         int64(top.node),
					MarginalGain: top.gain,
					Evaluations:  c.Evaluations,
					LookupsSaved: greedyEvals - c.Evaluations,
				})
			}
			continue
		}
		// Stale: re-evaluate against the current seed set and push back.
		cur := spread(append(append([]graph.NodeID{}, seeds...), top.node))
		top.gain = cur - base
		top.round = len(seeds)
		heap.Push(&q, top)
	}
	return seeds
}

// Greedy is the plain (non-lazy) greedy solver; kept as the correctness
// oracle for CELF in tests.
type Greedy struct {
	Model    diffusion.Model
	Rounds   int
	Seed     int64
	NumNodes int

	// Evaluations counts spread estimates performed by the last Select
	// call (the baseline CELF's LookupsSaved is measured against).
	Evaluations int
	// Obs, when non-nil, receives one SeedSelected event per pick.
	Obs obs.Observer
}

// Name implements Solver.
func (g *Greedy) Name() string { return "greedy" }

// Select implements Solver.
func (g *Greedy) Select(k int) []graph.NodeID {
	if k > g.NumNodes {
		k = g.NumNodes
	}
	rounds := g.Rounds
	if rounds < 1 {
		rounds = 100
	}
	g.Evaluations = 0
	chosen := make(map[graph.NodeID]bool, k)
	seeds := make([]graph.NodeID, 0, k)
	base := 0.0
	for len(seeds) < k {
		bestGain := -1.0
		var best graph.NodeID
		for v := 0; v < g.NumNodes; v++ {
			if chosen[graph.NodeID(v)] {
				continue
			}
			cand := append(append([]graph.NodeID{}, seeds...), graph.NodeID(v))
			gain := diffusion.Estimate(g.Model, cand, rounds, g.Seed)
			g.Evaluations++
			if gain > bestGain {
				bestGain = gain
				best = graph.NodeID(v)
			}
		}
		chosen[best] = true
		seeds = append(seeds, best)
		if g.Obs != nil {
			obs.Emit(g.Obs, obs.SeedSelected{
				K:            len(seeds),
				Node:         int64(best),
				MarginalGain: bestGain - base,
				Evaluations:  g.Evaluations,
			})
		}
		base = bestGain
	}
	return seeds
}

// Degree selects the k highest out-degree nodes — the classic cheap
// heuristic.
type Degree struct {
	G *graph.Graph
}

// Name implements Solver.
func (d *Degree) Name() string { return "degree" }

// Select implements Solver.
func (d *Degree) Select(k int) []graph.NodeID {
	return topKBy(d.G.NumNodes(), k, func(v graph.NodeID) float64 {
		return float64(d.G.OutDegree(v))
	})
}

// DegreeDiscount implements the degree-discount heuristic (Chen et al.):
// after picking a node, its neighbors' effective degrees are discounted to
// correct for overlapping coverage.
type DegreeDiscount struct {
	G *graph.Graph
	// P is the propagation probability used in the discount formula
	// (defaults to 0.1 when zero).
	P float64
}

// Name implements Solver.
func (d *DegreeDiscount) Name() string { return "degree-discount" }

// Select implements Solver.
func (d *DegreeDiscount) Select(k int) []graph.NodeID {
	p := d.P
	if p == 0 {
		p = 0.1
	}
	n := d.G.NumNodes()
	if k > n {
		k = n
	}
	dd := make([]float64, n)  // discounted degree
	tv := make([]int, n)      // number of selected in-neighbors
	chosen := make([]bool, n) //
	deg := make([]float64, n) // original out-degree
	for v := 0; v < n; v++ {
		deg[v] = float64(d.G.OutDegree(graph.NodeID(v)))
		dd[v] = deg[v]
	}
	seeds := make([]graph.NodeID, 0, k)
	for len(seeds) < k {
		best, bestVal := -1, -1.0
		for v := 0; v < n; v++ {
			if !chosen[v] && dd[v] > bestVal {
				best, bestVal = v, dd[v]
			}
		}
		if best < 0 {
			break
		}
		chosen[best] = true
		seeds = append(seeds, graph.NodeID(best))
		for _, a := range d.G.Out(graph.NodeID(best)) {
			v := int(a.To)
			if chosen[v] {
				continue
			}
			tv[v]++
			t := float64(tv[v])
			dd[v] = deg[v] - 2*t - (deg[v]-t)*t*p
		}
	}
	return seeds
}

// RIS is the reverse-influence-sampling baseline: it generates random
// reverse-reachable (RR) sets under the IC model and greedily picks seeds
// covering the most RR sets (max-coverage), the core of TIM/IMM.
type RIS struct {
	G *graph.Graph
	// Samples is the number of RR sets (defaults to 10·|V| when zero).
	Samples int
	// MaxDepth bounds the reverse BFS depth of each RR set (0 =
	// unbounded), matching a step-bounded IC evaluation such as the
	// paper's j=1 setting.
	MaxDepth int
	Seed     int64
}

// Name implements Solver.
func (r *RIS) Name() string { return "ris" }

// Select implements Solver.
func (r *RIS) Select(k int) []graph.NodeID {
	n := r.G.NumNodes()
	if k > n {
		k = n
	}
	samples := r.Samples
	if samples < 1 {
		samples = 10 * n
	}
	rng := rand.New(rand.NewSource(r.Seed))
	// Build RR sets: from a uniform target, walk reverse arcs, keeping each
	// with its influence probability.
	rrSets := make([][]graph.NodeID, samples)
	coverOf := make([][]int32, n) // node -> RR-set indices it appears in
	for i := 0; i < samples; i++ {
		target := graph.NodeID(rng.Intn(n))
		set := reverseReachable(r.G, target, r.MaxDepth, rng)
		rrSets[i] = set
		for _, v := range set {
			coverOf[v] = append(coverOf[v], int32(i))
		}
	}
	// Greedy max coverage over the RR sets.
	covered := make([]bool, samples)
	count := make([]int, n)
	for v := 0; v < n; v++ {
		count[v] = len(coverOf[v])
	}
	seeds := make([]graph.NodeID, 0, k)
	for len(seeds) < k {
		best, bestVal := -1, -1
		for v := 0; v < n; v++ {
			if count[v] > bestVal {
				best, bestVal = v, count[v]
			}
		}
		if best < 0 || bestVal == 0 {
			// All RR sets covered; fill remaining slots by degree for
			// determinism.
			for v := 0; v < n && len(seeds) < k; v++ {
				if count[v] >= 0 {
					dup := false
					for _, s := range seeds {
						if s == graph.NodeID(v) {
							dup = true
							break
						}
					}
					if !dup {
						seeds = append(seeds, graph.NodeID(v))
					}
				}
			}
			break
		}
		seeds = append(seeds, graph.NodeID(best))
		for _, si := range coverOf[best] {
			if covered[si] {
				continue
			}
			covered[si] = true
			for _, v := range rrSets[si] {
				count[v]--
			}
		}
		count[best] = -1 // never re-pick
	}
	return seeds
}

// reverseReachable samples one reverse-reachable set from target: a BFS
// over in-arcs keeping each arc with its influence probability, optionally
// depth-bounded (maxDepth 0 = unbounded).
func reverseReachable(g *graph.Graph, target graph.NodeID, maxDepth int, rng *rand.Rand) []graph.NodeID {
	seen := map[graph.NodeID]bool{target: true}
	frontier := []graph.NodeID{target}
	set := []graph.NodeID{target}
	for depth := 0; len(frontier) > 0; depth++ {
		if maxDepth > 0 && depth >= maxDepth {
			break
		}
		var next []graph.NodeID
		for _, u := range frontier {
			for _, a := range g.In(u) {
				if seen[a.To] {
					continue
				}
				if rng.Float64() < a.Weight {
					seen[a.To] = true
					next = append(next, a.To)
					set = append(set, a.To)
				}
			}
		}
		frontier = next
	}
	return set
}

// topKBy returns the k node IDs with the highest score, ties broken by ID
// for determinism.
func topKBy(n, k int, score func(graph.NodeID) float64) []graph.NodeID {
	if k > n {
		k = n
	}
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		si, sj := score(ids[i]), score(ids[j])
		if si != sj {
			return si > sj
		}
		return ids[i] < ids[j]
	})
	return ids[:k]
}

// TopKScores returns the k highest-scoring node IDs from a dense score
// vector (the seed-selection step after GNN inference).
func TopKScores(scores []float64, k int) []graph.NodeID {
	return topKBy(len(scores), k, func(v graph.NodeID) float64 { return scores[v] })
}

// CoverageRatio is the paper's metric |V_method| / |V_CELF| expressed in
// percent. Returns 0 when the reference spread is 0.
func CoverageRatio(methodSpread, celfSpread float64) float64 {
	if celfSpread <= 0 {
		return 0
	}
	return 100 * methodSpread / celfSpread
}

// ValidateSeeds checks a seed set for duplicates and range errors; solvers'
// outputs are passed through this in tests.
func ValidateSeeds(seeds []graph.NodeID, numNodes int) error {
	seen := make(map[graph.NodeID]bool, len(seeds))
	for _, s := range seeds {
		if int(s) < 0 || int(s) >= numNodes {
			return fmt.Errorf("im: seed %d out of range [0,%d)", s, numNodes)
		}
		if seen[s] {
			return fmt.Errorf("im: duplicate seed %d", s)
		}
		seen[s] = true
	}
	return nil
}
