// Package im implements the classical influence-maximization solvers the
// paper compares against: CELF lazy greedy (the ground truth with its
// (1−1/e) guarantee, §V-A), plain greedy, degree and degree-discount
// heuristics, and an RIS (reverse-influence-sampling) baseline. It also
// provides the coverage-ratio metric used throughout the evaluation.
package im

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"privim/internal/bitset"
	"privim/internal/diffusion"
	"privim/internal/graph"
	"privim/internal/obs"
	"privim/internal/parallel"
)

// Solver selects a seed set of size k for a diffusion model.
type Solver interface {
	// Select returns k seed nodes (fewer if the graph is smaller).
	Select(k int) []graph.NodeID
	// Name identifies the solver for reporting.
	Name() string
}

// CanceledError reports a seed selection stopped early because its
// context was canceled or its deadline expired. Seeds holds the seeds
// picked before the stop — a valid greedy prefix for CELF/Greedy (every
// pick was made against the full candidate pool), nil when the solver
// was still generating RR sets or initial gains. Unwrap yields the
// context error, so errors.Is(err, context.Canceled) works through it.
type CanceledError struct {
	// Solver is the solver name ("celf", "greedy", "ris", "imm").
	Solver string
	// Seeds is the partial greedy prefix selected before the stop.
	Seeds []graph.NodeID
	// K is the requested seed-set size.
	K int
	// Err is the underlying context error.
	Err error
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("im: %s select canceled after %d/%d seeds: %v", e.Solver, len(e.Seeds), e.K, e.Err)
}

// Unwrap returns the context error.
func (e *CanceledError) Unwrap() error { return e.Err }

// cancelSelect emits the obs.Canceled event for a stopped selection and
// wraps the partial progress in a *CanceledError.
func cancelSelect(o obs.Observer, clk *obs.CancelClock, solver, phase string, seeds []graph.NodeID, k int, err error) error {
	obs.Emit(o, obs.Canceled{
		Phase:   phase,
		Done:    len(seeds),
		Total:   k,
		Reason:  err.Error(),
		Latency: clk.Latency(),
	})
	return &CanceledError{Solver: solver, Seeds: seeds, K: k, Err: err}
}

// celfEntry is one lazy-greedy priority-queue element.
type celfEntry struct {
	node graph.NodeID
	gain float64
	// round is the greedy iteration at which gain was last evaluated;
	// a gain is exact only if round equals the current iteration.
	round int
}

type celfQueue []*celfEntry

func (q celfQueue) Len() int            { return len(q) }
func (q celfQueue) Less(i, j int) bool  { return q[i].gain > q[j].gain }
func (q celfQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *celfQueue) Push(x interface{}) { *q = append(*q, x.(*celfEntry)) }
func (q *celfQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// CELF is the cost-effective lazy-forward greedy solver. It exploits
// submodularity of the spread function: a node's marginal gain can only
// shrink as the seed set grows, so stale queue entries are upper bounds and
// most re-evaluations are skipped.
type CELF struct {
	Model diffusion.Model
	// Rounds Monte Carlo simulations per spread estimate.
	Rounds int
	// Seed drives the simulation RNG streams.
	Seed int64
	// Candidates restricts seed selection to these nodes (nil = all nodes).
	Candidates []graph.NodeID
	// numNodes is required when Candidates is nil.
	NumNodes int
	// Workers caps the pool for the initial-gain pass (0 = process
	// default). Results are identical at any width: every candidate's solo
	// spread comes from its own per-round rng streams.
	Workers int

	// Evaluations counts spread estimates performed by the last Select call
	// (exported for the lazy-evaluation efficiency tests).
	Evaluations int

	// Obs, when non-nil, receives one SeedSelected event per pick,
	// carrying the marginal gain and the cumulative number of spread
	// estimates lazy evaluation saved versus plain greedy.
	Obs obs.Observer
}

// Name implements Solver.
func (c *CELF) Name() string { return "celf" }

// Select implements Solver.
func (c *CELF) Select(k int) []graph.NodeID {
	seeds, _ := c.SelectContext(context.Background(), k)
	return seeds
}

// SelectContext is Select under a caller context: the solver's span tree
// roots under the context's span (or a fresh root on Obs) and inherits
// the context's trace ID, so solver time shows up in request traces.
//
// Cancellation is checked before every initial-gain chunk and every lazy
// pick, so a fired context stops the solver within one spread estimate.
// It returns a *CanceledError whose Seeds field is the valid greedy
// prefix picked so far; a selection that completes is bit-identical to
// the pre-context solver at any worker count.
func (c *CELF) SelectContext(ctx context.Context, k int) ([]graph.NodeID, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	span := obs.StartSpanCtx(ctx, c.Obs, "im.celf.select")
	defer span.End()
	o := c.Obs
	if o == nil {
		o = span.Observer()
	}
	clk := obs.WatchCancel(ctx)
	defer clk.Stop()
	cands := c.Candidates
	if cands == nil {
		cands = make([]graph.NodeID, c.NumNodes)
		for i := range cands {
			cands[i] = graph.NodeID(i)
		}
	}
	if k > len(cands) {
		k = len(cands)
	}
	if k <= 0 {
		return nil, nil
	}
	rounds := c.Rounds
	if rounds < 1 {
		rounds = 100
	}
	c.Evaluations = 0
	workers := parallel.Resolve(c.Workers)
	spread := func(seeds []graph.NodeID) float64 {
		c.Evaluations++
		// Serial (lazy) phase: let the estimator itself use the pool.
		return diffusion.EstimateWorkers(c.Model, seeds, rounds, c.Seed, workers)
	}

	// Initial pass: every candidate's solo spread is independent, so fan
	// the candidates out and keep each estimate serial (workers=1) to avoid
	// nesting. Estimates are per-round-seeded, so gains are identical to
	// the serial pass.
	gains := make([]float64, len(cands))
	if _, err := parallel.ForObservedCtx(ctx, span, "im.celf.initial", workers, len(cands), 4, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			gains[i] = diffusion.EstimateWorkers(c.Model, cands[i:i+1], rounds, c.Seed, 1)
		}
	}); err != nil {
		return nil, cancelSelect(o, clk, "celf", "select", nil, k, err)
	}
	c.Evaluations += len(cands)
	q := make(celfQueue, 0, len(cands))
	for i, v := range cands {
		q = append(q, &celfEntry{node: v, gain: gains[i], round: 0})
	}
	heap.Init(&q)

	seeds := make([]graph.NodeID, 0, k)
	evalBuf := make([]graph.NodeID, 0, k+1) // reused across stale re-evaluations
	base := 0.0
	for len(seeds) < k && q.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, cancelSelect(o, clk, "celf", "select", seeds, k, err)
		}
		top := heap.Pop(&q).(*celfEntry)
		if top.round == len(seeds) {
			// Gain is exact for the current seed set: take it.
			seeds = append(seeds, top.node)
			base += top.gain
			if c.Obs != nil {
				// Plain greedy evaluates every remaining candidate on each
				// pick: Σ_{j=0..picks-1}(n−j) estimates so far. The lazy
				// queue's saving is the gap to our actual evaluation count.
				picks := len(seeds)
				greedyEvals := picks*len(cands) - picks*(picks-1)/2
				obs.Emit(c.Obs, obs.SeedSelected{
					K:            len(seeds),
					Node:         int64(top.node),
					MarginalGain: top.gain,
					Evaluations:  c.Evaluations,
					LookupsSaved: greedyEvals - c.Evaluations,
				})
			}
			continue
		}
		// Stale: re-evaluate against the current seed set and push back.
		evalBuf = append(append(evalBuf[:0], seeds...), top.node)
		cur := spread(evalBuf)
		top.gain = cur - base
		top.round = len(seeds)
		heap.Push(&q, top)
	}
	return seeds, nil
}

// Greedy is the plain (non-lazy) greedy solver; kept as the correctness
// oracle for CELF in tests.
type Greedy struct {
	Model    diffusion.Model
	Rounds   int
	Seed     int64
	NumNodes int
	// Workers caps the pool for the per-round gain pass (0 = process
	// default); the argmax stays serial so ties break toward the lowest
	// node ID exactly as in the serial solver.
	Workers int

	// Evaluations counts spread estimates performed by the last Select
	// call (the baseline CELF's LookupsSaved is measured against).
	Evaluations int
	// Obs, when non-nil, receives one SeedSelected event per pick.
	Obs obs.Observer
}

// Name implements Solver.
func (g *Greedy) Name() string { return "greedy" }

// Select implements Solver.
func (g *Greedy) Select(k int) []graph.NodeID {
	seeds, _ := g.SelectContext(context.Background(), k)
	return seeds
}

// SelectContext is Select under a caller context (see CELF.SelectContext).
// Cancellation is checked at every gain-pass chunk and every pick; the
// *CanceledError carries the greedy prefix picked before the stop.
func (g *Greedy) SelectContext(ctx context.Context, k int) ([]graph.NodeID, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	span := obs.StartSpanCtx(ctx, g.Obs, "im.greedy.select")
	defer span.End()
	o := g.Obs
	if o == nil {
		o = span.Observer()
	}
	clk := obs.WatchCancel(ctx)
	defer clk.Stop()
	if k > g.NumNodes {
		k = g.NumNodes
	}
	rounds := g.Rounds
	if rounds < 1 {
		rounds = 100
	}
	g.Evaluations = 0
	workers := parallel.Resolve(g.Workers)
	chosen := make(map[graph.NodeID]bool, k)
	seeds := make([]graph.NodeID, 0, k)
	gains := make([]float64, g.NumNodes)
	// Gain pass: independent per candidate, fanned out with serial inner
	// estimates (no nesting). Each estimate is per-round-seeded, so gains
	// match the serial solver exactly. Each worker reuses one candidate
	// slice — seeds prefix plus a last slot that swaps per candidate —
	// instead of re-appending a fresh O(k) slice every evaluation.
	cands := make([][]graph.NodeID, workers)
	gainPass := func(w, lo, hi int) {
		cand := append(cands[w][:0], seeds...)
		cand = append(cand, 0)
		for v := lo; v < hi; v++ {
			if chosen[graph.NodeID(v)] {
				gains[v] = -1
				continue
			}
			cand[len(cand)-1] = graph.NodeID(v)
			gains[v] = diffusion.EstimateWorkers(g.Model, cand, rounds, g.Seed, 1)
		}
		cands[w] = cand
	}
	base := 0.0
	for len(seeds) < k {
		if _, err := parallel.ForObservedCtx(ctx, span, "im.greedy.gains", workers, g.NumNodes, 4, gainPass); err != nil {
			return nil, cancelSelect(o, clk, "greedy", "select", seeds, k, err)
		}
		g.Evaluations += g.NumNodes - len(seeds)
		// Serial argmax: first strict improvement wins, preserving the
		// lowest-node-ID tie-break of the serial loop.
		bestGain := -1.0
		var best graph.NodeID
		for v := 0; v < g.NumNodes; v++ {
			if !chosen[graph.NodeID(v)] && gains[v] > bestGain {
				bestGain = gains[v]
				best = graph.NodeID(v)
			}
		}
		chosen[best] = true
		seeds = append(seeds, best)
		if g.Obs != nil {
			obs.Emit(g.Obs, obs.SeedSelected{
				K:            len(seeds),
				Node:         int64(best),
				MarginalGain: bestGain - base,
				Evaluations:  g.Evaluations,
			})
		}
		base = bestGain
	}
	return seeds, nil
}

// Degree selects the k highest out-degree nodes — the classic cheap
// heuristic.
type Degree struct {
	G *graph.Graph
}

// Name implements Solver.
func (d *Degree) Name() string { return "degree" }

// Select implements Solver.
func (d *Degree) Select(k int) []graph.NodeID {
	return topKBy(d.G.NumNodes(), k, func(v graph.NodeID) float64 {
		return float64(d.G.OutDegree(v))
	})
}

// DegreeDiscount implements the degree-discount heuristic (Chen et al.):
// after picking a node, its neighbors' effective degrees are discounted to
// correct for overlapping coverage.
type DegreeDiscount struct {
	G *graph.Graph
	// P is the propagation probability used in the discount formula
	// (defaults to 0.1 when zero).
	P float64
}

// Name implements Solver.
func (d *DegreeDiscount) Name() string { return "degree-discount" }

// Select implements Solver.
func (d *DegreeDiscount) Select(k int) []graph.NodeID {
	p := d.P
	if p == 0 {
		p = 0.1
	}
	n := d.G.NumNodes()
	if k > n {
		k = n
	}
	dd := make([]float64, n)  // discounted degree
	tv := make([]int, n)      // number of selected in-neighbors
	chosen := make([]bool, n) //
	deg := make([]float64, n) // original out-degree
	for v := 0; v < n; v++ {
		deg[v] = float64(d.G.OutDegree(graph.NodeID(v)))
		dd[v] = deg[v]
	}
	seeds := make([]graph.NodeID, 0, k)
	for len(seeds) < k {
		best, bestVal := -1, -1.0
		for v := 0; v < n; v++ {
			if !chosen[v] && dd[v] > bestVal {
				best, bestVal = v, dd[v]
			}
		}
		if best < 0 {
			break
		}
		chosen[best] = true
		seeds = append(seeds, graph.NodeID(best))
		for _, a := range d.G.Out(graph.NodeID(best)) {
			v := int(a.To)
			if chosen[v] {
				continue
			}
			tv[v]++
			t := float64(tv[v])
			dd[v] = deg[v] - 2*t - (deg[v]-t)*t*p
		}
	}
	return seeds
}

// RIS is the reverse-influence-sampling baseline: it generates random
// reverse-reachable (RR) sets under the IC model and greedily picks seeds
// covering the most RR sets (max-coverage), the core of TIM/IMM.
type RIS struct {
	G *graph.Graph
	// Samples is the number of RR sets (defaults to 10·|V| when zero).
	Samples int
	// MaxDepth bounds the reverse BFS depth of each RR set (0 =
	// unbounded), matching a step-bounded IC evaluation such as the
	// paper's j=1 setting.
	MaxDepth int
	Seed     int64
	// Workers caps the pool for RR-set generation (0 = process default).
	// Each RR set draws from its own index-derived rng stream, so the
	// sampled sets are identical at any width.
	Workers int
	// Obs, when non-nil, receives one ParallelFor event per Select call.
	Obs obs.Observer

	// sel persists the RR-set arena, cover index, per-worker scratches,
	// and greedy buffers across Select calls (see DESIGN.md §"Scratch
	// arenas"), so repeated selections on one solver reuse all storage.
	sel *risState
}

// risState is the reusable storage behind RIS.Select.
type risState struct {
	arena   rrArena
	cover   coverIndex
	scratch *parallel.Scratch[*rrScratch]
	locs    []rrLoc
	covered []bool
	count   []int
}

// Name implements Solver.
func (r *RIS) Name() string { return "ris" }

// Select implements Solver.
func (r *RIS) Select(k int) []graph.NodeID {
	seeds, _ := r.SelectContext(context.Background(), k)
	return seeds
}

// SelectContext is Select under a caller context (see CELF.SelectContext).
// Cancellation is checked at every RR-generation chunk and every
// max-coverage pick; RR sets generated before the stop are discarded
// (the *CanceledError's Seeds is nil unless the pick loop had started).
func (r *RIS) SelectContext(ctx context.Context, k int) ([]graph.NodeID, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	span := obs.StartSpanCtx(ctx, r.Obs, "im.ris.select")
	defer span.End()
	o := r.Obs
	if o == nil {
		o = span.Observer()
	}
	clk := obs.WatchCancel(ctx)
	defer clk.Stop()
	n := r.G.NumNodes()
	if k > n {
		k = n
	}
	samples := r.Samples
	if samples < 1 {
		samples = 10 * n
	}
	// Build RR sets: from a uniform target, walk reverse arcs, keeping each
	// with its influence probability. Set i draws target and arcs from its
	// own stream, so generation parallelizes without changing the sample.
	if r.sel == nil {
		nodes := n
		r.sel = &risState{scratch: parallel.NewScratch(func() *rrScratch { return newRRScratch(nodes) })}
	}
	st := r.sel
	st.arena.reset()
	var genErr error
	st.locs, _, genErr = generateRRSets(ctx, r.G, &st.arena, samples, 0, r.MaxDepth, r.Seed, r.Workers, st.scratch, st.locs, span, "im.ris.rrsets")
	if genErr != nil {
		obs.Emit(o, obs.Canceled{
			Phase:   "rrgen",
			Done:    st.arena.numSets(),
			Total:   samples,
			Reason:  genErr.Error(),
			Latency: clk.Latency(),
		})
		return nil, &CanceledError{Solver: "ris", K: k, Err: genErr}
	}
	st.cover.build(&st.arena, n)
	// Greedy max coverage over the RR sets.
	if cap(st.covered) < samples {
		st.covered = make([]bool, samples)
	}
	covered := st.covered[:samples]
	for i := range covered {
		covered[i] = false
	}
	if cap(st.count) < n {
		st.count = make([]int, n)
	}
	count := st.count[:n]
	for v := 0; v < n; v++ {
		count[v] = len(st.cover.of(graph.NodeID(v)))
	}
	seeds := make([]graph.NodeID, 0, k)
	for len(seeds) < k {
		if err := ctx.Err(); err != nil {
			return nil, cancelSelect(o, clk, "ris", "select", seeds, k, err)
		}
		best, bestVal := -1, -1
		for v := 0; v < n; v++ {
			if count[v] > bestVal {
				best, bestVal = v, count[v]
			}
		}
		if best < 0 || bestVal == 0 {
			// All RR sets covered; fill remaining slots by degree for
			// determinism.
			for v := 0; v < n && len(seeds) < k; v++ {
				if count[v] >= 0 {
					dup := false
					for _, s := range seeds {
						if s == graph.NodeID(v) {
							dup = true
							break
						}
					}
					if !dup {
						seeds = append(seeds, graph.NodeID(v))
					}
				}
			}
			break
		}
		seeds = append(seeds, graph.NodeID(best))
		for _, si := range st.cover.of(graph.NodeID(best)) {
			if covered[si] {
				continue
			}
			covered[si] = true
			for _, v := range st.arena.set(int(si)) {
				count[v]--
			}
		}
		count[best] = -1 // never re-pick
	}
	return seeds, nil
}

// rrArena stores RR sets back-to-back in one flat backing slice: set i is
// nodes[offs[i]:offs[i+1]]. Replacing per-set slices with one arena cuts
// the sampler's allocation count from O(samples) to O(1) amortized and
// keeps the sets cache-contiguous for the max-coverage sweeps.
type rrArena struct {
	nodes []graph.NodeID
	offs  []uint32 // offs[0] == 0 once any set exists; len == numSets+1
}

// numSets returns the number of stored sets.
func (a *rrArena) numSets() int {
	if len(a.offs) == 0 {
		return 0
	}
	return len(a.offs) - 1
}

// set returns set i as a view into the arena; callers must not retain it
// across a reset.
func (a *rrArena) set(i int) []graph.NodeID { return a.nodes[a.offs[i]:a.offs[i+1]] }

// appendSet copies s to the end of the arena as the next set.
func (a *rrArena) appendSet(s []graph.NodeID) {
	if len(a.offs) == 0 {
		a.offs = append(a.offs, 0)
	}
	a.nodes = append(a.nodes, s...)
	a.offs = append(a.offs, uint32(len(a.nodes)))
}

// reset empties the arena, keeping capacity.
func (a *rrArena) reset() { a.nodes, a.offs = a.nodes[:0], a.offs[:0] }

// coverIndex maps node → indices of the RR sets containing it, in CSR
// form: node v's set IDs are ids[offs[v]:offs[v+1]], ascending (sets are
// scanned in index order), matching the historical append-built lists
// exactly. Rebuilt via count → prefix-sum → fill passes over the arena,
// reusing its buffers across builds.
type coverIndex struct {
	offs []uint32
	ids  []int32
	cur  []uint32 // fill cursors
}

func (c *coverIndex) build(a *rrArena, n int) {
	if cap(c.offs) < n+1 {
		c.offs = make([]uint32, n+1)
	}
	c.offs = c.offs[:n+1]
	for i := range c.offs {
		c.offs[i] = 0
	}
	for _, v := range a.nodes {
		c.offs[v+1]++
	}
	for v := 0; v < n; v++ {
		c.offs[v+1] += c.offs[v]
	}
	if cap(c.cur) < n {
		c.cur = make([]uint32, n)
	}
	c.cur = c.cur[:n]
	copy(c.cur, c.offs[:n])
	if cap(c.ids) < len(a.nodes) {
		c.ids = make([]int32, len(a.nodes))
	}
	c.ids = c.ids[:len(a.nodes)]
	for i, m := 0, a.numSets(); i < m; i++ {
		for _, v := range a.set(i) {
			c.ids[c.cur[v]] = int32(i)
			c.cur[v]++
		}
	}
}

// of returns the covering set indices of v; empty until build has run.
func (c *coverIndex) of(v graph.NodeID) []int32 {
	if len(c.offs) == 0 {
		return nil
	}
	return c.ids[c.offs[v]:c.offs[v+1]]
}

// rrScratch is the reusable per-worker state of the RR-set sampler: a
// dense visited set, frontier buffers, and a worker-private arena that
// draws append into (compacted into the shared arena after the fan-out),
// so steady-state generation performs zero heap work.
type rrScratch struct {
	seen           *bitset.Set
	frontier, next []graph.NodeID
	arena          []graph.NodeID // this worker's draws, pending compaction
	rng            *parallel.StreamRNG
}

func newRRScratch(n int) *rrScratch {
	return &rrScratch{seen: bitset.New(n), rng: parallel.NewStreamRNG()}
}

// rrLoc records where a set landed during the parallel fan-out: worker
// w's private arena, at [start, end). Indexed by global set index, it
// lets the compaction pass stitch the shared arena together in set-index
// order no matter which worker drew which set.
type rrLoc struct {
	worker     int32
	start, end uint32
}

// rrGenState carries one generateRRSets call's parameters into a worker
// body that is built once and pooled, so steady-state batches do not pay
// a closure allocation per call (same pattern as diffusion's estState).
type rrGenState struct {
	g        *graph.Graph
	n        int
	base     int
	maxDepth int
	seed     int64
	scratch  *parallel.Scratch[*rrScratch]
	locs     []rrLoc
	body     func(w, lo, hi int)
}

var rrGenPool = sync.Pool{New: func() any {
	gs := &rrGenState{}
	gs.body = func(w, lo, hi int) {
		sc := gs.scratch.Get(w)
		for i := lo; i < hi; i++ {
			// Repositioning the per-worker RNG is stream-identical to a
			// fresh parallel.Stream(seed, base+i), minus the allocation.
			sc.rng.SetStream(gs.seed, uint64(gs.base+i))
			target := graph.NodeID(sc.rng.Intn(gs.n))
			s, e := reverseReachable(gs.g, target, gs.maxDepth, sc.rng.Rand, sc)
			gs.locs[i] = rrLoc{worker: int32(w), start: s, end: e}
		}
	}
	return gs
}}

// generateRRSets appends count sets to arena, set base+j drawn from the
// stream derived from (seed, base+j) — base offsets the stream index so
// incremental callers (IMM) keep set identities stable across batches. It
// fans the draws out on the worker pool with one scratch per worker:
// each worker appends into its private arena and records locations in
// locs (disjoint writes), then a sequential compaction pass copies sets
// into the shared arena in index order, so the result is bit-identical
// at any worker count. Returns the (possibly regrown) locs buffer and
// the pool stats; a non-nil parent span gets a child span and a
// ParallelFor event under the given site name.
//
// A non-nil ctx is checked at every draw-chunk boundary; on
// cancellation the partial draws are discarded (worker arenas cleared,
// nothing compacted into arena) and the context error is returned.
func generateRRSets(ctx context.Context, g *graph.Graph, arena *rrArena, count, base, maxDepth int, seed int64, workers int, scratch *parallel.Scratch[*rrScratch], locs []rrLoc, parent *obs.Span, site string) ([]rrLoc, parallel.Stats, error) {
	n := g.NumNodes()
	workers = parallel.Resolve(workers)
	if workers > count {
		workers = count
	}
	if workers < 1 {
		workers = 1
	}
	scratch.Grow(workers)
	if cap(locs) < count {
		locs = make([]rrLoc, count)
	}
	locs = locs[:count]
	gs := rrGenPool.Get().(*rrGenState)
	gs.g, gs.n, gs.base, gs.maxDepth, gs.seed = g, n, base, maxDepth, seed
	gs.scratch, gs.locs = scratch, locs
	st, err := parallel.ForObservedCtx(ctx, parent, site, workers, count, 16, gs.body)
	gs.g, gs.scratch, gs.locs = nil, nil, nil // don't pin caller data in the pool
	rrGenPool.Put(gs)
	if err != nil {
		// Partial draws are unusable (locs has holes); drop them so the
		// scratches are clean for the next call.
		scratch.Each(func(_ int, sc *rrScratch) { sc.arena = sc.arena[:0] })
		return locs, st, err
	}
	for i := range locs {
		sc := scratch.Get(int(locs[i].worker))
		arena.appendSet(sc.arena[locs[i].start:locs[i].end])
	}
	scratch.Each(func(_ int, sc *rrScratch) { sc.arena = sc.arena[:0] })
	return locs, st, nil
}

// reverseReachable samples one reverse-reachable set from target: a BFS
// over in-arcs keeping each arc with its influence probability, optionally
// depth-bounded (maxDepth 0 = unbounded). The set is appended to sc.arena
// and returned as its [start, end) offsets; sc is left clean (seen empty)
// for the next draw.
func reverseReachable(g *graph.Graph, target graph.NodeID, maxDepth int, rng *rand.Rand, sc *rrScratch) (start, end uint32) {
	start = uint32(len(sc.arena))
	sc.seen.Add(int(target))
	sc.arena = append(sc.arena, target)
	frontier := append(sc.frontier[:0], target)
	next := sc.next[:0]
	for depth := 0; len(frontier) > 0; depth++ {
		if maxDepth > 0 && depth >= maxDepth {
			break
		}
		next = next[:0]
		for _, u := range frontier {
			for _, a := range g.In(u) {
				if sc.seen.Contains(int(a.To)) {
					continue
				}
				if rng.Float64() < a.Weight {
					sc.seen.Add(int(a.To))
					next = append(next, a.To)
					sc.arena = append(sc.arena, a.To)
				}
			}
		}
		frontier, next = next, frontier
	}
	sc.frontier, sc.next = frontier, next
	// Reset only the touched bits: O(|set|), not O(n).
	for _, v := range sc.arena[start:] {
		sc.seen.Remove(int(v))
	}
	return start, uint32(len(sc.arena))
}

// topKBy returns the k node IDs with the highest score, ties broken by ID
// for determinism.
func topKBy(n, k int, score func(graph.NodeID) float64) []graph.NodeID {
	if k > n {
		k = n
	}
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		si, sj := score(ids[i]), score(ids[j])
		if si != sj {
			return si > sj
		}
		return ids[i] < ids[j]
	})
	return ids[:k]
}

// TopKScores returns the k highest-scoring node IDs from a dense score
// vector (the seed-selection step after GNN inference).
func TopKScores(scores []float64, k int) []graph.NodeID {
	return topKBy(len(scores), k, func(v graph.NodeID) float64 { return scores[v] })
}

// CoverageRatio is the paper's metric |V_method| / |V_CELF| expressed in
// percent. Returns 0 when the reference spread is 0.
func CoverageRatio(methodSpread, celfSpread float64) float64 {
	if celfSpread <= 0 {
		return 0
	}
	return 100 * methodSpread / celfSpread
}

// ValidateSeeds checks a seed set for duplicates and range errors; solvers'
// outputs are passed through this in tests.
func ValidateSeeds(seeds []graph.NodeID, numNodes int) error {
	seen := make(map[graph.NodeID]bool, len(seeds))
	for _, s := range seeds {
		if int(s) < 0 || int(s) >= numNodes {
			return fmt.Errorf("im: seed %d out of range [0,%d)", s, numNodes)
		}
		if seen[s] {
			return fmt.Errorf("im: duplicate seed %d", s)
		}
		seen[s] = true
	}
	return nil
}
