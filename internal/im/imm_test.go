package im

import (
	"math"
	"math/rand"
	"testing"

	"privim/internal/diffusion"
	"privim/internal/graph"
)

func TestIMMPicksBothHubs(t *testing.T) {
	g := twoStars()
	s := &IMM{G: g, Seed: 1}
	seeds := s.Select(2)
	if err := ValidateSeeds(seeds, g.NumNodes()); err != nil {
		t.Fatal(err)
	}
	if !seedsContain(seeds, 0, 6) {
		t.Fatalf("IMM seeds = %v, want hubs {0, 6}", seeds)
	}
}

func TestIMMEdgeCases(t *testing.T) {
	g := twoStars()
	s := &IMM{G: g, Seed: 1}
	if got := s.Select(0); got != nil {
		t.Fatalf("Select(0) = %v", got)
	}
	if got := s.Select(100); len(got) != g.NumNodes() {
		t.Fatalf("Select(100) = %d seeds, want %d", len(got), g.NumNodes())
	}
	// Edgeless graph must terminate and fill deterministically.
	empty := graph.NewWithNodes(5, true)
	se := &IMM{G: empty, Seed: 1, MaxSamples: 100}
	got := se.Select(3)
	if len(got) != 3 {
		t.Fatalf("edgeless Select = %v", got)
	}
	if err := ValidateSeeds(got, 5); err != nil {
		t.Fatal(err)
	}
}

func TestIMMDefaultsApplied(t *testing.T) {
	// Out-of-range epsilon/ell fall back to defaults and still work.
	g := twoStars()
	s := &IMM{G: g, Epsilon: 5, Ell: -2, Seed: 1}
	seeds := s.Select(2)
	if !seedsContain(seeds, 0, 6) {
		t.Fatalf("IMM with defaulted params seeds = %v", seeds)
	}
}

func TestIMMComparableToCELF(t *testing.T) {
	// On a random graph IMM's spread should land close to CELF's (within
	// 15% — both carry approximation guarantees).
	rng := rand.New(rand.NewSource(8))
	g := graph.NewWithNodes(60, true)
	for i := 0; i < 240; i++ {
		u, v := graph.NodeID(rng.Intn(60)), graph.NodeID(rng.Intn(60))
		if u != v {
			g.AddEdge(u, v, 0.3)
		}
	}
	model := &diffusion.IC{G: g}
	celf := &CELF{Model: model, Rounds: 200, Seed: 3, NumNodes: 60}
	imm := &IMM{G: g, Seed: 3}
	celfSpread := diffusion.Estimate(model, celf.Select(5), 2000, 9)
	immSpread := diffusion.Estimate(model, imm.Select(5), 2000, 9)
	if immSpread < 0.85*celfSpread {
		t.Fatalf("IMM spread %v too far below CELF %v", immSpread, celfSpread)
	}
}

func TestLogChooseF(t *testing.T) {
	if got := math.Exp(logChooseF(10, 3)); math.Abs(got-120) > 1e-9 {
		t.Fatalf("C(10,3) = %v", got)
	}
	if !math.IsInf(logChooseF(3, 5), -1) {
		t.Fatal("C(3,5) should be -Inf")
	}
}

func TestRRIndexMaxCoverEmpty(t *testing.T) {
	ix := newRRIndex(3)
	seeds, frac := ix.maxCover(3, 2)
	if frac != 0 || len(seeds) != 2 {
		t.Fatalf("empty index maxCover = %v, %v", seeds, frac)
	}
}
