package im

import (
	"math/rand"
	"testing"

	"privim/internal/dataset"
	"privim/internal/diffusion"
	"privim/internal/graph"
)

// The paper's Example 2: with node-level sensitivity Δf = |V|, the Laplace
// noise at ε=1 swamps real gains (which top out at the graph size), so
// noisy greedy is no better than random — while the same greedy with an
// essentially-infinite budget recovers the hubs.
func TestNoisyGreedyExample2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := dataset.BarabasiAlbert(200, 3, rng)
	g.SetUniformWeights(1)
	model := &diffusion.IC{G: g, MaxSteps: 1}
	const k = 5

	celf := &CELF{Model: model, Rounds: 1, Seed: 1, NumNodes: g.NumNodes()}
	ref := diffusion.Estimate(model, celf.Select(k), 1, 2)

	// Essentially non-private budget: noise scale ~0, recovers greedy.
	exact := &NoisyGreedy{Model: model, Epsilon: 1e9, Rounds: 1, Seed: 1, NumNodes: g.NumNodes()}
	exactSpread := diffusion.Estimate(model, exact.Select(k), 1, 2)
	if exactSpread < 0.95*ref {
		t.Fatalf("eps=1e9 noisy greedy spread %v should match CELF %v", exactSpread, ref)
	}

	// ε=1: selection should collapse toward random. Average a few trials.
	total := 0.0
	const trials = 5
	for i := int64(0); i < trials; i++ {
		ng := &NoisyGreedy{Model: model, Epsilon: 1, Rounds: 1, Seed: i, NumNodes: g.NumNodes()}
		total += diffusion.Estimate(model, ng.Select(k), 1, 2)
	}
	noisySpread := total / trials
	if noisySpread > 0.6*ref {
		t.Fatalf("eps=1 noisy greedy spread %v suspiciously close to CELF %v — Example 2 says it must collapse", noisySpread, ref)
	}
}

func TestNoisyGreedyEdgeCases(t *testing.T) {
	g := graph.NewWithNodes(4, true)
	g.AddEdge(0, 1, 1)
	ngr := &NoisyGreedy{Model: &diffusion.IC{G: g}, Epsilon: 1, NumNodes: 4, Seed: 1}
	if got := ngr.Select(0); got != nil {
		t.Fatalf("Select(0) = %v", got)
	}
	seeds := ngr.Select(10)
	if len(seeds) != 4 {
		t.Fatalf("Select(10) = %d seeds, want 4", len(seeds))
	}
	if err := ValidateSeeds(seeds, 4); err != nil {
		t.Fatal(err)
	}
	if ngr.Name() == "" {
		t.Fatal("empty name")
	}
}
