package im

import (
	"math"
	"math/rand"
	"testing"

	"privim/internal/dataset"
	"privim/internal/diffusion"
	"privim/internal/graph"
)

func TestStaticGreedyPicksBothHubs(t *testing.T) {
	g := twoStars()
	s := &StaticGreedy{G: g, Worlds: 10, Seed: 1}
	seeds := s.Select(2)
	if err := ValidateSeeds(seeds, g.NumNodes()); err != nil {
		t.Fatal(err)
	}
	if !seedsContain(seeds, 0, 6) {
		t.Fatalf("static greedy seeds = %v, want hubs", seeds)
	}
}

func TestStaticGreedyDeterministicWorld(t *testing.T) {
	// With w=1 every world equals the full graph, so one world suffices
	// and the result must match deterministic CELF exactly in spread.
	g := twoStars()
	sg := &StaticGreedy{G: g, Worlds: 1, Seed: 2}
	celf := &CELF{Model: &diffusion.IC{G: g}, Rounds: 1, Seed: 2, NumNodes: g.NumNodes()}
	model := &diffusion.IC{G: g}
	a := diffusion.Estimate(model, sg.Select(2), 1, 3)
	b := diffusion.Estimate(model, celf.Select(2), 1, 3)
	if a != b {
		t.Fatalf("static greedy spread %v != CELF spread %v", a, b)
	}
}

func TestStaticGreedyHandlesCycles(t *testing.T) {
	// A strongly connected cycle: one seed reaches everything.
	g := graph.NewWithNodes(6, true)
	for v := 0; v < 6; v++ {
		g.AddEdge(graph.NodeID(v), graph.NodeID((v+1)%6), 1)
	}
	s := &StaticGreedy{G: g, Worlds: 3, Seed: 4}
	seeds := s.Select(1)
	if got := s.ExpectedSpread(seeds); got != 6 {
		t.Fatalf("cycle spread = %v, want 6", got)
	}
}

func TestStaticGreedyMatchesMonteCarloSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := dataset.BarabasiAlbert(120, 3, rng)
	g.SetUniformWeights(0.2)
	s := &StaticGreedy{G: g, Worlds: 400, Seed: 6}
	seeds := s.Select(5)
	snapshot := s.ExpectedSpread(seeds)
	mc := diffusion.Estimate(&diffusion.IC{G: g}, seeds, 4000, 7)
	if math.Abs(snapshot-mc) > 0.15*mc {
		t.Fatalf("snapshot spread %v vs Monte Carlo %v differ beyond 15%%", snapshot, mc)
	}
}

func TestStaticGreedyCompetitiveWithCELF(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := dataset.BarabasiAlbert(150, 3, rng)
	g.SetUniformWeights(0.15)
	model := &diffusion.IC{G: g}
	sg := &StaticGreedy{G: g, Worlds: 200, Seed: 9}
	celf := &CELF{Model: model, Rounds: 100, Seed: 9, NumNodes: g.NumNodes()}
	sgSpread := diffusion.Estimate(model, sg.Select(5), 3000, 10)
	celfSpread := diffusion.Estimate(model, celf.Select(5), 3000, 10)
	if sgSpread < 0.9*celfSpread {
		t.Fatalf("static greedy spread %v too far below CELF %v", sgSpread, celfSpread)
	}
}

func TestStaticGreedyEdgeCases(t *testing.T) {
	g := twoStars()
	s := &StaticGreedy{G: g, Seed: 1, Worlds: 2}
	if got := s.Select(0); got != nil {
		t.Fatalf("Select(0) = %v", got)
	}
	if got := s.Select(100); len(got) != g.NumNodes() {
		t.Fatalf("Select(100) = %d seeds", len(got))
	}
	empty := &StaticGreedy{G: graph.New(true), Worlds: 2, Seed: 1}
	if got := empty.Select(3); got != nil {
		t.Fatalf("empty graph Select = %v", got)
	}
	if s.Name() == "" {
		t.Fatal("empty name")
	}
}
