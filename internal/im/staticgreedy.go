package im

import (
	"container/heap"
	"math/rand"

	"privim/internal/bitset"
	"privim/internal/graph"
)

// StaticGreedy implements the snapshot approach to influence maximization
// (Cheng et al.'s StaticGreedy): sample R live-edge worlds once, compute
// exact reachability inside each world via SCC condensation, then run
// lazy greedy on the summed coverage. Because every candidate is evaluated
// against the *same* worlds (common random numbers), marginal-gain
// comparisons have far lower variance than re-simulating per evaluation —
// the estimator CELF uses.
//
// Memory is O(R·C·n/8) bits for the per-component reachability sets (C =
// number of SCCs per world), which is comfortable up to a few thousand
// nodes at R ≈ 100.
type StaticGreedy struct {
	G *graph.Graph
	// Worlds is R, the number of live-edge snapshots (default 100).
	Worlds int
	// MaxDepth bounds reachability depth within each world (0 =
	// unbounded); set it to the evaluation's step bound for step-limited
	// IC objectives. Bounded worlds skip the SCC machinery and BFS
	// directly.
	MaxDepth int
	Seed     int64
}

// Name implements Solver.
func (s *StaticGreedy) Name() string { return "static-greedy" }

// world holds one snapshot's reachability structure.
type sgWorld struct {
	comp  []int32       // node -> component
	reach []*bitset.Set // component -> reachable node set
}

// buildWorld samples a live-edge subgraph and computes per-component
// reachability by DP over the condensation's reverse topological order,
// or per-node depth-bounded BFS when maxDepth > 0.
func buildWorld(g *graph.Graph, maxDepth int, rng *rand.Rand) sgWorld {
	n := g.NumNodes()
	live := graph.NewWithNodes(n, true)
	for v := 0; v < n; v++ {
		for _, a := range g.Out(graph.NodeID(v)) {
			if rng.Float64() < a.Weight {
				live.AddEdge(graph.NodeID(v), a.To, 1)
			}
		}
	}
	if maxDepth > 0 {
		// Depth-bounded: each node is its own "component" with a BFS-ball
		// reach set.
		comp := make([]int32, n)
		reach := make([]*bitset.Set, n)
		for v := 0; v < n; v++ {
			comp[v] = int32(v)
			r := bitset.New(n)
			for _, u := range graph.BFSOrderDepth(live, graph.NodeID(v), maxDepth) {
				r.Add(int(u))
			}
			reach[v] = r
		}
		return sgWorld{comp: comp, reach: reach}
	}
	dag, comp, comps := graph.Condensation(live)
	reach := make([]*bitset.Set, len(comps))
	// Components are emitted sinks-first and dag arcs point to lower
	// indices, so a single forward pass sees dependencies before
	// dependents.
	for ci := 0; ci < len(comps); ci++ {
		r := bitset.New(n)
		for _, v := range comps[ci] {
			r.Add(int(v))
		}
		for _, a := range dag.Out(graph.NodeID(ci)) {
			r.Or(reach[a.To])
		}
		reach[ci] = r
	}
	return sgWorld{comp: comp, reach: reach}
}

// Select implements Solver with CELF-style lazy evaluation over the
// snapshot coverage function (which is exactly submodular, so laziness is
// lossless here).
func (s *StaticGreedy) Select(k int) []graph.NodeID {
	n := s.G.NumNodes()
	if k > n {
		k = n
	}
	if k <= 0 || n == 0 {
		return nil
	}
	worlds := s.Worlds
	if worlds < 1 {
		worlds = 100
	}
	rng := rand.New(rand.NewSource(s.Seed))
	ws := make([]sgWorld, worlds)
	for r := range ws {
		ws[r] = buildWorld(s.G, s.MaxDepth, rng)
	}
	covered := make([]*bitset.Set, worlds)
	for r := range covered {
		covered[r] = bitset.New(n)
	}
	coveredCount := make([]int, worlds)

	gain := func(v graph.NodeID) int {
		total := 0
		for r := range ws {
			w := &ws[r]
			total += covered[r].CountOrWith(w.reach[w.comp[v]]) - coveredCount[r]
		}
		return total
	}

	q := make(celfQueue, 0, n)
	for v := 0; v < n; v++ {
		q = append(q, &celfEntry{node: graph.NodeID(v), gain: float64(gain(graph.NodeID(v))), round: 0})
	}
	heap.Init(&q)

	seeds := make([]graph.NodeID, 0, k)
	for len(seeds) < k && q.Len() > 0 {
		top := heap.Pop(&q).(*celfEntry)
		if top.round != len(seeds) {
			top.gain = float64(gain(top.node))
			top.round = len(seeds)
			heap.Push(&q, top)
			continue
		}
		seeds = append(seeds, top.node)
		for r := range ws {
			w := &ws[r]
			covered[r].Or(w.reach[w.comp[top.node]])
			coveredCount[r] = covered[r].Count()
		}
	}
	return seeds
}

// ExpectedSpread returns the snapshot estimate of a seed set's spread:
// the mean covered count across freshly sampled worlds. Exposed so tests
// can compare against Monte Carlo simulation.
func (s *StaticGreedy) ExpectedSpread(seeds []graph.NodeID) float64 {
	worlds := s.Worlds
	if worlds < 1 {
		worlds = 100
	}
	rng := rand.New(rand.NewSource(s.Seed + 1))
	total := 0
	cover := bitset.New(s.G.NumNodes())
	for r := 0; r < worlds; r++ {
		w := buildWorld(s.G, s.MaxDepth, rng)
		cover.Clear()
		for _, v := range seeds {
			cover.Or(w.reach[w.comp[v]])
		}
		total += cover.Count()
	}
	return float64(total) / float64(worlds)
}
