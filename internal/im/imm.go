package im

import (
	"context"
	"math"

	"privim/internal/graph"
	"privim/internal/obs"
	"privim/internal/parallel"
)

// IMM implements Influence Maximization via Martingales (Tang, Shi, Xiao —
// SIGMOD 2015), the sampling-based state of the art the paper cites as
// [28]. It estimates a lower bound on the optimal spread with a
// geometric-search sampling phase, derives the required number of
// reverse-reachable sets for a (1 − 1/e − ε) approximation with
// probability 1 − 1/n^ℓ, and greedily max-covers those sets.
type IMM struct {
	G *graph.Graph
	// Epsilon is the approximation slack ε (default 0.3).
	Epsilon float64
	// Ell is the failure-probability exponent ℓ (default 1).
	Ell float64
	// MaxDepth bounds RR-set depth (0 = unbounded); set it to the
	// evaluation's step bound for step-limited IC objectives.
	MaxDepth int
	Seed     int64

	// MaxSamples caps RR-set generation as a safety valve for tiny or
	// degenerate graphs (default 200·|V|).
	MaxSamples int

	// Workers caps the pool for RR-set generation (0 = process default).
	// Set i always draws from the stream derived from (Seed, i), so both
	// phases produce identical sets at any width.
	Workers int
	// Obs, when non-nil, receives one ParallelFor event per generation
	// batch.
	Obs obs.Observer
}

// Name implements Solver.
func (s *IMM) Name() string { return "imm" }

// rrIndex accumulates reverse-reachable sets in a flat arena with a CSR
// coverage index, plus the per-worker generation scratches and greedy
// buffers, all reused across the incremental batches of IMM's two phases.
type rrIndex struct {
	n       int
	arena   rrArena
	cover   coverIndex
	scratch *parallel.Scratch[*rrScratch]
	locs    []rrLoc
	covered []bool
	count   []int
}

func newRRIndex(n int) *rrIndex {
	return &rrIndex{
		n:       n,
		scratch: parallel.NewScratch(func() *rrScratch { return newRRScratch(n) }),
	}
}

func (ix *rrIndex) generate(ctx context.Context, g *graph.Graph, count, maxDepth int, seed int64, workers int, parent *obs.Span) error {
	base := ix.arena.numSets()
	var err error
	ix.locs, _, err = generateRRSets(ctx, g, &ix.arena, count, base, maxDepth, seed, workers, ix.scratch, ix.locs, parent, "im.imm.rrsets")
	if err != nil {
		return err
	}
	ix.cover.build(&ix.arena, ix.n)
	return nil
}

// maxCover greedily picks k nodes covering the most RR sets and returns
// them with the covered fraction.
func (ix *rrIndex) maxCover(n, k int) ([]graph.NodeID, float64) {
	numSets := ix.arena.numSets()
	if cap(ix.covered) < numSets {
		ix.covered = make([]bool, numSets)
	}
	covered := ix.covered[:numSets]
	for i := range covered {
		covered[i] = false
	}
	if cap(ix.count) < n {
		ix.count = make([]int, n)
	}
	count := ix.count[:n]
	for v := 0; v < n; v++ {
		count[v] = len(ix.cover.of(graph.NodeID(v)))
	}
	seeds := make([]graph.NodeID, 0, k)
	totalCovered := 0
	for len(seeds) < k && len(seeds) < n {
		best, bestVal := -1, 0
		for v := 0; v < n; v++ {
			if count[v] > bestVal {
				best, bestVal = v, count[v]
			}
		}
		if best < 0 || bestVal == 0 {
			// Everything covered: fill arbitrarily but deterministically.
			for v := 0; v < n && len(seeds) < k; v++ {
				if count[v] >= 0 {
					seeds = append(seeds, graph.NodeID(v))
					count[v] = -1
				}
			}
			break
		}
		seeds = append(seeds, graph.NodeID(best))
		for _, si := range ix.cover.of(graph.NodeID(best)) {
			if !covered[si] {
				covered[si] = true
				totalCovered++
				for _, v := range ix.arena.set(int(si)) {
					if count[v] > 0 {
						count[v]--
					}
				}
			}
		}
		count[best] = -1
	}
	if numSets == 0 {
		return seeds, 0
	}
	return seeds, float64(totalCovered) / float64(numSets)
}

// Select implements Solver following IMM's two phases.
func (s *IMM) Select(k int) []graph.NodeID {
	seeds, _ := s.SelectContext(context.Background(), k)
	return seeds
}

// SelectContext is Select under a caller context (see CELF.SelectContext).
// Cancellation is checked at every RR-generation chunk and between the
// geometric-search iterations of the sampling phase.
func (s *IMM) SelectContext(ctx context.Context, k int) ([]graph.NodeID, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	span := obs.StartSpanCtx(ctx, s.Obs, "im.imm.select")
	defer span.End()
	o := s.Obs
	if o == nil {
		o = span.Observer()
	}
	clk := obs.WatchCancel(ctx)
	defer clk.Stop()
	n := s.G.NumNodes()
	if n == 0 || k <= 0 {
		return nil, nil
	}
	if k > n {
		k = n
	}
	eps := s.Epsilon
	if eps <= 0 || eps >= 1 {
		eps = 0.3
	}
	ell := s.Ell
	if ell <= 0 {
		ell = 1
	}
	maxSamples := s.MaxSamples
	if maxSamples <= 0 {
		maxSamples = 200 * n
	}
	fn := float64(n)
	logChooseNK := logChooseF(n, k)

	// Phase 1 (sampling): geometric search for a lower bound on OPT.
	epsPrime := math.Sqrt2 * eps
	lambdaPrime := (2 + 2*epsPrime/3) *
		(logChooseNK + ell*math.Log(fn) + math.Log(math.Log2(fn))) * fn / (epsPrime * epsPrime)
	ix := newRRIndex(n)
	lb := 1.0
	maxI := int(math.Log2(fn))
	if maxI < 1 {
		maxI = 1
	}
	for i := 1; i < maxI; i++ {
		if err := ctx.Err(); err != nil {
			return nil, cancelSelect(o, clk, "imm", "select", nil, k, err)
		}
		x := fn / math.Pow(2, float64(i))
		thetaI := int(lambdaPrime / x)
		if thetaI > maxSamples {
			thetaI = maxSamples
		}
		if need := thetaI - ix.arena.numSets(); need > 0 {
			if err := ix.generate(ctx, s.G, need, s.MaxDepth, s.Seed, s.Workers, span); err != nil {
				return nil, cancelSelect(o, clk, "imm", "rrgen", nil, k, err)
			}
		}
		_, frac := ix.maxCover(n, k)
		if fn*frac >= (1+epsPrime)*x {
			lb = fn * frac / (1 + epsPrime)
			break
		}
		if ix.arena.numSets() >= maxSamples {
			break
		}
	}

	// Phase 2: θ = λ*/LB samples for the final guarantee.
	alpha := math.Sqrt(ell*math.Log(fn) + math.Log(2))
	beta := math.Sqrt((1 - 1/math.E) * (logChooseNK + ell*math.Log(fn) + math.Log(2)))
	lambdaStar := 2 * fn * math.Pow((1-1/math.E)*alpha+beta, 2) / (eps * eps)
	theta := int(lambdaStar / lb)
	if theta > maxSamples {
		theta = maxSamples
	}
	if need := theta - ix.arena.numSets(); need > 0 {
		if err := ix.generate(ctx, s.G, need, s.MaxDepth, s.Seed, s.Workers, span); err != nil {
			return nil, cancelSelect(o, clk, "imm", "rrgen", nil, k, err)
		}
	}
	seeds, _ := ix.maxCover(n, k)
	return seeds, nil
}

// logChooseF returns log C(n, k) via log-gamma (float inputs for the IMM
// formulas).
func logChooseF(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
