package im

import (
	"math/rand"

	"privim/internal/diffusion"
	"privim/internal/dp"
	"privim/internal/graph"
)

// NoisyGreedy is the strawman the paper's Example 2 rules out: classical
// greedy seed selection made "private" by adding Laplace noise to every
// marginal gain. Under node-level DP the sensitivity of a marginal gain is
// the whole network size (removing one node can change a gain by Θ(|V|)),
// so the noise scale |V|/ε dwarfs actual gains (10⁰–10³) and selection
// degenerates to uniform randomness. Implemented faithfully so the
// framework's motivation is reproducible as an experiment.
type NoisyGreedy struct {
	Model diffusion.Model
	// Epsilon is split evenly across the k selection rounds.
	Epsilon  float64
	Rounds   int // Monte Carlo rounds per gain estimate
	Seed     int64
	NumNodes int
}

// Name implements Solver.
func (n *NoisyGreedy) Name() string { return "noisy-greedy" }

// Select implements Solver.
func (n *NoisyGreedy) Select(k int) []graph.NodeID {
	if k > n.NumNodes {
		k = n.NumNodes
	}
	if k <= 0 {
		return nil
	}
	rounds := n.Rounds
	if rounds < 1 {
		rounds = 20
	}
	rng := rand.New(rand.NewSource(n.Seed))
	// Node-level sensitivity of one marginal gain: Δf = |V| (Example 2);
	// per-round budget ε/k gives Laplace scale Δf·k/ε.
	scale := float64(n.NumNodes) * float64(k) / n.Epsilon

	chosen := make(map[graph.NodeID]bool, k)
	seeds := make([]graph.NodeID, 0, k)
	for len(seeds) < k {
		base := 0.0
		if len(seeds) > 0 {
			base = diffusion.Estimate(n.Model, seeds, rounds, n.Seed)
		}
		best := graph.NodeID(-1)
		bestNoisy := 0.0
		for v := 0; v < n.NumNodes; v++ {
			if chosen[graph.NodeID(v)] {
				continue
			}
			cand := append(append([]graph.NodeID{}, seeds...), graph.NodeID(v))
			gain := diffusion.Estimate(n.Model, cand, rounds, n.Seed) - base
			noisy := gain + dp.SampleLaplace(scale, rng)
			if best < 0 || noisy > bestNoisy {
				best, bestNoisy = graph.NodeID(v), noisy
			}
		}
		chosen[best] = true
		seeds = append(seeds, best)
	}
	return seeds
}
