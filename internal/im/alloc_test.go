package im

import (
	"testing"

	"privim/internal/graph"
	"privim/internal/parallel"
)

// TestRRSetGenerationSteadyStateZeroAlloc pins serial RR-set generation at
// zero allocations once the flat arena, per-worker scratch, and location
// table have grown to steady state: each batch resets the arena and
// regenerates in place, with per-set RNG streams repositioned on a
// reusable StreamRNG instead of one rand.New per set.
func TestRRSetGenerationSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc floors do not hold under -race (sync.Pool drops Puts)")
	}
	g := parallelTestGraph(t)
	n := g.NumNodes()
	arena := &rrArena{}
	scratch := parallel.NewScratch(func() *rrScratch { return newRRScratch(n) })
	var locs []rrLoc
	run := func() {
		arena.reset()
		locs, _, _ = generateRRSets(nil, g, arena, 400, 0, 0, 11, 1, scratch, locs, nil, "im.test.rrsets")
	}
	run() // warm: grows arena, scratch, and locs to capacity
	run()
	if got := testing.AllocsPerRun(10, run); got != 0 {
		t.Fatalf("generateRRSets allocates %v objects/op after warm-up, want 0", got)
	}
}

// TestRISSelectSteadyStateAllocs pins repeated Select calls on one RIS
// solver: everything except the returned seed slice (caller-owned by
// contract) is recycled through the solver's risState.
func TestRISSelectSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc floors do not hold under -race (sync.Pool drops Puts)")
	}
	g := parallelTestGraph(t)
	r := &RIS{G: g, Samples: 400, Seed: 11, Workers: 1}
	var seeds []graph.NodeID
	run := func() { seeds = r.Select(3) }
	run()
	run()
	got := testing.AllocsPerRun(10, run)
	t.Logf("RIS.Select steady-state allocs: %v", got)
	// The returned seeds slice plus span bookkeeping; anything above a
	// handful means arena or coverage-index reuse broke.
	if got > 8 {
		t.Fatalf("RIS.Select allocates %v objects/op after warm-up, want <= 8", got)
	}
	if len(seeds) != 3 {
		t.Fatalf("Select returned %d seeds, want 3", len(seeds))
	}
}
