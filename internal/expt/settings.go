// Package expt is the experiment harness: one runner per table and figure
// of the paper's evaluation (§V and the appendix), producing the same rows
// and series the paper reports. Runners are deterministic given Settings.
//
// The harness runs on scaled-down surrogate datasets by default (see
// DESIGN.md §2); Settings control the scale, so full-size runs are a flag
// away. Absolute numbers differ from the paper's testbed — the reproduced
// quantity is the shape: method ordering, trends in n / M / θ / ε, and
// crossovers.
package expt

import (
	"fmt"
	"io"
	"math"

	"privim/internal/dataset"
	"privim/internal/obs"
)

// Settings parameterize a whole experiment suite run.
type Settings struct {
	// Scale is the fraction of each preset's paper-scale node count.
	Scale float64
	// MinNodes / MaxNodes clamp the per-dataset node counts so one suite
	// run has comparable per-dataset cost while preserving the size
	// ordering across datasets.
	MinNodes, MaxNodes int

	// SeedSetSize is k (paper: 50; scaled default: 10).
	SeedSetSize int
	// Repeats averages each measurement over this many seeds (paper: 5).
	Repeats int
	// Epsilons is the privacy-budget sweep for Figure 5 (paper: 1..6).
	Epsilons []float64
	// Datasets lists the presets to run (default: all six).
	Datasets []dataset.Preset

	// DiffusionSteps is j for evaluation (paper: 1; with InfluenceProb 1
	// this makes spread deterministic).
	DiffusionSteps int
	// MCRounds is the Monte Carlo rounds per spread estimate (1 suffices
	// for deterministic cascades).
	MCRounds int

	// Training knobs passed through to privim.Config.
	Iterations   int
	BatchSize    int
	SubgraphSize int
	Threshold    int
	Theta        int
	HiddenDim    int
	Layers       int

	// Seed is the master seed; run r of a sweep uses Seed + r·prime.
	Seed int64

	// Observer, when non-nil, receives live events from every training
	// run, spread estimation, and CELF selection the suite performs (see
	// internal/obs); imbench's -journal/-debug-addr flags set it.
	Observer obs.Observer
}

// Quick returns the laptop-scale settings used by the benchmark harness:
// every dataset at a few hundred nodes, single repeat.
func Quick() Settings {
	return Settings{
		Scale:          0.04,
		MinNodes:       400,
		MaxNodes:       1000,
		SeedSetSize:    10,
		Repeats:        2,
		Epsilons:       []float64{1, 2, 3, 4, 5, 6},
		Datasets:       dataset.AllPresets(),
		DiffusionSteps: 1,
		MCRounds:       1,
		Iterations:     120,
		BatchSize:      24,
		SubgraphSize:   12,
		Threshold:      4,
		Theta:          10,
		HiddenDim:      16,
		Layers:         2,
		Seed:           1,
	}
}

// Paper returns the paper-faithful settings (full-scale datasets, k=50,
// 5 repeats). Expect hours of compute.
func Paper() Settings {
	s := Quick()
	s.Scale = 1
	s.MinNodes = 32
	s.MaxNodes = 1 << 30
	s.SeedSetSize = 50
	s.Repeats = 5
	s.Iterations = 100
	s.BatchSize = 16
	s.SubgraphSize = 20
	s.HiddenDim = 32
	return s
}

func (s Settings) normalize() Settings {
	if s.Scale <= 0 {
		s.Scale = 0.02
	}
	if s.MinNodes == 0 {
		s.MinNodes = 200
	}
	if s.MaxNodes == 0 {
		s.MaxNodes = 1200
	}
	if s.SeedSetSize == 0 {
		s.SeedSetSize = 10
	}
	if s.Repeats == 0 {
		s.Repeats = 1
	}
	if len(s.Epsilons) == 0 {
		s.Epsilons = []float64{1, 2, 3, 4, 5, 6}
	}
	if len(s.Datasets) == 0 {
		s.Datasets = dataset.AllPresets()
	}
	if s.DiffusionSteps == 0 {
		s.DiffusionSteps = 1
	}
	if s.MCRounds == 0 {
		s.MCRounds = 1
	}
	if s.Iterations == 0 {
		s.Iterations = 25
	}
	if s.BatchSize == 0 {
		s.BatchSize = 8
	}
	if s.SubgraphSize == 0 {
		s.SubgraphSize = 16
	}
	if s.Threshold == 0 {
		s.Threshold = 4
	}
	if s.Theta == 0 {
		s.Theta = 10
	}
	if s.HiddenDim == 0 {
		s.HiddenDim = 16
	}
	if s.Layers == 0 {
		s.Layers = 3
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// effectiveScale converts the suite scale + clamps into the per-preset
// scale factor dataset.Generate expects.
func (s Settings) effectiveScale(p dataset.Preset) (float64, error) {
	spec, err := dataset.SpecFor(p)
	if err != nil {
		return 0, err
	}
	nodes := int(float64(spec.Nodes) * s.Scale)
	if nodes < s.MinNodes {
		nodes = s.MinNodes
	}
	if nodes > s.MaxNodes {
		nodes = s.MaxNodes
	}
	if nodes > spec.Nodes {
		nodes = spec.Nodes
	}
	return float64(nodes) / float64(spec.Nodes), nil
}

// logf writes progress lines when w is non-nil.
func logf(w io.Writer, format string, args ...interface{}) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// meanStd returns the mean and (population) standard deviation of xs.
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std /= float64(len(xs))
	return mean, math.Sqrt(std)
}
