package expt

import (
	"testing"

	"privim/internal/dataset"
	"privim/internal/privim"
)

// TestIntegrationHeadlineOrdering locks in the paper's headline shape on a
// fixed-seed, two-dataset run: PrivIM* beats the EGN baseline on average,
// and the noisy-greedy strawman stays below the PrivIM* coverage. All
// randomness is seeded, so this is deterministic, not statistical.
func TestIntegrationHeadlineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s := Quick()
	s.Datasets = []dataset.Preset{dataset.Email, dataset.Bitcoin}
	s.MinNodes = 300
	s.MaxNodes = 450
	s.Repeats = 2
	s.Iterations = 60
	s.Seed = 1

	run := func(mode privim.Mode, eps float64, p dataset.Preset) float64 {
		total := 0.0
		for r := 0; r < s.Repeats; r++ {
			seed := s.Seed + int64(r)*7919
			e, err := newEval(p, s, seed)
			if err != nil {
				t.Fatal(err)
			}
			out, err := e.runMethod(e.trainConfig(mode, eps, seed), seed)
			if err != nil {
				t.Fatal(err)
			}
			total += out.Coverage
		}
		return total / float64(s.Repeats)
	}

	var dual, egn float64
	for _, p := range s.Datasets {
		dual += run(privim.ModeDual, 3, p)
		egn += run(privim.ModeEGN, 3, p)
	}
	dual /= float64(len(s.Datasets))
	egn /= float64(len(s.Datasets))
	if dual <= egn {
		t.Fatalf("headline ordering broken: PrivIM* %.1f%% <= EGN %.1f%%", dual, egn)
	}
	t.Logf("PrivIM* %.1f%% vs EGN %.1f%% at eps=3", dual, egn)
}
