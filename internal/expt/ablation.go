package expt

import (
	"io"

	"privim/internal/dataset"
	"privim/internal/dp"
	"privim/internal/privim"
)

// SweepPoint is a generic (parameter value → spread) measurement used by
// the design-choice ablations DESIGN.md calls out.
type SweepPoint struct {
	Dataset dataset.Preset
	Param   float64
	Spread  float64
}

// RunAblationDecay sweeps the SCS decay factor µ (Eq. 9): µ→0 approaches
// uniform RWR, large µ aggressively avoids frequent nodes.
func RunAblationDecay(s Settings, muGrid []float64, w io.Writer) ([]SweepPoint, error) {
	s = s.normalize()
	if len(muGrid) == 0 {
		muGrid = []float64{0.25, 0.5, 1, 2, 4}
	}
	logf(w, "Ablation: SCS decay factor mu (eps=3)\n")
	logf(w, "%-12s %8s %10s\n", "dataset", "mu", "spread")
	var points []SweepPoint
	for _, p := range s.Datasets {
		e, err := newEval(p, s, s.Seed)
		if err != nil {
			return nil, err
		}
		for _, mu := range muGrid {
			cfg := e.trainConfig(privim.ModeDual, 3, s.Seed)
			cfg.Mu = mu
			out, err := e.runMethod(cfg, s.Seed)
			if err != nil {
				return nil, err
			}
			points = append(points, SweepPoint{Dataset: p, Param: mu, Spread: out.Spread})
			logf(w, "%-12s %8.2f %10.2f\n", p, mu, out.Spread)
		}
	}
	return points, nil
}

// RunAblationBESDivisor sweeps the BES subgraph-size divisor s: larger
// divisors mean smaller boundary subgraphs.
func RunAblationBESDivisor(s Settings, divGrid []int, w io.Writer) ([]SweepPoint, error) {
	s = s.normalize()
	if len(divGrid) == 0 {
		divGrid = []int{2, 3, 4}
	}
	logf(w, "Ablation: BES size divisor s (eps=3)\n")
	logf(w, "%-12s %8s %10s\n", "dataset", "s", "spread")
	var points []SweepPoint
	for _, p := range s.Datasets {
		e, err := newEval(p, s, s.Seed)
		if err != nil {
			return nil, err
		}
		for _, div := range divGrid {
			cfg := e.trainConfig(privim.ModeDual, 3, s.Seed)
			cfg.BESDivisor = div
			out, err := e.runMethod(cfg, s.Seed)
			if err != nil {
				return nil, err
			}
			points = append(points, SweepPoint{Dataset: p, Param: float64(div), Spread: out.Spread})
			logf(w, "%-12s %8d %10.2f\n", p, div, out.Spread)
		}
	}
	return points, nil
}

// RunAblationDiffusionSteps sweeps the loss diffusion horizon j ≤ r
// (Theorem 2 couples it to the GNN depth).
func RunAblationDiffusionSteps(s Settings, steps []int, w io.Writer) ([]SweepPoint, error) {
	s = s.normalize()
	if len(steps) == 0 {
		steps = []int{1, 2, 3}
	}
	logf(w, "Ablation: loss diffusion steps j (eps=3)\n")
	logf(w, "%-12s %8s %10s\n", "dataset", "j", "spread")
	var points []SweepPoint
	for _, p := range s.Datasets {
		e, err := newEval(p, s, s.Seed)
		if err != nil {
			return nil, err
		}
		for _, j := range steps {
			if j > s.Layers {
				continue // Theorem 2 requires j <= r
			}
			cfg := e.trainConfig(privim.ModeDual, 3, s.Seed)
			cfg.LossSteps = j
			out, err := e.runMethod(cfg, s.Seed)
			if err != nil {
				return nil, err
			}
			points = append(points, SweepPoint{Dataset: p, Param: float64(j), Spread: out.Spread})
			logf(w, "%-12s %8d %10.2f\n", p, j, out.Spread)
		}
	}
	return points, nil
}

// AccountantRow compares the RDP accountant's calibrated σ against the
// naive per-iteration Gaussian-mechanism composition for the same budget.
type AccountantRow struct {
	Epsilon    float64
	SigmaRDP   float64
	SigmaNaive float64
}

// RunAblationAccountant quantifies how much noise the Theorem 3 accountant
// saves over naive composition (splitting ε evenly across T iterations and
// applying the analytic Gaussian mechanism per step).
func RunAblationAccountant(s Settings, w io.Writer) ([]AccountantRow, error) {
	s = s.normalize()
	const m, ng = 200, 4
	logf(w, "Ablation: RDP accountant vs naive composition (T=%d, B=%d)\n", s.Iterations, s.BatchSize)
	logf(w, "%8s %12s %12s %8s\n", "epsilon", "sigma-rdp", "sigma-naive", "ratio")
	var rows []AccountantRow
	for _, eps := range s.Epsilons {
		sigmaRDP, err := dp.CalibrateSigma(eps, 1e-5, s.Iterations, s.BatchSize, m, ng)
		if err != nil {
			return nil, err
		}
		// Naive: per-iteration budget eps/T with delta/T, no subsampling
		// amplification.
		perIterEps := eps / float64(s.Iterations)
		perIterDelta := 1e-5 / float64(s.Iterations)
		sigmaNaive := dp.GaussianMechanismSigma(perIterDelta, perIterEps, 1)
		rows = append(rows, AccountantRow{Epsilon: eps, SigmaRDP: sigmaRDP, SigmaNaive: sigmaNaive})
		logf(w, "%8.1f %12.4f %12.4f %8.2f\n", eps, sigmaRDP, sigmaNaive, sigmaNaive/sigmaRDP)
	}
	return rows, nil
}
