package expt

import (
	"fmt"
	"io"
	"time"

	"privim/internal/dataset"
	"privim/internal/privim"
)

// DatasetStat is one Table I row.
type DatasetStat struct {
	Name      dataset.Preset
	Nodes     int
	Edges     int
	Directed  bool
	AvgDegree float64
}

// RunTableI generates every dataset at the configured scale and reports
// its statistics next to the paper's targets (Table I).
func RunTableI(s Settings, w io.Writer) ([]DatasetStat, error) {
	s = s.normalize()
	logf(w, "Table I: dataset statistics (scale-adjusted surrogates)\n")
	logf(w, "%-10s %8s %10s %10s %12s %12s\n", "dataset", "|V|", "|E|", "type", "avg-degree", "paper-avg")
	var out []DatasetStat
	for _, p := range s.Datasets {
		scale, err := s.effectiveScale(p)
		if err != nil {
			return nil, err
		}
		ds, err := dataset.Generate(p, dataset.Options{Scale: scale, Seed: s.Seed, InfluenceProb: 1})
		if err != nil {
			return nil, err
		}
		st := ds.Graph.ComputeStats()
		spec, _ := dataset.SpecFor(p)
		row := DatasetStat{
			Name: p, Nodes: st.Nodes, Edges: st.Edges,
			Directed: st.Directed, AvgDegree: st.AvgDegree,
		}
		out = append(out, row)
		kind := "undirected"
		if st.Directed {
			kind = "directed"
		}
		logf(w, "%-10s %8d %10d %10s %12.2f %12.2f\n", p, st.Nodes, st.Edges, kind, st.AvgDegree, spec.AvgDegree)
	}
	return out, nil
}

// AblationRow is one Table II cell: a method variant at a privacy budget.
type AblationRow struct {
	Mode     privim.Mode
	Epsilon  float64
	Coverage float64 // mean coverage ratio (%)
	Std      float64
}

// RunTableII reproduces the SCS/BES ablation: coverage ratio of PrivIM,
// PrivIM+SCS, and PrivIM* (SCS+BES) at ε ∈ {4, 1}, plus the Non-Private
// reference row, averaged over datasets and repeats.
func RunTableII(s Settings, w io.Writer) ([]AblationRow, error) {
	s = s.normalize()
	modes := []privim.Mode{privim.ModeNonPrivate, privim.ModeNaive, privim.ModeSCS, privim.ModeDual}
	budgets := []float64{4, 1}
	logf(w, "Table II: coverage ratio (%%) of ablation variants\n")
	logf(w, "%-14s %8s %12s %8s\n", "method", "epsilon", "coverage", "std")

	var rows []AblationRow
	for _, eps := range budgets {
		for _, mode := range modes {
			if mode == privim.ModeNonPrivate && eps != budgets[0] {
				continue // one reference row suffices
			}
			var samples []float64
			for _, p := range s.Datasets {
				for r := 0; r < s.Repeats; r++ {
					seed := s.Seed + int64(r)*7919
					e, err := newEval(p, s, seed)
					if err != nil {
						return nil, err
					}
					budget := eps
					if mode == privim.ModeNonPrivate {
						budget = privim.Infinity()
					}
					out, err := e.runMethod(e.trainConfig(mode, budget, seed), seed)
					if err != nil {
						return nil, err
					}
					samples = append(samples, out.Coverage)
				}
			}
			mean, std := meanStd(samples)
			row := AblationRow{Mode: mode, Epsilon: eps, Coverage: mean, Std: std}
			if mode == privim.ModeNonPrivate {
				row.Epsilon = privim.Infinity()
			}
			rows = append(rows, row)
			logf(w, "%-14s %8.0f %12.2f %8.2f\n", mode, row.Epsilon, mean, std)
		}
	}
	return rows, nil
}

// TimingRow is one Table III cell.
type TimingRow struct {
	Mode       privim.Mode
	Dataset    dataset.Preset
	Preprocess time.Duration
	PerEpoch   time.Duration
}

// RunTableIII measures preprocessing and per-epoch training time for
// PrivIM*, PrivIM, HP-GRAT, and EGN across the datasets (Table III).
func RunTableIII(s Settings, w io.Writer) ([]TimingRow, error) {
	s = s.normalize()
	modes := []privim.Mode{privim.ModeDual, privim.ModeNaive, privim.ModeHPGRAT, privim.ModeEGN}
	logf(w, "Table III: computational time cost\n")
	logf(w, "%-10s %-12s %14s %14s\n", "method", "dataset", "preprocess", "per-epoch")
	var rows []TimingRow
	for _, mode := range modes {
		for _, p := range s.Datasets {
			e, err := newEval(p, s, s.Seed)
			if err != nil {
				return nil, err
			}
			out, err := e.runMethod(e.trainConfig(mode, 3, s.Seed), s.Seed)
			if err != nil {
				return nil, err
			}
			row := TimingRow{
				Mode: mode, Dataset: p,
				Preprocess: out.Result.Preprocess,
				PerEpoch:   out.Result.PerEpoch,
			}
			rows = append(rows, row)
			logf(w, "%-10s %-12s %14s %14s\n", mode, p, row.Preprocess.Round(time.Microsecond), row.PerEpoch.Round(time.Microsecond))
		}
	}
	return rows, nil
}

// FormatDuration renders a duration in the paper's seconds style.
func FormatDuration(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}
