package expt

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"privim/internal/dataset"
	"privim/internal/privim"
)

func TestWriteSpreadCSV(t *testing.T) {
	points := []SpreadPoint{
		{Mode: privim.ModeDual, Dataset: dataset.Email, Epsilon: 3, Spread: 10.5, Std: 1, CELFSpread: 12},
		{Mode: privim.ModeNonPrivate, Dataset: dataset.Email, Epsilon: math.Inf(1), Spread: 11, CELFSpread: 12},
	}
	var buf bytes.Buffer
	if err := WriteSpreadCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want header + 2", len(recs))
	}
	if recs[1][2] != "3" {
		t.Fatalf("epsilon column = %q", recs[1][2])
	}
	if recs[2][2] != "inf" {
		t.Fatalf("non-private epsilon = %q, want inf", recs[2][2])
	}
}

func TestWriteParamAndIndicatorCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteParamCSV(&buf, []ParamPoint{{Dataset: dataset.LastFM, N: 20, M: 4, Spread: 5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lastfm,20,4,5") {
		t.Fatalf("param CSV missing row: %q", buf.String())
	}
	buf.Reset()
	if err := WriteIndicatorCSV(&buf, []IndicatorPoint{{Dataset: dataset.HepPh, N: 20, M: 4, Epsilon: 3, Indicator: 0.8, Spread: 9}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hepph,20,4,3,0.8,9") {
		t.Fatalf("indicator CSV missing row: %q", buf.String())
	}
}

func TestWriteTimingCSV(t *testing.T) {
	var buf bytes.Buffer
	rows := []TimingRow{{Mode: privim.ModeDual, Dataset: dataset.Email, Preprocess: 1500 * time.Millisecond, PerEpoch: 250 * time.Millisecond}}
	if err := WriteTimingCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "privim*,email,1.5,0.25") {
		t.Fatalf("timing CSV wrong: %q", buf.String())
	}
}

func TestSuiteResultJSON(t *testing.T) {
	s := &SuiteResult{
		GeneratedAt: time.Unix(0, 0).UTC(),
		Settings:    Quick(),
		Fig5: []SpreadPoint{
			{Mode: privim.ModeNonPrivate, Dataset: dataset.Email, Epsilon: math.Inf(1), Spread: 5},
		},
		TableII: []AblationRow{{Mode: privim.ModeNonPrivate, Epsilon: math.Inf(1), Coverage: 90}},
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("exported JSON invalid: %v", err)
	}
	// Infinity must have been replaced by the sentinel.
	if strings.Contains(buf.String(), "Inf") {
		t.Fatal("JSON contains Inf")
	}
	// Original struct untouched.
	if !math.IsInf(s.Fig5[0].Epsilon, 1) {
		t.Fatal("WriteJSON mutated its input")
	}
}
