package expt

import (
	"io"

	"privim/internal/dataset"
	"privim/internal/graph"
	"privim/internal/im"
	"privim/internal/ldp"
	"privim/internal/privim"
)

// SolverPoint is one row of the cross-solver comparison.
type SolverPoint struct {
	Dataset  dataset.Preset
	Solver   string
	Private  bool
	Epsilon  float64 // 0 for non-private solvers
	Coverage float64 // % of CELF
}

// RunSolverComparison pits every seed-selection strategy in the repository
// against the CELF reference on each dataset: the classical non-private
// solvers (greedy family, degree heuristics, RIS, IMM, StaticGreedy), the
// paper's Example-2 strawman (Laplace-noised greedy at ε=3), the LDP
// seeder, and the trained PrivIM* model — one table that locates the
// paper's contribution among its alternatives.
func RunSolverComparison(s Settings, w io.Writer) ([]SolverPoint, error) {
	s = s.normalize()
	logf(w, "Solver comparison (coverage %% of CELF; private solvers at eps=3)\n")
	logf(w, "%-12s %-16s %8s %12s\n", "dataset", "solver", "private", "coverage")
	var points []SolverPoint
	for _, p := range s.Datasets {
		e, err := newEval(p, s, s.Seed)
		if err != nil {
			return nil, err
		}
		model := e.model()
		evalSeeds := func(seeds []graph.NodeID) float64 {
			return im.CoverageRatio(e.spread(seeds, s.Seed), e.celfSpread)
		}

		type entry struct {
			name    string
			private bool
			seeds   []graph.NodeID
		}
		var entries []entry
		add := func(name string, private bool, seeds []graph.NodeID) {
			entries = append(entries, entry{name, private, seeds})
		}
		add("degree", false, (&im.Degree{G: e.testG}).Select(e.k))
		add("degree-discount", false, (&im.DegreeDiscount{G: e.testG, P: 1}).Select(e.k))
		add("ris", false, (&im.RIS{G: e.testG, MaxDepth: s.DiffusionSteps, Seed: s.Seed}).Select(e.k))
		add("imm", false, (&im.IMM{G: e.testG, MaxDepth: s.DiffusionSteps, Seed: s.Seed}).Select(e.k))
		add("static-greedy", false, (&im.StaticGreedy{G: e.testG, Worlds: 20, MaxDepth: s.DiffusionSteps, Seed: s.Seed}).Select(e.k))
		add("noisy-greedy", true, (&im.NoisyGreedy{
			Model: model, Epsilon: 3, Rounds: s.MCRounds, Seed: s.Seed, NumNodes: e.testG.NumNodes(),
		}).Select(e.k))
		add("ldp-degree", true, (&ldp.DegreeSeeder{G: e.testG, Epsilon: 3, Seed: s.Seed}).Select(e.k))

		out, err := e.runMethod(e.trainConfig(privim.ModeDual, 3, s.Seed), s.Seed)
		if err != nil {
			return nil, err
		}
		add("privim*", true, out.Result.SelectSeeds(e.testG, e.k))

		for _, en := range entries {
			pt := SolverPoint{
				Dataset: p, Solver: en.name, Private: en.private,
				Coverage: evalSeeds(en.seeds),
			}
			if en.private {
				pt.Epsilon = 3
			}
			points = append(points, pt)
			logf(w, "%-12s %-16s %8v %12.2f\n", p, en.name, en.private, pt.Coverage)
		}
	}
	return points, nil
}
