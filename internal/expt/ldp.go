package expt

import (
	"io"

	"privim/internal/dataset"
	"privim/internal/im"
	"privim/internal/ldp"
	"privim/internal/privim"
)

// LDPPoint is one central-vs-local DP comparison measurement.
type LDPPoint struct {
	Dataset dataset.Preset
	Epsilon float64
	// Coverage ratios (% of CELF) for the three regimes.
	CentralDP  float64 // PrivIM* (trusted curator)
	LocalDP    float64 // randomized-response degree seeding
	TrueDegree float64 // non-private degree heuristic (LDP's ε→∞ limit)
}

// RunLDPComparison contrasts the paper's central-DP pipeline with the
// local-DP future-work direction (§VII): at equal ε, a trusted-curator
// PrivIM* model versus fully local randomized-response degree seeding.
// The gap quantifies the price of removing the trusted curator.
func RunLDPComparison(s Settings, w io.Writer) ([]LDPPoint, error) {
	s = s.normalize()
	logf(w, "Extension: central DP (PrivIM*) vs local DP (RR degree seeding)\n")
	logf(w, "%-12s %8s %12s %12s %12s\n", "dataset", "epsilon", "central", "local", "true-degree")
	var points []LDPPoint
	for _, p := range s.Datasets {
		e, err := newEval(p, s, s.Seed)
		if err != nil {
			return nil, err
		}
		// Non-private degree reference on the test graph.
		deg := &im.Degree{G: e.testG}
		degSpread := e.spread(deg.Select(e.k), s.Seed)
		degCov := im.CoverageRatio(degSpread, e.celfSpread)

		for _, eps := range s.Epsilons {
			central, err := e.runMethod(e.trainConfig(privim.ModeDual, eps, s.Seed), s.Seed)
			if err != nil {
				return nil, err
			}
			seeder := &ldp.DegreeSeeder{G: e.testG, Epsilon: eps, Seed: s.Seed}
			localSpread := e.spread(seeder.Select(e.k), s.Seed)
			pt := LDPPoint{
				Dataset:    p,
				Epsilon:    eps,
				CentralDP:  central.Coverage,
				LocalDP:    im.CoverageRatio(localSpread, e.celfSpread),
				TrueDegree: degCov,
			}
			points = append(points, pt)
			logf(w, "%-12s %8.1f %12.2f %12.2f %12.2f\n", p, eps, pt.CentralDP, pt.LocalDP, pt.TrueDegree)
		}
	}
	return points, nil
}
