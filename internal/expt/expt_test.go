package expt

import (
	"bytes"
	"math"
	"testing"

	"privim/internal/dataset"
	"privim/internal/gnn"
	"privim/internal/privim"
)

// tinySettings keeps runner tests fast: one small dataset, few iterations.
func tinySettings() Settings {
	s := Quick()
	s.Datasets = []dataset.Preset{dataset.Email}
	s.MinNodes = 150
	s.MaxNodes = 200
	s.Iterations = 4
	s.BatchSize = 4
	s.SubgraphSize = 10
	s.HiddenDim = 8
	s.Layers = 2
	s.Epsilons = []float64{1, 4}
	s.SeedSetSize = 5
	return s
}

func TestEffectiveScale(t *testing.T) {
	s := Quick()
	for _, p := range dataset.AllPresets() {
		scale, err := s.effectiveScale(p)
		if err != nil {
			t.Fatal(err)
		}
		spec, _ := dataset.SpecFor(p)
		nodes := int(float64(spec.Nodes) * scale)
		if nodes < s.MinNodes-1 || nodes > s.MaxNodes+1 {
			t.Errorf("%s: effective nodes %d outside [%d, %d]", p, nodes, s.MinNodes, s.MaxNodes)
		}
	}
	if _, err := s.effectiveScale(dataset.Preset("nope")); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestNewEvalComputesCELF(t *testing.T) {
	s := tinySettings()
	e, err := newEval(dataset.Email, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.celfSpread < float64(e.k) {
		t.Fatalf("CELF spread %v below seed count %d", e.celfSpread, e.k)
	}
	if len(e.celfSeeds) != e.k {
		t.Fatalf("CELF selected %d seeds, want %d", len(e.celfSeeds), e.k)
	}
	// CELF must beat (or match) a random-ish single method run.
	out, err := e.runMethod(e.trainConfig(privim.ModeEGN, 1, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Spread > e.celfSpread*1.0001 {
		t.Fatalf("method spread %v exceeds CELF ground truth %v", out.Spread, e.celfSpread)
	}
	if out.Coverage < 0 || out.Coverage > 100.01 {
		t.Fatalf("coverage %v%% out of range", out.Coverage)
	}
}

func TestRunTableI(t *testing.T) {
	var buf bytes.Buffer
	s := tinySettings()
	s.Datasets = []dataset.Preset{dataset.Email, dataset.LastFM}
	rows, err := RunTableI(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if !rows[0].Directed || rows[1].Directed {
		t.Fatalf("directedness wrong: %+v", rows)
	}
	if buf.Len() == 0 {
		t.Fatal("no table output written")
	}
}

func TestRunTableII(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RunTableII(tinySettings(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Non-private once + 3 modes × 2 budgets.
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	var nonPrivate float64
	for _, r := range rows {
		if r.Coverage < 0 || r.Coverage > 120 {
			t.Fatalf("coverage %v%% implausible for %+v", r.Coverage, r)
		}
		if r.Mode == privim.ModeNonPrivate {
			if !math.IsInf(r.Epsilon, 1) {
				t.Fatalf("non-private row epsilon = %v", r.Epsilon)
			}
			nonPrivate = r.Coverage
		}
	}
	if nonPrivate == 0 {
		t.Fatal("missing non-private reference row")
	}
}

func TestRunTableIII(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RunTableIII(tinySettings(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 4 modes × 1 dataset
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Preprocess <= 0 || r.PerEpoch <= 0 {
			t.Fatalf("timings not positive: %+v", r)
		}
	}
}

func TestRunFig5(t *testing.T) {
	var buf bytes.Buffer
	s := tinySettings()
	pts, err := RunFig5(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// 1 non-private + 5 methods × 2 epsilons.
	if len(pts) != 11 {
		t.Fatalf("got %d points, want 11", len(pts))
	}
	for _, pt := range pts {
		if pt.Spread <= 0 || pt.CELFSpread <= 0 {
			t.Fatalf("bad point %+v", pt)
		}
		if pt.Spread > pt.CELFSpread*1.01 {
			t.Fatalf("method %s beat CELF: %v > %v", pt.Mode, pt.Spread, pt.CELFSpread)
		}
	}
}

func TestRunFig5Friendster(t *testing.T) {
	var buf bytes.Buffer
	s := tinySettings()
	s.Epsilons = []float64{3}
	pts, err := RunFig5Friendster(s, 2, 150, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("got %d points, want 5 (methods)", len(pts))
	}
	for _, pt := range pts {
		if pt.Spread <= 0 {
			t.Fatalf("bad friendster point %+v", pt)
		}
	}
}

func TestRunFig6(t *testing.T) {
	var buf bytes.Buffer
	pts, err := RunFig6(tinySettings(), []int{10}, []int{2, 4}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
}

func TestRunFig7(t *testing.T) {
	var buf bytes.Buffer
	pts, err := RunFig7(tinySettings(), []int{8, 12}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
}

func TestRunFig8(t *testing.T) {
	var buf bytes.Buffer
	pts, err := RunFig8(tinySettings(), 3, 10, []int{2, 4}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, pt := range pts {
		if pt.Indicator < 0 || pt.Indicator > 1 {
			t.Fatalf("indicator %v outside [0,1]", pt.Indicator)
		}
	}
}

func TestRunFig9(t *testing.T) {
	var buf bytes.Buffer
	pts, err := RunFig9(tinySettings(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	// 5 kinds × 2 epsilons × 1 dataset.
	if len(pts) != 10 {
		t.Fatalf("got %d points, want 10", len(pts))
	}
	kinds := map[gnn.Kind]bool{}
	for _, pt := range pts {
		kinds[pt.Kind] = true
	}
	if len(kinds) != 5 {
		t.Fatalf("covered %d architectures, want 5", len(kinds))
	}
}

func TestRunFig13(t *testing.T) {
	var buf bytes.Buffer
	pts, err := RunFig13(tinySettings(), []int{5, 10}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
}

func TestRunAblations(t *testing.T) {
	s := tinySettings()
	var buf bytes.Buffer
	if pts, err := RunAblationDecay(s, []float64{0.5, 2}, &buf); err != nil || len(pts) != 2 {
		t.Fatalf("decay ablation: %v, %d points", err, len(pts))
	}
	if pts, err := RunAblationBESDivisor(s, []int{2, 3}, &buf); err != nil || len(pts) != 2 {
		t.Fatalf("BES ablation: %v, %d points", err, len(pts))
	}
	if pts, err := RunAblationDiffusionSteps(s, []int{1, 2}, &buf); err != nil || len(pts) != 2 {
		t.Fatalf("steps ablation: %v, %d points", err, len(pts))
	}
}

func TestRunAblationAccountant(t *testing.T) {
	var buf bytes.Buffer
	s := tinySettings()
	rows, err := RunAblationAccountant(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(s.Epsilons) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SigmaRDP <= 0 || r.SigmaNaive <= 0 {
			t.Fatalf("bad sigmas %+v", r)
		}
		// The RDP accountant with subsampling must need less noise than
		// naive composition.
		if r.SigmaRDP >= r.SigmaNaive {
			t.Fatalf("RDP sigma %v not better than naive %v at eps=%v", r.SigmaRDP, r.SigmaNaive, r.Epsilon)
		}
	}
}

func TestRunLDPComparison(t *testing.T) {
	var buf bytes.Buffer
	s := tinySettings()
	pts, err := RunLDPComparison(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(s.Epsilons) {
		t.Fatalf("got %d points, want %d", len(pts), len(s.Epsilons))
	}
	for _, pt := range pts {
		if pt.CentralDP < 0 || pt.LocalDP < 0 || pt.TrueDegree <= 0 {
			t.Fatalf("bad point %+v", pt)
		}
		if pt.LocalDP > pt.TrueDegree*1.2 {
			t.Fatalf("LDP coverage %v implausibly above its eps→inf limit %v", pt.LocalDP, pt.TrueDegree)
		}
	}
}

func TestRunSolverComparison(t *testing.T) {
	var buf bytes.Buffer
	s := tinySettings()
	pts, err := RunSolverComparison(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("got %d solver points, want 8", len(pts))
	}
	names := map[string]bool{}
	for _, pt := range pts {
		names[pt.Solver] = true
		if pt.Coverage < 0 || pt.Coverage > 110 {
			t.Fatalf("coverage %v implausible for %s", pt.Coverage, pt.Solver)
		}
		if pt.Private && pt.Epsilon != 3 {
			t.Fatalf("private solver %s missing epsilon", pt.Solver)
		}
	}
	for _, want := range []string{"degree", "imm", "static-greedy", "noisy-greedy", "ldp-degree", "privim*"} {
		if !names[want] {
			t.Fatalf("missing solver %s in %v", want, names)
		}
	}
}

func TestRunAllAssemblesSuite(t *testing.T) {
	s := tinySettings()
	s.Epsilons = []float64{3}
	res, err := RunAll(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TableI) == 0 || len(res.TableII) == 0 || len(res.Fig5) == 0 ||
		len(res.Fig9) == 0 || len(res.Fig13) == 0 {
		t.Fatalf("suite result incomplete: %+v", res)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty JSON")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || std != 2 {
		t.Fatalf("meanStd = %v, %v; want 5, 2", mean, std)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty meanStd should be 0,0")
	}
}

func TestSettingsNormalizeDefaults(t *testing.T) {
	s := Settings{}.normalize()
	if s.Scale <= 0 || s.SeedSetSize == 0 || len(s.Epsilons) == 0 || len(s.Datasets) == 0 {
		t.Fatalf("normalize left zero fields: %+v", s)
	}
}

func TestPaperSettings(t *testing.T) {
	s := Paper()
	if s.Scale != 1 || s.SeedSetSize != 50 || s.Repeats != 5 {
		t.Fatalf("paper settings wrong: %+v", s)
	}
}
