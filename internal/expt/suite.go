package expt

import (
	"io"
	"time"
)

// RunAll executes the full experiment suite and assembles a SuiteResult
// for JSON export. Progress logs go to w (nil to silence). The Friendster
// panel and the long indicator sweeps are included; callers wanting a
// subset should invoke the individual runners.
func RunAll(s Settings, w io.Writer) (*SuiteResult, error) {
	s = s.normalize()
	out := &SuiteResult{GeneratedAt: time.Now().UTC(), Settings: s}

	var err error
	if out.TableI, err = RunTableI(s, w); err != nil {
		return nil, err
	}
	if out.TableII, err = RunTableII(s, w); err != nil {
		return nil, err
	}
	if out.TableIII, err = RunTableIII(s, w); err != nil {
		return nil, err
	}
	if out.Fig5, err = RunFig5(s, w); err != nil {
		return nil, err
	}
	if out.Fig6, err = RunFig6(s, nil, nil, w); err != nil {
		return nil, err
	}
	if out.Fig7, err = RunFig7(s, nil, w); err != nil {
		return nil, err
	}
	if out.Fig8, err = RunFig8(s, 3, 0, nil, w); err != nil {
		return nil, err
	}
	if out.Fig9, err = RunFig9(s, w); err != nil {
		return nil, err
	}
	if out.Fig13, err = RunFig13(s, nil, w); err != nil {
		return nil, err
	}
	return out, nil
}
