package expt

import (
	"io"

	"privim/internal/dataset"
	"privim/internal/gnn"
	"privim/internal/privim"
	"privim/internal/stats"
)

// SpreadPoint is one (method, dataset, ε) measurement of Figure 5.
type SpreadPoint struct {
	Mode    privim.Mode
	Dataset dataset.Preset
	Epsilon float64
	Spread  float64
	Std     float64
	// CELFSpread is the per-dataset ground-truth reference.
	CELFSpread float64
}

// RunFig5 reproduces Figure 5 (and Figure 14's HepPh panel): influence
// spread of every method over every dataset as ε varies, with the CELF
// ground truth. Non-Private is included once per dataset (ε-independent).
func RunFig5(s Settings, w io.Writer) ([]SpreadPoint, error) {
	s = s.normalize()
	logf(w, "Figure 5: influence spread vs privacy budget\n")
	logf(w, "%-12s %-12s %8s %10s %8s %10s\n", "dataset", "method", "epsilon", "spread", "std", "celf")
	var points []SpreadPoint
	for _, p := range s.Datasets {
		// Cache eval contexts per repeat so every method sees the same data.
		evals := make([]*evalContext, s.Repeats)
		for r := range evals {
			e, err := newEval(p, s, s.Seed+int64(r)*7919)
			if err != nil {
				return nil, err
			}
			evals[r] = e
		}
		celfRef := evals[0].celfSpread

		runPoint := func(mode privim.Mode, eps float64) (SpreadPoint, error) {
			var samples []float64
			for r, e := range evals {
				seed := s.Seed + int64(r)*7919
				out, err := e.runMethod(e.trainConfig(mode, eps, seed), seed)
				if err != nil {
					return SpreadPoint{}, err
				}
				samples = append(samples, out.Spread)
			}
			mean, std := meanStd(samples)
			return SpreadPoint{
				Mode: mode, Dataset: p, Epsilon: eps,
				Spread: mean, Std: std, CELFSpread: celfRef,
			}, nil
		}

		np, err := runPoint(privim.ModeNonPrivate, privim.Infinity())
		if err != nil {
			return nil, err
		}
		points = append(points, np)
		logf(w, "%-12s %-12s %8s %10.2f %8.2f %10.2f\n", p, np.Mode, "inf", np.Spread, np.Std, celfRef)

		for _, mode := range []privim.Mode{privim.ModeDual, privim.ModeNaive, privim.ModeHPGRAT, privim.ModeHP, privim.ModeEGN} {
			for _, eps := range s.Epsilons {
				pt, err := runPoint(mode, eps)
				if err != nil {
					return nil, err
				}
				points = append(points, pt)
				logf(w, "%-12s %-12s %8.1f %10.2f %8.2f %10.2f\n", p, mode, eps, pt.Spread, pt.Std, celfRef)
			}
		}
	}
	return points, nil
}

// RunFig5Friendster reproduces the Friendster panel of Figure 5 on the
// partitioned surrogate: each method trains and evaluates per partition
// and reports the summed spread, mirroring the paper's memory-driven
// partitioning.
func RunFig5Friendster(s Settings, parts, nodesPerPart int, w io.Writer) ([]SpreadPoint, error) {
	s = s.normalize()
	logf(w, "Figure 5 (Friendster surrogate, %d partitions × %d nodes)\n", parts, nodesPerPart)
	dss, err := dataset.GeneratePartitioned(parts, nodesPerPart, dataset.Options{Seed: s.Seed, InfluenceProb: 1})
	if err != nil {
		return nil, err
	}
	var points []SpreadPoint
	for _, mode := range []privim.Mode{privim.ModeDual, privim.ModeNaive, privim.ModeHPGRAT, privim.ModeHP, privim.ModeEGN} {
		for _, eps := range s.Epsilons {
			total, celfTotal := 0.0, 0.0
			for _, ds := range dss {
				e := &evalContext{
					settings: s, preset: dataset.Friendster, ds: ds,
					trainG: ds.TrainSubgraph().G, testG: ds.TestSubgraph().G,
					k: s.SeedSetSize,
				}
				if e.k > e.testG.NumNodes()/2 {
					e.k = e.testG.NumNodes() / 2
				}
				out, err := e.runMethod(e.trainConfig(mode, eps, s.Seed), s.Seed)
				if err != nil {
					return nil, err
				}
				total += out.Spread
				celfTotal += out.Spread / max1(out.Coverage/100)
			}
			pt := SpreadPoint{Mode: mode, Dataset: dataset.Friendster, Epsilon: eps, Spread: total, CELFSpread: celfTotal}
			points = append(points, pt)
			logf(w, "%-12s %-12s %8.1f %10.2f\n", dataset.Friendster, mode, eps, total)
		}
	}
	return points, nil
}

func max1(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return x
}

// ParamPoint is one (n, M) → spread measurement for Figures 6/7/10/11.
type ParamPoint struct {
	Dataset dataset.Preset
	N       int
	M       int
	Spread  float64
}

// RunFig6 reproduces Figures 6/10: impact of the frequency threshold M at
// ε=3, for each subgraph size n in nGrid and threshold in mGrid.
func RunFig6(s Settings, nGrid, mGrid []int, w io.Writer) ([]ParamPoint, error) {
	s = s.normalize()
	if len(nGrid) == 0 {
		nGrid = []int{12, 16, 20, 24}
	}
	if len(mGrid) == 0 {
		mGrid = []int{2, 4, 6, 8, 10}
	}
	logf(w, "Figure 6: impact of threshold M on PrivIM* (eps=3)\n")
	logf(w, "%-12s %6s %6s %10s\n", "dataset", "n", "M", "spread")
	var points []ParamPoint
	for _, p := range s.Datasets {
		e, err := newEval(p, s, s.Seed)
		if err != nil {
			return nil, err
		}
		for _, n := range nGrid {
			for _, m := range mGrid {
				cfg := e.trainConfig(privim.ModeDual, 3, s.Seed)
				cfg.SubgraphSize = n
				cfg.Threshold = m
				out, err := e.runMethod(cfg, s.Seed)
				if err != nil {
					return nil, err
				}
				pt := ParamPoint{Dataset: p, N: n, M: m, Spread: out.Spread}
				points = append(points, pt)
				logf(w, "%-12s %6d %6d %10.2f\n", p, n, m, out.Spread)
			}
		}
	}
	return points, nil
}

// RunFig7 reproduces Figures 7/11: impact of the subgraph size n at ε=3
// with the default threshold.
func RunFig7(s Settings, nGrid []int, w io.Writer) ([]ParamPoint, error) {
	s = s.normalize()
	if len(nGrid) == 0 {
		nGrid = []int{8, 12, 16, 20, 24, 28}
	}
	logf(w, "Figure 7: impact of subgraph size n on PrivIM* (eps=3)\n")
	logf(w, "%-12s %6s %10s\n", "dataset", "n", "spread")
	var points []ParamPoint
	for _, p := range s.Datasets {
		e, err := newEval(p, s, s.Seed)
		if err != nil {
			return nil, err
		}
		for _, n := range nGrid {
			cfg := e.trainConfig(privim.ModeDual, 3, s.Seed)
			cfg.SubgraphSize = n
			out, err := e.runMethod(cfg, s.Seed)
			if err != nil {
				return nil, err
			}
			pt := ParamPoint{Dataset: p, N: n, M: s.Threshold, Spread: out.Spread}
			points = append(points, pt)
			logf(w, "%-12s %6d %10.2f\n", p, n, out.Spread)
		}
	}
	return points, nil
}

// IndicatorPoint pairs the theoretical indicator value with the measured
// spread for Figures 8/12/15.
type IndicatorPoint struct {
	Dataset   dataset.Preset
	N, M      int
	Epsilon   float64
	Indicator float64
	Spread    float64
}

// RunFig8 reproduces Figures 8/12: theoretical indicator values next to
// empirical PrivIM* spreads over an M sweep at fixed n (ε given, paper
// uses 3; Figure 15 repeats at ε ∈ {1, 6}).
func RunFig8(s Settings, eps float64, n int, mGrid []int, w io.Writer) ([]IndicatorPoint, error) {
	s = s.normalize()
	if n == 0 {
		n = s.SubgraphSize
	}
	if len(mGrid) == 0 {
		mGrid = []int{2, 4, 6, 8, 10}
	}
	ind := privim.DefaultIndicator()
	logf(w, "Figure 8: indicator vs empirical spread (eps=%.0f, n=%d)\n", eps, n)
	logf(w, "%-12s %6s %6s %12s %10s\n", "dataset", "n", "M", "indicator", "spread")
	var points []IndicatorPoint
	for _, p := range s.Datasets {
		e, err := newEval(p, s, s.Seed)
		if err != nil {
			return nil, err
		}
		numNodes := e.ds.Graph.NumNodes()
		vals := ind.Values([]int{n}, mGrid, numNodes)
		var indSeries, empSeries []float64
		for j, m := range mGrid {
			cfg := e.trainConfig(privim.ModeDual, eps, s.Seed)
			cfg.SubgraphSize = n
			cfg.Threshold = m
			out, err := e.runMethod(cfg, s.Seed)
			if err != nil {
				return nil, err
			}
			pt := IndicatorPoint{
				Dataset: p, N: n, M: m, Epsilon: eps,
				Indicator: vals[0][j], Spread: out.Spread,
			}
			points = append(points, pt)
			indSeries = append(indSeries, pt.Indicator)
			empSeries = append(empSeries, pt.Spread)
			logf(w, "%-12s %6d %6d %12.4f %10.2f\n", p, n, m, pt.Indicator, pt.Spread)
		}
		logf(w, "%-12s agreement: spearman=%.3f same-peak=%v\n",
			p, stats.Spearman(indSeries, empSeries), stats.PeakAgreement(indSeries, empSeries))
	}
	return points, nil
}

// IndicatorAgreement summarizes Figure 8's qualitative claim over a point
// series: the Spearman rank correlation between the indicator and the
// empirical spread, grouped by dataset. Values near +1 mean the indicator
// curve tracks the measured curve.
func IndicatorAgreement(points []IndicatorPoint) map[dataset.Preset]float64 {
	byDS := make(map[dataset.Preset][][2]float64)
	for _, pt := range points {
		byDS[pt.Dataset] = append(byDS[pt.Dataset], [2]float64{pt.Indicator, pt.Spread})
	}
	out := make(map[dataset.Preset]float64, len(byDS))
	for ds, pairs := range byDS {
		ind := make([]float64, len(pairs))
		emp := make([]float64, len(pairs))
		for i, p := range pairs {
			ind[i], emp[i] = p[0], p[1]
		}
		out[ds] = stats.Spearman(ind, emp)
	}
	return out
}

// GNNPoint is one Figure 9 bar: architecture × dataset × ε.
type GNNPoint struct {
	Kind     gnn.Kind
	Dataset  dataset.Preset
	Epsilon  float64
	Coverage float64
}

// RunFig9 reproduces Figure 9: PrivIM* coverage ratio with each GNN
// architecture at ε ∈ {2, 5}.
func RunFig9(s Settings, w io.Writer) ([]GNNPoint, error) {
	s = s.normalize()
	logf(w, "Figure 9: GNN architectures under PrivIM*\n")
	logf(w, "%-12s %-8s %8s %12s\n", "dataset", "gnn", "epsilon", "coverage")
	var points []GNNPoint
	for _, p := range s.Datasets {
		e, err := newEval(p, s, s.Seed)
		if err != nil {
			return nil, err
		}
		for _, eps := range []float64{2, 5} {
			for _, kind := range gnn.AllKinds() {
				out, err := e.runGNNKind(kind, eps, s.Seed)
				if err != nil {
					return nil, err
				}
				pt := GNNPoint{Kind: kind, Dataset: p, Epsilon: eps, Coverage: out.Coverage}
				points = append(points, pt)
				logf(w, "%-12s %-8s %8.0f %12.2f\n", p, kind, eps, out.Coverage)
			}
		}
	}
	return points, nil
}

// ThetaPoint is one Figure 13 measurement.
type ThetaPoint struct {
	Dataset  dataset.Preset
	Theta    int
	Coverage float64
}

// RunFig13 reproduces Figure 13 (Appendix I): coverage ratio of naive
// PrivIM as the in-degree bound θ varies at ε=3.
func RunFig13(s Settings, thetaGrid []int, w io.Writer) ([]ThetaPoint, error) {
	s = s.normalize()
	if len(thetaGrid) == 0 {
		thetaGrid = []int{5, 10, 15, 20}
	}
	logf(w, "Figure 13: impact of theta on PrivIM (eps=3)\n")
	logf(w, "%-12s %6s %12s\n", "dataset", "theta", "coverage")
	var points []ThetaPoint
	for _, p := range s.Datasets {
		e, err := newEval(p, s, s.Seed)
		if err != nil {
			return nil, err
		}
		for _, theta := range thetaGrid {
			cfg := e.trainConfig(privim.ModeNaive, 3, s.Seed)
			cfg.Theta = theta
			out, err := e.runMethod(cfg, s.Seed)
			if err != nil {
				return nil, err
			}
			pt := ThetaPoint{Dataset: p, Theta: theta, Coverage: out.Coverage}
			points = append(points, pt)
			logf(w, "%-12s %6d %12.2f\n", p, theta, out.Coverage)
		}
	}
	return points, nil
}
