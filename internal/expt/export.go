package expt

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

// This file provides machine-readable exports of the experiment results so
// plots and downstream analyses don't have to re-parse the human-readable
// tables.

// WriteSpreadCSV exports Figure 5 points as CSV.
func WriteSpreadCSV(w io.Writer, points []SpreadPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "method", "epsilon", "spread", "std", "celf_spread"}); err != nil {
		return err
	}
	for _, p := range points {
		eps := "inf"
		if !math.IsInf(p.Epsilon, 1) {
			eps = strconv.FormatFloat(p.Epsilon, 'g', -1, 64)
		}
		rec := []string{
			string(p.Dataset), string(p.Mode), eps,
			fmtF(p.Spread), fmtF(p.Std), fmtF(p.CELFSpread),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteParamCSV exports Figure 6/7 parameter-sweep points as CSV.
func WriteParamCSV(w io.Writer, points []ParamPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "n", "m", "spread"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{string(p.Dataset), strconv.Itoa(p.N), strconv.Itoa(p.M), fmtF(p.Spread)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteIndicatorCSV exports Figure 8/12/15 indicator points as CSV.
func WriteIndicatorCSV(w io.Writer, points []IndicatorPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "n", "m", "epsilon", "indicator", "spread"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			string(p.Dataset), strconv.Itoa(p.N), strconv.Itoa(p.M),
			fmtF(p.Epsilon), fmtF(p.Indicator), fmtF(p.Spread),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTimingCSV exports Table III rows as CSV with second-valued columns.
func WriteTimingCSV(w io.Writer, rows []TimingRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "dataset", "preprocess_s", "per_epoch_s"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			string(r.Mode), string(r.Dataset),
			fmtF(r.Preprocess.Seconds()), fmtF(r.PerEpoch.Seconds()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// SuiteResult aggregates one full-suite run for JSON export.
type SuiteResult struct {
	GeneratedAt time.Time        `json:"generated_at"`
	Settings    Settings         `json:"settings"`
	TableI      []DatasetStat    `json:"table1,omitempty"`
	TableII     []AblationRow    `json:"table2,omitempty"`
	TableIII    []TimingRow      `json:"table3,omitempty"`
	Fig5        []SpreadPoint    `json:"fig5,omitempty"`
	Fig6        []ParamPoint     `json:"fig6,omitempty"`
	Fig7        []ParamPoint     `json:"fig7,omitempty"`
	Fig8        []IndicatorPoint `json:"fig8,omitempty"`
	Fig9        []GNNPoint       `json:"fig9,omitempty"`
	Fig13       []ThetaPoint     `json:"fig13,omitempty"`
}

// WriteJSON serializes the suite result with stable formatting. Infinite
// epsilons are marshaled as the string "inf" via the custom row types'
// numeric fields being finite; SpreadPoint's +Inf epsilon is mapped here.
func (s *SuiteResult) WriteJSON(w io.Writer) error {
	// JSON cannot represent +Inf; replace with a sentinel.
	cp := *s
	cp.Fig5 = append([]SpreadPoint(nil), s.Fig5...)
	for i := range cp.Fig5 {
		if math.IsInf(cp.Fig5[i].Epsilon, 1) {
			cp.Fig5[i].Epsilon = -1 // sentinel: -1 means non-private
		}
	}
	cp.TableII = append([]AblationRow(nil), s.TableII...)
	for i := range cp.TableII {
		if math.IsInf(cp.TableII[i].Epsilon, 1) {
			cp.TableII[i].Epsilon = -1
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&cp); err != nil {
		return fmt.Errorf("expt: encoding suite result: %w", err)
	}
	return nil
}
