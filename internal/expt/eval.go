package expt

import (
	"fmt"

	"privim/internal/dataset"
	"privim/internal/diffusion"
	"privim/internal/gnn"
	"privim/internal/graph"
	"privim/internal/im"
	"privim/internal/privim"
)

// evalContext caches everything reusable across methods on one dataset +
// seed: the generated graph, the train/test split, and the CELF reference.
type evalContext struct {
	settings Settings
	preset   dataset.Preset
	ds       *dataset.Dataset
	trainG   *graph.Graph
	testG    *graph.Graph

	k          int
	celfSeeds  []graph.NodeID
	celfSpread float64
}

// newEval generates the dataset and computes the CELF ground truth.
func newEval(p dataset.Preset, s Settings, seed int64) (*evalContext, error) {
	scale, err := s.effectiveScale(p)
	if err != nil {
		return nil, err
	}
	ds, err := dataset.Generate(p, dataset.Options{Scale: scale, Seed: seed, InfluenceProb: 1})
	if err != nil {
		return nil, err
	}
	e := &evalContext{
		settings: s,
		preset:   p,
		ds:       ds,
		trainG:   ds.TrainSubgraph().G,
		testG:    ds.TestSubgraph().G,
		k:        s.SeedSetSize,
	}
	if e.k > e.testG.NumNodes()/2 {
		e.k = e.testG.NumNodes() / 2
	}
	celf := &im.CELF{
		Model:    e.model(),
		Rounds:   s.MCRounds,
		Seed:     seed,
		NumNodes: e.testG.NumNodes(),
		Obs:      s.Observer,
	}
	e.celfSeeds = celf.Select(e.k)
	e.celfSpread = e.spread(e.celfSeeds, seed)
	if e.celfSpread <= 0 {
		return nil, fmt.Errorf("expt: CELF reference spread is 0 on %s", p)
	}
	return e, nil
}

// model returns the evaluation diffusion model (IC with the paper's step
// bound on the held-out graph).
func (e *evalContext) model() diffusion.Model {
	return &diffusion.IC{G: e.testG, MaxSteps: e.settings.DiffusionSteps}
}

// spread estimates the influence spread of a seed set on the test graph.
func (e *evalContext) spread(seeds []graph.NodeID, seed int64) float64 {
	return diffusion.EstimateObserved(e.model(), seeds, e.settings.MCRounds, seed, e.settings.Observer)
}

// trainConfig builds a privim.Config for the given method and budget.
func (e *evalContext) trainConfig(mode privim.Mode, eps float64, seed int64) privim.Config {
	return privim.Config{
		Mode:         mode,
		HiddenDim:    e.settings.HiddenDim,
		Layers:       e.settings.Layers,
		Epsilon:      eps,
		SubgraphSize: e.settings.SubgraphSize,
		Threshold:    e.settings.Threshold,
		Theta:        e.settings.Theta,
		Iterations:   e.settings.Iterations,
		BatchSize:    e.settings.BatchSize,
		LossSteps:    e.settings.DiffusionSteps,
		Seed:         seed,
		Observer:     e.settings.Observer,
	}
}

// methodOutcome is one trained method's evaluation on the test split.
type methodOutcome struct {
	Spread   float64
	Coverage float64 // percent of CELF
	Result   *privim.Result
}

// runMethod trains a method and evaluates its seed set.
func (e *evalContext) runMethod(cfg privim.Config, seed int64) (methodOutcome, error) {
	res, err := privim.Train(e.trainG, cfg)
	if err != nil {
		return methodOutcome{}, fmt.Errorf("expt: %s on %s: %w", cfg.Mode, e.preset, err)
	}
	seeds := res.SelectSeeds(e.testG, e.k)
	sp := e.spread(seeds, seed)
	return methodOutcome{
		Spread:   sp,
		Coverage: im.CoverageRatio(sp, e.celfSpread),
		Result:   res,
	}, nil
}

// runGNNKind trains PrivIM* with an explicit architecture (Figure 9).
func (e *evalContext) runGNNKind(kind gnn.Kind, eps float64, seed int64) (methodOutcome, error) {
	cfg := e.trainConfig(privim.ModeDual, eps, seed)
	cfg.GNNKind = kind
	return e.runMethod(cfg, seed)
}
