package autodiff

import (
	"fmt"
	"math"
	"sync"

	"privim/internal/graph"
	"privim/internal/parallel"
	"privim/internal/tensor"
)

// SparseMat is a static sparse matrix in coordinate form, used for
// adjacency-based aggregation. Entry k contributes W[k]·X[Src[k]] to output
// row Dst[k] under SpMM. It is data (not differentiated through).
//
// For large operands SpMM runs row-parallel on the shared worker pool:
// entries are lazily grouped by destination row (forward) and by source
// row (backward) with the original entry order preserved inside each
// group, so every output element accumulates in exactly the serial
// entry order and the result is bit-for-bit identical at any worker
// count.
type SparseMat struct {
	NumRows, NumCols int
	Dst, Src         []int32
	W                []float64

	groupOnce sync.Once
	byDst     rowGroup // entries grouped by Dst: forward row-parallelism
	bySrc     rowGroup // entries grouped by Src: backward row-parallelism
}

// rowGroup is a stable bucketing of entry indices by row: entries of row
// r are perm[start[r]:start[r+1]], in ascending original order.
type rowGroup struct {
	start []int32
	perm  []int32
}

// groupBy stably buckets entry indices by key (counting sort).
func groupBy(key []int32, numRows int) rowGroup {
	start := make([]int32, numRows+1)
	for _, r := range key {
		start[r+1]++
	}
	for r := 0; r < numRows; r++ {
		start[r+1] += start[r]
	}
	perm := make([]int32, len(key))
	next := make([]int32, numRows)
	copy(next, start[:numRows])
	for k, r := range key {
		perm[next[r]] = int32(k)
		next[r]++
	}
	return rowGroup{start: start, perm: perm}
}

func (a *SparseMat) groups() (byDst, bySrc rowGroup) {
	a.groupOnce.Do(func() {
		a.byDst = groupBy(a.Dst, a.NumRows)
		a.bySrc = groupBy(a.Src, a.NumCols)
	})
	return a.byDst, a.bySrc
}

// spmmParallelWork is the crossover (entries × columns) below which the
// streaming serial loops win; the n=20–80 training subgraphs stay serial,
// full-graph inference crosses it.
const spmmParallelWork = 1 << 16

// spmmRowGrain is the number of output rows one parallel chunk covers.
const spmmRowGrain = 64

// NewSparse validates and wraps a coordinate-form sparse matrix.
func NewSparse(numRows, numCols int, dst, src []int32, w []float64) *SparseMat {
	if len(dst) != len(src) || len(dst) != len(w) {
		panic("autodiff: NewSparse length mismatch")
	}
	for k := range dst {
		if int(dst[k]) >= numRows || int(src[k]) >= numCols || dst[k] < 0 || src[k] < 0 {
			panic(fmt.Sprintf("autodiff: NewSparse entry %d (%d,%d) out of %dx%d", k, dst[k], src[k], numRows, numCols))
		}
	}
	return &SparseMat{NumRows: numRows, NumCols: numCols, Dst: dst, Src: src, W: w}
}

// InAdjacency builds the aggregation matrix A with A[u][v] = w(v→u) for each
// arc v→u of g (Eq. 2 of the paper): SpMM(A, H) aggregates each node's
// in-neighbors weighted by influence probability.
func InAdjacency(g *graph.Graph) *SparseMat {
	n := g.NumNodes()
	var dst, src []int32
	var w []float64
	for u := 0; u < n; u++ {
		for _, a := range g.In(graph.NodeID(u)) {
			dst = append(dst, int32(u))
			src = append(src, int32(a.To))
			w = append(w, a.Weight)
		}
	}
	return &SparseMat{NumRows: n, NumCols: n, Dst: dst, Src: src, W: w}
}

// OutAdjacency builds A with A[u][v] = w(u→v) for each arc u→v: SpMM(A, H)
// aggregates each node's out-neighbors.
func OutAdjacency(g *graph.Graph) *SparseMat {
	n := g.NumNodes()
	var dst, src []int32
	var w []float64
	for u := 0; u < n; u++ {
		for _, a := range g.Out(graph.NodeID(u)) {
			dst = append(dst, int32(u))
			src = append(src, int32(a.To))
			w = append(w, a.Weight)
		}
	}
	return &SparseMat{NumRows: n, NumCols: n, Dst: dst, Src: src, W: w}
}

// GCNNormalized builds the symmetric-normalized aggregation matrix
// Â[u][v] = 1/√(d̂_u·d̂_v) over in-arcs plus self loops, the GCN propagation
// rule (Appendix G, Eq. 31-32).
func GCNNormalized(g *graph.Graph) *SparseMat {
	n := g.NumNodes()
	deg := make([]float64, n) // d̂ = in-degree + 1 (self loop)
	for u := 0; u < n; u++ {
		deg[u] = float64(g.InDegree(graph.NodeID(u))) + 1
	}
	var dst, src []int32
	var w []float64
	for u := 0; u < n; u++ {
		dst = append(dst, int32(u))
		src = append(src, int32(u))
		w = append(w, 1/deg[u])
		for _, a := range g.In(graph.NodeID(u)) {
			dst = append(dst, int32(u))
			src = append(src, int32(a.To))
			w = append(w, 1/sqrtProd(deg[u], deg[a.To]))
		}
	}
	return &SparseMat{NumRows: n, NumCols: n, Dst: dst, Src: src, W: w}
}

func sqrtProd(a, b float64) float64 { return math.Sqrt(a * b) }

// SpMM returns A·X for a static sparse A and a tape node X. Forward and
// backward run row-parallel above the crossover; see SparseMat.
func SpMM(a *SparseMat, x *Node) *Node {
	if x.Value.Rows != a.NumCols {
		panic(fmt.Sprintf("autodiff: SpMM %dx%d × %dx%d", a.NumRows, a.NumCols, x.Value.Rows, x.Value.Cols))
	}
	cols := x.Value.Cols
	val := x.tape.take(a.NumRows, cols, true)
	spmmForward(a, x.Value, val)
	out := x.tape.add(opSpMM, val, x, nil)
	out.sparse = a
	return out
}

// spmmForward computes val += A·x. Output rows are disjoint across
// parallel chunks and each row accumulates its entries in original
// (serial) order, so the result is worker-count independent.
func spmmForward(a *SparseMat, x, val *tensor.Matrix) {
	cols := x.Cols
	if len(a.W)*cols < spmmParallelWork || parallel.Limit() == 1 {
		for k := range a.Dst {
			d, s, w := a.Dst[k], a.Src[k], a.W[k]
			drow := val.Row(int(d))
			srow := x.Row(int(s))
			for j := 0; j < cols; j++ {
				drow[j] += w * srow[j]
			}
		}
		return
	}
	byDst, _ := a.groups()
	parallel.For(0, a.NumRows, spmmRowGrain, func(_, lo, hi int) {
		for d := lo; d < hi; d++ {
			drow := val.Row(d)
			for _, k := range byDst.perm[byDst.start[d]:byDst.start[d+1]] {
				w := a.W[k]
				srow := x.Row(int(a.Src[k]))
				for j := 0; j < cols; j++ {
					drow[j] += w * srow[j]
				}
			}
		}
	})
}

// spmmBackward computes gx += Aᵀ·grad, parallel over source rows (the
// gradient's scatter targets), mirroring spmmForward's determinism.
func spmmBackward(a *SparseMat, grad, gx *tensor.Matrix) {
	cols := grad.Cols
	if len(a.W)*cols < spmmParallelWork || parallel.Limit() == 1 {
		for k := range a.Dst {
			d, s, w := a.Dst[k], a.Src[k], a.W[k]
			grow := grad.Row(int(d))
			srow := gx.Row(int(s))
			for j := 0; j < cols; j++ {
				srow[j] += w * grow[j]
			}
		}
		return
	}
	_, bySrc := a.groups()
	parallel.For(0, a.NumCols, spmmRowGrain, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			srow := gx.Row(s)
			for _, k := range bySrc.perm[bySrc.start[s]:bySrc.start[s+1]] {
				w := a.W[k]
				grow := grad.Row(int(a.Dst[k]))
				for j := 0; j < cols; j++ {
					srow[j] += w * grow[j]
				}
			}
		}
	})
}

// GatherRows returns a matrix whose i-th row is x's idx[i]-th row. idx may
// repeat rows; the backward pass scatter-adds into x.
func GatherRows(x *Node, idx []int32) *Node {
	cols := x.Value.Cols
	val := x.tape.take(len(idx), cols, false)
	for i, r := range idx {
		copy(val.Row(i), x.Value.Row(int(r)))
	}
	out := x.tape.add(opGatherRows, val, x, nil)
	out.idx = idx
	return out
}

// ScatterAddRows returns a numOut-row matrix where row idx[i] accumulates
// x's row i. The backward pass gathers.
func ScatterAddRows(x *Node, idx []int32, numOut int) *Node {
	cols := x.Value.Cols
	if len(idx) != x.Value.Rows {
		panic("autodiff: ScatterAddRows idx length mismatch")
	}
	val := x.tape.take(numOut, cols, true)
	for i, r := range idx {
		drow := val.Row(int(r))
		xrow := x.Value.Row(i)
		for j, v := range xrow {
			drow[j] += v
		}
	}
	out := x.tape.add(opScatterAddRows, val, x, nil)
	out.idx = idx
	return out
}

// MulColBroadcast multiplies each row i of x (E×d) by the scalar alpha_i
// (E×1): the attention-weighting step in GAT/GRAT layers.
func MulColBroadcast(x, alpha *Node) *Node {
	t := sameTape("MulColBroadcast", x, alpha)
	if alpha.Value.Cols != 1 || alpha.Value.Rows != x.Value.Rows {
		panic("autodiff: MulColBroadcast alpha must be E×1 matching x rows")
	}
	val := t.take(x.Value.Rows, x.Value.Cols, false)
	for i := 0; i < val.Rows; i++ {
		a := alpha.Value.Data[i]
		xrow := x.Value.Row(i)
		vrow := val.Row(i)
		for j, v := range xrow {
			vrow[j] = a * v
		}
	}
	return t.add(opMulColBroadcast, val, x, alpha)
}

// SegmentSoftmax computes softmax over groups of entries of the E×1 column
// scores: entries sharing seg[i] form one softmax group (attention
// normalization over each node's edge list). numSegments bounds seg values.
func SegmentSoftmax(scores *Node, seg []int32, numSegments int) *Node {
	if scores.Value.Cols != 1 || len(seg) != scores.Value.Rows {
		panic("autodiff: SegmentSoftmax wants E×1 scores with matching seg")
	}
	e := len(seg)
	t := scores.tape
	val := t.take(e, 1, false)
	// Stable per-segment softmax: subtract per-segment max. Scratch comes
	// from the tape pool so repeated passes on a reset tape don't allocate.
	maxes := t.take(numSegments, 1, false)
	for i := range maxes.Data {
		maxes.Data[i] = negInf
	}
	for i := 0; i < e; i++ {
		if v := scores.Value.Data[i]; v > maxes.Data[seg[i]] {
			maxes.Data[seg[i]] = v
		}
	}
	sums := t.take(numSegments, 1, true)
	for i := 0; i < e; i++ {
		ex := exp(scores.Value.Data[i] - maxes.Data[seg[i]])
		val.Data[i] = ex
		sums.Data[seg[i]] += ex
	}
	for i := 0; i < e; i++ {
		val.Data[i] /= sums.Data[seg[i]]
	}
	out := t.add(opSegmentSoftmax, val, scores, nil)
	out.idx = seg
	out.n = numSegments
	return out
}

var negInf = math.Inf(-1)

// exp clamps its argument to avoid overflow on pathological attention scores.
func exp(x float64) float64 {
	if x > 700 {
		x = 700
	}
	return math.Exp(x)
}
