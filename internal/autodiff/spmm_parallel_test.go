package autodiff

import (
	"math/rand"
	"testing"

	"privim/internal/parallel"
	"privim/internal/tensor"
)

// bigSparse builds a sparse matrix large enough to cross the SpMM
// parallel threshold (entries × cols ≥ spmmParallelWork).
func bigSparse(n, deg int, rng *rand.Rand) *SparseMat {
	var dst, src []int32
	var w []float64
	for u := 0; u < n; u++ {
		for d := 0; d < deg; d++ {
			dst = append(dst, int32(u))
			src = append(src, int32(rng.Intn(n)))
			w = append(w, rng.Float64())
		}
	}
	return NewSparse(n, n, dst, src, w)
}

// TestSpMMParallelBitExact pins forward and backward SpMM to exact
// float64 equality between the serial streaming loop and the row-grouped
// parallel path at several worker counts.
func TestSpMMParallelBitExact(t *testing.T) {
	defer parallel.SetLimit(0)
	rng := rand.New(rand.NewSource(11))
	n, cols := 1200, 16
	a := bigSparse(n, 8, rng)
	if len(a.W)*cols < spmmParallelWork {
		t.Fatalf("test operand below parallel crossover: %d", len(a.W)*cols)
	}
	x := tensor.New(n, cols)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	grad := tensor.New(n, cols)
	for i := range grad.Data {
		grad.Data[i] = rng.NormFloat64()
	}

	parallel.SetLimit(1)
	fwdSerial := tensor.New(n, cols)
	spmmForward(a, x, fwdSerial)
	bwdSerial := tensor.New(n, cols)
	spmmBackward(a, grad, bwdSerial)

	for _, workers := range []int{2, 4, 9} {
		parallel.SetLimit(workers)
		fwd := tensor.New(n, cols)
		spmmForward(a, x, fwd)
		bwd := tensor.New(n, cols)
		spmmBackward(a, grad, bwd)
		for i := range fwdSerial.Data {
			if fwd.Data[i] != fwdSerial.Data[i] {
				t.Fatalf("workers=%d forward element %d: %v != %v", workers, i, fwd.Data[i], fwdSerial.Data[i])
			}
		}
		for i := range bwdSerial.Data {
			if bwd.Data[i] != bwdSerial.Data[i] {
				t.Fatalf("workers=%d backward element %d: %v != %v", workers, i, bwd.Data[i], bwdSerial.Data[i])
			}
		}
	}
}

// TestSpMMGroupsPartitionEntries checks the lazy row-grouping is a
// stable partition of the entry indices.
func TestSpMMGroupsPartitionEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := bigSparse(50, 3, rng)
	byDst, bySrc := a.groups()
	for _, g := range []rowGroup{byDst, bySrc} {
		if len(g.perm) != len(a.W) {
			t.Fatalf("group perm covers %d of %d entries", len(g.perm), len(a.W))
		}
		seen := make([]bool, len(a.W))
		for _, k := range g.perm {
			if seen[k] {
				t.Fatalf("entry %d appears twice", k)
			}
			seen[k] = true
		}
	}
	// Stability: within a destination row, entries keep ascending order.
	for d := 0; d < a.NumRows; d++ {
		prev := int32(-1)
		for _, k := range byDst.perm[byDst.start[d]:byDst.start[d+1]] {
			if a.Dst[k] != int32(d) {
				t.Fatalf("entry %d in wrong bucket", k)
			}
			if k <= prev {
				t.Fatalf("bucket %d not in original order", d)
			}
			prev = k
		}
	}
}

// TestSpMMViaTapeMatchesDense cross-checks the parallel SpMM against a
// dense matmul on a crossover-sized operand, through the public tape API.
func TestSpMMViaTapeMatchesDense(t *testing.T) {
	defer parallel.SetLimit(0)
	parallel.SetLimit(4)
	rng := rand.New(rand.NewSource(13))
	n, cols := 600, 8
	a := bigSparse(n, 14, rng)
	if len(a.W)*cols < spmmParallelWork {
		t.Fatalf("operand below crossover")
	}
	dense := tensor.New(n, n)
	for k := range a.Dst {
		dense.Data[int(a.Dst[k])*n+int(a.Src[k])] += a.W[k]
	}
	xv := tensor.New(n, cols)
	for i := range xv.Data {
		xv.Data[i] = rng.NormFloat64()
	}
	tp := NewTape()
	x := tp.Leaf(xv)
	out := SpMM(a, x)
	want := tensor.MatMul(dense, xv)
	if !tensor.Equal(out.Value, want, 1e-9) {
		t.Fatal("parallel SpMM diverges from dense reference")
	}
}
