package autodiff

import (
	"testing"

	"privim/internal/tensor"
)

// pass runs a small multi-op forward/backward on tp and returns the loss
// value and the gradient of w.
func pass(tp *Tape, wMat, xMat *tensor.Matrix, adj *SparseMat) (float64, []float64) {
	w := tp.Leaf(wMat)
	x := tp.Leaf(xMat)
	h := MatMul(x, w)
	h = ReLU(AddScalar(h, 0.1))
	h = SpMM(adj, h)
	s := Sigmoid(h)
	loss := Mean(Mul(s, OneMinus(s)))
	tp.Backward(loss)
	grad := make([]float64, len(w.Grad.Data))
	copy(grad, w.Grad.Data)
	return loss.Value.Data[0], grad
}

func testOperands() (*tensor.Matrix, *tensor.Matrix, *SparseMat) {
	wMat := tensor.New(3, 2)
	xMat := tensor.New(4, 3)
	for i := range wMat.Data {
		wMat.Data[i] = 0.3*float64(i) - 0.5
	}
	for i := range xMat.Data {
		xMat.Data[i] = 0.1*float64(i) - 0.4
	}
	adj := NewSparse(4, 4,
		[]int32{0, 1, 2, 3, 0},
		[]int32{1, 2, 3, 0, 2},
		[]float64{0.5, 0.25, 1, 0.75, 0.1})
	return wMat, xMat, adj
}

func TestTapeResetReusesBitIdentically(t *testing.T) {
	wMat, xMat, adj := testOperands()

	fresh := NewTape()
	wantLoss, wantGrad := pass(fresh, wMat, xMat, adj)

	reused := NewTape()
	for rep := 0; rep < 5; rep++ {
		reused.Reset()
		loss, grad := pass(reused, wMat, xMat, adj)
		if loss != wantLoss {
			t.Fatalf("rep %d: loss %v != fresh-tape loss %v", rep, loss, wantLoss)
		}
		for i := range grad {
			if grad[i] != wantGrad[i] {
				t.Fatalf("rep %d: grad[%d] = %v, want %v", rep, i, grad[i], wantGrad[i])
			}
		}
	}
}

func TestTapeResetSteadyStateZeroAlloc(t *testing.T) {
	wMat, xMat, adj := testOperands()
	tp := NewTape()
	// Warm up: first pass grows the node arena and matrix pool. Two passes
	// because Backward takes gradient + scratch buffers beyond the forward
	// footprint.
	for i := 0; i < 2; i++ {
		tp.Reset()
		w := tp.Leaf(wMat)
		x := tp.Leaf(xMat)
		h := SpMM(adj, ReLU(MatMul(x, w)))
		tp.Backward(Mean(Sigmoid(h)))
	}
	allocs := testing.AllocsPerRun(50, func() {
		tp.Reset()
		w := tp.Leaf(wMat)
		x := tp.Leaf(xMat)
		h := SpMM(adj, ReLU(MatMul(x, w)))
		tp.Backward(Mean(Sigmoid(h)))
	})
	if allocs != 0 {
		t.Fatalf("steady-state forward/backward on a reset tape allocates %.1f/op, want 0", allocs)
	}
}
