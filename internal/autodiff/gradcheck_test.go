package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"privim/internal/tensor"
)

// checkGrad verifies analytical gradients against central finite differences
// for a scalar-valued function of the listed input matrices. build must
// construct the computation from fresh leaves each call.
func checkGrad(t *testing.T, name string, inputs []*tensor.Matrix, build func(tp *Tape, leaves []*Node) *Node) {
	t.Helper()
	const eps = 1e-6
	const tol = 1e-4

	// Analytical pass.
	tp := NewTape()
	leaves := make([]*Node, len(inputs))
	for i, m := range inputs {
		leaves[i] = tp.Leaf(m.Clone())
	}
	out := build(tp, leaves)
	tp.Backward(out)

	eval := func() float64 {
		tp2 := NewTape()
		l2 := make([]*Node, len(inputs))
		for i, m := range inputs {
			l2[i] = tp2.Leaf(m.Clone())
		}
		return build(tp2, l2).Value.Data[0]
	}

	for i, m := range inputs {
		if leaves[i].Grad == nil {
			t.Fatalf("%s: input %d received no gradient", name, i)
		}
		for k := range m.Data {
			orig := m.Data[k]
			m.Data[k] = orig + eps
			fp := eval()
			m.Data[k] = orig - eps
			fm := eval()
			m.Data[k] = orig
			numeric := (fp - fm) / (2 * eps)
			analytic := leaves[i].Grad.Data[k]
			if diff := math.Abs(numeric - analytic); diff > tol*(1+math.Abs(numeric)) {
				t.Errorf("%s: input %d elem %d: analytic %v vs numeric %v", name, i, k, analytic, numeric)
			}
		}
	}
}

func randMat(rows, cols int, rng *rand.Rand) *tensor.Matrix {
	m := tensor.New(rows, cols)
	m.RandNormal(1, rng)
	return m
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	checkGrad(t, "MatMul", []*tensor.Matrix{randMat(3, 4, rng), randMat(4, 2, rng)},
		func(tp *Tape, l []*Node) *Node { return Sum(MatMul(l[0], l[1])) })
}

func TestGradAddSubMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randMat(2, 3, rng), randMat(2, 3, rng)
	checkGrad(t, "Add", []*tensor.Matrix{a, b},
		func(tp *Tape, l []*Node) *Node { return Sum(Mul(Add(l[0], l[1]), l[1])) })
	checkGrad(t, "Sub", []*tensor.Matrix{a, b},
		func(tp *Tape, l []*Node) *Node { return Sum(Mul(Sub(l[0], l[1]), l[0])) })
}

func TestGradScaleAddScalarOneMinus(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(2, 2, rng)
	checkGrad(t, "Scale", []*tensor.Matrix{a},
		func(tp *Tape, l []*Node) *Node { return Sum(Scale(Mul(l[0], l[0]), 2.5)) })
	checkGrad(t, "AddScalar", []*tensor.Matrix{a},
		func(tp *Tape, l []*Node) *Node { return Sum(Mul(AddScalar(l[0], 3), l[0])) })
	checkGrad(t, "OneMinus", []*tensor.Matrix{a},
		func(tp *Tape, l []*Node) *Node { return Sum(Mul(OneMinus(l[0]), OneMinus(l[0]))) })
}

func TestGradRowBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	checkGrad(t, "AddRowBroadcast", []*tensor.Matrix{randMat(3, 2, rng), randMat(1, 2, rng)},
		func(tp *Tape, l []*Node) *Node {
			return Sum(Mul(AddRowBroadcast(l[0], l[1]), AddRowBroadcast(l[0], l[1])))
		})
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Shift away from the ReLU kink to keep finite differences valid.
	a := randMat(3, 3, rng)
	for i := range a.Data {
		if math.Abs(a.Data[i]) < 0.05 {
			a.Data[i] = 0.1
		}
	}
	checkGrad(t, "ReLU", []*tensor.Matrix{a},
		func(tp *Tape, l []*Node) *Node { return Sum(Mul(ReLU(l[0]), l[0])) })
	checkGrad(t, "LeakyReLU", []*tensor.Matrix{a},
		func(tp *Tape, l []*Node) *Node { return Sum(Mul(LeakyReLU(l[0], 0.2), l[0])) })
	checkGrad(t, "Sigmoid", []*tensor.Matrix{a},
		func(tp *Tape, l []*Node) *Node { return Sum(Mul(Sigmoid(l[0]), l[0])) })
	checkGrad(t, "Tanh", []*tensor.Matrix{a},
		func(tp *Tape, l []*Node) *Node { return Sum(Mul(Tanh(l[0]), l[0])) })
}

func TestGradExpLog(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randMat(2, 3, rng)
	checkGrad(t, "Exp", []*tensor.Matrix{a},
		func(tp *Tape, l []*Node) *Node { return Sum(Mul(Exp(l[0]), l[0])) })
	// Log needs strictly positive inputs away from the clamp floor.
	pos := randMat(2, 3, rng)
	for i := range pos.Data {
		pos.Data[i] = math.Abs(pos.Data[i]) + 0.5
	}
	checkGrad(t, "Log", []*tensor.Matrix{pos},
		func(tp *Tape, l []*Node) *Node { return Sum(Mul(Log(l[0]), l[0])) })
}

func TestLogClampsAtFloor(t *testing.T) {
	tp := NewTape()
	x := tp.Leaf(tensor.FromSlice(1, 2, []float64{0, -5}))
	out := Sum(Log(x))
	tp.Backward(out)
	if math.IsInf(out.Value.Data[0], 0) || math.IsNaN(out.Value.Data[0]) {
		t.Fatalf("Log at 0 produced %v", out.Value.Data[0])
	}
	for i, g := range x.Grad.Data {
		if g != 0 {
			t.Fatalf("grad[%d] = %v below floor, want 0", i, g)
		}
	}
}

func TestGradMean(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	checkGrad(t, "Mean", []*tensor.Matrix{randMat(4, 2, rng)},
		func(tp *Tape, l []*Node) *Node { return Mean(Mul(l[0], l[0])) })
}

func TestGradConcatCols(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checkGrad(t, "ConcatCols", []*tensor.Matrix{randMat(3, 2, rng), randMat(3, 4, rng)},
		func(tp *Tape, l []*Node) *Node {
			c := ConcatCols(l[0], l[1])
			return Sum(Mul(c, c))
		})
}

func TestGradSpMM(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sp := NewSparse(3, 4,
		[]int32{0, 0, 1, 2, 2},
		[]int32{1, 3, 0, 2, 3},
		[]float64{0.5, 1.5, -1, 2, 0.25})
	checkGrad(t, "SpMM", []*tensor.Matrix{randMat(4, 3, rng)},
		func(tp *Tape, l []*Node) *Node {
			y := SpMM(sp, l[0])
			return Sum(Mul(y, y))
		})
}

func TestGradGatherScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	idx := []int32{2, 0, 2, 1}
	checkGrad(t, "GatherRows", []*tensor.Matrix{randMat(3, 2, rng)},
		func(tp *Tape, l []*Node) *Node {
			g := GatherRows(l[0], idx)
			return Sum(Mul(g, g))
		})
	checkGrad(t, "ScatterAddRows", []*tensor.Matrix{randMat(4, 2, rng)},
		func(tp *Tape, l []*Node) *Node {
			s := ScatterAddRows(l[0], idx, 3)
			return Sum(Mul(s, s))
		})
}

func TestGradMulColBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	checkGrad(t, "MulColBroadcast", []*tensor.Matrix{randMat(4, 3, rng), randMat(4, 1, rng)},
		func(tp *Tape, l []*Node) *Node {
			y := MulColBroadcast(l[0], l[1])
			return Sum(Mul(y, y))
		})
}

func TestGradSegmentSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seg := []int32{0, 0, 1, 1, 1, 2}
	checkGrad(t, "SegmentSoftmax", []*tensor.Matrix{randMat(6, 1, rng), randMat(6, 1, rng)},
		func(tp *Tape, l []*Node) *Node {
			a := SegmentSoftmax(l[0], seg, 3)
			return Sum(Mul(a, l[1]))
		})
}

func TestGradComposite_GATStyle(t *testing.T) {
	// End-to-end: a miniature attention layer exercising gather, concat,
	// leaky relu, segment softmax, weighting, and scatter in one graph.
	rng := rand.New(rand.NewSource(12))
	dst := []int32{0, 0, 1, 2, 2, 2}
	src := []int32{1, 2, 0, 0, 1, 2}
	x := randMat(3, 2, rng)
	attn := randMat(4, 1, rng) // attention vector over concat dims
	checkGrad(t, "GATStyle", []*tensor.Matrix{x, attn},
		func(tp *Tape, l []*Node) *Node {
			hd := GatherRows(l[0], dst)
			hs := GatherRows(l[0], src)
			cat := ConcatCols(hd, hs)       // E×4
			scores := MatMul(cat, l[1])     // E×1
			scores = LeakyReLU(scores, 0.2) //
			alpha := SegmentSoftmax(scores, dst, 3)
			msg := MulColBroadcast(hs, alpha)  // E×2
			agg := ScatterAddRows(msg, dst, 3) // 3×2
			return Sum(Mul(agg, agg))
		})
}

func TestBackwardPanics(t *testing.T) {
	tp := NewTape()
	m := tp.Leaf(tensor.New(2, 2))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for non-scalar Backward")
			}
		}()
		tp.Backward(m)
	}()

	tp2 := NewTape()
	s := Sum(tp2.Leaf(tensor.New(1, 1)))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for cross-tape Backward")
			}
		}()
		tp.Backward(s)
	}()
}

func TestMixedTapesPanic(t *testing.T) {
	t1, t2 := NewTape(), NewTape()
	a := t1.Leaf(tensor.New(1, 1))
	b := t2.Leaf(tensor.New(1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic mixing tapes")
		}
	}()
	Add(a, b)
}

func TestGradAccumulatesOverReuse(t *testing.T) {
	// y = x + x ⇒ dy/dx = 2 for every element.
	tp := NewTape()
	x := tp.Leaf(tensor.FromSlice(1, 2, []float64{3, 4}))
	out := Sum(Add(x, x))
	tp.Backward(out)
	for i, g := range x.Grad.Data {
		if g != 2 {
			t.Fatalf("grad[%d] = %v, want 2 (reuse must accumulate)", i, g)
		}
	}
}

func TestSparseConstructors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range sparse entry")
		}
	}()
	NewSparse(2, 2, []int32{5}, []int32{0}, []float64{1})
}

func TestTapeLen(t *testing.T) {
	tp := NewTape()
	a := tp.Leaf(tensor.New(1, 1))
	_ = Sigmoid(a)
	if tp.Len() != 2 {
		t.Fatalf("tape len = %d, want 2", tp.Len())
	}
}
