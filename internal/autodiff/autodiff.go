// Package autodiff implements reverse-mode automatic differentiation over
// dense matrices, providing exactly the operator set needed to express
// message-passing GNNs: dense GEMM, sparse-adjacency multiplication, row
// gather/scatter, segment softmax (attention over edge lists), elementwise
// nonlinearities, and reductions.
//
// Differentiation is tape-based: every operation appends a node to a Tape,
// and Backward walks the tape in reverse creation order (a valid topological
// order by construction). Gradients are exact; the test suite verifies every
// operator against central finite differences.
package autodiff

import (
	"fmt"
	"math"

	"privim/internal/tensor"
)

// Tape records the computation graph for one forward pass. Tapes are cheap;
// create a fresh one per training example and discard it after Backward.
// Nodes are allocated from an internal arena so a GNN forward/backward
// pass costs a handful of allocations instead of one per operation.
type Tape struct {
	nodes []*Node
	arena []Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Len returns the number of recorded nodes (useful in tests).
func (t *Tape) Len() int { return len(t.nodes) }

// alloc hands out a zeroed node from the arena, growing it chunk-wise.
func (t *Tape) alloc() *Node {
	if len(t.arena) == 0 {
		t.arena = make([]Node, 64)
	}
	n := &t.arena[0]
	t.arena = t.arena[1:]
	return n
}

// Node is one value in the computation graph.
type Node struct {
	// Value holds the forward result. Grad accumulates ∂output/∂Value during
	// Backward; it is nil until the node participates in a backward pass.
	Value *tensor.Matrix
	Grad  *tensor.Matrix

	tape     *Tape
	backward func()
	isLeaf   bool
}

func (t *Tape) add(val *tensor.Matrix, back func()) *Node {
	n := t.alloc()
	n.Value = val
	n.tape = t
	n.backward = back
	t.nodes = append(t.nodes, n)
	return n
}

// Leaf introduces an input matrix onto the tape. Its gradient is available
// after Backward (used both for parameters and, in sensitivity analyses,
// inputs). The matrix is used by reference: callers must not mutate it while
// the tape is live.
func (t *Tape) Leaf(m *tensor.Matrix) *Node {
	n := t.add(m, nil)
	n.isLeaf = true
	return n
}

// Tape returns the tape the node is recorded on.
func (n *Node) Tape() *Tape { return n.tape }

// grad returns the node's gradient accumulator, allocating on first use.
func (n *Node) grad() *tensor.Matrix {
	if n.Grad == nil {
		n.Grad = tensor.New(n.Value.Rows, n.Value.Cols)
	}
	return n.Grad
}

// Backward runs reverse-mode differentiation from out, which must be a 1×1
// scalar node on this tape. Gradients accumulate in each node's Grad field.
func (t *Tape) Backward(out *Node) {
	if out.tape != t {
		panic("autodiff: Backward on node from another tape")
	}
	if out.Value.Rows != 1 || out.Value.Cols != 1 {
		panic(fmt.Sprintf("autodiff: Backward requires scalar output, got %dx%d", out.Value.Rows, out.Value.Cols))
	}
	out.grad().Data[0] = 1
	// Reverse creation order is a topological order of the DAG.
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.Grad != nil && n.backward != nil {
			n.backward()
		}
	}
}

func sameTape(op string, nodes ...*Node) *Tape {
	t := nodes[0].tape
	for _, n := range nodes[1:] {
		if n.tape != t {
			panic("autodiff: " + op + " mixes tapes")
		}
	}
	return t
}

// MatMul returns a×b.
func MatMul(a, b *Node) *Node {
	t := sameTape("MatMul", a, b)
	out := t.add(tensor.MatMul(a.Value, b.Value), nil)
	out.backward = func() {
		// dA += dOut · Bᵀ ; dB += Aᵀ · dOut
		tensor.MatMulInto(a.grad(), out.Grad, tensor.Transpose(b.Value), true)
		tensor.MatMulInto(b.grad(), tensor.Transpose(a.Value), out.Grad, true)
	}
	return out
}

// Add returns a+b elementwise.
func Add(a, b *Node) *Node {
	t := sameTape("Add", a, b)
	out := t.add(tensor.Add(a.Value, b.Value), nil)
	out.backward = func() {
		tensor.AXPY(a.grad(), 1, out.Grad)
		tensor.AXPY(b.grad(), 1, out.Grad)
	}
	return out
}

// Sub returns a−b elementwise.
func Sub(a, b *Node) *Node {
	t := sameTape("Sub", a, b)
	out := t.add(tensor.Sub(a.Value, b.Value), nil)
	out.backward = func() {
		tensor.AXPY(a.grad(), 1, out.Grad)
		tensor.AXPY(b.grad(), -1, out.Grad)
	}
	return out
}

// Mul returns the Hadamard product a∘b.
func Mul(a, b *Node) *Node {
	t := sameTape("Mul", a, b)
	out := t.add(tensor.Mul(a.Value, b.Value), nil)
	out.backward = func() {
		ga, gb := a.grad(), b.grad()
		for i, g := range out.Grad.Data {
			ga.Data[i] += g * b.Value.Data[i]
			gb.Data[i] += g * a.Value.Data[i]
		}
	}
	return out
}

// Scale returns s·a for a constant scalar s.
func Scale(a *Node, s float64) *Node {
	out := a.tape.add(tensor.Scale(a.Value, s), nil)
	out.backward = func() { tensor.AXPY(a.grad(), s, out.Grad) }
	return out
}

// AddScalar returns a+s elementwise for a constant scalar s.
func AddScalar(a *Node, s float64) *Node {
	out := a.tape.add(tensor.Apply(a.Value, func(v float64) float64 { return v + s }), nil)
	out.backward = func() { tensor.AXPY(a.grad(), 1, out.Grad) }
	return out
}

// OneMinus returns 1−a elementwise (convenience for the IM loss's survival
// probabilities).
func OneMinus(a *Node) *Node {
	out := a.tape.add(tensor.Apply(a.Value, func(v float64) float64 { return 1 - v }), nil)
	out.backward = func() { tensor.AXPY(a.grad(), -1, out.Grad) }
	return out
}

// AddRowBroadcast returns a + bias where bias is 1×cols and is added to
// every row of a (the standard linear-layer bias).
func AddRowBroadcast(a, bias *Node) *Node {
	t := sameTape("AddRowBroadcast", a, bias)
	if bias.Value.Rows != 1 || bias.Value.Cols != a.Value.Cols {
		panic(fmt.Sprintf("autodiff: AddRowBroadcast bias %dx%d vs a %dx%d",
			bias.Value.Rows, bias.Value.Cols, a.Value.Rows, a.Value.Cols))
	}
	val := a.Value.Clone()
	for i := 0; i < val.Rows; i++ {
		row := val.Row(i)
		for j, b := range bias.Value.Data {
			row[j] += b
		}
	}
	out := t.add(val, nil)
	out.backward = func() {
		tensor.AXPY(a.grad(), 1, out.Grad)
		gb := bias.grad()
		for i := 0; i < out.Grad.Rows; i++ {
			row := out.Grad.Row(i)
			for j, g := range row {
				gb.Data[j] += g
			}
		}
	}
	return out
}

// ReLU returns max(0, a) elementwise.
func ReLU(a *Node) *Node {
	out := a.tape.add(tensor.Apply(a.Value, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	}), nil)
	out.backward = func() {
		ga := a.grad()
		for i, g := range out.Grad.Data {
			if a.Value.Data[i] > 0 {
				ga.Data[i] += g
			}
		}
	}
	return out
}

// LeakyReLU returns a for a>0 and alpha·a otherwise.
func LeakyReLU(a *Node, alpha float64) *Node {
	out := a.tape.add(tensor.Apply(a.Value, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return alpha * v
	}), nil)
	out.backward = func() {
		ga := a.grad()
		for i, g := range out.Grad.Data {
			if a.Value.Data[i] > 0 {
				ga.Data[i] += g
			} else {
				ga.Data[i] += alpha * g
			}
		}
	}
	return out
}

// Sigmoid returns 1/(1+e^{−a}) elementwise.
func Sigmoid(a *Node) *Node {
	out := a.tape.add(tensor.Apply(a.Value, sigmoid), nil)
	out.backward = func() {
		ga := a.grad()
		for i, g := range out.Grad.Data {
			s := out.Value.Data[i]
			ga.Data[i] += g * s * (1 - s)
		}
	}
	return out
}

func sigmoid(v float64) float64 {
	if v >= 0 {
		return 1 / (1 + math.Exp(-v))
	}
	e := math.Exp(v)
	return e / (1 + e)
}

// Exp returns e^a elementwise.
func Exp(a *Node) *Node {
	out := a.tape.add(tensor.Apply(a.Value, math.Exp), nil)
	out.backward = func() {
		ga := a.grad()
		for i, g := range out.Grad.Data {
			ga.Data[i] += g * out.Value.Data[i]
		}
	}
	return out
}

// Log returns ln(max(a, floor)) elementwise; the floor (1e-12) keeps the
// gradient finite when probabilities touch 0.
func Log(a *Node) *Node {
	const floor = 1e-12
	clamped := tensor.Apply(a.Value, func(v float64) float64 {
		if v < floor {
			return floor
		}
		return v
	})
	out := a.tape.add(tensor.Apply(clamped, math.Log), nil)
	out.backward = func() {
		ga := a.grad()
		for i, g := range out.Grad.Data {
			if a.Value.Data[i] >= floor {
				ga.Data[i] += g / a.Value.Data[i]
			}
			// Below the floor the function is constant: zero gradient.
		}
	}
	return out
}

// Tanh returns tanh(a) elementwise.
func Tanh(a *Node) *Node {
	out := a.tape.add(tensor.Apply(a.Value, math.Tanh), nil)
	out.backward = func() {
		ga := a.grad()
		for i, g := range out.Grad.Data {
			th := out.Value.Data[i]
			ga.Data[i] += g * (1 - th*th)
		}
	}
	return out
}

// Sum reduces a to a 1×1 scalar Σa.
func Sum(a *Node) *Node {
	val := tensor.New(1, 1)
	val.Data[0] = a.Value.Sum()
	out := a.tape.add(val, nil)
	out.backward = func() {
		g := out.Grad.Data[0]
		ga := a.grad()
		for i := range ga.Data {
			ga.Data[i] += g
		}
	}
	return out
}

// Mean reduces a to a 1×1 scalar (Σa)/len(a).
func Mean(a *Node) *Node {
	n := float64(len(a.Value.Data))
	return Scale(Sum(a), 1/n)
}

// ConcatCols returns [a | b]: rows must match.
func ConcatCols(a, b *Node) *Node {
	t := sameTape("ConcatCols", a, b)
	if a.Value.Rows != b.Value.Rows {
		panic("autodiff: ConcatCols row mismatch")
	}
	rows, ca, cb := a.Value.Rows, a.Value.Cols, b.Value.Cols
	val := tensor.New(rows, ca+cb)
	for i := 0; i < rows; i++ {
		copy(val.Row(i)[:ca], a.Value.Row(i))
		copy(val.Row(i)[ca:], b.Value.Row(i))
	}
	out := t.add(val, nil)
	out.backward = func() {
		ga, gb := a.grad(), b.grad()
		for i := 0; i < rows; i++ {
			grow := out.Grad.Row(i)
			for j := 0; j < ca; j++ {
				ga.Row(i)[j] += grow[j]
			}
			for j := 0; j < cb; j++ {
				gb.Row(i)[j] += grow[ca+j]
			}
		}
	}
	return out
}
