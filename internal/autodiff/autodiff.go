// Package autodiff implements reverse-mode automatic differentiation over
// dense matrices, providing exactly the operator set needed to express
// message-passing GNNs: dense GEMM, sparse-adjacency multiplication, row
// gather/scatter, segment softmax (attention over edge lists), elementwise
// nonlinearities, and reductions.
//
// Differentiation is tape-based: every operation appends a node to a Tape,
// and Backward walks the tape in reverse creation order (a valid topological
// order by construction). Gradients are exact; the test suite verifies every
// operator against central finite differences.
//
// Nodes carry an opcode plus operand references instead of per-op backward
// closures, and every intermediate matrix (values, gradients, op scratch) is
// drawn from a tape-owned free pool. Tape.Reset rewinds the node arena and
// recycles the matrices, so a steady-state forward/backward pass on a reused
// tape allocates nothing: per-sample DP-SGD loops reset one tape per worker
// instead of building ~10³ matrices per example. Matrices handed out by a
// tape are owned by it — copy results out before Reset.
package autodiff

import (
	"fmt"
	"math"

	"privim/internal/tensor"
)

// opcode identifies how a node was produced, which determines its backward
// rule. Operand references live in Node.x/y plus op-specific fields.
type opcode uint8

const (
	opLeaf opcode = iota
	opMatMul
	opAdd
	opSub
	opMul
	opScale
	opAddScalar
	opOneMinus
	opAddRowBroadcast
	opReLU
	opLeakyReLU
	opSigmoid
	opExp
	opLog
	opTanh
	opSum
	opConcatCols
	opSpMM
	opGatherRows
	opScatterAddRows
	opMulColBroadcast
	opSegmentSoftmax
)

// arenaChunk is the node-arena block size: one GNN forward/backward pass
// records a few hundred nodes, so a handful of blocks cover it.
const arenaChunk = 128

// Tape records the computation graph for one forward pass. A fresh tape is
// cheap, but the intended steady-state pattern is one long-lived tape per
// worker with Reset between examples: Reset rewinds the node arena and
// returns every tape-allocated matrix to an internal free pool, so repeated
// passes of the same shape allocate nothing.
type Tape struct {
	nodes  []*Node
	blocks [][]Node // node arena, reused across Reset
	block  int      // current block index
	used   int      // nodes handed out of blocks[block]

	owned []*tensor.Matrix // matrices handed out since the last Reset
	free  []*tensor.Matrix // recycled matrices available to take
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Len returns the number of recorded nodes (useful in tests).
func (t *Tape) Len() int { return len(t.nodes) }

// Reset rewinds the tape for a fresh forward pass, recycling every node and
// every matrix the tape allocated (values, gradients, op scratch). All Nodes
// and tape-owned matrices from the previous pass become invalid: anything
// that must survive — losses, scores, gradients — has to be copied out
// first (nn.Collect does). Leaf matrices are caller-owned and untouched.
func (t *Tape) Reset() {
	t.nodes = t.nodes[:0]
	t.block, t.used = 0, 0
	t.free = append(t.free, t.owned...)
	t.owned = t.owned[:0]
}

// alloc hands out a zeroed node from the arena, growing it block-wise.
func (t *Tape) alloc() *Node {
	if t.block == len(t.blocks) {
		t.blocks = append(t.blocks, make([]Node, arenaChunk))
	}
	blk := t.blocks[t.block]
	n := &blk[t.used]
	t.used++
	if t.used == len(blk) {
		t.block++
		t.used = 0
	}
	*n = Node{}
	return n
}

// take hands out a rows×cols matrix from the tape's free pool, allocating
// only when no recycled buffer is large enough. The matrix belongs to the
// tape and is reclaimed by Reset. zero controls whether the contents are
// cleared (required for accumulation targets; skipped for overwrite fills).
func (t *Tape) take(rows, cols int, zero bool) *tensor.Matrix {
	need := rows * cols
	for i := len(t.free) - 1; i >= 0; i-- {
		m := t.free[i]
		if cap(m.Data) >= need {
			last := len(t.free) - 1
			t.free[i] = t.free[last]
			t.free[last] = nil
			t.free = t.free[:last]
			m.Rows, m.Cols = rows, cols
			m.Data = m.Data[:need]
			if zero {
				for j := range m.Data {
					m.Data[j] = 0
				}
			}
			t.owned = append(t.owned, m)
			return m
		}
	}
	m := tensor.New(rows, cols) // fresh buffers come back zeroed
	t.owned = append(t.owned, m)
	return m
}

// Node is one value in the computation graph.
type Node struct {
	// Value holds the forward result. Grad accumulates ∂output/∂Value during
	// Backward; it is nil until the node participates in a backward pass.
	// Both are tape-owned for non-leaf nodes: valid only until Tape.Reset.
	Value *tensor.Matrix
	Grad  *tensor.Matrix

	tape *Tape
	op   opcode
	x, y *Node

	// Op-specific payload (see the opcode's constructor).
	scalar float64    // opScale, opAddScalar, opLeakyReLU
	idx    []int32    // opGatherRows, opScatterAddRows, opSegmentSoftmax seg
	sparse *SparseMat // opSpMM
	n      int        // opSegmentSoftmax numSegments
}

func (t *Tape) add(op opcode, val *tensor.Matrix, x, y *Node) *Node {
	n := t.alloc()
	n.Value = val
	n.tape = t
	n.op = op
	n.x, n.y = x, y
	t.nodes = append(t.nodes, n)
	return n
}

// Leaf introduces an input matrix onto the tape. Its gradient is available
// after Backward (used both for parameters and, in sensitivity analyses,
// inputs). The matrix is used by reference: callers must not mutate it while
// the tape is live.
func (t *Tape) Leaf(m *tensor.Matrix) *Node {
	return t.add(opLeaf, m, nil, nil)
}

// Tape returns the tape the node is recorded on.
func (n *Node) Tape() *Tape { return n.tape }

// grad returns the node's gradient accumulator, allocating on first use.
func (n *Node) grad() *tensor.Matrix {
	if n.Grad == nil {
		n.Grad = n.tape.take(n.Value.Rows, n.Value.Cols, true)
	}
	return n.Grad
}

// Backward runs reverse-mode differentiation from out, which must be a 1×1
// scalar node on this tape. Gradients accumulate in each node's Grad field.
func (t *Tape) Backward(out *Node) {
	if out.tape != t {
		panic("autodiff: Backward on node from another tape")
	}
	if out.Value.Rows != 1 || out.Value.Cols != 1 {
		panic(fmt.Sprintf("autodiff: Backward requires scalar output, got %dx%d", out.Value.Rows, out.Value.Cols))
	}
	out.grad().Data[0] = 1
	// Reverse creation order is a topological order of the DAG.
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.Grad != nil && n.op != opLeaf {
			n.step()
		}
	}
}

// step applies one node's backward rule, accumulating into its operands'
// gradients. Dispatch is a switch over the opcode rather than a stored
// closure so recording an op never allocates.
func (n *Node) step() {
	switch n.op {
	case opMatMul:
		// dA += dOut·Bᵀ ; dB += Aᵀ·dOut — transpose-free kernels.
		tensor.MatMulNTInto(n.x.grad(), n.Grad, n.y.Value)
		tensor.MatMulTNInto(n.y.grad(), n.x.Value, n.Grad)
	case opAdd:
		tensor.AXPY(n.x.grad(), 1, n.Grad)
		tensor.AXPY(n.y.grad(), 1, n.Grad)
	case opSub:
		tensor.AXPY(n.x.grad(), 1, n.Grad)
		tensor.AXPY(n.y.grad(), -1, n.Grad)
	case opMul:
		ga, gb := n.x.grad(), n.y.grad()
		av, bv := n.x.Value.Data, n.y.Value.Data
		for i, g := range n.Grad.Data {
			ga.Data[i] += g * bv[i]
			gb.Data[i] += g * av[i]
		}
	case opScale:
		tensor.AXPY(n.x.grad(), n.scalar, n.Grad)
	case opAddScalar:
		tensor.AXPY(n.x.grad(), 1, n.Grad)
	case opOneMinus:
		tensor.AXPY(n.x.grad(), -1, n.Grad)
	case opAddRowBroadcast:
		tensor.AXPY(n.x.grad(), 1, n.Grad)
		gb := n.y.grad()
		for i := 0; i < n.Grad.Rows; i++ {
			row := n.Grad.Row(i)
			for j, g := range row {
				gb.Data[j] += g
			}
		}
	case opReLU:
		ga := n.x.grad()
		xv := n.x.Value.Data
		for i, g := range n.Grad.Data {
			if xv[i] > 0 {
				ga.Data[i] += g
			}
		}
	case opLeakyReLU:
		ga := n.x.grad()
		xv := n.x.Value.Data
		for i, g := range n.Grad.Data {
			if xv[i] > 0 {
				ga.Data[i] += g
			} else {
				ga.Data[i] += n.scalar * g
			}
		}
	case opSigmoid:
		ga := n.x.grad()
		for i, g := range n.Grad.Data {
			s := n.Value.Data[i]
			ga.Data[i] += g * s * (1 - s)
		}
	case opExp:
		ga := n.x.grad()
		for i, g := range n.Grad.Data {
			ga.Data[i] += g * n.Value.Data[i]
		}
	case opLog:
		ga := n.x.grad()
		xv := n.x.Value.Data
		for i, g := range n.Grad.Data {
			if xv[i] >= logFloor {
				ga.Data[i] += g / xv[i]
			}
			// Below the floor the function is constant: zero gradient.
		}
	case opTanh:
		ga := n.x.grad()
		for i, g := range n.Grad.Data {
			th := n.Value.Data[i]
			ga.Data[i] += g * (1 - th*th)
		}
	case opSum:
		g := n.Grad.Data[0]
		ga := n.x.grad()
		for i := range ga.Data {
			ga.Data[i] += g
		}
	case opConcatCols:
		ga, gb := n.x.grad(), n.y.grad()
		ca, cb := n.x.Value.Cols, n.y.Value.Cols
		for i := 0; i < n.Grad.Rows; i++ {
			grow := n.Grad.Row(i)
			arow, brow := ga.Row(i), gb.Row(i)
			for j := 0; j < ca; j++ {
				arow[j] += grow[j]
			}
			for j := 0; j < cb; j++ {
				brow[j] += grow[ca+j]
			}
		}
	case opSpMM:
		spmmBackward(n.sparse, n.Grad, n.x.grad())
	case opGatherRows:
		gx := n.x.grad()
		for i, r := range n.idx {
			grow := n.Grad.Row(i)
			xrow := gx.Row(int(r))
			for j, g := range grow {
				xrow[j] += g
			}
		}
	case opScatterAddRows:
		gx := n.x.grad()
		for i, r := range n.idx {
			grow := n.Grad.Row(int(r))
			xrow := gx.Row(i)
			for j, g := range grow {
				xrow[j] += g
			}
		}
	case opMulColBroadcast:
		gx, ga := n.x.grad(), n.y.grad()
		for i := 0; i < n.Value.Rows; i++ {
			a := n.y.Value.Data[i]
			grow := n.Grad.Row(i)
			xrow := n.x.Value.Row(i)
			gxrow := gx.Row(i)
			dot := 0.0
			for j, g := range grow {
				gxrow[j] += a * g
				dot += g * xrow[j]
			}
			ga.Data[i] += dot
		}
	case opSegmentSoftmax:
		gs := n.x.grad()
		// For each segment: ds_i = a_i (g_i − Σ_k a_k g_k).
		dots := n.tape.take(n.n, 1, true)
		for i, s := range n.idx {
			dots.Data[s] += n.Value.Data[i] * n.Grad.Data[i]
		}
		for i, s := range n.idx {
			gs.Data[i] += n.Value.Data[i] * (n.Grad.Data[i] - dots.Data[s])
		}
	default:
		panic(fmt.Sprintf("autodiff: unknown opcode %d", n.op))
	}
}

func sameTape(op string, nodes ...*Node) *Tape {
	t := nodes[0].tape
	for _, n := range nodes[1:] {
		if n.tape != t {
			panic("autodiff: " + op + " mixes tapes")
		}
	}
	return t
}

// MatMul returns a×b.
func MatMul(a, b *Node) *Node {
	t := sameTape("MatMul", a, b)
	val := t.take(a.Value.Rows, b.Value.Cols, false)
	tensor.MatMulInto(val, a.Value, b.Value, false)
	return t.add(opMatMul, val, a, b)
}

// Add returns a+b elementwise.
func Add(a, b *Node) *Node {
	t := sameTape("Add", a, b)
	val := t.take(a.Value.Rows, a.Value.Cols, false)
	bd := b.Value.Data
	for i, v := range a.Value.Data {
		val.Data[i] = v + bd[i]
	}
	return t.add(opAdd, val, a, b)
}

// Sub returns a−b elementwise.
func Sub(a, b *Node) *Node {
	t := sameTape("Sub", a, b)
	val := t.take(a.Value.Rows, a.Value.Cols, false)
	bd := b.Value.Data
	for i, v := range a.Value.Data {
		val.Data[i] = v - bd[i]
	}
	return t.add(opSub, val, a, b)
}

// Mul returns the Hadamard product a∘b.
func Mul(a, b *Node) *Node {
	t := sameTape("Mul", a, b)
	val := t.take(a.Value.Rows, a.Value.Cols, false)
	bd := b.Value.Data
	for i, v := range a.Value.Data {
		val.Data[i] = v * bd[i]
	}
	return t.add(opMul, val, a, b)
}

// Scale returns s·a for a constant scalar s.
func Scale(a *Node, s float64) *Node {
	val := a.tape.take(a.Value.Rows, a.Value.Cols, false)
	for i, v := range a.Value.Data {
		val.Data[i] = s * v
	}
	out := a.tape.add(opScale, val, a, nil)
	out.scalar = s
	return out
}

// AddScalar returns a+s elementwise for a constant scalar s.
func AddScalar(a *Node, s float64) *Node {
	val := a.tape.take(a.Value.Rows, a.Value.Cols, false)
	for i, v := range a.Value.Data {
		val.Data[i] = v + s
	}
	out := a.tape.add(opAddScalar, val, a, nil)
	out.scalar = s
	return out
}

// OneMinus returns 1−a elementwise (convenience for the IM loss's survival
// probabilities).
func OneMinus(a *Node) *Node {
	val := a.tape.take(a.Value.Rows, a.Value.Cols, false)
	for i, v := range a.Value.Data {
		val.Data[i] = 1 - v
	}
	return a.tape.add(opOneMinus, val, a, nil)
}

// AddRowBroadcast returns a + bias where bias is 1×cols and is added to
// every row of a (the standard linear-layer bias).
func AddRowBroadcast(a, bias *Node) *Node {
	t := sameTape("AddRowBroadcast", a, bias)
	if bias.Value.Rows != 1 || bias.Value.Cols != a.Value.Cols {
		panic(fmt.Sprintf("autodiff: AddRowBroadcast bias %dx%d vs a %dx%d",
			bias.Value.Rows, bias.Value.Cols, a.Value.Rows, a.Value.Cols))
	}
	val := t.take(a.Value.Rows, a.Value.Cols, false)
	bd := bias.Value.Data
	for i := 0; i < val.Rows; i++ {
		arow := a.Value.Row(i)
		vrow := val.Row(i)
		for j, v := range arow {
			vrow[j] = v + bd[j]
		}
	}
	return t.add(opAddRowBroadcast, val, a, bias)
}

// ReLU returns max(0, a) elementwise.
func ReLU(a *Node) *Node {
	val := a.tape.take(a.Value.Rows, a.Value.Cols, false)
	for i, v := range a.Value.Data {
		if v > 0 {
			val.Data[i] = v
		} else {
			val.Data[i] = 0
		}
	}
	return a.tape.add(opReLU, val, a, nil)
}

// LeakyReLU returns a for a>0 and alpha·a otherwise.
func LeakyReLU(a *Node, alpha float64) *Node {
	val := a.tape.take(a.Value.Rows, a.Value.Cols, false)
	for i, v := range a.Value.Data {
		if v > 0 {
			val.Data[i] = v
		} else {
			val.Data[i] = alpha * v
		}
	}
	out := a.tape.add(opLeakyReLU, val, a, nil)
	out.scalar = alpha
	return out
}

// Sigmoid returns 1/(1+e^{−a}) elementwise.
func Sigmoid(a *Node) *Node {
	val := a.tape.take(a.Value.Rows, a.Value.Cols, false)
	for i, v := range a.Value.Data {
		val.Data[i] = sigmoid(v)
	}
	return a.tape.add(opSigmoid, val, a, nil)
}

func sigmoid(v float64) float64 {
	if v >= 0 {
		return 1 / (1 + math.Exp(-v))
	}
	e := math.Exp(v)
	return e / (1 + e)
}

// Exp returns e^a elementwise.
func Exp(a *Node) *Node {
	val := a.tape.take(a.Value.Rows, a.Value.Cols, false)
	for i, v := range a.Value.Data {
		val.Data[i] = math.Exp(v)
	}
	return a.tape.add(opExp, val, a, nil)
}

// logFloor keeps Log's gradient finite when probabilities touch 0.
const logFloor = 1e-12

// Log returns ln(max(a, floor)) elementwise; the floor (1e-12) keeps the
// gradient finite when probabilities touch 0.
func Log(a *Node) *Node {
	val := a.tape.take(a.Value.Rows, a.Value.Cols, false)
	for i, v := range a.Value.Data {
		if v < logFloor {
			v = logFloor
		}
		val.Data[i] = math.Log(v)
	}
	return a.tape.add(opLog, val, a, nil)
}

// Tanh returns tanh(a) elementwise.
func Tanh(a *Node) *Node {
	val := a.tape.take(a.Value.Rows, a.Value.Cols, false)
	for i, v := range a.Value.Data {
		val.Data[i] = math.Tanh(v)
	}
	return a.tape.add(opTanh, val, a, nil)
}

// Sum reduces a to a 1×1 scalar Σa.
func Sum(a *Node) *Node {
	val := a.tape.take(1, 1, false)
	val.Data[0] = a.Value.Sum()
	return a.tape.add(opSum, val, a, nil)
}

// Mean reduces a to a 1×1 scalar (Σa)/len(a).
func Mean(a *Node) *Node {
	n := float64(len(a.Value.Data))
	return Scale(Sum(a), 1/n)
}

// ConcatCols returns [a | b]: rows must match.
func ConcatCols(a, b *Node) *Node {
	t := sameTape("ConcatCols", a, b)
	if a.Value.Rows != b.Value.Rows {
		panic("autodiff: ConcatCols row mismatch")
	}
	rows, ca := a.Value.Rows, a.Value.Cols
	val := t.take(rows, ca+b.Value.Cols, false)
	for i := 0; i < rows; i++ {
		copy(val.Row(i)[:ca], a.Value.Row(i))
		copy(val.Row(i)[ca:], b.Value.Row(i))
	}
	return t.add(opConcatCols, val, a, b)
}
