package autodiff

import (
	"math"
	"testing"

	"privim/internal/graph"
	"privim/internal/tensor"
)

func chainGraph() *graph.Graph {
	g := graph.NewWithNodes(3, true)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(1, 2, 0.25)
	g.AddEdge(0, 2, 1)
	return g
}

func TestInAdjacency(t *testing.T) {
	g := chainGraph()
	a := InAdjacency(g)
	// y = A·x with x = identity-ish column vector picks up in-weights.
	tp := NewTape()
	x := tp.Leaf(tensor.FromSlice(3, 1, []float64{1, 1, 1}))
	y := SpMM(a, x)
	// Node 0 has no in-arcs; node 1 gets 0.5 from node 0; node 2 gets 0.25+1.
	want := []float64{0, 0.5, 1.25}
	for i, w := range want {
		if math.Abs(y.Value.Data[i]-w) > 1e-12 {
			t.Fatalf("InAdjacency aggregate[%d] = %v, want %v", i, y.Value.Data[i], w)
		}
	}
}

func TestOutAdjacency(t *testing.T) {
	g := chainGraph()
	a := OutAdjacency(g)
	tp := NewTape()
	x := tp.Leaf(tensor.FromSlice(3, 1, []float64{1, 1, 1}))
	y := SpMM(a, x)
	// Node 0 sends to 1 (0.5) and 2 (1) => aggregates 1.5 from out-neighbors.
	want := []float64{1.5, 0.25, 0}
	for i, w := range want {
		if math.Abs(y.Value.Data[i]-w) > 1e-12 {
			t.Fatalf("OutAdjacency aggregate[%d] = %v, want %v", i, y.Value.Data[i], w)
		}
	}
}

func TestGCNNormalized(t *testing.T) {
	g := chainGraph()
	a := GCNNormalized(g)
	// Row sums of Â on a constant vector stay bounded by ~1 and are strictly
	// positive thanks to self loops.
	tp := NewTape()
	x := tp.Leaf(tensor.FromSlice(3, 1, []float64{1, 1, 1}))
	y := SpMM(a, x)
	for i := 0; i < 3; i++ {
		v := y.Value.Data[i]
		if v <= 0 || v > 1.5 {
			t.Fatalf("GCN-normalized aggregate[%d] = %v outside (0, 1.5]", i, v)
		}
	}
	// Self-loop weight for node 0 (d̂=1): 1/1 = 1 contribution present.
	found := false
	for k := range a.Dst {
		if a.Dst[k] == 0 && a.Src[k] == 0 {
			found = true
			if a.W[k] != 1 {
				t.Fatalf("self-loop weight %v, want 1 for degree-1 node", a.W[k])
			}
		}
	}
	if !found {
		t.Fatal("missing self loop for node 0")
	}
}

func TestSpMMShapePanic(t *testing.T) {
	sp := NewSparse(2, 2, []int32{0}, []int32{1}, []float64{1})
	tp := NewTape()
	x := tp.Leaf(tensor.New(3, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	SpMM(sp, x)
}

func TestSegmentSoftmaxNormalizes(t *testing.T) {
	tp := NewTape()
	scores := tp.Leaf(tensor.FromSlice(5, 1, []float64{1, 2, 3, -1, 1000}))
	seg := []int32{0, 0, 0, 1, 1}
	a := SegmentSoftmax(scores, seg, 2)
	s0 := a.Value.Data[0] + a.Value.Data[1] + a.Value.Data[2]
	s1 := a.Value.Data[3] + a.Value.Data[4]
	if math.Abs(s0-1) > 1e-12 || math.Abs(s1-1) > 1e-12 {
		t.Fatalf("segment sums %v, %v want 1", s0, s1)
	}
	// Large score must dominate without NaN.
	if a.Value.Data[4] < 0.999 || math.IsNaN(a.Value.Data[4]) {
		t.Fatalf("stability: alpha[4] = %v", a.Value.Data[4])
	}
}
