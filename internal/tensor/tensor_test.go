package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("New(2,3) = %+v", m)
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v", m.At(1, 2))
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 5 {
		t.Fatalf("Row(1) = %v", row)
	}
	row[0] = 9 // Row is a view
	if m.At(1, 0) != 9 {
		t.Fatal("Row must share storage")
	}
}

func TestFromSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestMatMul(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulInto_Accumulate(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := FromSlice(2, 1, []float64{3, 4})
	out := FromSlice(1, 1, []float64{100})
	MatMulInto(out, a, b, true)
	if out.At(0, 0) != 111 {
		t.Fatalf("accumulate got %v, want 111", out.At(0, 0))
	}
	MatMulInto(out, a, b, false)
	if out.At(0, 0) != 11 {
		t.Fatalf("overwrite got %v, want 11", out.At(0, 0))
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// Property: (AB)ᵀ == BᵀAᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := New(4, 5), New(5, 3)
		a.RandNormal(1, rng)
		b.RandNormal(1, rng)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		return Equal(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubMulScale(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	if got := Add(a, b); !Equal(got, FromSlice(2, 2, []float64{6, 8, 10, 12}), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !Equal(got, FromSlice(2, 2, []float64{4, 4, 4, 4}), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b); !Equal(got, FromSlice(2, 2, []float64{5, 12, 21, 32}), 0) {
		t.Fatalf("Mul = %v", got)
	}
	if got := Scale(a, 2); !Equal(got, FromSlice(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Fatalf("Scale = %v", got)
	}
	// Inputs untouched.
	if a.At(0, 0) != 1 || b.At(0, 0) != 5 {
		t.Fatal("binary ops mutated inputs")
	}
}

func TestAXPY(t *testing.T) {
	dst := FromSlice(1, 3, []float64{1, 1, 1})
	src := FromSlice(1, 3, []float64{1, 2, 3})
	AXPY(dst, 0.5, src)
	if !Equal(dst, FromSlice(1, 3, []float64{1.5, 2, 2.5}), 1e-15) {
		t.Fatalf("AXPY = %v", dst)
	}
}

func TestReductions(t *testing.T) {
	m := FromSlice(2, 2, []float64{3, -4, 0, 0})
	if m.Sum() != -1 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	if m.Norm2() != 5 {
		t.Fatalf("Norm2 = %v", m.Norm2())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestApply(t *testing.T) {
	m := FromSlice(1, 3, []float64{-1, 0, 2})
	relu := Apply(m, func(v float64) float64 { return math.Max(0, v) })
	if !Equal(relu, FromSlice(1, 3, []float64{0, 0, 2}), 0) {
		t.Fatalf("Apply relu = %v", relu)
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice(2, 3, []float64{0, 0, 0, 1000, 1000, 1000})
	s := SoftmaxRows(m)
	for i := 0; i < 2; i++ {
		rowSum := 0.0
		for j := 0; j < 3; j++ {
			v := s.At(i, j)
			if math.IsNaN(v) || math.Abs(v-1.0/3) > 1e-12 {
				t.Fatalf("softmax(%d,%d) = %v, want 1/3 (stability check)", i, j, v)
			}
			rowSum += v
		}
		if math.Abs(rowSum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, rowSum)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp([]float64{0, 0}); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("LogSumExp([0,0]) = %v, want log 2", got)
	}
	// Huge values must not overflow.
	if got := LogSumExp([]float64{1e6, 1e6}); math.Abs(got-(1e6+math.Log(2))) > 1e-6 {
		t.Fatalf("LogSumExp stability: %v", got)
	}
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Fatalf("LogSumExp(nil) = %v, want -Inf", got)
	}
	if got := LogSumExp([]float64{math.Inf(-1)}); !math.IsInf(got, -1) {
		t.Fatalf("LogSumExp([-Inf]) = %v, want -Inf", got)
	}
}

func TestZeroFillClone(t *testing.T) {
	m := New(2, 2)
	m.Fill(7)
	c := m.Clone()
	m.Zero()
	if m.Sum() != 0 {
		t.Fatal("Zero failed")
	}
	if c.Sum() != 28 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestRandFills(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(10, 10)
	m.RandNormal(1, rng)
	if m.Norm2() == 0 {
		t.Fatal("RandNormal produced all zeros")
	}
	u := New(10, 10)
	u.RandUniform(0.5, rng)
	if u.MaxAbs() > 0.5 {
		t.Fatalf("RandUniform exceeded bound: %v", u.MaxAbs())
	}
}

func TestEqualShapes(t *testing.T) {
	if Equal(New(1, 2), New(2, 1), 1) {
		t.Fatal("Equal must reject shape mismatch")
	}
}

func TestString(t *testing.T) {
	small := FromSlice(1, 2, []float64{1, 2})
	if small.String() == "" {
		t.Fatal("empty String for small matrix")
	}
	big := New(100, 100)
	if big.String() == "" {
		t.Fatal("empty String for big matrix")
	}
}
