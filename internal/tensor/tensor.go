// Package tensor implements the dense linear-algebra substrate for the
// neural-network stack: row-major float64 matrices with the operations
// needed by GNN forward/backward passes (GEMM, transpose, row gather,
// reductions, stable softmax). GEMM is cache-blocked with a
// register-tiled inner kernel and fans row panels out across the shared
// worker pool (internal/parallel) above a crossover size; because panels
// partition output rows and each row's accumulation order is fixed by
// the kernel, the parallel product is bit-for-bit equal to the serial
// one at any worker count.
package tensor

import (
	"fmt"
	"math"
	"math/rand"

	"privim/internal/parallel"
)

// Matrix is a dense row-major matrix. The zero value is an empty matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: New(%d, %d) negative dims", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice(%d, %d) with %d values", rows, cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero resets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

func assertSameShape(op string, a, b *Matrix) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// MatMul returns a×b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b, false)
	return out
}

// GEMM tuning. gemmKC is the k-dimension cache block (a kc×Cols panel of
// b stays resident in L1/L2 while row pairs stream over it).
// gemmPanelRows is the row granularity of one parallel task, and
// gemmParallelFlops is the crossover below which the fan-out overhead
// outweighs the work and MatMulInto stays serial (the per-sample GNN
// matrices of DP-SGD — tens of rows, 32 columns — all sit below it, so
// training's sample-level parallelism never nests a second fan-out).
const (
	gemmKC            = 128
	gemmPanelRows     = 32
	gemmParallelFlops = 1 << 18
)

// MatMulInto computes out = a×b, or out += a×b when accumulate is true.
// out must be preallocated with shape a.Rows × b.Cols and must not alias a
// or b. Large products are computed in parallel row panels; the result is
// bit-for-bit identical to the serial kernel at any worker count.
func MatMulInto(out, a, b *Matrix, accumulate bool) {
	matMulWorkers(out, a, b, accumulate, 0)
}

// matMulWorkers is MatMulInto with an explicit worker cap (0 = the
// process-wide default); the equivalence tests pin serial vs parallel
// through it.
func matMulWorkers(out, a, b *Matrix, accumulate bool, workers int) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic("tensor: MatMulInto shape mismatch")
	}
	if !accumulate {
		out.Zero()
	}
	if a.Rows == 0 || a.Cols == 0 || b.Cols == 0 {
		return
	}
	flops := a.Rows * a.Cols * b.Cols
	if workers <= 0 {
		workers = parallel.Resolve(0)
	}
	if workers == 1 || flops < gemmParallelFlops || a.Rows < 2*gemmPanelRows {
		gemmRows(out, a, b, 0, a.Rows)
		return
	}
	panels := (a.Rows + gemmPanelRows - 1) / gemmPanelRows
	parallel.For(workers, panels, 1, func(_, lo, hi int) {
		r0 := lo * gemmPanelRows
		r1 := hi * gemmPanelRows
		if r1 > a.Rows {
			r1 = a.Rows
		}
		gemmRows(out, a, b, r0, r1)
	})
}

// gemmRows accumulates rows [lo, hi) of out += a×b with a cache-blocked,
// register-tiled kernel: k is blocked so a panel of b stays hot, rows are
// processed in pairs sharing each loaded b row, and the inner j loop is
// unrolled 4-wide. Per output element the accumulation order is k
// ascending — independent of blocking, pairing, and the caller's row
// partition — which is what makes the parallel path bit-exact.
func gemmRows(out, a, b *Matrix, lo, hi int) {
	n, cols := a.Cols, b.Cols
	for k0 := 0; k0 < n; k0 += gemmKC {
		k1 := k0 + gemmKC
		if k1 > n {
			k1 = n
		}
		i := lo
		for ; i+1 < hi; i += 2 {
			arow0 := a.Data[i*n : (i+1)*n]
			arow1 := a.Data[(i+1)*n : (i+2)*n]
			orow0 := out.Data[i*cols : (i+1)*cols]
			orow1 := out.Data[(i+1)*cols : (i+2)*cols]
			for k := k0; k < k1; k++ {
				av0, av1 := arow0[k], arow1[k]
				if av0 == 0 && av1 == 0 {
					continue
				}
				brow := b.Data[k*cols : (k+1)*cols]
				j := 0
				for ; j+4 <= cols; j += 4 {
					b0, b1, b2, b3 := brow[j], brow[j+1], brow[j+2], brow[j+3]
					orow0[j] += av0 * b0
					orow0[j+1] += av0 * b1
					orow0[j+2] += av0 * b2
					orow0[j+3] += av0 * b3
					orow1[j] += av1 * b0
					orow1[j+1] += av1 * b1
					orow1[j+2] += av1 * b2
					orow1[j+3] += av1 * b3
				}
				for ; j < cols; j++ {
					bv := brow[j]
					orow0[j] += av0 * bv
					orow1[j] += av1 * bv
				}
			}
		}
		for ; i < hi; i++ {
			arow := a.Data[i*n : (i+1)*n]
			orow := out.Data[i*cols : (i+1)*cols]
			for k := k0; k < k1; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				brow := b.Data[k*cols : (k+1)*cols]
				j := 0
				for ; j+4 <= cols; j += 4 {
					orow[j] += av * brow[j]
					orow[j+1] += av * brow[j+1]
					orow[j+2] += av * brow[j+2]
					orow[j+3] += av * brow[j+3]
				}
				for ; j < cols; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
	}
}

// MatMulNTInto accumulates out += a·bᵀ without materializing the
// transpose: out is a.Rows×b.Rows and the shared dimension is
// a.Cols == b.Cols. Each output element is a dot product of two
// contiguous rows, accumulated k-ascending, so the result is
// deterministic and cache-friendly. Serial by design — the backward
// passes that call it already run one-per-sample under the worker pool.
func MatMulNTInto(out, a, b *Matrix) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic("tensor: MatMulNTInto shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] += s
		}
	}
}

// MatMulTNInto accumulates out += aᵀ·b without materializing the
// transpose: out is a.Cols×b.Cols and the shared dimension is
// a.Rows == b.Rows. Per output element the accumulation order is k
// (shared-row) ascending. Serial by design, like MatMulNTInto.
func MatMulTNInto(out, a, b *Matrix) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic("tensor: MatMulTNInto shape mismatch")
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// Transpose returns mᵀ.
func Transpose(m *Matrix) *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	assertSameShape("Add", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns a−b elementwise.
func Sub(a, b *Matrix) *Matrix {
	assertSameShape("Sub", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Mul returns the Hadamard product a∘b.
func Mul(a, b *Matrix) *Matrix {
	assertSameShape("Mul", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] *= v
	}
	return out
}

// Scale returns s·m.
func Scale(m *Matrix, s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// AXPY computes dst += s·src in place.
func AXPY(dst *Matrix, s float64, src *Matrix) {
	assertSameShape("AXPY", dst, src)
	for i, v := range src.Data {
		dst.Data[i] += s * v
	}
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Norm2 returns the Frobenius (l2) norm.
func (m *Matrix) Norm2() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns max_i |m_i|.
func (m *Matrix) MaxAbs() float64 {
	best := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// Apply returns f applied elementwise.
func Apply(m *Matrix, f func(float64) float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = f(v)
	}
	return out
}

// SoftmaxRows returns row-wise softmax with the standard max-shift for
// numerical stability.
func SoftmaxRows(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		orow := out.Row(i)
		max := math.Inf(-1)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - max)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}

// LogSumExp returns log Σ exp(x_i) computed stably.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	max := math.Inf(-1)
	for _, v := range xs {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	sum := 0.0
	for _, v := range xs {
		sum += math.Exp(v - max)
	}
	return max + math.Log(sum)
}

// RandNormal fills m with N(0, std²) values from rng.
func (m *Matrix) RandNormal(std float64, rng *rand.Rand) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
}

// RandUniform fills m with Uniform(-a, a) values from rng.
func (m *Matrix) RandUniform(a float64, rng *rand.Rand) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * a
	}
}

// Equal reports elementwise equality within tol.
func Equal(a, b *Matrix, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging; large ones are summarized.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d, ‖·‖=%.4g)", m.Rows, m.Cols, m.Norm2())
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
