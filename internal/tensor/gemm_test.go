package tensor

import (
	"math/rand"
	"testing"
)

func randMat(rows, cols int, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	// Sprinkle exact zeros so the kernel's zero-skip paths run.
	for i := 0; i < len(m.Data); i += 7 {
		m.Data[i] = 0
	}
	return m
}

// naiveMatMul is the straightforward ikj triple loop with k-ascending
// accumulation per element — the reference order the blocked kernel must
// reproduce exactly.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.Data[i*a.Cols+k]
			if av == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*b.Cols+j] += av * b.Data[k*b.Cols+j]
			}
		}
	}
	return out
}

// TestGEMMBlockedMatchesNaiveOrder pins that the blocked, register-tiled
// kernel accumulates each output element in k-ascending order, i.e. is
// bit-for-bit equal to the naive loop.
func TestGEMMBlockedMatchesNaiveOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 2}, {33, 200, 17}, {65, 300, 31}, {128, 64, 128}} {
		a := randMat(dims[0], dims[1], rng)
		b := randMat(dims[1], dims[2], rng)
		want := naiveMatMul(a, b)
		got := New(dims[0], dims[2])
		gemmRows(got, a, b, 0, dims[0])
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("dims %v: element %d: blocked %v != naive %v", dims, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestGEMMParallelBitExact is the tentpole determinism guarantee: the
// parallel product equals the serial product exactly (float64 identity,
// not tolerance) at every worker count, including odd row counts that
// leave a trailing unpaired row and accumulate mode.
func TestGEMMParallelBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][3]int{{64, 64, 64}, {65, 128, 33}, {256, 100, 64}, {97, 97, 97}} {
		a := randMat(dims[0], dims[1], rng)
		b := randMat(dims[1], dims[2], rng)
		serial := New(dims[0], dims[2])
		matMulWorkers(serial, a, b, false, 1)
		for _, workers := range []int{2, 3, 8} {
			par := New(dims[0], dims[2])
			par.Fill(3.25) // ensure the non-accumulate path really zeroes
			matMulWorkers(par, a, b, false, workers)
			for i := range serial.Data {
				if serial.Data[i] != par.Data[i] {
					t.Fatalf("dims %v workers %d: element %d: %v != %v",
						dims, workers, i, par.Data[i], serial.Data[i])
				}
			}
			// Accumulate mode on a warm output.
			accS, accP := serial.Clone(), serial.Clone()
			matMulWorkers(accS, a, b, true, 1)
			matMulWorkers(accP, a, b, true, workers)
			for i := range accS.Data {
				if accS.Data[i] != accP.Data[i] {
					t.Fatalf("dims %v workers %d accumulate: element %d differs", dims, workers, i)
				}
			}
		}
	}
}

// TestGEMMSmallStaysCorrect covers the sub-crossover serial fall-through
// used by the per-sample GNN passes.
func TestGEMMSmallStaysCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(4, 6, rng)
	b := randMat(6, 3, rng)
	got := MatMul(a, b)
	want := naiveMatMul(a, b)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d: %v != %v", i, got.Data[i], want.Data[i])
		}
	}
}

func BenchmarkGEMM256(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := randMat(256, 256, rng)
	y := randMat(256, 256, rng)
	out := New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y, false)
	}
}
