// Package bitset provides a dense fixed-size bit set used by the
// snapshot-based influence solvers to hold per-world reachability sets:
// unions and population counts over thousands of nodes reduce to a few
// word operations.
package bitset

import (
	"fmt"
	"math/bits"
)

// Set is a fixed-capacity bit set. The zero value is unusable; call New.
type Set struct {
	n     int
	words []uint64
}

// New returns a set holding bits 0..n-1, all clear.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: New(%d)", n))
	}
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the capacity n.
func (s *Set) Len() int { return s.n }

// Add sets bit i.
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: Add(%d) capacity %d", i, s.n))
	}
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Remove clears bit i. Paired with Add it lets scratch sets reset in time
// proportional to the bits touched rather than the capacity — the trick the
// RR-set sampler in internal/im relies on to stay allocation-free per draw.
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: Remove(%d) capacity %d", i, s.n))
	}
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Or merges o into s (s |= o). Capacities must match.
func (s *Set) Or(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: Or capacity %d vs %d", s.n, o.n))
	}
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CountOrWith returns |s ∪ o| without materializing the union.
func (s *Set) CountOrWith(o *Set) int {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: CountOrWith capacity %d vs %d", s.n, o.n))
	}
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w | o.words[i])
	}
	return c
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// Clear resets all bits.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}
