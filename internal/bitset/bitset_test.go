package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	s := New(130) // spans three words
	if s.Len() != 130 || s.Count() != 0 {
		t.Fatalf("fresh set: len=%d count=%d", s.Len(), s.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("count = %d, want 4", s.Count())
	}
	if s.Contains(1) || s.Contains(-1) || s.Contains(200) {
		t.Fatal("spurious membership")
	}
	s.Clear()
	if s.Count() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 63, 64, 129} {
		s.Add(i)
	}
	s.Remove(63)
	s.Remove(129)
	s.Remove(5) // clearing an unset bit is a no-op
	if s.Count() != 2 || s.Contains(63) || s.Contains(129) || !s.Contains(0) || !s.Contains(64) {
		t.Fatalf("after removals: count=%d", s.Count())
	}
	for _, i := range []int{-1, 130} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Remove(%d) should panic", i)
				}
			}()
			s.Remove(i)
		}()
	}
}

func TestAddPanics(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) should panic", i)
				}
			}()
			s.Add(i)
		}()
	}
}

func TestOrAndCountOrWith(t *testing.T) {
	a, b := New(100), New(100)
	a.Add(1)
	a.Add(70)
	b.Add(70)
	b.Add(99)
	if got := a.CountOrWith(b); got != 3 {
		t.Fatalf("CountOrWith = %d, want 3", got)
	}
	// CountOrWith must not mutate.
	if a.Count() != 2 || b.Count() != 2 {
		t.Fatal("CountOrWith mutated operands")
	}
	a.Or(b)
	if a.Count() != 3 || !a.Contains(99) {
		t.Fatalf("Or result wrong: count=%d", a.Count())
	}
}

func TestMismatchedCapacityPanics(t *testing.T) {
	a, b := New(10), New(20)
	for _, fn := range []func(){
		func() { a.Or(b) },
		func() { a.CountOrWith(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(64)
	a.Add(5)
	c := a.Clone()
	c.Add(6)
	if a.Contains(6) {
		t.Fatal("clone shares storage")
	}
	if !c.Contains(5) {
		t.Fatal("clone lost bits")
	}
}

// Property: Count(a ∪ b) == |set-union of indices| for random sets.
func TestOrCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200
		a, b := New(n), New(n)
		ref := map[int]bool{}
		for i := 0; i < 80; i++ {
			x := rng.Intn(n)
			a.Add(x)
			ref[x] = true
		}
		for i := 0; i < 80; i++ {
			x := rng.Intn(n)
			b.Add(x)
			ref[x] = true
		}
		if a.CountOrWith(b) != len(ref) {
			return false
		}
		a.Or(b)
		return a.Count() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
