package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty input should be 0")
	}
}

func TestRanksWithTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestPearsonKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	// Perfect linear relation.
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	// Perfect negative.
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Pearson = %v, want -1", got)
	}
	// Zero variance.
	if got := Pearson(xs, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Fatalf("Pearson with constant = %v, want 0", got)
	}
	if got := Pearson([]float64{1}, []float64{2}); got != 0 {
		t.Fatalf("Pearson with n=1 = %v, want 0", got)
	}
}

func TestPearsonPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestSpearmanMonotone(t *testing.T) {
	// Any monotone transform gives rho = 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // x^3: nonlinear but monotone
	if got := Spearman(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman = %v, want 1", got)
	}
	rev := []float64{125, 64, 27, 8, 1}
	if got := Spearman(xs, rev); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Spearman = %v, want -1", got)
	}
}

// Property: Spearman is invariant under strictly increasing transforms.
func TestSpearmanInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		base := Spearman(xs, ys)
		warped := make([]float64, n)
		for i, x := range xs {
			warped[i] = math.Exp(x) // strictly increasing
		}
		return math.Abs(Spearman(warped, ys)-base) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	ci := BootstrapMeanCI(xs, 0.95, 2000, rng)
	if ci.Lo > 10 || ci.Hi < 10 {
		t.Fatalf("95%% CI %v should contain the true mean 10", ci)
	}
	if ci.Hi-ci.Lo > 1 {
		t.Fatalf("CI %v too wide for n=200", ci)
	}
	if ci.Lo >= ci.Hi {
		t.Fatalf("degenerate CI %v", ci)
	}
}

func TestBootstrapPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, fn := range []func(){
		func() { BootstrapMeanCI(nil, 0.95, 100, rng) },
		func() { BootstrapMeanCI([]float64{1}, 0, 100, rng) },
		func() { BootstrapMeanCI([]float64{1}, 0.95, 0, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestArgMaxAndPeakAgreement(t *testing.T) {
	if ArgMax([]float64{1, 5, 3}) != 1 {
		t.Fatal("ArgMax wrong")
	}
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax(nil) should be -1")
	}
	if ArgMax([]float64{2, 2}) != 0 {
		t.Fatal("ArgMax tie should pick first")
	}
	if !PeakAgreement([]float64{1, 3, 2}, []float64{10, 30, 20}) {
		t.Fatal("same peak should agree")
	}
	if PeakAgreement([]float64{3, 1}, []float64{1, 3}) {
		t.Fatal("different peaks should disagree")
	}
	if PeakAgreement([]float64{1}, []float64{1, 2}) {
		t.Fatal("length mismatch should disagree")
	}
}
