// Package stats provides the statistical utilities the experiment harness
// uses to quantify agreement and uncertainty: rank correlation between the
// parameter indicator and empirical spreads (Figures 8/12/15), bootstrap
// confidence intervals for repeated measurements, and simple descriptive
// summaries.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// ranks assigns fractional ranks (mean rank for ties), 1-based.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Mean rank for the tie block [i, j].
		r := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = r
		}
		i = j + 1
	}
	return out
}

// Pearson returns the Pearson correlation coefficient of paired samples.
// It returns 0 for degenerate input (length < 2 or zero variance).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(xs), len(ys)))
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation ρ of paired samples — the
// agreement metric for "does the indicator curve track the empirical
// spread curve". Ties receive fractional ranks.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Spearman length mismatch %d vs %d", len(xs), len(ys)))
	}
	return Pearson(ranks(xs), ranks(ys))
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// BootstrapMeanCI returns the percentile bootstrap confidence interval of
// the mean at the given level (e.g. 0.95), using resamples drawn from rng.
func BootstrapMeanCI(xs []float64, level float64, resamples int, rng *rand.Rand) Interval {
	if len(xs) == 0 || resamples < 1 || level <= 0 || level >= 1 {
		panic(fmt.Sprintf("stats: BootstrapMeanCI(n=%d, level=%v, resamples=%d) invalid", len(xs), level, resamples))
	}
	means := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		means[r] = Mean(buf)
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	lo := int(alpha * float64(resamples))
	hi := int((1 - alpha) * float64(resamples))
	if hi >= resamples {
		hi = resamples - 1
	}
	return Interval{Lo: means[lo], Hi: means[hi]}
}

// ArgMax returns the index of the maximum element (first on ties), or -1
// for empty input.
func ArgMax(xs []float64) int {
	best := -1
	for i, x := range xs {
		if best < 0 || x > xs[best] {
			best = i
		}
	}
	return best
}

// PeakAgreement reports whether two curves peak at the same index — the
// paper's qualitative claim that the indicator's maximum identifies the
// optimal parameter value.
func PeakAgreement(indicator, empirical []float64) bool {
	if len(indicator) != len(empirical) || len(indicator) == 0 {
		return false
	}
	return ArgMax(indicator) == ArgMax(empirical)
}
