package nn

import "math"

// Optimizer updates a ParamSet from a gradient snapshot.
type Optimizer interface {
	// Step applies one update. grads must match the ParamSet layout the
	// optimizer was constructed with.
	Step(grads *Grads)
}

// SGD is plain (optionally momentum) stochastic gradient descent:
// v ← µv + g; W ← W − η·v.
type SGD struct {
	ps       *ParamSet
	LR       float64
	Momentum float64
	velocity *Grads
}

// NewSGD returns an SGD optimizer over ps.
func NewSGD(ps *ParamSet, lr, momentum float64) *SGD {
	s := &SGD{ps: ps, LR: lr, Momentum: momentum}
	if momentum > 0 {
		s.velocity = NewGrads(ps)
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step(grads *Grads) {
	if s.velocity == nil {
		for i, p := range s.ps.params {
			g := grads.mats[i]
			for k := range p.Value.Data {
				p.Value.Data[k] -= s.LR * g.Data[k]
			}
		}
		return
	}
	for i, p := range s.ps.params {
		g := grads.mats[i]
		v := s.velocity.mats[i]
		for k := range p.Value.Data {
			v.Data[k] = s.Momentum*v.Data[k] + g.Data[k]
			p.Value.Data[k] -= s.LR * v.Data[k]
		}
	}
}

// Adam implements the Adam optimizer with bias correction.
type Adam struct {
	ps           *ParamSet
	LR           float64
	Beta1, Beta2 float64
	Eps          float64
	m, v         *Grads
	t            int
}

// NewAdam returns an Adam optimizer with standard defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(ps *ParamSet, lr float64) *Adam {
	return &Adam{
		ps: ps, LR: lr,
		Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: NewGrads(ps), v: NewGrads(ps),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(grads *Grads) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.ps.params {
		g := grads.mats[i]
		m := a.m.mats[i]
		v := a.v.mats[i]
		for k := range p.Value.Data {
			m.Data[k] = a.Beta1*m.Data[k] + (1-a.Beta1)*g.Data[k]
			v.Data[k] = a.Beta2*v.Data[k] + (1-a.Beta2)*g.Data[k]*g.Data[k]
			mhat := m.Data[k] / c1
			vhat := v.Data[k] / c2
			p.Value.Data[k] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}
