package nn

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	payload := []byte("crash-safe checkpoint payload \x00\x01\x02")

	n, err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("reported %d payload bytes, wrote %d", n, len(payload))
	}
	got, err := ReadFileVerified(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round trip mismatch: %q vs %q", got, payload)
	}
	// No temp litter after a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after write, want 1", len(entries))
	}
}

func TestWriteFileAtomicReplacesPreviousOnlyOnSuccess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	write := func(p []byte) {
		t.Helper()
		if _, err := WriteFileAtomic(path, func(w io.Writer) error {
			_, err := w.Write(p)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	write([]byte("generation 1"))
	write([]byte("generation 2"))
	got, err := ReadFileVerified(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "generation 2" {
		t.Fatalf("payload = %q, want generation 2", got)
	}

	// A failing payload writer must leave the previous file untouched.
	boom := errors.New("boom")
	if _, err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("half-written garbage"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("failed write err = %v, want boom", err)
	}
	got, err = ReadFileVerified(path)
	if err != nil {
		t.Fatalf("previous good file unreadable after failed write: %v", err)
	}
	if string(got) != "generation 2" {
		t.Fatalf("failed write clobbered previous file: %q", got)
	}
}

// TestReadFileVerifiedDetectsDamage truncates and corrupts a valid file
// byte by byte and checks every variant is rejected with
// ErrCheckpointCorrupt.
func TestReadFileVerifiedDetectsDamage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	payload := bytes.Repeat([]byte("privim"), 64)
	if _, err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	damage := map[string][]byte{
		"empty":                {},
		"shorter_than_trailer": whole[:10],
		"truncated_payload":    whole[:len(whole)/2],
		"missing_last_byte":    whole[:len(whole)-1],
		"flipped_payload_bit": func() []byte {
			d := append([]byte(nil), whole...)
			d[3] ^= 0x40
			return d
		}(),
		"flipped_trailer_length": func() []byte {
			d := append([]byte(nil), whole...)
			d[len(d)-16] ^= 0x01
			return d
		}(),
	}
	for name, data := range damage {
		p := filepath.Join(dir, name+".ckpt")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFileVerified(p); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("%s: err = %v, want ErrCheckpointCorrupt", name, err)
		}
	}
}

// TestReadFileVerifiedCorpus runs the loader over the checked-in corrupt
// corpus: every *.ckpt under testdata/corrupt must be rejected with
// ErrCheckpointCorrupt, and testdata/valid.ckpt must verify.
func TestReadFileVerifiedCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "corrupt", "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 4 {
		t.Fatalf("corrupt corpus has %d files, expected at least 4", len(paths))
	}
	for _, p := range paths {
		if _, err := ReadFileVerified(p); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("%s: err = %v, want ErrCheckpointCorrupt", filepath.Base(p), err)
		}
	}
	payload, err := ReadFileVerified(filepath.Join("testdata", "valid.ckpt"))
	if err != nil {
		t.Fatalf("valid.ckpt rejected: %v", err)
	}
	if !strings.Contains(string(payload), "corpus") {
		t.Fatalf("valid.ckpt payload unexpected: %q", payload)
	}
}

func testParamSet() (*ParamSet, *rand.Rand) {
	ps := NewParamSet()
	ps.Add("w1", 3, 4)
	ps.Add("b1", 1, 4)
	ps.Add("w2", 4, 2)
	rng := rand.New(rand.NewSource(11))
	ps.GlorotInit(rng)
	return ps, rng
}

func TestGradsStateRoundTrip(t *testing.T) {
	ps, rng := testParamSet()
	g := NewGrads(ps)
	for _, m := range g.Mats() {
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// A second section on the same stream must stay readable: exact reads,
	// no read-ahead.
	buf.WriteString("sentinel")
	back := NewGrads(ps)
	if err := back.ReadInto(&buf); err != nil {
		t.Fatal(err)
	}
	for i, m := range g.Mats() {
		for k, v := range m.Data {
			if got := back.Mats()[i].Data[k]; got != v {
				t.Fatalf("grads[%d][%d] = %v, want %v", i, k, got, v)
			}
		}
	}
	if rest, _ := io.ReadAll(&buf); string(rest) != "sentinel" {
		t.Fatalf("ReadInto consumed beyond its section; remainder %q", rest)
	}
}

// TestAdamStateResumeBitForBit checkpoints an Adam run mid-stream and
// checks the restored optimizer continues exactly like the uninterrupted
// one.
func TestAdamStateResumeBitForBit(t *testing.T) {
	step := func(opt *Adam, ps *ParamSet, seed int64, steps int) {
		rng := rand.New(rand.NewSource(seed))
		g := NewGrads(ps)
		for s := 0; s < steps; s++ {
			for _, m := range g.Mats() {
				for i := range m.Data {
					m.Data[i] = rng.NormFloat64()
				}
			}
			opt.Step(g)
		}
	}

	// Uninterrupted: 7 steps.
	psA, _ := testParamSet()
	optA := NewAdam(psA, 0.01)
	step(optA, psA, 42, 7)

	// Interrupted: 3 steps, checkpoint, restore into a fresh optimizer,
	// 4 more steps with the same gradient stream position.
	psB, _ := testParamSet()
	optB := NewAdam(psB, 0.01)
	rng := rand.New(rand.NewSource(42))
	g := NewGrads(psB)
	for s := 0; s < 3; s++ {
		for _, m := range g.Mats() {
			for i := range m.Data {
				m.Data[i] = rng.NormFloat64()
			}
		}
		optB.Step(g)
	}
	var state bytes.Buffer
	if err := optB.StateTo(&state); err != nil {
		t.Fatal(err)
	}
	optC := NewAdam(psB, 0.01)
	if err := optC.StateFrom(bytes.NewReader(state.Bytes())); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		for _, m := range g.Mats() {
			for i := range m.Data {
				m.Data[i] = rng.NormFloat64()
			}
		}
		optC.Step(g)
	}

	for i, p := range psA.All() {
		q := psB.All()[i]
		for k := range p.Value.Data {
			if math.Float64bits(p.Value.Data[k]) != math.Float64bits(q.Value.Data[k]) {
				t.Fatalf("param %s[%d] diverged: %v vs %v", p.Name, k, p.Value.Data[k], q.Value.Data[k])
			}
		}
	}
}

func TestSGDStateRoundTripAndMismatch(t *testing.T) {
	ps, rng := testParamSet()
	opt := NewSGD(ps, 0.1, 0.9)
	g := NewGrads(ps)
	for _, m := range g.Mats() {
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
	}
	opt.Step(g)

	var state bytes.Buffer
	if err := opt.StateTo(&state); err != nil {
		t.Fatal(err)
	}
	restored := NewSGD(ps, 0.1, 0.9)
	if err := restored.StateFrom(bytes.NewReader(state.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i, m := range opt.velocity.Mats() {
		for k, v := range m.Data {
			if restored.velocity.Mats()[i].Data[k] != v {
				t.Fatalf("velocity[%d][%d] mismatch", i, k)
			}
		}
	}

	// Momentum-free optimizer must reject momentum state.
	plain := NewSGD(ps, 0.1, 0)
	if err := plain.StateFrom(bytes.NewReader(state.Bytes())); err == nil {
		t.Fatal("momentum state restored into momentum-free SGD")
	}
	// Adam state into SGD fails on the kind tag.
	var adamState bytes.Buffer
	if err := NewAdam(ps, 0.01).StateTo(&adamState); err != nil {
		t.Fatal(err)
	}
	if err := opt.StateFrom(bytes.NewReader(adamState.Bytes())); err == nil {
		t.Fatal("Adam state restored into SGD")
	}
}
