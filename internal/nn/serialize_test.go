package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

func buildParams(t *testing.T, init bool) *ParamSet {
	t.Helper()
	ps := NewParamSet()
	ps.Add("layer0.w", 4, 8)
	ps.Add("layer0.b", 1, 8)
	ps.Add("readout.w", 8, 1)
	if init {
		ps.GlorotInit(rand.New(rand.NewSource(5)))
	}
	return ps
}

func TestSerializeRoundTrip(t *testing.T) {
	src := buildParams(t, true)
	var buf bytes.Buffer
	n, err := src.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	dst := buildParams(t, false)
	if err := dst.ReadInto(&buf); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.All() {
		q := dst.All()[i]
		for k := range p.Value.Data {
			if p.Value.Data[k] != q.Value.Data[k] {
				t.Fatalf("param %s[%d]: %v != %v", p.Name, k, p.Value.Data[k], q.Value.Data[k])
			}
		}
	}
}

func TestSerializeRejectsBadMagic(t *testing.T) {
	dst := buildParams(t, false)
	if err := dst.ReadInto(bytes.NewBufferString("NOTMAGIC????????")); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestSerializeRejectsTruncated(t *testing.T) {
	src := buildParams(t, true)
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 4, 8, len(data) / 2, len(data) - 1} {
		dst := buildParams(t, false)
		if err := dst.ReadInto(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("expected error at truncation %d", cut)
		}
	}
}

func TestSerializeRejectsLayoutMismatch(t *testing.T) {
	src := buildParams(t, true)
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	// Different param count.
	other := NewParamSet()
	other.Add("layer0.w", 4, 8)
	if err := other.ReadInto(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected param-count error")
	}

	// Different name.
	renamed := NewParamSet()
	renamed.Add("layerX.w", 4, 8)
	renamed.Add("layer0.b", 1, 8)
	renamed.Add("readout.w", 8, 1)
	if err := renamed.ReadInto(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected name-mismatch error")
	}

	// Different shape.
	reshaped := NewParamSet()
	reshaped.Add("layer0.w", 8, 4)
	reshaped.Add("layer0.b", 1, 8)
	reshaped.Add("readout.w", 8, 1)
	if err := reshaped.ReadInto(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestSerializeSpecialValues(t *testing.T) {
	src := NewParamSet()
	p := src.Add("w", 1, 4)
	p.Value.Data[0] = 0
	p.Value.Data[1] = -0.0
	p.Value.Data[2] = 1e-308
	p.Value.Data[3] = -12345.6789

	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewParamSet()
	dst.Add("w", 1, 4)
	if err := dst.ReadInto(&buf); err != nil {
		t.Fatal(err)
	}
	for i := range p.Value.Data {
		if dst.Get("w").Value.Data[i] != p.Value.Data[i] {
			t.Fatalf("value %d corrupted", i)
		}
	}
}
