package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"privim/internal/autodiff"
	"privim/internal/tensor"
)

func TestParamSetBasics(t *testing.T) {
	ps := NewParamSet()
	w := ps.Add("w", 2, 3)
	b := ps.Add("b", 1, 3)
	if ps.NumParams() != 9 {
		t.Fatalf("NumParams = %d, want 9", ps.NumParams())
	}
	if ps.Get("w") != w || ps.Get("b") != b || ps.Get("zzz") != nil {
		t.Fatal("Get lookup wrong")
	}
	if got := ps.All(); len(got) != 2 || got[0] != w {
		t.Fatal("All order wrong")
	}
	names := ps.Names()
	if len(names) != 2 || names[0] != "b" {
		t.Fatalf("Names = %v", names)
	}
}

func TestParamSetDuplicatePanics(t *testing.T) {
	ps := NewParamSet()
	ps.Add("w", 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	ps.Add("w", 2, 2)
}

func TestInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := NewParamSet()
	ps.Add("w", 50, 50)
	ps.GlorotInit(rng)
	bound := math.Sqrt(6.0 / 100)
	if got := ps.Get("w").Value.MaxAbs(); got > bound || got == 0 {
		t.Fatalf("Glorot max |w| = %v, bound %v", got, bound)
	}
	ps.HeInit(rng)
	if ps.Get("w").Value.Norm2() == 0 {
		t.Fatal("He init produced zeros")
	}
}

func TestCopyFrom(t *testing.T) {
	src := NewParamSet()
	src.Add("w", 2, 2).Value.Fill(3)
	dst := NewParamSet()
	dst.Add("w", 2, 2)
	dst.CopyFrom(src)
	if dst.Get("w").Value.Sum() != 12 {
		t.Fatal("CopyFrom failed")
	}
	// Must be a value copy.
	src.Get("w").Value.Fill(0)
	if dst.Get("w").Value.Sum() != 12 {
		t.Fatal("CopyFrom aliased storage")
	}
}

func TestGradsClip(t *testing.T) {
	ps := NewParamSet()
	ps.Add("w", 1, 2)
	g := NewGrads(ps)
	g.Mats()[0].Data[0] = 3
	g.Mats()[0].Data[1] = 4
	pre := g.ClipL2(1)
	if pre != 5 {
		t.Fatalf("pre-clip norm %v, want 5", pre)
	}
	if n := g.Norm2(); math.Abs(n-1) > 1e-12 {
		t.Fatalf("post-clip norm %v, want 1", n)
	}
	// Clipping below the bound is a no-op.
	pre2 := g.ClipL2(10)
	if math.Abs(pre2-1) > 1e-12 || math.Abs(g.Norm2()-1) > 1e-12 {
		t.Fatal("clip below bound must not rescale")
	}
}

// Property: after ClipL2(c), the norm never exceeds c (the DP-SGD invariant).
func TestClipProperty(t *testing.T) {
	f := func(seed int64, rawC uint8) bool {
		c := float64(rawC%50)/10 + 0.1
		rng := rand.New(rand.NewSource(seed))
		ps := NewParamSet()
		ps.Add("a", 3, 3)
		ps.Add("b", 2, 5)
		g := NewGrads(ps)
		for _, m := range g.Mats() {
			m.RandNormal(5, rng)
		}
		g.ClipL2(c)
		return g.Norm2() <= c*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGradsAddScaleZero(t *testing.T) {
	ps := NewParamSet()
	ps.Add("w", 1, 2)
	a, b := NewGrads(ps), NewGrads(ps)
	a.Mats()[0].Data[0] = 1
	b.Mats()[0].Data[0] = 2
	a.Add(3, b)
	if a.Mats()[0].Data[0] != 7 {
		t.Fatalf("Add: got %v, want 7", a.Mats()[0].Data[0])
	}
	a.Scale(2)
	if a.Mats()[0].Data[0] != 14 {
		t.Fatalf("Scale: got %v", a.Mats()[0].Data[0])
	}
	a.Zero()
	if a.Norm2() != 0 {
		t.Fatal("Zero failed")
	}
	if a.NumCoords() != 2 {
		t.Fatalf("NumCoords = %d", a.NumCoords())
	}
}

func TestAddGaussianNoise(t *testing.T) {
	ps := NewParamSet()
	ps.Add("w", 100, 100)
	g := NewGrads(ps)
	rng := rand.New(rand.NewSource(1))
	g.AddGaussianNoise(2, rng)
	// Empirical std over 10k coords should be near 2.
	var sum, sumsq float64
	for _, v := range g.Mats()[0].Data {
		sum += v
		sumsq += v * v
	}
	n := float64(len(g.Mats()[0].Data))
	std := math.Sqrt(sumsq/n - (sum/n)*(sum/n))
	if std < 1.8 || std > 2.2 {
		t.Fatalf("noise std %v, want ≈2", std)
	}
	// Zero sigma is a no-op.
	g.Zero()
	g.AddGaussianNoise(0, rng)
	if g.Norm2() != 0 {
		t.Fatal("sigma=0 must add nothing")
	}
}

func TestBindCollect(t *testing.T) {
	ps := NewParamSet()
	w := ps.Add("w", 2, 2)
	w.Value.Fill(1)
	ps.Add("unused", 1, 1)

	tp := autodiff.NewTape()
	nodes := Bind(tp, ps)
	x := tp.Leaf(tensor.FromSlice(2, 2, []float64{1, 2, 3, 4}))
	loss := autodiff.Sum(autodiff.Mul(nodes[0], x))
	tp.Backward(loss)

	g := NewGrads(ps)
	Collect(nodes, g)
	if !tensor.Equal(g.Mats()[0], x.Value, 1e-12) {
		t.Fatalf("collected grad %v, want %v", g.Mats()[0], x.Value)
	}
	if g.Mats()[1].Norm2() != 0 {
		t.Fatal("unused param must get zero grad")
	}
}

// Linear regression with plain SGD must converge: y = 2x + 1.
func TestSGDConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps := NewParamSet()
	ps.Add("w", 1, 1)
	ps.Add("b", 1, 1)
	ps.GlorotInit(rng)
	opt := NewSGD(ps, 0.05, 0.9)
	g := NewGrads(ps)
	for epoch := 0; epoch < 400; epoch++ {
		tp := autodiff.NewTape()
		nodes := Bind(tp, ps)
		xv := rng.Float64()*4 - 2
		x := tp.Leaf(tensor.FromSlice(1, 1, []float64{xv}))
		pred := autodiff.Add(autodiff.MatMul(x, nodes[0]), nodes[1])
		target := tp.Leaf(tensor.FromSlice(1, 1, []float64{2*xv + 1}))
		diff := autodiff.Sub(pred, target)
		loss := autodiff.Sum(autodiff.Mul(diff, diff))
		tp.Backward(loss)
		Collect(nodes, g)
		opt.Step(g)
	}
	wv := ps.Get("w").Value.Data[0]
	bv := ps.Get("b").Value.Data[0]
	if math.Abs(wv-2) > 0.1 || math.Abs(bv-1) > 0.1 {
		t.Fatalf("SGD failed to converge: w=%v b=%v", wv, bv)
	}
}

// Same regression with Adam.
func TestAdamConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ps := NewParamSet()
	ps.Add("w", 1, 1)
	ps.Add("b", 1, 1)
	ps.GlorotInit(rng)
	opt := NewAdam(ps, 0.05)
	g := NewGrads(ps)
	for epoch := 0; epoch < 500; epoch++ {
		tp := autodiff.NewTape()
		nodes := Bind(tp, ps)
		xv := rng.Float64()*4 - 2
		x := tp.Leaf(tensor.FromSlice(1, 1, []float64{xv}))
		pred := autodiff.Add(autodiff.MatMul(x, nodes[0]), nodes[1])
		target := tp.Leaf(tensor.FromSlice(1, 1, []float64{-3*xv + 0.5}))
		diff := autodiff.Sub(pred, target)
		loss := autodiff.Sum(autodiff.Mul(diff, diff))
		tp.Backward(loss)
		Collect(nodes, g)
		opt.Step(g)
	}
	wv := ps.Get("w").Value.Data[0]
	bv := ps.Get("b").Value.Data[0]
	if math.Abs(wv+3) > 0.1 || math.Abs(bv-0.5) > 0.1 {
		t.Fatalf("Adam failed to converge: w=%v b=%v", wv, bv)
	}
}

func TestSGDNoMomentumPath(t *testing.T) {
	ps := NewParamSet()
	ps.Add("w", 1, 1)
	ps.Get("w").Value.Data[0] = 1
	opt := NewSGD(ps, 0.5, 0)
	g := NewGrads(ps)
	g.Mats()[0].Data[0] = 2
	opt.Step(g)
	if got := ps.Get("w").Value.Data[0]; got != 0 {
		t.Fatalf("w after step = %v, want 0", got)
	}
}
