package nn

import (
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
)

// Checkpoint files carry a fixed 24-byte trailer after the payload:
//
//	[payload][crc64(payload) u64][len(payload) u64]["PVCKTRL1"]
//
// little endian throughout. The trailer is written last and the file is
// renamed into place only after a successful fsync, so a reader either
// sees a complete, checksummed file or can prove it is damaged: a crash
// mid-write leaves a *.tmp-* file the loader never looks at, a truncated
// copy fails the length check, and bit rot fails the CRC. crc64/ECMA is
// an integrity check against accidents, not an adversary.
const (
	ckptTrailerMagic = "PVCKTRL1"
	ckptTrailerLen   = 24
)

// ErrCheckpointCorrupt tags every verification failure ReadFileVerified
// can report (truncation, checksum mismatch, missing trailer), so callers
// can errors.Is-match the whole family and fall back to an older file.
var ErrCheckpointCorrupt = errors.New("nn: corrupt checkpoint file")

var ckptCRCTable = crc64.MakeTable(crc64.ECMA)

// WriteFileAtomic writes the payload produced by write to path with
// crash-safe semantics: the bytes go to a temp file in the same
// directory, a checksum trailer is appended, the file is fsynced, and
// only then renamed over path. A crash at any point leaves either the
// previous complete file or no file — never a half-written one under the
// final name. It returns the payload size in bytes.
func WriteFileAtomic(path string, write func(io.Writer) error) (int64, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	fail := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	cw := &crcWriter{w: f, crc: crc64.New(ckptCRCTable)}
	if err := write(cw); err != nil {
		return fail(err)
	}
	var trailer [ckptTrailerLen]byte
	putUint64LE(trailer[0:8], cw.crc.Sum64())
	putUint64LE(trailer[8:16], uint64(cw.n))
	copy(trailer[16:24], ckptTrailerMagic)
	if _, err := f.Write(trailer[:]); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	syncDir(dir)
	return cw.n, nil
}

// ReadFileVerified reads a file written by WriteFileAtomic, verifies the
// trailer (length, then checksum), and returns the payload. Every
// verification failure wraps ErrCheckpointCorrupt so callers can fall
// back to the previous good checkpoint.
func ReadFileVerified(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < ckptTrailerLen {
		return nil, fmt.Errorf("%w: %s: %d bytes, shorter than the %d-byte trailer",
			ErrCheckpointCorrupt, path, len(data), ckptTrailerLen)
	}
	trailer := data[len(data)-ckptTrailerLen:]
	if string(trailer[16:24]) != ckptTrailerMagic {
		return nil, fmt.Errorf("%w: %s: missing trailer magic (truncated or not a checkpoint)",
			ErrCheckpointCorrupt, path)
	}
	payload := data[:len(data)-ckptTrailerLen]
	if want := getUint64LE(trailer[8:16]); want != uint64(len(payload)) {
		return nil, fmt.Errorf("%w: %s: payload is %d bytes, trailer recorded %d (truncated)",
			ErrCheckpointCorrupt, path, len(payload), want)
	}
	if want, got := getUint64LE(trailer[0:8]), crc64.Checksum(payload, ckptCRCTable); want != got {
		return nil, fmt.Errorf("%w: %s: checksum %016x, trailer recorded %016x",
			ErrCheckpointCorrupt, path, got, want)
	}
	return payload, nil
}

// crcWriter tees writes into a running CRC and byte count.
type crcWriter struct {
	w   io.Writer
	crc interface {
		io.Writer
		Sum64() uint64
	}
	n int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if n > 0 {
		c.crc.Write(p[:n])
		c.n += int64(n)
	}
	return n, err
}

// syncDir fsyncs a directory so the rename itself is durable; best
// effort — some filesystems refuse directory fsync and the rename is
// still atomic without it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

func putUint64LE(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getUint64LE(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
