package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Serialization format: a small header, then per-parameter records of
// (name, rows, cols, row-major float64 data), little endian throughout.
// The format is versioned so checkpoints survive library upgrades.
const (
	serializeMagic   = "PRIVIMP1"
	serializeVersion = uint32(1)
)

// WriteTo serializes the parameter set. It returns the byte count written.
func (ps *ParamSet) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(serializeMagic); err != nil {
		return n, err
	}
	n += int64(len(serializeMagic))
	if err := write(serializeVersion); err != nil {
		return n, err
	}
	if err := write(uint32(len(ps.params))); err != nil {
		return n, err
	}
	for _, p := range ps.params {
		name := []byte(p.Name)
		if err := write(uint32(len(name))); err != nil {
			return n, err
		}
		if _, err := bw.Write(name); err != nil {
			return n, err
		}
		n += int64(len(name))
		if err := write(uint32(p.Value.Rows)); err != nil {
			return n, err
		}
		if err := write(uint32(p.Value.Cols)); err != nil {
			return n, err
		}
		for _, v := range p.Value.Data {
			if err := write(math.Float64bits(v)); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadInto deserializes parameters written by WriteTo into ps, which must
// have the identical layout (names, order, shapes). This is the checkpoint
// restore path: construct the model first, then load weights.
func (ps *ParamSet) ReadInto(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(serializeMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("nn: reading checkpoint magic: %w", err)
	}
	if string(magic) != serializeMagic {
		return fmt.Errorf("nn: bad checkpoint magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return err
	}
	if version != serializeVersion {
		return fmt.Errorf("nn: unsupported checkpoint version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	if int(count) != len(ps.params) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", count, len(ps.params))
	}
	for _, p := range ps.params {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		if nameLen > 1<<16 {
			return fmt.Errorf("nn: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: checkpoint param %q does not match model param %q", name, p.Name)
		}
		var rows, cols uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return err
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return err
		}
		if int(rows) != p.Value.Rows || int(cols) != p.Value.Cols {
			return fmt.Errorf("nn: checkpoint shape %dx%d for %q, model wants %dx%d",
				rows, cols, p.Name, p.Value.Rows, p.Value.Cols)
		}
		for i := range p.Value.Data {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return err
			}
			p.Value.Data[i] = math.Float64frombits(bits)
		}
	}
	return nil
}
