package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Training-state serialization: gradient snapshots (Adam moments, SGD
// velocity) and optimizer scalars, used by the crash-safe training
// checkpoints in internal/privim. Like the ParamSet format, everything
// is little-endian and restores into a pre-built layout, so shape
// mismatches are detected rather than silently accepted.

// WriteTo serializes the gradient snapshot (per-matrix rows, cols, then
// row-major float64 bits). It returns the byte count written. Unlike
// ParamSet.WriteTo it does not buffer internally: checkpoint encoders
// interleave several state sections on one stream, so each section must
// write exactly its own bytes (hand in a buffered writer if needed).
func (g *Grads) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(uint32(len(g.mats))); err != nil {
		return n, err
	}
	for _, m := range g.mats {
		if err := write(uint32(m.Rows)); err != nil {
			return n, err
		}
		if err := write(uint32(m.Cols)); err != nil {
			return n, err
		}
		if err := write(floatBits(m.Data)); err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadInto deserializes a snapshot written by WriteTo into g, which must
// have the identical layout (matrix count and shapes). It reads exactly
// the snapshot's bytes — no read-ahead — so further state sections can
// follow on the same stream.
func (g *Grads) ReadInto(r io.Reader) error {
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	if int(count) != len(g.mats) {
		return fmt.Errorf("nn: gradient snapshot has %d matrices, layout has %d", count, len(g.mats))
	}
	for i, m := range g.mats {
		var rows, cols uint32
		if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
			return err
		}
		if err := binary.Read(r, binary.LittleEndian, &cols); err != nil {
			return err
		}
		if int(rows) != m.Rows || int(cols) != m.Cols {
			return fmt.Errorf("nn: gradient snapshot shape %dx%d at index %d, layout wants %dx%d",
				rows, cols, i, m.Rows, m.Cols)
		}
		bits := make([]uint64, len(m.Data))
		if err := binary.Read(r, binary.LittleEndian, bits); err != nil {
			return err
		}
		for k, b := range bits {
			m.Data[k] = math.Float64frombits(b)
		}
	}
	return nil
}

// floatBits returns the IEEE-754 bit patterns of vs, the lossless wire
// form (binary.Write on float64 would round-trip too, but bits make the
// bit-for-bit contract explicit).
func floatBits(vs []float64) []uint64 {
	bits := make([]uint64, len(vs))
	for i, v := range vs {
		bits[i] = math.Float64bits(v)
	}
	return bits
}

// Optimizer-state kind tags; the tag leads the state stream so a resume
// with a different optimizer fails loudly instead of misinterpreting
// moments.
const (
	optStateAdam = uint32(1)
	optStateSGD  = uint32(2)
)

// StatefulOptimizer is an Optimizer whose internal state (step counter,
// moment/velocity accumulators) can be checkpointed and restored, the
// contract the crash-safe training resume path needs: after StateFrom,
// the optimizer continues bit-for-bit as if never interrupted.
type StatefulOptimizer interface {
	Optimizer
	StateTo(w io.Writer) error
	StateFrom(r io.Reader) error
}

// StateTo serializes the Adam step counter and first/second moments.
func (a *Adam) StateTo(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, optStateAdam); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(a.t)); err != nil {
		return err
	}
	if _, err := a.m.WriteTo(w); err != nil {
		return err
	}
	_, err := a.v.WriteTo(w)
	return err
}

// StateFrom restores state written by StateTo; the optimizer must have
// been constructed over the identical parameter layout.
func (a *Adam) StateFrom(r io.Reader) error {
	var kind uint32
	if err := binary.Read(r, binary.LittleEndian, &kind); err != nil {
		return err
	}
	if kind != optStateAdam {
		return fmt.Errorf("nn: optimizer state kind %d, want Adam (%d)", kind, optStateAdam)
	}
	var t uint64
	if err := binary.Read(r, binary.LittleEndian, &t); err != nil {
		return err
	}
	if err := a.m.ReadInto(r); err != nil {
		return err
	}
	if err := a.v.ReadInto(r); err != nil {
		return err
	}
	a.t = int(t)
	return nil
}

// StateTo serializes the SGD velocity (a single presence flag covers the
// momentum-free case, which carries no state).
func (s *SGD) StateTo(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, optStateSGD); err != nil {
		return err
	}
	has := uint32(0)
	if s.velocity != nil {
		has = 1
	}
	if err := binary.Write(w, binary.LittleEndian, has); err != nil {
		return err
	}
	if s.velocity == nil {
		return nil
	}
	_, err := s.velocity.WriteTo(w)
	return err
}

// StateFrom restores state written by StateTo.
func (s *SGD) StateFrom(r io.Reader) error {
	var kind uint32
	if err := binary.Read(r, binary.LittleEndian, &kind); err != nil {
		return err
	}
	if kind != optStateSGD {
		return fmt.Errorf("nn: optimizer state kind %d, want SGD (%d)", kind, optStateSGD)
	}
	var has uint32
	if err := binary.Read(r, binary.LittleEndian, &has); err != nil {
		return err
	}
	if (has == 1) != (s.velocity != nil) {
		return fmt.Errorf("nn: SGD momentum mismatch between state and optimizer")
	}
	if s.velocity == nil {
		return nil
	}
	return s.velocity.ReadInto(r)
}
