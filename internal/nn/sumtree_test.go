package nn

import (
	"math/rand"
	"testing"
)

// sumTreeFixture builds n gradient snapshots with deterministic contents.
func sumTreeFixture(t *testing.T, n int) (*ParamSet, []*Grads) {
	t.Helper()
	ps := NewParamSet()
	ps.Add("w", 3, 4)
	ps.Add("b", 1, 4)
	rng := rand.New(rand.NewSource(11))
	grads := make([]*Grads, n)
	for i := range grads {
		grads[i] = NewGrads(ps)
		for _, m := range grads[i].Mats() {
			for j := range m.Data {
				m.Data[j] = rng.NormFloat64()
			}
		}
	}
	return ps, grads
}

// TestSumTreeWorkerInvariant verifies the reduction's defining property:
// the float result depends only on len(grads), never on the worker count.
func TestSumTreeWorkerInvariant(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16, 17} {
		_, ref := sumTreeFixture(t, n)
		SumTree(ref, 1)
		for _, workers := range []int{2, 3, 8} {
			_, grads := sumTreeFixture(t, n)
			SumTree(grads, workers)
			for mi, m := range grads[0].Mats() {
				want := ref[0].Mats()[mi]
				for j := range m.Data {
					if m.Data[j] != want.Data[j] {
						t.Fatalf("n=%d workers=%d: mat %d coord %d: %v != %v",
							n, workers, mi, j, m.Data[j], want.Data[j])
					}
				}
			}
		}
	}
}

// TestSumTreeMatchesSerialSum checks the tree total is numerically close to
// the plain left-to-right sum (not bit-equal — the association differs, which
// is exactly why the tree shape must be fixed).
func TestSumTreeMatchesSerialSum(t *testing.T) {
	ps, grads := sumTreeFixture(t, 9)
	serial := NewGrads(ps)
	for _, g := range grads {
		serial.Add(1, g)
	}
	SumTree(grads, 4)
	for mi, m := range grads[0].Mats() {
		want := serial.Mats()[mi]
		for j := range m.Data {
			if d := m.Data[j] - want.Data[j]; d > 1e-12 || d < -1e-12 {
				t.Fatalf("mat %d coord %d: tree %v vs serial %v", mi, j, m.Data[j], want.Data[j])
			}
		}
	}
}
