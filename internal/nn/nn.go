// Package nn provides the training substrate above autodiff: named
// parameter sets, standard initializers, SGD/momentum/Adam optimizers,
// per-sample gradient clipping (the Clip_C step of DP-SGD, Algorithm 2),
// and flat-vector views of gradients for noise injection.
package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"privim/internal/autodiff"
	"privim/internal/parallel"
	"privim/internal/tensor"
)

// Param is a named trainable matrix.
type Param struct {
	Name  string
	Value *tensor.Matrix
}

// ParamSet owns a model's trainable parameters in a stable order.
type ParamSet struct {
	params []*Param
	byName map[string]*Param
}

// NewParamSet returns an empty parameter set.
func NewParamSet() *ParamSet {
	return &ParamSet{byName: make(map[string]*Param)}
}

// Add registers a new rows×cols parameter and returns it. It panics on
// duplicate names so model wiring errors fail fast.
func (ps *ParamSet) Add(name string, rows, cols int) *Param {
	if _, dup := ps.byName[name]; dup {
		panic("nn: duplicate parameter " + name)
	}
	p := &Param{Name: name, Value: tensor.New(rows, cols)}
	ps.params = append(ps.params, p)
	ps.byName[name] = p
	return p
}

// Get returns the named parameter or nil.
func (ps *ParamSet) Get(name string) *Param { return ps.byName[name] }

// All returns parameters in registration order.
func (ps *ParamSet) All() []*Param { return ps.params }

// NumParams returns the total scalar parameter count.
func (ps *ParamSet) NumParams() int {
	n := 0
	for _, p := range ps.params {
		n += len(p.Value.Data)
	}
	return n
}

// GlorotInit fills every parameter with Uniform(−a, a), a = √(6/(fanIn+fanOut)),
// treating rows as fan-in and cols as fan-out.
func (ps *ParamSet) GlorotInit(rng *rand.Rand) {
	for _, p := range ps.params {
		a := math.Sqrt(6 / float64(p.Value.Rows+p.Value.Cols))
		p.Value.RandUniform(a, rng)
	}
}

// HeInit fills every parameter with N(0, 2/fanIn).
func (ps *ParamSet) HeInit(rng *rand.Rand) {
	for _, p := range ps.params {
		std := math.Sqrt(2 / float64(p.Value.Rows))
		p.Value.RandNormal(std, rng)
	}
}

// CopyFrom overwrites ps's values with those of src (same layout required).
func (ps *ParamSet) CopyFrom(src *ParamSet) {
	if len(ps.params) != len(src.params) {
		panic("nn: CopyFrom layout mismatch")
	}
	for i, p := range ps.params {
		s := src.params[i]
		if !p.Value.SameShape(s.Value) {
			panic(fmt.Sprintf("nn: CopyFrom shape mismatch at %s", p.Name))
		}
		copy(p.Value.Data, s.Value.Data)
	}
}

// Grads is a gradient snapshot aligned with a ParamSet's layout.
type Grads struct {
	mats []*tensor.Matrix
}

// NewGrads allocates a zeroed gradient snapshot matching ps.
func NewGrads(ps *ParamSet) *Grads {
	g := &Grads{mats: make([]*tensor.Matrix, len(ps.params))}
	for i, p := range ps.params {
		g.mats[i] = tensor.New(p.Value.Rows, p.Value.Cols)
	}
	return g
}

// Mats exposes per-parameter gradient matrices in layout order.
func (g *Grads) Mats() []*tensor.Matrix { return g.mats }

// Zero resets all gradients.
func (g *Grads) Zero() {
	for _, m := range g.mats {
		m.Zero()
	}
}

// Add accumulates o into g, scaled by s.
func (g *Grads) Add(s float64, o *Grads) {
	for i, m := range g.mats {
		tensor.AXPY(m, s, o.mats[i])
	}
}

// CopyFrom overwrites g with the values of o (same layout required).
func (g *Grads) CopyFrom(o *Grads) {
	if len(g.mats) != len(o.mats) {
		panic("nn: CopyFrom layout mismatch")
	}
	for i, m := range g.mats {
		copy(m.Data, o.mats[i].Data)
	}
}

// SumTree reduces grads[0..n) into grads[0] (clobbering the rest) with a
// fixed binary tree: level s sums pairs (i, i+s) for i ≡ 0 (mod 2s).
// The tree shape depends only on len(grads), never on the worker count,
// so the floating-point result is identical whether the levels run
// serially or fanned out — the property DP-SGD's noise accumulator needs
// to stay reproducible under -workers. Pairs within a level touch
// disjoint gradients and run on the shared worker pool.
func SumTree(grads []*Grads, workers int) {
	n := len(grads)
	if parallel.Resolve(workers) == 1 {
		// Same pair order as the fanned-out path (disjoint writes make the
		// dynamic schedule irrelevant), minus the per-level closure the
		// goroutine fan-out needs — the serial path allocates nothing.
		for stride := 1; stride < n; stride *= 2 {
			for i := 0; i+stride < n; i += 2 * stride {
				grads[i].Add(1, grads[i+stride])
			}
		}
		return
	}
	for stride := 1; stride < n; stride *= 2 {
		pairs := 0
		for i := 0; i+stride < n; i += 2 * stride {
			pairs++
		}
		if pairs == 0 {
			continue
		}
		step := 2 * stride
		parallel.For(workers, pairs, 1, func(_, lo, hi int) {
			for p := lo; p < hi; p++ {
				i := p * step
				grads[i].Add(1, grads[i+stride])
			}
		})
	}
}

// Norm2 returns the global l2 norm across all parameter gradients.
func (g *Grads) Norm2() float64 {
	s := 0.0
	for _, m := range g.mats {
		for _, v := range m.Data {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// Scale multiplies every gradient by s in place.
func (g *Grads) Scale(s float64) {
	for _, m := range g.mats {
		for i := range m.Data {
			m.Data[i] *= s
		}
	}
}

// ClipL2 rescales g in place so its global l2 norm is at most c (DP-SGD
// per-sample clipping, Algorithm 2 line 6) and returns the pre-clip norm.
func (g *Grads) ClipL2(c float64) float64 {
	n := g.Norm2()
	if n > c {
		g.Scale(c / n)
	}
	return n
}

// AddGaussianNoise adds N(0, sigma²) noise independently to every gradient
// coordinate (Algorithm 2 line 8; sigma already includes the sensitivity
// factor).
func (g *Grads) AddGaussianNoise(sigma float64, rng *rand.Rand) {
	if sigma < 0 {
		panic("nn: negative noise scale")
	}
	if sigma == 0 {
		return
	}
	for _, m := range g.mats {
		for i := range m.Data {
			m.Data[i] += rng.NormFloat64() * sigma
		}
	}
}

// NumCoords returns the number of scalar coordinates in g.
func (g *Grads) NumCoords() int {
	n := 0
	for _, m := range g.mats {
		n += len(m.Data)
	}
	return n
}

// Bind places every parameter of ps on the tape as leaves and returns the
// nodes in layout order, so a model forward pass can reference them.
func Bind(tp *autodiff.Tape, ps *ParamSet) []*autodiff.Node {
	nodes := make([]*autodiff.Node, len(ps.params))
	for i, p := range ps.params {
		nodes[i] = tp.Leaf(p.Value)
	}
	return nodes
}

// BindInto is Bind reusing the caller's slice (typically bound[:0] from
// the previous iteration on a reset tape), so steady-state training
// iterations bind parameters without allocating.
func BindInto(tp *autodiff.Tape, ps *ParamSet, into []*autodiff.Node) []*autodiff.Node {
	into = into[:0]
	for _, p := range ps.params {
		into = append(into, tp.Leaf(p.Value))
	}
	return into
}

// Collect copies the gradients accumulated on bound parameter nodes into a
// Grads snapshot. Parameters that did not participate get zero gradients.
func Collect(nodes []*autodiff.Node, into *Grads) {
	if len(nodes) != len(into.mats) {
		panic("nn: Collect layout mismatch")
	}
	for i, n := range nodes {
		dst := into.mats[i]
		dst.Zero()
		if n.Grad != nil {
			copy(dst.Data, n.Grad.Data)
		}
	}
}

// Names returns parameter names sorted, for stable diagnostics.
func (ps *ParamSet) Names() []string {
	names := make([]string, 0, len(ps.params))
	for _, p := range ps.params {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return names
}
