package sampling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"privim/internal/dataset"
	"privim/internal/graph"
)

func testGraph(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := dataset.BarabasiAlbert(n, 3, rng)
	g.SetUniformWeights(1)
	return g
}

func defaultRWR(n int) RWRConfig {
	return RWRConfig{
		SubgraphSize: 10,
		Theta:        5,
		Tau:          0.3,
		SamplingRate: 0.5,
		WalkLength:   200,
		Hops:         3,
	}
}

func defaultFreq() FreqConfig {
	return FreqConfig{
		SubgraphSize: 10,
		Tau:          0.3,
		Mu:           1,
		SamplingRate: 0.5,
		WalkLength:   200,
		Threshold:    4,
		BESDivisor:   2,
	}
}

func TestExtractRWRBasics(t *testing.T) {
	g := testGraph(t, 200, 1)
	rng := rand.New(rand.NewSource(2))
	c, proj, err := ExtractRWR(g, defaultRWR(200), rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == 0 {
		t.Fatal("no subgraphs extracted")
	}
	// θ bound respected in the projection.
	for v := 0; v < proj.NumNodes(); v++ {
		if proj.InDegree(graph.NodeID(v)) > 5 {
			t.Fatalf("projection violated theta: node %d in-degree %d", v, proj.InDegree(graph.NodeID(v)))
		}
	}
	for i, s := range c.Subgraphs {
		if s.G.NumNodes() != 10 {
			t.Fatalf("subgraph %d has %d nodes, want exactly 10", i, s.G.NumNodes())
		}
		// Unique original IDs.
		seen := map[graph.NodeID]bool{}
		for _, o := range s.Orig {
			if seen[o] {
				t.Fatalf("subgraph %d repeats original node %d", i, o)
			}
			seen[o] = true
		}
	}
}

func TestExtractRWRHopBound(t *testing.T) {
	// On a long path with hop bound r, every collected node must be within
	// r weak hops of the start. Build a path so this is easy to verify.
	n := 50
	g := graph.NewWithNodes(n, true)
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	cfg := RWRConfig{SubgraphSize: 4, Theta: 10, Tau: 0.1, SamplingRate: 1, WalkLength: 500, Hops: 3}
	rng := rand.New(rand.NewSource(3))
	c, _, err := ExtractRWR(g, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == 0 {
		t.Fatal("no subgraphs on path graph")
	}
	for _, s := range c.Subgraphs {
		v0 := s.Orig[0]
		for _, o := range s.Orig {
			d := int(o) - int(v0)
			if d < 0 {
				d = -d
			}
			if d > 3 {
				t.Fatalf("node %d is %d hops from start %d, exceeds r=3", o, d, v0)
			}
		}
	}
}

func TestExtractRWRConfigErrors(t *testing.T) {
	g := testGraph(t, 50, 4)
	rng := rand.New(rand.NewSource(1))
	bad := []RWRConfig{
		{SubgraphSize: 1, Theta: 5, Tau: 0.3, SamplingRate: 0.5, WalkLength: 10, Hops: 2},
		{SubgraphSize: 10, Theta: 0, Tau: 0.3, SamplingRate: 0.5, WalkLength: 10, Hops: 2},
		{SubgraphSize: 10, Theta: 5, Tau: 1, SamplingRate: 0.5, WalkLength: 10, Hops: 2},
		{SubgraphSize: 10, Theta: 5, Tau: 0.3, SamplingRate: 0, WalkLength: 10, Hops: 2},
		{SubgraphSize: 10, Theta: 5, Tau: 0.3, SamplingRate: 0.5, WalkLength: 0, Hops: 2},
		{SubgraphSize: 10, Theta: 5, Tau: 0.3, SamplingRate: 0.5, WalkLength: 10, Hops: 0},
		{SubgraphSize: 100, Theta: 5, Tau: 0.3, SamplingRate: 0.5, WalkLength: 10, Hops: 2},
	}
	for i, cfg := range bad {
		if _, _, err := ExtractRWR(g, cfg, rng); err == nil {
			t.Errorf("config %d: expected error for %+v", i, cfg)
		}
	}
}

func TestDualStageThresholdInvariant(t *testing.T) {
	g := testGraph(t, 300, 5)
	cfg := defaultFreq()
	cfg.SamplingRate = 1 // maximum pressure on the threshold
	rng := rand.New(rand.NewSource(6))
	c, err := ExtractDualStage(g, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == 0 {
		t.Fatal("no subgraphs extracted")
	}
	if got := c.MaxOccurrence(); got > cfg.Threshold {
		t.Fatalf("max occurrence %d exceeds threshold M=%d — the exact PrivIM* invariant is broken", got, cfg.Threshold)
	}
}

// Property: the M invariant holds across random graphs and configurations.
func TestDualStageThresholdProperty(t *testing.T) {
	f := func(seed int64, rawM, rawMu uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dataset.BarabasiAlbert(120, 2, rng)
		g.SetUniformWeights(1)
		cfg := FreqConfig{
			SubgraphSize: 8,
			Tau:          0.3,
			Mu:           0.5 + float64(rawMu%4)*0.5,
			SamplingRate: 1,
			WalkLength:   100,
			Threshold:    int(rawM%6) + 1,
			BESDivisor:   2,
		}
		c, err := ExtractDualStage(g, cfg, rng)
		if err != nil {
			return false
		}
		return c.MaxOccurrence() <= cfg.Threshold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDualStageBESAddsSubgraphs(t *testing.T) {
	g := testGraph(t, 400, 7)
	scs := defaultFreq()
	scs.BESDivisor = 0 // stage 1 only
	rngA := rand.New(rand.NewSource(8))
	onlySCS, err := ExtractDualStage(g, scs, rngA)
	if err != nil {
		t.Fatal(err)
	}
	both := defaultFreq()
	rngB := rand.New(rand.NewSource(8))
	withBES, err := ExtractDualStage(g, both, rngB)
	if err != nil {
		t.Fatal(err)
	}
	if withBES.Len() <= onlySCS.Len() {
		t.Fatalf("BES added no subgraphs: SCS=%d, SCS+BES=%d", onlySCS.Len(), withBES.Len())
	}
	// Stage-2 subgraphs are smaller (n/s).
	smallSeen := false
	for _, s := range withBES.Subgraphs {
		if s.G.NumNodes() == both.SubgraphSize/both.BESDivisor {
			smallSeen = true
		}
	}
	if !smallSeen {
		t.Fatal("no boundary subgraphs of size n/s found")
	}
}

func TestDualStageBESMapsToOriginalIDs(t *testing.T) {
	g := testGraph(t, 300, 9)
	cfg := defaultFreq()
	rng := rand.New(rand.NewSource(10))
	c, err := ExtractDualStage(g, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range c.Subgraphs {
		for _, o := range s.Orig {
			if int(o) < 0 || int(o) >= g.NumNodes() {
				t.Fatalf("subgraph %d references node %d outside parent graph", i, o)
			}
		}
		// Induced edges must exist in the parent graph.
		for li, lo := range s.Orig {
			for _, a := range s.G.Out(graph.NodeID(li)) {
				if !g.HasEdge(lo, s.Orig[a.To]) {
					t.Fatalf("subgraph %d edge %d->%d not present in parent", i, lo, s.Orig[a.To])
				}
			}
		}
	}
}

func TestDualStageConfigErrors(t *testing.T) {
	g := testGraph(t, 50, 11)
	rng := rand.New(rand.NewSource(1))
	bad := []FreqConfig{
		{SubgraphSize: 1, Tau: 0.3, Mu: 1, SamplingRate: 0.5, WalkLength: 10, Threshold: 2},
		{SubgraphSize: 10, Tau: 0.3, Mu: 0, SamplingRate: 0.5, WalkLength: 10, Threshold: 2},
		{SubgraphSize: 10, Tau: 0.3, Mu: 1, SamplingRate: 0.5, WalkLength: 10, Threshold: 0},
		{SubgraphSize: 10, Tau: -0.1, Mu: 1, SamplingRate: 0.5, WalkLength: 10, Threshold: 2},
		{SubgraphSize: 10, Tau: 0.3, Mu: 1, SamplingRate: 2, WalkLength: 10, Threshold: 2},
		{SubgraphSize: 10, Tau: 0.3, Mu: 1, SamplingRate: 0.5, WalkLength: 10, Threshold: 2, BESDivisor: -1},
	}
	for i, cfg := range bad {
		if _, err := ExtractDualStage(g, cfg, rng); err == nil {
			t.Errorf("config %d: expected error for %+v", i, cfg)
		}
	}
}

func TestSampleByFrequencyPrefersRare(t *testing.T) {
	cands := []graph.NodeID{0, 1}
	freq := []int{0, 3} // node 0 rare, node 1 frequent
	cfg := FreqConfig{Mu: 2, Threshold: 10}
	rng := rand.New(rand.NewSource(12))
	count0 := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		v, ok := sampleByFrequency(cands, freq, cfg, nil, make([]float64, len(cands)), rng)
		if !ok {
			t.Fatal("sampling failed")
		}
		if v == 0 {
			count0++
		}
	}
	// e_0 = 1, e_1 = 1/16 ⇒ P(0) = 16/17 ≈ 0.94.
	if frac := float64(count0) / trials; frac < 0.9 {
		t.Fatalf("rare node sampled %.2f of the time, want ≈0.94", frac)
	}
}

func TestSampleByFrequencyThresholdExcludes(t *testing.T) {
	cands := []graph.NodeID{0, 1}
	freq := []int{5, 5}
	cfg := FreqConfig{Mu: 1, Threshold: 5}
	rng := rand.New(rand.NewSource(13))
	if _, ok := sampleByFrequency(cands, freq, cfg, nil, make([]float64, len(cands)), rng); ok {
		t.Fatal("all candidates at threshold must be ineligible")
	}
	freq[1] = 4
	v, ok := sampleByFrequency(cands, freq, cfg, nil, make([]float64, len(cands)), rng)
	if !ok || v != 1 {
		t.Fatalf("only eligible candidate should be picked, got %v %v", v, ok)
	}
}

func TestContainerMerge(t *testing.T) {
	g := testGraph(t, 100, 14)
	rng := rand.New(rand.NewSource(15))
	cfg := defaultFreq()
	cfg.BESDivisor = 0
	a, err := ExtractDualStage(g, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExtractDualStage(g, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := a.Len() + b.Len()
	a.Merge(b)
	if a.Len() != wantLen {
		t.Fatalf("merged len %d, want %d", a.Len(), wantLen)
	}
}

func TestContainerMergePanicsOnMismatch(t *testing.T) {
	a, b := NewContainer(5), NewContainer(6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Merge(b)
}

func TestOccurrencesAudit(t *testing.T) {
	c := NewContainer(4)
	c.Add(&graph.Subgraph{G: graph.NewWithNodes(2, true), Orig: []graph.NodeID{0, 1}})
	c.Add(&graph.Subgraph{G: graph.NewWithNodes(2, true), Orig: []graph.NodeID{1, 2}})
	if c.Occurrences[1] != 2 || c.Occurrences[0] != 1 || c.Occurrences[3] != 0 {
		t.Fatalf("occurrences %v", c.Occurrences)
	}
	if c.MaxOccurrence() != 2 {
		t.Fatalf("MaxOccurrence = %d", c.MaxOccurrence())
	}
}
