// Package sampling implements the subgraph-extraction schemes at the heart
// of PrivIM: Algorithm 1 (random walk with restart on a θ-bounded
// projection) for the naive pipeline, and Algorithm 3's dual-stage adaptive
// frequency sampling (Sensitivity-Constrained Sampling followed by
// Boundary-Enhanced Sampling) for PrivIM*. Both produce a Container of
// fixed-size subgraphs that serves as the DP-SGD sampling pool.
//
// Walks treat the graph as weakly connected (neighbors = in ∪ out), which
// matches the paper's setting where undirected social graphs are stored as
// arc pairs; induced subgraphs keep the original arc directions and
// influence weights.
package sampling

import (
	"fmt"
	"math"
	"math/rand"

	"privim/internal/graph"
	"privim/internal/obs"
)

// Container is the pool of extracted subgraphs used for mini-batch
// sampling in Algorithm 2.
type Container struct {
	Subgraphs []*graph.Subgraph
	// Occurrences[v] counts how many subgraphs contain original node v.
	Occurrences []int
}

// NewContainer allocates an empty container for an n-node parent graph.
// Exposed so baseline methods with their own extraction strategies (EGN's
// BFS balls, HP's ego networks) can share the occurrence auditing.
func NewContainer(n int) *Container {
	return &Container{Occurrences: make([]int, n)}
}

// Add appends a subgraph and updates the occurrence audit.
func (c *Container) Add(s *graph.Subgraph) {
	c.Subgraphs = append(c.Subgraphs, s)
	for _, v := range s.Orig {
		c.Occurrences[v]++
	}
}

// Len returns the number of subgraphs (m in Theorem 3).
func (c *Container) Len() int { return len(c.Subgraphs) }

// MaxOccurrence returns the audited maximum number of subgraphs any single
// node appears in — the empirical counterpart of Lemma 1's N_g bound and
// the exact value N_g* = M for the dual-stage scheme.
func (c *Container) MaxOccurrence() int {
	best := 0
	for _, o := range c.Occurrences {
		if o > best {
			best = o
		}
	}
	return best
}

// Merge appends the subgraphs of o (over the same parent graph) into c.
func (c *Container) Merge(o *Container) {
	if len(c.Occurrences) != len(o.Occurrences) {
		panic("sampling: Merge over different parent graphs")
	}
	for _, s := range o.Subgraphs {
		c.Add(s)
	}
}

// weakNeighbors lists each node's neighbors under the weak (undirected)
// view, deduplicated, computed once per extraction. All lists share one
// flat backing array, and dedup uses a per-node epoch stamp instead of a
// per-node map, so the whole table costs three allocations.
func weakNeighbors(g *graph.Graph) [][]graph.NodeID {
	n := g.NumNodes()
	out := make([][]graph.NodeID, n)
	total := 0
	for v := 0; v < n; v++ {
		total += len(g.Out(graph.NodeID(v))) + len(g.In(graph.NodeID(v)))
	}
	backing := make([]graph.NodeID, 0, total)
	seen := make([]int32, n) // seen[u] == v+1 ⇔ u already listed for v
	for v := 0; v < n; v++ {
		epoch := int32(v + 1)
		start := len(backing)
		for _, a := range g.Out(graph.NodeID(v)) {
			if a.To != graph.NodeID(v) && seen[a.To] != epoch {
				seen[a.To] = epoch
				backing = append(backing, a.To)
			}
		}
		for _, a := range g.In(graph.NodeID(v)) {
			if a.To != graph.NodeID(v) && seen[a.To] != epoch {
				seen[a.To] = epoch
				backing = append(backing, a.To)
			}
		}
		out[v] = backing[start:len(backing):len(backing)]
	}
	return out
}

// weakRHop returns the weak r-hop neighborhood membership of v0.
func weakRHop(nbrs [][]graph.NodeID, v0 graph.NodeID, r int) map[graph.NodeID]bool {
	seen := map[graph.NodeID]bool{v0: true}
	frontier := []graph.NodeID{v0}
	for hop := 0; hop < r && len(frontier) > 0; hop++ {
		var next []graph.NodeID
		for _, u := range frontier {
			for _, w := range nbrs[u] {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return seen
}

// RWRConfig parameterizes Algorithm 1.
type RWRConfig struct {
	// SubgraphSize is n, the exact node count of each extracted subgraph.
	SubgraphSize int
	// Theta bounds node in-degree before extraction (the θ projection).
	Theta int
	// Tau is the restart probability τ (paper default 0.3).
	Tau float64
	// SamplingRate is q, the probability each node starts a walk
	// (paper: 256/|V_train|).
	SamplingRate float64
	// WalkLength is L, the step budget per walk (paper default 200).
	WalkLength int
	// Hops is r, the hop bound that keeps walks near the start node; it
	// matches the GNN depth.
	Hops int

	// Obs, when non-nil, receives an ExtractionDone event summarizing the
	// pass (walk-length and occurrence histograms); nil costs nothing.
	Obs obs.Observer
}

func (c *RWRConfig) validate(n int) error {
	switch {
	case c.SubgraphSize < 2 || c.SubgraphSize > n:
		return fmt.Errorf("sampling: subgraph size %d outside [2, |V|=%d]", c.SubgraphSize, n)
	case c.Theta < 1:
		return fmt.Errorf("sampling: theta %d < 1", c.Theta)
	case c.Tau < 0 || c.Tau >= 1:
		return fmt.Errorf("sampling: tau %v outside [0, 1)", c.Tau)
	case c.SamplingRate <= 0 || c.SamplingRate > 1:
		return fmt.Errorf("sampling: sampling rate %v outside (0, 1]", c.SamplingRate)
	case c.WalkLength < 1:
		return fmt.Errorf("sampling: walk length %d < 1", c.WalkLength)
	case c.Hops < 1:
		return fmt.Errorf("sampling: hops %d < 1", c.Hops)
	}
	return nil
}

// extractionStats accumulates the per-stage telemetry behind an
// ExtractionDone event; a nil *extractionStats (unobserved run) is a
// valid no-op receiver, so the walk loops stay branch-cheap.
type extractionStats struct {
	stage    string
	walks    int
	walkLens [obs.NumBuckets]uint64
}

// newExtractionStats returns nil when o is nil so all recording no-ops.
func newExtractionStats(o obs.Observer, stage string) *extractionStats {
	if o == nil {
		return nil
	}
	return &extractionStats{stage: stage}
}

// walk records one random walk that consumed the given number of steps.
func (st *extractionStats) walk(steps int) {
	if st == nil {
		return
	}
	st.walks++
	st.walkLens[obs.BucketIndex(float64(steps))]++
}

// emit sends the stage summary. subgraphs counts this stage's output;
// occ is the per-node occurrence audit (cumulative through this stage).
func (st *extractionStats) emit(o obs.Observer, subgraphs int, occ []int) {
	if st == nil {
		return
	}
	ev := obs.ExtractionDone{
		Stage:          st.stage,
		Subgraphs:      subgraphs,
		Walks:          st.walks,
		WalkLenBuckets: st.walkLens,
	}
	for _, c := range occ {
		if c > 0 {
			ev.OccurrenceBuckets[obs.BucketIndex(float64(c))]++
		}
		if c > ev.MaxOccurrence {
			ev.MaxOccurrence = c
		}
	}
	obs.Emit(o, ev)
}

// ExtractRWR runs Algorithm 1: project g to the θ-bounded graph, then for
// each node (selected with rate q) random-walk-with-restart within its
// r-hop neighborhood until n unique nodes are collected (or the L-step
// budget runs out, in which case no subgraph is emitted for that start).
func ExtractRWR(g *graph.Graph, cfg RWRConfig, rng *rand.Rand) (*Container, *graph.Graph, error) {
	if err := cfg.validate(g.NumNodes()); err != nil {
		return nil, nil, err
	}
	proj := graph.ProjectInDegree(g, cfg.Theta, rng)
	nbrs := weakNeighbors(proj)
	container := NewContainer(g.NumNodes())
	stats := newExtractionStats(cfg.Obs, "rwr")

	for v := 0; v < proj.NumNodes(); v++ {
		if rng.Float64() >= cfg.SamplingRate {
			continue
		}
		v0 := graph.NodeID(v)
		hood := weakRHop(nbrs, v0, cfg.Hops)
		collected := map[graph.NodeID]bool{v0: true}
		order := []graph.NodeID{v0}
		cur := v0
		steps := 0
		for ; steps < cfg.WalkLength && len(order) < cfg.SubgraphSize; steps++ {
			if rng.Float64() < cfg.Tau {
				cur = v0
			}
			next, ok := sampleUniform(nbrs[cur], hood, rng)
			if !ok {
				// Dead end within the neighborhood: restart.
				cur = v0
				continue
			}
			cur = next
			if !collected[next] {
				collected[next] = true
				order = append(order, next)
			}
		}
		stats.walk(steps)
		if len(order) == cfg.SubgraphSize {
			container.Add(graph.Induce(proj, order))
		}
	}
	stats.emit(cfg.Obs, container.Len(), container.Occurrences)
	return container, proj, nil
}

// sampleUniform picks a uniform member of cands that passes the allow set.
func sampleUniform(cands []graph.NodeID, allow map[graph.NodeID]bool, rng *rand.Rand) (graph.NodeID, bool) {
	eligible := make([]graph.NodeID, 0, len(cands))
	for _, c := range cands {
		if allow == nil || allow[c] {
			eligible = append(eligible, c)
		}
	}
	if len(eligible) == 0 {
		return 0, false
	}
	return eligible[rng.Intn(len(eligible))], true
}

// FreqConfig parameterizes Algorithm 3 (both stages).
type FreqConfig struct {
	// SubgraphSize is n for stage 1; stage 2 uses n/BESDivisor.
	SubgraphSize int
	// Tau is the restart probability τ.
	Tau float64
	// Mu is the decay factor µ in Eq. 9 controlling how strongly sampling
	// probability decays with frequency.
	Mu float64
	// SamplingRate is q.
	SamplingRate float64
	// WalkLength is L.
	WalkLength int
	// Threshold is M, the hard cap on any node's subgraph occurrences —
	// this becomes N_g* in the privacy accounting.
	Threshold int
	// BESDivisor is s: stage 2 extracts subgraphs of size n/s from the
	// boundary regions. Zero disables stage 2 (SCS only).
	BESDivisor int

	// Obs, when non-nil, receives one ExtractionDone event per stage
	// ("scs", then "bes" if it runs); nil costs nothing.
	Obs obs.Observer
}

func (c *FreqConfig) validate(n int) error {
	switch {
	case c.SubgraphSize < 2 || c.SubgraphSize > n:
		return fmt.Errorf("sampling: subgraph size %d outside [2, |V|=%d]", c.SubgraphSize, n)
	case c.Tau < 0 || c.Tau >= 1:
		return fmt.Errorf("sampling: tau %v outside [0, 1)", c.Tau)
	case c.Mu <= 0:
		return fmt.Errorf("sampling: decay mu %v <= 0", c.Mu)
	case c.SamplingRate <= 0 || c.SamplingRate > 1:
		return fmt.Errorf("sampling: sampling rate %v outside (0, 1]", c.SamplingRate)
	case c.WalkLength < 1:
		return fmt.Errorf("sampling: walk length %d < 1", c.WalkLength)
	case c.Threshold < 1:
		return fmt.Errorf("sampling: threshold M %d < 1", c.Threshold)
	case c.BESDivisor < 0:
		return fmt.Errorf("sampling: BES divisor %d < 0", c.BESDivisor)
	}
	return nil
}

// ExtractDualStage runs Algorithm 3 on g: Sensitivity-Constrained Sampling
// over the whole graph, then Boundary-Enhanced Sampling over the nodes that
// never reached the frequency threshold. The returned container's
// MaxOccurrence is guaranteed ≤ Threshold (the exact invariant behind
// PrivIM*'s privacy accounting with N_g* = M).
func ExtractDualStage(g *graph.Graph, cfg FreqConfig, rng *rand.Rand) (*Container, error) {
	if err := cfg.validate(g.NumNodes()); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	freq := make([]int, n)
	container := NewContainer(n)

	// Stage 1: SCS over the full graph.
	nbrs := weakNeighbors(g)
	scsStats := newExtractionStats(cfg.Obs, "scs")
	freqSampling(g, nbrs, freq, cfg, cfg.SubgraphSize, nil, container, rng, scsStats)
	scsStats.emit(cfg.Obs, container.Len(), container.Occurrences)

	if cfg.BESDivisor == 0 {
		return container, nil
	}

	// Stage 2: BES over the boundary graph G_re (nodes below threshold).
	drop := make(map[graph.NodeID]bool)
	for v := 0; v < n; v++ {
		if freq[v] >= cfg.Threshold {
			drop[graph.NodeID(v)] = true
		}
	}
	gre, keep := graph.RemoveNodes(g, drop)
	besSize := cfg.SubgraphSize / cfg.BESDivisor
	if besSize < 2 || gre.NumNodes() < besSize {
		return container, nil // boundary too small to supplement
	}
	// f* is freq remapped onto G_re's IDs; walking G_re but accounting
	// against the global frequency vector keeps the M invariant exact.
	freqRe := make([]int, gre.NumNodes())
	for i, orig := range keep {
		freqRe[i] = freq[orig]
	}
	nbrsRe := weakNeighbors(gre)
	stage2 := NewContainer(gre.NumNodes())
	besStats := newExtractionStats(cfg.Obs, "bes")
	freqSampling(gre, nbrsRe, freqRe, cfg, besSize, nil, stage2, rng, besStats)
	// Translate stage-2 subgraphs back to original node IDs.
	for _, s := range stage2.Subgraphs {
		orig := make([]graph.NodeID, len(s.Orig))
		for i, local := range s.Orig {
			orig[i] = keep[local]
		}
		container.Add(&graph.Subgraph{G: s.G, Orig: orig})
	}
	// The occurrence audit is cumulative: stage 2's additions count
	// against the same global M invariant.
	besStats.emit(cfg.Obs, stage2.Len(), container.Occurrences)
	return container, nil
}

// freqSampling is the FreqSampling function of Algorithm 3: frequency-aware
// RWR extraction updating freq in place. size is the target subgraph size;
// stats (nil-safe) records walk telemetry.
func freqSampling(g *graph.Graph, nbrs [][]graph.NodeID, freq []int, cfg FreqConfig, size int, allow map[graph.NodeID]bool, container *Container, rng *rand.Rand, stats *extractionStats) {
	// Walk state reused across starts: seen is an epoch-stamped membership
	// set (seen[u] == v+1 ⇔ u collected during the walk started at v),
	// order is the collection buffer (Induce copies it into the subgraph,
	// so clobbering it on the next walk is safe), and weights is the Eq. 9
	// buffer sized for the maximum weak degree.
	seen := make([]int32, g.NumNodes())
	order := make([]graph.NodeID, 0, size)
	maxDeg := 0
	for _, l := range nbrs {
		if len(l) > maxDeg {
			maxDeg = len(l)
		}
	}
	weights := make([]float64, maxDeg)
	for v := 0; v < g.NumNodes(); v++ {
		if rng.Float64() >= cfg.SamplingRate || freq[v] >= cfg.Threshold {
			continue
		}
		v0 := graph.NodeID(v)
		epoch := int32(v + 1)
		seen[v0] = epoch
		order = append(order[:0], v0)
		cur := v0
		steps := 0
		for ; steps < cfg.WalkLength && len(order) < size; steps++ {
			if rng.Float64() < cfg.Tau {
				cur = v0
			}
			next, ok := sampleByFrequency(nbrs[cur], freq, cfg, allow, weights, rng)
			if !ok {
				cur = v0
				continue
			}
			cur = next
			if seen[next] != epoch {
				seen[next] = epoch
				order = append(order, next)
			}
		}
		stats.walk(steps)
		if len(order) != size {
			continue
		}
		container.Add(graph.Induce(g, order))
		for _, u := range order {
			freq[u]++
		}
	}
}

// sampleByFrequency implements Eq. 9: neighbor v is drawn with probability
// proportional to e_v = 1/(f_v+1)^µ, with e_v = 0 once f_v ≥ M. weights is
// a caller-owned scratch buffer with cap ≥ len(cands); its leading entries
// are zeroed here, so reuse across calls is safe.
func sampleByFrequency(cands []graph.NodeID, freq []int, cfg FreqConfig, allow map[graph.NodeID]bool, weights []float64, rng *rand.Rand) (graph.NodeID, bool) {
	total := 0.0
	weights = weights[:len(cands)]
	for i := range weights {
		weights[i] = 0
	}
	for i, c := range cands {
		if allow != nil && !allow[c] {
			continue
		}
		if freq[c] >= cfg.Threshold {
			continue
		}
		w := math.Pow(float64(freq[c]+1), -cfg.Mu)
		weights[i] = w
		total += w
	}
	if total == 0 {
		return 0, false
	}
	r := rng.Float64() * total
	for i, w := range weights {
		if w == 0 {
			continue
		}
		r -= w
		if r <= 0 {
			return cands[i], true
		}
	}
	// Floating-point slack: return the last eligible candidate.
	for i := len(cands) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return cands[i], true
		}
	}
	return 0, false
}
