// Package ldp implements the local-differential-privacy extension the
// paper names as future work (§VII): instead of a trusted curator adding
// noise during training, each user locally perturbs their own adjacency
// list with randomized response before anything leaves their device. The
// server then debiases aggregate statistics and selects seeds from the
// sanitized view — the "seeding with differentially private network
// information" setting of the paper's reference [29].
//
// Under the one-sided ownership model (each directed arc belongs to its
// source), reporting a randomized-response version of one's out-neighbor
// bit vector satisfies ε-LDP for that user's entire neighbor list when
// each bit is flipped with the standard RR probabilities.
package ldp

import (
	"fmt"
	"math"
	"math/rand"

	"privim/internal/graph"
)

// RRProbabilities returns (p, q) for ε-randomized response on one bit:
// a true bit is reported truthfully with probability p = e^ε/(1+e^ε) and a
// false bit is reported as true with probability q = 1/(1+e^ε).
func RRProbabilities(eps float64) (p, q float64) {
	if eps <= 0 {
		panic(fmt.Sprintf("ldp: epsilon %v must be positive", eps))
	}
	e := math.Exp(eps)
	return e / (1 + e), 1 / (1 + e)
}

// PerturbOutDegrees simulates every user applying ε-randomized response to
// their out-adjacency bit vector and returns the *observed* (noisy)
// out-degree reports. Only the degree aggregate is materialized — the full
// perturbed graph would have Θ(q·n²) edges.
func PerturbOutDegrees(g *graph.Graph, eps float64, rng *rand.Rand) []float64 {
	p, q := RRProbabilities(eps)
	n := g.NumNodes()
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		trueDeg := g.OutDegree(graph.NodeID(v))
		// Observed = Binomial(trueDeg, p) + Binomial(n-1-trueDeg, q):
		// surviving true bits plus flipped false bits. Sampled exactly.
		obs := 0
		for i := 0; i < trueDeg; i++ {
			if rng.Float64() < p {
				obs++
			}
		}
		for i := 0; i < n-1-trueDeg; i++ {
			if rng.Float64() < q {
				obs++
			}
		}
		out[v] = float64(obs)
	}
	return out
}

// DebiasDegrees converts observed RR degree reports into unbiased
// estimates of the true out-degrees:
//
//	d̂ = (observed − (n−1)·q) / (p − q)
func DebiasDegrees(observed []float64, numNodes int, eps float64) []float64 {
	p, q := RRProbabilities(eps)
	est := make([]float64, len(observed))
	for i, o := range observed {
		est[i] = (o - float64(numNodes-1)*q) / (p - q)
	}
	return est
}

// DegreeSeeder selects the k nodes with the highest debiased LDP degree
// estimates — the strongest seed selector available without any trusted
// curator. Its utility degrades gracefully as ε shrinks, which is the
// LDP-vs-central-DP trade-off the paper's future work contemplates.
type DegreeSeeder struct {
	G       *graph.Graph
	Epsilon float64
	Seed    int64
}

// Name implements the im.Solver naming convention.
func (s *DegreeSeeder) Name() string { return "ldp-degree" }

// Select returns the top-k nodes by debiased noisy degree.
func (s *DegreeSeeder) Select(k int) []graph.NodeID {
	n := s.G.NumNodes()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(s.Seed))
	observed := PerturbOutDegrees(s.G, s.Epsilon, rng)
	est := DebiasDegrees(observed, n, s.Epsilon)
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	// Sort by estimate descending, ID ascending on ties (determinism).
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := ids[j-1], ids[j]
			if est[a] > est[b] || (est[a] == est[b] && a < b) {
				break
			}
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	return ids[:k]
}

// ExpectedDegreeError returns the standard deviation of the debiased
// degree estimator for a graph of numNodes nodes at budget eps — the
// planning formula for choosing ε in deployments:
//
//	σ(d̂) ≈ √((n−1)·q·(1−q)) / (p − q)   (false-bit noise dominates)
func ExpectedDegreeError(numNodes int, eps float64) float64 {
	p, q := RRProbabilities(eps)
	return math.Sqrt(float64(numNodes-1)*q*(1-q)) / (p - q)
}
