package ldp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"privim/internal/dataset"
	"privim/internal/graph"
	"privim/internal/im"
)

func TestRRProbabilities(t *testing.T) {
	p, q := RRProbabilities(math.Log(3)) // e^eps = 3
	if math.Abs(p-0.75) > 1e-12 || math.Abs(q-0.25) > 1e-12 {
		t.Fatalf("RR(ln 3) = (%v, %v), want (0.75, 0.25)", p, q)
	}
	// p + q = 1 always; p/q = e^eps.
	for _, eps := range []float64{0.1, 1, 5} {
		p, q := RRProbabilities(eps)
		if math.Abs(p+q-1) > 1e-12 {
			t.Fatalf("p+q = %v", p+q)
		}
		if math.Abs(p/q-math.Exp(eps)) > 1e-9 {
			t.Fatalf("p/q = %v, want e^%v", p/q, eps)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for eps <= 0")
		}
	}()
	RRProbabilities(0)
}

func TestDebiasUnbiased(t *testing.T) {
	// Average debiased estimate over many perturbations must approach the
	// true degree.
	g := graph.NewWithNodes(50, true)
	for v := 1; v <= 20; v++ {
		g.AddEdge(0, graph.NodeID(v), 1) // node 0 has out-degree 20
	}
	const eps = 1.0
	const trials = 400
	rng := rand.New(rand.NewSource(1))
	sum := 0.0
	for i := 0; i < trials; i++ {
		obs := PerturbOutDegrees(g, eps, rng)
		est := DebiasDegrees(obs, g.NumNodes(), eps)
		sum += est[0]
	}
	mean := sum / trials
	if math.Abs(mean-20) > 1.5 {
		t.Fatalf("debiased mean %v, want ≈20", mean)
	}
}

func TestHighEpsilonRecoversExactDegrees(t *testing.T) {
	g := graph.NewWithNodes(30, true)
	for v := 1; v < 10; v++ {
		g.AddEdge(0, graph.NodeID(v), 1)
		g.AddEdge(graph.NodeID(v), graph.NodeID(v-1), 1)
	}
	rng := rand.New(rand.NewSource(2))
	obs := PerturbOutDegrees(g, 20, rng) // e^20: essentially no noise
	est := DebiasDegrees(obs, g.NumNodes(), 20)
	for v := 0; v < g.NumNodes(); v++ {
		if math.Abs(est[v]-float64(g.OutDegree(graph.NodeID(v)))) > 0.5 {
			t.Fatalf("node %d estimate %v, true %d", v, est[v], g.OutDegree(graph.NodeID(v)))
		}
	}
}

func TestDegreeSeederFindsHubsAtModerateEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := dataset.BarabasiAlbert(300, 3, rng)
	g.SetUniformWeights(1)
	s := &DegreeSeeder{G: g, Epsilon: 3, Seed: 4}
	seeds := s.Select(10)
	if err := im.ValidateSeeds(seeds, g.NumNodes()); err != nil {
		t.Fatal(err)
	}
	// Compare against true top degrees: substantial overlap expected.
	trueTop := (&im.Degree{G: g}).Select(10)
	trueSet := map[graph.NodeID]bool{}
	for _, v := range trueTop {
		trueSet[v] = true
	}
	overlap := 0
	for _, v := range seeds {
		if trueSet[v] {
			overlap++
		}
	}
	if overlap < 5 {
		t.Fatalf("LDP seeds %v overlap only %d/10 with true hubs %v", seeds, overlap, trueTop)
	}
}

func TestDegreeSeederDegradesWithEpsilon(t *testing.T) {
	// Utility must degrade as eps shrinks: measured as overlap with true
	// hubs, averaged over seeds.
	rng := rand.New(rand.NewSource(5))
	g := dataset.BarabasiAlbert(200, 3, rng)
	trueTop := (&im.Degree{G: g}).Select(10)
	trueSet := map[graph.NodeID]bool{}
	for _, v := range trueTop {
		trueSet[v] = true
	}
	overlapAt := func(eps float64) int {
		total := 0
		for trial := int64(0); trial < 10; trial++ {
			s := &DegreeSeeder{G: g, Epsilon: eps, Seed: trial}
			for _, v := range s.Select(10) {
				if trueSet[v] {
					total++
				}
			}
		}
		return total
	}
	strong := overlapAt(6)
	weak := overlapAt(0.1)
	if weak >= strong {
		t.Fatalf("overlap should degrade with privacy: eps=0.1 gives %d, eps=6 gives %d", weak, strong)
	}
}

func TestDegreeSeederEdgeCases(t *testing.T) {
	g := graph.NewWithNodes(5, true)
	g.AddEdge(0, 1, 1)
	s := &DegreeSeeder{G: g, Epsilon: 1, Seed: 1}
	if got := s.Select(0); got != nil {
		t.Fatalf("Select(0) = %v", got)
	}
	if got := s.Select(10); len(got) != 5 {
		t.Fatalf("Select(10) = %d seeds", len(got))
	}
	if s.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestExpectedDegreeError(t *testing.T) {
	// Error shrinks with eps and grows with n.
	if ExpectedDegreeError(1000, 1) <= ExpectedDegreeError(1000, 4) {
		t.Fatal("error should shrink with epsilon")
	}
	if ExpectedDegreeError(10000, 1) <= ExpectedDegreeError(100, 1) {
		t.Fatal("error should grow with n")
	}
	// Sanity: matches the empirical std within 20%.
	g := graph.NewWithNodes(200, true)
	for v := 1; v <= 30; v++ {
		g.AddEdge(0, graph.NodeID(v), 1)
	}
	rng := rand.New(rand.NewSource(6))
	var ests []float64
	for i := 0; i < 300; i++ {
		obs := PerturbOutDegrees(g, 1, rng)
		ests = append(ests, DebiasDegrees(obs, 200, 1)[0])
	}
	var mean, varSum float64
	for _, e := range ests {
		mean += e
	}
	mean /= float64(len(ests))
	for _, e := range ests {
		varSum += (e - mean) * (e - mean)
	}
	empStd := math.Sqrt(varSum / float64(len(ests)))
	predStd := ExpectedDegreeError(200, 1)
	if empStd < 0.6*predStd || empStd > 1.4*predStd {
		t.Fatalf("empirical std %v vs predicted %v", empStd, predStd)
	}
}

// Property: debiasing is exactly inverse to the RR expectation.
func TestDebiasProperty(t *testing.T) {
	f := func(rawDeg uint8, rawEps uint8) bool {
		n := 100
		deg := int(rawDeg) % n
		eps := 0.5 + float64(rawEps%50)/10
		p, q := RRProbabilities(eps)
		expectedObs := float64(deg)*p + float64(n-1-deg)*q
		est := DebiasDegrees([]float64{expectedObs}, n, eps)
		return math.Abs(est[0]-float64(deg)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
