// Package cliutil holds the flag plumbing shared by the privim binaries
// (cmd/privim, cmd/imbench, cmd/privimd): the -journal / -debug-addr
// observability pair and the assembly of the observer stack they
// request. Centralizing it keeps the three CLIs' behavior identical —
// same flag names, same help text, same journal/debug lifecycle.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"privim/internal/obs"
	"privim/internal/parallel"
)

// RegisterWorkers installs the shared -workers flag on fs. Call
// ApplyWorkers with the parsed value after fs.Parse; keeping the two steps
// explicit lets the daemon apply it before computing per-job budgets.
func RegisterWorkers(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0,
		"worker-pool width for parallel kernels (GEMM, DP-SGD, RR sets, MC rounds); 0 = PRIVIM_WORKERS env, then GOMAXPROCS")
}

// ApplyWorkers pins the process-wide pool width when n > 0; n <= 0 leaves
// the PRIVIM_WORKERS / GOMAXPROCS default in place. Results of every
// parallel path are bit-for-bit independent of the width — the flag trades
// wall-clock against CPU share only.
func ApplyWorkers(n int) {
	if n > 0 {
		parallel.SetLimit(n)
	}
}

// CheckpointFlags is the shared crash-safety flag pair: a checkpoint
// directory and a save cadence. A binary registers them, then copies the
// parsed values into privim.Config.CheckpointDir / CheckpointEvery (or
// serve.Options.CheckpointEvery for the daemon, whose per-job directories
// live under its journal dir).
type CheckpointFlags struct {
	Dir   string
	Every int
}

// Register installs -checkpoint-dir and -checkpoint-every on fs with the
// shared help text.
func (f *CheckpointFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Dir, "checkpoint-dir", "",
		"write crash-safe training checkpoints into this directory and auto-resume from the newest valid one (resumed runs are bit-for-bit identical to uninterrupted ones)")
	fs.IntVar(&f.Every, "checkpoint-every", 0,
		"checkpoint cadence in training iterations (default 10; only with -checkpoint-dir)")
}

// ObserverFlags is the observability flag pair every binary exposes.
// Register installs the flags on a FlagSet; Setup builds the stack the
// parsed values request.
type ObserverFlags struct {
	Journal   string
	DebugAddr string
}

// Register installs -journal and -debug-addr on fs with the shared help
// text.
func (f *ObserverFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Journal, "journal", "",
		"append a JSONL event journal (spans, per-iteration loss/ε, MC batches) to this path")
	fs.StringVar(&f.DebugAddr, "debug-addr", "",
		"serve live metrics (expvar /debug/vars) and pprof (/debug/pprof/) on host:port")
}

// Stack is the assembled observability plumbing: the fan-out Observer to
// hand to pipeline configs (nil when neither flag was set, so the
// zero-cost unobserved path is preserved), plus the registry and debug
// server when -debug-addr requested them. Close must run before exit to
// drain the journal and stop the debug listener.
type Stack struct {
	Observer obs.Observer
	Registry *obs.Registry    // non-nil iff -debug-addr was set
	Debug    *obs.DebugServer // non-nil iff -debug-addr was set

	name string
	sink *obs.JSONLSink
	file *os.File
}

// Setup assembles what the flags request: a JSONL journal sink when
// -journal is set, and a metrics registry published via expvar under
// name behind a pprof-enabled debug listener when -debug-addr is set.
// A non-nil reg is used in place of a fresh registry — the daemon shares
// one registry between its /metrics endpoint and /debug/vars.
func (f *ObserverFlags) Setup(name string, reg *obs.Registry) (*Stack, error) {
	s := &Stack{name: name}
	var observers []obs.Observer
	if f.Journal != "" {
		file, err := os.Create(f.Journal)
		if err != nil {
			return nil, err
		}
		s.file = file
		s.sink = obs.NewJSONLSink(file)
		observers = append(observers, s.sink)
	}
	if f.DebugAddr != "" {
		// A caller-provided registry is published but not fanned into the
		// observer — the caller already routes events into it (the daemon
		// wires it through serve.Options.Registry); appending it here
		// would double-count every event.
		owned := reg == nil
		if owned {
			reg = obs.NewRegistry()
		}
		if err := reg.Publish(name); err != nil {
			s.closeJournal()
			return nil, err
		}
		dbg, err := obs.StartDebugServer(f.DebugAddr)
		if err != nil {
			s.closeJournal()
			return nil, err
		}
		s.Registry, s.Debug = reg, dbg
		fmt.Printf("debug server: http://%s/debug/vars (metrics), http://%s/debug/pprof/ (profiles)\n",
			dbg.Addr(), dbg.Addr())
		if owned {
			observers = append(observers, reg)
		}
	}
	s.Observer = obs.Multi(observers...)
	return s, nil
}

// Close drains the journal to disk and gracefully stops the debug
// server (bounded wait for in-flight scrapes).
func (s *Stack) Close() {
	s.closeJournal()
	if s.Debug != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = s.Debug.Shutdown(ctx)
	}
}

func (s *Stack) closeJournal() {
	if s.sink == nil {
		return
	}
	if err := s.sink.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: journal: %v\n", s.name, err)
	}
	s.file.Close()
	s.sink, s.file = nil, nil
}
