// Package cliutil holds the flag plumbing shared by the privim binaries
// (cmd/privim, cmd/imbench, cmd/privimd): the observability flag set
// (-journal, -debug-addr, -trace-out, -slow-span, -stats-every,
// -profile-dir) and the assembly of the observer stack they request.
// Centralizing it keeps the CLIs' behavior identical — same flag names,
// same help text, same journal/trace/debug lifecycle.
package cliutil

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"privim/internal/obs"
	"privim/internal/obs/history"
	"privim/internal/parallel"
)

// RegisterWorkers installs the shared -workers flag on fs. Call
// ApplyWorkers with the parsed value after fs.Parse; keeping the two steps
// explicit lets the daemon apply it before computing per-job budgets.
func RegisterWorkers(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0,
		"worker-pool width for parallel kernels (GEMM, DP-SGD, RR sets, MC rounds); 0 = PRIVIM_WORKERS env, then GOMAXPROCS")
}

// ApplyWorkers pins the process-wide pool width when n > 0; n <= 0 leaves
// the PRIVIM_WORKERS / GOMAXPROCS default in place. Results of every
// parallel path are bit-for-bit independent of the width — the flag trades
// wall-clock against CPU share only.
func ApplyWorkers(n int) {
	if n > 0 {
		parallel.SetLimit(n)
	}
}

// CheckpointFlags is the shared crash-safety flag pair: a checkpoint
// directory and a save cadence. A binary registers them, then copies the
// parsed values into privim.Config.CheckpointDir / CheckpointEvery (or
// serve.Options.CheckpointEvery for the daemon, whose per-job directories
// live under its journal dir).
type CheckpointFlags struct {
	Dir   string
	Every int
}

// Register installs -checkpoint-dir and -checkpoint-every on fs with the
// shared help text.
func (f *CheckpointFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Dir, "checkpoint-dir", "",
		"write crash-safe training checkpoints into this directory and auto-resume from the newest valid one (resumed runs are bit-for-bit identical to uninterrupted ones)")
	fs.IntVar(&f.Every, "checkpoint-every", 0,
		"checkpoint cadence in training iterations (default 10; only with -checkpoint-dir)")
}

// BudgetFlags is the shared privacy-budget flag set: an enforced per-
// (tenant, graph) ε limit, the δ the ledger composes at, and the
// append-only ledger file that makes the budget durable. The daemon
// names the path flag -budget-ledger; the trainer CLI names it
// -budget-file (its ledger is a local file, not a serving directory).
type BudgetFlags struct {
	Budget float64
	Delta  float64
	Path   string
}

// Register installs -budget, -budget-delta, and the named path flag on
// fs with the shared help text.
func (f *BudgetFlags) Register(fs *flag.FlagSet, pathFlag string) {
	fs.Float64Var(&f.Budget, "budget", 0,
		"enforce a per-(tenant, graph) privacy budget ε across training runs; runs that would exceed it are denied (0 = no enforcement)")
	fs.Float64Var(&f.Delta, "budget-delta", 0,
		"δ at which the budget ledger composes accumulated RDP spend (default 1e-5)")
	fs.StringVar(&f.Path, pathFlag, "",
		"append-only JSONL privacy-budget ledger; replayed on start so spend survives restarts")
}

// ObserverFlags is the observability flag set every binary exposes.
// Register installs the flags on a FlagSet; Setup builds the stack the
// parsed values request.
type ObserverFlags struct {
	Journal     string
	DebugAddr   string
	TraceOut    string
	SlowSpan    time.Duration
	StatsEvery  time.Duration
	ProfileDir  string
	ProfileKeep int
}

// Register installs -journal, -debug-addr, -trace-out, -slow-span,
// -stats-every, -profile-dir, and -profile-keep on fs with the shared
// help text.
func (f *ObserverFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Journal, "journal", "",
		"append a JSONL event journal (spans, per-iteration loss/ε, MC batches) to this path")
	fs.StringVar(&f.DebugAddr, "debug-addr", "",
		"serve live metrics (expvar /debug/vars, Prometheus /metrics/prom) and pprof (/debug/pprof/) on host:port")
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"write a Chrome trace-event JSON timeline of the run to this path (open in https://ui.perfetto.dev)")
	fs.DurationVar(&f.SlowSpan, "slow-span", 0,
		"emit a span_slow event when any span exceeds this duration (0 = off)")
	fs.DurationVar(&f.StatsEvery, "stats-every", 0,
		"print a one-line telemetry summary (iterations, loss, ε spent, goroutines, heap) to stderr every interval and keep an in-process metric history, queryable at the debug server's /v1/stats and /v1/alerts (0 = off)")
	fs.StringVar(&f.ProfileDir, "profile-dir", "",
		"capture pprof heap+CPU profile pairs into this directory when an alert rule fires or a -slow-span watchdog trips, keeping only the newest few (see -profile-keep)")
	fs.IntVar(&f.ProfileKeep, "profile-keep", 0,
		"number of triggered profile captures to keep in -profile-dir before pruning the oldest (default 8)")
}

// Stack is the assembled observability plumbing: the fan-out Observer to
// hand to pipeline configs (nil when no event-consuming flag was set, so
// the zero-cost unobserved path is preserved), plus the registry and
// debug server when -debug-addr requested them. TraceID is the run's
// trace — minted once per Setup and stamped on the journal and every
// span started via Context. Close must run before exit to drain the
// journal, convert the trace timeline, and stop the debug listener.
type Stack struct {
	Observer obs.Observer
	Registry *obs.Registry        // non-nil when -debug-addr or -stats-every was set
	Debug    *obs.DebugServer     // non-nil iff -debug-addr was set
	Sampler  *history.Sampler     // non-nil iff -stats-every was set
	Profiles *history.ProfileRing // non-nil iff -profile-dir was set
	TraceID  string

	name      string
	sink      *obs.JSONLSink
	file      *os.File
	traceBuf  *bytes.Buffer
	traceSink *obs.JSONLSink
	traceOut  string
	watchdog  *obs.SlowSpanWatchdog
	statsStop chan struct{}
	statsDone chan struct{}
}

// Context returns ctx carrying the stack's trace ID, for threading into
// the context-aware pipeline entry points (privim.TrainContext,
// im SelectContext, diffusion.EstimateContext).
func (s *Stack) Context(ctx context.Context) context.Context {
	return obs.ContextWithTrace(ctx, s.TraceID)
}

// Setup assembles what the flags request: a JSONL journal sink when
// -journal is set, a Chrome trace-event timeline when -trace-out is set,
// a slow-span watchdog when -slow-span is set, a triggered-profile ring
// when -profile-dir is set, a history sampler plus a periodic stderr
// telemetry line when -stats-every is set, and a metrics registry
// published via expvar under name behind a pprof-enabled debug listener
// when -debug-addr is set. A non-nil reg is used in place of a fresh
// registry — the daemon shares one registry between its /metrics
// endpoint and /debug/vars.
func (f *ObserverFlags) Setup(name string, reg *obs.Registry) (*Stack, error) {
	s := &Stack{name: name, TraceID: obs.NewTraceID()}
	var observers []obs.Observer
	var sinks []obs.Observer // journal + trace only: alert events tee here
	if f.Journal != "" {
		file, err := os.Create(f.Journal)
		if err != nil {
			return nil, err
		}
		s.file = file
		s.sink = obs.NewJSONLSink(file)
		s.sink.SetTrace(s.TraceID)
		observers = append(observers, s.sink)
		sinks = append(sinks, s.sink)
	}
	if f.TraceOut != "" {
		// Events journal into memory during the run; Close converts the
		// buffer to trace-event JSON (the converter needs the whole stream
		// to lay spans out on virtual threads).
		s.traceBuf = &bytes.Buffer{}
		s.traceOut = f.TraceOut
		s.traceSink = obs.NewJSONLSink(s.traceBuf)
		s.traceSink.SetTrace(s.TraceID)
		observers = append(observers, s.traceSink)
		sinks = append(sinks, s.traceSink)
	}
	if f.ProfileDir != "" {
		ring, err := history.NewProfileRing(history.ProfileOptions{
			Dir:  f.ProfileDir,
			Keep: f.ProfileKeep,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, name+": profile: "+format+"\n", args...)
			},
		})
		if err != nil {
			s.closeJournal()
			return nil, err
		}
		s.Profiles = ring
		// Before the watchdog wrap below: SpanSlow events flow through the
		// wrapped chain, so the capture hook must sit inside it.
		observers = append(observers, ring.CaptureOnSlowSpan())
	}
	// A caller-provided registry is published but not fanned into the
	// observer — the caller already routes events into it (the daemon
	// wires it through serve.Options.Registry); appending it here would
	// double-count every event. An owned registry (created because
	// -debug-addr or -stats-every needs one) does join the fan-out.
	owned := false
	if reg == nil && (f.DebugAddr != "" || f.StatsEvery > 0) {
		owned = true
		reg = obs.NewRegistry()
	}
	if f.DebugAddr != "" {
		if err := reg.Publish(name); err != nil {
			s.closeJournal()
			return nil, err
		}
		dbg, err := obs.StartDebugServer(f.DebugAddr, reg)
		if err != nil {
			s.closeJournal()
			return nil, err
		}
		s.Debug = dbg
		fmt.Printf("debug server: http://%s/debug/vars (metrics), http://%s/metrics/prom (Prometheus), http://%s/debug/pprof/ (profiles)\n",
			dbg.Addr(), dbg.Addr(), dbg.Addr())
	}
	if reg != nil {
		s.Registry = reg
		if owned {
			observers = append(observers, reg)
		}
	}
	if f.StatsEvery > 0 {
		// The sampler routes alert_fired/alert_resolved into the registry
		// itself; tee them into the journal/trace sinks too so tracecat can
		// overlay alerts on the run timeline.
		s.Sampler = history.New(history.Options{
			Registry: reg,
			Every:    f.StatsEvery,
			Observer: obs.Multi(sinks...),
			Profiles: s.Profiles,
		})
		s.Sampler.Start()
		if s.Debug != nil {
			s.Debug.Handle("GET /v1/stats", history.StatsHandler(s.Sampler))
			s.Debug.Handle("GET /v1/alerts", history.AlertsHandler(s.Sampler))
		}
		s.statsStop = make(chan struct{})
		s.statsDone = make(chan struct{})
		go s.statsLoop(reg, f.StatsEvery)
	}
	s.Observer = obs.Multi(observers...)
	if f.SlowSpan > 0 && s.Observer != nil {
		s.watchdog = obs.NewSlowSpanWatchdog(f.SlowSpan, s.Observer)
		s.Observer = s.watchdog
	}
	return s, nil
}

// statsLoop prints a one-line telemetry summary to stderr every interval
// — enough to watch a long training run from a terminal without a debug
// server. The history sampler (always running when the loop is) keeps
// the go.* runtime gauges fresh.
func (s *Stack) statsLoop(reg *obs.Registry, every time.Duration) {
	defer close(s.statsDone)
	tick := time.NewTicker(every)
	defer tick.Stop()
	iters := reg.Counter("train.iterations")
	loss := reg.Gauge("train.loss")
	eps := reg.Gauge("train.epsilon_spent")
	goroutines := reg.Gauge("go.goroutines")
	heap := reg.Gauge("go.heap_bytes")
	open := reg.Gauge("span.open")
	alerts := reg.Gauge("alert.active")
	for {
		select {
		case <-s.statsStop:
			return
		case <-tick.C:
			fmt.Fprintf(os.Stderr,
				"%s: stats iter=%d loss=%.4g eps=%.4g goroutines=%d heap=%.1fMB spans_open=%d alerts=%d\n",
				s.name, iters.Value(), loss.Value(), eps.Value(),
				int(goroutines.Value()), heap.Value()/(1<<20),
				int(open.Value()), int(alerts.Value()))
		}
	}
}

// Close stops the stats loop and history sampler, stops the watchdog,
// drains the journal to disk, converts the -trace-out timeline, waits
// for in-flight profile captures, and gracefully stops the debug server
// (bounded wait for in-flight scrapes).
func (s *Stack) Close() {
	if s.statsStop != nil {
		close(s.statsStop)
		<-s.statsDone
		s.statsStop, s.statsDone = nil, nil
	}
	if s.Sampler != nil {
		// Before the journal drain below: the final tick may resolve alerts
		// whose events belong in the journal.
		s.Sampler.Close()
	}
	if s.watchdog != nil {
		s.watchdog.Close()
		s.watchdog = nil
	}
	s.Profiles.Wait()
	s.closeJournal()
	s.writeTrace()
	if s.Debug != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = s.Debug.Shutdown(ctx)
	}
}

func (s *Stack) closeJournal() {
	if s.sink == nil {
		return
	}
	if err := s.sink.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: journal: %v\n", s.name, err)
	}
	s.file.Close()
	s.sink, s.file = nil, nil
}

// writeTrace converts the buffered event stream into the -trace-out
// Chrome trace-event file.
func (s *Stack) writeTrace() {
	if s.traceBuf == nil {
		return
	}
	if err := s.traceSink.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: trace-out: %v\n", s.name, err)
	}
	buf := s.traceBuf
	s.traceBuf, s.traceSink = nil, nil
	f, err := os.Create(s.traceOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: trace-out: %v\n", s.name, err)
		return
	}
	if err := obs.WriteChromeTrace(buf, f, ""); err != nil {
		fmt.Fprintf(os.Stderr, "%s: trace-out: %v\n", s.name, err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: trace-out: %v\n", s.name, err)
	}
}
