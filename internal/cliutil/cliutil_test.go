package cliutil

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"privim/internal/obs"
)

// TestSetupStatsEveryOwnedRegistry: -stats-every alone (no -debug-addr)
// still creates a registry, fans events into it, and runs the history
// sampler over it.
func TestSetupStatsEveryOwnedRegistry(t *testing.T) {
	f := ObserverFlags{StatsEvery: 2 * time.Millisecond}
	s, err := f.Setup("test", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Registry == nil {
		t.Fatal("no registry despite -stats-every")
	}
	if s.Sampler == nil {
		t.Fatal("no sampler despite -stats-every")
	}
	if s.Observer == nil {
		t.Fatal("owned registry not fanned into the observer")
	}
	// An event through the stack's observer lands in the registry…
	obs.Emit(s.Observer, obs.AlertFired{Rule: "r", Metric: "m", Value: 1})
	if got := s.Registry.Counter("alert.fired").Value(); got != 1 {
		t.Fatalf("alert.fired = %d, want 1", got)
	}
	// …and the sampler banks it into a queryable series.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if se := s.Sampler.Query("alert.fired", time.Minute, time.Now()); len(se) > 0 && len(se[0].Points) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler never banked alert.fired")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSetupCallerRegistryNotDoubleCounted: a caller-provided registry is
// used by the sampler but not appended to the observer fan-out (the
// caller already routes events into it).
func TestSetupCallerRegistryNotDoubleCounted(t *testing.T) {
	reg := obs.NewRegistry()
	f := ObserverFlags{StatsEvery: time.Minute}
	s, err := f.Setup("test", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Registry != reg {
		t.Fatal("caller registry not adopted")
	}
	if s.Sampler == nil {
		t.Fatal("no sampler despite -stats-every")
	}
	if s.Observer != nil {
		t.Fatal("caller registry fanned into the observer: events would double-count")
	}
}

// TestSetupProfileDirCapturesOnSlowSpan: with -profile-dir and
// -slow-span, a slow span flowing through the stack's observer triggers
// a heap-profile capture into the ring directory.
func TestSetupProfileDirCapturesOnSlowSpan(t *testing.T) {
	dir := t.TempDir()
	f := ObserverFlags{ProfileDir: dir, SlowSpan: time.Nanosecond}
	s, err := f.Setup("test", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Profiles == nil {
		s.Close()
		t.Fatal("no profile ring despite -profile-dir")
	}
	// The watchdog forwards every event to the wrapped chain, so a
	// synthetic SpanSlow reaches the capture hook directly.
	obs.Emit(s.Observer, obs.SpanSlow{Span: "train", Elapsed: time.Second})
	s.Close() // waits for the in-flight capture
	matches, err := filepath.Glob(filepath.Join(dir, "*.pprof"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no profiles captured in %s (err %v)", dir, err)
	}
	for _, m := range matches {
		if fi, err := os.Stat(m); err != nil || fi.Size() == 0 {
			// CPU captures may legitimately be dropped, but files that exist
			// must be non-empty.
			t.Fatalf("empty profile artifact %s", m)
		}
	}
}
