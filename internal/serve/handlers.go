package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"

	"privim/internal/dataset"
	"privim/internal/gnn"
	"privim/internal/graph"
	"privim/internal/im"
	"privim/internal/ledger"
	"privim/internal/obs"
	"privim/internal/tensor"
)

// handleHealth reports liveness; a draining server answers 503 so load
// balancers stop routing to it while in-flight work completes.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves the live registry snapshot (request counters,
// latency histograms, cache hit/miss, job and training telemetry).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// --- model registry CRUD ---

func (s *Server) handleModelList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.models.List()})
}

// handleModelPut accepts a raw gnn.Save checkpoint body under
// /v1/models/{name}; ?version=N pins a version (default: next free).
func (s *Server) handleModelPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if strings.ContainsRune(name, '@') {
		httpError(w, http.StatusBadRequest, "upload to a bare model name, not a versioned reference")
		return
	}
	version := 0
	if v := r.URL.Query().Get("version"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad version %q", v)
			return
		}
		version = n
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	m, err := gnn.Load(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding checkpoint: %v", err)
		return
	}
	info, err := s.models.Put(name, version, m)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.opts.Logf("serve: model %s registered (%s, %d params)", info.Ref(), info.Kind, info.Params)
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	e, err := s.models.Resolve(r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, e.info)
}

func (s *Server) handleModelDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.models.Delete(r.PathValue("name")); err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- graph store CRUD ---

func (s *Server) handleGraphList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.graphs.List()})
}

// handleGraphPut accepts a privim-edgelist or SNAP-style edge-list body
// under /v1/graphs/{name} and returns the stored graph's fingerprint.
func (s *Server) handleGraphPut(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooLarge.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	g, err := parseGraphUpload(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing graph: %v", err)
		return
	}
	info, err := s.graphs.Put(r.PathValue("name"), g)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.opts.Logf("serve: graph %s stored (|V|=%d |E|=%d fp=%s)",
		info.Name, info.Nodes, info.Edges, info.Fingerprint)
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	e, err := s.graphs.Get(r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, e.info)
}

func (s *Server) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.graphs.Delete(r.PathValue("name")); err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- query endpoints ---

// queryRequest is the POST /v1/score and /v1/seeds body.
type queryRequest struct {
	Model string `json:"model"` // "name" or "name@version"
	Graph string `json:"graph"` // graph store name
	K     int    `json:"k,omitempty"`
}

// queryResponse answers both query endpoints; Seeds is set for /v1/seeds
// and Scores for /v1/score. Cached reports whether the LRU answered.
type queryResponse struct {
	Model       string         `json:"model"`
	Graph       string         `json:"graph"`
	Fingerprint string         `json:"fingerprint"`
	K           int            `json:"k,omitempty"`
	Seeds       []graph.NodeID `json:"seeds,omitempty"`
	Scores      []float64      `json:"scores,omitempty"`
	Cached      bool           `json:"cached"`
}

// CopyForCache implements cacheCopier: the cached response deep-copies
// its slice-valued fields, so the memoized seeds/scores stay intact even
// if the compute path's backing arrays are reused or mutated later.
func (q queryResponse) CopyForCache() any {
	q.Seeds = append([]graph.NodeID(nil), q.Seeds...)
	q.Scores = append([]float64(nil), q.Scores...)
	return q
}

// resolveQuery decodes and resolves the shared parts of a query request.
func (s *Server) resolveQuery(w http.ResponseWriter, r *http.Request) (*modelEntry, *graphEntry, queryRequest, bool) {
	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return nil, nil, req, false
	}
	if req.K < 0 {
		httpError(w, http.StatusBadRequest, "negative k %d", req.K)
		return nil, nil, req, false
	}
	me, err := s.models.Resolve(req.Model)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return nil, nil, req, false
	}
	ge, err := s.graphs.Get(req.Graph)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return nil, nil, req, false
	}
	if me.info.InputDim != dataset.NumStructuralFeatures {
		httpError(w, http.StatusBadRequest,
			"model %s expects %d input features, server scores with %d structural features",
			me.info.Ref(), me.info.InputDim, dataset.NumStructuralFeatures)
		return nil, nil, req, false
	}
	return me, ge, req, true
}

// score runs the model forward pass over a stored graph with the
// standard structural features — the serve-time twin of Result.Scores.
// It honors ctx between layers, so a canceled request (client gone, or
// the QueryTimeout deadline http.TimeoutHandler set on the request
// context) stops computing instead of finishing for nobody.
func score(ctx context.Context, me *modelEntry, ge *graphEntry) ([]float64, error) {
	x := tensor.FromSlice(ge.g.NumNodes(), dataset.NumStructuralFeatures, dataset.StructuralFeatures(ge.g))
	return me.model.ScoreContext(ctx, ge.g, x)
}

// answer serves the query through the LRU cache: a hit returns the
// memoized response (marked Cached), a miss computes under the request
// context, stores, and returns it. A canceled computation answers 503
// and is never cached.
func (s *Server) answer(w http.ResponseWriter, r *http.Request, mode string, me *modelEntry, ge *graphEntry,
	k int, compute func(ctx context.Context) (queryResponse, error)) {
	key := cacheKey{Model: me.info.Ref(), Fingerprint: ge.fp, K: k, Mode: mode}
	if v, ok := s.cache.Get(key); ok {
		s.reg.Counter("serve.cache.hits").Inc()
		resp := v.(queryResponse)
		resp.Cached = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.reg.Counter("serve.cache.misses").Inc()
	clk := obs.WatchCancel(r.Context())
	defer clk.Stop()
	resp, err := compute(r.Context())
	if err != nil {
		s.reg.Emit(obs.Canceled{Phase: "query", Reason: err.Error(), Latency: clk.Latency()})
		httpError(w, http.StatusServiceUnavailable, "query canceled: %v", err)
		return
	}
	s.cache.Put(key, resp)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSeeds(w http.ResponseWriter, r *http.Request) {
	me, ge, req, ok := s.resolveQuery(w, r)
	if !ok {
		return
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	s.answer(w, r, "seeds", me, ge, k, func(ctx context.Context) (queryResponse, error) {
		scores, err := score(ctx, me, ge)
		if err != nil {
			return queryResponse{}, err
		}
		return queryResponse{
			Model:       me.info.Ref(),
			Graph:       ge.info.Name,
			Fingerprint: ge.info.Fingerprint,
			K:           k,
			Seeds:       im.TopKScores(scores, k),
		}, nil
	})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	me, ge, req, ok := s.resolveQuery(w, r)
	if !ok {
		return
	}
	if req.K != 0 {
		httpError(w, http.StatusBadRequest, "k is a /v1/seeds parameter; /v1/score returns all nodes")
		return
	}
	s.answer(w, r, "score", me, ge, 0, func(ctx context.Context) (queryResponse, error) {
		scores, err := score(ctx, me, ge)
		if err != nil {
			return queryResponse{}, err
		}
		return queryResponse{
			Model:       me.info.Ref(),
			Graph:       ge.info.Name,
			Fingerprint: ge.info.Fingerprint,
			Scores:      scores,
		}, nil
	})
}

// --- async training jobs ---

// TenantHeader names the budget account a training job charges; absent
// means DefaultTenant. Tenant names follow the same grammar as model and
// graph names.
const TenantHeader = "X-Privim-Tenant"

// tenantOf resolves and validates the request's tenant; ok is false
// after an error response has been written.
func tenantOf(w http.ResponseWriter, r *http.Request) (string, bool) {
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		return DefaultTenant, true
	}
	if !validName(tenant) {
		httpError(w, http.StatusBadRequest, "invalid tenant %q", tenant)
		return "", false
	}
	return tenant, true
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	var req TrainRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.ModelName != "" && !validName(req.ModelName) {
		httpError(w, http.StatusBadRequest, "invalid model name %q", req.ModelName)
		return
	}
	if req.Epsilon < 0 {
		// Same rule the trainer enforces (core.Config.normalize), moved up
		// front so a bad request fails before a job exists: 0 and +Inf mean
		// non-private, negative is meaningless.
		httpError(w, http.StatusBadRequest, "epsilon %v must be positive (or 0 for non-private)", req.Epsilon)
		return
	}
	tenant, ok := tenantOf(w, r)
	if !ok {
		return
	}
	ge, err := s.graphs.Get(req.Graph)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	// The withTrace middleware put the request's trace ID in the context;
	// storing it on the job ties the async work back to this request.
	status, err := s.jobs.Submit(req, ge.g, tenant, obs.TraceFromContext(r.Context()))
	var exhausted *ledger.ExhaustedError
	switch {
	case errors.As(err, &exhausted):
		// Machine-readable denial: the client learns exactly how much ε is
		// left so it can resize or route the job elsewhere.
		writeJSON(w, http.StatusForbidden, map[string]any{
			"error":     "budget_exhausted",
			"tenant":    exhausted.Balance.Tenant,
			"graph":     exhausted.Balance.Graph,
			"requested": exhausted.Requested,
			"budget":    exhausted.Balance.Budget,
			"committed": exhausted.Balance.Committed,
			"reserved":  exhausted.Balance.Reserved,
			"remaining": exhausted.Balance.Remaining,
		})
		return
	case errors.Is(err, errQueueFull):
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, errDraining):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, status)
}

// handleBudget reports the calling tenant's budget position across every
// graph it has spent against — committed, reserved, and remaining ε.
func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	if s.budget == nil {
		httpError(w, http.StatusNotFound, "budget tracking is not enabled")
		return
	}
	tenant, ok := tenantOf(w, r)
	if !ok {
		return
	}
	balances := s.budget.Balances(tenant)
	if balances == nil {
		balances = []ledger.Balance{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tenant":   tenant,
		"enforced": s.budget.Enforced(),
		"budgets":  balances,
	})
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.List()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	status, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	status, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		code := http.StatusConflict
		if strings.Contains(err.Error(), "not found") {
			code = http.StatusNotFound
		}
		httpError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, status)
}
