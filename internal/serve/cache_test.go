package serve

import (
	"testing"

	"privim/internal/graph"
)

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	k := func(i int) cacheKey { return cacheKey{Model: "m@1", Fingerprint: uint64(i), K: 5, Mode: "seeds"} }

	c.Put(k(1), "a")
	c.Put(k(2), "b")
	if v, ok := c.Get(k(1)); !ok || v != "a" {
		t.Fatalf("Get(1) = %v %v", v, ok)
	}
	// 1 is now most recent; inserting 3 evicts 2.
	c.Put(k(3), "c")
	if _, ok := c.Get(k(2)); ok {
		t.Fatal("entry 2 survived eviction")
	}
	if _, ok := c.Get(k(1)); !ok {
		t.Fatal("recently used entry 1 was evicted")
	}
	if _, ok := c.Get(k(3)); !ok {
		t.Fatal("new entry 3 missing")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}

	// Refreshing an existing key must not grow the cache.
	c.Put(k(1), "a2")
	if v, _ := c.Get(k(1)); v != "a2" {
		t.Fatalf("refresh lost: %v", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len after refresh = %d, want 2", c.Len())
	}
}

// TestCachePutStoresByCopy verifies a queryResponse is snapshotted at Put
// time: mutating the original's slices afterwards must not change what
// Get returns.
func TestCachePutStoresByCopy(t *testing.T) {
	c := newLRUCache(2)
	key := cacheKey{Model: "m@1", Fingerprint: 7, K: 2, Mode: "seeds"}
	resp := queryResponse{
		Seeds:  []graph.NodeID{3, 1},
		Scores: []float64{0.5, 0.25},
	}
	c.Put(key, resp)
	resp.Seeds[0] = 99
	resp.Scores[0] = -1
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("cached response missing")
	}
	cached := got.(queryResponse)
	if cached.Seeds[0] != 3 || cached.Scores[0] != 0.5 {
		t.Fatalf("cache aliased caller slices: %+v", cached)
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	c := newLRUCache(8)
	base := cacheKey{Model: "m@1", Fingerprint: 42, K: 5, Mode: "seeds"}
	c.Put(base, "x")
	for _, k := range []cacheKey{
		{Model: "m@2", Fingerprint: 42, K: 5, Mode: "seeds"},
		{Model: "m@1", Fingerprint: 43, K: 5, Mode: "seeds"},
		{Model: "m@1", Fingerprint: 42, K: 6, Mode: "seeds"},
		{Model: "m@1", Fingerprint: 42, K: 5, Mode: "score"},
	} {
		if _, ok := c.Get(k); ok {
			t.Fatalf("key %+v aliased the base entry", k)
		}
	}
}
