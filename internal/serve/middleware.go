package serve

import (
	"net/http"
	"strconv"
	"time"

	"privim/internal/obs"
)

// TraceHeader is the HTTP header carrying the request's trace ID. The
// server accepts a valid client-supplied value (so a caller can stitch
// its own ID through the daemon) and mints one otherwise; either way the
// ID is echoed in the response, stored on any training job the request
// spawns, and stamped on every span the request produces.
const TraceHeader = "X-Privim-Trace"

// withTrace resolves the request's trace ID, echoes it in the response
// header, and threads it through the request context for handlers and
// spans downstream.
func withTrace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace := r.Header.Get(TraceHeader)
		if !obs.ValidTraceID(trace) {
			trace = obs.NewTraceID()
		}
		w.Header().Set(TraceHeader, trace)
		next.ServeHTTP(w, r.WithContext(obs.ContextWithTrace(r.Context(), trace)))
	})
}

// statusWriter captures the response status code for RED metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

// instrument wraps h with per-route RED metrics: one
// serve.http.requests{route,code} counter series per observed status
// code and a per-route serve.http.latency_us{route} histogram. route is
// the mux pattern the handler is registered under, so the metric
// cardinality is the route table, not the URL space. The wrapper sits
// outside admission control and timeouts, so 429s and 503s are counted
// and timed like any other response.
func (s *Server) instrument(route string, h http.Handler) http.Handler {
	latency := s.reg.Histogram(obs.Labeled("serve.http.latency_us", "route", route))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK // handler wrote nothing: implicit 200
		}
		s.reg.Counter(obs.Labeled("serve.http.requests",
			"route", route, "code", strconv.Itoa(sw.code))).Inc()
		latency.Observe(float64(time.Since(start).Microseconds()))
	})
}
