package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"privim/internal/gnn"
	"privim/internal/graph"
	"privim/internal/ledger"
	"privim/internal/obs"
	"privim/internal/parallel"
	core "privim/internal/privim"
)

// DefaultTenant is the budget account a job charges when the submitting
// request carries no tenant header.
const DefaultTenant = "default"

// JobState is the lifecycle of an async training job.
type JobState string

// Job lifecycle: queued → running → done/failed/canceled, with a
// transient canceling state between a cancel request on a running job
// and the trainer actually stopping. Queued jobs cancel immediately
// (full refund — nothing was spent); running jobs are preempted
// cooperatively: the trainer stops at its next preemption point, writes
// a final checkpoint, and the manager commits the ε actually spent,
// refunding only the unspent remainder of the reservation.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobCanceling JobState = "canceling"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCanceled  JobState = "canceled"
)

// TrainRequest is the POST /v1/train body. Graph names a stored graph;
// every other field is optional and falls back to the paper's defaults
// (core.Config.normalize). Epsilon follows the library semantics
// exactly (core.Config): 0 (unset) and +Inf both mean non-private,
// negative is rejected with 400 before a job is created. Only private
// requests (finite positive ε outside non-private mode) charge the
// tenant's budget ledger.
type TrainRequest struct {
	Graph     string  `json:"graph"`
	ModelName string  `json:"model_name,omitempty"` // registry destination; default: the job ID
	Mode      string  `json:"mode,omitempty"`
	GNN       string  `json:"gnn,omitempty"`
	Epsilon   float64 `json:"epsilon,omitempty"`
	// Delta is the guarantee's δ. Unset picks the library default
	// (1/|V_train|) — except for budget-charged jobs, which default to
	// the ledger's δ so the committed spend matches the reserved ε.
	Delta        float64 `json:"delta,omitempty"`
	Iterations   int     `json:"iterations,omitempty"`
	SubgraphSize int     `json:"subgraph_size,omitempty"`
	Threshold    int     `json:"threshold,omitempty"`
	HiddenDim    int     `json:"hidden_dim,omitempty"`
	Layers       int     `json:"layers,omitempty"`
	BatchSize    int     `json:"batch_size,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
}

// JobStatus is the public view of one job, returned by the submit and
// poll endpoints.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Graph string   `json:"graph"`
	// Model is the "name@version" registry reference of the trained
	// checkpoint once the job is done.
	Model string `json:"model,omitempty"`
	Error string `json:"error,omitempty"`
	// Journal is the per-job JSONL event journal path (when the server
	// runs with a journal directory).
	Journal string `json:"journal,omitempty"`
	// Trace is the trace ID of the request that submitted the job — the
	// X-Privim-Trace value the submitter saw. Every span and journal
	// record the job produces carries it, so one ID follows the work from
	// HTTP request through the async hand-off to the training pipeline.
	Trace string `json:"trace,omitempty"`
	// Tenant is the X-Privim-Tenant the job was submitted under — the
	// budget-ledger account its privacy spend charges ("default" when the
	// header is absent).
	Tenant string `json:"tenant,omitempty"`
	// Fingerprint is the submitted graph's content fingerprint, the graph
	// key the ledger charges under (stable across graph renames).
	Fingerprint string `json:"fingerprint,omitempty"`

	// Training summary, populated on success.
	EpsilonSpent float64 `json:"epsilon_spent,omitempty"`
	Private      bool    `json:"private,omitempty"`
	NumSubgraphs int     `json:"num_subgraphs,omitempty"`

	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
}

var (
	errDraining  = errors.New("server is draining")
	errQueueFull = errors.New("training queue is full")
)

type job struct {
	status JobStatus
	req    TrainRequest
	g      *graph.Graph
	// cancel preempts the job's training context; non-nil only while the
	// job is running. cancelAt is when cancellation was requested, for
	// the cancel-latency histogram.
	cancel   context.CancelFunc
	cancelAt time.Time
}

// jobManagerOptions configure a jobManager; see the serve.Options fields
// of the same names.
type jobManagerOptions struct {
	workers         int
	queueCap        int
	journalDir      string
	checkpointEvery int
	observer        obs.Observer // fanned into every job's training config
	models          *modelRegistry
	metrics         *obs.Registry
	logf            func(string, ...any)
	budget          *ledger.Ledger // nil = no budget tracking
	drainGrace      time.Duration  // 0 = wait for running jobs forever
}

// jobManager runs training jobs on a bounded worker pool with a bounded
// queue. The queue is a slice guarded by mu/cond rather than a channel so
// canceling a queued job can remove it — and release its queue slot —
// immediately. Every status mutation happens under mu; workers copy what
// they need out before releasing it, so a long Train never holds the
// lock. With a journal directory configured, every state transition is
// appended to a jobs.jsonl table that restart recovery replays.
type jobManager struct {
	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*job
	order    []string
	pending  []*job // queued jobs, submission order
	queueCap int
	wg       sync.WaitGroup
	draining bool
	// preempted is set when the drain grace elapses: running jobs have
	// been canceled and workers must not pick up queued work (it stays in
	// the job table for restart recovery).
	preempted bool
	nextID    int

	journalDir      string
	checkpointEvery int
	observer        obs.Observer
	models          *modelRegistry
	metrics         *obs.Registry
	logf            func(string, ...any)
	budget          *ledger.Ledger
	drainGrace      time.Duration

	// perJobWorkers is the compute-pool width each training job runs at:
	// the process-wide limit divided across the concurrent job slots, so a
	// full pool does not oversubscribe the machine. Training results are
	// bit-for-bit independent of the width.
	perJobWorkers int
}

func newJobManager(opts jobManagerOptions) *jobManager {
	perJob := 1
	if opts.workers > 0 {
		if perJob = parallel.Limit() / opts.workers; perJob < 1 {
			perJob = 1
		}
	}
	m := &jobManager{
		jobs:            make(map[string]*job),
		queueCap:        opts.queueCap,
		journalDir:      opts.journalDir,
		checkpointEvery: opts.checkpointEvery,
		observer:        opts.observer,
		models:          opts.models,
		metrics:         opts.metrics,
		logf:            opts.logf,
		budget:          opts.budget,
		drainGrace:      opts.drainGrace,
		perJobWorkers:   perJob,
	}
	m.cond = sync.NewCond(&m.mu)
	m.wg.Add(opts.workers)
	for i := 0; i < opts.workers; i++ {
		go m.worker()
	}
	return m
}

// privateRequest reports whether the request trains with DP noise —
// mirrors core.Config.privatized after normalization (0 maps to +Inf),
// so only jobs that actually spend privacy budget charge the ledger.
func privateRequest(req TrainRequest) bool {
	return req.Epsilon > 0 && !math.IsInf(req.Epsilon, 1) && core.Mode(req.Mode) != core.ModeNonPrivate
}

// Submit enqueues a training job over g (already resolved from
// req.Graph, so a later graph delete cannot invalidate a queued job).
// tenant is the budget account the job charges; trace is the submitting
// request's trace ID ("" mints one when the job runs), carried on the
// job status and into its journal and spans.
func (m *jobManager) Submit(req TrainRequest, g *graph.Graph, tenant, trace string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return JobStatus{}, errDraining
	}
	// Admission first: a rejected submission must not consume an ID (gaps
	// in the job-XXXX sequence would otherwise leak queue pressure into
	// the naming and break ID-based recovery bookkeeping).
	if len(m.pending) >= m.queueCap {
		m.metrics.Counter("serve.jobs.rejected").Inc()
		return JobStatus{}, errQueueFull
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	fp := fmt.Sprintf("%016x", g.Fingerprint())
	// Budget admission: reserve the requested ε under the job's future ID
	// before consuming it, so a denied submission — like a full queue —
	// leaves no gap in the job-XXXX sequence.
	if m.budget != nil && privateRequest(req) {
		ref := fmt.Sprintf("job-%04d", m.nextID+1)
		if err := m.budget.Reserve(ref, tenant, fp, req.Epsilon); err != nil {
			m.metrics.Counter("serve.jobs.denied").Inc()
			return JobStatus{}, err
		}
	}
	m.nextID++
	j := &job{
		status: JobStatus{
			ID:          fmt.Sprintf("job-%04d", m.nextID),
			State:       JobQueued,
			Graph:       req.Graph,
			Trace:       trace,
			Tenant:      tenant,
			Fingerprint: fp,
			Created:     time.Now(),
		},
		req: req,
		g:   g,
	}
	m.jobs[j.status.ID] = j
	m.order = append(m.order, j.status.ID)
	m.pending = append(m.pending, j)
	m.metrics.Counter("serve.jobs.submitted").Inc()
	m.metrics.Gauge("serve.jobs.queued").Inc()
	m.persistLocked(j)
	m.cond.Signal()
	return j.status, nil
}

// Get returns the status of one job.
func (m *jobManager) Get(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("job %q not found", id)
	}
	return j.status, nil
}

// List returns every job in submission order.
func (m *jobManager) List() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].status)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Created.Before(out[j].Created) })
	return out
}

// Cancel cancels a job. A queued job cancels immediately: it leaves the
// queue (releasing its slot to new submissions) and its full reservation
// is refunded — nothing ran, nothing was spent. A running job moves to
// canceling: its training context is canceled and the trainer stops at
// the next preemption point, writes a final checkpoint, and the worker
// settles the job as canceled — committing exactly the ε its iterations
// released and refunding only the unspent remainder. Finished jobs
// conflict.
func (m *jobManager) Cancel(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("job %q not found", id)
	}
	switch j.status.State {
	case JobQueued:
		j.status.State = JobCanceled
		j.status.Finished = time.Now()
		if m.budget != nil {
			// The job never ran, so it spent nothing: release its reservation.
			// Ledger before job table, so a crash between the two leaves the
			// ledger ahead — never behind — of what recovery replays.
			m.budget.Refund(id)
		}
		for i, p := range m.pending {
			if p == j {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				m.metrics.Gauge("serve.jobs.queued").Dec()
				break
			}
		}
		m.metrics.Counter("serve.jobs.canceled").Inc()
		m.persistLocked(j)
		return j.status, nil
	case JobRunning:
		j.status.State = JobCanceling
		j.cancelAt = time.Now()
		if j.cancel != nil {
			j.cancel()
		}
		m.metrics.Counter("serve.jobs.cancel_requested").Inc()
		// Persist the transient state: if the daemon dies before the
		// trainer stops, recovery resolves "canceling" as canceled and
		// forfeits the reservation (the partial spend was never committed).
		m.persistLocked(j)
		return j.status, nil
	default:
		return j.status, fmt.Errorf("job %q is %s, only queued or running jobs cancel", id, j.status.State)
	}
}

// Shutdown stops accepting jobs and waits for the pool to drain or ctx
// to expire. With a drain grace configured, jobs still running once the
// grace elapses are preempted: their training contexts are canceled,
// each writes a final checkpoint and settles its partial spend, and the
// still-queued remainder stays in the job table for restart recovery.
func (m *jobManager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		m.cond.Broadcast()
	}
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	var grace <-chan time.Time
	if m.drainGrace > 0 {
		t := time.NewTimer(m.drainGrace)
		defer t.Stop()
		grace = t.C
	}
	for {
		select {
		case <-done:
			return nil
		case <-grace:
			grace = nil
			m.preemptRunning()
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// preemptRunning cancels every running job's training context and stops
// workers from picking up queued jobs. Preempted jobs finish as canceled
// with a resumable checkpoint; the queued remainder requeues on restart.
func (m *jobManager) preemptRunning() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.preempted = true
	m.cond.Broadcast()
	for _, id := range m.order {
		j := m.jobs[id]
		if j.status.State == JobRunning && j.cancel != nil {
			j.status.State = JobCanceling
			j.cancelAt = time.Now()
			j.cancel()
			m.metrics.Counter("serve.jobs.preempted").Inc()
			m.persistLocked(j)
			m.logf("serve: drain grace elapsed, preempting %s", id)
		}
	}
}

func (m *jobManager) worker() {
	defer m.wg.Done()
	for {
		j := m.dequeue()
		if j == nil {
			return
		}
		m.run(j)
	}
}

// dequeue blocks until a job is available or the manager is draining
// with an empty queue (drain still runs everything already accepted).
func (m *jobManager) dequeue() *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.pending) == 0 && !m.draining && !m.preempted {
		m.cond.Wait()
	}
	if len(m.pending) == 0 || m.preempted {
		return nil
	}
	j := m.pending[0]
	m.pending = m.pending[1:]
	m.metrics.Gauge("serve.jobs.queued").Dec()
	return j
}

// run executes one job end to end. The job's own Observer stack is the
// server-wide observer plus a per-job JSONL journal when a journal
// directory is configured.
func (m *jobManager) run(j *job) {
	// The job trains under a cancelable context: Cancel on a running job
	// and drain-grace preemption both fire j.cancel, and the trainer
	// stops cooperatively at its next preemption point.
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	m.mu.Lock()
	if j.status.State != JobQueued { // canceled while waiting
		m.mu.Unlock()
		return
	}
	j.status.State = JobRunning
	j.cancel = cancelRun
	j.status.Started = time.Now()
	if j.status.Trace == "" {
		// Jobs recovered from a pre-trace jobs.jsonl have no ID; mint one
		// so their journals are still attributable end to end.
		j.status.Trace = obs.NewTraceID()
	}
	req, g, id, trace := j.req, j.g, j.status.ID, j.status.Trace
	tenant, fp := j.status.Tenant, j.status.Fingerprint
	m.persistLocked(j)
	m.mu.Unlock()
	m.metrics.Gauge("serve.jobs.running").Inc()
	defer m.metrics.Gauge("serve.jobs.running").Dec()

	observer := m.observer
	// Private jobs track the trainer's running ε from its IterationEnd
	// events: when the run fails partway, the noise already released is
	// privacy spent all the same, and this is the only record of it. The
	// failure path surfaces it on the job status and commits it to the
	// budget ledger.
	var lastEps atomic.Uint64
	if privateRequest(req) {
		observer = obs.Multi(observer, obs.ObserverFunc(func(e obs.Event) {
			if it, ok := e.(obs.IterationEnd); ok {
				lastEps.Store(math.Float64bits(it.EpsilonSpent))
			}
		}))
	}
	var journalPath string
	var sink *obs.JSONLSink
	var journalFile *os.File
	if m.journalDir != "" {
		journalPath = filepath.Join(m.journalDir, id+".jsonl")
		f, err := os.Create(journalPath)
		if err != nil {
			m.logf("serve: %s: journal: %v", id, err)
			journalPath = ""
		} else {
			journalFile = f
			sink = obs.NewJSONLSink(f)
			sink.SetTrace(trace)
			observer = obs.Multi(observer, sink)
		}
	}

	cfg := core.Config{
		Mode:         core.Mode(req.Mode),
		Epsilon:      req.Epsilon,
		Delta:        req.Delta,
		Iterations:   req.Iterations,
		SubgraphSize: req.SubgraphSize,
		Threshold:    req.Threshold,
		HiddenDim:    req.HiddenDim,
		Layers:       req.Layers,
		BatchSize:    req.BatchSize,
		Seed:         req.Seed,
		Workers:      m.perJobWorkers,
		Observer:     observer,
	}
	if cfg.Delta == 0 && m.budget != nil && privateRequest(req) {
		// Budget-charged runs compose at the ledger's δ; calibrating the
		// run at the same δ keeps its committed spend equal to its
		// requested ε. (A run at a looser δ converts to a larger ε at the
		// ledger — correct, but it would overdraw its own reservation.)
		cfg.Delta = m.budget.Delta()
	}
	if req.GNN != "" {
		cfg.GNNKind = gnn.Kind(req.GNN)
	}
	if m.journalDir != "" {
		// Crash safety: the job trains with periodic checkpoints under the
		// journal directory, so a daemon restart resumes it bit-for-bit
		// (core.Train picks the newest valid checkpoint up on its own).
		cfg.CheckpointDir = m.checkpointDir(id)
		cfg.CheckpointEvery = m.checkpointEvery
	}

	// The submitting request's context is long gone by the time a worker
	// picks the job up; rebuild one carrying the stored trace ID and root
	// the job's span tree in it, so every span in the per-job journal —
	// the serve.job root, train, its modules, the parallel kernels —
	// resolves to one tree stamped with the submitter's trace.
	ctx := obs.ContextWithTrace(runCtx, trace)
	jobSpan := obs.StartSpanCtx(ctx, observer, "serve.job")
	ctx = obs.ContextWithSpan(ctx, jobSpan)

	start := time.Now()
	res, err := core.TrainContext(ctx, g, cfg)
	jobSpan.End()
	m.metrics.Histogram("serve.jobs.train_us").Observe(float64(time.Since(start).Microseconds()))

	if sink != nil {
		if ferr := sink.Flush(); ferr != nil {
			m.logf("serve: %s: journal: %v", id, ferr)
		}
		journalFile.Close()
	}

	var modelRef string
	if err == nil {
		name := req.ModelName
		if name == "" {
			name = id
		}
		var info ModelInfo
		if info, err = m.models.Put(name, 0, res.Model); err == nil {
			modelRef = info.Ref()
		}
	}

	m.mu.Lock()
	j.cancel = nil
	canceledAt := j.cancelAt
	j.status.Finished = time.Now()
	j.status.Journal = journalPath
	var cerr *core.CanceledError
	if errors.As(err, &cerr) {
		// Canceled at a preemption point: exactly cerr.Iter iterations of
		// noise were released, and cerr.Partial carries the accountant's ε
		// at that point. Commit that — never refund noise already added —
		// and the commit releases the reservation's unspent remainder. The
		// final checkpoint (kept below: err != nil skips the RemoveAll)
		// lets a resubmitted run resume bit-for-bit.
		j.status.State = JobCanceled
		j.status.Error = err.Error()
		j.status.EpsilonSpent = cerr.Partial.EpsilonSpent
		j.status.Private = cerr.Partial.Private
		j.status.NumSubgraphs = cerr.Partial.NumSubgraphs
		if m.budget != nil && privateRequest(req) {
			acct, _ := cerr.Partial.Accountant()
			m.budget.Commit(id, tenant, fp, ledger.Charge{
				Acct:       acct,
				Iterations: cerr.Iter,
				Epsilon:    cerr.Partial.EpsilonSpent,
			})
		}
		if !canceledAt.IsZero() {
			m.metrics.Histogram("serve.jobs.cancel_latency_us").
				Observe(float64(j.status.Finished.Sub(canceledAt).Microseconds()))
		}
	} else if err != nil {
		j.status.State = JobFailed
		j.status.Error = err.Error()
		// The ε the trainer had released before failing (0 when it never
		// completed an iteration) — spent budget, success or not.
		j.status.EpsilonSpent = math.Float64frombits(lastEps.Load())
		if m.budget != nil && privateRequest(req) {
			m.budget.Commit(id, tenant, fp, ledger.Charge{Epsilon: j.status.EpsilonSpent})
		}
	} else {
		j.status.State = JobDone
		j.status.Model = modelRef
		j.status.EpsilonSpent = res.EpsilonSpent
		j.status.Private = res.Private
		j.status.NumSubgraphs = res.NumSubgraphs
		if m.budget != nil && res.Private {
			// Commit the run's accountant parameters, not just the scalar:
			// later runs against the same (tenant, graph) compose with this
			// one at the RDP level, which is strictly tighter.
			acct, _ := res.Accountant()
			m.budget.Commit(id, tenant, fp, ledger.Charge{
				Acct:       acct,
				Iterations: res.Config.Iterations,
				Epsilon:    res.EpsilonSpent,
			})
		}
	}
	// Ledger commits above come before the job-table append: a crash in
	// between leaves the spend recorded and the terminal-state commit
	// idempotent, never a replayed job with a vanished charge.
	m.persistLocked(j)
	m.mu.Unlock()
	if err == nil && cfg.CheckpointDir != "" {
		// A finished job has nothing to resume; failed jobs keep their
		// checkpoints for post-mortem debugging and canceled jobs keep
		// theirs so a resubmission resumes instead of restarting.
		os.RemoveAll(cfg.CheckpointDir)
	}
	switch {
	case cerr != nil:
		m.metrics.Counter("serve.jobs.canceled").Inc()
		m.logf("serve: %s canceled after %d iterations (ε spent %.4g)", id, cerr.Iter, cerr.Partial.EpsilonSpent)
	case err != nil:
		m.metrics.Counter("serve.jobs.failed").Inc()
		m.logf("serve: %s failed: %v", id, err)
	default:
		m.metrics.Counter("serve.jobs.completed").Inc()
		m.logf("serve: %s done: model %s", id, modelRef)
	}
}
