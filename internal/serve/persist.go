package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"privim/internal/graph"
	"privim/internal/nn"
)

// Job-table persistence. With a journal directory configured, the job
// manager appends one JSON line per state transition to
// <journalDir>/jobs.jsonl — an append-only table where the last record
// per job ID wins. On daemon restart, RecoverJobs replays the table:
// finished jobs come back as history, queued jobs requeue, and jobs that
// were running when the process died resume from their last good
// training checkpoint (<journalDir>/checkpoints/<job-id>) — or are
// marked failed when no recoverable checkpoint survived. Corrupt table
// lines (torn writes) are skipped, never fatal.

// jobRecord is one line of the job table.
type jobRecord struct {
	Req    TrainRequest `json:"req"`
	Status JobStatus    `json:"status"`
}

func (m *jobManager) jobTablePath() string {
	return filepath.Join(m.journalDir, "jobs.jsonl")
}

// checkpointDir is where one job's training checkpoints live.
func (m *jobManager) checkpointDir(id string) string {
	return filepath.Join(m.journalDir, "checkpoints", id)
}

// persistLocked appends j's current state to the job table; the caller
// holds m.mu, which also serializes writers. Persistence failures are
// logged, not fatal — the daemon keeps serving with in-memory state.
func (m *jobManager) persistLocked(j *job) {
	if m.journalDir == "" {
		return
	}
	line, err := json.Marshal(jobRecord{Req: j.req, Status: j.status})
	if err != nil {
		m.logf("serve: job table: marshal %s: %v", j.status.ID, err)
		return
	}
	f, err := os.OpenFile(m.jobTablePath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		m.logf("serve: job table: %v", err)
		return
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		m.logf("serve: job table: append %s: %v", j.status.ID, err)
	}
}

// loadJobTable replays the table, returning the last record per job ID
// plus IDs in first-appearance (submission) order. Unparseable lines are
// skipped with a log line.
func loadJobTable(path string, logf func(string, ...any)) (map[string]jobRecord, []string) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil // no table yet — fresh journal directory
	}
	defer f.Close()
	recs := make(map[string]jobRecord)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Status.ID == "" {
			logf("serve: job table %s: skipping corrupt line %d", path, lineNo)
			continue
		}
		if _, seen := recs[rec.Status.ID]; !seen {
			order = append(order, rec.Status.ID)
		}
		recs[rec.Status.ID] = rec
	}
	if err := sc.Err(); err != nil {
		logf("serve: job table %s: %v (recovered %d job(s) before the error)", path, err, len(order))
	}
	return recs, order
}

// hasRecoverableCheckpoint reports whether dir holds at least one
// checkpoint file that passes integrity verification — the test that
// separates a resumable interrupted job from an orphan. (Training
// re-validates the checkpoint against the run fingerprint on resume;
// this is the cheap file-level screen.)
func hasRecoverableCheckpoint(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	var names []string
	for _, e := range entries {
		if name := e.Name(); strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".ckpt") {
			names = append(names, name)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, name := range names {
		if _, err := nn.ReadFileVerified(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	return false
}

// recover replays the job table into the manager. lookup resolves a
// graph name to its stored graph (nil when the graph no longer exists).
// Recovered queued jobs bypass the queue-capacity check: they were
// admitted before the restart and rejecting them now would silently drop
// accepted work.
func (m *jobManager) recover(lookup func(string) *graph.Graph) (requeued, failed int) {
	if m.journalDir == "" {
		return 0, 0
	}
	recs, order := loadJobTable(m.jobTablePath(), m.logf)
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, id := range order {
		rec := recs[id]
		if _, exists := m.jobs[id]; exists {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n > m.nextID {
			m.nextID = n
		}
		j := &job{status: rec.Status, req: rec.Req}
		if j.status.Tenant == "" {
			// Pre-ledger job tables carry no tenant; their spend belongs to
			// the default account.
			j.status.Tenant = DefaultTenant
		}
		m.jobs[id] = j
		m.order = append(m.order, id)
		switch rec.Status.State {
		case JobQueued, JobRunning:
			interrupted := rec.Status.State == JobRunning
			fail := func(reason string) {
				j.status.State = JobFailed
				j.status.Error = reason
				j.status.Finished = time.Now()
				failed++
				m.metrics.Counter("serve.jobs.orphaned").Inc()
				// Settle the job's replayed reservation: a job that never
				// ran spent nothing (refund); an interrupted run's true
				// spend is unknowable, so its full reservation is forfeited
				// — the conservative resolution. Ledger before job table,
				// as everywhere.
				if m.budget != nil {
					if interrupted {
						m.budget.Forfeit(id)
					} else {
						m.budget.Refund(id)
					}
				}
				m.persistLocked(j)
				m.logf("serve: recovery: %s failed: %s", id, reason)
			}
			g := lookup(rec.Req.Graph)
			if g == nil {
				fail(fmt.Sprintf("graph %q not available after restart", rec.Req.Graph))
				continue
			}
			if interrupted && !hasRecoverableCheckpoint(m.checkpointDir(id)) {
				fail("interrupted before a durable checkpoint; not recoverable")
				continue
			}
			if j.status.Fingerprint == "" {
				j.status.Fingerprint = fmt.Sprintf("%016x", g.Fingerprint())
			}
			j.g = g
			j.status.State = JobQueued
			j.status.Started = time.Time{}
			j.status.Error = ""
			m.pending = append(m.pending, j)
			m.metrics.Gauge("serve.jobs.queued").Inc()
			requeued++
			m.persistLocked(j)
			m.cond.Signal()
			if interrupted {
				m.logf("serve: recovery: %s resuming from checkpoint", id)
			} else {
				m.logf("serve: recovery: %s requeued", id)
			}
		case JobCanceling:
			// A cancel was requested but the daemon died before the trainer
			// stopped, so the partial spend was never committed. Resolve as
			// canceled and forfeit the full reservation — the conservative
			// rule for an unknowable spend, same as an interrupted run. The
			// Forfeit is a no-op when the crash landed after the commit but
			// before the terminal job-table append (terminal refs are
			// idempotent), so replay converges to the same balance.
			j.status.State = JobCanceled
			j.status.Error = "canceled; daemon restarted before the partial spend was committed"
			j.status.Finished = time.Now()
			if m.budget != nil {
				m.budget.Forfeit(id)
			}
			m.persistLocked(j)
			m.logf("serve: recovery: %s canceled (restart during cancellation)", id)
		default:
			// done / failed / canceled: history only.
		}
	}
	return requeued, failed
}

// RecoverJobs replays the persisted job table (see the package comment
// above) after a daemon restart. Call it once, after graphs are loaded —
// recovered jobs resolve their graphs against the current store. It
// returns how many jobs were requeued (including interrupted jobs that
// will resume from checkpoints) and how many could not be recovered.
func (s *Server) RecoverJobs() (requeued, failed int) {
	return s.jobs.recover(func(name string) *graph.Graph {
		e, err := s.graphs.Get(name)
		if err != nil {
			return nil
		}
		return e.g
	})
}
