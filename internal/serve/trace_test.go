package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"privim/internal/obs"
	"privim/internal/serve"
)

// postTrain uploads a graph and submits a tiny training job, returning
// the HTTP response and the decoded job status.
func postTrain(t *testing.T, ts *httptest.Server, traceHeader string) (*http.Response, serve.JobStatus) {
	t.Helper()
	c := ts.Client()
	g := testGraph(t)
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/graphs/g1", edgeListBytes(t, g), nil); code != 201 {
		t.Fatalf("graph upload = %d", code)
	}
	body := `{"graph":"g1","model_name":"traced","mode":"non-private","iterations":2,"subgraph_size":8,"hidden_dim":4,"layers":2,"batch_size":4,"seed":1}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/train", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if traceHeader != "" {
		req.Header.Set(serve.TraceHeader, traceHeader)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("train submit = %d", resp.StatusCode)
	}
	var job serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return resp, job
}

func waitForJob(t *testing.T, ts *httptest.Server, id string) serve.JobStatus {
	t.Helper()
	var job serve.JobStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		if code := doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs/"+id, nil, &job); code != 200 {
			t.Fatalf("job poll = %d", code)
		}
		switch job.State {
		case serve.JobDone:
			return job
		case serve.JobFailed:
			t.Fatalf("job failed: %s", job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", job.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestTraceFlowsThroughTrainJob is the tracing acceptance test: the
// trace ID a client supplies on POST /v1/train comes back in the
// X-Privim-Trace response header, shows up on the job status, is
// stamped on every record of the per-job journal, and the journal's
// span records form a single tree rooted at the serve.job span.
func TestTraceFlowsThroughTrainJob(t *testing.T) {
	s := newTestServer(t, serve.Options{TrainWorkers: 1, JournalDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const trace = "e2e-trace-0001"
	resp, job := postTrain(t, ts, trace)
	if got := resp.Header.Get(serve.TraceHeader); got != trace {
		t.Fatalf("response %s = %q, want the client-supplied %q", serve.TraceHeader, got, trace)
	}
	if job.Trace != trace {
		t.Fatalf("submitted job trace = %q, want %q", job.Trace, trace)
	}

	job = waitForJob(t, ts, job.ID)
	if job.Trace != trace {
		t.Fatalf("finished job trace = %q, want %q", job.Trace, trace)
	}
	if job.Journal == "" {
		t.Fatal("job has no journal")
	}

	data, err := os.ReadFile(job.Journal)
	if err != nil {
		t.Fatal(err)
	}
	var (
		spanIDs  = map[uint64]bool{}
		starts   []*obs.SpanStart
		roots    int
		rootName string
		records  int
	)
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		records++
		var rec obs.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("journal line %d: %v", records, err)
		}
		if rec.Trace != trace {
			t.Fatalf("journal record %d (%s) trace = %q, want %q", records, rec.Kind, rec.Trace, trace)
		}
		ev, _, err := obs.DecodeRecord(line)
		if err != nil {
			t.Fatalf("journal record %d: %v", records, err)
		}
		if start, ok := ev.(*obs.SpanStart); ok {
			spanIDs[start.ID] = true
			starts = append(starts, start)
			if start.Trace != trace {
				t.Fatalf("span %q trace = %q, want %q", start.Span, start.Trace, trace)
			}
			if start.Parent == 0 {
				roots++
				rootName = start.Span
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if records == 0 || len(starts) == 0 {
		t.Fatalf("journal has %d records, %d spans; want both nonzero", records, len(starts))
	}
	// Single rooted tree: exactly one parentless span — the job wrapper —
	// and every child's parent was started earlier in the same journal.
	if roots != 1 || rootName != "serve.job" {
		t.Fatalf("journal has %d root spans (last %q), want exactly one serve.job root", roots, rootName)
	}
	for _, start := range starts {
		if start.Parent != 0 && !spanIDs[start.Parent] {
			t.Fatalf("span %q (id %d) has unknown parent %d", start.Span, start.ID, start.Parent)
		}
	}
	// The training pipeline actually ran under the trace, not just the
	// wrapper: look for the train root among the spans.
	var sawTrain bool
	for _, start := range starts {
		if start.Span == "train" {
			sawTrain = true
		}
	}
	if !sawTrain {
		t.Fatal("journal has no train span under the job root")
	}
}

// TestTraceMintedWhenAbsent: a request without X-Privim-Trace gets a
// server-minted ID, echoed in the response header and on the job.
func TestTraceMintedWhenAbsent(t *testing.T) {
	s := newTestServer(t, serve.Options{TrainWorkers: 1, JournalDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, job := postTrain(t, ts, "")
	minted := resp.Header.Get(serve.TraceHeader)
	if !obs.ValidTraceID(minted) {
		t.Fatalf("minted trace %q is not a valid trace ID", minted)
	}
	if job.Trace != minted {
		t.Fatalf("job trace = %q, want minted %q", job.Trace, minted)
	}
}

// TestTraceInvalidHeaderReplaced: garbage in X-Privim-Trace is not
// echoed back (header-injection guard) — the server mints instead.
func TestTraceInvalidHeaderReplaced(t *testing.T) {
	s := newTestServer(t, serve.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(serve.TraceHeader, "bad trace!!")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get(serve.TraceHeader)
	if got == "bad trace!!" || !obs.ValidTraceID(got) {
		t.Fatalf("response trace = %q, want a minted valid ID", got)
	}
}

// TestPromEndpointPerRoute: after traffic, GET /metrics/prom exposes
// per-route RED series — request counts labeled by route and code, and
// latency histogram buckets labeled by route.
func TestPromEndpointPerRoute(t *testing.T) {
	s := newTestServer(t, serve.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	if code := doJSON(t, c, http.MethodGet, ts.URL+"/healthz", nil, nil); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if code := doJSON(t, c, http.MethodGet, ts.URL+"/no/such/route", nil, nil); code != 404 {
		t.Fatalf("unmatched = %d, want 404", code)
	}

	resp, err := c.Get(ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", got)
	}
	var body strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		body.WriteString(sc.Text())
		body.WriteByte('\n')
	}
	out := body.String()
	for _, want := range []string{
		`serve_http_requests{route="GET /healthz",code="200"} 1`,
		`serve_http_requests{route="unmatched",code="404"} 1`,
		`serve_http_latency_us_bucket{route="GET /healthz",le="+Inf"} 1`,
		`serve_http_latency_us_count{route="GET /healthz"} 1`,
		"# TYPE serve_http_latency_us histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics/prom missing %q\n---\n%s", want, out)
		}
	}
}
