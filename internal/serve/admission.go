package serve

import (
	"net/http"

	"privim/internal/obs"
)

// admission is the server's load-shedding gate: a counting semaphore
// sized to the concurrency the host can sustain. Requests that cannot
// acquire a slot immediately are rejected with 429 rather than queued —
// under sustained overload an unbounded queue only converts latency into
// timeouts, so the daemon sheds instead.
type admission struct {
	slots    chan struct{}
	rejected *obs.Counter
	inflight *obs.Counter
}

func newAdmission(maxConcurrent int, reg *obs.Registry) *admission {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	return &admission{
		slots:    make(chan struct{}, maxConcurrent),
		rejected: reg.Counter("serve.http.rejected"),
		inflight: reg.Counter("serve.http.inflight"),
	}
}

// wrap gates h behind the semaphore. The slot is held for the full
// handler duration (including request-body reads), so slow uploads count
// against capacity exactly like compute.
func (a *admission) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case a.slots <- struct{}{}:
		default:
			a.rejected.Inc()
			httpError(w, http.StatusTooManyRequests, "server at capacity, retry later")
			return
		}
		a.inflight.Inc()
		defer func() {
			a.inflight.Add(-1)
			<-a.slots
		}()
		h.ServeHTTP(w, r)
	})
}
