package serve

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"privim/internal/dataset"
	"privim/internal/graph"
)

// GraphInfo is the store's public description of one uploaded graph.
type GraphInfo struct {
	Name     string `json:"name"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	Directed bool   `json:"directed"`
	// Fingerprint is graph.Fingerprint in zero-padded hex — the content
	// address the result cache keys on.
	Fingerprint string `json:"fingerprint"`
}

type graphEntry struct {
	info GraphInfo
	g    *graph.Graph
	fp   uint64
}

// graphStore is the in-memory store of named influence graphs. Graphs
// are immutable once stored (construction completes before Put), so
// entries are served concurrently without copying.
type graphStore struct {
	mu     sync.RWMutex
	graphs map[string]*graphEntry
}

func newGraphStore() *graphStore {
	return &graphStore{graphs: make(map[string]*graphEntry)}
}

// parseGraphUpload decodes an uploaded graph body: the native
// privim-edgelist format when its header is present, otherwise a
// SNAP-style edge list (dense ID remap, uniform unit weights) — the same
// detection cmd/privim applies to -graph files.
func parseGraphUpload(data []byte) (*graph.Graph, error) {
	if bytes.Contains(data, []byte("privim-edgelist")) {
		return graph.ReadEdgeList(bytes.NewReader(data))
	}
	g, err := dataset.LoadSNAP(bytes.NewReader(data), true)
	if err != nil {
		return nil, err
	}
	g.SetUniformWeights(1)
	return g, nil
}

// Put stores g under name, replacing any previous content.
func (s *graphStore) Put(name string, g *graph.Graph) (GraphInfo, error) {
	if !validName(name) {
		return GraphInfo{}, fmt.Errorf("invalid graph name %q (want [A-Za-z0-9._-]+)", name)
	}
	fp := g.Fingerprint()
	info := GraphInfo{
		Name:        name,
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		Directed:    g.Directed(),
		Fingerprint: fmt.Sprintf("%016x", fp),
	}
	s.mu.Lock()
	s.graphs[name] = &graphEntry{info: info, g: g, fp: fp}
	s.mu.Unlock()
	return info, nil
}

// Get returns the entry stored under name.
func (s *graphStore) Get(name string) (*graphEntry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.graphs[name]
	if !ok {
		return nil, fmt.Errorf("graph %q not found", name)
	}
	return e, nil
}

// Delete removes the entry stored under name.
func (s *graphStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.graphs[name]; !ok {
		return fmt.Errorf("graph %q not found", name)
	}
	delete(s.graphs, name)
	return nil
}

// List returns every stored graph, sorted by name.
func (s *graphStore) List() []GraphInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for _, e := range s.graphs {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
