package serve

import (
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"privim/internal/obs/history"
)

// slowTrainBody requests ε = 1 per job, so two sequential jobs burn 2 of
// the configured budget and give the burn-rate window a baseline plus a
// delta.
const burnTrainBody = `{"graph":"g","epsilon":1,"iterations":6,"subgraph_size":8,"hidden_dim":4,"layers":2,"batch_size":4,"seed":3}`

// TestEpsilonBurnRateAlertEndToEnd is the ISSUE-10 acceptance test: a
// tight per-tenant ε burn-rate rule fires under budgeted training jobs,
// GET /v1/stats returns a non-empty windowed series for the tenant's
// ledger.epsilon_committed gauge, and the fired alert references an
// on-disk pprof profile that `go tool pprof -raw` parses.
func TestEpsilonBurnRateAlertEndToEnd(t *testing.T) {
	profileDir := t.TempDir()
	_, ts := budgetTestServer(t, Options{
		Budget:       5,
		TrainWorkers: 1,
		JournalDir:   t.TempDir(),
		HistoryEvery: 5 * time.Millisecond,
		// Deep rings so the baseline sample survives the polling phases
		// below (the default 360 points is only 1.8s at this tick).
		HistoryCapacity: 16384,
		ProfileDir:      profileDir,
		// The built-in tenant-epsilon-burn rule uses a 5m window and 1h
		// horizon: any commit observed inside the window dwarfs the
		// sustainable rate 5ε/1h, so it fires as soon as a delta exists.
	})

	// Two sequential ε=1 jobs: the first seeds the tenant's gauge series,
	// the second produces the in-window delta the burn rate needs.
	// Between them, wait until the sampler has actually banked a baseline
	// point — while training saturates the CPU the 5ms sampler goroutine
	// can starve, and without a baseline in the ring the second commit
	// reads as a flat series with zero delta.
	runJob := func(i int) {
		var job JobStatus
		if code := doTenant(t, ts, http.MethodPost, "/v1/train", "burn", burnTrainBody, &job); code != 202 {
			t.Fatalf("train submit %d = %d", i, code)
		}
		if st := waitJobDone(t, ts, "burn", job.ID); st.State != JobDone {
			t.Fatalf("job %d ended %s: %s", i, st.State, st.Error)
		}
	}
	runJob(0)
	baselineDeadline := time.Now().Add(10 * time.Second)
	for {
		var stats struct {
			Series []history.Series `json:"series"`
		}
		if code := doTenant(t, ts, http.MethodGet,
			"/v1/stats?metric=ledger.epsilon_committed", "", "", &stats); code != 200 {
			t.Fatalf("GET /v1/stats = %d", code)
		}
		banked := false
		for _, se := range stats.Series {
			if strings.Contains(se.Metric, `tenant="burn"`) && len(se.Points) > 0 {
				banked = true
			}
		}
		if banked {
			break
		}
		if time.Now().After(baselineDeadline) {
			t.Fatal("sampler never banked the first job's commit")
		}
		time.Sleep(10 * time.Millisecond)
	}
	runJob(1)

	// The burn-rate alert fires on a sampler tick shortly after the
	// second commit.
	var fired history.Alert
	deadline := time.Now().Add(10 * time.Second)
	for {
		var alerts struct {
			Active []history.Alert `json:"active"`
			Recent []history.Alert `json:"recent"`
		}
		if code := doTenant(t, ts, http.MethodGet, "/v1/alerts", "", "", &alerts); code != 200 {
			t.Fatalf("GET /v1/alerts = %d", code)
		}
		for _, a := range append(alerts.Active, alerts.Recent...) {
			if a.Rule == "tenant-epsilon-burn" {
				fired = a
			}
		}
		if fired.Rule != "" || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if fired.Rule == "" {
		t.Fatal("tenant-epsilon-burn never fired")
	}
	if !strings.Contains(fired.Metric, `tenant="burn"`) {
		t.Fatalf("alert fired on %q, want the burn tenant's series", fired.Metric)
	}
	if fired.Value < fired.Threshold {
		t.Fatalf("alert value %v below threshold %v", fired.Value, fired.Threshold)
	}

	// /v1/stats serves a non-empty windowed series for the tenant gauge.
	var stats struct {
		Series []history.Series `json:"series"`
	}
	if code := doTenant(t, ts, http.MethodGet,
		"/v1/stats?metric=ledger.epsilon_committed&window=1h", "", "", &stats); code != 200 {
		t.Fatalf("GET /v1/stats = %d", code)
	}
	var found bool
	for _, se := range stats.Series {
		if !strings.Contains(se.Metric, `tenant="burn"`) {
			continue
		}
		found = true
		if len(se.Points) == 0 {
			t.Fatalf("series %q empty", se.Metric)
		}
		// Two commits composed at the RDP level: the total is sublinear in
		// the per-job ε, but strictly above the first job's spend alone.
		if last := se.Points[len(se.Points)-1]; last.V <= se.Min || last.V <= 0 {
			t.Fatalf("committed series ends at %v (min %v), want growth across the two commits", last.V, se.Min)
		}
	}
	if !found {
		t.Fatalf("no ledger.epsilon_committed series for the burn tenant: %+v", stats.Series)
	}

	// The alert references an on-disk pprof artifact that parses. The
	// capture is asynchronous: poll `go tool pprof -raw` until it does.
	if fired.Profile == "" {
		t.Fatal("fired alert carries no profile path")
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		if fi, err := os.Stat(fired.Profile); err == nil && fi.Size() > 0 {
			out, err := exec.Command("go", "tool", "pprof", "-raw", fired.Profile).CombinedOutput()
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("pprof -raw %s: %v\n%s", fired.Profile, err, out)
			}
		} else if time.Now().After(deadline) {
			t.Fatalf("profile %s never appeared: %v", fired.Profile, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestStatsEndpointServesRequestMetrics checks the serving-path series
// (route-labeled latency histograms expand into p99 series) and the
// discovery listing.
func TestStatsEndpointServesRequestMetrics(t *testing.T) {
	_, ts := budgetTestServer(t, Options{HistoryEvery: 5 * time.Millisecond})
	// Generate some traffic, then wait for a tick to sample it.
	for i := 0; i < 3; i++ {
		if code := doTenant(t, ts, http.MethodGet, "/v1/models", "", "", nil); code != 200 {
			t.Fatalf("GET /v1/models = %d", code)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var listing struct {
			Metrics []string `json:"metrics"`
		}
		if code := doTenant(t, ts, http.MethodGet, "/v1/stats", "", "", &listing); code != 200 {
			t.Fatalf("GET /v1/stats = %d", code)
		}
		var hasRoute, hasRuntime bool
		for _, m := range listing.Metrics {
			if strings.HasPrefix(m, "serve.http.latency_us{") && strings.HasSuffix(m, ".p99") {
				hasRoute = true
			}
			if m == "go.heap_bytes" {
				hasRuntime = true
			}
		}
		if hasRoute && hasRuntime {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats listing never gained route p99 + runtime series: %v", listing.Metrics)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
