package serve

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"privim/internal/graph"
	"privim/internal/nn"
	"privim/internal/obs"
	core "privim/internal/privim"
)

// persistTestGraph mirrors the serve_test.go fixture: two hub stars
// joined by a ring — enough structure to train on.
func persistTestGraph() *graph.Graph {
	g := graph.NewWithNodes(60, true)
	for v := 1; v < 20; v++ {
		g.AddEdge(0, graph.NodeID(v), 0.8)
	}
	for v := 21; v < 40; v++ {
		g.AddEdge(20, graph.NodeID(v), 0.8)
	}
	for v := 0; v < 60; v++ {
		g.AddEdge(graph.NodeID(v), graph.NodeID((v+1)%60), 0.3)
	}
	return g
}

// newPersistManager returns a worker-less manager journaling into dir.
func newPersistManager(dir string) *jobManager {
	return newJobManager(jobManagerOptions{
		queueCap:        8,
		journalDir:      dir,
		checkpointEvery: 2,
		models:          newModelRegistry(),
		metrics:         obs.NewRegistry(),
		logf:            discard,
	})
}

// markRunning replays what a worker does before Train starts: flip the
// job to running and persist the transition — the on-disk state a daemon
// killed mid-train leaves behind.
func markRunning(m *jobManager, j *job) {
	m.mu.Lock()
	j.status.State = JobRunning
	j.status.Started = time.Now()
	m.persistLocked(j)
	m.mu.Unlock()
}

// writeEnvelopeCheckpoint drops a file that passes integrity
// verification into the job's checkpoint directory.
func writeEnvelopeCheckpoint(t *testing.T, m *jobManager, id string) {
	t.Helper()
	dir := m.checkpointDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	_, err := nn.WriteFileAtomic(filepath.Join(dir, "ckpt-00000002.ckpt"), func(w io.Writer) error {
		_, err := w.Write([]byte("placeholder checkpoint payload"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJobTableReplayAfterRestart(t *testing.T) {
	dir := t.TempDir()
	g := persistTestGraph()

	m1 := newPersistManager(dir)
	running, err := m1.Submit(TrainRequest{Graph: "g"}, g, "", "")
	if err != nil {
		t.Fatal(err)
	}
	canceled, err := m1.Submit(TrainRequest{Graph: "g"}, g, "", "")
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m1.Submit(TrainRequest{Graph: "g"}, g, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Cancel(canceled.ID); err != nil {
		t.Fatal(err)
	}
	j := m1.dequeue()
	if j == nil || j.status.ID != running.ID {
		t.Fatalf("dequeue got %v, want %s", j, running.ID)
	}
	markRunning(m1, j)
	// m1 "crashes" here: no checkpoint was ever written for the running job.

	m2 := newPersistManager(dir)
	requeued, failed := m2.recover(func(string) *graph.Graph { return g })
	if requeued != 1 || failed != 1 {
		t.Fatalf("recover = (%d requeued, %d failed), want (1, 1)", requeued, failed)
	}
	st, err := m2.Get(running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobFailed || st.Error == "" {
		t.Fatalf("checkpoint-less interrupted job = %+v, want failed with reason", st)
	}
	if st, _ := m2.Get(canceled.ID); st.State != JobCanceled {
		t.Fatalf("canceled job came back as %s", st.State)
	}
	if st, _ := m2.Get(queued.ID); st.State != JobQueued {
		t.Fatalf("queued job came back as %s", st.State)
	}
	// ID allocation continues after the highest recovered ID.
	next, err := m2.Submit(TrainRequest{Graph: "g"}, g, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if next.ID != "job-0004" {
		t.Fatalf("post-recovery ID = %s, want job-0004", next.ID)
	}
	// Recovery persisted its own transitions: a third incarnation agrees.
	m3 := newPersistManager(dir)
	if re, fa := m3.recover(func(string) *graph.Graph { return g }); re != 2 || fa != 0 {
		t.Fatalf("second recovery = (%d, %d), want (2, 0): orphan failure must be durable", re, fa)
	}
}

func TestRecoverRequeuesCheckpointedInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	g := persistTestGraph()

	m1 := newPersistManager(dir)
	st, err := m1.Submit(TrainRequest{Graph: "g"}, g, "", "")
	if err != nil {
		t.Fatal(err)
	}
	j := m1.dequeue()
	markRunning(m1, j)
	writeEnvelopeCheckpoint(t, m1, st.ID)

	m2 := newPersistManager(dir)
	requeued, failed := m2.recover(func(string) *graph.Graph { return g })
	if requeued != 1 || failed != 0 {
		t.Fatalf("recover = (%d, %d), want (1, 0)", requeued, failed)
	}
	got, _ := m2.Get(st.ID)
	if got.State != JobQueued {
		t.Fatalf("interrupted job with checkpoint = %s, want queued for resume", got.State)
	}

}

// TestRecoverTreatsCorruptOnlyCheckpointsAsOrphan: an interrupted job
// whose every checkpoint fails verification (torn write at crash time)
// cannot resume and must be marked failed, not requeued.
func TestRecoverTreatsCorruptOnlyCheckpointsAsOrphan(t *testing.T) {
	dir := t.TempDir()
	g := persistTestGraph()
	m1 := newPersistManager(dir)
	st, err := m1.Submit(TrainRequest{Graph: "g"}, g, "", "")
	if err != nil {
		t.Fatal(err)
	}
	j := m1.dequeue()
	markRunning(m1, j)
	writeEnvelopeCheckpoint(t, m1, st.ID)
	ckpt := filepath.Join(m1.checkpointDir(st.ID), "ckpt-00000002.ckpt")
	blob, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x01
	if err := os.WriteFile(ckpt, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := newPersistManager(dir)
	requeued, failed := m2.recover(func(string) *graph.Graph { return g })
	if requeued != 0 || failed != 1 {
		t.Fatalf("recover with corrupt checkpoint = (%d, %d), want (0, 1)", requeued, failed)
	}
	got, _ := m2.Get(st.ID)
	if got.State != JobFailed {
		t.Fatalf("job with corrupt-only checkpoints = %s, want failed", got.State)
	}
}

func TestJobTableSkipsCorruptLines(t *testing.T) {
	dir := t.TempDir()
	g := persistTestGraph()

	m1 := newPersistManager(dir)
	a, _ := m1.Submit(TrainRequest{Graph: "g"}, g, "", "")
	// Torn and garbage lines interleave the valid tail records.
	f, err := os.OpenFile(m1.jobTablePath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"req\":{},\"status\":{\"id\":\"job-tor\n\x00\x7f not json at all\n{\"status\":{}}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	b, err := m1.Submit(TrainRequest{Graph: "g"}, g, "", "")
	if err != nil {
		t.Fatal(err)
	}

	m2 := newPersistManager(dir)
	requeued, failed := m2.recover(func(string) *graph.Graph { return g })
	if requeued != 2 || failed != 0 {
		t.Fatalf("recover = (%d, %d), want (2, 0)", requeued, failed)
	}
	for _, id := range []string{a.ID, b.ID} {
		if st, err := m2.Get(id); err != nil || st.State != JobQueued {
			t.Fatalf("job %s after corrupt-table recovery: %+v, %v", id, st, err)
		}
	}
}

func TestRecoverFailsJobsWithMissingGraph(t *testing.T) {
	dir := t.TempDir()
	g := persistTestGraph()
	m1 := newPersistManager(dir)
	st, err := m1.Submit(TrainRequest{Graph: "gone"}, g, "", "")
	if err != nil {
		t.Fatal(err)
	}
	m2 := newPersistManager(dir)
	requeued, failed := m2.recover(func(string) *graph.Graph { return nil })
	if requeued != 0 || failed != 1 {
		t.Fatalf("recover = (%d, %d), want (0, 1)", requeued, failed)
	}
	got, _ := m2.Get(st.ID)
	if got.State != JobFailed {
		t.Fatalf("job with missing graph = %s, want failed", got.State)
	}
}

// TestInterruptedJobResumesAndMatchesBaseline is the serve-layer
// end-to-end: a training job killed mid-run (checkpoints on disk, job
// table says running) is requeued by recovery, resumes from its last
// checkpoint, and finishes with exactly the privacy spend an
// uninterrupted run reports.
func TestInterruptedJobResumesAndMatchesBaseline(t *testing.T) {
	dir := t.TempDir()
	g := persistTestGraph()
	req := TrainRequest{
		Graph:        "g",
		Epsilon:      4,
		Iterations:   6,
		SubgraphSize: 8,
		HiddenDim:    4,
		Layers:       2,
		BatchSize:    4,
		Seed:         3,
	}
	// cfg mirrors jobManager.run's request mapping.
	cfg := core.Config{
		Epsilon:      req.Epsilon,
		Iterations:   req.Iterations,
		SubgraphSize: req.SubgraphSize,
		HiddenDim:    req.HiddenDim,
		Layers:       req.Layers,
		BatchSize:    req.BatchSize,
		Seed:         req.Seed,
		Workers:      1,
	}
	baseline, err := core.Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	m1 := newPersistManager(dir)
	st, err := m1.Submit(req, g, "", "")
	if err != nil {
		t.Fatal(err)
	}
	j := m1.dequeue()
	markRunning(m1, j)
	// The daemon dies mid-train: simulate by running the job's training
	// with its checkpoint directory until a crash after iteration 3.
	crashCfg := cfg
	crashCfg.CheckpointDir = m1.checkpointDir(st.ID)
	crashCfg.CheckpointEvery = m1.checkpointEvery
	crashCfg.Observer = obs.ObserverFunc(func(e obs.Event) {
		if ie, ok := e.(obs.IterationEnd); ok && ie.Iter == 3 {
			panic("simulated daemon crash")
		}
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("training survived the injected crash")
			}
		}()
		core.Train(g, crashCfg)
	}()

	m2 := newPersistManager(dir)
	requeued, failed := m2.recover(func(string) *graph.Graph { return g })
	if requeued != 1 || failed != 0 {
		t.Fatalf("recover = (%d, %d), want (1, 0)", requeued, failed)
	}
	resumed := m2.dequeue()
	if resumed == nil || resumed.status.ID != st.ID {
		t.Fatalf("dequeue got %v, want %s", resumed, st.ID)
	}
	m2.run(resumed)
	got, err := m2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != JobDone {
		t.Fatalf("resumed job = %+v, want done", got)
	}
	if math.Float64bits(got.EpsilonSpent) != math.Float64bits(baseline.EpsilonSpent) {
		t.Fatalf("resumed EpsilonSpent %v != baseline %v", got.EpsilonSpent, baseline.EpsilonSpent)
	}
	// Done jobs clean their checkpoints up.
	if _, err := os.Stat(m2.checkpointDir(st.ID)); !os.IsNotExist(err) {
		t.Fatalf("checkpoint dir survived job completion: %v", err)
	}
}
