package serve

import (
	"container/list"
	"sync"
)

// cacheKey identifies one memoized query result: the fully resolved
// model reference ("name@version"), the graph's content fingerprint
// (graph.Fingerprint), the seed-set size (0 for score queries), and the
// query mode ("seeds" / "score"). Keying on the fingerprint rather than
// the store name means re-uploading the same graph under another name —
// or replacing a name with different content — hits or misses correctly
// for free.
type cacheKey struct {
	Model       string
	Fingerprint uint64
	K           int
	Mode        string
}

// lruCache is a fixed-capacity least-recently-used map from cacheKey to
// an immutable cached response value. Safe for concurrent use; cached
// values must never be mutated after Put.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; elements hold *cacheEntry
	items map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	val any
}

// cacheCopier lets values opt into defensive copying at insertion: Put
// stores the copy, so the cache owns its data outright and later mutation
// of the original's backing arrays (solver buffer reuse, caller-side
// sorting) cannot corrupt memoized responses.
type cacheCopier interface{ CopyForCache() any }

// newLRUCache returns an empty cache holding at most capacity entries
// (capacity < 1 is clamped to 1).
func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[cacheKey]*list.Element),
	}
}

// Get returns the cached value for k, marking it most recently used.
func (c *lruCache) Get(k cacheKey) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts or refreshes k→v, evicting the least recently used entry
// when the cache is full. Values implementing cacheCopier are stored by
// copy.
func (c *lruCache) Put(k cacheKey, v any) {
	if cp, ok := v.(cacheCopier); ok {
		v = cp.CopyForCache()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, val: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
