package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"privim/internal/graph"
	"privim/internal/ledger"
	"privim/internal/obs"
	core "privim/internal/privim"
)

// fastTrainBody is a private training request small enough to finish in
// milliseconds, with requested ε = 4.
const fastTrainBody = `{"graph":"g","epsilon":4,"iterations":6,"subgraph_size":8,"hidden_dim":4,"layers":2,"batch_size":4,"seed":3}`

// budgetTestServer builds a server with the given budget over one stored
// graph and mounts it on httptest.
func budgetTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, persistTestGraph()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StoreGraph("g", buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// doTenant issues a request under the given tenant header and decodes the
// JSON response.
func doTenant(t *testing.T, ts *httptest.Server, method, path, tenant, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func waitJobDone(t *testing.T, ts *httptest.Server, tenant, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatus
		if code := doTenant(t, ts, http.MethodGet, "/v1/jobs/"+id, tenant, "", &st); code != 200 {
			t.Fatalf("job poll = %d", code)
		}
		switch st.State {
		case JobDone, JobFailed, JobCanceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// budgetDenial is the machine-readable 403 body.
type budgetDenial struct {
	Error     string  `json:"error"`
	Tenant    string  `json:"tenant"`
	Graph     string  `json:"graph"`
	Requested float64 `json:"requested"`
	Budget    float64 `json:"budget"`
	Remaining float64 `json:"remaining"`
}

// TestBudgetExhaustionIsolatesTenants is the tentpole acceptance e2e:
// two tenants train against the same graph fingerprint; tenant A
// exhausts its budget and gets a machine-readable 403 while tenant B —
// a separate account over the very same graph — proceeds.
func TestBudgetExhaustionIsolatesTenants(t *testing.T) {
	_, ts := budgetTestServer(t, Options{Budget: 5, TrainWorkers: 1, Logf: discard})

	var first JobStatus
	if code := doTenant(t, ts, http.MethodPost, "/v1/train", "tenant-a", fastTrainBody, &first); code != 202 {
		t.Fatalf("tenant-a first train = %d, want 202", code)
	}
	if first.Tenant != "tenant-a" || first.Fingerprint == "" {
		t.Fatalf("job status carries no tenant/fingerprint: %+v", first)
	}

	// ε=4 of budget 5 is reserved (or already committed): a second ε=4
	// job cannot fit, whether or not the first has finished.
	var denial budgetDenial
	if code := doTenant(t, ts, http.MethodPost, "/v1/train", "tenant-a", fastTrainBody, &denial); code != 403 {
		t.Fatalf("tenant-a second train = %d, want 403", code)
	}
	if denial.Error != "budget_exhausted" || denial.Tenant != "tenant-a" || denial.Graph != first.Fingerprint {
		t.Fatalf("denial body: %+v", denial)
	}
	if denial.Requested != 4 || denial.Budget != 5 || denial.Remaining >= 4 {
		t.Fatalf("denial numbers: %+v", denial)
	}

	// Tenant B is an independent account against the same fingerprint.
	var second JobStatus
	if code := doTenant(t, ts, http.MethodPost, "/v1/train", "tenant-b", fastTrainBody, &second); code != 202 {
		t.Fatalf("tenant-b train = %d, want 202", code)
	}
	// The default tenant (no header) is its own account too.
	var third JobStatus
	if code := doTenant(t, ts, http.MethodPost, "/v1/train", "", fastTrainBody, &third); code != 202 {
		t.Fatalf("default-tenant train = %d, want 202", code)
	}
	if third.Tenant != DefaultTenant {
		t.Fatalf("headerless job tenant = %q, want %q", third.Tenant, DefaultTenant)
	}

	// After completion the reservation became a committed charge and the
	// budget endpoint reports it.
	done := waitJobDone(t, ts, "tenant-a", first.ID)
	if done.State != JobDone {
		t.Fatalf("tenant-a job = %+v, want done", done)
	}
	var pos struct {
		Tenant   string           `json:"tenant"`
		Enforced bool             `json:"enforced"`
		Budgets  []ledger.Balance `json:"budgets"`
	}
	if code := doTenant(t, ts, http.MethodGet, "/v1/budget", "tenant-a", "", &pos); code != 200 {
		t.Fatalf("GET /v1/budget = %d", code)
	}
	if !pos.Enforced || len(pos.Budgets) != 1 {
		t.Fatalf("budget position: %+v", pos)
	}
	b := pos.Budgets[0]
	if b.Graph != first.Fingerprint || b.Committed <= 0 || b.Committed > 4.001 || b.Reserved != 0 {
		t.Fatalf("tenant-a balance after completion: %+v", b)
	}
}

func TestTrainRejectsNegativeEpsilonAndBadTenant(t *testing.T) {
	_, ts := budgetTestServer(t, Options{Logf: discard})
	var errBody map[string]string
	if code := doTenant(t, ts, http.MethodPost, "/v1/train", "", `{"graph":"g","epsilon":-1}`, &errBody); code != 400 {
		t.Fatalf("negative epsilon = %d, want 400", code)
	}
	if code := doTenant(t, ts, http.MethodPost, "/v1/train", "no/slashes", fastTrainBody, &errBody); code != 400 {
		t.Fatalf("invalid tenant = %d, want 400", code)
	}
	// No budget configured: the endpoint says so rather than reporting
	// empty balances as if tracking were on.
	if code := doTenant(t, ts, http.MethodGet, "/v1/budget", "", "", &errBody); code != 404 {
		t.Fatalf("GET /v1/budget without ledger = %d, want 404", code)
	}
}

// newBudgetManager returns a worker-less manager journaling into dir
// with a durable budget ledger beside the job table.
func newBudgetManager(t *testing.T, dir string, budget float64) (*jobManager, *ledger.Ledger) {
	t.Helper()
	l, err := ledger.Open(ledger.Options{
		Budget: budget,
		Path:   filepath.Join(dir, "ledger.jsonl"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return newJobManager(jobManagerOptions{
		queueCap:        8,
		journalDir:      dir,
		checkpointEvery: 2,
		models:          newModelRegistry(),
		metrics:         obs.NewRegistry(),
		logf:            discard,
		budget:          l,
	}), l
}

func privateReq() TrainRequest {
	return TrainRequest{
		Graph: "g", Epsilon: 4, Iterations: 6, SubgraphSize: 8,
		HiddenDim: 4, Layers: 2, BatchSize: 4, Seed: 3,
	}
}

// TestCanceledJobRefundsReservation: acceptance — canceling a queued job
// leaves the committed balance unchanged and releases the reservation.
func TestCanceledJobRefundsReservation(t *testing.T) {
	g := persistTestGraph()
	m, l := newBudgetManager(t, t.TempDir(), 10)
	st, err := m.Submit(privateReq(), g, "t", "")
	if err != nil {
		t.Fatal(err)
	}
	before := l.Balance("t", st.Fingerprint)
	if before.Reserved != 4 {
		t.Fatalf("reservation after submit: %+v", before)
	}
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	after := l.Balance("t", st.Fingerprint)
	if after.Committed != 0 || after.Reserved != 0 || after.Remaining != 10 {
		t.Fatalf("balance after cancel: %+v", after)
	}
	// The refund is durable: a replayed ledger agrees.
	replayed, err := ledger.Open(ledger.Options{Budget: 10, Path: filepath.Join(m.journalDir, "ledger.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	if b := replayed.Balance("t", st.Fingerprint); b.Committed != 0 || b.Reserved != 0 {
		t.Fatalf("replayed balance after cancel: %+v", b)
	}
}

// TestBudgetSurvivesDaemonCrash: acceptance — a daemon killed mid-job
// restarts, replays ledger.jsonl and jobs.jsonl, resumes the job from
// its checkpoint, and lands on the same committed balance bit for bit as
// an uninterrupted run.
func TestBudgetSurvivesDaemonCrash(t *testing.T) {
	g := persistTestGraph()
	req := privateReq()

	// Uninterrupted baseline in its own directory.
	baseDir := t.TempDir()
	mb, lb := newBudgetManager(t, baseDir, 10)
	bst, err := mb.Submit(req, g, "t", "")
	if err != nil {
		t.Fatal(err)
	}
	mb.run(mb.dequeue())
	if st, _ := mb.Get(bst.ID); st.State != JobDone {
		t.Fatalf("baseline job: %+v", st)
	}
	baseline := lb.Balance("t", bst.Fingerprint)

	// Crash run: the daemon dies after iteration 3, past a checkpoint.
	dir := t.TempDir()
	m1, l1 := newBudgetManager(t, dir, 10)
	st, err := m1.Submit(req, g, "t", "")
	if err != nil {
		t.Fatal(err)
	}
	j := m1.dequeue()
	markRunning(m1, j)
	// Mirrors jobManager.run's request mapping, including the ledger-δ
	// default for budget-charged jobs.
	crashCfg := core.Config{
		Epsilon: req.Epsilon, Delta: m1.budget.Delta(), Iterations: req.Iterations, SubgraphSize: req.SubgraphSize,
		HiddenDim: req.HiddenDim, Layers: req.Layers, BatchSize: req.BatchSize, Seed: req.Seed,
		Workers: 1, CheckpointDir: m1.checkpointDir(st.ID), CheckpointEvery: m1.checkpointEvery,
		Observer: obs.ObserverFunc(func(e obs.Event) {
			if ie, ok := e.(obs.IterationEnd); ok && ie.Iter == 3 {
				panic("simulated daemon crash")
			}
		}),
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("training survived the injected crash")
			}
		}()
		core.Train(g, crashCfg)
	}()
	preCrash := l1.Balance("t", st.Fingerprint)
	if preCrash.Reserved != 4 || preCrash.Committed != 0 {
		t.Fatalf("balance at crash time: %+v", preCrash)
	}

	// Restart: ledger replays first (the reservation survives), then job
	// recovery requeues the checkpointed job — it must not re-reserve.
	m2, l2 := newBudgetManager(t, dir, 10)
	if b := l2.Balance("t", st.Fingerprint); math.Float64bits(b.Reserved) != math.Float64bits(preCrash.Reserved) {
		t.Fatalf("replayed reservation %v != pre-crash %v", b.Reserved, preCrash.Reserved)
	}
	requeued, failed := m2.recover(func(string) *graph.Graph { return g })
	if requeued != 1 || failed != 0 {
		t.Fatalf("recover = (%d, %d), want (1, 0)", requeued, failed)
	}
	if b := l2.Balance("t", st.Fingerprint); b.Reserved != 4 {
		t.Fatalf("recovery disturbed the reservation: %+v", b)
	}
	m2.run(m2.dequeue())
	got, _ := m2.Get(st.ID)
	if got.State != JobDone {
		t.Fatalf("resumed job: %+v", got)
	}
	after := l2.Balance("t", st.Fingerprint)
	if math.Float64bits(after.Committed) != math.Float64bits(baseline.Committed) {
		t.Fatalf("crash-resumed committed %v != uninterrupted %v", after.Committed, baseline.Committed)
	}
	if after.Reserved != 0 {
		t.Fatalf("reservation outlived the commit: %+v", after)
	}
	// Third incarnation: the committed balance replays bit for bit.
	l3, err := ledger.Open(ledger.Options{Budget: 10, Path: filepath.Join(dir, "ledger.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	if b := l3.Balance("t", st.Fingerprint); math.Float64bits(b.Committed) != math.Float64bits(after.Committed) {
		t.Fatalf("replayed committed %v != live %v", b.Committed, after.Committed)
	}
}

// TestCrashWithoutCheckpointForfeitsReservation: an interrupted job that
// cannot resume has an unknowable true spend; recovery forfeits its full
// reservation rather than guessing.
func TestCrashWithoutCheckpointForfeitsReservation(t *testing.T) {
	g := persistTestGraph()
	dir := t.TempDir()
	m1, _ := newBudgetManager(t, dir, 10)
	st, err := m1.Submit(privateReq(), g, "t", "")
	if err != nil {
		t.Fatal(err)
	}
	markRunning(m1, m1.dequeue())
	// Crash before any checkpoint: restart cannot resume the job.
	m2, l2 := newBudgetManager(t, dir, 10)
	requeued, failed := m2.recover(func(string) *graph.Graph { return g })
	if requeued != 0 || failed != 1 {
		t.Fatalf("recover = (%d, %d), want (0, 1)", requeued, failed)
	}
	b := l2.Balance("t", st.Fingerprint)
	if b.Committed != 4 || b.Reserved != 0 {
		t.Fatalf("forfeit balance: %+v", b)
	}
	// A canceled-before-restart queued job would have been refunded
	// instead; the queued-job path is covered by the recovery refund below.
	m3, _ := newBudgetManager(t, t.TempDir(), 10)
	qst, err := m3.Submit(privateReq(), g, "t", "")
	if err != nil {
		t.Fatal(err)
	}
	m4, l4 := newBudgetManager(t, m3.journalDir, 10)
	if re, fa := m4.recover(func(string) *graph.Graph { return nil }); re != 0 || fa != 1 {
		t.Fatalf("recover = (%d, %d), want (0, 1)", re, fa)
	}
	if b := l4.Balance("t", qst.Fingerprint); b.Committed != 0 || b.Reserved != 0 {
		t.Fatalf("queued-job recovery should refund, got %+v", b)
	}
}

// TestFailedJobCommitsObservedSpend: satellite — a job that trains but
// fails afterward (model registration) surfaces the trainer's last
// observed ε on its status and commits exactly that to the ledger.
func TestFailedJobCommitsObservedSpend(t *testing.T) {
	g := persistTestGraph()
	m, l := newBudgetManager(t, t.TempDir(), 10)
	req := privateReq()
	req.ModelName = "bad name!" // fails validName at registration time
	st, err := m.Submit(req, g, "t", "")
	if err != nil {
		t.Fatal(err)
	}
	m.run(m.dequeue())
	got, _ := m.Get(st.ID)
	if got.State != JobFailed {
		t.Fatalf("job = %+v, want failed at model registration", got)
	}
	if got.EpsilonSpent <= 0 {
		t.Fatal("failed job reports no spend despite completing training")
	}
	b := l.Balance("t", st.Fingerprint)
	if math.Float64bits(b.Committed) != math.Float64bits(got.EpsilonSpent) {
		t.Fatalf("ledger committed %v != observed spend %v", b.Committed, got.EpsilonSpent)
	}
	if b.Reserved != 0 {
		t.Fatalf("failed job left a reservation: %+v", b)
	}
}
