package serve

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"privim/internal/graph"
	"privim/internal/ledger"
	"privim/internal/obs"
	core "privim/internal/privim"
)

// longTrainBody is a private request with far more iterations than can
// finish during a test, so the job is reliably mid-run when canceled.
const longTrainBody = `{"graph":"g","epsilon":4,"iterations":20000,"subgraph_size":8,"hidden_dim":4,"layers":2,"batch_size":4,"seed":3}`

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelRunningJobE2E is the tentpole acceptance e2e: DELETE on a
// running job stops the computation within 2 seconds, leaves a
// resumable final checkpoint on disk, commits exactly the partial ε the
// completed iterations released, and refunds the unspent remainder —
// all observable through the public HTTP API.
func TestCancelRunningJobE2E(t *testing.T) {
	dir := t.TempDir()
	_, ts := budgetTestServer(t, Options{
		Budget: 5, TrainWorkers: 1, JournalDir: dir, CheckpointEvery: 1, Logf: discard,
	})

	var job JobStatus
	if code := doTenant(t, ts, http.MethodPost, "/v1/train", "tenant-a", longTrainBody, &job); code != 202 {
		t.Fatalf("train = %d, want 202", code)
	}

	// Wait until the job has at least one completed, checkpointed
	// iteration: the cancel then has real partial progress to settle.
	ckptDir := filepath.Join(dir, "checkpoints", job.ID)
	waitFor(t, 30*time.Second, "first training checkpoint", func() bool {
		return hasRecoverableCheckpoint(ckptDir)
	})

	delAt := time.Now()
	var st JobStatus
	if code := doTenant(t, ts, http.MethodDelete, "/v1/jobs/"+job.ID, "tenant-a", "", &st); code != 200 {
		t.Fatalf("DELETE running job = %d, want 200", code)
	}
	if st.State != JobCanceling && st.State != JobCanceled {
		t.Fatalf("state after DELETE = %s, want canceling", st.State)
	}

	done := waitJobDone(t, ts, "tenant-a", job.ID)
	latency := time.Since(delAt)
	if done.State != JobCanceled {
		t.Fatalf("terminal state = %s (%s), want canceled", done.State, done.Error)
	}
	if latency > 2*time.Second {
		t.Fatalf("cancel-to-stop latency %v, want under 2s", latency)
	}
	if done.EpsilonSpent <= 0 || done.EpsilonSpent >= 4 {
		t.Fatalf("partial ε = %v, want in (0, 4): the iterations run so far, not the reservation", done.EpsilonSpent)
	}
	if !strings.Contains(done.Error, "canceled") {
		t.Fatalf("canceled job error = %q", done.Error)
	}

	// Ledger: the partial spend is committed, the remainder refunded.
	var pos struct {
		Budgets []ledger.Balance `json:"budgets"`
	}
	if code := doTenant(t, ts, http.MethodGet, "/v1/budget", "tenant-a", "", &pos); code != 200 {
		t.Fatalf("GET /v1/budget = %d", code)
	}
	if len(pos.Budgets) != 1 {
		t.Fatalf("budget position: %+v", pos)
	}
	b := pos.Budgets[0]
	if b.Reserved != 0 {
		t.Fatalf("reservation not settled after cancel: %+v", b)
	}
	if math.Abs(b.Committed-done.EpsilonSpent) > 1e-9 {
		t.Fatalf("committed %v != partial spend %v", b.Committed, done.EpsilonSpent)
	}

	// The final checkpoint survives the cancel, so the work is resumable.
	if !hasRecoverableCheckpoint(ckptDir) {
		t.Fatal("canceled job left no resumable checkpoint")
	}
}

// TestCancelLedgerReplayConverges: the balance after canceling a
// running job must be durable — a fresh ledger replaying ledger.jsonl
// (the crash-after-cancel scenario) lands on the identical committed
// spend, bit for bit.
func TestCancelLedgerReplayConverges(t *testing.T) {
	g := persistTestGraph()
	dir := t.TempDir()
	l, err := ledger.Open(ledger.Options{Budget: 10, Path: filepath.Join(dir, "ledger.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	m := newJobManager(jobManagerOptions{
		workers:         1,
		queueCap:        8,
		journalDir:      dir,
		checkpointEvery: 1,
		models:          newModelRegistry(),
		metrics:         obs.NewRegistry(),
		logf:            discard,
		budget:          l,
	})
	req := privateReq()
	req.Iterations = 20000
	st, err := m.Submit(req, g, "t", "")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "first training checkpoint", func() bool {
		return hasRecoverableCheckpoint(m.checkpointDir(st.ID))
	})
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "job to settle", func() bool {
		got, _ := m.Get(st.ID)
		return got.State == JobCanceled
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	live := l.Balance("t", st.Fingerprint)
	if live.Committed <= 0 || live.Reserved != 0 {
		t.Fatalf("live balance after cancel: %+v", live)
	}
	replayed, err := ledger.Open(ledger.Options{Budget: 10, Path: filepath.Join(dir, "ledger.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	rb := replayed.Balance("t", st.Fingerprint)
	if math.Float64bits(rb.Committed) != math.Float64bits(live.Committed) || rb.Reserved != 0 {
		t.Fatalf("replayed balance diverges: %+v vs %+v", rb, live)
	}
}

// TestRecoverCancelingJobForfeits: a job persisted in the transient
// canceling state (daemon died between the cancel request and the
// trainer stopping) recovers as canceled with its full reservation
// forfeited — the partial spend was never committed, so the
// conservative resolution charges the whole reservation.
func TestRecoverCancelingJobForfeits(t *testing.T) {
	g := persistTestGraph()
	dir := t.TempDir()
	m1, _ := newBudgetManager(t, dir, 10)
	st, err := m1.Submit(privateReq(), g, "t", "")
	if err != nil {
		t.Fatal(err)
	}
	m1.mu.Lock()
	j := m1.jobs[st.ID]
	j.status.State = JobCanceling
	m1.persistLocked(j)
	m1.mu.Unlock()

	// "Restart": fresh ledger and manager replay the same directory.
	l2, err := ledger.Open(ledger.Options{Budget: 10, Path: filepath.Join(dir, "ledger.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	m2 := newJobManager(jobManagerOptions{
		queueCap: 8, journalDir: dir, models: newModelRegistry(),
		metrics: obs.NewRegistry(), logf: discard, budget: l2,
	})
	m2.recover(func(string) *graph.Graph { return g })
	got, err := m2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != JobCanceled {
		t.Fatalf("recovered state = %s, want canceled", got.State)
	}
	b := l2.Balance("t", st.Fingerprint)
	if b.Committed != 4 || b.Reserved != 0 {
		t.Fatalf("forfeit balance: %+v, want full ε=4 reservation committed", b)
	}
}

// TestDrainGracePreemptsRunningJobs: Shutdown with a drain grace
// preempts the running job (canceled, checkpointed) instead of waiting
// out its 20000 iterations, and leaves the queued job untouched for
// restart recovery.
func TestDrainGracePreemptsRunningJobs(t *testing.T) {
	g := persistTestGraph()
	dir := t.TempDir()
	m := newJobManager(jobManagerOptions{
		workers:         1,
		queueCap:        8,
		journalDir:      dir,
		checkpointEvery: 1,
		models:          newModelRegistry(),
		metrics:         obs.NewRegistry(),
		logf:            discard,
		drainGrace:      50 * time.Millisecond,
	})
	req := privateReq()
	req.Iterations = 20000
	running, err := m.Submit(req, g, "t", "")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "first training checkpoint", func() bool {
		return hasRecoverableCheckpoint(m.checkpointDir(running.ID))
	})
	queued, err := m.Submit(req, g, "t", "")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st, _ := m.Get(running.ID); st.State != JobCanceled {
		t.Fatalf("running job after drain = %s, want canceled", st.State)
	}
	if !hasRecoverableCheckpoint(m.checkpointDir(running.ID)) {
		t.Fatal("preempted job left no resumable checkpoint")
	}
	if st, _ := m.Get(queued.ID); st.State != JobQueued {
		t.Fatalf("queued job after drain = %s, want queued (recovered on restart)", st.State)
	}
}

// TestQueryCanceledRequestNotCached: a query whose request context is
// already dead answers 503 and must not poison the result cache; the
// next identical query computes fresh.
func TestQueryCanceledRequestNotCached(t *testing.T) {
	dir := t.TempDir()
	s, ts := budgetTestServer(t, Options{TrainWorkers: 1, JournalDir: dir, Logf: discard})
	res, err := core.Train(persistTestGraph(), core.Config{
		Mode: core.ModeNonPrivate, HiddenDim: 4, Layers: 2, SubgraphSize: 8,
		Iterations: 2, BatchSize: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.models.Put("m", 0, res.Model); err != nil {
		t.Fatal(err)
	}
	_ = ts

	body := `{"model":"m","graph":"g"}`
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/score", strings.NewReader(body)).WithContext(dead)
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("canceled query = %d, want 503: %s", rr.Code, rr.Body)
	}

	req2 := httptest.NewRequest(http.MethodPost, "/v1/score", strings.NewReader(body))
	rr2 := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr2, req2)
	if rr2.Code != http.StatusOK {
		t.Fatalf("follow-up query = %d, want 200: %s", rr2.Code, rr2.Body)
	}
	var resp struct {
		Cached bool      `json:"cached"`
		Scores []float64 `json:"scores"`
	}
	if err := json.Unmarshal(rr2.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("canceled query left a cache entry behind")
	}
	if len(resp.Scores) == 0 {
		t.Fatal("follow-up query returned no scores")
	}
}
