package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"privim/internal/graph"
	"privim/internal/obs"
)

func discard(string, ...any) {}

// newIdleManager returns a manager with no workers, so submitted jobs
// stay queued deterministically.
func newIdleManager(queueCap int) *jobManager {
	return newJobManager(jobManagerOptions{
		queueCap: queueCap,
		models:   newModelRegistry(),
		metrics:  obs.NewRegistry(),
		logf:     discard,
	})
}

func TestJobQueueBoundsAndCancel(t *testing.T) {
	m := newIdleManager(1)
	g := graph.NewWithNodes(4, true)

	st, err := m.Submit(TrainRequest{Graph: "g"}, g, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobQueued {
		t.Fatalf("state = %s, want queued", st.State)
	}

	if _, err := m.Submit(TrainRequest{Graph: "g"}, g, "", ""); !errors.Is(err, errQueueFull) {
		t.Fatalf("overfull submit err = %v, want errQueueFull", err)
	}

	canceled, err := m.Cancel(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if canceled.State != JobCanceled {
		t.Fatalf("state after cancel = %s", canceled.State)
	}
	if _, err := m.Cancel(st.ID); err == nil {
		t.Fatal("double cancel succeeded")
	}
	if _, err := m.Cancel("job-9999"); err == nil {
		t.Fatal("cancel of unknown job succeeded")
	}
}

func TestJobManagerDrainRejectsNewWork(t *testing.T) {
	m := newIdleManager(4)
	g := graph.NewWithNodes(4, true)

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := m.Submit(TrainRequest{Graph: "g"}, g, "", ""); !errors.Is(err, errDraining) {
		t.Fatalf("post-drain submit err = %v, want errDraining", err)
	}
	// Shutdown is idempotent.
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func TestCanceledJobIsSkippedByWorker(t *testing.T) {
	// Cancel racing a worker: the job is dequeued (as a worker would)
	// before the cancel lands, so it is no longer in the pending queue —
	// the run-time state guard must still refuse to execute it.
	m := newIdleManager(1)
	g := graph.NewWithNodes(4, true)
	st, err := m.Submit(TrainRequest{Graph: "g"}, g, "", "")
	if err != nil {
		t.Fatal(err)
	}
	j := m.dequeue()
	if j == nil || j.status.ID != st.ID {
		t.Fatalf("dequeue returned %v, want job %s", j, st.ID)
	}
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	m.run(j)
	got, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != JobCanceled {
		t.Fatalf("canceled job ran: state = %s", got.State)
	}
}

// TestCancelReleasesQueueSlot is the regression test for canceled queued
// jobs pinning queue capacity: fill the queue, cancel everything, and
// the queue must accept a full complement of new jobs again.
func TestCancelReleasesQueueSlot(t *testing.T) {
	const capacity = 3
	m := newIdleManager(capacity)
	g := graph.NewWithNodes(4, true)

	ids := make([]string, 0, capacity)
	for i := 0; i < capacity; i++ {
		st, err := m.Submit(TrainRequest{Graph: "g"}, g, "", "")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if _, err := m.Submit(TrainRequest{Graph: "g"}, g, "", ""); !errors.Is(err, errQueueFull) {
		t.Fatalf("overfull submit err = %v, want errQueueFull", err)
	}
	for _, id := range ids {
		if _, err := m.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
	// Every canceled slot is free again.
	for i := 0; i < capacity; i++ {
		if _, err := m.Submit(TrainRequest{Graph: "g"}, g, "", ""); err != nil {
			t.Fatalf("submit %d after cancels: %v", i, err)
		}
	}
	if _, err := m.Submit(TrainRequest{Graph: "g"}, g, "", ""); !errors.Is(err, errQueueFull) {
		t.Fatalf("refilled queue should be full again, got %v", err)
	}
}

// TestRejectedSubmitDoesNotConsumeID is the regression test for Submit
// burning a job ID on queue-full rejection: the ID sequence must stay
// dense across rejections, and rejections must be counted.
func TestRejectedSubmitDoesNotConsumeID(t *testing.T) {
	metrics := obs.NewRegistry()
	m := newJobManager(jobManagerOptions{
		queueCap: 1,
		models:   newModelRegistry(),
		metrics:  metrics,
		logf:     discard,
	})
	g := graph.NewWithNodes(4, true)

	first, err := m.Submit(TrainRequest{Graph: "g"}, g, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if first.ID != "job-0001" {
		t.Fatalf("first ID = %s", first.ID)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Submit(TrainRequest{Graph: "g"}, g, "", ""); !errors.Is(err, errQueueFull) {
			t.Fatalf("submit into full queue: %v", err)
		}
	}
	if _, err := m.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	second, err := m.Submit(TrainRequest{Graph: "g"}, g, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != "job-0002" {
		t.Fatalf("ID after 5 rejections = %s, want job-0002 (rejections must not consume IDs)", second.ID)
	}
	if v := metrics.Counter("serve.jobs.rejected").Value(); v != 5 {
		t.Fatalf("serve.jobs.rejected = %d, want 5", v)
	}
}

// TestQueuedGaugeTracksQueue: the queued gauge rises on submit and falls
// on cancel and dequeue — level semantics a Counter cannot provide.
func TestQueuedGaugeTracksQueue(t *testing.T) {
	metrics := obs.NewRegistry()
	m := newJobManager(jobManagerOptions{
		queueCap: 4,
		models:   newModelRegistry(),
		metrics:  metrics,
		logf:     discard,
	})
	g := graph.NewWithNodes(4, true)
	queued := metrics.Gauge("serve.jobs.queued")

	a, _ := m.Submit(TrainRequest{Graph: "g"}, g, "", "")
	b, _ := m.Submit(TrainRequest{Graph: "g"}, g, "", "")
	if v := queued.Value(); v != 2 {
		t.Fatalf("queued gauge = %v, want 2", v)
	}
	if _, err := m.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	if v := queued.Value(); v != 1 {
		t.Fatalf("queued gauge after cancel = %v, want 1", v)
	}
	if j := m.dequeue(); j == nil || j.status.ID != b.ID {
		t.Fatalf("dequeue got %v, want %s", j, b.ID)
	}
	if v := queued.Value(); v != 0 {
		t.Fatalf("queued gauge after dequeue = %v, want 0", v)
	}
}
