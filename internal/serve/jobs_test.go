package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"privim/internal/graph"
	"privim/internal/obs"
)

func discard(string, ...any) {}

// newIdleManager returns a manager with no workers, so submitted jobs
// stay queued deterministically.
func newIdleManager(queueCap int) *jobManager {
	return newJobManager(0, queueCap, "", nil, newModelRegistry(), obs.NewRegistry(), discard)
}

func TestJobQueueBoundsAndCancel(t *testing.T) {
	m := newIdleManager(1)
	g := graph.NewWithNodes(4, true)

	st, err := m.Submit(TrainRequest{Graph: "g"}, g)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobQueued {
		t.Fatalf("state = %s, want queued", st.State)
	}

	if _, err := m.Submit(TrainRequest{Graph: "g"}, g); !errors.Is(err, errQueueFull) {
		t.Fatalf("overfull submit err = %v, want errQueueFull", err)
	}

	canceled, err := m.Cancel(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if canceled.State != JobCanceled {
		t.Fatalf("state after cancel = %s", canceled.State)
	}
	if _, err := m.Cancel(st.ID); err == nil {
		t.Fatal("double cancel succeeded")
	}
	if _, err := m.Cancel("job-9999"); err == nil {
		t.Fatal("cancel of unknown job succeeded")
	}
}

func TestJobManagerDrainRejectsNewWork(t *testing.T) {
	m := newIdleManager(4)
	g := graph.NewWithNodes(4, true)

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := m.Submit(TrainRequest{Graph: "g"}, g); !errors.Is(err, errDraining) {
		t.Fatalf("post-drain submit err = %v, want errDraining", err)
	}
	// Shutdown is idempotent.
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func TestCanceledJobIsSkippedByWorker(t *testing.T) {
	// No workers yet: submit, cancel, then run the queue manually the way
	// a worker would — the canceled job must not execute.
	m := newIdleManager(1)
	g := graph.NewWithNodes(4, true)
	st, err := m.Submit(TrainRequest{Graph: "g"}, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	j := <-m.queue
	m.run(j)
	got, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != JobCanceled {
		t.Fatalf("canceled job ran: state = %s", got.State)
	}
}
