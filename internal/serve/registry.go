package serve

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"privim/internal/gnn"
)

// ModelInfo is the registry's public description of one checkpoint.
type ModelInfo struct {
	Name     string `json:"name"`
	Version  int    `json:"version"`
	Kind     string `json:"kind"`
	Params   int    `json:"params"`
	InputDim int    `json:"input_dim"`
}

// Ref is the "name@version" reference queries use.
func (i ModelInfo) Ref() string { return fmt.Sprintf("%s@%d", i.Name, i.Version) }

type modelEntry struct {
	info  ModelInfo
	model *gnn.Model
}

// modelRegistry is the in-memory store of named, versioned checkpoints.
// Versions are dense positive integers per name; a bare name resolves to
// the highest version. Safe for concurrent use; stored models are frozen
// (Score only), so entries can be served without copying.
type modelRegistry struct {
	mu     sync.RWMutex
	models map[string]map[int]*modelEntry
}

func newModelRegistry() *modelRegistry {
	return &modelRegistry{models: make(map[string]map[int]*modelEntry)}
}

// validName restricts registry keys so "name@version" references and URL
// path segments stay unambiguous.
func validName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

// Put registers m under name. version <= 0 assigns the next free version.
func (r *modelRegistry) Put(name string, version int, m *gnn.Model) (ModelInfo, error) {
	if !validName(name) {
		return ModelInfo{}, fmt.Errorf("invalid model name %q (want [A-Za-z0-9._-]+)", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	versions := r.models[name]
	if versions == nil {
		versions = make(map[int]*modelEntry)
		r.models[name] = versions
	}
	if version <= 0 {
		for v := range versions {
			if v > version {
				version = v
			}
		}
		version++
	}
	info := ModelInfo{
		Name:     name,
		Version:  version,
		Kind:     string(m.Cfg.Kind),
		Params:   m.Params.NumParams(),
		InputDim: m.Cfg.InputDim,
	}
	versions[version] = &modelEntry{info: info, model: m}
	return info, nil
}

// Resolve looks up a "name" (latest version) or "name@version" reference.
func (r *modelRegistry) Resolve(ref string) (*modelEntry, error) {
	name, version := ref, 0
	if at := strings.LastIndexByte(ref, '@'); at >= 0 {
		v, err := strconv.Atoi(ref[at+1:])
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad model version in %q", ref)
		}
		name, version = ref[:at], v
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	versions := r.models[name]
	if len(versions) == 0 {
		return nil, fmt.Errorf("model %q not found", name)
	}
	if version == 0 {
		for v := range versions {
			if v > version {
				version = v
			}
		}
	}
	e, ok := versions[version]
	if !ok {
		return nil, fmt.Errorf("model %q has no version %d", name, version)
	}
	return e, nil
}

// Delete removes one version ("name@version") or every version of a name.
func (r *modelRegistry) Delete(ref string) error {
	name, version := ref, 0
	if at := strings.LastIndexByte(ref, '@'); at >= 0 {
		v, err := strconv.Atoi(ref[at+1:])
		if err != nil || v < 1 {
			return fmt.Errorf("bad model version in %q", ref)
		}
		name, version = ref[:at], v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	versions := r.models[name]
	if len(versions) == 0 {
		return fmt.Errorf("model %q not found", name)
	}
	if version == 0 {
		delete(r.models, name)
		return nil
	}
	if _, ok := versions[version]; !ok {
		return fmt.Errorf("model %q has no version %d", name, version)
	}
	delete(versions, version)
	if len(versions) == 0 {
		delete(r.models, name)
	}
	return nil
}

// List returns every registered checkpoint, sorted by name then version.
func (r *modelRegistry) List() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []ModelInfo
	for _, versions := range r.models {
		for _, e := range versions {
			out = append(out, e.info)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// LoadDir registers every checkpoint file in dir (non-recursive) as
// version 1 of its base filename (extension stripped). Unreadable or
// non-checkpoint files are skipped and reported via logf; it returns the
// number of models loaded.
func (r *modelRegistry) LoadDir(dir string, logf func(string, ...any)) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	loaded := 0
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		path := filepath.Join(dir, de.Name())
		m, err := loadCheckpointFile(path)
		if err != nil {
			logf("serve: skipping %s: %v", path, err)
			continue
		}
		name := strings.TrimSuffix(de.Name(), filepath.Ext(de.Name()))
		if _, err := r.Put(name, 0, m); err != nil {
			logf("serve: skipping %s: %v", path, err)
			continue
		}
		loaded++
	}
	return loaded, nil
}

func loadCheckpointFile(path string) (*gnn.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return gnn.Load(io.LimitReader(f, 1<<30))
}
