package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"privim/internal/graph"
	core "privim/internal/privim"
	"privim/internal/serve"
)

// testGraph builds a small deterministic influence graph: two hub stars
// joined by a ring, enough structure for training and scoring.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.NewWithNodes(60, true)
	for v := 1; v < 20; v++ {
		g.AddEdge(0, graph.NodeID(v), 0.8)
	}
	for v := 21; v < 40; v++ {
		g.AddEdge(20, graph.NodeID(v), 0.8)
	}
	for v := 0; v < 60; v++ {
		g.AddEdge(graph.NodeID(v), graph.NodeID((v+1)%60), 0.3)
	}
	return g
}

func edgeListBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkpointBytes trains a tiny non-private model on g and returns its
// serialized checkpoint.
func checkpointBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	res, err := core.Train(g, core.Config{
		Mode:         core.ModeNonPrivate,
		SubgraphSize: 8,
		HiddenDim:    4,
		Layers:       2,
		Iterations:   2,
		BatchSize:    4,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, opts serve.Options) *serve.Server {
	t.Helper()
	s, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// doJSON issues a request and decodes the JSON response into out (when
// non-nil), returning the status code.
func doJSON(t *testing.T, client *http.Client, method, url string, body []byte, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

func metricValue(t *testing.T, client *http.Client, base, name string) float64 {
	t.Helper()
	var snap map[string]any
	if code := doJSON(t, client, http.MethodGet, base+"/metrics", nil, &snap); code != 200 {
		t.Fatalf("GET /metrics = %d", code)
	}
	v, ok := snap[name]
	if !ok {
		return 0
	}
	f, ok := v.(float64)
	if !ok {
		t.Fatalf("metric %s has non-numeric value %v", name, v)
	}
	return f
}

type queryResponse struct {
	Model       string    `json:"model"`
	Graph       string    `json:"graph"`
	Fingerprint string    `json:"fingerprint"`
	K           int       `json:"k"`
	Seeds       []int     `json:"seeds"`
	Scores      []float64 `json:"scores"`
	Cached      bool      `json:"cached"`
}

// TestServeEndToEnd covers the core serving loop: upload a checkpoint
// and a graph, query seeds twice (second answer from the LRU with the
// hit counter incremented), score, and registry CRUD.
func TestServeEndToEnd(t *testing.T) {
	s := newTestServer(t, serve.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	g := testGraph(t)
	ckpt := checkpointBytes(t, g)

	var minfo serve.ModelInfo
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/models/m1", ckpt, &minfo); code != 201 {
		t.Fatalf("model upload = %d", code)
	}
	if minfo.Ref() != "m1@1" {
		t.Fatalf("model ref = %s, want m1@1", minfo.Ref())
	}

	var ginfo serve.GraphInfo
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/graphs/g1", edgeListBytes(t, g), &ginfo); code != 201 {
		t.Fatalf("graph upload = %d", code)
	}
	if ginfo.Fingerprint != fmt.Sprintf("%016x", g.Fingerprint()) {
		t.Fatalf("fingerprint = %s, want %016x", ginfo.Fingerprint, g.Fingerprint())
	}
	if ginfo.Nodes != 60 {
		t.Fatalf("nodes = %d, want 60", ginfo.Nodes)
	}

	query := []byte(`{"model":"m1","graph":"g1","k":5}`)
	var first, second queryResponse
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/seeds", query, &first); code != 200 {
		t.Fatalf("seeds = %d", code)
	}
	if len(first.Seeds) != 5 || first.Cached {
		t.Fatalf("first seeds response: %+v", first)
	}
	if first.Model != "m1@1" || first.Fingerprint != ginfo.Fingerprint {
		t.Fatalf("first response resolution: %+v", first)
	}
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/seeds", query, &second); code != 200 {
		t.Fatalf("repeat seeds = %d", code)
	}
	if !second.Cached {
		t.Fatal("repeat query was not served from cache")
	}
	if !reflect.DeepEqual(first.Seeds, second.Seeds) {
		t.Fatalf("cached seeds differ: %v vs %v", first.Seeds, second.Seeds)
	}
	if hits := metricValue(t, c, ts.URL, "serve.cache.hits"); hits != 1 {
		t.Fatalf("serve.cache.hits = %v, want 1", hits)
	}
	if misses := metricValue(t, c, ts.URL, "serve.cache.misses"); misses != 1 {
		t.Fatalf("serve.cache.misses = %v, want 1", misses)
	}

	var scored queryResponse
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/score",
		[]byte(`{"model":"m1@1","graph":"g1"}`), &scored); code != 200 {
		t.Fatalf("score = %d", code)
	}
	if len(scored.Scores) != 60 {
		t.Fatalf("scores length = %d, want 60", len(scored.Scores))
	}

	// Listing endpoints see both artifacts.
	var models struct {
		Models []serve.ModelInfo `json:"models"`
	}
	if code := doJSON(t, c, http.MethodGet, ts.URL+"/v1/models", nil, &models); code != 200 || len(models.Models) != 1 {
		t.Fatalf("model list = %d %+v", code, models)
	}
	var graphs struct {
		Graphs []serve.GraphInfo `json:"graphs"`
	}
	if code := doJSON(t, c, http.MethodGet, ts.URL+"/v1/graphs", nil, &graphs); code != 200 || len(graphs.Graphs) != 1 {
		t.Fatalf("graph list = %d %+v", code, graphs)
	}

	// Unknown references 404; deletes work.
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/seeds",
		[]byte(`{"model":"nope","graph":"g1"}`), nil); code != 404 {
		t.Fatalf("unknown model = %d, want 404", code)
	}
	if code := doJSON(t, c, http.MethodDelete, ts.URL+"/v1/models/m1", nil, nil); code != 204 {
		t.Fatalf("model delete = %d", code)
	}
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/seeds", query, nil); code != 404 {
		t.Fatalf("seeds after delete = %d, want 404", code)
	}
}

// TestTrainJobLifecycle submits an async training job, polls it to
// completion, and queries the model it registered.
func TestTrainJobLifecycle(t *testing.T) {
	journalDir := t.TempDir()
	s := newTestServer(t, serve.Options{TrainWorkers: 1, JournalDir: journalDir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	g := testGraph(t)
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/graphs/g1", edgeListBytes(t, g), nil); code != 201 {
		t.Fatalf("graph upload = %d", code)
	}

	train := []byte(`{"graph":"g1","model_name":"trained","mode":"non-private","iterations":2,"subgraph_size":8,"hidden_dim":4,"layers":2,"batch_size":4,"seed":1}`)
	var job serve.JobStatus
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/train", train, &job); code != 202 {
		t.Fatalf("train submit = %d", code)
	}
	if job.ID == "" {
		t.Fatalf("no job ID in %+v", job)
	}

	deadline := time.Now().Add(30 * time.Second)
	for job.State != serve.JobDone {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s: %+v", job.State, job)
		}
		if job.State == serve.JobFailed {
			t.Fatalf("job failed: %s", job.Error)
		}
		time.Sleep(50 * time.Millisecond)
		if code := doJSON(t, c, http.MethodGet, ts.URL+"/v1/jobs/"+job.ID, nil, &job); code != 200 {
			t.Fatalf("job poll = %d", code)
		}
	}
	if job.Model != "trained@1" {
		t.Fatalf("job model = %q, want trained@1", job.Model)
	}
	if job.Journal == "" {
		t.Fatal("job has no journal path")
	}
	if fi, err := os.Stat(job.Journal); err != nil || fi.Size() == 0 {
		t.Fatalf("journal %s missing or empty: %v", job.Journal, err)
	}
	if filepath.Dir(job.Journal) != journalDir {
		t.Fatalf("journal %s not under %s", job.Journal, journalDir)
	}

	var resp queryResponse
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/seeds",
		[]byte(`{"model":"trained","graph":"g1","k":3}`), &resp); code != 200 {
		t.Fatalf("seeds from trained model = %d", code)
	}
	if len(resp.Seeds) != 3 {
		t.Fatalf("seeds = %v", resp.Seeds)
	}

	var jobs struct {
		Jobs []serve.JobStatus `json:"jobs"`
	}
	if code := doJSON(t, c, http.MethodGet, ts.URL+"/v1/jobs", nil, &jobs); code != 200 || len(jobs.Jobs) != 1 {
		t.Fatalf("job list = %d %+v", code, jobs)
	}
}

// TestAdmissionControl saturates the admission semaphore with a slow
// upload and verifies the next request is shed with 429 (and counted),
// then completes the slow request successfully.
func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, serve.Options{MaxConcurrent: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	g := testGraph(t)
	payload := edgeListBytes(t, g)

	pr, pw := io.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	var slowCode int
	go func() {
		defer wg.Done()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/graphs/slow", pr)
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := c.Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		slowCode = resp.StatusCode
	}()

	// Wait until the slow upload holds the only admission slot.
	waitFor(t, func() bool {
		return metricValue(t, c, ts.URL, "serve.http.inflight") == 1
	}, "slow request never acquired the admission slot")

	if code := doJSON(t, c, http.MethodGet, ts.URL+"/v1/models", nil, nil); code != http.StatusTooManyRequests {
		t.Fatalf("saturated request = %d, want 429", code)
	}
	if rejected := metricValue(t, c, ts.URL, "serve.http.rejected"); rejected != 1 {
		t.Fatalf("serve.http.rejected = %v, want 1", rejected)
	}

	// Release the slot: finish the upload and verify it succeeded.
	if _, err := pw.Write(payload); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	wg.Wait()
	if slowCode != 201 {
		t.Fatalf("slow upload = %d, want 201", slowCode)
	}
	if code := doJSON(t, c, http.MethodGet, ts.URL+"/v1/models", nil, nil); code != 200 {
		t.Fatalf("post-release request = %d, want 200", code)
	}
}

// TestGracefulShutdown verifies SIGTERM-style draining: Shutdown closes
// the listener but lets the in-flight request finish with a success
// status, and the server-side drain completes.
func TestGracefulShutdown(t *testing.T) {
	s := newTestServer(t, serve.Options{})
	hs := &http.Server{Handler: s.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln) //nolint:errcheck // ErrServerClosed on Shutdown
	base := "http://" + ln.Addr().String()
	c := &http.Client{}

	g := testGraph(t)
	payload := edgeListBytes(t, g)

	pr, pw := io.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	var inflightCode int
	go func() {
		defer wg.Done()
		req, err := http.NewRequest(http.MethodPost, base+"/v1/graphs/inflight", pr)
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := c.Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		inflightCode = resp.StatusCode
	}()

	waitFor(t, func() bool {
		return metricValue(t, c, base, "serve.http.inflight") == 1
	}, "in-flight request never started")

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- hs.Shutdown(ctx)
	}()

	// The listener should stop accepting new work while the in-flight
	// request is still open.
	waitFor(t, func() bool {
		_, err := net.Dial("tcp", ln.Addr().String())
		return err != nil
	}, "listener still accepting after Shutdown")

	// Complete the in-flight request; Shutdown must wait for it.
	if _, err := pw.Write(payload); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	wg.Wait()
	if inflightCode != 201 {
		t.Fatalf("in-flight request = %d, want 201", inflightCode)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("server drain: %v", err)
	}
}

// TestUploadValidation covers malformed inputs and the body-size limit.
func TestUploadValidation(t *testing.T) {
	s := newTestServer(t, serve.Options{MaxBodyBytes: 256})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/models/bad", []byte("not a checkpoint"), nil); code != 400 {
		t.Fatalf("bad checkpoint = %d, want 400", code)
	}
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/graphs/bad%20name", []byte("0 1\n"), nil); code != 400 {
		t.Fatalf("bad graph name = %d, want 400", code)
	}
	big := []byte("# privim-edgelist nodes=2 directed=1\n" + strings.Repeat("0 1 1\n", 100))
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/graphs/big", big, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload = %d, want 413", code)
	}
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/train", []byte(`{"graph":"missing"}`), nil); code != 404 {
		t.Fatalf("train on missing graph = %d, want 404", code)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
