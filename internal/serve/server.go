// Package serve is the influence-serving layer of the repository: an
// HTTP daemon (cmd/privimd) that hosts trained PrivIM checkpoints and
// answers seed-selection and scoring queries over uploaded graphs.
//
// The subsystem composes five parts:
//
//   - a model registry of named, versioned gnn.Save checkpoints
//     (directory preload at boot + upload CRUD at runtime);
//   - a graph store whose entries are content-addressed by
//     graph.Fingerprint, the deterministic FNV-1a hash of the canonical
//     node/edge/weight stream;
//   - query endpoints (POST /v1/score, POST /v1/seeds) backed by an LRU
//     result cache keyed by (model@version, fingerprint, k, mode) — the
//     paper's deployment shape, where the non-private indicator is
//     queried repeatedly against one privately trained model;
//   - an async training-job API (POST /v1/train → job ID → poll/cancel)
//     running privim.Train on a bounded worker pool, each job journaling
//     its event stream to per-job JSONL;
//   - production hardening: admission control (semaphore + 429),
//     per-request timeouts, request-size limits, graceful drain, and
//     /healthz + /metrics wired into the internal/obs registry.
//
// Everything is stdlib net/http; the package exposes a Handler so tests
// and embedders can mount it anywhere.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sync/atomic"
	"time"

	"privim/internal/ledger"
	"privim/internal/obs"
	"privim/internal/obs/history"
)

// Options configure a Server. Zero values pick production-reasonable
// defaults.
type Options struct {
	// ModelsDir, when set, preloads every checkpoint file in the
	// directory into the registry at construction (version 1, named by
	// base filename).
	ModelsDir string
	// JournalDir, when set, gives every training job a per-job JSONL
	// event journal <dir>/<job-id>.jsonl, makes the job table durable
	// (<dir>/jobs.jsonl, replayed by RecoverJobs after a restart), and
	// checkpoints every running job's training state under
	// <dir>/checkpoints/<job-id> so interrupted jobs resume bit-for-bit.
	JournalDir string
	// CheckpointEvery is the training-checkpoint cadence in iterations
	// for jobs run under a JournalDir (default 10).
	CheckpointEvery int

	// Budget is the per-(tenant, graph fingerprint) privacy budget ε the
	// ledger enforces at job admission: a private training job reserves
	// its requested ε before it is queued, and an exhausted budget denies
	// the submission with 403. 0 disables enforcement (spend is still
	// recorded when a ledger file is configured).
	Budget float64
	// BudgetDelta is the δ at which the ledger's composed RDP spend
	// converts to ε (default 1e-5).
	BudgetDelta float64
	// BudgetLedger is the append-only ledger.jsonl path; defaults to
	// <JournalDir>/ledger.jsonl when JournalDir is set, so the budget
	// survives restarts alongside the job table. Set explicitly to place
	// it elsewhere, or leave JournalDir empty for an in-memory ledger.
	BudgetLedger string

	// MaxConcurrent bounds in-flight requests across all /v1 endpoints;
	// excess requests get 429 (default 8).
	MaxConcurrent int
	// QueryTimeout bounds /v1/score, /v1/seeds, and /v1/train handler
	// time (default 30s).
	QueryTimeout time.Duration
	// MaxBodyBytes bounds uploaded request bodies (default 64 MiB).
	MaxBodyBytes int64
	// TrainWorkers sizes the training worker pool (default 2).
	TrainWorkers int
	// TrainQueue bounds queued-but-not-running jobs; a full queue 429s
	// (default 16).
	TrainQueue int
	// CacheSize bounds the LRU result cache entry count (default 256).
	CacheSize int
	// DrainGrace bounds how long Drain waits for running training jobs
	// before preempting them: once it elapses, each running job's context
	// is canceled, the trainer writes a final checkpoint and its partial
	// ε is committed, and still-queued jobs are left in the job table for
	// restart recovery. 0 (the default) waits for running jobs until the
	// Drain context itself expires.
	DrainGrace time.Duration

	// HistoryEvery is the metric-history sampling tick: every registry
	// counter/gauge/histogram-quantile plus the Go runtime metrics land in
	// ring-buffer time series served by GET /v1/stats, and the alert rules
	// are evaluated on the same tick (default 10s).
	HistoryEvery time.Duration
	// HistoryCapacity is the per-series ring capacity (default 360 — an
	// hour of history at the default tick).
	HistoryCapacity int
	// AlertRules are evaluated in addition to the built-in set
	// (history.DefaultServeRules: per-tenant ε burn-rate when Budget > 0,
	// job-queue depth, per-route p99 latency, heap growth).
	AlertRules []history.Rule
	// ProfileDir, when set, enables triggered diagnostics: a rule firing
	// captures a pprof CPU+heap profile pair into this directory, bounded
	// to the newest ProfileKeep pairs, and the alert records the artifact
	// path.
	ProfileDir string
	// ProfileKeep bounds the profile ring (default 8 pairs).
	ProfileKeep int

	// Registry receives the server's metrics (requests, latency, cache
	// hit/miss, job counts); nil creates a private one. Sharing the
	// daemon's registry here makes /metrics and /debug/vars agree.
	Registry *obs.Registry
	// Observer, when non-nil, is fanned into every training job's
	// pipeline events in addition to the per-job journal.
	Observer obs.Observer
	// Logf receives operational log lines (default: discard).
	Logf func(string, ...any)
}

func (o *Options) fillDefaults() {
	if o.MaxConcurrent == 0 {
		o.MaxConcurrent = 8
	}
	if o.QueryTimeout == 0 {
		o.QueryTimeout = 30 * time.Second
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.TrainWorkers == 0 {
		o.TrainWorkers = 2
	}
	if o.TrainQueue == 0 {
		o.TrainQueue = 16
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 10
	}
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.BudgetDelta == 0 {
		o.BudgetDelta = 1e-5
	}
	if o.BudgetLedger == "" && o.JournalDir != "" {
		o.BudgetLedger = filepath.Join(o.JournalDir, "ledger.jsonl")
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Server is the influence-serving daemon core: registry, graph store,
// result cache, job pool, and the HTTP API over them.
type Server struct {
	opts      Options
	reg       *obs.Registry
	models    *modelRegistry
	graphs    *graphStore
	cache     *lruCache
	jobs      *jobManager
	budget    *ledger.Ledger // nil when neither Budget nor BudgetLedger is set
	admission *admission
	history   *history.Sampler
	profiles  *history.ProfileRing // nil without Options.ProfileDir
	mux       *http.ServeMux
	handler   http.Handler
	draining  atomic.Bool
}

// New constructs a Server, preloading Options.ModelsDir when set.
func New(opts Options) (*Server, error) {
	opts.fillDefaults()
	s := &Server{
		opts:   opts,
		reg:    opts.Registry,
		models: newModelRegistry(),
		graphs: newGraphStore(),
		cache:  newLRUCache(opts.CacheSize),
	}
	if opts.ModelsDir != "" {
		n, err := s.models.LoadDir(opts.ModelsDir, opts.Logf)
		if err != nil {
			return nil, fmt.Errorf("serve: loading models from %s: %w", opts.ModelsDir, err)
		}
		opts.Logf("serve: loaded %d checkpoint(s) from %s", n, opts.ModelsDir)
	}
	// The budget ledger exists when enforcement or durable tracking is
	// asked for. It replays its ledger.jsonl here, before RecoverJobs
	// runs, so recovered jobs see their reservations and cannot
	// double-spend.
	if opts.Budget > 0 || opts.BudgetLedger != "" {
		l, err := ledger.Open(ledger.Options{
			Budget:   opts.Budget,
			Delta:    opts.BudgetDelta,
			Path:     opts.BudgetLedger,
			Observer: obs.Multi(opts.Observer, opts.Registry),
			Logf:     opts.Logf,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: opening budget ledger: %w", err)
		}
		s.budget = l
		// Replay emits no events, so seed the per-tenant ε gauges from the
		// replayed balances — without this, the burn-rate history would
		// misread the first post-restart commit as the tenant's entire
		// balance and false-fire.
		l.PublishPositions()
	}
	if opts.ProfileDir != "" {
		pr, err := history.NewProfileRing(history.ProfileOptions{
			Dir: opts.ProfileDir, Keep: opts.ProfileKeep, Logf: opts.Logf,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: profile ring: %w", err)
		}
		s.profiles = pr
	}
	s.history = history.New(history.Options{
		Registry: s.reg,
		Every:    opts.HistoryEvery,
		Capacity: opts.HistoryCapacity,
		Rules:    append(history.DefaultServeRules(opts.Budget, opts.TrainQueue), opts.AlertRules...),
		Observer: opts.Observer,
		Profiles: s.profiles,
	})
	s.history.Start()
	// Training events always aggregate into the server registry (so
	// /metrics covers job telemetry) alongside any caller observer.
	s.jobs = newJobManager(jobManagerOptions{
		workers:         opts.TrainWorkers,
		queueCap:        opts.TrainQueue,
		journalDir:      opts.JournalDir,
		checkpointEvery: opts.CheckpointEvery,
		observer:        obs.Multi(opts.Observer, s.reg),
		models:          s.models,
		metrics:         s.reg,
		logf:            opts.Logf,
		budget:          s.budget,
		drainGrace:      opts.DrainGrace,
	})
	s.admission = newAdmission(opts.MaxConcurrent, s.reg)
	s.buildRoutes()
	return s, nil
}

// Registry returns the metrics registry the server reports into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// StoreGraph parses an edge-list body and stores it under name — the
// programmatic twin of POST /v1/graphs/{name}, used by the daemon's
// -graphs preload.
func (s *Server) StoreGraph(name string, data []byte) (GraphInfo, error) {
	g, err := parseGraphUpload(data)
	if err != nil {
		return GraphInfo{}, err
	}
	return s.graphs.Put(name, g)
}

// Handler returns the full HTTP API. The outermost layer resolves the
// request's trace ID (X-Privim-Trace); each route records its own RED
// metrics; admission control and per-request timeouts apply per route
// group underneath.
func (s *Server) Handler() http.Handler { return s.handler }

// Drain stops accepting training jobs, waits for queued and running
// jobs to finish (bounded by ctx), and flips /healthz to draining. With
// Options.DrainGrace set, jobs still running when the grace elapses are
// preempted — canceled at their next preemption point with a final
// checkpoint and their partial ε committed — so a long training run
// cannot hold up shutdown indefinitely. HTTP in-flight draining is the
// owning http.Server's job (Shutdown); call that first, then Drain.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	err := s.jobs.Shutdown(ctx)
	// Stop sampling after the jobs settle so the final commits still land
	// in history, then let any in-flight profile capture finish writing.
	s.history.Close()
	s.profiles.Wait()
	return err
}

// History exposes the metric-history sampler — the daemon mounts its
// stats/alerts views on the debug server too.
func (s *Server) History() *history.Sampler { return s.history }

// Close is Drain with a 5-second bound, for tests and defer.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Drain(ctx)
}

func (s *Server) buildRoutes() {
	mux := http.NewServeMux()
	admit := s.admission.wrap
	timeout := func(h http.Handler) http.Handler {
		// TimeoutHandler writes the 503 — and, crucially, puts a deadline
		// of QueryTimeout on the request context. The query handlers pass
		// r.Context() into the context-aware kernels, so when the 503 goes
		// out the computation actually stops at its next preemption point
		// instead of finishing for a client that already got an error.
		return http.TimeoutHandler(h, s.opts.QueryTimeout, `{"error":"request timed out"}`)
	}
	hf := func(f http.HandlerFunc) http.Handler { return f }
	// handle registers pattern with per-route RED metrics labeled by the
	// pattern itself, outside admission/timeout so 429s and 503s count.
	handle := func(pattern string, h http.Handler) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}

	handle("GET /healthz", hf(s.handleHealth))
	handle("GET /metrics", hf(s.handleMetrics))
	handle("GET /metrics/prom", obs.PromHandler(s.reg))

	handle("GET /v1/models", admit(hf(s.handleModelList)))
	handle("POST /v1/models/{name}", admit(hf(s.handleModelPut)))
	handle("GET /v1/models/{name}", admit(hf(s.handleModelGet)))
	handle("DELETE /v1/models/{name}", admit(hf(s.handleModelDelete)))

	handle("GET /v1/graphs", admit(hf(s.handleGraphList)))
	handle("POST /v1/graphs/{name}", admit(hf(s.handleGraphPut)))
	handle("GET /v1/graphs/{name}", admit(hf(s.handleGraphGet)))
	handle("DELETE /v1/graphs/{name}", admit(hf(s.handleGraphDelete)))

	handle("POST /v1/score", admit(timeout(hf(s.handleScore))))
	handle("POST /v1/seeds", admit(timeout(hf(s.handleSeeds))))

	handle("POST /v1/train", admit(timeout(hf(s.handleTrain))))
	handle("GET /v1/budget", admit(hf(s.handleBudget)))
	handle("GET /v1/stats", history.StatsHandler(s.history))
	handle("GET /v1/alerts", history.AlertsHandler(s.history))
	handle("GET /v1/jobs", admit(hf(s.handleJobList)))
	handle("GET /v1/jobs/{id}", admit(hf(s.handleJobGet)))
	handle("DELETE /v1/jobs/{id}", admit(hf(s.handleJobCancel)))

	// Unmatched paths still get counted (route="unmatched") instead of
	// vanishing into the mux's default 404.
	mux.Handle("/", s.instrument("unmatched", http.NotFoundHandler()))

	s.mux = mux
	s.handler = withTrace(mux)
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // client gone; nothing useful to do
}

// httpError writes a JSON error envelope.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
