//go:build !race

package diffusion

const raceEnabled = false
