// Package diffusion implements influence-propagation simulation: the
// Independent Cascade model (Definition 6, the paper's evaluation model)
// plus the Linear Threshold and SIS models named as future-work extensions.
// Spread estimation is Monte Carlo with optional parallelism; all runs are
// deterministic given a seed.
package diffusion

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"privim/internal/graph"
	"privim/internal/obs"
	"privim/internal/parallel"
)

// CanceledError reports a Monte-Carlo estimate stopped early because its
// context was canceled or its deadline expired. Done/Total record the
// partial progress; Unwrap yields the context error, so
// errors.Is(err, context.Canceled) works through it.
type CanceledError struct {
	// Done and Total are simulation rounds completed vs requested.
	Done, Total int
	// Err is the underlying context error.
	Err error
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("diffusion: estimate canceled after %d/%d rounds: %v", e.Done, e.Total, e.Err)
}

// Unwrap returns the context error.
func (e *CanceledError) Unwrap() error { return e.Err }

// Model simulates one cascade from a seed set and reports the number of
// activated nodes (including seeds).
type Model interface {
	// Simulate runs a single stochastic cascade with rng and returns the
	// final active count.
	Simulate(seeds []graph.NodeID, rng *rand.Rand) int
	// Name identifies the model for reporting.
	Name() string
}

// IC is the Independent Cascade model: each newly activated node u gets one
// chance to activate each inactive out-neighbor v with probability w(u,v).
// MaxSteps limits propagation depth (0 = unbounded); the paper's evaluation
// restricts the diffusion to j=1 step.
type IC struct {
	G        *graph.Graph
	MaxSteps int

	pool sync.Pool // *icState, see DESIGN.md §"Scratch arenas"
}

// icState is per-simulation scratch: an epoch-stamped active set plus two
// frontier buffers that swap roles each round. Checked out of the model's
// pool so concurrent Monte-Carlo rounds never share a buffer and repeated
// rounds do zero heap work after warm-up.
type icState struct {
	epoch    []int32
	curEpoch int32
	frontier []graph.NodeID
	next     []graph.NodeID
}

// Name implements Model.
func (m *IC) Name() string { return "ic" }

// Simulate implements Model. Safe for concurrent use; the draw order is
// identical to the historical allocate-per-call implementation, so seeded
// results are unchanged.
func (m *IC) Simulate(seeds []graph.NodeID, rng *rand.Rand) int {
	n := m.G.NumNodes()
	s, _ := m.pool.Get().(*icState)
	if s == nil || len(s.epoch) != n {
		s = &icState{epoch: make([]int32, n)}
	}
	defer m.pool.Put(s)
	s.curEpoch++
	if s.curEpoch == 0 { // wrapped: reset lazily
		for i := range s.epoch {
			s.epoch[i] = 0
		}
		s.curEpoch = 1
	}
	active := s.curEpoch
	frontier := s.frontier[:0]
	for _, v := range seeds {
		if s.epoch[v] != active {
			s.epoch[v] = active
			frontier = append(frontier, v)
		}
	}
	count := len(frontier)
	next := s.next[:0]
	for step := 0; len(frontier) > 0; step++ {
		if m.MaxSteps > 0 && step >= m.MaxSteps {
			break
		}
		next = next[:0]
		for _, u := range frontier {
			for _, a := range m.G.Out(u) {
				if s.epoch[a.To] == active {
					continue
				}
				if rng.Float64() < a.Weight {
					s.epoch[a.To] = active
					next = append(next, a.To)
					count++
				}
			}
		}
		frontier, next = next, frontier
	}
	s.frontier, s.next = frontier, next
	return count
}

// LT is the Linear Threshold model: each node draws a uniform threshold and
// activates once the summed weight of its active in-neighbors reaches it.
type LT struct {
	G        *graph.Graph
	MaxSteps int

	pool sync.Pool // *ltState, see DESIGN.md §"Scratch arenas"
}

// ltState is per-simulation scratch for LT. The thresholds are fully
// redrawn every simulation (same draw order as before pooling), so only
// the buffers are reused, never the randomness.
type ltState struct {
	active    []int32
	curEpoch  int32
	threshold []float64
	influence []float64 // accumulated active in-weight
	frontier  []graph.NodeID
	next      []graph.NodeID
}

// Name implements Model.
func (m *LT) Name() string { return "lt" }

// Simulate implements Model. Safe for concurrent use; seeded results are
// identical to the historical allocate-per-call implementation.
func (m *LT) Simulate(seeds []graph.NodeID, rng *rand.Rand) int {
	n := m.G.NumNodes()
	s, _ := m.pool.Get().(*ltState)
	if s == nil || len(s.active) != n {
		s = &ltState{
			active:    make([]int32, n),
			threshold: make([]float64, n),
			influence: make([]float64, n),
		}
	}
	defer m.pool.Put(s)
	s.curEpoch++
	if s.curEpoch == 0 { // wrapped: reset lazily
		for i := range s.active {
			s.active[i] = 0
		}
		s.curEpoch = 1
	}
	act := s.curEpoch
	for v := range s.threshold {
		s.threshold[v] = rng.Float64()
		s.influence[v] = 0
	}
	frontier := s.frontier[:0]
	for _, sd := range seeds {
		if s.active[sd] != act {
			s.active[sd] = act
			frontier = append(frontier, sd)
		}
	}
	count := len(frontier)
	next := s.next[:0]
	for step := 0; len(frontier) > 0; step++ {
		if m.MaxSteps > 0 && step >= m.MaxSteps {
			break
		}
		next = next[:0]
		for _, u := range frontier {
			for _, a := range m.G.Out(u) {
				if s.active[a.To] == act {
					continue
				}
				s.influence[a.To] += a.Weight
				if s.influence[a.To] >= s.threshold[a.To] {
					s.active[a.To] = act
					next = append(next, a.To)
					count++
				}
			}
		}
		frontier, next = next, frontier
	}
	s.frontier, s.next = frontier, next
	return count
}

// SIS is the Susceptible-Infectious-Susceptible epidemic model: infected
// nodes infect susceptible out-neighbors with the arc weight as the
// per-step probability and recover (back to susceptible) with probability
// Recovery. The cascade runs for Steps rounds; the result counts nodes
// that were ever infected.
type SIS struct {
	G        *graph.Graph
	Recovery float64
	Steps    int

	pool sync.Pool // *sisState, see DESIGN.md §"Scratch arenas"
}

// sisState is per-simulation scratch for SIS: epoch-stamped infected /
// ever-infected sets, a step-local newly-infected bitset paired with an
// insertion-order list, and the two round buffers.
type sisState struct {
	infected  []int32 // == curEpoch ⇔ currently infected
	ever      []int32 // == curEpoch ⇔ infected at least once this run
	newly     []int32 // == curEpoch ⇔ infected this step (cleared on drain)
	curEpoch  int32
	cur       []graph.NodeID
	next      []graph.NodeID
	newlyList []graph.NodeID
}

// Name implements Model.
func (m *SIS) Name() string { return "sis" }

// Simulate implements Model. Safe for concurrent use. Newly infected
// nodes join the next round in infection order (the historical
// implementation drained a map, so its round order — and therefore the
// exact seeded trajectory — varied between runs; SIS is now deterministic
// given a seed, like IC and LT).
func (m *SIS) Simulate(seeds []graph.NodeID, rng *rand.Rand) int {
	if m.Steps < 1 {
		panic("diffusion: SIS requires Steps >= 1")
	}
	n := m.G.NumNodes()
	s, _ := m.pool.Get().(*sisState)
	if s == nil || len(s.infected) != n {
		s = &sisState{
			infected: make([]int32, n),
			ever:     make([]int32, n),
			newly:    make([]int32, n),
		}
	}
	defer m.pool.Put(s)
	s.curEpoch++
	if s.curEpoch == 0 { // wrapped: reset lazily
		for i := range s.infected {
			s.infected[i], s.ever[i], s.newly[i] = 0, 0, 0
		}
		s.curEpoch = 1
	}
	ep := s.curEpoch
	count := 0
	for _, sd := range seeds {
		if s.ever[sd] != ep {
			s.infected[sd], s.ever[sd] = ep, ep
			count++
		}
	}
	cur := append(s.cur[:0], seeds...)
	next := s.next[:0]
	newlyList := s.newlyList[:0]
	for step := 0; step < m.Steps && len(cur) > 0; step++ {
		next = next[:0]
		newlyList = newlyList[:0]
		for _, u := range cur {
			for _, a := range m.G.Out(u) {
				if s.infected[a.To] == ep || s.newly[a.To] == ep {
					continue
				}
				if rng.Float64() < a.Weight {
					s.newly[a.To] = ep
					newlyList = append(newlyList, a.To)
				}
			}
		}
		// Recoveries happen after transmission within a round.
		for _, u := range cur {
			if rng.Float64() < m.Recovery {
				s.infected[u] = 0
			} else {
				next = append(next, u)
			}
		}
		for _, v := range newlyList {
			s.newly[v] = 0 // step-local: a later recovery makes v infectable again
			s.infected[v] = ep
			if s.ever[v] != ep {
				s.ever[v] = ep
				count++
			}
			next = append(next, v)
		}
		cur, next = next, cur
	}
	s.cur, s.next, s.newlyList = cur, next, newlyList
	return count
}

// Estimate runs rounds Monte Carlo simulations of model from seeds and
// returns the mean spread. Simulations fan out on the shared worker pool;
// the result is deterministic for any worker count because each round
// derives its own rng from the round index and the per-round spreads are
// integers (an order-independent sum).
func Estimate(model Model, seeds []graph.NodeID, rounds int, seed int64) float64 {
	mean, _ := estimate(nil, model, seeds, rounds, seed, 0, nil)
	return mean
}

// EstimateWorkers is Estimate with an explicit worker-pool width: 0 means
// the process default (parallel.Resolve), 1 forces inline serial execution.
// Outer-parallel callers (the CELF/Greedy initial-gain pass) pass 1 so the
// per-candidate estimates do not nest a second fan-out.
func EstimateWorkers(model Model, seeds []graph.NodeID, rounds int, seed int64, workers int) float64 {
	mean, _ := estimate(nil, model, seeds, rounds, seed, workers, nil)
	return mean
}

// EstimateObserved is Estimate with live telemetry: when o is non-nil it
// emits one MCBatchDone event carrying the batch's throughput and its
// cascade-size histogram. A nil observer adds one predictable branch per
// round and no allocations — Estimate simply calls through.
func EstimateObserved(model Model, seeds []graph.NodeID, rounds int, seed int64, o obs.Observer) float64 {
	mean, _ := estimate(nil, model, seeds, rounds, seed, 0, o)
	return mean
}

// EstimateContext is EstimateObserved under a caller context: the batch
// runs inside a "diffusion.estimate" span rooted under the context's
// span (or fresh on o), inheriting the context's trace ID. A nil o with
// a span-carrying context still journals — the span's observer receives
// the MCBatchDone event.
//
// Cancellation is checked at round-chunk boundaries: when ctx fires
// mid-batch, EstimateContext stops within a few rounds and returns a
// *CanceledError recording the partial round count (plus an
// obs.Canceled event with the observed cancellation latency). A batch
// that completes returns the same mean as EstimateObserved, bit for
// bit, at any worker count.
func EstimateContext(ctx context.Context, model Model, seeds []graph.NodeID, rounds int, seed int64, o obs.Observer) (float64, error) {
	span := obs.StartSpanCtx(ctx, o, "diffusion.estimate")
	defer span.End()
	if o == nil {
		o = span.Observer()
	}
	return estimate(ctx, model, seeds, rounds, seed, 0, o)
}

// estState is the reusable machinery behind estimate: per-worker totals,
// per-worker RNGs that are reseeded each round (rand.Rand.Seed(n) yields
// the same stream as a fresh rand.New(rand.NewSource(n)), so seeded means
// are unchanged), observer histograms, and the worker closure built once
// so steady-state Estimate calls allocate nothing.
type estState struct {
	model  Model
	seeds  []graph.NodeID
	seed   int64
	obsOn  bool
	totals []int64
	done   []int64 // rounds executed per worker (exact: chunks never stop mid-chunk)
	rngs   []*rand.Rand
	sizes  [][obs.NumBuckets]uint64
	body   func(w, lo, hi int)
}

var estPool = sync.Pool{New: func() any {
	st := &estState{}
	st.body = func(w, lo, hi int) {
		rng := st.rngs[w]
		var local int64
		for r := lo; r < hi; r++ {
			rng.Seed(st.seed + int64(r)*1_000_003)
			n := st.model.Simulate(st.seeds, rng)
			local += int64(n)
			if st.obsOn {
				st.sizes[w][obs.BucketIndex(float64(n))]++
			}
		}
		st.totals[w] += local
		st.done[w] += int64(hi - lo)
	}
	return st
}}

func (st *estState) reset(workers int, obsOn bool) {
	if cap(st.totals) < workers {
		st.totals = make([]int64, workers)
	}
	st.totals = st.totals[:workers]
	for i := range st.totals {
		st.totals[i] = 0
	}
	if cap(st.done) < workers {
		st.done = make([]int64, workers)
	}
	st.done = st.done[:workers]
	for i := range st.done {
		st.done[i] = 0
	}
	for len(st.rngs) < workers {
		st.rngs = append(st.rngs, rand.New(rand.NewSource(1)))
	}
	st.obsOn = obsOn
	if !obsOn {
		return
	}
	if cap(st.sizes) < workers {
		st.sizes = make([][obs.NumBuckets]uint64, workers)
	}
	st.sizes = st.sizes[:workers]
	for i := range st.sizes {
		st.sizes[i] = [obs.NumBuckets]uint64{}
	}
}

func estimate(ctx context.Context, model Model, seeds []graph.NodeID, rounds int, seed int64, workers int, o obs.Observer) (float64, error) {
	if rounds < 1 {
		panic(fmt.Sprintf("diffusion: Estimate rounds = %d", rounds))
	}
	start := time.Now()
	workers = parallel.Resolve(workers)
	if workers > rounds {
		workers = rounds
	}
	st := estPool.Get().(*estState)
	st.model, st.seeds, st.seed = model, seeds, seed
	st.reset(workers, o != nil)
	if ctx != nil {
		clk := obs.WatchCancel(ctx)
		_, err := parallel.ForCtx(ctx, workers, rounds, 8, st.body)
		clk.Stop()
		if err != nil {
			var done int64
			for _, d := range st.done {
				done += d
			}
			obs.Emit(o, obs.Canceled{
				Phase:   "estimate",
				Done:    int(done),
				Total:   rounds,
				Reason:  err.Error(),
				Latency: clk.Latency(),
			})
			st.model, st.seeds = nil, nil
			estPool.Put(st)
			return 0, &CanceledError{Done: int(done), Total: rounds, Err: err}
		}
	} else {
		parallel.For(workers, rounds, 8, st.body)
	}
	var sum int64
	for _, v := range st.totals {
		sum += v
	}
	mean := float64(sum) / float64(rounds)
	if o != nil {
		ev := obs.MCBatchDone{
			Model:      model.Name(),
			Rounds:     rounds,
			MeanSpread: mean,
			Elapsed:    time.Since(start),
		}
		if secs := ev.Elapsed.Seconds(); secs > 0 {
			ev.SimsPerSec = float64(rounds) / secs
		}
		for _, s := range st.sizes {
			for i, c := range s {
				ev.SizeBuckets[i] += c
			}
		}
		o.Emit(ev)
	}
	st.model, st.seeds = nil, nil // don't pin caller data in the pool
	estPool.Put(st)
	return mean, nil
}

// EstimateMany evaluates the spread of several seed sets, reusing the
// parallel estimator. Returns one mean per seed set.
func EstimateMany(model Model, seedSets [][]graph.NodeID, rounds int, seed int64) []float64 {
	out := make([]float64, len(seedSets))
	for i, s := range seedSets {
		out[i] = Estimate(model, s, rounds, seed+int64(i))
	}
	return out
}
