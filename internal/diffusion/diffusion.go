// Package diffusion implements influence-propagation simulation: the
// Independent Cascade model (Definition 6, the paper's evaluation model)
// plus the Linear Threshold and SIS models named as future-work extensions.
// Spread estimation is Monte Carlo with optional parallelism; all runs are
// deterministic given a seed.
package diffusion

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"privim/internal/graph"
	"privim/internal/obs"
	"privim/internal/parallel"
)

// Model simulates one cascade from a seed set and reports the number of
// activated nodes (including seeds).
type Model interface {
	// Simulate runs a single stochastic cascade with rng and returns the
	// final active count.
	Simulate(seeds []graph.NodeID, rng *rand.Rand) int
	// Name identifies the model for reporting.
	Name() string
}

// IC is the Independent Cascade model: each newly activated node u gets one
// chance to activate each inactive out-neighbor v with probability w(u,v).
// MaxSteps limits propagation depth (0 = unbounded); the paper's evaluation
// restricts the diffusion to j=1 step.
type IC struct {
	G        *graph.Graph
	MaxSteps int
}

// Name implements Model.
func (m *IC) Name() string { return "ic" }

// Simulate implements Model.
func (m *IC) Simulate(seeds []graph.NodeID, rng *rand.Rand) int {
	active := make([]bool, m.G.NumNodes())
	frontier := make([]graph.NodeID, 0, len(seeds))
	for _, s := range seeds {
		if !active[s] {
			active[s] = true
			frontier = append(frontier, s)
		}
	}
	count := len(frontier)
	for step := 0; len(frontier) > 0; step++ {
		if m.MaxSteps > 0 && step >= m.MaxSteps {
			break
		}
		var next []graph.NodeID
		for _, u := range frontier {
			for _, a := range m.G.Out(u) {
				if active[a.To] {
					continue
				}
				if rng.Float64() < a.Weight {
					active[a.To] = true
					next = append(next, a.To)
					count++
				}
			}
		}
		frontier = next
	}
	return count
}

// LT is the Linear Threshold model: each node draws a uniform threshold and
// activates once the summed weight of its active in-neighbors reaches it.
type LT struct {
	G        *graph.Graph
	MaxSteps int
}

// Name implements Model.
func (m *LT) Name() string { return "lt" }

// Simulate implements Model.
func (m *LT) Simulate(seeds []graph.NodeID, rng *rand.Rand) int {
	n := m.G.NumNodes()
	active := make([]bool, n)
	threshold := make([]float64, n)
	for v := range threshold {
		threshold[v] = rng.Float64()
	}
	influence := make([]float64, n) // accumulated active in-weight
	frontier := make([]graph.NodeID, 0, len(seeds))
	for _, s := range seeds {
		if !active[s] {
			active[s] = true
			frontier = append(frontier, s)
		}
	}
	count := len(frontier)
	for step := 0; len(frontier) > 0; step++ {
		if m.MaxSteps > 0 && step >= m.MaxSteps {
			break
		}
		var next []graph.NodeID
		for _, u := range frontier {
			for _, a := range m.G.Out(u) {
				if active[a.To] {
					continue
				}
				influence[a.To] += a.Weight
				if influence[a.To] >= threshold[a.To] {
					active[a.To] = true
					next = append(next, a.To)
					count++
				}
			}
		}
		frontier = next
	}
	return count
}

// SIS is the Susceptible-Infectious-Susceptible epidemic model: infected
// nodes infect susceptible out-neighbors with the arc weight as the
// per-step probability and recover (back to susceptible) with probability
// Recovery. The cascade runs for Steps rounds; the result counts nodes
// that were ever infected.
type SIS struct {
	G        *graph.Graph
	Recovery float64
	Steps    int
}

// Name implements Model.
func (m *SIS) Name() string { return "sis" }

// Simulate implements Model.
func (m *SIS) Simulate(seeds []graph.NodeID, rng *rand.Rand) int {
	if m.Steps < 1 {
		panic("diffusion: SIS requires Steps >= 1")
	}
	n := m.G.NumNodes()
	infected := make([]bool, n)
	ever := make([]bool, n)
	count := 0
	for _, s := range seeds {
		if !ever[s] {
			infected[s], ever[s] = true, true
			count++
		}
	}
	cur := append([]graph.NodeID(nil), seeds...)
	for step := 0; step < m.Steps && len(cur) > 0; step++ {
		var next []graph.NodeID
		newlyInfected := make(map[graph.NodeID]bool)
		for _, u := range cur {
			for _, a := range m.G.Out(u) {
				if infected[a.To] || newlyInfected[a.To] {
					continue
				}
				if rng.Float64() < a.Weight {
					newlyInfected[a.To] = true
				}
			}
		}
		// Recoveries happen after transmission within a round.
		for _, u := range cur {
			if rng.Float64() < m.Recovery {
				infected[u] = false
			} else {
				next = append(next, u)
			}
		}
		for v := range newlyInfected {
			infected[v] = true
			if !ever[v] {
				ever[v] = true
				count++
			}
			next = append(next, v)
		}
		cur = next
	}
	return count
}

// Estimate runs rounds Monte Carlo simulations of model from seeds and
// returns the mean spread. Simulations fan out on the shared worker pool;
// the result is deterministic for any worker count because each round
// derives its own rng from the round index and the per-round spreads are
// integers (an order-independent sum).
func Estimate(model Model, seeds []graph.NodeID, rounds int, seed int64) float64 {
	return estimate(model, seeds, rounds, seed, 0, nil)
}

// EstimateWorkers is Estimate with an explicit worker-pool width: 0 means
// the process default (parallel.Resolve), 1 forces inline serial execution.
// Outer-parallel callers (the CELF/Greedy initial-gain pass) pass 1 so the
// per-candidate estimates do not nest a second fan-out.
func EstimateWorkers(model Model, seeds []graph.NodeID, rounds int, seed int64, workers int) float64 {
	return estimate(model, seeds, rounds, seed, workers, nil)
}

// EstimateObserved is Estimate with live telemetry: when o is non-nil it
// emits one MCBatchDone event carrying the batch's throughput and its
// cascade-size histogram. A nil observer adds one predictable branch per
// round and no allocations — Estimate simply calls through.
func EstimateObserved(model Model, seeds []graph.NodeID, rounds int, seed int64, o obs.Observer) float64 {
	return estimate(model, seeds, rounds, seed, 0, o)
}

// EstimateContext is EstimateObserved under a caller context: the batch
// runs inside a "diffusion.estimate" span rooted under the context's
// span (or fresh on o), inheriting the context's trace ID. A nil o with
// a span-carrying context still journals — the span's observer receives
// the MCBatchDone event.
func EstimateContext(ctx context.Context, model Model, seeds []graph.NodeID, rounds int, seed int64, o obs.Observer) float64 {
	span := obs.StartSpanCtx(ctx, o, "diffusion.estimate")
	defer span.End()
	if o == nil {
		o = span.Observer()
	}
	return estimate(model, seeds, rounds, seed, 0, o)
}

func estimate(model Model, seeds []graph.NodeID, rounds int, seed int64, workers int, o obs.Observer) float64 {
	if rounds < 1 {
		panic(fmt.Sprintf("diffusion: Estimate rounds = %d", rounds))
	}
	start := time.Now()
	workers = parallel.Resolve(workers)
	if workers > rounds {
		workers = rounds
	}
	totals := make([]int64, workers)
	var sizes [][obs.NumBuckets]uint64
	if o != nil {
		sizes = make([][obs.NumBuckets]uint64, workers)
	}
	parallel.For(workers, rounds, 8, func(w, lo, hi int) {
		var local int64
		for r := lo; r < hi; r++ {
			rng := rand.New(rand.NewSource(seed + int64(r)*1_000_003))
			n := model.Simulate(seeds, rng)
			local += int64(n)
			if o != nil {
				sizes[w][obs.BucketIndex(float64(n))]++
			}
		}
		totals[w] += local
	})
	var sum int64
	for _, v := range totals {
		sum += v
	}
	mean := float64(sum) / float64(rounds)
	if o != nil {
		ev := obs.MCBatchDone{
			Model:      model.Name(),
			Rounds:     rounds,
			MeanSpread: mean,
			Elapsed:    time.Since(start),
		}
		if secs := ev.Elapsed.Seconds(); secs > 0 {
			ev.SimsPerSec = float64(rounds) / secs
		}
		for _, s := range sizes {
			for i, c := range s {
				ev.SizeBuckets[i] += c
			}
		}
		o.Emit(ev)
	}
	return mean
}

// EstimateMany evaluates the spread of several seed sets, reusing the
// parallel estimator. Returns one mean per seed set.
func EstimateMany(model Model, seedSets [][]graph.NodeID, rounds int, seed int64) []float64 {
	out := make([]float64, len(seedSets))
	for i, s := range seedSets {
		out[i] = Estimate(model, s, rounds, seed+int64(i))
	}
	return out
}
