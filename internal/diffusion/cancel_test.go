package diffusion

import (
	"context"
	"errors"
	"math"
	"testing"

	"privim/internal/graph"
)

// A completed EstimateContext call is bit-identical to Estimate: the
// context plumbing must not perturb the RNG streams or the reduction.
func TestEstimateContextMatchesEstimate(t *testing.T) {
	g := lineGraph(40, 0.4)
	ic := &IC{G: g}
	seeds := []graph.NodeID{0, 1, 2}
	want := Estimate(ic, seeds, 50, 7)
	got, err := EstimateContext(context.Background(), ic, seeds, 50, 7, nil)
	if err != nil {
		t.Fatalf("EstimateContext: %v", err)
	}
	if math.Float64bits(want) != math.Float64bits(got) {
		t.Fatalf("EstimateContext = %v, Estimate = %v — must be bit-identical", got, want)
	}
}

func TestEstimateContextCanceled(t *testing.T) {
	g := lineGraph(40, 0.4)
	ic := &IC{G: g}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EstimateContext(ctx, ic, []graph.NodeID{0, 1, 2}, 50, 7, nil)
	var cerr *CanceledError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CanceledError must unwrap to context.Canceled, got %v", err)
	}
	if cerr.Total != 50 {
		t.Fatalf("Total = %d, want 50", cerr.Total)
	}
	if cerr.Done != 0 {
		t.Fatalf("Done = %d rounds on a pre-canceled context, want 0", cerr.Done)
	}
}
