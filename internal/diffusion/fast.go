package diffusion

import (
	"math/rand"
	"sync"

	"privim/internal/graph"
)

// FastIC is an allocation-free Independent Cascade simulator over a frozen
// CSR graph. It reuses per-goroutine scratch buffers (visited epochs and a
// frontier ring) so repeated Monte Carlo rounds do zero heap work after
// warm-up — the hot path behind CELF on larger graphs.
type FastIC struct {
	CSR      *graph.CSR
	MaxSteps int

	pool sync.Pool
}

type icScratch struct {
	epoch    []int32
	curEpoch int32
	frontier []graph.NodeID
	next     []graph.NodeID
}

// Name implements Model.
func (m *FastIC) Name() string { return "ic-fast" }

func (m *FastIC) scratch() *icScratch {
	if s, ok := m.pool.Get().(*icScratch); ok && len(s.epoch) == m.CSR.NumNodes {
		return s
	}
	return &icScratch{
		epoch:    make([]int32, m.CSR.NumNodes),
		frontier: make([]graph.NodeID, 0, 64),
		next:     make([]graph.NodeID, 0, 64),
	}
}

// Simulate implements Model. Safe for concurrent use: each call checks a
// scratch buffer out of the pool.
func (m *FastIC) Simulate(seeds []graph.NodeID, rng *rand.Rand) int {
	s := m.scratch()
	defer m.pool.Put(s)
	s.curEpoch++
	if s.curEpoch == 0 { // wrapped: reset lazily
		for i := range s.epoch {
			s.epoch[i] = 0
		}
		s.curEpoch = 1
	}
	active := s.curEpoch
	frontier := s.frontier[:0]
	for _, v := range seeds {
		if s.epoch[v] != active {
			s.epoch[v] = active
			frontier = append(frontier, v)
		}
	}
	count := len(frontier)
	next := s.next[:0]
	for step := 0; len(frontier) > 0; step++ {
		if m.MaxSteps > 0 && step >= m.MaxSteps {
			break
		}
		next = next[:0]
		for _, u := range frontier {
			targets, weights := m.CSR.Out(u)
			for i, v := range targets {
				if s.epoch[v] == active {
					continue
				}
				if rng.Float64() < weights[i] {
					s.epoch[v] = active
					next = append(next, v)
					count++
				}
			}
		}
		frontier, next = next, frontier
	}
	s.frontier, s.next = frontier, next
	return count
}
