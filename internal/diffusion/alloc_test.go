package diffusion

import (
	"testing"

	"privim/internal/graph"
)

// allocTestGraph is big enough that a cascade touches many nodes, so any
// per-round or per-simulation allocation would show up multiplied.
func allocTestGraph() *graph.Graph {
	g := graph.NewWithNodes(300, true)
	for i := 0; i < 299; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 0.4)
	}
	for i := 0; i < 300; i += 7 {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i*13+5)%300), 0.6)
	}
	return g
}

// TestEstimateSteadyStateZeroAlloc pins serial Monte-Carlo estimation at
// zero allocations once the estState and per-model simulation pools are
// warm: frontier swaps, epoch-stamped membership, and the pre-built
// parallel.For body mean repeated Estimate calls recycle everything.
func TestEstimateSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc floors do not hold under -race (sync.Pool drops Puts)")
	}
	g := allocTestGraph()
	seeds := []graph.NodeID{0, 50, 100}
	for _, tc := range []struct {
		name  string
		model Model
	}{
		{"ic", &IC{G: g}},
		{"lt", &LT{G: g}},
		{"sis", &SIS{G: g, Recovery: 0.3, Steps: 10}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func() { EstimateWorkers(tc.model, seeds, 50, 7, 1) }
			run() // warm the pools
			if got := testing.AllocsPerRun(10, run); got != 0 {
				t.Fatalf("EstimateWorkers(%s) allocates %v objects/op after warm-up, want 0", tc.name, got)
			}
		})
	}
}

// TestEstimateWorkerInvariant re-checks bit-equality of the pooled
// estimate path across pool widths: pooled scratch is keyed by worker
// slot and RNG streams by round index, so the width must not matter.
func TestEstimateWorkerInvariant(t *testing.T) {
	g := allocTestGraph()
	seeds := []graph.NodeID{0, 50, 100}
	for _, tc := range []struct {
		name  string
		model Model
	}{
		{"ic", &IC{G: g}},
		{"lt", &LT{G: g}},
		{"sis", &SIS{G: g, Recovery: 0.3, Steps: 10}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := EstimateWorkers(tc.model, seeds, 200, 5, 1)
			for _, w := range []int{2, 4, 8} {
				// Run twice per width so pooled state from the previous
				// run is also exercised.
				for rep := 0; rep < 2; rep++ {
					if got := EstimateWorkers(tc.model, seeds, 200, 5, w); got != want {
						t.Fatalf("%s workers=%d rep=%d: estimate %v != serial %v", tc.name, w, rep, got, want)
					}
				}
			}
		})
	}
}
