package diffusion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"privim/internal/graph"
)

func lineGraph(n int, w float64) *graph.Graph {
	g := graph.NewWithNodes(n, true)
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), w)
	}
	return g
}

func TestICDeterministicWeights(t *testing.T) {
	// With w=1 the cascade is deterministic: everything reachable activates.
	g := lineGraph(10, 1)
	ic := &IC{G: g}
	rng := rand.New(rand.NewSource(1))
	if got := ic.Simulate([]graph.NodeID{0}, rng); got != 10 {
		t.Fatalf("spread = %d, want 10", got)
	}
	if got := ic.Simulate([]graph.NodeID{5}, rng); got != 5 {
		t.Fatalf("spread from middle = %d, want 5", got)
	}
	// With w=0 only seeds activate.
	g0 := lineGraph(10, 0)
	ic0 := &IC{G: g0}
	if got := ic0.Simulate([]graph.NodeID{0, 3}, rng); got != 2 {
		t.Fatalf("w=0 spread = %d, want 2", got)
	}
}

func TestICMaxSteps(t *testing.T) {
	g := lineGraph(10, 1)
	ic := &IC{G: g, MaxSteps: 1}
	rng := rand.New(rand.NewSource(1))
	// One step from node 0 reaches node 1 only.
	if got := ic.Simulate([]graph.NodeID{0}, rng); got != 2 {
		t.Fatalf("1-step spread = %d, want 2", got)
	}
}

func TestICDuplicateSeeds(t *testing.T) {
	g := lineGraph(5, 0)
	ic := &IC{G: g}
	rng := rand.New(rand.NewSource(1))
	if got := ic.Simulate([]graph.NodeID{2, 2, 2}, rng); got != 1 {
		t.Fatalf("duplicate seeds counted %d times", got)
	}
}

func TestICProbabilityMatchesExpectation(t *testing.T) {
	// Single edge with w=0.3: E[spread from {0}] = 1.3.
	g := graph.NewWithNodes(2, true)
	g.AddEdge(0, 1, 0.3)
	got := Estimate(&IC{G: g}, []graph.NodeID{0}, 20000, 7)
	if math.Abs(got-1.3) > 0.02 {
		t.Fatalf("estimated spread %v, want ≈1.3", got)
	}
}

func TestLTThresholds(t *testing.T) {
	// Star into node 1: hub 0 with weight 1 always exceeds any threshold
	// in [0,1).
	g := graph.NewWithNodes(2, true)
	g.AddEdge(0, 1, 1)
	lt := &LT{G: g}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		if got := lt.Simulate([]graph.NodeID{0}, rng); got != 2 {
			t.Fatalf("LT with weight 1: spread %d, want 2", got)
		}
	}
	// Weight 0 never activates.
	g0 := graph.NewWithNodes(2, true)
	g0.AddEdge(0, 1, 0)
	lt0 := &LT{G: g0}
	if got := lt0.Simulate([]graph.NodeID{0}, rng); got != 1 {
		t.Fatalf("LT with weight 0: spread %d, want 1", got)
	}
}

func TestLTAccumulation(t *testing.T) {
	// Two in-neighbors each with weight 0.5 always sum to 1.0 >= threshold.
	g := graph.NewWithNodes(3, true)
	g.AddEdge(0, 2, 0.5)
	g.AddEdge(1, 2, 0.5)
	lt := &LT{G: g}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		if got := lt.Simulate([]graph.NodeID{0, 1}, rng); got != 3 {
			t.Fatalf("LT accumulation: spread %d, want 3", got)
		}
	}
}

func TestSISEverInfected(t *testing.T) {
	g := lineGraph(5, 1)
	sis := &SIS{G: g, Recovery: 1, Steps: 10} // immediate recovery
	rng := rand.New(rand.NewSource(4))
	// Even with immediate recovery, transmission happens before recovery,
	// so the infection still travels the line.
	got := sis.Simulate([]graph.NodeID{0}, rng)
	if got != 5 {
		t.Fatalf("SIS ever-infected = %d, want 5", got)
	}
	// Zero steps panics.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Steps < 1")
		}
	}()
	(&SIS{G: g, Steps: 0}).Simulate([]graph.NodeID{0}, rng)
}

func TestSISStepsBound(t *testing.T) {
	g := lineGraph(10, 1)
	sis := &SIS{G: g, Recovery: 0, Steps: 3}
	rng := rand.New(rand.NewSource(5))
	if got := sis.Simulate([]graph.NodeID{0}, rng); got != 4 {
		t.Fatalf("SIS 3 steps = %d nodes, want 4", got)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	g := lineGraph(20, 0.5)
	a := Estimate(&IC{G: g}, []graph.NodeID{0}, 500, 42)
	b := Estimate(&IC{G: g}, []graph.NodeID{0}, 500, 42)
	if a != b {
		t.Fatalf("Estimate not deterministic: %v vs %v", a, b)
	}
	c := Estimate(&IC{G: g}, []graph.NodeID{0}, 500, 43)
	if a == c {
		t.Fatal("different seeds should (almost surely) differ")
	}
}

func TestEstimateMany(t *testing.T) {
	g := lineGraph(5, 1)
	got := EstimateMany(&IC{G: g}, [][]graph.NodeID{{0}, {4}}, 10, 1)
	if got[0] != 5 || got[1] != 1 {
		t.Fatalf("EstimateMany = %v, want [5 1]", got)
	}
}

func TestEstimatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rounds < 1")
		}
	}()
	Estimate(&IC{G: lineGraph(2, 1)}, []graph.NodeID{0}, 0, 1)
}

// Property: spread is always within [len(unique seeds), |V|] and monotone
// under seed-set inclusion in expectation.
func TestICSpreadBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.NewWithNodes(30, true)
		for i := 0; i < 90; i++ {
			u, v := graph.NodeID(rng.Intn(30)), graph.NodeID(rng.Intn(30))
			if u != v {
				g.AddEdge(u, v, rng.Float64())
			}
		}
		seeds := []graph.NodeID{graph.NodeID(rng.Intn(30)), graph.NodeID(rng.Intn(30))}
		unique := map[graph.NodeID]bool{seeds[0]: true, seeds[1]: true}
		got := (&IC{G: g}).Simulate(seeds, rng)
		return got >= len(unique) && got <= 30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Statistical monotonicity: a superset of seeds cannot have smaller
// expected spread.
func TestICMonotoneInSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.NewWithNodes(40, true)
	for i := 0; i < 150; i++ {
		u, v := graph.NodeID(rng.Intn(40)), graph.NodeID(rng.Intn(40))
		if u != v {
			g.AddEdge(u, v, 0.2)
		}
	}
	small := Estimate(&IC{G: g}, []graph.NodeID{1}, 3000, 5)
	big := Estimate(&IC{G: g}, []graph.NodeID{1, 2, 3}, 3000, 5)
	if big < small {
		t.Fatalf("superset spread %v < subset spread %v", big, small)
	}
}

func TestModelNames(t *testing.T) {
	g := lineGraph(2, 1)
	for _, m := range []Model{&IC{G: g}, &LT{G: g}, &SIS{G: g, Steps: 1}} {
		if m.Name() == "" {
			t.Fatalf("%T has empty name", m)
		}
	}
}
