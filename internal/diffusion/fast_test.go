package diffusion

import (
	"math"
	"math/rand"
	"testing"

	"privim/internal/dataset"
	"privim/internal/graph"
)

func TestFastICMatchesICDeterministic(t *testing.T) {
	g := lineGraph(12, 1)
	fast := &FastIC{CSR: graph.BuildCSR(g)}
	slow := &IC{G: g}
	rng := rand.New(rand.NewSource(1))
	for _, seeds := range [][]graph.NodeID{{0}, {5}, {0, 11}, {3, 3}} {
		a := slow.Simulate(seeds, rng)
		b := fast.Simulate(seeds, rng)
		if a != b {
			t.Fatalf("seeds %v: IC=%d FastIC=%d", seeds, a, b)
		}
	}
	// Step bound honored.
	bounded := &FastIC{CSR: graph.BuildCSR(g), MaxSteps: 2}
	if got := bounded.Simulate([]graph.NodeID{0}, rng); got != 3 {
		t.Fatalf("2-step FastIC spread = %d, want 3", got)
	}
}

func TestFastICMatchesICStatistically(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := dataset.BarabasiAlbert(150, 3, rng)
	g.SetUniformWeights(0.15)
	fast := &FastIC{CSR: graph.BuildCSR(g)}
	slow := &IC{G: g}
	seeds := []graph.NodeID{0, 1, 2}
	const rounds = 4000
	a := Estimate(slow, seeds, rounds, 7)
	b := Estimate(fast, seeds, rounds, 7)
	// Same rng streams per round means identical trajectories only if the
	// arc iteration order matches; BuildCSR preserves insertion order, and
	// both simulators consume randomness identically, so results are equal.
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("IC estimate %v vs FastIC %v", a, b)
	}
}

func TestFastICScratchReuse(t *testing.T) {
	// Many sequential simulations on one instance must stay correct
	// (epoch mechanism) without cross-contamination.
	g := lineGraph(8, 1)
	fast := &FastIC{CSR: graph.BuildCSR(g)}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		if got := fast.Simulate([]graph.NodeID{0}, rng); got != 8 {
			t.Fatalf("iteration %d: spread %d, want 8", i, got)
		}
	}
}

func TestFastICParallelEstimate(t *testing.T) {
	// Estimate runs goroutines concurrently; the pool must keep them
	// isolated (this test is meaningful under -race).
	rng := rand.New(rand.NewSource(4))
	g := dataset.BarabasiAlbert(100, 3, rng)
	g.SetUniformWeights(0.3)
	fast := &FastIC{CSR: graph.BuildCSR(g)}
	got := Estimate(fast, []graph.NodeID{0, 5}, 2000, 11)
	if got < 2 || got > 100 {
		t.Fatalf("estimate %v out of range", got)
	}
}

func TestBuildCSR(t *testing.T) {
	g := graph.NewWithNodes(3, true)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(0, 2, 0.25)
	g.AddEdge(2, 0, 1)
	c := graph.BuildCSR(g)
	if c.NumNodes != 3 {
		t.Fatalf("NumNodes = %d", c.NumNodes)
	}
	if c.OutDegree(0) != 2 || c.OutDegree(1) != 0 || c.OutDegree(2) != 1 {
		t.Fatalf("degrees wrong: %d %d %d", c.OutDegree(0), c.OutDegree(1), c.OutDegree(2))
	}
	targets, weights := c.Out(0)
	if len(targets) != 2 || targets[0] != 1 || weights[1] != 0.25 {
		t.Fatalf("Out(0) = %v %v", targets, weights)
	}
	empty, _ := c.Out(1)
	if len(empty) != 0 {
		t.Fatalf("Out(1) = %v, want empty", empty)
	}
}
