//go:build !race

package history

const raceEnabled = false
