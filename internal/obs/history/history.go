// Package history adds a retrospective layer to the point-in-time
// metrics in internal/obs: a fixed-capacity ring-buffer time series per
// registry metric (counters, gauges, histogram count/p50/p95/p99, and Go
// runtime metrics), sampled on a periodic tick, plus an alert-rule
// engine (threshold, delta, SLO burn-rate) evaluated on the same tick
// that emits obs.AlertFired/AlertResolved events and can trigger pprof
// capture into a bounded on-disk profile ring.
//
// The sampler's tick is allocation-free in steady state: series slots
// are resolved against the registry only when Registry.Version moves (a
// new metric name appeared), rings are pre-allocated at their fixed
// capacity, and rule evaluation touches no maps or closures. A quiet
// tick — no new metrics, no alert transitions — performs zero heap
// allocations, so a 1 s cadence adds no GC pressure to a serving
// process. Alert transitions allocate (event payloads, history entries);
// they are rare by construction.
package history

import (
	"sort"
	"strings"
	"sync"
	"time"

	"privim/internal/obs"
)

// Point is one sample: nanosecond wall-clock timestamp and value.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// ring is a fixed-capacity circular buffer of Points. Zero alloc after
// construction: push overwrites the oldest sample once full.
type ring struct {
	pts  []Point
	head int // next write index
	n    int // valid points (≤ len(pts))
}

func newRing(capacity int) *ring { return &ring{pts: make([]Point, capacity)} }

func (r *ring) push(t int64, v float64) {
	r.pts[r.head] = Point{T: t, V: v}
	r.head = (r.head + 1) % len(r.pts)
	if r.n < len(r.pts) {
		r.n++
	}
}

// at returns the i-th valid point, oldest first (0 ≤ i < n).
func (r *ring) at(i int) Point {
	return r.pts[(r.head-r.n+i+len(r.pts))%len(r.pts)]
}

// bounds returns the oldest point with T ≥ since and the newest point.
// ok is false with fewer than two points in the window (no delta or rate
// is computable from a single sample).
func (r *ring) bounds(since int64) (first, last Point, ok bool) {
	if r.n == 0 {
		return Point{}, Point{}, false
	}
	last = r.at(r.n - 1)
	for i := 0; i < r.n; i++ {
		p := r.at(i)
		if p.T >= since {
			return p, last, p.T < last.T
		}
	}
	return Point{}, Point{}, false
}

// window appends the points with T ≥ since to buf, oldest first.
func (r *ring) window(since int64, buf []Point) []Point {
	for i := 0; i < r.n; i++ {
		if p := r.at(i); p.T >= since {
			buf = append(buf, p)
		}
	}
	return buf
}

// series is one named time series plus the precomputed label-stripped
// base rules and queries match against.
type series struct {
	key  string
	base string // key with any {labels} segment removed
	ring *ring
}

// slot binds one registry entry to its series. Counters and gauges fill
// s[0]; histograms expand into count/p50/p95/p99 (s[0..3]).
type slot struct {
	kind    obs.MetricKind
	counter *obs.Counter
	gauge   *obs.Gauge
	hist    *obs.Histogram
	s       [4]*series
}

// histSuffixes are the derived series a histogram expands into.
var histSuffixes = [4]string{".count", ".p50", ".p95", ".p99"}

// Options configures a Sampler.
type Options struct {
	// Registry to sample; required.
	Registry *obs.Registry
	// Every is the tick period. Default 10s.
	Every time.Duration
	// Capacity is the per-series point capacity. Default 360 (an hour of
	// history at the default tick).
	Capacity int
	// Rules are evaluated on every tick.
	Rules []Rule
	// Observer receives AlertFired/AlertResolved events (in addition to
	// Registry, which always aggregates them). Optional.
	Observer obs.Observer
	// Profiles, when non-nil, captures a pprof profile pair when a rule
	// fires; the heap-profile path is recorded in the alert.
	Profiles *ProfileRing
	// AlertHistory bounds the recent-alert list served by /v1/alerts.
	// Default 64.
	AlertHistory int
}

func (o *Options) fillDefaults() {
	if o.Every <= 0 {
		o.Every = 10 * time.Second
	}
	if o.Capacity <= 0 {
		o.Capacity = 360
	}
	if o.AlertHistory <= 0 {
		o.AlertHistory = 64
	}
}

// Sampler periodically snapshots every registry metric into ring-buffer
// time series and evaluates alert rules against them. Construct with
// New, drive with Start/Close (or call Tick directly in tests).
type Sampler struct {
	opts Options
	reg  *obs.Registry
	obs  obs.Observer

	mu       sync.Mutex
	version  uint64
	entryBuf []obs.Entry
	slots    []slot
	byKey    map[string]*series
	states   []alertState
	active   int // firing states (kept so handlers can size responses)
	recent   []*Alert

	stop chan struct{}
	done chan struct{}
}

// New builds a sampler over opts.Registry. It does not start the tick
// goroutine; call Start, or drive Tick manually.
func New(opts Options) *Sampler {
	opts.fillDefaults()
	s := &Sampler{
		opts:  opts,
		reg:   opts.Registry,
		obs:   obs.Multi(opts.Registry, opts.Observer),
		byKey: make(map[string]*series),
	}
	return s
}

// Start launches the periodic tick goroutine. Close stops it.
func (s *Sampler) Start() {
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.opts.Every)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case now := <-tick.C:
				s.Tick(now)
			}
		}
	}()
}

// Close stops the tick goroutine and waits for it to exit. Safe to call
// without Start and safe to call twice.
func (s *Sampler) Close() {
	if s.stop == nil {
		return
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// Every returns the configured tick period.
func (s *Sampler) Every() time.Duration { return s.opts.Every }

// Tick takes one sample: refresh the Go runtime metrics, push every
// metric's current value into its series, and evaluate the alert rules.
// now is passed in (rather than read inside) so tests control time.
// Steady state — no new metric names, no alert transitions — allocates
// nothing.
func (s *Sampler) Tick(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.SampleRuntime()
	if v := s.reg.Version(); v != s.version {
		s.refreshLocked(v)
	}
	t := now.UnixNano()
	for i := range s.slots {
		sl := &s.slots[i]
		switch sl.kind {
		case obs.KindCounter:
			sl.s[0].ring.push(t, float64(sl.counter.Value()))
		case obs.KindGauge:
			sl.s[0].ring.push(t, sl.gauge.Value())
		case obs.KindHistogram:
			sl.s[0].ring.push(t, float64(sl.hist.Count()))
			sl.s[1].ring.push(t, sl.hist.Quantile(0.50))
			sl.s[2].ring.push(t, sl.hist.Quantile(0.95))
			sl.s[3].ring.push(t, sl.hist.Quantile(0.99))
		}
	}
	s.evalLocked(t)
}

// stripLabels removes the {…} label segment from a series key:
// `ledger.epsilon_committed{tenant="a"}` → `ledger.epsilon_committed`,
// `serve.http.latency_us{route="GET /x"}.p99` → `serve.http.latency_us.p99`.
func stripLabels(key string) string {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key
	}
	j := strings.LastIndexByte(key, '}')
	if j < i {
		return key
	}
	return key[:i] + key[j+1:]
}

// refreshLocked re-resolves slots and rule targets against the registry.
// Existing series keep their rings (history survives a refresh); only
// genuinely new metrics allocate. Runs only when Registry.Version moved.
func (s *Sampler) refreshLocked(version uint64) {
	s.entryBuf = s.reg.Entries(s.entryBuf)
	s.slots = s.slots[:0]
	mk := func(key string) *series {
		sr, ok := s.byKey[key]
		if !ok {
			sr = &series{key: key, base: stripLabels(key), ring: newRing(s.opts.Capacity)}
			s.byKey[key] = sr
		}
		return sr
	}
	for _, e := range s.entryBuf {
		sl := slot{kind: e.Kind, counter: e.Counter, gauge: e.Gauge, hist: e.Histogram}
		if e.Kind == obs.KindHistogram {
			for i, suf := range histSuffixes {
				sl.s[i] = mk(histKey(e.Name, suf))
			}
		} else {
			sl.s[0] = mk(e.Name)
		}
		s.slots = append(s.slots, sl)
	}
	s.refreshStatesLocked()
	s.version = version
}

// histKey appends a derived-series suffix after any label segment, so
// labels stay attached to the base: `h{route="x"}` + ".p99" →
// `h{route="x"}.p99` (and stripLabels of that is `h.p99`).
func histKey(name, suffix string) string { return name + suffix }

// Query returns every series whose key or label-stripped base equals
// metric, windowed to the trailing window (0 = everything retained),
// with min/max and the first→last rate per second. Results are sorted by
// key. It allocates; it is a handler path, not the tick path.
func (s *Sampler) Query(metric string, window time.Duration, now time.Time) []Series {
	s.mu.Lock()
	defer s.mu.Unlock()
	since := int64(0)
	if window > 0 {
		since = now.Add(-window).UnixNano()
	}
	var out []Series
	for key, sr := range s.byKey {
		if key != metric && sr.base != metric {
			continue
		}
		pts := sr.ring.window(since, nil)
		if len(pts) == 0 {
			continue
		}
		se := Series{Metric: key, Points: pts, Min: pts[0].V, Max: pts[0].V}
		for _, p := range pts {
			if p.V < se.Min {
				se.Min = p.V
			}
			if p.V > se.Max {
				se.Max = p.V
			}
		}
		if f, l := pts[0], pts[len(pts)-1]; l.T > f.T {
			se.Rate = (l.V - f.V) / (float64(l.T-f.T) / float64(time.Second))
		}
		out = append(out, se)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Metric < out[j].Metric })
	return out
}

// Keys returns every series key, sorted — the discovery listing the
// stats handler serves when no metric is selected.
func (s *Sampler) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.byKey))
	for k := range s.byKey {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Series is one windowed query result.
type Series struct {
	Metric string  `json:"metric"`
	Points []Point `json:"points"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// Rate is (last−first)/(Δt seconds) across the window — the average
	// growth rate, meaningful for counters and monotone gauges.
	Rate float64 `json:"rate_per_sec"`
}
