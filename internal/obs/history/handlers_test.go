package history

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"privim/internal/obs"
)

func TestStatsHandler(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{Registry: reg, Every: time.Second, Capacity: 8})
	reg.Gauge("x.y").Set(3)
	// Real timestamps: the handler windows against time.Now().
	s.Tick(time.Now().Add(-time.Second))
	s.Tick(time.Now())
	h := StatsHandler(s)

	// Discovery listing.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	var listing struct {
		Metrics []string `json:"metrics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range listing.Metrics {
		if m == "x.y" {
			found = true
		}
	}
	if !found {
		t.Fatalf("listing %v missing x.y", listing.Metrics)
	}

	// Windowed series.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats?metric=x.y&window=1h", nil))
	var got struct {
		Series []Series `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != 1 || len(got.Series[0].Points) != 2 {
		t.Fatalf("series = %+v, want 1 series with 2 points", got.Series)
	}

	// Unknown metric → empty array, not null, not an error.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats?metric=nope", nil))
	if rec.Code != 200 {
		t.Fatalf("unknown metric status = %d", rec.Code)
	}
	if body := rec.Body.String(); body == "" || body[0] != '{' {
		t.Fatalf("unknown metric body = %q", body)
	}

	// Bad window → 400.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats?metric=x.y&window=banana", nil))
	if rec.Code != 400 {
		t.Fatalf("bad window status = %d, want 400", rec.Code)
	}
}

func TestAlertsHandler(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{
		Registry: reg, Every: time.Second, Capacity: 8,
		Rules: []Rule{{Name: "r", Metric: "m", Kind: Threshold, Value: 1}},
	})
	reg.Gauge("m").Set(9)
	clk := newClock()
	s.Tick(clk.tick(time.Second))
	rec := httptest.NewRecorder()
	AlertsHandler(s).ServeHTTP(rec, httptest.NewRequest("GET", "/v1/alerts", nil))
	var got struct {
		Active []Alert `json:"active"`
		Recent []Alert `json:"recent"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Active) != 1 || got.Active[0].Rule != "r" || len(got.Recent) != 1 {
		t.Fatalf("alerts = %+v", got)
	}
}
