package history

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"privim/internal/obs"
)

// RuleKind selects the evaluation form of a Rule.
type RuleKind string

// The three rule forms.
const (
	// Threshold fires while the series' latest value crosses Value.
	Threshold RuleKind = "threshold"
	// Delta fires while the change across the trailing Window crosses
	// Value — absolute growth (heap bytes, queue depth), not a rate.
	Delta RuleKind = "delta"
	// BurnRate fires while the observed consumption rate over Window
	// exceeds Value × the sustainable rate Budget/Horizon — the classic
	// SLO burn-rate alert, applied here to privacy budget: with Budget ε
	// meant to last Horizon, a multiple of 1 means the tenant is spending
	// exactly fast enough to exhaust it on schedule; 14 means exhaustion
	// in Horizon/14.
	BurnRate RuleKind = "burn_rate"
)

// Duration is a time.Duration that unmarshals from either a Go duration
// string ("5m", "1h30m") or a nanosecond number, so rule files stay
// human-writable.
type Duration time.Duration

// D converts back to time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "5m"-style strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return err
	}
	*d = Duration(ns)
	return nil
}

// Rule is one alert rule. Metric matches a series by exact key or by
// label-stripped base, so "ledger.epsilon_committed" matches every
// tenant's labeled gauge and each (rule, series) pair alerts
// independently.
type Rule struct {
	// Name identifies the rule in alerts and events.
	Name string `json:"name"`
	// Metric is the series key or label-stripped base to watch.
	Metric string `json:"metric"`
	// Kind selects the evaluation form; default "threshold".
	Kind RuleKind `json:"kind,omitempty"`
	// Op is ">=" (default) or "<=", for threshold and delta forms.
	Op string `json:"op,omitempty"`
	// Value is the threshold, the delta bound, or the burn-rate multiple.
	Value float64 `json:"value"`
	// Window is the trailing lookback for delta and burn_rate. Default 5m.
	Window Duration `json:"window,omitempty"`
	// Budget and Horizon define the sustainable rate for burn_rate:
	// Budget units spread evenly over Horizon.
	Budget  float64  `json:"budget,omitempty"`
	Horizon Duration `json:"horizon,omitempty"`
}

// Validate normalizes defaults and rejects unusable rules.
func (r *Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("history: rule missing name")
	}
	if r.Metric == "" {
		return fmt.Errorf("history: rule %q missing metric", r.Name)
	}
	if r.Kind == "" {
		r.Kind = Threshold
	}
	switch r.Kind {
	case Threshold, Delta, BurnRate:
	default:
		return fmt.Errorf("history: rule %q: unknown kind %q", r.Name, r.Kind)
	}
	switch r.Op {
	case "":
		r.Op = ">="
	case ">=", "<=":
	default:
		return fmt.Errorf("history: rule %q: op must be \">=\" or \"<=\", got %q", r.Name, r.Op)
	}
	if r.Window <= 0 {
		r.Window = Duration(5 * time.Minute)
	}
	if r.Kind == BurnRate {
		if r.Budget <= 0 || r.Horizon <= 0 {
			return fmt.Errorf("history: burn_rate rule %q needs budget > 0 and horizon > 0", r.Name)
		}
		if r.Value <= 0 {
			r.Value = 1
		}
	}
	return nil
}

// ParseRules decodes a JSON array of rules and validates each.
func ParseRules(data []byte) ([]Rule, error) {
	var rules []Rule
	if err := json.Unmarshal(data, &rules); err != nil {
		return nil, fmt.Errorf("history: parsing rules: %w", err)
	}
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			return nil, err
		}
	}
	return rules, nil
}

// LoadRules reads a rule file (a JSON array of Rule objects).
func LoadRules(path string) ([]Rule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseRules(data)
}

// DefaultServeRules is the built-in rule set the serve layer installs:
// per-tenant ε burn-rate (when a budget is configured), job-queue depth,
// per-route p99 request latency, and heap growth. budget is the
// per-tenant ε budget (0 disables the burn-rate rule) and queueCap the
// job-queue capacity (0 disables the depth rule).
func DefaultServeRules(budget float64, queueCap int) []Rule {
	var rules []Rule
	if budget > 0 {
		rules = append(rules, Rule{
			Name:   "tenant-epsilon-burn",
			Metric: "ledger.epsilon_committed",
			Kind:   BurnRate,
			Value:  1,
			Window: Duration(5 * time.Minute),
			Budget: budget, Horizon: Duration(time.Hour),
		})
	}
	if queueCap > 0 {
		rules = append(rules, Rule{
			Name:   "job-queue-depth",
			Metric: "serve.jobs.queued",
			Kind:   Threshold,
			Value:  0.8 * float64(queueCap),
		})
	}
	rules = append(rules,
		Rule{
			Name:   "route-p99-latency",
			Metric: "serve.http.latency_us.p99",
			Kind:   Threshold,
			Value:  2e6, // 2 s
		},
		Rule{
			Name:   "heap-growth",
			Metric: "go.heap_bytes",
			Kind:   Delta,
			Value:  256 << 20, // 256 MiB over the window
			Window: Duration(5 * time.Minute),
		},
	)
	return rules
}

// Alert is one fire→resolve episode, served by /v1/alerts.
type Alert struct {
	Rule       string  `json:"rule"`
	Metric     string  `json:"metric"`
	Value      float64 `json:"value"`
	Threshold  float64 `json:"threshold"`
	FiredAt    int64   `json:"fired_at_ns"`
	ResolvedAt int64   `json:"resolved_at_ns,omitempty"`
	Profile    string  `json:"profile,omitempty"`
}

// alertState is the engine's per-(rule, series) evaluation state. The
// states slice is rebuilt only on registry refresh; firing episodes
// survive a rebuild keyed by rule name + series key.
type alertState struct {
	rule   *Rule
	series *series
	firing bool
	since  int64
	open   *Alert // history entry of the in-flight episode
}

// refreshStatesLocked rebuilds rule → series bindings after the registry
// gained metrics, carrying over in-flight firing episodes.
func (s *Sampler) refreshStatesLocked() {
	prev := make(map[string]alertState, len(s.states))
	for _, st := range s.states {
		prev[st.rule.Name+"\x00"+st.series.key] = st
	}
	s.states = s.states[:0]
	for i := range s.opts.Rules {
		r := &s.opts.Rules[i]
		for _, sl := range s.slots {
			for _, sr := range sl.s {
				if sr == nil {
					continue
				}
				if sr.key != r.Metric && sr.base != r.Metric {
					continue
				}
				st, ok := prev[r.Name+"\x00"+sr.key]
				if !ok {
					st = alertState{rule: r, series: sr}
				}
				s.states = append(s.states, st)
			}
		}
	}
}

// observe computes the rule's current value and whether the firing
// condition holds at tick time t. ok is false when the series lacks the
// points the form needs (a single sample cannot produce a delta/rate).
func (st *alertState) observe(t int64) (v float64, firing, ok bool) {
	r, rg := st.rule, st.series.ring
	switch r.Kind {
	case Threshold:
		if rg.n == 0 {
			return 0, false, false
		}
		v = rg.at(rg.n - 1).V
	case Delta:
		first, last, ok2 := rg.bounds(t - int64(r.Window))
		if !ok2 {
			return 0, false, false
		}
		v = last.V - first.V
	case BurnRate:
		first, last, ok2 := rg.bounds(t - int64(r.Window))
		if !ok2 {
			return 0, false, false
		}
		rate := (last.V - first.V) / (float64(last.T-first.T) / float64(time.Second))
		sustainable := r.Budget / r.Horizon.D().Seconds()
		v = rate / sustainable // the burn-rate multiple
	}
	if r.Op == "<=" && r.Kind != BurnRate {
		return v, v <= r.Value, true
	}
	return v, v >= r.Value, true
}

// evalLocked runs every rule state against the just-pushed samples and
// emits fire/resolve transitions. Quiet evaluation allocates nothing.
func (s *Sampler) evalLocked(t int64) {
	for i := range s.states {
		st := &s.states[i]
		v, firing, ok := st.observe(t)
		if !ok || firing == st.firing {
			continue
		}
		if firing {
			st.firing, st.since = true, t
			s.active++
			profile := ""
			if s.opts.Profiles != nil {
				profile = s.opts.Profiles.Capture(st.rule.Name)
			}
			st.open = &Alert{
				Rule: st.rule.Name, Metric: st.series.key,
				Value: v, Threshold: st.rule.Value,
				FiredAt: t, Profile: profile,
			}
			s.recent = append(s.recent, st.open)
			if len(s.recent) > s.opts.AlertHistory {
				s.recent = s.recent[len(s.recent)-s.opts.AlertHistory:]
			}
			obs.Emit(s.obs, obs.AlertFired{
				Rule: st.rule.Name, Metric: st.series.key,
				Value: v, Threshold: st.rule.Value, Profile: profile,
			})
			continue
		}
		st.firing = false
		s.active--
		if st.open != nil {
			st.open.ResolvedAt = t
			st.open = nil
		}
		obs.Emit(s.obs, obs.AlertResolved{
			Rule: st.rule.Name, Metric: st.series.key,
			Value: v, After: time.Duration(t - st.since),
		})
	}
}

// Alerts returns the currently firing alerts and the bounded recent
// history (newest last). Entries are copies; mutating them is safe.
func (s *Sampler) Alerts() (active, recent []Alert) {
	s.mu.Lock()
	defer s.mu.Unlock()
	active = make([]Alert, 0, s.active)
	for i := range s.states {
		if st := &s.states[i]; st.firing && st.open != nil {
			active = append(active, *st.open)
		}
	}
	recent = make([]Alert, len(s.recent))
	for i, a := range s.recent {
		recent[i] = *a
	}
	return active, recent
}
