//go:build race

package history

// raceEnabled gates the sampler-tick allocation floor: the race runtime
// instruments allocations, so AllocsPerRun counts do not hold under
// -race. The behavioral halves of the tests still run.
const raceEnabled = true
