package history

import (
	"testing"
	"time"

	"privim/internal/obs"
)

// tick advances a fake clock by step per call so tests control time.
type clock struct {
	t time.Time
}

func newClock() *clock { return &clock{t: time.Unix(1_700_000_000, 0)} }

func (c *clock) tick(step time.Duration) time.Time {
	c.t = c.t.Add(step)
	return c.t
}

func TestRingWrapAndWindow(t *testing.T) {
	r := newRing(4)
	for i := int64(1); i <= 6; i++ {
		r.push(i, float64(i))
	}
	if r.n != 4 {
		t.Fatalf("n = %d, want 4", r.n)
	}
	// Oldest two (t=1,2) were overwritten.
	got := r.window(0, nil)
	want := []Point{{3, 3}, {4, 4}, {5, 5}, {6, 6}}
	if len(got) != len(want) {
		t.Fatalf("window = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := r.window(5, nil); len(got) != 2 || got[0].T != 5 {
		t.Fatalf("window(5) = %v, want points at t=5,6", got)
	}
	first, last, ok := r.bounds(4)
	if !ok || first.T != 4 || last.T != 6 {
		t.Fatalf("bounds(4) = %v %v %v, want t=4..6", first, last, ok)
	}
	if _, _, ok := r.bounds(6); ok {
		t.Fatal("bounds with a single in-window point should report !ok")
	}
}

func TestSamplerSeriesAndQuery(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{Registry: reg, Every: time.Second, Capacity: 16})
	c := reg.Counter("test.count")
	g := reg.Gauge(obs.Labeled("test.gauge", "tenant", "a"))
	h := reg.Histogram("test.hist")

	clk := newClock()
	for i := 0; i < 5; i++ {
		c.Add(2)
		g.Set(float64(i))
		h.Observe(float64(100 * (i + 1)))
		s.Tick(clk.tick(time.Second))
	}

	series := s.Query("test.count", 0, clk.t)
	if len(series) != 1 || len(series[0].Points) != 5 {
		t.Fatalf("test.count query = %+v, want 1 series with 5 points", series)
	}
	if se := series[0]; se.Min != 2 || se.Max != 10 {
		t.Fatalf("min/max = %v/%v, want 2/10", se.Min, se.Max)
	}
	// 2→10 over 4 s = 2/s.
	if se := series[0]; se.Rate != 2 {
		t.Fatalf("rate = %v, want 2", se.Rate)
	}

	// Base-name matching finds the labeled gauge.
	series = s.Query("test.gauge", 0, clk.t)
	if len(series) != 1 || series[0].Metric != `test.gauge{tenant="a"}` {
		t.Fatalf("base-name query = %+v, want the labeled series", series)
	}

	// Histograms expand into count/p50/p95/p99 derived series.
	for _, key := range []string{"test.hist.count", "test.hist.p50", "test.hist.p99"} {
		if got := s.Query(key, 0, clk.t); len(got) != 1 || len(got[0].Points) == 0 {
			t.Fatalf("query(%s) = %+v, want a non-empty series", key, got)
		}
	}

	// Windowing trims to the trailing interval.
	series = s.Query("test.count", 2*time.Second, clk.t)
	if len(series) != 1 || len(series[0].Points) != 3 {
		t.Fatalf("2s window = %+v, want 3 points (t-2s..t inclusive)", series)
	}

	keys := s.Keys()
	if len(keys) == 0 {
		t.Fatal("Keys() empty")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Keys() not sorted: %q before %q", keys[i-1], keys[i])
		}
	}
}

func TestSamplerRuntimeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{Registry: reg, Every: time.Second, Capacity: 8})
	clk := newClock()
	s.Tick(clk.tick(time.Second))
	s.Tick(clk.tick(time.Second))
	for _, key := range []string{"go.goroutines", "go.heap_bytes"} {
		series := s.Query(key, 0, clk.t)
		if len(series) != 1 || len(series[0].Points) == 0 {
			t.Fatalf("runtime metric %s missing from history: %+v", key, series)
		}
		if series[0].Points[len(series[0].Points)-1].V <= 0 {
			t.Fatalf("runtime metric %s sampled as %v, want > 0", key, series[0].Points)
		}
	}
}

func TestThresholdRuleFiresAndResolves(t *testing.T) {
	reg := obs.NewRegistry()
	var events []obs.Event
	sink := obs.ObserverFunc(func(e obs.Event) { events = append(events, e) })
	s := New(Options{
		Registry: reg, Every: time.Second, Capacity: 8,
		Rules:    []Rule{{Name: "depth", Metric: "q.depth", Kind: Threshold, Value: 5}},
		Observer: sink,
	})
	g := reg.Gauge("q.depth")
	clk := newClock()

	g.Set(3)
	s.Tick(clk.tick(time.Second))
	if active, _ := s.Alerts(); len(active) != 0 {
		t.Fatalf("below threshold: active = %+v", active)
	}

	g.Set(7)
	s.Tick(clk.tick(time.Second))
	active, recent := s.Alerts()
	if len(active) != 1 || active[0].Rule != "depth" || active[0].Value != 7 {
		t.Fatalf("above threshold: active = %+v", active)
	}
	if len(recent) != 1 || recent[0].ResolvedAt != 0 {
		t.Fatalf("recent = %+v, want one unresolved episode", recent)
	}

	g.Set(2)
	s.Tick(clk.tick(time.Second))
	active, recent = s.Alerts()
	if len(active) != 0 {
		t.Fatalf("after drop: active = %+v", active)
	}
	if len(recent) != 1 || recent[0].ResolvedAt == 0 {
		t.Fatalf("after drop: recent = %+v, want resolved episode", recent)
	}

	var fired, resolved int
	for _, e := range events {
		switch e.(type) {
		case obs.AlertFired:
			fired++
		case obs.AlertResolved:
			resolved++
		}
	}
	if fired != 1 || resolved != 1 {
		t.Fatalf("events: %d fired, %d resolved, want 1/1", fired, resolved)
	}
	// The registry aggregated the same events.
	if got := reg.Counter("alert.fired").Value(); got != 1 {
		t.Fatalf("alert.fired counter = %d, want 1", got)
	}
	if got := reg.Gauge("alert.active").Value(); got != 0 {
		t.Fatalf("alert.active gauge = %v, want 0", got)
	}
}

func TestDeltaRule(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{
		Registry: reg, Every: time.Second, Capacity: 32,
		Rules: []Rule{{Name: "growth", Metric: "heap", Kind: Delta, Value: 100, Window: Duration(10 * time.Second)}},
	})
	g := reg.Gauge("heap")
	clk := newClock()
	for v := 0.0; v <= 50; v += 10 {
		g.Set(v)
		s.Tick(clk.tick(time.Second))
	}
	if active, _ := s.Alerts(); len(active) != 0 {
		t.Fatalf("slow growth fired: %+v", active)
	}
	g.Set(200)
	s.Tick(clk.tick(time.Second))
	if active, _ := s.Alerts(); len(active) != 1 {
		t.Fatal("fast growth did not fire")
	}
}

func TestBurnRateRulePerTenant(t *testing.T) {
	reg := obs.NewRegistry()
	// Budget 100 over 100 s → sustainable 1/s; multiple 2 → fires at 2/s.
	s := New(Options{
		Registry: reg, Every: time.Second, Capacity: 32,
		Rules: []Rule{{
			Name: "burn", Metric: "eps", Kind: BurnRate,
			Value: 2, Window: Duration(10 * time.Second),
			Budget: 100, Horizon: Duration(100 * time.Second),
		}},
	})
	slow := reg.Gauge(obs.Labeled("eps", "tenant", "slow"))
	fast := reg.Gauge(obs.Labeled("eps", "tenant", "fast"))
	clk := newClock()
	for i := 0; i < 6; i++ {
		slow.Add(1) // 1/s: exactly sustainable, below the 2× multiple
		fast.Add(5) // 5/s: 5× sustainable
		s.Tick(clk.tick(time.Second))
	}
	active, _ := s.Alerts()
	if len(active) != 1 {
		t.Fatalf("active = %+v, want exactly the fast tenant", active)
	}
	if active[0].Metric != `eps{tenant="fast"}` {
		t.Fatalf("fired on %q, want the fast tenant's series", active[0].Metric)
	}
	if active[0].Value < 2 {
		t.Fatalf("burn multiple = %v, want ≥ 2", active[0].Value)
	}

	// The fast tenant stops spending; the rate decays out of the window
	// and the alert resolves.
	for i := 0; i < 15; i++ {
		s.Tick(clk.tick(time.Second))
	}
	if active, _ := s.Alerts(); len(active) != 0 {
		t.Fatalf("after spend stops: active = %+v, want resolved", active)
	}
}

func TestRuleMatchesHistogramQuantileSeries(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{
		Registry: reg, Every: time.Second, Capacity: 8,
		Rules: []Rule{{Name: "p99", Metric: "lat.p99", Kind: Threshold, Value: 1000}},
	})
	h := reg.Histogram(obs.Labeled("lat", "route", "GET /x"))
	clk := newClock()
	h.Observe(10)
	s.Tick(clk.tick(time.Second))
	if active, _ := s.Alerts(); len(active) != 0 {
		t.Fatalf("fast p99 fired: %+v", active)
	}
	for i := 0; i < 100; i++ {
		h.Observe(5000)
	}
	s.Tick(clk.tick(time.Second))
	active, _ := s.Alerts()
	if len(active) != 1 {
		t.Fatal("slow p99 did not fire")
	}
	if active[0].Metric != `lat{route="GET /x"}.p99` {
		t.Fatalf("fired on %q, want the labeled p99 series", active[0].Metric)
	}
}

func TestLateMetricBindsToRule(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{
		Registry: reg, Every: time.Second, Capacity: 8,
		Rules: []Rule{{Name: "late", Metric: "later.gauge", Kind: Threshold, Value: 1}},
	})
	clk := newClock()
	s.Tick(clk.tick(time.Second)) // rule has no target yet
	reg.Gauge("later.gauge").Set(5)
	s.Tick(clk.tick(time.Second)) // refresh binds it, then fires
	if active, _ := s.Alerts(); len(active) != 1 {
		t.Fatal("rule did not bind to a metric created after New")
	}
}

func TestStartCloseLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("x").Set(1)
	s := New(Options{Registry: reg, Every: time.Millisecond, Capacity: 64})
	s.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if series := s.Query("x", 0, time.Now()); len(series) == 1 && len(series[0].Points) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler goroutine produced no points")
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	s.Close() // idempotent
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules([]byte(`[
		{"name":"a","metric":"m","value":3},
		{"name":"b","metric":"m","kind":"delta","value":10,"window":"30s"},
		{"name":"c","metric":"m","kind":"burn_rate","value":2,"window":"5m","budget":4,"horizon":"1h"}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Kind != Threshold || rules[0].Op != ">=" {
		t.Fatalf("defaults not applied: %+v", rules[0])
	}
	if rules[1].Window.D() != 30*time.Second {
		t.Fatalf("window = %v, want 30s", rules[1].Window.D())
	}
	if rules[2].Horizon.D() != time.Hour {
		t.Fatalf("horizon = %v, want 1h", rules[2].Horizon.D())
	}

	for _, bad := range []string{
		`[{"metric":"m","value":1}]`,                               // no name
		`[{"name":"x","value":1}]`,                                 // no metric
		`[{"name":"x","metric":"m","kind":"nope","value":1}]`,      // bad kind
		`[{"name":"x","metric":"m","op":"==","value":1}]`,          // bad op
		`[{"name":"x","metric":"m","kind":"burn_rate","value":1}]`, // no budget
		`not json`,
	} {
		if _, err := ParseRules([]byte(bad)); err == nil {
			t.Fatalf("ParseRules(%s) accepted invalid input", bad)
		}
	}
}

func TestDefaultServeRules(t *testing.T) {
	rules := DefaultServeRules(4, 100)
	names := map[string]bool{}
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			t.Fatalf("default rule %q invalid: %v", rules[i].Name, err)
		}
		names[rules[i].Name] = true
	}
	for _, want := range []string{"tenant-epsilon-burn", "job-queue-depth", "route-p99-latency", "heap-growth"} {
		if !names[want] {
			t.Fatalf("default rules missing %q (have %v)", want, names)
		}
	}
	// No budget, no queue → those two rules drop out.
	if got := DefaultServeRules(0, 0); len(got) != len(rules)-2 {
		t.Fatalf("DefaultServeRules(0,0) = %d rules, want %d", len(got), len(rules)-2)
	}
}

func TestStripLabels(t *testing.T) {
	cases := map[string]string{
		"plain":                   "plain",
		`g{tenant="a"}`:           "g",
		`lat{route="GET /x"}.p99`: "lat.p99",
		`weird{a="}"}`:            "weird",
		"unclosed{oops":           "unclosed{oops",
	}
	for in, want := range cases {
		if got := stripLabels(in); got != want {
			t.Fatalf("stripLabels(%q) = %q, want %q", in, got, want)
		}
	}
}
