package history

import (
	"encoding/json"
	"net/http"
	"time"
)

// StatsHandler serves windowed time-series queries over the sampler:
//
//	GET /v1/stats                              → {"metrics":[...keys]}
//	GET /v1/stats?metric=K[&window=5m]         → {"series":[{metric,points,min,max,rate_per_sec}]}
//
// metric matches an exact series key or a label-stripped base (so
// "ledger.epsilon_committed" returns one series per tenant). window is a
// Go duration; omitted or 0 returns everything retained.
func StatsHandler(s *Sampler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			jsonError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		metric := req.URL.Query().Get("metric")
		if metric == "" {
			writeJSON(w, map[string]any{"metrics": s.Keys()})
			return
		}
		var window time.Duration
		if ws := req.URL.Query().Get("window"); ws != "" {
			var err error
			if window, err = time.ParseDuration(ws); err != nil {
				jsonError(w, http.StatusBadRequest, "bad window: "+err.Error())
				return
			}
		}
		series := s.Query(metric, window, time.Now())
		if series == nil {
			series = []Series{}
		}
		writeJSON(w, map[string]any{"series": series})
	})
}

// AlertsHandler serves the alert engine's state:
//
//	GET /v1/alerts → {"active":[...], "recent":[...]}
//
// active holds currently firing alerts; recent is the bounded episode
// history, oldest first, with resolved_at_ns set once an episode ends.
func AlertsHandler(s *Sampler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			jsonError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		active, recent := s.Alerts()
		writeJSON(w, map[string]any{"active": active, "recent": recent})
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
