package history

import (
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"privim/internal/obs"
)

// ProfileOptions configures a ProfileRing.
type ProfileOptions struct {
	// Dir receives the profile files; created if missing.
	Dir string
	// Keep bounds the ring to the newest Keep capture pairs (CPU + heap);
	// older files are pruned after each capture. Default 8.
	Keep int
	// CPUDuration is how long each CPU profile records. Default 250ms.
	CPUDuration time.Duration
	// Logf reports capture failures (a full disk must not take down the
	// alerting path). Optional.
	Logf func(format string, args ...any)
}

// ProfileRing captures pprof CPU+heap profile pairs into a bounded
// on-disk ring when something fires — an alert rule or a slow-span
// watchdog event. Captures run asynchronously (a CPU profile blocks for
// CPUDuration); at most one capture is in flight at a time, since the Go
// runtime supports a single CPU profile per process, and a storm of
// firing rules must not queue minutes of profiling. The heap-profile
// path is returned synchronously so the triggering alert can reference
// its artifact immediately.
type ProfileRing struct {
	opts ProfileOptions
	busy atomic.Bool
	seq  atomic.Uint64
	wg   sync.WaitGroup
}

// NewProfileRing creates the directory and returns the ring.
func NewProfileRing(opts ProfileOptions) (*ProfileRing, error) {
	if opts.Keep <= 0 {
		opts.Keep = 8
	}
	if opts.CPUDuration <= 0 {
		opts.CPUDuration = 250 * time.Millisecond
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	return &ProfileRing{opts: opts}, nil
}

// Capture starts an asynchronous CPU+heap capture tagged with reason and
// returns the heap-profile path the capture will write (the heap write
// is near-instant and always valid; the CPU profile lands next to it
// after CPUDuration, best-effort). Returns "" when a capture is already
// in flight.
func (p *ProfileRing) Capture(reason string) string {
	if p == nil {
		return ""
	}
	if !p.busy.CompareAndSwap(false, true) {
		return ""
	}
	stamp := time.Now().UTC().Format("20060102T150405.000")
	tag := stamp + "-" + sanitize(reason)
	if n := p.seq.Add(1); n > 1 {
		// The stamp has millisecond resolution; the sequence keeps names
		// unique (and sort-stable) under faster firing.
		tag = stamp + "." + strconv.FormatUint(n, 10) + "-" + sanitize(reason)
	}
	heapPath := filepath.Join(p.opts.Dir, tag+".heap.pprof")
	cpuPath := filepath.Join(p.opts.Dir, tag+".cpu.pprof")
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer p.busy.Store(false)
		p.writeHeap(heapPath)
		p.writeCPU(cpuPath)
		p.prune()
	}()
	return heapPath
}

// Wait blocks until any in-flight capture finishes — tests and shutdown.
func (p *ProfileRing) Wait() {
	if p != nil {
		p.wg.Wait()
	}
}

func (p *ProfileRing) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}

func (p *ProfileRing) writeHeap(path string) {
	f, err := os.Create(path)
	if err != nil {
		p.logf("history: heap profile: %v", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		p.logf("history: heap profile: %v", err)
	}
}

func (p *ProfileRing) writeCPU(path string) {
	f, err := os.Create(path)
	if err != nil {
		p.logf("history: cpu profile: %v", err)
		return
	}
	defer f.Close()
	// StartCPUProfile fails when another profiler (a /debug/pprof/profile
	// scrape) already runs; drop the empty file rather than leave an
	// unparseable artifact.
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		p.logf("history: cpu profile: %v", err)
		return
	}
	time.Sleep(p.opts.CPUDuration)
	pprof.StopCPUProfile()
}

// prune keeps the newest Keep capture pairs (2×Keep files, counting both
// the .cpu and .heap of a pair). Filenames start with a UTC timestamp,
// so lexical order is chronological.
func (p *ProfileRing) prune() {
	matches, err := filepath.Glob(filepath.Join(p.opts.Dir, "*.pprof"))
	if err != nil {
		return
	}
	max := 2 * p.opts.Keep
	if len(matches) <= max {
		return
	}
	sort.Strings(matches)
	for _, old := range matches[:len(matches)-max] {
		if err := os.Remove(old); err != nil {
			p.logf("history: pruning %s: %v", old, err)
		}
	}
}

// CaptureOnSlowSpan returns an Observer that triggers a capture whenever
// a SlowSpanWatchdog reports a span over budget — place it downstream of
// the watchdog in the observer chain.
func (p *ProfileRing) CaptureOnSlowSpan() obs.Observer {
	return obs.ObserverFunc(func(e obs.Event) {
		if _, ok := e.(obs.SpanSlow); ok {
			p.Capture("slow-span")
		}
	})
}

// sanitize maps reason to a filename-safe tag.
func sanitize(s string) string {
	if s == "" {
		return "manual"
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('-')
		}
	}
	return b.String()
}
