package history

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"privim/internal/obs"
)

func TestProfileRingCaptureAndPrune(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfileRing(ProfileOptions{Dir: dir, Keep: 2, CPUDuration: 10 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var heaps []string
	for i := 0; i < 5; i++ {
		path := p.Capture("test-reason")
		if path == "" {
			t.Fatalf("capture %d rejected (busy should have cleared after Wait)", i)
		}
		heaps = append(heaps, path)
		p.Wait()
	}
	// The returned path is the heap profile of its capture, on disk and
	// non-empty for the retained captures.
	last := heaps[len(heaps)-1]
	if !strings.HasSuffix(last, ".heap.pprof") {
		t.Fatalf("capture path %q, want *.heap.pprof", last)
	}
	if fi, err := os.Stat(last); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile %q: err=%v", last, err)
	}
	// Keep=2 bounds the ring to 2 pairs = 4 files.
	files, _ := filepath.Glob(filepath.Join(dir, "*.pprof"))
	if len(files) > 4 {
		t.Fatalf("ring holds %d files after prune, want ≤ 4: %v", len(files), files)
	}
	// The oldest heap profile was pruned.
	if _, err := os.Stat(heaps[0]); !os.IsNotExist(err) {
		t.Fatalf("oldest capture %q should be pruned, stat err = %v", heaps[0], err)
	}
}

func TestProfileRingBusyRejects(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfileRing(ProfileOptions{Dir: dir, CPUDuration: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	first := p.Capture("one")
	if first == "" {
		t.Fatal("first capture rejected")
	}
	if second := p.Capture("two"); second != "" {
		t.Fatalf("concurrent capture accepted: %q", second)
	}
	p.Wait()
}

func TestCaptureOnSlowSpan(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfileRing(ProfileOptions{Dir: dir, CPUDuration: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	o := p.CaptureOnSlowSpan()
	o.Emit(obs.SpanSlow{Span: "train", Elapsed: time.Second, Threshold: time.Millisecond})
	o.Emit(obs.SpanStart{Span: "ignored"}) // non-slow events must not capture
	p.Wait()
	files, _ := filepath.Glob(filepath.Join(dir, "*slow-span*.pprof"))
	if len(files) != 2 {
		t.Fatalf("slow-span capture produced %d files, want a cpu+heap pair: %v", len(files), files)
	}
}

func TestNilProfileRingIsNoop(t *testing.T) {
	var p *ProfileRing
	if got := p.Capture("x"); got != "" {
		t.Fatalf("nil ring capture = %q, want \"\"", got)
	}
	p.Wait()
}

func TestAlertFireCapturesProfile(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfileRing(ProfileOptions{Dir: dir, CPUDuration: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := New(Options{
		Registry: reg, Every: time.Second, Capacity: 8,
		Rules:    []Rule{{Name: "hot", Metric: "v", Kind: Threshold, Value: 1}},
		Profiles: p,
	})
	reg.Gauge("v").Set(5)
	clk := newClock()
	s.Tick(clk.tick(time.Second))
	active, _ := s.Alerts()
	if len(active) != 1 {
		t.Fatal("rule did not fire")
	}
	if active[0].Profile == "" {
		t.Fatal("fired alert carries no profile path")
	}
	p.Wait()
	if fi, err := os.Stat(active[0].Profile); err != nil || fi.Size() == 0 {
		t.Fatalf("profile artifact %q: err=%v", active[0].Profile, err)
	}
}
