package history

import (
	"testing"
	"time"

	"privim/internal/obs"
)

// TestTickSteadyStateAllocs pins the sampler's zero-steady-state-alloc
// invariant: once every metric name exists and no alert transitions
// occur, a tick allocates at most 2 heap objects (the ISSUE-10 floor;
// measured 0 on go1.24 — the slack absorbs runtime-internal accounting
// shifts across toolchains, not sampler regressions).
func TestTickSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts do not hold under -race")
	}
	reg := obs.NewRegistry()
	s := New(Options{
		Registry: reg, Every: time.Second, Capacity: 128,
		Rules: []Rule{
			{Name: "thr", Metric: "g.a", Kind: Threshold, Value: 1e12},
			{Name: "dlt", Metric: "c.a", Kind: Delta, Value: 1e12, Window: Duration(time.Minute)},
			{Name: "brn", Metric: "g.b", Kind: BurnRate, Value: 1e12,
				Window: Duration(time.Minute), Budget: 1, Horizon: Duration(time.Hour)},
		},
	})
	// A representative metric population, including labeled gauges and a
	// histogram with observations.
	reg.Counter("c.a").Add(3)
	reg.Gauge("g.a").Set(1)
	reg.Gauge(obs.Labeled("g.b", "tenant", "x")).Set(2)
	h := reg.Histogram("h.a")
	for i := 0; i < 50; i++ {
		h.Observe(float64(i * 17))
	}

	clk := newClock()
	// Warm up: first ticks create runtime metrics, series rings, and rule
	// bindings; GC-pause delta-merge history also settles.
	for i := 0; i < 5; i++ {
		s.Tick(clk.tick(time.Second))
	}
	got := testing.AllocsPerRun(100, func() {
		s.Tick(clk.tick(time.Second))
	})
	if got > 2 {
		t.Fatalf("sampler tick allocates %.1f objects/run in steady state, want ≤ 2", got)
	}
}
