package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace IDs %q, %q: want 16 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("two minted IDs collide: %q", a)
	}
	if !ValidTraceID(a) {
		t.Fatalf("minted ID %q fails ValidTraceID", a)
	}
}

func TestValidTraceID(t *testing.T) {
	valid := []string{"a", "0123456789abcdef", "A-Z_z9", strings.Repeat("f", 64)}
	for _, id := range valid {
		if !ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = false, want true", id)
		}
	}
	invalid := []string{"", strings.Repeat("f", 65), "has space", "semi;colon", "tab\there", "slash/y", "é"}
	for _, id := range invalid {
		if ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = true, want false", id)
		}
	}
}

func TestContextSpanHelpers(t *testing.T) {
	ctx := context.Background()
	if s := SpanFromContext(ctx); s != nil {
		t.Fatalf("SpanFromContext(empty) = %v, want nil", s)
	}
	// A nil span must not be stored: downstream code relies on
	// SpanFromContext == nil meaning "no parent".
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Fatal("ContextWithSpan(ctx, nil) should return ctx unchanged")
	}
	c := &collector{}
	root := StartSpan(c, "root")
	ctx = ContextWithSpan(ctx, root)
	if s := SpanFromContext(ctx); s != root {
		t.Fatalf("SpanFromContext = %v, want the stored span", s)
	}
	if got := TraceFromContext(ctx); got != root.Trace() {
		t.Fatalf("TraceFromContext = %q, want span trace %q", got, root.Trace())
	}
}

func TestContextTraceHelpers(t *testing.T) {
	ctx := context.Background()
	if got := TraceFromContext(ctx); got != "" {
		t.Fatalf("TraceFromContext(empty) = %q, want \"\"", got)
	}
	if got := ContextWithTrace(ctx, ""); got != ctx {
		t.Fatal("ContextWithTrace(ctx, \"\") should return ctx unchanged")
	}
	ctx = ContextWithTrace(ctx, "deadbeefcafef00d")
	if got := TraceFromContext(ctx); got != "deadbeefcafef00d" {
		t.Fatalf("TraceFromContext = %q, want bare trace", got)
	}
	// A context span outranks the bare trace ID.
	c := &collector{}
	root := StartSpan(c, "root")
	ctx = ContextWithSpan(ctx, root)
	if got := TraceFromContext(ctx); got != root.Trace() {
		t.Fatalf("TraceFromContext = %q, want span trace %q", got, root.Trace())
	}
}

func TestStartSpanCtxParenting(t *testing.T) {
	c := &collector{}

	// No context span, nil observer: nil (no-op) span.
	if s := StartSpanCtx(context.Background(), nil, "x"); s != nil {
		t.Fatalf("StartSpanCtx(no parent, nil observer) = %v, want nil", s)
	}

	// No context span, observer set, no context trace: fresh root trace.
	s1 := StartSpanCtx(context.Background(), c, "root1")
	if s1 == nil || s1.Trace() == "" {
		t.Fatal("root span should mint a trace")
	}

	// Context trace, no span: root joins the context trace.
	ctx := ContextWithTrace(context.Background(), "aaaabbbbccccdddd")
	s2 := StartSpanCtx(ctx, c, "root2")
	if got := s2.Trace(); got != "aaaabbbbccccdddd" {
		t.Fatalf("root trace = %q, want context trace", got)
	}

	// Context span: child of it, inheriting trace and observer even when
	// the observer argument is nil.
	ctx = ContextWithSpan(ctx, s2)
	child := StartSpanCtx(ctx, nil, "child")
	if child == nil {
		t.Fatal("child span is nil despite context parent")
	}
	if got := child.Trace(); got != s2.Trace() {
		t.Fatalf("child trace = %q, want parent trace %q", got, s2.Trace())
	}
	child.End()
	s2.End()

	// The emitted SpanStart for the child must carry the parent link.
	var childStart *SpanStart
	for _, e := range c.all() {
		if ev, ok := e.(SpanStart); ok && ev.Span == "child" {
			childStart = &ev
		}
	}
	if childStart == nil {
		t.Fatal("no SpanStart for child")
	}
	if childStart.Parent == 0 || childStart.Trace != s2.Trace() {
		t.Fatalf("child SpanStart = %+v, want parent of %q in trace %q", childStart, "root2", s2.Trace())
	}
}

func TestSpanTraceInheritance(t *testing.T) {
	c := &collector{}
	root := StartSpan(c, "root")
	child := root.Child("child")
	grand := child.Child("grand")
	if root.Trace() == "" {
		t.Fatal("root has no trace")
	}
	if child.Trace() != root.Trace() || grand.Trace() != root.Trace() {
		t.Fatalf("traces diverge: root=%q child=%q grand=%q", root.Trace(), child.Trace(), grand.Trace())
	}
	grand.End()
	child.End()
	root.End()
	for _, e := range c.all() {
		switch ev := e.(type) {
		case SpanStart:
			if ev.Trace != root.Trace() {
				t.Errorf("SpanStart %q trace = %q, want %q", ev.Span, ev.Trace, root.Trace())
			}
		case SpanEnd:
			if ev.Trace != root.Trace() {
				t.Errorf("SpanEnd %q trace = %q, want %q", ev.Span, ev.Trace, root.Trace())
			}
		}
	}
}

func TestJSONLSinkTraceStamp(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.SetTrace("feedfacefeedface")
	span := StartSpan(sink, "work")
	span.End()
	Emit(sink, IterationEnd{Iter: 1, Loss: 0.5})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("journal lines = %d, want 3", len(lines))
	}
	for i, line := range lines {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.Trace != "feedfacefeedface" {
			t.Errorf("line %d trace = %q, want the sink trace", i, rec.Trace)
		}
	}
}

func TestSlowSpanWatchdogOnEnd(t *testing.T) {
	c := &collector{}
	w := NewSlowSpanWatchdog(5*time.Millisecond, c)
	defer w.Close()

	fast := StartSpan(w, "fast")
	fast.End()
	slow := StartSpan(w, "slow")
	time.Sleep(10 * time.Millisecond)
	slow.End()
	w.Close()

	var slows []SpanSlow
	for _, e := range c.all() {
		if ev, ok := e.(SpanSlow); ok {
			slows = append(slows, ev)
		}
	}
	if len(slows) != 1 {
		t.Fatalf("SpanSlow events = %d, want exactly 1 (got %+v)", len(slows), slows)
	}
	ev := slows[0]
	if ev.Span != "slow" || ev.Trace != slow.Trace() {
		t.Fatalf("SpanSlow = %+v, want span %q in trace %q", ev, "slow", slow.Trace())
	}
	if ev.Elapsed <= ev.Threshold {
		t.Fatalf("SpanSlow elapsed %v not past threshold %v", ev.Elapsed, ev.Threshold)
	}
}

func TestSlowSpanWatchdogInFlight(t *testing.T) {
	c := &collector{}
	w := NewSlowSpanWatchdog(5*time.Millisecond, c)
	defer w.Close()

	hung := StartSpan(w, "hung")
	// The background scanner runs every max(threshold/2, 10ms); give it a
	// few periods to flag the still-open span.
	deadline := time.Now().Add(2 * time.Second)
	reported := func() bool {
		for _, e := range c.all() {
			if ev, ok := e.(SpanSlow); ok && ev.Span == "hung" {
				return true
			}
		}
		return false
	}
	for !reported() {
		if time.Now().After(deadline) {
			t.Fatal("in-flight slow span never reported")
		}
		time.Sleep(5 * time.Millisecond)
	}
	hung.End()
	w.Close()

	// SpanEnd must not double-report the already-flagged span.
	n := 0
	for _, e := range c.all() {
		if ev, ok := e.(SpanSlow); ok && ev.Span == "hung" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("SpanSlow for hung span reported %d times, want 1", n)
	}
}

// journalFor builds an in-memory journal by running fn against a sink.
func journalFor(t *testing.T, trace string, fn func(o Observer)) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	if trace != "" {
		sink.SetTrace(trace)
	}
	fn(sink)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestWriteChromeTraceRoundTrip(t *testing.T) {
	journal := journalFor(t, "", func(o Observer) {
		root := StartSpan(o, "train")
		m1 := root.Child("module1")
		m1.End()
		Emit(o, IterationEnd{Iter: 0, Loss: 1.5, EpsilonSpent: 0.1})
		Emit(o, CheckpointSaved{Iter: 10, Bytes: 128})
		Emit(o, SpanSlow{ID: root.id, Trace: root.Trace(), Span: "train",
			Elapsed: 2 * time.Second, Threshold: time.Second})
		root.End()
	})

	var out bytes.Buffer
	if err := WriteChromeTrace(bytes.NewReader(journal.Bytes()), &out, ""); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("converter output fails validation: %v\n%s", err, out.String())
	}

	var doc chromeTrace
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// 2 spans × B/E + 2 counters + 1 checkpoint instant + 1 slow instant.
	if got := len(doc.TraceEvents); got != 8 {
		t.Fatalf("traceEvents = %d, want 8:\n%s", got, out.String())
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev.Ph]++
		if ev.TS < 0 {
			t.Errorf("event %q has negative ts %v", ev.Name, ev.TS)
		}
	}
	if phases["B"] != 2 || phases["E"] != 2 || phases["C"] != 2 || phases["i"] != 2 {
		t.Fatalf("phase counts = %v, want B:2 E:2 C:2 i:2", phases)
	}
	// Sequential child nests on the parent's virtual thread.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "B" && ev.Tid != 1 {
			t.Errorf("span %q opened on tid %d, want 1 (sequential nesting)", ev.Name, ev.Tid)
		}
	}
}

func TestWriteChromeTraceConcurrentSiblings(t *testing.T) {
	// Two children open before either closes: the second cannot ride the
	// parent's tid (the first is innermost there) and gets its own row.
	journal := journalFor(t, "", func(o Observer) {
		root := StartSpan(o, "root")
		a := root.Child("a")
		b := root.Child("b")
		a.End()
		b.End()
		root.End()
	})
	var out bytes.Buffer
	if err := WriteChromeTrace(bytes.NewReader(journal.Bytes()), &out, ""); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("concurrent-sibling trace fails validation: %v\n%s", err, out.String())
	}
	var doc chromeTrace
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	tidOf := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "B" {
			tidOf[ev.Name] = ev.Tid
		}
	}
	if tidOf["a"] != tidOf["root"] {
		t.Errorf("first child on tid %d, want parent's tid %d", tidOf["a"], tidOf["root"])
	}
	if tidOf["b"] == tidOf["root"] {
		t.Errorf("second concurrent child shares the parent's tid %d; want its own", tidOf["b"])
	}
}

func TestWriteChromeTraceFilter(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	keepRoot := startRoot(sink, "keep", "1111111111111111")
	keepRoot.End()
	dropRoot := startRoot(sink, "drop", "2222222222222222")
	dropRoot.End()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := WriteChromeTrace(bytes.NewReader(buf.Bytes()), &out, "1111111111111111"); err != nil {
		t.Fatal(err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("filtered traceEvents = %d, want 2 (one B/E pair):\n%s", len(doc.TraceEvents), out.String())
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name != "keep" && ev.Ph != "E" {
			t.Errorf("event %+v leaked through the trace filter", ev)
		}
	}
}

func TestWriteChromeTraceSkipsGarbageAndTruncation(t *testing.T) {
	journal := journalFor(t, "", func(o Observer) {
		s := StartSpan(o, "ok")
		s.End()
	})
	// Garbage line plus an end-without-start (truncated journal head).
	journal.WriteString("not json at all\n")
	orphan := journalFor(t, "", func(o Observer) {
		Emit(o, SpanEnd{ID: 999999, Span: "orphan", Elapsed: time.Second})
	})
	journal.Write(orphan.Bytes())

	var out bytes.Buffer
	if err := WriteChromeTrace(bytes.NewReader(journal.Bytes()), &out, ""); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("output fails validation: %v", err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("traceEvents = %d, want 2 (orphan E and garbage dropped)", len(doc.TraceEvents))
	}
}

func TestWriteChromeTraceEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := WriteChromeTrace(strings.NewReader(""), &out, ""); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("empty trace fails validation: %v", err)
	}
	if !strings.Contains(out.String(), `"traceEvents":[]`) {
		t.Fatalf("empty input should still emit a traceEvents array, got %s", out.String())
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	bad := []struct {
		name, doc string
	}{
		{"not json", "nope"},
		{"missing array", `{"displayTimeUnit":"ms"}`},
		{"unknown phase", `{"traceEvents":[{"ph":"Z","ts":0,"pid":1,"tid":1,"name":"x"}]}`},
		{"negative ts", `{"traceEvents":[{"ph":"B","ts":-5,"pid":1,"tid":1,"name":"x"}]}`},
		{"nameless B", `{"traceEvents":[{"ph":"B","ts":0,"pid":1,"tid":1}]}`},
		{"E without B", `{"traceEvents":[{"ph":"E","ts":0,"pid":1,"tid":1}]}`},
		{"mismatched E", `{"traceEvents":[{"ph":"B","ts":0,"pid":1,"tid":1,"name":"a"},{"ph":"E","ts":1,"pid":1,"tid":1,"name":"b"}]}`},
	}
	for _, tc := range bad {
		if err := ValidateChromeTrace(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
	// A span left open at EOF is a killed run, not an error.
	ok := `{"traceEvents":[{"ph":"B","ts":0,"pid":1,"tid":1,"name":"x"}]}`
	if err := ValidateChromeTrace(strings.NewReader(ok)); err != nil {
		t.Errorf("open span at EOF rejected: %v", err)
	}
}
