package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestLabeled(t *testing.T) {
	if got := Labeled("a.b"); got != "a.b" {
		t.Fatalf("Labeled no-kv = %q, want bare name", got)
	}
	got := Labeled("serve.http.requests", "route", "POST /v1/train", "code", "202")
	want := `serve.http.requests{route="POST /v1/train",code="202"}`
	if got != want {
		t.Fatalf("Labeled = %q, want %q", got, want)
	}
	// Exposition-format escapes: backslash, quote, newline.
	got = Labeled("m", "k", "a\\b\"c\nd")
	want = `m{k="a\\b\"c\nd"}`
	if got != want {
		t.Fatalf("Labeled escape = %q, want %q", got, want)
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"serve.http.requests": "serve_http_requests",
		"already_fine":        "already_fine",
		"with:colon":          "with:colon",
		"9starts.bad":         "_starts_bad",
		"unicode-é":           "unicode___", // per-byte sanitization: '-' plus the 2-byte rune
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.jobs.accepted").Add(3)
	r.Gauge("train.epsilon_spent").Set(1.25)
	r.Counter(Labeled("serve.http.requests", "route", "GET /healthz", "code", "200")).Add(7)
	r.Counter(Labeled("serve.http.requests", "route", "POST /v1/train", "code", "202")).Inc()
	h := r.Histogram(Labeled("serve.http.latency_us", "route", "GET /healthz"))
	h.Observe(3)  // bucket 2: [2,4)
	h.Observe(10) // bucket 4: [8,16)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE serve_jobs_accepted counter\n",
		"serve_jobs_accepted 3\n",
		"# TYPE train_epsilon_spent gauge\n",
		"train_epsilon_spent 1.25\n",
		"# TYPE serve_http_requests counter\n",
		`serve_http_requests{route="GET /healthz",code="200"} 7` + "\n",
		`serve_http_requests{route="POST /v1/train",code="202"} 1` + "\n",
		"# TYPE serve_http_latency_us histogram\n",
		// Cumulative buckets: nothing below 2, one below 4, two from 16 on.
		`serve_http_latency_us_bucket{route="GET /healthz",le="2"} 0` + "\n",
		`serve_http_latency_us_bucket{route="GET /healthz",le="4"} 1` + "\n",
		`serve_http_latency_us_bucket{route="GET /healthz",le="16"} 2` + "\n",
		`serve_http_latency_us_bucket{route="GET /healthz",le="+Inf"} 2` + "\n",
		`serve_http_latency_us_sum{route="GET /healthz"} 13` + "\n",
		`serve_http_latency_us_count{route="GET /healthz"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}

	// Families sorted by name, one TYPE line per family.
	var families []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.Fields(line)[2])
		}
	}
	if len(families) != 4 {
		t.Fatalf("families = %v, want 4", families)
	}
	for i := 1; i < len(families); i++ {
		if families[i-1] >= families[i] {
			t.Fatalf("families not sorted: %v", families)
		}
	}

	// Deterministic output: a second render is byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatal("two renders of an unchanged registry differ")
	}
}

func TestPromHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x.y").Inc()
	rec := httptest.NewRecorder()
	PromHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/prom", nil))
	if got := rec.Header().Get("Content-Type"); !strings.HasPrefix(got, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text exposition 0.0.4", got)
	}
	if !strings.Contains(rec.Body.String(), "x_y 1\n") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestHistogramQuantile(t *testing.T) {
	// Empty histogram: every quantile is 0.
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile(0.5) = %v, want 0", got)
	}

	// Constant distribution: 100 samples of 3.0 all land in bucket 2
	// ([2,4)); interpolation stays inside that bucket for every q.
	var constant Histogram
	for i := 0; i < 100; i++ {
		constant.Observe(3.0)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := constant.Quantile(q)
		if got < 2 || got > 4 {
			t.Errorf("constant Quantile(%v) = %v, want within [2,4)", q, got)
		}
	}

	// The bucket holding the target rank is found correctly: 90 samples
	// in [2,4), 10 in [256,512). p50 reads the low bucket, p99 the high.
	var skewed Histogram
	for i := 0; i < 90; i++ {
		skewed.Observe(3)
	}
	for i := 0; i < 10; i++ {
		skewed.Observe(300)
	}
	if got := skewed.Quantile(0.5); got < 2 || got >= 4 {
		t.Errorf("skewed p50 = %v, want in [2,4)", got)
	}
	if got := skewed.Quantile(0.99); got < 256 || got >= 512 {
		t.Errorf("skewed p99 = %v, want in [256,512)", got)
	}

	// Monotonicity across a spread distribution.
	var uniform Histogram
	for v := 1; v <= 1000; v++ {
		uniform.Observe(float64(v))
	}
	p50, p95, p99 := uniform.Quantile(0.50), uniform.Quantile(0.95), uniform.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	// Log-bucket accuracy bound: within a factor of 2 of the true value.
	if p50 < 250 || p50 > 1000 {
		t.Errorf("uniform p50 = %v, want within 2x of 500", p50)
	}

	// Overflow bucket reports its lower bound, not +Inf.
	var over Histogram
	over.Observe(math.Ldexp(1, 30)) // far past the last finite bound
	got := over.Quantile(0.5)
	if math.IsInf(got, 1) || got != BucketLower(NumBuckets-1) {
		t.Errorf("overflow Quantile = %v, want overflow lower bound %v", got, BucketLower(NumBuckets-1))
	}

	// Out-of-range q clamps instead of panicking.
	if got := uniform.Quantile(-1); got != uniform.Quantile(0) {
		t.Errorf("Quantile(-1) = %v, want clamp to Quantile(0) = %v", got, uniform.Quantile(0))
	}
	if got := uniform.Quantile(2); got != uniform.Quantile(1) {
		t.Errorf("Quantile(2) = %v, want clamp to Quantile(1) = %v", got, uniform.Quantile(1))
	}
}

func TestSnapshotPercentiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	snap := h.Snapshot()
	if snap.P50 != h.Quantile(0.50) || snap.P95 != h.Quantile(0.95) || snap.P99 != h.Quantile(0.99) {
		t.Fatalf("snapshot percentiles %v/%v/%v disagree with Quantile", snap.P50, snap.P95, snap.P99)
	}
	if snap.P50 < 64 || snap.P50 >= 128 {
		t.Fatalf("P50 = %v, want inside the [64,128) bucket", snap.P50)
	}
}
