package obs

import (
	"net"
	"net/http"

	// Register /debug/pprof/* on the default mux; /debug/vars comes from
	// the expvar import in registry.go. Both are only reachable once
	// StartDebugServer is called (the CLIs gate it behind -debug-addr).
	_ "net/http/pprof"
)

// StartDebugServer serves the process debug endpoints — expvar at
// /debug/vars (including any published Registry) and pprof at
// /debug/pprof/ — on addr in a background goroutine. It returns the
// bound address (useful with ":0") once the listener is live, so callers
// can print a working URL immediately.
func StartDebugServer(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, http.DefaultServeMux) //nolint:errcheck // lives until process exit
	return ln.Addr().String(), nil
}
