package obs

import (
	"context"
	"net"
	"net/http"
	"time"

	// Register /debug/pprof/* on the default mux; /debug/vars comes from
	// the expvar import in registry.go. Both are only reachable once
	// StartDebugServer is called (the CLIs gate it behind -debug-addr).
	_ "net/http/pprof"
)

// DebugServer is a running process-debug endpoint: expvar at /debug/vars
// (including any published Registry) and pprof at /debug/pprof/. Unlike a
// fire-and-forget goroutine it is a real *http.Server handle, so owners
// can drain it on shutdown (Shutdown) or tear it down immediately
// (Close) instead of leaking the listener until process exit.
type DebugServer struct {
	srv  *http.Server
	addr string
}

// StartDebugServer binds addr and serves the debug endpoints in a
// background goroutine, returning the live server handle. The bound
// address is available immediately via Addr (useful with ":0"), so
// callers can print a working URL before any request arrives.
func StartDebugServer(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{
		srv:  &http.Server{Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second},
		addr: ln.Addr().String(),
	}
	go d.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Shutdown/Close
	return d, nil
}

// Addr returns the address the server is listening on.
func (d *DebugServer) Addr() string { return d.addr }

// Shutdown gracefully drains the server: the listener closes at once,
// in-flight scrapes finish (pprof profile captures can run for seconds),
// and the call returns when they have or ctx expires.
func (d *DebugServer) Shutdown(ctx context.Context) error { return d.srv.Shutdown(ctx) }

// Close tears the server down immediately, aborting in-flight requests.
func (d *DebugServer) Close() error { return d.srv.Close() }
