package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is a running process-debug endpoint: expvar at /debug/vars
// (including any published Registry), pprof at /debug/pprof/, and — when
// constructed with a registry — Prometheus text exposition at
// /metrics/prom. It serves a private mux with each handler registered
// explicitly, so debug endpoints never leak into http.DefaultServeMux
// (and thus into any unrelated server sharing the process), and two
// debug servers can coexist without pattern collisions. Unlike a
// fire-and-forget goroutine it is a real *http.Server handle, so owners
// can drain it on shutdown (Shutdown) or tear it down immediately
// (Close) instead of leaking the listener until process exit.
type DebugServer struct {
	srv  *http.Server
	mux  *http.ServeMux
	addr string
}

// StartDebugServer binds addr and serves the debug endpoints in a
// background goroutine, returning the live server handle. reg, when
// non-nil, is additionally exposed at /metrics/prom in Prometheus text
// format (nil skips that route). The bound address is available
// immediately via Addr (useful with ":0"), so callers can print a
// working URL before any request arrives.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	// expvar.Handler serves the process-wide expvar namespace, which is
	// where Registry.Publish lands; the /debug/vars path is the expvar
	// convention, registered here privately instead of via the package's
	// DefaultServeMux init side effect.
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.Handle("GET /metrics/prom", PromHandler(reg))
	}
	d := &DebugServer{
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
		mux:  mux,
		addr: ln.Addr().String(),
	}
	go d.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Shutdown/Close
	return d, nil
}

// Addr returns the address the server is listening on.
func (d *DebugServer) Addr() string { return d.addr }

// Handle registers an extra handler on the debug mux — used to mount the
// history sampler's /v1/stats and /v1/alerts views next to pprof.
// ServeMux registration is safe while the server is running; registering
// a pattern twice panics, so owners mount each route exactly once.
func (d *DebugServer) Handle(pattern string, h http.Handler) { d.mux.Handle(pattern, h) }

// Shutdown gracefully drains the server: the listener closes at once,
// in-flight scrapes finish (pprof profile captures can run for seconds),
// and the call returns when they have or ctx expires.
func (d *DebugServer) Shutdown(ctx context.Context) error { return d.srv.Shutdown(ctx) }

// Close tears the server down immediately, aborting in-flight requests.
func (d *DebugServer) Close() error { return d.srv.Close() }
