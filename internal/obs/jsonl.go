package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Record is the wire format of one journal line: the event kind, a
// nanosecond wall-clock timestamp, the trace ID of the request/run the
// event belongs to (when the sink has one, see SetTrace), and the event
// payload. Kind doubles as the discriminator DecodeRecord uses to
// recover the concrete type.
type Record struct {
	Kind  string          `json:"event"`
	TS    int64           `json:"ts_unix_ns"`
	Trace string          `json:"trace,omitempty"`
	Data  json.RawMessage `json:"data"`
}

// JSONLSink is an Observer that appends one JSON line per event to a
// writer — the run journal. It buffers internally; call Flush (or Close)
// before reading the output. Safe for concurrent Emit.
type JSONLSink struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	trace string
	err   error
}

// NewJSONLSink wraps w in a journal writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{bw: bufio.NewWriter(w)}
}

// SetTrace stamps every subsequently written record with the given trace
// ID — used by sinks whose whole journal belongs to one request/run/job
// (the per-job journals in internal/serve, the CLI -journal file). Span
// events additionally carry their own trace inside the payload, so a
// merged multi-trace journal stays attributable.
func (s *JSONLSink) SetTrace(id string) {
	s.mu.Lock()
	s.trace = id
	s.mu.Unlock()
}

// Emit implements Observer. Marshal or write errors are sticky and
// reported by Err; subsequent events are dropped after the first error.
func (s *JSONLSink) Emit(e Event) {
	data, err := json.Marshal(e)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err != nil {
		s.err = err
		return
	}
	line, err := json.Marshal(Record{Kind: e.EventKind(), TS: time.Now().UnixNano(), Trace: s.trace, Data: data})
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.bw.Write(append(line, '\n')); err != nil {
		s.err = err
	}
}

// Flush drains the buffer to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// Err returns the first error encountered, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// DecodeRecord parses one journal line back into its typed event — the
// inverse of Emit, used by journal consumers and the round-trip tests.
func DecodeRecord(line []byte) (Event, time.Time, error) {
	var rec Record
	if err := json.Unmarshal(line, &rec); err != nil {
		return nil, time.Time{}, err
	}
	ts := time.Unix(0, rec.TS)
	var ev Event
	switch rec.Kind {
	case SpanStart{}.EventKind():
		ev = &SpanStart{}
	case SpanEnd{}.EventKind():
		ev = &SpanEnd{}
	case SpanSlow{}.EventKind():
		ev = &SpanSlow{}
	case IterationEnd{}.EventKind():
		ev = &IterationEnd{}
	case MCBatchDone{}.EventKind():
		ev = &MCBatchDone{}
	case SeedSelected{}.EventKind():
		ev = &SeedSelected{}
	case ExtractionDone{}.EventKind():
		ev = &ExtractionDone{}
	case ParallelFor{}.EventKind():
		ev = &ParallelFor{}
	case CheckpointSaved{}.EventKind():
		ev = &CheckpointSaved{}
	case CheckpointResumed{}.EventKind():
		ev = &CheckpointResumed{}
	case CheckpointRejected{}.EventKind():
		ev = &CheckpointRejected{}
	case LedgerOp{}.EventKind():
		ev = &LedgerOp{}
	case Canceled{}.EventKind():
		ev = &Canceled{}
	case AlertFired{}.EventKind():
		ev = &AlertFired{}
	case AlertResolved{}.EventKind():
		ev = &AlertResolved{}
	default:
		return nil, ts, fmt.Errorf("obs: unknown event kind %q", rec.Kind)
	}
	if err := json.Unmarshal(rec.Data, ev); err != nil {
		return nil, ts, err
	}
	return ev, ts, nil
}
