package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition for Registry — stdlib only, like the
// rest of the package. Registry metric names map to Prometheus series:
//
//   - dots (and any other character outside [a-zA-Z0-9_:]) become "_",
//     so "serve.http.requests" exports as "serve_http_requests";
//   - a name built with Labeled carries a Prometheus label set verbatim:
//     `serve.http.requests{route="POST /v1/train",code="202"}` exports
//     as one series of the serve_http_requests family;
//   - histograms render as cumulative `_bucket` series on the package's
//     log-scale bounds (le="1","2","4",…,"+Inf") plus `_sum`/`_count`.
//
// Output is sorted (families alphabetically, series within a family by
// label set), so scrapes are diffable and tests can assert exact text.

// Labeled builds a registry metric name carrying a Prometheus-style
// label set: Labeled("serve.http.requests", "route", "POST /v1/train",
// "code", "202") → `serve.http.requests{route="POST /v1/train",code="202"}`.
// Values are escaped per the exposition format (backslash, quote,
// newline). kv must hold alternating keys and values; keys must already
// be valid Prometheus label names. Series of the same base name with
// different labels export as one metric family.
func Labeled(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.Grow(len(base) + 16*len(kv))
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		escapeLabelValue(&b, kv[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
}

// splitLabels separates a registry name into its base and the raw label
// body ("" when unlabeled): `a.b{x="1"}` → ("a.b", `x="1"`).
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// promName sanitizes a registry base name into a valid Prometheus
// metric name.
func promName(base string) string {
	var b strings.Builder
	b.Grow(len(base))
	for i := 0; i < len(base); i++ {
		c := base[i]
		valid := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if valid {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a sample value; Prometheus accepts Go's 'g' format
// including "+Inf"/"NaN" spellings.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSeries is one exported sample line under a family.
type promSeries struct {
	labels string // raw label body, "" when unlabeled
	value  string
	hist   *HistogramSnapshot // non-nil for histogram series
}

// promFamily is a named group of series sharing one # TYPE line.
type promFamily struct {
	name   string
	kind   string // "counter", "gauge", "histogram"
	series []promSeries
}

// WritePrometheus renders every metric in the registry in the
// Prometheus text exposition format (version 0.0.4). Families are
// sorted by name; a family whose sanitized name collides with one of a
// different kind is skipped rather than emitted twice.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := make(map[string]*promFamily, len(r.counters)+len(r.gauges)+len(r.hists))
	add := func(name, kind string, s promSeries) {
		base, labels := splitLabels(name)
		s.labels = labels
		pn := promName(base)
		f, ok := families[pn]
		if !ok {
			f = &promFamily{name: pn, kind: kind}
			families[pn] = f
		}
		if f.kind != kind {
			return // sanitization collision across kinds; first one wins
		}
		f.series = append(f.series, s)
	}
	for name, c := range r.counters {
		add(name, "counter", promSeries{value: strconv.FormatInt(c.Value(), 10)})
	}
	for name, g := range r.gauges {
		add(name, "gauge", promSeries{value: promFloat(g.Value())})
	}
	for name, h := range r.hists {
		snap := h.Snapshot()
		add(name, "histogram", promSeries{hist: &snap})
	}
	r.mu.Unlock()

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := families[n]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			if f.kind != "histogram" {
				writeSample(&b, f.name, s.labels, "", s.value)
				continue
			}
			var cum uint64
			for i, c := range s.hist.Buckets {
				cum += c
				writeSample(&b, f.name+"_bucket", s.labels,
					`le="`+promFloat(BucketUpper(i))+`"`, strconv.FormatUint(cum, 10))
			}
			writeSample(&b, f.name+"_sum", s.labels, "", promFloat(s.hist.Sum))
			writeSample(&b, f.name+"_count", s.labels, "", strconv.FormatUint(s.hist.Count, 10))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample appends one exposition line; extra is an additional raw
// label pair (the histogram le) merged after the series labels.
func writeSample(b *strings.Builder, name, labels, extra, value string) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// PromHandler serves the registry in Prometheus text format — mount it
// at /metrics/prom (the serve layer and the debug server both do). Each
// scrape refreshes the Go runtime metrics (go_goroutines, go_heap_bytes,
// go_gc_pause_us, …) first, so they export without a history sampler
// running.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r.SampleRuntime()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w) // client gone; nothing useful to do
	})
}
