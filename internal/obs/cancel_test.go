package obs

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestWatchCancelNilForUncancelable(t *testing.T) {
	if c := WatchCancel(nil); c != nil {
		t.Fatal("WatchCancel(nil) must return nil")
	}
	if c := WatchCancel(context.Background()); c != nil {
		t.Fatal("WatchCancel(Background) must return nil — Done() is nil")
	}
	var nilClock *CancelClock
	if got := nilClock.Latency(); got != 0 {
		t.Fatalf("nil clock Latency = %v, want 0", got)
	}
	nilClock.Stop() // must not panic
}

func TestWatchCancelMeasuresLatency(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	clk := WatchCancel(ctx)
	if clk == nil {
		t.Fatal("cancelable context must get a clock")
	}
	defer clk.Stop()
	if got := clk.Latency(); got != 0 {
		t.Fatalf("Latency before firing = %v, want 0", got)
	}
	cancel()
	// AfterFunc runs async; wait for the timestamp to land.
	deadline := time.Now().Add(time.Second)
	for clk.Latency() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("clock never observed the cancel")
		}
		time.Sleep(time.Millisecond)
	}
	if lat := clk.Latency(); lat <= 0 || lat > time.Second {
		t.Fatalf("Latency = %v, want a small positive duration", lat)
	}
}

func TestCanceledEventAggregates(t *testing.T) {
	r := NewRegistry()
	r.Emit(Canceled{Phase: "train", Done: 3, Total: 10, Reason: "context canceled", Latency: 5 * time.Millisecond})
	r.Emit(Canceled{Phase: "train", Done: 1, Total: 10, Reason: "context canceled"})
	snap := r.Snapshot()
	if got := fmt.Sprint(snap["cancel.train"]); got != "2" {
		t.Fatalf("cancel.train = %v, want 2", got)
	}
	if _, ok := snap["cancel.train.latency_us"]; !ok {
		t.Fatalf("missing cancel latency histogram; snapshot: %v", snap)
	}
}
