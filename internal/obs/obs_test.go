package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"
)

// collector is a threadsafe test observer.
type collector struct {
	mu     sync.Mutex
	events []Event
}

func (c *collector) Emit(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func (c *collector) all() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{math.Inf(-1), 0},
		{-3, 0},
		{0, 0},
		{0.999, 0},
		{1, 1}, // [1, 2)
		{1.999, 1},
		{2, 2}, // [2, 4)
		{3.999, 2},
		{4, 3},
		{1023.9, 10},
		{1024, 11},
		{math.Ldexp(1, NumBuckets-2) - 1, NumBuckets - 2}, // last finite bucket
		{math.Ldexp(1, NumBuckets-2), NumBuckets - 1},     // overflow bucket
		{1e300, NumBuckets - 1},
		{math.Inf(1), NumBuckets - 1},
		{math.NaN(), 0},
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.want {
			t.Errorf("BucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must land strictly below its bucket's upper bound and
	// (for buckets > 0) at or above the previous bound.
	for _, v := range []float64{0.5, 1, 1.5, 2, 7, 100, 1 << 20, 1 << 30} {
		i := BucketIndex(v)
		if v >= BucketUpper(i) {
			t.Errorf("value %v in bucket %d breaches upper bound %v", v, i, BucketUpper(i))
		}
		if i > 0 && v < BucketUpper(i-1) {
			t.Errorf("value %v in bucket %d is below lower bound %v", v, i, BucketUpper(i-1))
		}
	}
}

func TestBucketUpperPanics(t *testing.T) {
	for _, i := range []int{-1, NumBuckets} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BucketUpper(%d) did not panic", i)
				}
			}()
			BucketUpper(i)
		}()
	}
}

func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 16, 2000
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	const goroutines, perG = 8, 1000
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(float64(j % 64))
			}
		}(i)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	var bucketTotal uint64
	for _, b := range h.Buckets() {
		bucketTotal += b
	}
	if bucketTotal != goroutines*perG {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, goroutines*perG)
	}
	wantSum := 0.0
	for j := 0; j < perG; j++ {
		wantSum += float64(j % 64)
	}
	wantSum *= goroutines
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramMerge(t *testing.T) {
	var h Histogram
	h.Observe(3)
	var batch [NumBuckets]uint64
	batch[BucketIndex(5)] = 2
	batch[BucketIndex(100)] = 1
	h.Merge(batch, 110)
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got != 113 {
		t.Fatalf("sum = %v, want 113", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		SpanStart{ID: 1, Span: "train"},
		SpanStart{ID: 2, Parent: 1, Span: "module1.extract"},
		SpanEnd{ID: 2, Parent: 1, Span: "module1.extract", Elapsed: 42 * time.Millisecond},
		IterationEnd{Iter: 3, Loss: 0.5, NoisyLoss: 0.6, GradNorm: 1.25, ClipFraction: 0.75, EpsilonSpent: 2.5},
		MCBatchDone{Model: "ic", Rounds: 100, MeanSpread: 7.5, Elapsed: time.Second, SimsPerSec: 100},
		SeedSelected{K: 2, Node: 17, MarginalGain: 3.5, Evaluations: 40, LookupsSaved: 360},
		ExtractionDone{Stage: "scs", Subgraphs: 12, Walks: 30, MaxOccurrence: 4},
		ParallelFor{Site: "train.dpsgd", Workers: 4, Tasks: 64, Chunks: 16, Imbalance: 0.25, Elapsed: time.Millisecond},
		CheckpointSaved{Iter: 10, Path: "ckpt-00000010.ckpt", Bytes: 4096, Elapsed: 3 * time.Millisecond},
		CheckpointResumed{Iter: 10, Path: "ckpt-00000010.ckpt", RNGDraws: 12345},
		CheckpointRejected{Path: "ckpt-00000012.ckpt", Reason: "truncated"},
		SpanEnd{ID: 1, Span: "train", Elapsed: time.Second},
	}
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	var decoded []Event
	for sc.Scan() {
		// Each line must be standalone valid JSON.
		var raw map[string]any
		if err := json.Unmarshal(sc.Bytes(), &raw); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		ev, ts, err := DecodeRecord(sc.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if ts.IsZero() {
			t.Fatal("zero timestamp")
		}
		decoded = append(decoded, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(events))
	}
	for i, want := range events {
		// DecodeRecord returns pointers; dereference for comparison.
		got := reflect.ValueOf(decoded[i]).Elem().Interface()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("event %d: got %+v, want %+v", i, got, want)
		}
		if decoded[i].EventKind() != want.EventKind() {
			t.Errorf("event %d kind: got %q want %q", i, decoded[i].EventKind(), want.EventKind())
		}
	}
}

func TestDecodeRecordUnknownKind(t *testing.T) {
	if _, _, err := DecodeRecord([]byte(`{"event":"nope","ts_unix_ns":1,"data":{}}`)); err == nil {
		t.Fatal("want error for unknown event kind")
	}
}

func TestSpanNesting(t *testing.T) {
	c := &collector{}
	root := StartSpan(c, "train")
	m1 := root.Child("module1")
	m1.End()
	m2 := root.Child("module2")
	m2.End()
	root.End()

	events := c.all()
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6", len(events))
	}
	open := map[uint64]SpanStart{}
	for _, e := range events {
		switch ev := e.(type) {
		case SpanStart:
			open[ev.ID] = ev
		case SpanEnd:
			st, ok := open[ev.ID]
			if !ok {
				t.Fatalf("SpanEnd %d without SpanStart", ev.ID)
			}
			if st.Parent != ev.Parent || st.Span != ev.Span {
				t.Fatalf("span %d start/end mismatch: %+v vs %+v", ev.ID, st, ev)
			}
			delete(open, ev.ID)
		}
	}
	if len(open) != 0 {
		t.Fatalf("unbalanced spans: %v", open)
	}
	// Children must reference the root's ID.
	rootStart := events[0].(SpanStart)
	for _, e := range events[1:] {
		if st, ok := e.(SpanStart); ok && st.Parent != rootStart.ID {
			t.Fatalf("child %q parent = %d, want %d", st.Span, st.Parent, rootStart.ID)
		}
	}
}

func TestNilSpanAndEmit(t *testing.T) {
	// All no-op paths must be safe on nil receivers/observers.
	s := StartSpan(nil, "x")
	if s != nil {
		t.Fatal("StartSpan(nil) should return nil")
	}
	s.Child("y").End()
	s.End()
	Emit(nil, IterationEnd{Iter: 1})

	if n := testing.AllocsPerRun(200, func() {
		Emit(nil, IterationEnd{Iter: 2, Loss: 0.1})
		StartSpan(nil, "z").End()
	}); n != 0 {
		t.Fatalf("nil-observer emit allocates %v times", n)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) should be nil")
	}
	c := &collector{}
	if got := Multi(nil, c); got != Observer(c) {
		t.Fatal("Multi with one live observer should return it directly")
	}
	c2 := &collector{}
	m := Multi(c, c2)
	m.Emit(IterationEnd{Iter: 7})
	if len(c.all()) != 1 || len(c2.all()) != 1 {
		t.Fatal("fan-out did not reach both observers")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Emit(SpanStart{ID: 1, Span: "train"})
	r.Emit(SpanEnd{ID: 1, Span: "train", Elapsed: 3 * time.Millisecond})
	r.Emit(IterationEnd{Iter: 0, Loss: 0.25, NoisyLoss: 0.5, GradNorm: 2, ClipFraction: 0.5, EpsilonSpent: 1.5})
	r.Emit(IterationEnd{Iter: 1, Loss: 0.2, NoisyLoss: 0.4, GradNorm: 3, ClipFraction: 0.25, EpsilonSpent: 2})
	r.Emit(MCBatchDone{Model: "ic", Rounds: 50, MeanSpread: 4, SimsPerSec: 1000})
	r.Emit(SeedSelected{K: 1, Node: 3, MarginalGain: 9, Evaluations: 10, LookupsSaved: 0})
	r.Emit(ExtractionDone{Stage: "scs", Subgraphs: 8, Walks: 20, MaxOccurrence: 4})

	if got := r.Counter("train.iterations").Value(); got != 2 {
		t.Fatalf("train.iterations = %d, want 2", got)
	}
	if got := r.Gauge("train.epsilon_spent").Value(); got != 2 {
		t.Fatalf("train.epsilon_spent = %v, want 2", got)
	}
	if got := r.Counter("diffusion.simulations").Value(); got != 50 {
		t.Fatalf("diffusion.simulations = %d, want 50", got)
	}
	// span.open is a gauge balancing starts against ends: one matched
	// pair nets to zero, and the closed counter records the completion.
	if got := r.Gauge("span.open").Value(); got != 0 {
		t.Fatalf("span.open = %v, want 0", got)
	}
	if got := r.Counter("span.closed").Value(); got != 1 {
		t.Fatalf("span.closed = %d, want 1", got)
	}
	if got := r.Histogram("train.grad_norm").Count(); got != 2 {
		t.Fatalf("train.grad_norm count = %d, want 2", got)
	}

	// The snapshot must serialize cleanly (it backs the expvar export).
	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("train.loss")) {
		t.Fatalf("snapshot JSON missing train.loss: %s", data)
	}
}

func TestRegistryPublish(t *testing.T) {
	r := NewRegistry()
	if err := r.Publish("obs_test_registry"); err != nil {
		t.Fatal(err)
	}
	if err := r.Publish("obs_test_registry"); err == nil {
		t.Fatal("duplicate Publish should error, not panic")
	}
}

func TestGaugeAddIncDec(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Add(2.5)
	g.Dec()
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}

	// Concurrent up/down movements must balance exactly (integer deltas
	// stay exact in float64).
	var c Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				c.Dec()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 0 {
		t.Fatalf("balanced inc/dec gauge = %v, want 0", got)
	}
}

func TestRegistryCheckpointEvents(t *testing.T) {
	r := NewRegistry()
	r.Emit(CheckpointSaved{Iter: 4, Path: "a", Bytes: 128, Elapsed: time.Millisecond})
	r.Emit(CheckpointSaved{Iter: 8, Path: "b", Bytes: 128, Elapsed: time.Millisecond})
	r.Emit(CheckpointRejected{Path: "b", Reason: "truncated"})
	r.Emit(CheckpointResumed{Iter: 4, Path: "a", RNGDraws: 99})
	if got := r.Counter("train.checkpoint.saved").Value(); got != 2 {
		t.Fatalf("saved counter = %d, want 2", got)
	}
	if got := r.Counter("train.checkpoint.rejected").Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	if got := r.Counter("train.checkpoint.resumed").Value(); got != 1 {
		t.Fatalf("resumed counter = %d, want 1", got)
	}
	if got := r.Gauge("train.checkpoint.iter").Value(); got != 4 {
		t.Fatalf("checkpoint iter gauge = %v, want 4 (resume overwrote)", got)
	}
	if got := r.Histogram("train.checkpoint.bytes").Count(); got != 2 {
		t.Fatalf("bytes histogram count = %d, want 2", got)
	}
}
