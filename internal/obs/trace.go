package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// Trace context. A trace is the set of spans (and journal records)
// produced on behalf of one logical request: one HTTP call into privimd,
// one CLI run, one async training job. The trace ID is minted at the
// boundary (HTTP middleware, cliutil.Stack, the job runner), carried
// through the pipeline via context.Context, and stamped on every
// SpanStart/SpanEnd event and every journal record — so a journal line
// or a /metrics sample can always be tied back to the request that
// caused it, across the HTTP → job → training → kernel boundary.

// spanKey and traceKey are the private context keys; distinct types keep
// them collision-proof against other packages' context values.
type (
	spanKey  struct{}
	traceKey struct{}
)

// NewTraceID mints a fresh 16-hex-char trace ID. IDs are random (not
// sequential) so traces from different processes — a CLI run and the
// daemon jobs it triggers — never collide in a shared journal store.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the OS entropy source is gone; fall
		// back to the span sequence so tracing degrades instead of dying.
		v := spanSeq.Add(1)
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether id is acceptable as a caller-supplied
// trace ID (an X-Privim-Trace request header): 1–64 characters drawn
// from [0-9a-zA-Z_-]. IDs minted by NewTraceID always pass.
func ValidTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// ContextWithSpan returns ctx carrying s as the current span, so
// downstream StartSpanCtx calls nest under it. A nil span returns ctx
// unchanged (keeping the unobserved path allocation-free).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the current span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ContextWithTrace returns ctx carrying a bare trace ID — for
// boundaries that have a trace but no live parent span (an HTTP
// middleware before any handler span, a recovered job resuming after
// the submitting request is long gone). Empty id returns ctx unchanged.
func ContextWithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFromContext returns the trace ID governing ctx: the current
// span's trace when one is present, the bare trace ID otherwise, or "".
func TraceFromContext(ctx context.Context) string {
	if s := SpanFromContext(ctx); s != nil {
		return s.Trace()
	}
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// StartSpanCtx opens a span positioned by ctx: a child of the context
// span when one is present (inheriting its trace and emitting to its
// observer), otherwise a root span on o in the context trace (minting a
// fresh trace ID when ctx carries none). Returns nil — a no-op span —
// when there is neither a context span nor a non-nil observer, so the
// unobserved path stays allocation-free.
func StartSpanCtx(ctx context.Context, o Observer, name string) *Span {
	if parent := SpanFromContext(ctx); parent != nil {
		return parent.Child(name)
	}
	if o == nil {
		return nil
	}
	return startRoot(o, name, TraceFromContext(ctx))
}
