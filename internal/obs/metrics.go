package obs

import (
	"math"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every histogram in this
// package. Bucket 0 holds values below 1 (including negatives); bucket i
// for 1 ≤ i ≤ NumBuckets−2 holds [2^(i−1), 2^i); the last bucket holds
// everything from 2^(NumBuckets−2) up (≈ 4.2M), wide enough for walk
// lengths, cascade sizes, gradient norms, and span microseconds alike.
const NumBuckets = 24

// BucketIndex maps a value to its log-scale bucket.
func BucketIndex(v float64) int {
	if v < 1 || math.IsNaN(v) {
		return 0
	}
	// Ilogb(v) = floor(log2(v)) for finite v ≥ 1, so [2^(i-1), 2^i)
	// lands in bucket i.
	i := math.Ilogb(v) + 1
	if i > NumBuckets-1 || i < 1 { // i < 1 guards Ilogb's ±Inf sentinels
		return NumBuckets - 1
	}
	return i
}

// BucketUpper returns the exclusive upper bound of bucket i (+Inf for
// the overflow bucket); it panics on out-of-range indices.
func BucketUpper(i int) float64 {
	switch {
	case i < 0 || i >= NumBuckets:
		panic("obs: bucket index out of range")
	case i == NumBuckets-1:
		return math.Inf(1)
	}
	return math.Ldexp(1, i) // 2^i; bucket 0's bound is 2^0 = 1
}

// BucketLower returns the inclusive lower bound of bucket i (0 for the
// underflow bucket); it panics on out-of-range indices.
func BucketLower(i int) float64 {
	if i == 0 {
		return 0
	}
	return BucketUpper(i - 1)
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 sample. Unlike Counter it may
// move in both directions: level-style metrics (in-flight jobs, queue
// depth, live ε) belong here, so monotonic counters stay monotonic.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by d (negative d moves it down), atomically with
// respect to concurrent Add/Inc/Dec/Set.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc moves the gauge up by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec moves the gauge down by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the last stored value (0 before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed log-scale-bucket histogram safe for concurrent
// observation.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.buckets[BucketIndex(v)].Add(1)
	h.count.Add(1)
	h.addSum(v)
}

func (h *Histogram) addSum(v float64) {
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Merge folds a pre-bucketed batch (as carried by MCBatchDone and
// ExtractionDone events) into the histogram. sum may be 0 when the
// producer only tracked buckets; Mean then underestimates accordingly.
func (h *Histogram) Merge(buckets [NumBuckets]uint64, sum float64) {
	var n uint64
	for i, b := range buckets {
		if b != 0 {
			h.buckets[i].Add(b)
			n += b
		}
	}
	h.count.Add(n)
	if sum != 0 {
		h.addSum(sum)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Buckets snapshots the bucket counts.
func (h *Histogram) Buckets() [NumBuckets]uint64 {
	var out [NumBuckets]uint64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation inside the log-scale bucket containing the target rank —
// the same estimator Prometheus' histogram_quantile applies to
// cumulative buckets. Accuracy is bounded by bucket width: exact at
// bucket boundaries, within a factor of 2 anywhere (bucket i spans
// [2^(i−1), 2^i)). Values in the overflow bucket report its lower bound.
// An empty histogram reports 0; q is clamped to [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	return quantile(h.Buckets(), q)
}

// quantile is the bucket-interpolation shared by Quantile and Snapshot
// (Snapshot reads the buckets once for all three percentiles).
func quantile(buckets [NumBuckets]uint64, q float64) float64 {
	var total uint64
	for _, b := range buckets {
		total += b
	}
	if total == 0 {
		return 0
	}
	switch {
	case q < 0 || math.IsNaN(q):
		q = 0
	case q > 1:
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1 // the lowest observation is the 0-quantile
	}
	var cum float64
	for i, b := range buckets {
		if b == 0 {
			continue
		}
		next := cum + float64(b)
		if rank <= next {
			lo, hi := BucketLower(i), BucketUpper(i)
			if math.IsInf(hi, 1) {
				return lo // overflow bucket has no width to interpolate in
			}
			return lo + (hi-lo)*(rank-cum)/float64(b)
		}
		cum = next
	}
	// Unreachable: rank ≤ total ≤ cum after the loop.
	return BucketLower(NumBuckets - 1)
}

// HistogramSnapshot is the JSON-friendly view Registry.Snapshot exports.
// P50/P95/P99 are Quantile estimates (see Quantile for accuracy bounds).
type HistogramSnapshot struct {
	Count   uint64             `json:"count"`
	Sum     float64            `json:"sum"`
	Mean    float64            `json:"mean"`
	P50     float64            `json:"p50"`
	P95     float64            `json:"p95"`
	P99     float64            `json:"p99"`
	Buckets [NumBuckets]uint64 `json:"buckets"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	buckets := h.Buckets()
	return HistogramSnapshot{
		Count:   h.Count(),
		Sum:     h.Sum(),
		Mean:    h.Mean(),
		P50:     quantile(buckets, 0.50),
		P95:     quantile(buckets, 0.95),
		P99:     quantile(buckets, 0.99),
		Buckets: buckets,
	}
}
