package obs

import (
	"math"
	"runtime/metrics"
	"sync"
)

// Runtime metric names as they appear in the registry. The Prometheus
// writer's dot→underscore mapping exports them as go_goroutines,
// go_heap_bytes, go_gc_cycles, go_gc_pause_us, go_sched_latency_us.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPause    = "/sched/pauses/total/gc:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

// runtimeStats adapts runtime/metrics into registry metrics. The sample
// slice and the Float64Histogram buffers inside it are reused by
// metrics.Read across calls, and the cumulative→delta bookkeeping uses
// fixed scratch, so a steady-state sample allocates nothing — the same
// invariant the history sampler tick holds.
type runtimeStats struct {
	mu      sync.Mutex
	samples []metrics.Sample

	goroutines *Gauge
	heapBytes  *Gauge
	gcCycles   *Gauge
	gcPause    *Histogram // microseconds per GC stop-the-world pause
	schedLat   *Histogram // microseconds a runnable goroutine waited

	prevGCPause  []uint64
	prevSchedLat []uint64
	scratch      [NumBuckets]uint64
}

func newRuntimeStats(r *Registry) *runtimeStats {
	return &runtimeStats{
		samples: []metrics.Sample{
			{Name: rmGoroutines},
			{Name: rmHeapBytes},
			{Name: rmGCCycles},
			{Name: rmGCPause},
			{Name: rmSchedLat},
		},
		goroutines: r.Gauge("go.goroutines"),
		heapBytes:  r.Gauge("go.heap_bytes"),
		gcCycles:   r.Gauge("go.gc_cycles"),
		gcPause:    r.Histogram("go.gc_pause_us"),
		schedLat:   r.Histogram("go.sched_latency_us"),
	}
}

// SampleRuntime reads the Go runtime's own metrics (goroutine count,
// live heap, GC cycles/pauses, scheduler latency) into the registry, so
// both the Prometheus endpoint and the history sampler see them next to
// the application metrics. Callers sample on their own cadence (per
// scrape, per history tick); concurrent calls from a shared registry's
// sampler and Prometheus scrapes serialize on an internal mutex.
func (r *Registry) SampleRuntime() {
	r.rtOnce.Do(func() { r.rt = newRuntimeStats(r) })
	r.rt.sample()
}

func (s *runtimeStats) sample() {
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Read(s.samples)
	for i := range s.samples {
		v := &s.samples[i].Value
		switch s.samples[i].Name {
		case rmGoroutines:
			if v.Kind() == metrics.KindUint64 {
				s.goroutines.Set(float64(v.Uint64()))
			}
		case rmHeapBytes:
			if v.Kind() == metrics.KindUint64 {
				s.heapBytes.Set(float64(v.Uint64()))
			}
		case rmGCCycles:
			if v.Kind() == metrics.KindUint64 {
				s.gcCycles.Set(float64(v.Uint64()))
			}
		case rmGCPause:
			if v.Kind() == metrics.KindFloat64Histogram {
				s.deltaMerge(s.gcPause, v.Float64Histogram(), &s.prevGCPause)
			}
		case rmSchedLat:
			if v.Kind() == metrics.KindFloat64Histogram {
				s.deltaMerge(s.schedLat, v.Float64Histogram(), &s.prevSchedLat)
			}
		}
	}
}

// deltaMerge folds the growth of a cumulative runtime histogram since
// the previous sample into dst, re-bucketing seconds into the package's
// log-scale microsecond buckets. The first sample merges the whole
// process-lifetime histogram (prev starts at zero).
func (s *runtimeStats) deltaMerge(dst *Histogram, h *metrics.Float64Histogram, prev *[]uint64) {
	if h == nil || len(h.Buckets) != len(h.Counts)+1 {
		return
	}
	if len(*prev) != len(h.Counts) {
		*prev = make([]uint64, len(h.Counts))
	}
	var sum float64
	changed := false
	for i, c := range h.Counts {
		d := c - (*prev)[i]
		if d == 0 {
			continue
		}
		(*prev)[i] = c
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		var rep float64 // representative seconds for the bucket
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			rep = 0
		case math.IsInf(lo, -1):
			rep = hi
		case math.IsInf(hi, 1):
			rep = lo
		default:
			rep = (lo + hi) / 2
		}
		us := rep * 1e6
		s.scratch[BucketIndex(us)] += d
		sum += us * float64(d)
		changed = true
	}
	if changed {
		dst.Merge(s.scratch, sum)
		for i := range s.scratch {
			s.scratch[i] = 0
		}
	}
}
