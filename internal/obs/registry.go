package obs

import (
	"expvar"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// MetricKind discriminates the three metric types a Registry holds.
type MetricKind uint8

// The metric kinds, in the order Entries sorts equal names (names are
// unique per kind map, so ties only matter for a name registered as two
// kinds — both are listed).
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// String names the kind for diagnostics and JSON.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Entry is one named metric in the registry's stable iteration order.
// Exactly one of Counter/Gauge/Histogram is non-nil, per Kind. Handles
// are live: reading them later sees the current value, so consumers (the
// history sampler) can cache an Entries snapshot and re-read cheaply.
type Entry struct {
	Name      string
	Kind      MetricKind
	Counter   *Counter
	Gauge     *Gauge
	Histogram *Histogram
}

// Registry is a named-metric store and an Observer that aggregates the
// event stream into live counters, gauges, and histograms — the
// in-memory snapshot a debug endpoint exports while a run is in flight.
//
// Metric handles are get-or-create and stable, so hot paths can cache
// them; Snapshot is cheap enough to serve per scrape. Iteration (Entries,
// Snapshot) is sorted by name and stable across runs — labeled gauges
// included — so history series keys and exported JSON are deterministic
// across restarts, not subject to map order.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// entries is every metric in sorted-name order, maintained on
	// creation; version bumps with each insertion so consumers can cache.
	entries []Entry
	version atomic.Uint64

	rtOnce sync.Once
	rt     *runtimeStats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// insertLocked adds e to the sorted entry list and bumps the version.
func (r *Registry) insertLocked(e Entry) {
	i := sort.Search(len(r.entries), func(i int) bool {
		if r.entries[i].Name != e.Name {
			return r.entries[i].Name > e.Name
		}
		return r.entries[i].Kind >= e.Kind
	})
	r.entries = append(r.entries, Entry{})
	copy(r.entries[i+1:], r.entries[i:])
	r.entries[i] = e
	r.version.Add(1)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.insertLocked(Entry{Name: name, Kind: KindCounter, Counter: c})
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.insertLocked(Entry{Name: name, Kind: KindGauge, Gauge: g})
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
		r.insertLocked(Entry{Name: name, Kind: KindHistogram, Histogram: h})
	}
	return h
}

// Version counts metric insertions. A consumer holding an Entries
// snapshot needs to refresh only when Version has moved — in steady
// state (no new metric names) the registry's shape is immutable.
func (r *Registry) Version() uint64 { return r.version.Load() }

// Entries appends every metric to buf[:0] in sorted-name order and
// returns it. Passing the previous result back avoids allocation once
// the capacity has grown to fit — the history sampler's zero-alloc tick
// depends on this.
func (r *Registry) Entries(buf []Entry) []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append(buf[:0], r.entries...)
}

// Emit implements Observer: every event updates a standard set of
// metrics, keyed by subsystem ("train.*", "diffusion.*", "im.*",
// "sampling.*", "span.*").
func (r *Registry) Emit(e Event) {
	switch ev := e.(type) {
	case SpanStart:
		r.Gauge("span.open").Inc()
	case SpanEnd:
		r.Gauge("span.open").Dec()
		r.Counter("span.closed").Inc()
		r.Histogram("span." + ev.Span + ".us").Observe(float64(ev.Elapsed) / float64(time.Microsecond))
	case SpanSlow:
		r.Counter("span.slow").Inc()
		r.Histogram("span.slow.us").Observe(float64(ev.Elapsed) / float64(time.Microsecond))
	case IterationEnd:
		r.Counter("train.iterations").Inc()
		r.Gauge("train.loss").Set(ev.Loss)
		r.Gauge("train.noisy_loss").Set(ev.NoisyLoss)
		r.Gauge("train.epsilon_spent").Set(ev.EpsilonSpent)
		r.Gauge("train.clip_fraction").Set(ev.ClipFraction)
		r.Histogram("train.grad_norm").Observe(ev.GradNorm)
	case MCBatchDone:
		r.Counter("diffusion.batches").Inc()
		r.Counter("diffusion.simulations").Add(int64(ev.Rounds))
		r.Gauge("diffusion.sims_per_sec").Set(ev.SimsPerSec)
		r.Gauge("diffusion.mean_spread").Set(ev.MeanSpread)
		r.Histogram("diffusion.cascade_size").Merge(ev.SizeBuckets, ev.MeanSpread*float64(ev.Rounds))
	case SeedSelected:
		r.Counter("im.seeds_selected").Inc()
		r.Gauge("im.marginal_gain").Set(ev.MarginalGain)
		r.Gauge("im.evaluations").Set(float64(ev.Evaluations))
		r.Gauge("im.lookups_saved").Set(float64(ev.LookupsSaved))
	case ParallelFor:
		r.Counter("parallel.calls").Inc()
		r.Counter("parallel.tasks").Add(int64(ev.Tasks))
		r.Gauge("parallel." + ev.Site + ".workers").Set(float64(ev.Workers))
		r.Gauge("parallel." + ev.Site + ".imbalance").Set(ev.Imbalance)
		r.Histogram("parallel." + ev.Site + ".us").Observe(float64(ev.Elapsed) / float64(time.Microsecond))
	case CheckpointSaved:
		r.Counter("train.checkpoint.saved").Inc()
		r.Gauge("train.checkpoint.iter").Set(float64(ev.Iter))
		r.Histogram("train.checkpoint.bytes").Observe(float64(ev.Bytes))
		r.Histogram("train.checkpoint.save_us").Observe(float64(ev.Elapsed) / float64(time.Microsecond))
	case CheckpointResumed:
		r.Counter("train.checkpoint.resumed").Inc()
		r.Gauge("train.checkpoint.iter").Set(float64(ev.Iter))
	case CheckpointRejected:
		r.Counter("train.checkpoint.rejected").Inc()
	case LedgerOp:
		r.Counter("ledger." + ev.Op).Inc()
		// Per-tenant budget position as labeled gauges (PR 6 Prometheus
		// labels), so operators can alert on a tenant nearing exhaustion.
		r.Gauge(Labeled("ledger.epsilon_committed", "tenant", ev.Tenant)).Set(ev.Committed)
		r.Gauge(Labeled("ledger.epsilon_reserved", "tenant", ev.Tenant)).Set(ev.Reserved)
	case Canceled:
		r.Counter("cancel." + ev.Phase).Inc()
		if ev.Latency > 0 {
			r.Histogram("cancel." + ev.Phase + ".latency_us").Observe(float64(ev.Latency) / float64(time.Microsecond))
		}
	case AlertFired:
		r.Counter("alert.fired").Inc()
		r.Gauge("alert.active").Inc()
	case AlertResolved:
		r.Counter("alert.resolved").Inc()
		r.Gauge("alert.active").Dec()
	case ExtractionDone:
		r.Counter("sampling.extractions").Inc()
		r.Counter("sampling.subgraphs").Add(int64(ev.Subgraphs))
		r.Counter("sampling.walks").Add(int64(ev.Walks))
		r.Gauge("sampling.max_occurrence").Set(float64(ev.MaxOccurrence))
		r.Histogram("sampling.walk_len").Merge(ev.WalkLenBuckets, 0)
		r.Histogram("sampling.occurrences").Merge(ev.OccurrenceBuckets, 0)
	}
}

// Snapshot returns a JSON-serializable view of every metric, built in
// the registry's sorted iteration order.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.entries))
	for _, e := range r.entries {
		switch e.Kind {
		case KindCounter:
			out[e.Name] = e.Counter.Value()
		case KindGauge:
			out[e.Name] = e.Gauge.Value()
		case KindHistogram:
			out[e.Name] = e.Histogram.Snapshot()
		}
	}
	return out
}

// Publish exports the registry's live snapshot under name in the
// process-wide expvar namespace (served at /debug/vars by the debug
// endpoint). Publishing an already-taken name is an error rather than
// the panic expvar.Publish raises.
func (r *Registry) Publish(name string) error {
	if expvar.Get(name) != nil {
		return fmt.Errorf("obs: expvar name %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return nil
}
