package obs

import (
	"expvar"
	"fmt"
	"sync"
	"time"
)

// Registry is a named-metric store and an Observer that aggregates the
// event stream into live counters, gauges, and histograms — the
// in-memory snapshot a debug endpoint exports while a run is in flight.
//
// Metric handles are get-or-create and stable, so hot paths can cache
// them; Snapshot is cheap enough to serve per scrape.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Emit implements Observer: every event updates a standard set of
// metrics, keyed by subsystem ("train.*", "diffusion.*", "im.*",
// "sampling.*", "span.*").
func (r *Registry) Emit(e Event) {
	switch ev := e.(type) {
	case SpanStart:
		r.Gauge("span.open").Inc()
	case SpanEnd:
		r.Gauge("span.open").Dec()
		r.Counter("span.closed").Inc()
		r.Histogram("span." + ev.Span + ".us").Observe(float64(ev.Elapsed) / float64(time.Microsecond))
	case SpanSlow:
		r.Counter("span.slow").Inc()
		r.Histogram("span.slow.us").Observe(float64(ev.Elapsed) / float64(time.Microsecond))
	case IterationEnd:
		r.Counter("train.iterations").Inc()
		r.Gauge("train.loss").Set(ev.Loss)
		r.Gauge("train.noisy_loss").Set(ev.NoisyLoss)
		r.Gauge("train.epsilon_spent").Set(ev.EpsilonSpent)
		r.Gauge("train.clip_fraction").Set(ev.ClipFraction)
		r.Histogram("train.grad_norm").Observe(ev.GradNorm)
	case MCBatchDone:
		r.Counter("diffusion.batches").Inc()
		r.Counter("diffusion.simulations").Add(int64(ev.Rounds))
		r.Gauge("diffusion.sims_per_sec").Set(ev.SimsPerSec)
		r.Gauge("diffusion.mean_spread").Set(ev.MeanSpread)
		r.Histogram("diffusion.cascade_size").Merge(ev.SizeBuckets, ev.MeanSpread*float64(ev.Rounds))
	case SeedSelected:
		r.Counter("im.seeds_selected").Inc()
		r.Gauge("im.marginal_gain").Set(ev.MarginalGain)
		r.Gauge("im.evaluations").Set(float64(ev.Evaluations))
		r.Gauge("im.lookups_saved").Set(float64(ev.LookupsSaved))
	case ParallelFor:
		r.Counter("parallel.calls").Inc()
		r.Counter("parallel.tasks").Add(int64(ev.Tasks))
		r.Gauge("parallel." + ev.Site + ".workers").Set(float64(ev.Workers))
		r.Gauge("parallel." + ev.Site + ".imbalance").Set(ev.Imbalance)
		r.Histogram("parallel." + ev.Site + ".us").Observe(float64(ev.Elapsed) / float64(time.Microsecond))
	case CheckpointSaved:
		r.Counter("train.checkpoint.saved").Inc()
		r.Gauge("train.checkpoint.iter").Set(float64(ev.Iter))
		r.Histogram("train.checkpoint.bytes").Observe(float64(ev.Bytes))
		r.Histogram("train.checkpoint.save_us").Observe(float64(ev.Elapsed) / float64(time.Microsecond))
	case CheckpointResumed:
		r.Counter("train.checkpoint.resumed").Inc()
		r.Gauge("train.checkpoint.iter").Set(float64(ev.Iter))
	case CheckpointRejected:
		r.Counter("train.checkpoint.rejected").Inc()
	case LedgerOp:
		r.Counter("ledger." + ev.Op).Inc()
		// Per-tenant budget position as labeled gauges (PR 6 Prometheus
		// labels), so operators can alert on a tenant nearing exhaustion.
		r.Gauge(Labeled("ledger.epsilon_committed", "tenant", ev.Tenant)).Set(ev.Committed)
		r.Gauge(Labeled("ledger.epsilon_reserved", "tenant", ev.Tenant)).Set(ev.Reserved)
	case Canceled:
		r.Counter("cancel." + ev.Phase).Inc()
		if ev.Latency > 0 {
			r.Histogram("cancel." + ev.Phase + ".latency_us").Observe(float64(ev.Latency) / float64(time.Microsecond))
		}
	case ExtractionDone:
		r.Counter("sampling.extractions").Inc()
		r.Counter("sampling.subgraphs").Add(int64(ev.Subgraphs))
		r.Counter("sampling.walks").Add(int64(ev.Walks))
		r.Gauge("sampling.max_occurrence").Set(float64(ev.MaxOccurrence))
		r.Histogram("sampling.walk_len").Merge(ev.WalkLenBuckets, 0)
		r.Histogram("sampling.occurrences").Merge(ev.OccurrenceBuckets, 0)
	}
}

// Snapshot returns a JSON-serializable view of every metric.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// Publish exports the registry's live snapshot under name in the
// process-wide expvar namespace (served at /debug/vars by the debug
// endpoint). Publishing an already-taken name is an error rather than
// the panic expvar.Publish raises.
func (r *Registry) Publish(name string) error {
	if expvar.Get(name) != nil {
		return fmt.Errorf("obs: expvar name %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return nil
}
