package obs

import (
	"sync/atomic"
	"time"
)

// spanSeq issues process-unique span IDs (starting at 1; 0 means "no
// parent").
var spanSeq atomic.Uint64

// Span is a running timed section. Spans nest explicitly via Child, so
// concurrent children of one parent are well-defined without any
// goroutine-local state. Every span belongs to a trace: roots mint (or
// inherit via StartSpanCtx) a trace ID, children share their parent's,
// and both SpanStart and SpanEnd events carry it. A nil *Span (what
// StartSpan returns for a nil observer) is a valid no-op receiver for
// Child, End, Trace, and Observer, which keeps instrumentation sites
// branch-free.
type Span struct {
	o      Observer
	id     uint64
	parent uint64
	trace  string
	name   string
	start  time.Time
}

// StartSpan opens a root span on o in a freshly minted trace, emitting
// SpanStart. Returns nil (a no-op span) when o is nil. To join an
// existing trace, use StartSpanCtx.
func StartSpan(o Observer, name string) *Span {
	if o == nil {
		return nil
	}
	return startRoot(o, name, "")
}

// startRoot opens a root span in the given trace ("" mints a new one).
func startRoot(o Observer, name, trace string) *Span {
	if trace == "" {
		trace = NewTraceID()
	}
	s := &Span{o: o, id: spanSeq.Add(1), trace: trace, name: name, start: time.Now()}
	o.Emit(SpanStart{ID: s.id, Trace: trace, Span: name})
	return s
}

// Child opens a nested span under s, in s's trace.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{o: s.o, id: spanSeq.Add(1), parent: s.id, trace: s.trace, name: name, start: time.Now()}
	s.o.Emit(SpanStart{ID: c.id, Parent: s.id, Trace: s.trace, Span: name})
	return c
}

// End closes the span, emitting SpanEnd with the elapsed wall time.
// Safe to call on a nil span; calling End twice emits twice (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.o.Emit(SpanEnd{ID: s.id, Parent: s.parent, Trace: s.trace, Span: s.name, Elapsed: time.Since(s.start)})
}

// Trace returns the span's trace ID ("" for a nil span).
func (s *Span) Trace() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// Observer returns the observer the span emits to (nil for a nil span),
// so helpers holding only a span — parallel.ForObserved, for example —
// can emit sibling events into the same stream.
func (s *Span) Observer() Observer {
	if s == nil {
		return nil
	}
	return s.o
}
