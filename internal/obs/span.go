package obs

import (
	"sync/atomic"
	"time"
)

// spanSeq issues process-unique span IDs (starting at 1; 0 means "no
// parent").
var spanSeq atomic.Uint64

// Span is a running timed section. Spans nest explicitly via Child, so
// concurrent children of one parent are well-defined without any
// goroutine-local state. A nil *Span (what StartSpan returns for a nil
// observer) is a valid no-op receiver for Child and End, which keeps
// instrumentation sites branch-free.
type Span struct {
	o      Observer
	id     uint64
	parent uint64
	name   string
	start  time.Time
}

// StartSpan opens a root span on o, emitting SpanStart. Returns nil
// (a no-op span) when o is nil.
func StartSpan(o Observer, name string) *Span {
	if o == nil {
		return nil
	}
	s := &Span{o: o, id: spanSeq.Add(1), name: name, start: time.Now()}
	o.Emit(SpanStart{ID: s.id, Span: name})
	return s
}

// Child opens a nested span under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{o: s.o, id: spanSeq.Add(1), parent: s.id, name: name, start: time.Now()}
	s.o.Emit(SpanStart{ID: c.id, Parent: s.id, Span: name})
	return c
}

// End closes the span, emitting SpanEnd with the elapsed wall time.
// Safe to call on a nil span; calling End twice emits twice (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.o.Emit(SpanEnd{ID: s.id, Parent: s.parent, Span: s.name, Elapsed: time.Since(s.start)})
}
