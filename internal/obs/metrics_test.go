package obs

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestQuantileMonotoneUnderConcurrentObserve drives Observe from many
// goroutines while a reader repeatedly takes p50/p95/p99 from a single
// bucket snapshot — the history sampler's access pattern. Each triple
// must be internally monotone (p50 ≤ p95 ≤ p99) no matter how the
// writers interleave; run under -race this also exercises the atomic
// bucket/count/sum paths.
func TestQuantileMonotoneUnderConcurrentObserve(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(rng.Float64() * 1e6)
				}
			}
		}(int64(w + 1))
	}
	for i := 0; i < 2000; i++ {
		buckets := h.Buckets()
		p50 := quantile(buckets, 0.50)
		p95 := quantile(buckets, 0.95)
		p99 := quantile(buckets, 0.99)
		if !(p50 <= p95 && p95 <= p99) {
			close(stop)
			wg.Wait()
			t.Fatalf("iteration %d: quantiles not monotone: p50=%v p95=%v p99=%v", i, p50, p95, p99)
		}
		// Quantile (fresh snapshot per call) must also stay in-range even
		// while the buckets move underneath.
		if v := h.Quantile(0.5); v < 0 {
			close(stop)
			wg.Wait()
			t.Fatalf("iteration %d: Quantile(0.5) = %v", i, v)
		}
	}
	close(stop)
	wg.Wait()
}

// TestRegistryEntriesSortedStable pins the iteration contract the
// history sampler and Snapshot depend on: Entries is sorted by name —
// labeled gauges included — and identical across calls regardless of
// creation order, so series keys are deterministic across restarts.
func TestRegistryEntriesSortedStable(t *testing.T) {
	names := []string{
		Labeled("ledger.epsilon_committed", "tenant", "zeta"),
		"train.loss",
		Labeled("ledger.epsilon_committed", "tenant", "alpha"),
		"a.first",
		"zz.last",
	}
	// Two registries, metrics created in opposite orders.
	r1, r2 := NewRegistry(), NewRegistry()
	for _, n := range names {
		r1.Gauge(n)
	}
	for i := len(names) - 1; i >= 0; i-- {
		r2.Gauge(names[i])
	}
	e1 := r1.Entries(nil)
	e2 := r2.Entries(nil)
	if len(e1) != len(names) || len(e2) != len(names) {
		t.Fatalf("entry counts %d/%d, want %d", len(e1), len(e2), len(names))
	}
	for i := range e1 {
		if e1[i].Name != e2[i].Name {
			t.Fatalf("iteration order depends on creation order: %q vs %q at %d", e1[i].Name, e2[i].Name, i)
		}
	}
	if !sort.SliceIsSorted(e1, func(i, j int) bool { return e1[i].Name < e1[j].Name }) {
		t.Fatalf("Entries not sorted: %v", entryNames(e1))
	}

	// Mixed kinds under distinct names stay sorted too.
	r1.Counter("b.count")
	r1.Histogram("b.hist")
	all := r1.Entries(nil)
	if !sort.SliceIsSorted(all, func(i, j int) bool {
		if all[i].Name != all[j].Name {
			return all[i].Name < all[j].Name
		}
		return all[i].Kind < all[j].Kind
	}) {
		t.Fatalf("mixed-kind Entries not sorted: %v", entryNames(all))
	}
}

func entryNames(es []Entry) string {
	var b strings.Builder
	for i, e := range es {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.Name)
	}
	return b.String()
}

// TestRegistryVersionAndEntriesReuse checks the change-detection /
// buffer-reuse contract the sampler's zero-alloc tick builds on.
func TestRegistryVersionAndEntriesReuse(t *testing.T) {
	r := NewRegistry()
	v0 := r.Version()
	r.Counter("c")
	if r.Version() == v0 {
		t.Fatal("creating a metric did not move Version")
	}
	v1 := r.Version()
	r.Counter("c") // get, not create
	if r.Version() != v1 {
		t.Fatal("re-resolving an existing metric moved Version")
	}
	buf := r.Entries(nil)
	r.Gauge("g")
	buf2 := r.Entries(buf)
	if len(buf2) != 2 {
		t.Fatalf("Entries after growth = %d, want 2", len(buf2))
	}
	// Live handles: the entry sees updates made through the original.
	r.Counter("c").Add(7)
	for _, e := range buf2 {
		if e.Kind == KindCounter && e.Counter.Value() != 7 {
			t.Fatalf("entry handle stale: %d", e.Counter.Value())
		}
	}
}

// TestRegistryAlertEvents checks the aggregation of alert lifecycle
// events into alert.fired / alert.resolved / alert.active.
func TestRegistryAlertEvents(t *testing.T) {
	r := NewRegistry()
	r.Emit(AlertFired{Rule: "r1", Metric: "m", Value: 2, Threshold: 1})
	r.Emit(AlertFired{Rule: "r2", Metric: "m", Value: 3, Threshold: 1})
	if got := r.Gauge("alert.active").Value(); got != 2 {
		t.Fatalf("alert.active = %v, want 2", got)
	}
	r.Emit(AlertResolved{Rule: "r1", Metric: "m", Value: 0})
	if got := r.Gauge("alert.active").Value(); got != 1 {
		t.Fatalf("alert.active after resolve = %v, want 1", got)
	}
	if got := r.Counter("alert.fired").Value(); got != 2 {
		t.Fatalf("alert.fired = %d, want 2", got)
	}
	if got := r.Counter("alert.resolved").Value(); got != 1 {
		t.Fatalf("alert.resolved = %d, want 1", got)
	}
}

// TestSampleRuntime checks the runtime/metrics bridge populates the go.*
// metrics with sane values.
func TestSampleRuntime(t *testing.T) {
	r := NewRegistry()
	r.SampleRuntime()
	if got := r.Gauge("go.goroutines").Value(); got < 1 {
		t.Fatalf("go.goroutines = %v, want ≥ 1", got)
	}
	if got := r.Gauge("go.heap_bytes").Value(); got <= 0 {
		t.Fatalf("go.heap_bytes = %v, want > 0", got)
	}
	// Histograms exist (they may be empty if no GC ran yet).
	found := 0
	for _, e := range r.Entries(nil) {
		switch e.Name {
		case "go.gc_pause_us", "go.sched_latency_us":
			if e.Kind != KindHistogram {
				t.Fatalf("%s registered as %v, want histogram", e.Name, e.Kind)
			}
			found++
		}
	}
	if found != 2 {
		t.Fatalf("runtime histograms registered = %d, want 2", found)
	}
	// A second sample must not double-count cumulative histograms: force
	// growth, sample, and check counts only move forward.
	before := r.Histogram("go.sched_latency_us").Count()
	r.SampleRuntime()
	if after := r.Histogram("go.sched_latency_us").Count(); after < before {
		t.Fatalf("sched latency count went backwards: %d → %d", before, after)
	}
}
