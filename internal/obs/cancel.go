package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// CancelClock timestamps the instant a context fires, so a kernel that
// later notices ctx.Err() at a chunk/iteration boundary can report the
// true cancellation latency (fire → kernel return) in its Canceled
// event, not just "canceled". WatchCancel installs a context.AfterFunc;
// Stop must be called (usually deferred) to release it when the kernel
// returns without being canceled.
//
// A nil *CancelClock is valid and reports zero latency — WatchCancel
// returns nil for contexts that can never fire (ctx == nil, or
// Done() == nil like context.Background), keeping the uncancelable hot
// path allocation-free.
type CancelClock struct {
	at   atomic.Int64 // UnixNano of the context firing, 0 = not fired
	stop func() bool
}

// WatchCancel arms a CancelClock against ctx, or returns nil when ctx
// cannot fire.
func WatchCancel(ctx context.Context) *CancelClock {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	c := &CancelClock{}
	c.stop = context.AfterFunc(ctx, func() {
		c.at.Store(time.Now().UnixNano())
	})
	return c
}

// Latency returns now − fire-time, or 0 when the context has not fired
// (or the clock is nil).
func (c *CancelClock) Latency() time.Duration {
	if c == nil {
		return 0
	}
	ns := c.at.Load()
	if ns == 0 {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - ns)
}

// Stop releases the AfterFunc registration. Safe on a nil clock and
// idempotent.
func (c *CancelClock) Stop() {
	if c != nil && c.stop != nil {
		c.stop()
	}
}
