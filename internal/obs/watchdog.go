package obs

import (
	"sync"
	"time"
)

// SlowSpanWatchdog is an Observer middleware: it forwards every event to
// the next observer unchanged and additionally emits a SpanSlow event
// the first time a span exceeds the configured threshold. Spans are
// caught two ways: a background ticker flags spans still open past the
// threshold (so a hung kernel is reported while it hangs, not after),
// and SpanEnd flags spans that crossed the threshold between ticks. At
// most one SpanSlow fires per span.
type SlowSpanWatchdog struct {
	threshold time.Duration
	next      Observer

	mu   sync.Mutex
	open map[uint64]*openSpan

	stop chan struct{}
	done chan struct{}
}

type openSpan struct {
	name     string
	trace    string
	start    time.Time
	reported bool
}

// NewSlowSpanWatchdog wraps next with a watchdog at the given threshold
// and starts its background ticker (scanning at threshold/2, floored at
// 10ms). Call Close when done to stop the ticker; events forwarded after
// Close still pass through, but in-flight spans are no longer scanned.
func NewSlowSpanWatchdog(threshold time.Duration, next Observer) *SlowSpanWatchdog {
	if threshold <= 0 {
		threshold = time.Second
	}
	w := &SlowSpanWatchdog{
		threshold: threshold,
		next:      next,
		open:      make(map[uint64]*openSpan),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	tick := threshold / 2
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	go w.scanLoop(tick)
	return w
}

// Emit implements Observer.
func (w *SlowSpanWatchdog) Emit(e Event) {
	w.next.Emit(e)
	switch ev := e.(type) {
	case SpanStart:
		w.mu.Lock()
		w.open[ev.ID] = &openSpan{name: ev.Span, trace: ev.Trace, start: time.Now()}
		w.mu.Unlock()
	case SpanEnd:
		w.mu.Lock()
		s, ok := w.open[ev.ID]
		delete(w.open, ev.ID)
		late := ok && !s.reported && ev.Elapsed > w.threshold
		w.mu.Unlock()
		if late {
			w.next.Emit(SpanSlow{ID: ev.ID, Trace: ev.Trace, Span: ev.Span,
				Elapsed: ev.Elapsed, Threshold: w.threshold})
		}
	}
}

func (w *SlowSpanWatchdog) scanLoop(tick time.Duration) {
	defer close(w.done)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case now := <-t.C:
			var slow []SpanSlow
			w.mu.Lock()
			for id, s := range w.open {
				if age := now.Sub(s.start); !s.reported && age > w.threshold {
					s.reported = true
					slow = append(slow, SpanSlow{ID: id, Trace: s.trace, Span: s.name,
						Elapsed: age, Threshold: w.threshold})
				}
			}
			w.mu.Unlock()
			// Emit outside the lock: the next observer may be a registry or
			// a journal sink with its own locking.
			for _, ev := range slow {
				w.next.Emit(ev)
			}
		}
	}
}

// Close stops the background ticker and waits for it to exit.
func (w *SlowSpanWatchdog) Close() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}
