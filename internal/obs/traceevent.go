package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Chrome trace-event export: converts a JSONL run journal into the
// trace-event JSON format Perfetto and chrome://tracing open directly —
// span_start/span_end pairs become nested "B"/"E" duration events,
// iteration_end becomes "C" counter tracks (loss and ε curves), and
// checkpoint/slow-span events become "i" instants. The converter is the
// engine behind `privim -trace-out` and `cmd/tracecat`.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the object form of the trace-event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// tidAllocator lays concurrent spans out on virtual threads so B/E
// events nest properly: a span runs on its parent's tid when the parent
// is the innermost open span there (sequential nesting), otherwise on a
// reused-idle or fresh tid (parallel siblings each get their own row).
type tidAllocator struct {
	stacks map[int][]uint64 // tid -> open span stack
	tidOf  map[uint64]int   // span id -> tid
	next   int
}

func newTidAllocator() *tidAllocator {
	return &tidAllocator{stacks: make(map[int][]uint64), tidOf: make(map[uint64]int), next: 1}
}

func (a *tidAllocator) open(id, parent uint64) int {
	if parent != 0 {
		if tid, ok := a.tidOf[parent]; ok {
			if st := a.stacks[tid]; len(st) > 0 && st[len(st)-1] == parent {
				a.stacks[tid] = append(st, id)
				a.tidOf[id] = tid
				return tid
			}
		}
	}
	// Roots and out-of-stack children: lowest idle tid, else a fresh one.
	tid := 0
	for t := 1; t < a.next; t++ {
		if len(a.stacks[t]) == 0 {
			tid = t
			break
		}
	}
	if tid == 0 {
		tid = a.next
		a.next++
	}
	a.stacks[tid] = append(a.stacks[tid], id)
	a.tidOf[id] = tid
	return tid
}

// close pops the span from its tid's stack and returns the tid (-1 when
// the span was never opened — a journal truncated mid-trace).
func (a *tidAllocator) close(id uint64) int {
	tid, ok := a.tidOf[id]
	if !ok {
		return -1
	}
	delete(a.tidOf, id)
	st := a.stacks[tid]
	for i := len(st) - 1; i >= 0; i-- {
		if st[i] == id {
			a.stacks[tid] = append(st[:i], st[i+1:]...)
			break
		}
	}
	return tid
}

// WriteChromeTrace converts a JSONL run journal into Chrome trace-event
// JSON. traceFilter, when non-empty, keeps only records of that trace ID
// (matching either the record stamp or the span payload); "" converts
// everything. Timestamps are rebased so the first record is t=0.
// Unparseable journal lines are skipped, mirroring the forgiving journal
// readers elsewhere in the repo; an input with no convertible events
// still produces a valid (empty) trace document.
func WriteChromeTrace(journal io.Reader, w io.Writer, traceFilter string) error {
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	tids := newTidAllocator()
	var t0 int64
	sc := bufio.NewScanner(journal)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, ts, err := DecodeRecord(line)
		if err != nil {
			continue
		}
		if t0 == 0 {
			t0 = ts.UnixNano()
		}
		us := float64(ts.UnixNano()-t0) / float64(time.Microsecond)
		var rec Record
		_ = json.Unmarshal(line, &rec) // DecodeRecord already parsed it
		switch e := ev.(type) {
		case *SpanStart:
			if !traceMatch(traceFilter, rec.Trace, e.Trace) {
				continue
			}
			tid := tids.open(e.ID, e.Parent)
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Span, Cat: "span", Ph: "B", TS: us, Pid: 1, Tid: tid,
				Args: map[string]any{"id": e.ID, "parent": e.Parent, "trace": spanTrace(rec.Trace, e.Trace)},
			})
		case *SpanEnd:
			if !traceMatch(traceFilter, rec.Trace, e.Trace) {
				continue
			}
			tid := tids.close(e.ID)
			if tid < 0 {
				continue // end without a start: truncated journal head
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Span, Cat: "span", Ph: "E", TS: us, Pid: 1, Tid: tid,
			})
		case *SpanSlow:
			if !traceMatch(traceFilter, rec.Trace, e.Trace) {
				continue
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "slow: " + e.Span, Cat: "watchdog", Ph: "i", TS: us, Pid: 1, Tid: 1, S: "g",
				Args: map[string]any{"elapsed_ms": e.Elapsed.Milliseconds(), "threshold_ms": e.Threshold.Milliseconds()},
			})
		case *IterationEnd:
			if !traceMatch(traceFilter, rec.Trace, "") {
				continue
			}
			out.TraceEvents = append(out.TraceEvents,
				chromeEvent{Name: "train.loss", Ph: "C", TS: us, Pid: 1, Tid: 1,
					Args: map[string]any{"loss": e.Loss, "noisy_loss": e.NoisyLoss}},
				chromeEvent{Name: "train.epsilon", Ph: "C", TS: us, Pid: 1, Tid: 1,
					Args: map[string]any{"epsilon_spent": e.EpsilonSpent}},
			)
		case *CheckpointSaved:
			if !traceMatch(traceFilter, rec.Trace, "") {
				continue
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "checkpoint_saved", Cat: "checkpoint", Ph: "i", TS: us, Pid: 1, Tid: 1, S: "g",
				Args: map[string]any{"iter": e.Iter, "bytes": e.Bytes},
			})
		case *CheckpointResumed:
			if !traceMatch(traceFilter, rec.Trace, "") {
				continue
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "checkpoint_resumed", Cat: "checkpoint", Ph: "i", TS: us, Pid: 1, Tid: 1, S: "g",
				Args: map[string]any{"iter": e.Iter},
			})
		case *CheckpointRejected:
			if !traceMatch(traceFilter, rec.Trace, "") {
				continue
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "checkpoint_rejected", Cat: "checkpoint", Ph: "i", TS: us, Pid: 1, Tid: 1, S: "g",
				Args: map[string]any{"reason": e.Reason},
			})
		case *AlertFired:
			if !traceMatch(traceFilter, rec.Trace, "") {
				continue
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "alert: " + e.Rule, Cat: "alert", Ph: "i", TS: us, Pid: 1, Tid: 1, S: "g",
				Args: map[string]any{"metric": e.Metric, "value": e.Value, "threshold": e.Threshold, "profile": e.Profile},
			})
		case *AlertResolved:
			if !traceMatch(traceFilter, rec.Trace, "") {
				continue
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "resolved: " + e.Rule, Cat: "alert", Ph: "i", TS: us, Pid: 1, Tid: 1, S: "g",
				Args: map[string]any{"metric": e.Metric, "value": e.Value, "after_ms": e.After.Milliseconds()},
			})
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(out)
}

// traceMatch applies the filter: recTrace is the journal-record stamp,
// evTrace the span payload's own trace (empty for non-span events).
func traceMatch(filter, recTrace, evTrace string) bool {
	return filter == "" || filter == recTrace || filter == evTrace
}

// spanTrace prefers the span payload's trace over the record stamp.
func spanTrace(recTrace, evTrace string) string {
	if evTrace != "" {
		return evTrace
	}
	return recTrace
}

// ValidateChromeTrace checks that r holds structurally valid Chrome
// trace-event JSON as this package emits it: an object with a
// traceEvents array whose events carry a known phase, monotonically
// sane B/E nesting per tid (every E matches the innermost open B of the
// same tid and name), and non-negative timestamps. Spans left open at
// EOF are allowed (a killed run); an E without a B is not. Used by
// `tracecat -check` and the trace-smoke make target.
func ValidateChromeTrace(r io.Reader) error {
	var doc chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("not a trace-event JSON document: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("missing traceEvents array")
	}
	open := make(map[int][]string) // tid -> open span name stack
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "B", "E", "X", "C", "i", "b", "e", "n", "M":
		default:
			return fmt.Errorf("event %d: unknown phase %q", i, ev.Ph)
		}
		if ev.TS < 0 {
			return fmt.Errorf("event %d (%s): negative timestamp %v", i, ev.Name, ev.TS)
		}
		if ev.Ph != "E" && ev.Ph != "M" && ev.Name == "" {
			return fmt.Errorf("event %d: missing name", i)
		}
		switch ev.Ph {
		case "B":
			open[ev.Tid] = append(open[ev.Tid], ev.Name)
		case "E":
			st := open[ev.Tid]
			if len(st) == 0 {
				return fmt.Errorf("event %d: E %q on tid %d with no open span", i, ev.Name, ev.Tid)
			}
			if top := st[len(st)-1]; ev.Name != "" && top != ev.Name {
				return fmt.Errorf("event %d: E %q does not match open span %q on tid %d", i, ev.Name, top, ev.Tid)
			}
			open[ev.Tid] = st[:len(st)-1]
		}
	}
	return nil
}
