// Package obs is the observability layer of the PrivIM pipeline: typed
// training/selection events, a pluggable Observer interface, lock-free
// counters/gauges/histograms, nested span timers, a JSONL run-journal
// sink, and an in-memory metrics registry exportable via expvar.
//
// Design constraints:
//
//   - stdlib only, like the rest of the repo;
//   - a nil Observer must cost nothing on the hot paths: every
//     instrumentation site goes through the nil-checking Emit helper (or
//     a nil *Span), so the interface boxing that building an event
//     requires only happens once an observer is actually attached
//     (verified by BenchmarkTrainNoObserver at the repo root);
//   - events are plain data (no callbacks into pipeline internals), so
//     sinks can serialize, aggregate, or forward them freely.
package obs

import "time"

// Event is one typed occurrence inside the pipeline. The concrete types
// below form the whole taxonomy; EventKind returns the stable wire name
// used by the JSONL journal.
type Event interface {
	EventKind() string
}

// Observer consumes pipeline events. Implementations must be safe for
// concurrent use: diffusion estimation and per-sample gradient passes
// emit from worker goroutines.
type Observer interface {
	Emit(Event)
}

// Emit forwards ev to o when o is non-nil. The generic parameter keeps
// the event → interface conversion inside the non-nil branch, so calling
// Emit with a nil observer performs zero allocations — the contract the
// instrumentation sites in internal/privim, internal/diffusion,
// internal/im, and internal/sampling rely on.
func Emit[E Event](o Observer, ev E) {
	if o == nil {
		return
	}
	o.Emit(ev)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Emit implements Observer.
func (f ObserverFunc) Emit(e Event) { f(e) }

// Multi fans events out to every non-nil observer. It returns nil when
// none remain (so the result stays no-op-cheap) and the sole observer
// when only one remains (skipping the fan-out indirection).
func Multi(os ...Observer) Observer {
	live := make([]Observer, 0, len(os))
	for _, o := range os {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Observer

func (m multi) Emit(e Event) {
	for _, o := range m {
		o.Emit(e)
	}
}

// SpanStart marks the opening of a timed span. Parent is the ID of the
// enclosing span (0 for roots), giving sinks the full nesting tree;
// Trace ties the span to the request/run/job that caused it (see
// trace.go).
type SpanStart struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Trace  string `json:"trace,omitempty"`
	Span   string `json:"span"`
}

// EventKind implements Event.
func (SpanStart) EventKind() string { return "span_start" }

// SpanEnd closes a span opened by SpanStart with the same ID.
type SpanEnd struct {
	ID      uint64        `json:"id"`
	Parent  uint64        `json:"parent,omitempty"`
	Trace   string        `json:"trace,omitempty"`
	Span    string        `json:"span"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// EventKind implements Event.
func (SpanEnd) EventKind() string { return "span_end" }

// SpanSlow reports a span exceeding the slow-span watchdog's threshold —
// either caught in flight by the watchdog's ticker (the span is still
// open, Elapsed is its age so far) or at End. At most one SpanSlow is
// emitted per span.
type SpanSlow struct {
	ID    uint64 `json:"id"`
	Trace string `json:"trace,omitempty"`
	Span  string `json:"span"`
	// Elapsed is how long the span had been open when it was flagged.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Threshold is the watchdog limit the span crossed.
	Threshold time.Duration `json:"threshold_ns"`
}

// EventKind implements Event.
func (SpanSlow) EventKind() string { return "span_slow" }

// IterationEnd reports one DP-SGD iteration of Algorithm 2 (Module 3).
type IterationEnd struct {
	// Iter is the 0-based iteration index.
	Iter int `json:"iter"`
	// Loss is the mean per-sample training loss before noise (what the
	// model optimizes; mirrors Result.LossHistory).
	Loss float64 `json:"loss"`
	// NoisyLoss is the same batch's loss re-evaluated after the noisy
	// update (mirrors Result.NoisyLossHistory); the gap to Loss shows the
	// damage DP noise does to this step.
	NoisyLoss float64 `json:"noisy_loss"`
	// GradNorm is the mean per-sample pre-clip gradient l2 norm.
	GradNorm float64 `json:"grad_norm"`
	// ClipFraction is the fraction of batch samples whose gradient
	// exceeded the clip bound C.
	ClipFraction float64 `json:"clip_fraction"`
	// EpsilonSpent is the accountant's (ε, δ) guarantee for the
	// iterations completed so far (0 for non-private runs); it is
	// monotone nondecreasing across a run and its final value equals
	// Result.EpsilonSpent.
	EpsilonSpent float64 `json:"epsilon_spent"`
}

// EventKind implements Event.
func (IterationEnd) EventKind() string { return "iteration_end" }

// MCBatchDone reports one completed Monte-Carlo spread estimation batch.
type MCBatchDone struct {
	// Model is the diffusion model name ("ic", "lt", "sis").
	Model string `json:"model"`
	// Rounds is the number of simulations in the batch.
	Rounds int `json:"rounds"`
	// MeanSpread is the batch's spread estimate.
	MeanSpread float64 `json:"mean_spread"`
	// Elapsed is the wall-clock batch duration.
	Elapsed time.Duration `json:"elapsed_ns"`
	// SimsPerSec is the batch's simulation throughput.
	SimsPerSec float64 `json:"sims_per_sec"`
	// SizeBuckets is the cascade-size histogram of the batch on the
	// package's log-scale buckets (see BucketIndex).
	SizeBuckets [NumBuckets]uint64 `json:"size_buckets"`
}

// EventKind implements Event.
func (MCBatchDone) EventKind() string { return "mc_batch_done" }

// SeedSelected reports one seed picked by a greedy/CELF IM solver.
type SeedSelected struct {
	// K is the 1-based position of this seed in the selection order.
	K int `json:"k"`
	// Node is the selected node ID.
	Node int64 `json:"node"`
	// MarginalGain is the node's marginal spread gain when picked.
	MarginalGain float64 `json:"marginal_gain"`
	// Evaluations is the solver's cumulative spread-estimate count.
	Evaluations int `json:"evaluations"`
	// LookupsSaved is the cumulative number of spread estimates lazy
	// evaluation skipped versus plain greedy (0 for non-lazy solvers).
	LookupsSaved int `json:"lookups_saved"`
}

// EventKind implements Event.
func (SeedSelected) EventKind() string { return "seed_selected" }

// ExtractionDone reports one subgraph-extraction pass (Module 1).
type ExtractionDone struct {
	// Stage names the extraction scheme: "rwr" (Algorithm 1), "scs" /
	// "bes" (the two stages of Algorithm 3).
	Stage string `json:"stage"`
	// Subgraphs is the number of subgraphs the stage emitted.
	Subgraphs int `json:"subgraphs"`
	// Walks is the number of random walks started (including walks that
	// failed to collect a full subgraph).
	Walks int `json:"walks"`
	// MaxOccurrence is the audited maximum per-node subgraph count after
	// this stage.
	MaxOccurrence int `json:"max_occurrence"`
	// WalkLenBuckets histograms the steps consumed per walk.
	WalkLenBuckets [NumBuckets]uint64 `json:"walk_len_buckets"`
	// OccurrenceBuckets histograms the per-node occurrence counts of
	// nodes appearing in at least one subgraph.
	OccurrenceBuckets [NumBuckets]uint64 `json:"occurrence_buckets"`
}

// EventKind implements Event.
func (ExtractionDone) EventKind() string { return "extraction_done" }

// ParallelFor reports worker-pool activity at one instrumented fan-out
// site (internal/parallel), so parallel speedups are observable rather
// than asserted: Workers says how wide the site actually ran, Tasks how
// much work it split, Imbalance how evenly the pool balanced it.
type ParallelFor struct {
	// Site names the fan-out site ("train.dpsgd", "im.ris.rrsets",
	// "im.celf.initial", ...).
	Site string `json:"site"`
	// Workers is the number of goroutines the site ran on (1 = inline
	// serial execution).
	Workers int `json:"workers"`
	// Tasks is the number of work items processed (samples, RR sets,
	// candidates, row panels).
	Tasks int `json:"tasks"`
	// Chunks is the number of grain-sized ranges the pool scheduled.
	Chunks int `json:"chunks"`
	// Imbalance is (max−min)/chunks over per-worker chunk counts: 0 is a
	// perfectly even split, values near 1 mean one worker did nearly
	// everything.
	Imbalance float64 `json:"imbalance"`
	// Elapsed is the wall-clock time of the fanned-out region.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// EventKind implements Event.
func (ParallelFor) EventKind() string { return "parallel_for" }

// CheckpointSaved reports one durable training checkpoint written by the
// crash-safe training loop (internal/privim with Config.CheckpointEvery
// set): the state needed to resume bit-for-bit — parameters, optimizer
// moments, RNG stream position, privacy-accounting position — landed on
// disk atomically.
type CheckpointSaved struct {
	// Iter is the number of completed iterations the checkpoint captures.
	Iter int `json:"iter"`
	// Path is the checkpoint file written.
	Path string `json:"path"`
	// Bytes is the checkpoint payload size.
	Bytes int64 `json:"bytes"`
	// Elapsed is the wall-clock encode+fsync+rename time.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// EventKind implements Event.
func (CheckpointSaved) EventKind() string { return "checkpoint_saved" }

// CheckpointResumed reports a training run continuing from a checkpoint
// instead of iteration 0. The resumed run is bit-for-bit identical to an
// uninterrupted one (same model, seed set, ε spent).
type CheckpointResumed struct {
	// Iter is the iteration training resumes from (completed iterations).
	Iter int `json:"iter"`
	// Path is the checkpoint file the state was restored from.
	Path string `json:"path"`
	// RNGDraws is the restored RNG stream position (raw source draws
	// consumed since seeding).
	RNGDraws uint64 `json:"rng_draws"`
}

// EventKind implements Event.
func (CheckpointResumed) EventKind() string { return "checkpoint_resumed" }

// LedgerOp reports one privacy-budget ledger transition
// (internal/ledger): a reservation taken at job admission, a commit of
// actually-spent ε at completion, a refund on cancel, a forfeit of the
// full reservation when an interrupted job's true spend is unknowable,
// or a denial because the (tenant, graph) budget is exhausted.
type LedgerOp struct {
	// Op is "reserve", "commit", "refund", "forfeit", or "deny".
	Op string `json:"op"`
	// Tenant and Graph key the budget entry (Graph is the
	// graph.Fingerprint hex of the trained graph).
	Tenant string `json:"tenant"`
	Graph  string `json:"graph"`
	// Ref is the reservation reference (the job ID or CLI run ID).
	Ref string `json:"ref,omitempty"`
	// Epsilon is the ε this operation moved (requested on reserve/deny,
	// actually spent on commit, released on refund/forfeit).
	Epsilon float64 `json:"epsilon"`
	// Committed and Reserved are the tenant's totals across all graphs
	// after the operation — what the per-tenant gauges export.
	Committed float64 `json:"committed"`
	Reserved  float64 `json:"reserved"`
}

// EventKind implements Event.
func (LedgerOp) EventKind() string { return "ledger_op" }

// CheckpointRejected reports a checkpoint file that failed verification
// (truncation, checksum mismatch, config/graph fingerprint mismatch) and
// was skipped; the loader falls back to the previous good checkpoint, or
// to a fresh start when none survives.
type CheckpointRejected struct {
	// Path is the rejected file.
	Path string `json:"path"`
	// Reason is the verification failure.
	Reason string `json:"reason"`
}

// EventKind implements Event.
func (CheckpointRejected) EventKind() string { return "checkpoint_rejected" }

// Canceled reports one compute phase stopping early on a canceled or
// deadline-expired context: DP-SGD training, a Monte-Carlo estimate,
// RR-set generation, or a greedy/CELF seed-selection pass. Done/Total
// record the partial progress at the stop point (iterations, rounds, RR
// sets, or seeds, by phase); Latency is the time from the context firing
// to the kernel actually returning — the cancellation latency the serve
// layer's 2 s stop budget is built from.
type Canceled struct {
	// Phase is the compute phase that stopped: "train", "estimate",
	// "rrgen", "select", or "query".
	Phase string `json:"phase"`
	// Done and Total count the phase's work units at the stop point.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Reason is the context error ("context canceled",
	// "context deadline exceeded").
	Reason string `json:"reason"`
	// Latency is ctx-fired → kernel-returned, when the kernel can
	// observe it (0 otherwise).
	Latency time.Duration `json:"latency_ns"`
}

// EventKind implements Event.
func (Canceled) EventKind() string { return "canceled" }

// AlertFired reports an alert rule (internal/obs/history) transitioning
// from quiet to firing on one matched series: the observed value crossed
// the rule's bound on a sampler tick. At most one AlertFired is emitted
// per (rule, series) until the alert resolves.
type AlertFired struct {
	// Rule is the rule name ("tenant-epsilon-burn", "job-queue-depth").
	Rule string `json:"rule"`
	// Metric is the matched history series key, including any Prometheus
	// label set (`ledger.epsilon_committed{tenant="a"}`).
	Metric string `json:"metric"`
	// Value is the observed figure that breached: the sample for
	// threshold rules, the change over the window for delta rules, the
	// per-second consumption rate for burn-rate rules.
	Value float64 `json:"value"`
	// Threshold is the bound Value crossed (for burn-rate rules, the
	// sustainable rate times the rule's multiplier).
	Threshold float64 `json:"threshold"`
	// Profile is the CPU-profile artifact path a triggered capture will
	// write ("" when profile capture is disabled or busy).
	Profile string `json:"profile,omitempty"`
}

// EventKind implements Event.
func (AlertFired) EventKind() string { return "alert_fired" }

// AlertResolved reports a firing alert's series dropping back within its
// rule's bound.
type AlertResolved struct {
	Rule   string `json:"rule"`
	Metric string `json:"metric"`
	// Value is the observed figure at resolution.
	Value float64 `json:"value"`
	// After is how long the alert had been firing.
	After time.Duration `json:"after_ns"`
}

// EventKind implements Event.
func (AlertResolved) EventKind() string { return "alert_resolved" }
