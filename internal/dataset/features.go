package dataset

import (
	"math"

	"privim/internal/graph"
)

// NumStructuralFeatures is the feature dimension produced by
// StructuralFeatures.
const NumStructuralFeatures = 4

// StructuralFeatures computes the d=4 node feature matrix X used as GNN
// input: log-scaled out-degree, log-scaled in-degree, total outgoing
// influence weight, and a constant bias channel. The paper does not rely on
// exogenous attributes for IM — influence is a structural property — so the
// features are derived from the graph itself, which also keeps the DP
// analysis purely node-level.
//
// The returned matrix is row-major with NumNodes rows and
// NumStructuralFeatures columns.
func StructuralFeatures(g *graph.Graph) []float64 {
	n := g.NumNodes()
	x := make([]float64, n*NumStructuralFeatures)
	// Normalize log-degrees by log(maxDegree+1) so features stay in [0,1]
	// regardless of graph size.
	maxOut, maxIn := 1, 1
	for v := 0; v < n; v++ {
		if d := g.OutDegree(graph.NodeID(v)); d > maxOut {
			maxOut = d
		}
		if d := g.InDegree(graph.NodeID(v)); d > maxIn {
			maxIn = d
		}
	}
	outNorm := math.Log(float64(maxOut) + 1)
	inNorm := math.Log(float64(maxIn) + 1)
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		wsum := 0.0
		for _, a := range g.Out(id) {
			wsum += a.Weight
		}
		row := x[v*NumStructuralFeatures : (v+1)*NumStructuralFeatures]
		row[0] = math.Log(float64(g.OutDegree(id))+1) / outNorm
		row[1] = math.Log(float64(g.InDegree(id))+1) / inNorm
		row[2] = wsum / (wsum + 1) // squashed outgoing influence mass
		row[3] = 1                 // bias channel
	}
	return x
}
