package dataset

import (
	"fmt"
	"math/rand"

	"privim/internal/graph"
)

// Preset identifies one of the paper's evaluation datasets (Table I).
type Preset string

// The six main datasets plus the large-scale Friendster surrogate.
const (
	Email      Preset = "email"
	Bitcoin    Preset = "bitcoin"
	LastFM     Preset = "lastfm"
	HepPh      Preset = "hepph"
	Facebook   Preset = "facebook"
	Gowalla    Preset = "gowalla"
	Friendster Preset = "friendster"
)

// AllPresets lists the six main datasets in the paper's Table I order.
func AllPresets() []Preset {
	return []Preset{Email, Bitcoin, LastFM, HepPh, Facebook, Gowalla}
}

// Spec describes the target statistics of a preset at full (paper) scale.
type Spec struct {
	Name      Preset
	Nodes     int
	Directed  bool
	AvgDegree float64
	// Model selects the generative process used as a surrogate.
	Model string
}

// specs reproduces Table I. AvgDegree is the paper's reported average
// degree; the generator is tuned to land near it.
var specs = map[Preset]Spec{
	Email:      {Email, 1_000, true, 25.44, "scalefree"},
	Bitcoin:    {Bitcoin, 5_900, true, 6.05, "scalefree"},
	LastFM:     {LastFM, 7_600, false, 7.29, "ba"},
	HepPh:      {HepPh, 12_000, false, 19.74, "ba"},
	Facebook:   {Facebook, 22_500, false, 15.22, "ws"},
	Gowalla:    {Gowalla, 196_000, false, 9.67, "ba"},
	Friendster: {Friendster, 65_600_000, false, 55.06, "ba"},
}

// SpecFor returns the full-scale spec for a preset.
func SpecFor(p Preset) (Spec, error) {
	s, ok := specs[p]
	if !ok {
		return Spec{}, fmt.Errorf("dataset: unknown preset %q", p)
	}
	return s, nil
}

// Dataset bundles a generated graph with metadata and a train/test node
// split (the paper splits nodes 50/50).
type Dataset struct {
	Name  Preset
	Graph *graph.Graph
	// Train and Test partition the node IDs.
	Train, Test []graph.NodeID
	// Scale is the node-count scale factor relative to the paper (1 = full).
	Scale float64
}

// Options control dataset generation.
type Options struct {
	// Scale multiplies the preset's node count (0 < Scale <= 1). The default
	// harness uses small scales so the full experiment suite runs on a
	// laptop; Scale=1 reproduces the paper's sizes.
	Scale float64
	// Seed makes generation deterministic.
	Seed int64
	// InfluenceProb sets a uniform IC weight on all arcs (paper: w=1).
	// Zero means "weighted cascade" (w(u,v) = 1/indegree(v)).
	InfluenceProb float64
	// TrainFraction of nodes assigned to the training split (default 0.5).
	TrainFraction float64
}

func (o *Options) normalize() {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.TrainFraction <= 0 || o.TrainFraction >= 1 {
		o.TrainFraction = 0.5
	}
}

// Generate builds the surrogate dataset for preset p.
func Generate(p Preset, opts Options) (*Dataset, error) {
	spec, err := SpecFor(p)
	if err != nil {
		return nil, err
	}
	opts.normalize()
	n := int(float64(spec.Nodes) * opts.Scale)
	if n < 32 {
		n = 32
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var g *graph.Graph
	switch spec.Model {
	case "scalefree":
		g = ScaleFreeDirected(n, int(spec.AvgDegree+0.5), rng)
	case "ba":
		m := int(spec.AvgDegree/2 + 0.5)
		if m < 1 {
			m = 1
		}
		g = BarabasiAlbert(n, m, rng)
	case "ws":
		k := int(spec.AvgDegree+0.5) &^ 1 // round to even
		if k < 2 {
			k = 2
		}
		g = WattsStrogatz(n, k, 0.1, rng)
	default:
		return nil, fmt.Errorf("dataset: preset %q has unknown model %q", p, spec.Model)
	}
	if opts.InfluenceProb > 0 {
		g.SetUniformWeights(opts.InfluenceProb)
	} else {
		g.SetWeightedCascade()
	}
	ds := &Dataset{Name: p, Graph: g, Scale: opts.Scale}
	ds.split(opts.TrainFraction, rng)
	return ds, nil
}

// randFor returns the deterministic RNG for a seed (shared by Generate and
// FromGraph so splits agree).
func randFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func (d *Dataset) split(trainFrac float64, rng *rand.Rand) {
	n := d.Graph.NumNodes()
	perm := rng.Perm(n)
	cut := int(float64(n) * trainFrac)
	d.Train = make([]graph.NodeID, 0, cut)
	d.Test = make([]graph.NodeID, 0, n-cut)
	for i, v := range perm {
		if i < cut {
			d.Train = append(d.Train, graph.NodeID(v))
		} else {
			d.Test = append(d.Test, graph.NodeID(v))
		}
	}
}

// GeneratePartitioned builds the Friendster surrogate: parts independent
// power-law graphs of nodesPerPart nodes each, mirroring the paper's
// memory-driven partitioning of Friendster during training and evaluation.
func GeneratePartitioned(parts, nodesPerPart int, opts Options) ([]*Dataset, error) {
	if parts < 1 || nodesPerPart < 32 {
		return nil, fmt.Errorf("dataset: GeneratePartitioned(parts=%d, nodesPerPart=%d) invalid", parts, nodesPerPart)
	}
	opts.normalize()
	out := make([]*Dataset, parts)
	for i := 0; i < parts; i++ {
		rng := rand.New(rand.NewSource(opts.Seed + int64(i)*7919))
		// Friendster's avg degree is 55; a BA with m=27 would be extremely
		// dense at small scale, so scale m with part size while keeping the
		// heavy tail.
		m := nodesPerPart / 40
		if m < 3 {
			m = 3
		}
		if m > 27 {
			m = 27
		}
		g := BarabasiAlbert(nodesPerPart, m, rng)
		if opts.InfluenceProb > 0 {
			g.SetUniformWeights(opts.InfluenceProb)
		} else {
			g.SetWeightedCascade()
		}
		ds := &Dataset{Name: Friendster, Graph: g, Scale: opts.Scale}
		ds.split(opts.TrainFraction, rng)
		out[i] = ds
	}
	return out, nil
}

// TrainSubgraph returns the subgraph induced by the training nodes: the
// private data the GNN is trained on. Local IDs follow Train order.
func (d *Dataset) TrainSubgraph() *graph.Subgraph {
	return graph.Induce(d.Graph, d.Train)
}

// TestSubgraph returns the subgraph induced by the held-out test nodes.
func (d *Dataset) TestSubgraph() *graph.Subgraph {
	return graph.Induce(d.Graph, d.Test)
}
