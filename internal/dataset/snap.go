package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"privim/internal/graph"
)

// LoadSNAP parses the edge-list format the SNAP repository distributes the
// paper's datasets in: '#'-prefixed comment lines followed by whitespace-
// separated "FromNodeId ToNodeId" pairs with arbitrary (sparse) integer
// IDs. IDs are remapped to a dense 0..n-1 range in first-appearance order.
// An optional third column is accepted and ignored (e.g. Bitcoin-OTC's
// ratings) — influence probabilities are assigned afterwards with
// SetUniformWeights or SetWeightedCascade, matching the paper's setup.
//
// This is the adoption path for users who have downloaded the real SNAP
// files; the offline benchmark suite uses the synthetic surrogates.
func LoadSNAP(r io.Reader, directed bool) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	g := graph.New(directed)
	ids := make(map[int64]graph.NodeID)
	intern := func(raw int64) graph.NodeID {
		if id, ok := ids[raw]; ok {
			return id
		}
		id := g.AddNode()
		ids[raw] = id
		return id
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("dataset: SNAP line %d: want 'from to', got %q", lineNo, line)
		}
		// Some SNAP exports are comma separated.
		if len(fields) == 1 && strings.Contains(fields[0], ",") {
			fields = strings.Split(fields[0], ",")
		}
		u, err := strconv.ParseInt(strings.TrimSuffix(fields[0], ","), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: SNAP line %d: bad source %q", lineNo, fields[0])
		}
		v, err := strconv.ParseInt(strings.TrimSuffix(fields[1], ","), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: SNAP line %d: bad target %q", lineNo, fields[1])
		}
		fu, fv := intern(u), intern(v)
		if fu == fv {
			continue // SNAP files occasionally carry self loops; drop them
		}
		g.AddEdge(fu, fv, 1)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// FromGraph wraps an externally loaded graph (e.g. a real SNAP dataset)
// into a Dataset with the paper's 50/50 node split and weighting.
func FromGraph(name Preset, g *graph.Graph, opts Options) *Dataset {
	opts.normalize()
	if opts.InfluenceProb > 0 {
		g.SetUniformWeights(opts.InfluenceProb)
	} else {
		g.SetWeightedCascade()
	}
	ds := &Dataset{Name: name, Graph: g, Scale: 1}
	ds.split(opts.TrainFraction, randFor(opts.Seed))
	return ds
}
