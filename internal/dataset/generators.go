// Package dataset generates the synthetic social-network workloads used by
// the benchmark harness. The paper evaluates on SNAP datasets (Table I);
// those downloads are unavailable in this offline build, so each dataset is
// substituted by a generative model matched on the statistics the paper
// reports: node count, directedness, and average degree. Power-law degree
// distributions (preferential attachment) stand in for the social and
// citation networks; small-world rewiring stands in for the geographically
// clustered ones. See DESIGN.md §2 for the substitution rationale.
package dataset

import (
	"fmt"
	"math/rand"

	"privim/internal/graph"
)

// BarabasiAlbert generates a preferential-attachment graph with n nodes
// where each new node attaches m edges to existing nodes with probability
// proportional to degree. Produces the heavy-tailed degree distributions
// characteristic of social networks. The result is undirected.
func BarabasiAlbert(n, m int, rng *rand.Rand) *graph.Graph {
	if m < 1 || n < m+1 {
		panic(fmt.Sprintf("dataset: BarabasiAlbert(n=%d, m=%d) requires n > m >= 1", n, m))
	}
	g := graph.NewWithNodes(n, false)
	// repeated holds node IDs once per incident edge endpoint, so sampling
	// uniformly from it implements preferential attachment.
	repeated := make([]graph.NodeID, 0, 2*m*n)
	// Seed clique over the first m+1 nodes.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			g.AddEdge(graph.NodeID(u), graph.NodeID(v), 1)
			repeated = append(repeated, graph.NodeID(u), graph.NodeID(v))
		}
	}
	targets := make(map[graph.NodeID]bool, m)
	for u := m + 1; u < n; u++ {
		for k := range targets {
			delete(targets, k)
		}
		for len(targets) < m {
			targets[repeated[rng.Intn(len(repeated))]] = true
		}
		for v := range targets {
			g.AddEdge(graph.NodeID(u), v, 1)
			repeated = append(repeated, graph.NodeID(u), v)
		}
	}
	return g
}

// WattsStrogatz generates a small-world graph: a ring lattice over n nodes
// where each node connects to its k nearest neighbors (k even), with each
// edge rewired with probability beta. The result is undirected.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) *graph.Graph {
	if k < 2 || k%2 != 0 || k >= n {
		panic(fmt.Sprintf("dataset: WattsStrogatz(n=%d, k=%d) requires even k in [2, n)", n, k))
	}
	if beta < 0 || beta > 1 {
		panic("dataset: WattsStrogatz beta outside [0,1]")
	}
	type key struct{ a, b graph.NodeID }
	norm := func(a, b graph.NodeID) key {
		if a > b {
			a, b = b, a
		}
		return key{a, b}
	}
	edges := make(map[key]bool, n*k/2)
	for u := 0; u < n; u++ {
		for d := 1; d <= k/2; d++ {
			v := (u + d) % n
			edges[norm(graph.NodeID(u), graph.NodeID(v))] = true
		}
	}
	// Rewire: each lattice edge (u, u+d) has its far endpoint replaced with
	// probability beta by a uniform non-duplicate target.
	for u := 0; u < n; u++ {
		for d := 1; d <= k/2; d++ {
			v := graph.NodeID((u + d) % n)
			e := norm(graph.NodeID(u), v)
			if !edges[e] || rng.Float64() >= beta {
				continue
			}
			// Try a few times to find a fresh endpoint; keep original on failure.
			for try := 0; try < 16; try++ {
				w := graph.NodeID(rng.Intn(n))
				if w == graph.NodeID(u) || edges[norm(graph.NodeID(u), w)] {
					continue
				}
				delete(edges, e)
				edges[norm(graph.NodeID(u), w)] = true
				break
			}
		}
	}
	g := graph.NewWithNodes(n, false)
	for e := range edges {
		g.AddEdge(e.a, e.b, 1)
	}
	return g
}

// ErdosRenyi generates a G(n, m) random graph with exactly m distinct edges
// (no self loops). directed controls arc semantics.
func ErdosRenyi(n, m int, directed bool, rng *rand.Rand) *graph.Graph {
	maxEdges := n * (n - 1)
	if !directed {
		maxEdges /= 2
	}
	if m > maxEdges {
		panic(fmt.Sprintf("dataset: ErdosRenyi m=%d exceeds max %d for n=%d", m, maxEdges, n))
	}
	g := graph.NewWithNodes(n, directed)
	seen := make(map[int64]bool, m)
	for g.NumEdges() < m {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		a, b := u, v
		if !directed && a > b {
			a, b = b, a
		}
		k := int64(a)<<32 | int64(uint32(b))
		if seen[k] {
			continue
		}
		seen[k] = true
		g.AddEdge(u, v, 1)
	}
	return g
}

// ScaleFreeDirected generates a directed power-law graph with n nodes and
// roughly avgOut outgoing arcs per node; in-degree follows preferential
// attachment so a few hub nodes accumulate many incoming arcs. Used for the
// directed presets (Email, Bitcoin).
func ScaleFreeDirected(n, avgOut int, rng *rand.Rand) *graph.Graph {
	if avgOut < 1 || n < 2 {
		panic("dataset: ScaleFreeDirected requires n >= 2, avgOut >= 1")
	}
	g := graph.NewWithNodes(n, true)
	// in-degree attractiveness: one phantom unit per node so early nodes
	// don't monopolize all attachment.
	repeated := make([]graph.NodeID, 0, n*(avgOut+1))
	for v := 0; v < n; v++ {
		repeated = append(repeated, graph.NodeID(v))
	}
	for u := 0; u < n; u++ {
		// Geometric-ish spread around avgOut keeps total edges ≈ n*avgOut.
		deg := avgOut
		if avgOut > 1 {
			deg = 1 + rng.Intn(2*avgOut-1)
		}
		used := make(map[graph.NodeID]bool, deg)
		for len(used) < deg {
			v := repeated[rng.Intn(len(repeated))]
			if v == graph.NodeID(u) || used[v] {
				// Accept some failed draws to avoid stalling on tiny graphs.
				if len(used) >= n-1 {
					break
				}
				continue
			}
			used[v] = true
			g.AddEdge(graph.NodeID(u), v, 1)
			repeated = append(repeated, v)
		}
	}
	return g
}

// ForestFire generates a graph by the forest-fire process: each new node
// links to an ambassador and recursively "burns" through a geometric number
// of the ambassador's neighbors. Produces densification and heavy tails
// resembling citation networks. p is the forward-burning probability.
func ForestFire(n int, p float64, rng *rand.Rand) *graph.Graph {
	if p < 0 || p >= 1 {
		panic("dataset: ForestFire requires p in [0,1)")
	}
	g := graph.NewWithNodes(n, false)
	if n < 2 {
		return g
	}
	g.AddEdge(0, 1, 1)
	for u := 2; u < n; u++ {
		visited := map[graph.NodeID]bool{graph.NodeID(u): true}
		frontier := []graph.NodeID{graph.NodeID(rng.Intn(u))}
		for len(frontier) > 0 {
			amb := frontier[0]
			frontier = frontier[1:]
			if visited[amb] {
				continue
			}
			visited[amb] = true
			g.AddEdge(graph.NodeID(u), amb, 1)
			// Burn a geometric(1-p) number of amb's neighbors.
			burn := 0
			for rng.Float64() < p {
				burn++
			}
			nbrs := g.Out(amb)
			for i := 0; i < burn && len(nbrs) > 0; i++ {
				cand := nbrs[rng.Intn(len(nbrs))].To
				if !visited[cand] {
					frontier = append(frontier, cand)
				}
			}
			if len(visited) > 1+u/2 {
				break // cap burn size to keep generation near-linear
			}
		}
	}
	return g
}
