package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"privim/internal/graph"
)

func TestBarabasiAlbertShape(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := BarabasiAlbert(500, 3, rng)
	if g.NumNodes() != 500 {
		t.Fatalf("nodes = %d, want 500", g.NumNodes())
	}
	// Seed clique: C(4,2)=6 edges, then 496 nodes × 3 edges.
	wantEdges := 6 + 496*3
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	// Heavy tail: max degree should far exceed average.
	st := g.ComputeStats()
	if float64(st.MaxOut) < 3*st.AvgDegree {
		t.Errorf("BA max degree %d not heavy-tailed vs avg %.2f", st.MaxOut, st.AvgDegree)
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= m")
		}
	}()
	BarabasiAlbert(3, 3, rand.New(rand.NewSource(1)))
}

func TestWattsStrogatzShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := WattsStrogatz(200, 6, 0.1, rng)
	if g.NumNodes() != 200 {
		t.Fatalf("nodes = %d, want 200", g.NumNodes())
	}
	if g.NumEdges() != 200*6/2 {
		t.Fatalf("edges = %d, want %d (rewiring preserves count)", g.NumEdges(), 200*3)
	}
	// beta=0 must be the exact ring lattice.
	lattice := WattsStrogatz(50, 4, 0, rng)
	for u := 0; u < 50; u++ {
		for d := 1; d <= 2; d++ {
			if !lattice.HasEdge(graph.NodeID(u), graph.NodeID((u+d)%50)) {
				t.Fatalf("lattice edge %d-%d missing at beta=0", u, (u+d)%50)
			}
		}
	}
}

func TestErdosRenyiExactEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ErdosRenyi(100, 250, false, rng)
	if g.NumEdges() != 250 {
		t.Fatalf("edges = %d, want 250", g.NumEdges())
	}
	gd := ErdosRenyi(50, 300, true, rng)
	if gd.NumEdges() != 300 || !gd.Directed() {
		t.Fatalf("directed ER: edges=%d directed=%v", gd.NumEdges(), gd.Directed())
	}
	// No self loops or duplicates.
	seen := map[[2]graph.NodeID]bool{}
	for _, e := range gd.Edges() {
		if e.From == e.To {
			t.Fatal("self loop in ER graph")
		}
		k := [2]graph.NodeID{e.From, e.To}
		if seen[k] {
			t.Fatalf("duplicate edge %v", k)
		}
		seen[k] = true
	}
}

func TestScaleFreeDirected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := ScaleFreeDirected(400, 6, rng)
	st := g.ComputeStats()
	if st.Nodes != 400 || !st.Directed {
		t.Fatalf("stats %+v", st)
	}
	if st.AvgDegree < 3 || st.AvgDegree > 9 {
		t.Errorf("avg out-degree %.2f far from target 6", st.AvgDegree)
	}
	if float64(st.MaxIn) < 3*st.AvgDegree {
		t.Errorf("expected in-degree hubs, max in-degree %d vs avg %.2f", st.MaxIn, st.AvgDegree)
	}
}

func TestForestFire(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := ForestFire(300, 0.35, rng)
	if g.NumNodes() != 300 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Every node (beyond the first) must be connected: single component.
	comps := graph.WeaklyConnectedComponents(g)
	if len(comps) != 1 {
		t.Fatalf("forest fire produced %d components, want 1", len(comps))
	}
}

func TestGeneratePresets(t *testing.T) {
	for _, p := range AllPresets() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			ds, err := Generate(p, Options{Scale: 0.05, Seed: 1, InfluenceProb: 1})
			if err != nil {
				t.Fatal(err)
			}
			spec, _ := SpecFor(p)
			wantN := int(float64(spec.Nodes) * 0.05)
			if wantN < 32 {
				wantN = 32
			}
			if ds.Graph.NumNodes() != wantN {
				t.Fatalf("nodes = %d, want %d", ds.Graph.NumNodes(), wantN)
			}
			if ds.Graph.Directed() != spec.Directed {
				t.Fatalf("directed = %v, want %v", ds.Graph.Directed(), spec.Directed)
			}
			st := ds.Graph.ComputeStats()
			// Average degree should land within 2x of the paper's target
			// (generators are tuned, not exact).
			ratio := st.AvgDegree / spec.AvgDegree
			if !spec.Directed {
				ratio = st.AvgDegree / spec.AvgDegree // out-degree counts both arc dirs for undirected
			}
			if ratio < 0.3 || ratio > 3 {
				t.Errorf("avg degree %.2f vs paper %.2f (ratio %.2f)", st.AvgDegree, spec.AvgDegree, ratio)
			}
			// 50/50 split covering all nodes exactly once.
			if len(ds.Train)+len(ds.Test) != ds.Graph.NumNodes() {
				t.Fatalf("split sizes %d+%d != %d", len(ds.Train), len(ds.Test), ds.Graph.NumNodes())
			}
			seen := make(map[graph.NodeID]bool)
			for _, v := range append(append([]graph.NodeID{}, ds.Train...), ds.Test...) {
				if seen[v] {
					t.Fatalf("node %d in both splits", v)
				}
				seen[v] = true
			}
		})
	}
}

func TestGenerateUnknownPreset(t *testing.T) {
	if _, err := Generate(Preset("nope"), Options{}); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Email, Options{Scale: 0.2, Seed: 99, InfluenceProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Email, Options{Scale: 0.2, Seed: 99, InfluenceProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("same seed produced different edge counts: %d vs %d", a.Graph.NumEdges(), b.Graph.NumEdges())
	}
	ae, be := a.Graph.Edges(), b.Graph.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
	}
}

func TestGenerateWeightedCascade(t *testing.T) {
	ds, err := Generate(Bitcoin, Options{Scale: 0.05, Seed: 2}) // InfluenceProb 0 -> WC
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	for v := 0; v < g.NumNodes(); v++ {
		in := g.In(graph.NodeID(v))
		for _, a := range in {
			want := 1 / float64(len(in))
			if math.Abs(a.Weight-want) > 1e-12 {
				t.Fatalf("node %d: in-arc weight %v, want 1/indegree=%v", v, a.Weight, want)
			}
		}
	}
}

func TestGeneratePartitioned(t *testing.T) {
	parts, err := GeneratePartitioned(4, 200, Options{Seed: 3, InfluenceProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("parts = %d, want 4", len(parts))
	}
	for i, p := range parts {
		if p.Graph.NumNodes() != 200 {
			t.Fatalf("part %d has %d nodes", i, p.Graph.NumNodes())
		}
		if p.Name != Friendster {
			t.Fatalf("part %d name %q", i, p.Name)
		}
	}
	// Different parts must differ (independent seeds): compare full edge
	// lists, since the BA seed clique is identical by construction.
	a, b := parts[0].Graph.Edges(), parts[1].Graph.Edges()
	identical := len(a) == len(b)
	if identical {
		for i := range a {
			if a[i] != b[i] {
				identical = false
				break
			}
		}
	}
	if identical {
		t.Error("partitions identical; seeds not varied")
	}
}

func TestGeneratePartitionedInvalid(t *testing.T) {
	if _, err := GeneratePartitioned(0, 200, Options{}); err == nil {
		t.Fatal("expected error for 0 parts")
	}
	if _, err := GeneratePartitioned(2, 8, Options{}); err == nil {
		t.Fatal("expected error for tiny parts")
	}
}

func TestTrainTestSubgraphs(t *testing.T) {
	ds, err := Generate(Email, Options{Scale: 0.1, Seed: 5, InfluenceProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := ds.TrainSubgraph()
	te := ds.TestSubgraph()
	if tr.G.NumNodes() != len(ds.Train) || te.G.NumNodes() != len(ds.Test) {
		t.Fatalf("subgraph sizes %d/%d, want %d/%d", tr.G.NumNodes(), te.G.NumNodes(), len(ds.Train), len(ds.Test))
	}
}

func TestStructuralFeatures(t *testing.T) {
	g := graph.NewWithNodes(3, true)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(0, 2, 0.5)
	g.AddEdge(1, 2, 1)
	x := StructuralFeatures(g)
	if len(x) != 3*NumStructuralFeatures {
		t.Fatalf("feature length %d, want %d", len(x), 3*NumStructuralFeatures)
	}
	// Node 0: out-degree 2 (max), so feature 0 == 1.
	if x[0] != 1 {
		t.Fatalf("node 0 out-degree feature = %v, want 1 (it is the max)", x[0])
	}
	// Node 2: out-degree 0, so log(1)/norm = 0.
	if x[2*NumStructuralFeatures] != 0 {
		t.Fatalf("node 2 out-degree feature = %v, want 0", x[2*NumStructuralFeatures])
	}
	// Bias channel always 1.
	for v := 0; v < 3; v++ {
		if x[v*NumStructuralFeatures+3] != 1 {
			t.Fatalf("bias channel for node %d = %v", v, x[v*NumStructuralFeatures+3])
		}
	}
	// All features in [0,1].
	for i, f := range x {
		if f < 0 || f > 1 || math.IsNaN(f) {
			t.Fatalf("feature %d = %v outside [0,1]", i, f)
		}
	}
}

// Property: structural features are always finite and bounded for random graphs.
func TestStructuralFeaturesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(40, 80, true, rng)
		for _, v := range StructuralFeatures(g) {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
