package dataset

import (
	"strings"
	"testing"
)

func TestLoadSNAPBasic(t *testing.T) {
	input := `# Directed graph: example
# FromNodeId	ToNodeId
1001	2002
2002	3003
1001	3003
3003	1001
`
	g, err := LoadSNAP(strings.NewReader(input), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3 (dense remap)", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
	// First-appearance order: 1001->0, 2002->1, 3003->2.
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Fatal("edge remap wrong")
	}
}

func TestLoadSNAPDropsSelfLoopsAndComments(t *testing.T) {
	input := "% alt comment style\n5 5\n5 6\n\n# trailing comment\n"
	g, err := LoadSNAP(strings.NewReader(input), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %v, want 2 nodes 1 edge", g)
	}
	if g.Directed() {
		t.Fatal("directedness flag lost")
	}
}

func TestLoadSNAPThirdColumnIgnored(t *testing.T) {
	// Bitcoin-OTC style: SOURCE,TARGET,RATING — whitespace variant.
	input := "10 20 4\n20 30 -10\n"
	g, err := LoadSNAP(strings.NewReader(input), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if w, _ := g.Weight(0, 1); w != 1 {
		t.Fatalf("weight = %v, want placeholder 1", w)
	}
}

func TestLoadSNAPErrors(t *testing.T) {
	for _, bad := range []string{"abc def\n", "1\n", "1 xyz\n"} {
		if _, err := LoadSNAP(strings.NewReader(bad), true); err == nil {
			t.Errorf("LoadSNAP(%q): expected error", bad)
		}
	}
}

func TestFromGraph(t *testing.T) {
	g, err := LoadSNAP(strings.NewReader("0 1\n1 2\n2 0\n3 0\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	ds := FromGraph("custom", g, Options{Seed: 1, InfluenceProb: 0.5})
	if ds.Graph.NumNodes() != 4 {
		t.Fatalf("nodes = %d", ds.Graph.NumNodes())
	}
	if len(ds.Train)+len(ds.Test) != 4 {
		t.Fatalf("split sizes %d+%d", len(ds.Train), len(ds.Test))
	}
	for _, e := range ds.Graph.Edges() {
		if e.Weight != 0.5 {
			t.Fatalf("weight %v, want 0.5", e.Weight)
		}
	}
	// Weighted cascade variant.
	g2, _ := LoadSNAP(strings.NewReader("0 1\n2 1\n"), true)
	ds2 := FromGraph("custom", g2, Options{Seed: 1})
	if w, _ := ds2.Graph.Weight(0, 1); w != 0.5 {
		t.Fatalf("WC weight = %v, want 1/indegree = 0.5", w)
	}
}
