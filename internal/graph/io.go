package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in a whitespace-separated "u v w" text format with
// a header comment recording node count and directedness. The format round
// trips through ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	dir := 0
	if g.Directed() {
		dir = 1
	}
	if _, err := fmt.Fprintf(bw, "# privim-edgelist nodes=%d directed=%d\n", g.NumNodes(), dir); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.From, e.To, e.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList. Lines starting
// with '#' other than the header are ignored; the weight column is optional
// and defaults to 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var g *Graph
	nodes, directed := 0, true
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.Contains(line, "privim-edgelist") {
				for _, tok := range strings.Fields(line) {
					if v, ok := strings.CutPrefix(tok, "nodes="); ok {
						n, err := strconv.Atoi(v)
						if err != nil {
							return nil, fmt.Errorf("graph: line %d: bad nodes=%q", lineNo, v)
						}
						nodes = n
					}
					if v, ok := strings.CutPrefix(tok, "directed="); ok {
						directed = v != "0"
					}
				}
			}
			continue
		}
		if g == nil {
			g = NewWithNodes(nodes, directed)
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'u v [w]', got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil || u < 0 {
			return nil, fmt.Errorf("graph: line %d: bad source %q", lineNo, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil || v < 0 {
			return nil, fmt.Errorf("graph: line %d: bad target %q", lineNo, fields[1])
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil || math.IsNaN(w) || w < 0 || w > 1 {
				return nil, fmt.Errorf("graph: line %d: bad weight %q (want [0,1])", lineNo, fields[2])
			}
		}
		if max := u; true {
			if v > max {
				max = v
			}
			g.EnsureNodes(max + 1)
		}
		g.AddEdge(NodeID(u), NodeID(v), w)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		g = NewWithNodes(nodes, directed)
	}
	return g, nil
}
