package graph

import "math"

// FNV-1a 64-bit constants (hash/fnv's parameters, inlined so hashing the
// edge stream needs no per-edge allocations or Writer indirection).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Fingerprint returns a deterministic 64-bit content hash of the graph:
// FNV-1a over the canonical node/edge/weight stream (directedness flag,
// node count, then every arc as (from, to, weight-bits) in adjacency
// order). Two graphs built by the same sequence of AddEdge calls — or
// round-tripped through WriteEdgeList/ReadEdgeList — fingerprint
// identically, so the value is usable as a cache key anywhere a result
// depends only on the graph (the serving layer keys its model-output
// cache on it, and the graph store uses it as a content address).
//
// The hash covers structure and weights but not adjacency-slice capacity
// or construction history beyond arc order; it is not cryptographic and
// must not be used for integrity against an adversary.
//
// Endpoint IDs are folded through uint32 before hashing, so the stream
// assumes node IDs below 2³² — two IDs that differ only above bit 31
// would collide. That is far beyond the node counts this repo handles
// (NodeID is an int64 only for arithmetic convenience); revisit the
// folding before supporting larger graphs. Weights hash by exact IEEE
// bit pattern (Float64bits), so +0 and -0 fingerprint differently —
// deliberate, since the canonical edge-list text form also preserves the
// sign.
func (g *Graph) Fingerprint() uint64 {
	h := uint64(fnvOffset64)
	if g.directed {
		h = fnvMix(h, 1)
	} else {
		h = fnvMix(h, 0)
	}
	h = fnvMix(h, uint64(len(g.out)))
	for u := range g.out {
		for _, a := range g.out[u] {
			h = fnvMix(h, uint64(uint32(u)))
			h = fnvMix(h, uint64(uint32(a.To)))
			h = fnvMix(h, math.Float64bits(a.Weight))
		}
	}
	return h
}

// fnvMix folds one 64-bit word into the running FNV-1a state, low byte
// first.
func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}
