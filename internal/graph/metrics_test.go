package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDegreeHistogram(t *testing.T) {
	g := NewWithNodes(4, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 2, 1)
	hist := DegreeHistogram(g)
	// deg 0: nodes 2, 3; deg 1: node 1; deg 2: node 0.
	want := []int{2, 1, 1}
	if len(hist) != 3 {
		t.Fatalf("hist length %d, want 3", len(hist))
	}
	for i := range want {
		if hist[i] != want[i] {
			t.Fatalf("hist = %v, want %v", hist, want)
		}
	}
}

func TestClusteringCoefficientTriangle(t *testing.T) {
	// Complete triangle: every node's two neighbors are connected, C = 1.
	g := NewWithNodes(3, false)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	if c := ClusteringCoefficient(g); math.Abs(c-1) > 1e-12 {
		t.Fatalf("triangle clustering = %v, want 1", c)
	}
	// Path: middle node's neighbors not connected, C = 0.
	p := NewWithNodes(3, false)
	p.AddEdge(0, 1, 1)
	p.AddEdge(1, 2, 1)
	if c := ClusteringCoefficient(p); c != 0 {
		t.Fatalf("path clustering = %v, want 0", c)
	}
	if ClusteringCoefficient(New(false)) != 0 {
		t.Fatal("empty graph clustering should be 0")
	}
}

func TestClusteringDistinguishesWSFromER(t *testing.T) {
	// Small-world graphs cluster far more than ER at equal density — the
	// property that motivates the Facebook preset's WS model.
	// Ring lattice (WS beta=0): k=4 lattice has C = 0.5.
	n := 100
	ws := NewWithNodes(n, false)
	for u := 0; u < n; u++ {
		ws.AddEdge(NodeID(u), NodeID((u+1)%n), 1)
		ws.AddEdge(NodeID(u), NodeID((u+2)%n), 1)
	}
	cWS := ClusteringCoefficient(ws)
	if math.Abs(cWS-0.5) > 1e-9 {
		t.Fatalf("lattice clustering = %v, want 0.5", cWS)
	}
}

func TestReciprocity(t *testing.T) {
	g := NewWithNodes(3, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1) // reciprocated pair
	g.AddEdge(1, 2, 1) // one-way
	if r := Reciprocity(g); math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("reciprocity = %v, want 2/3", r)
	}
	if Reciprocity(New(true)) != 0 {
		t.Fatal("edgeless reciprocity should be 0")
	}
	u := NewWithNodes(2, false)
	u.AddEdge(0, 1, 1)
	if Reciprocity(u) != 1 {
		t.Fatal("undirected reciprocity should be 1")
	}
}

func TestKCoreKnownGraphs(t *testing.T) {
	// K4 plus a pendant: K4 nodes have core 3, pendant core 1.
	g := NewWithNodes(5, false)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(NodeID(i), NodeID(j), 1)
		}
	}
	g.AddEdge(0, 4, 1)
	core := KCore(g)
	for v := 0; v < 4; v++ {
		if core[v] != 3 {
			t.Fatalf("K4 node %d core = %d, want 3 (all: %v)", v, core[v], core)
		}
	}
	if core[4] != 1 {
		t.Fatalf("pendant core = %d, want 1", core[4])
	}
	if Degeneracy(g) != 3 {
		t.Fatalf("degeneracy = %d, want 3", Degeneracy(g))
	}
}

func TestKCoreStar(t *testing.T) {
	// Star K1,5: every node (including the hub) has core 1.
	g := NewWithNodes(6, false)
	for v := 1; v < 6; v++ {
		g.AddEdge(0, NodeID(v), 1)
	}
	for v, c := range KCore(g) {
		if c != 1 {
			t.Fatalf("star node %d core = %d, want 1", v, c)
		}
	}
}

func TestKCoreEmptyAndIsolated(t *testing.T) {
	if len(KCore(New(false))) != 0 {
		t.Fatal("empty graph should have no cores")
	}
	g := NewWithNodes(3, true)
	for _, c := range KCore(g) {
		if c != 0 {
			t.Fatalf("isolated nodes must have core 0, got %v", KCore(g))
		}
	}
	if Degeneracy(g) != 0 {
		t.Fatal("isolated degeneracy should be 0")
	}
}

// Property: every node's core number is at most its weak degree, and the
// k-core subgraph induced by {v : core(v) >= k} has min weak degree >= k
// within it for k = degeneracy.
func TestKCoreProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		g := NewWithNodes(n, false)
		for i := 0; i < 60; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v, 1)
			}
		}
		core := KCore(g)
		weakDeg := func(v NodeID, members map[NodeID]bool) int {
			seen := map[NodeID]bool{}
			for _, a := range g.Out(v) {
				if a.To != v && (members == nil || members[a.To]) {
					seen[a.To] = true
				}
			}
			for _, a := range g.In(v) {
				if a.To != v && (members == nil || members[a.To]) {
					seen[a.To] = true
				}
			}
			return len(seen)
		}
		k := 0
		for v := 0; v < n; v++ {
			if core[v] > weakDeg(NodeID(v), nil) {
				return false
			}
			if core[v] > k {
				k = core[v]
			}
		}
		if k == 0 {
			return true
		}
		members := map[NodeID]bool{}
		for v := 0; v < n; v++ {
			if core[v] >= k {
				members[NodeID(v)] = true
			}
		}
		for v := range members {
			if weakDeg(v, members) < k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
