package graph

import "math/rand"

// ProjectInDegree returns the θ-bounded projection G^θ of g (§III-B): for
// every node whose in-degree exceeds theta, incoming arcs are removed
// uniformly at random until exactly theta remain. Out-degrees are only
// affected indirectly. The projection is the first step of the naive PrivIM
// pipeline and bounds per-node influence for the sensitivity analysis
// (Lemma 1).
//
// The result is always a directed graph: the paper treats undirected graphs
// as directed (each undirected edge contributes two arcs) and projection can
// break the symmetry between the two arc directions.
func ProjectInDegree(g *Graph, theta int, rng *rand.Rand) *Graph {
	if theta < 1 {
		panic("graph: ProjectInDegree requires theta >= 1")
	}
	n := g.NumNodes()
	p := NewWithNodes(n, true)
	// For each target node v choose up to theta incoming arcs.
	for v := 0; v < n; v++ {
		in := g.In(NodeID(v))
		if len(in) <= theta {
			for _, a := range in {
				p.AddEdge(a.To, NodeID(v), a.Weight)
			}
			continue
		}
		// Reservoir-free selection: shuffle a copy of the index set and take
		// the first theta entries.
		idx := rng.Perm(len(in))[:theta]
		for _, i := range idx {
			p.AddEdge(in[i].To, NodeID(v), in[i].Weight)
		}
	}
	return p
}

// MaxOccurrence returns N_g from Lemma 1: the worst-case number of times a
// single node can occur across the subgraphs extracted by Algorithm 1 on a
// θ-bounded graph with an r-layer GNN, N_g = Σ_{i=0}^{r} θ^i.
// It saturates at maxInt to avoid overflow for large θ^r.
func MaxOccurrence(theta, r int) int {
	if theta < 1 || r < 0 {
		panic("graph: MaxOccurrence requires theta >= 1, r >= 0")
	}
	if theta == 1 {
		return r + 1
	}
	const maxInt = int(^uint(0) >> 1)
	total, pow := 0, 1
	for i := 0; i <= r; i++ {
		if total > maxInt-pow {
			return maxInt
		}
		total += pow
		if i < r && pow > maxInt/theta {
			return maxInt
		}
		if i < r {
			pow *= theta
		}
	}
	return total
}
