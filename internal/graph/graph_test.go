package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeDirected(t *testing.T) {
	g := NewWithNodes(3, true)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(1, 2, 0.25)

	if got := g.NumEdges(); got != 2 {
		t.Fatalf("NumEdges = %d, want 2", got)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatalf("directed edge direction wrong: 0->1=%v 1->0=%v", g.HasEdge(0, 1), g.HasEdge(1, 0))
	}
	if w, ok := g.Weight(0, 1); !ok || w != 0.5 {
		t.Fatalf("Weight(0,1) = %v,%v want 0.5,true", w, ok)
	}
	if g.OutDegree(0) != 1 || g.InDegree(1) != 1 || g.InDegree(2) != 1 {
		t.Fatalf("degrees wrong: out(0)=%d in(1)=%d in(2)=%d", g.OutDegree(0), g.InDegree(1), g.InDegree(2))
	}
}

func TestAddEdgeUndirected(t *testing.T) {
	g := NewWithNodes(3, false)
	g.AddEdge(0, 1, 1)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge must be traversable both ways")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 for single undirected edge", g.NumEdges())
	}
	if len(g.Edges()) != 1 {
		t.Fatalf("Edges() reported %d entries, want 1", len(g.Edges()))
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := NewWithNodes(2, true)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"out of range", func() { g.AddEdge(0, 5, 1) }},
		{"negative node", func() { g.AddEdge(-1, 0, 1) }},
		{"weight > 1", func() { g.AddEdge(0, 1, 1.5) }},
		{"negative weight", func() { g.AddEdge(0, 1, -0.1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := NewWithNodes(2, true)
	g.AddEdge(0, 1, 0.3)
	c := g.Clone()
	c.AddEdge(1, 0, 0.7)
	if g.HasEdge(1, 0) {
		t.Fatal("mutating clone affected original")
	}
	if c.NumEdges() != 2 || g.NumEdges() != 1 {
		t.Fatalf("edge counts: clone=%d orig=%d", c.NumEdges(), g.NumEdges())
	}
}

func TestSetUniformWeights(t *testing.T) {
	g := NewWithNodes(3, true)
	g.AddEdge(0, 1, 0.2)
	g.AddEdge(1, 2, 0.9)
	g.SetUniformWeights(1)
	for _, e := range g.Edges() {
		if e.Weight != 1 {
			t.Fatalf("edge %v weight %v after SetUniformWeights(1)", e, e.Weight)
		}
	}
	// Reverse adjacency must be updated too.
	for _, a := range g.In(2) {
		if a.Weight != 1 {
			t.Fatalf("in-arc weight %v, want 1", a.Weight)
		}
	}
}

func TestSetWeightedCascade(t *testing.T) {
	g := NewWithNodes(4, true)
	g.AddEdge(0, 3, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 1)
	g.SetWeightedCascade()
	if w, _ := g.Weight(0, 3); w != 1.0/3 {
		t.Fatalf("w(0,3) = %v, want 1/3", w)
	}
	if w, _ := g.Weight(3, 0); w != 1 {
		t.Fatalf("w(3,0) = %v, want 1 (indegree(0)=1)", w)
	}
}

func TestComputeStats(t *testing.T) {
	g := NewWithNodes(4, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	g.AddEdge(1, 3, 1)
	s := g.ComputeStats()
	if s.Nodes != 4 || s.Edges != 4 {
		t.Fatalf("stats %+v: want 4 nodes 4 edges", s)
	}
	if s.MaxOut != 3 || s.MaxIn != 2 {
		t.Fatalf("stats %+v: want MaxOut=3 MaxIn=2", s)
	}
	if s.AvgDegree != 1 {
		t.Fatalf("AvgDegree = %v, want 1", s.AvgDegree)
	}
}

func TestProjectInDegreeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewWithNodes(50, true)
	for u := 0; u < 49; u++ {
		g.AddEdge(NodeID(u), 49, 1) // node 49 has in-degree 49
		if u > 0 {
			g.AddEdge(NodeID(u), NodeID(u-1), 0.5)
		}
	}
	const theta = 5
	p := ProjectInDegree(g, theta, rng)
	for v := 0; v < p.NumNodes(); v++ {
		if d := p.InDegree(NodeID(v)); d > theta {
			t.Fatalf("node %d has in-degree %d > theta %d after projection", v, d, theta)
		}
	}
	if p.InDegree(49) != theta {
		t.Fatalf("hub in-degree %d, want exactly theta=%d", p.InDegree(49), theta)
	}
	// Projection must not invent edges.
	for v := 0; v < p.NumNodes(); v++ {
		for _, a := range p.Out(NodeID(v)) {
			if !g.HasEdge(NodeID(v), a.To) {
				t.Fatalf("projection invented edge %d->%d", v, a.To)
			}
		}
	}
}

func TestProjectInDegreePreservesSmallNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewWithNodes(4, true)
	g.AddEdge(0, 1, 0.4)
	g.AddEdge(2, 3, 0.6)
	p := ProjectInDegree(g, 10, rng)
	if p.NumEdges() != 2 || !p.HasEdge(0, 1) || !p.HasEdge(2, 3) {
		t.Fatalf("projection with large theta should be identity, got %v", p)
	}
}

// Property: projection never increases any in-degree and respects theta.
func TestProjectInDegreeProperty(t *testing.T) {
	f := func(seed int64, rawTheta uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		theta := int(rawTheta%8) + 1
		n := 30
		g := NewWithNodes(n, true)
		for i := 0; i < 120; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			g.AddEdge(u, v, rng.Float64())
		}
		p := ProjectInDegree(g, theta, rng)
		for v := 0; v < n; v++ {
			if p.InDegree(NodeID(v)) > theta {
				return false
			}
			if p.InDegree(NodeID(v)) > g.InDegree(NodeID(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxOccurrence(t *testing.T) {
	cases := []struct {
		theta, r, want int
	}{
		{10, 0, 1},
		{10, 1, 11},
		{10, 3, 1111},
		{2, 3, 15},
		{1, 5, 6},
	}
	for _, tc := range cases {
		if got := MaxOccurrence(tc.theta, tc.r); got != tc.want {
			t.Errorf("MaxOccurrence(%d,%d) = %d, want %d", tc.theta, tc.r, got, tc.want)
		}
	}
}

func TestMaxOccurrenceSaturates(t *testing.T) {
	got := MaxOccurrence(1000, 50)
	if got != int(^uint(0)>>1) {
		t.Fatalf("MaxOccurrence(1000,50) = %d, want saturation at maxInt", got)
	}
}

func TestInduce(t *testing.T) {
	g := NewWithNodes(5, true)
	g.AddEdge(0, 1, 0.1)
	g.AddEdge(1, 2, 0.2)
	g.AddEdge(2, 3, 0.3)
	g.AddEdge(3, 0, 0.4)
	g.AddEdge(4, 0, 0.5)

	sub := Induce(g, []NodeID{2, 0, 1, 2}) // duplicate 2 ignored
	if sub.G.NumNodes() != 3 {
		t.Fatalf("induced nodes = %d, want 3", sub.G.NumNodes())
	}
	if sub.Orig[0] != 2 || sub.Orig[1] != 0 || sub.Orig[2] != 1 {
		t.Fatalf("Orig order %v, want [2 0 1] (first-appearance order)", sub.Orig)
	}
	// Edges inside {0,1,2}: 0->1, 1->2. Local: 0 is local 1, 1 is local 2, 2 is local 0.
	if sub.G.NumEdges() != 2 {
		t.Fatalf("induced edges = %d, want 2", sub.G.NumEdges())
	}
	if !sub.G.HasEdge(1, 2) { // parent 0->1
		t.Fatal("missing induced edge parent 0->1")
	}
	if !sub.G.HasEdge(2, 0) { // parent 1->2
		t.Fatal("missing induced edge parent 1->2")
	}
	if !sub.Contains(2) || sub.Contains(4) {
		t.Fatal("Contains wrong")
	}
}

func TestRemoveNodes(t *testing.T) {
	g := NewWithNodes(4, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	out, keep := RemoveNodes(g, map[NodeID]bool{1: true})
	if out.NumNodes() != 3 {
		t.Fatalf("nodes after removal = %d, want 3", out.NumNodes())
	}
	if len(keep) != 3 || keep[0] != 0 || keep[1] != 2 || keep[2] != 3 {
		t.Fatalf("keep = %v, want [0 2 3]", keep)
	}
	// Only edge 2->3 survives, as new IDs 1->2.
	if out.NumEdges() != 1 || !out.HasEdge(1, 2) {
		t.Fatalf("edges after removal wrong: %d edges", out.NumEdges())
	}
}

func TestRHopNeighborhood(t *testing.T) {
	g := NewWithNodes(5, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	for r, want := range map[int]int{0: 1, 1: 2, 2: 3, 4: 5} {
		got := RHopNeighborhood(g, 0, r)
		if len(got) != want {
			t.Errorf("r=%d: |N_r| = %d, want %d", r, len(got), want)
		}
		if !got[0] {
			t.Errorf("r=%d: N_r must contain the start node", r)
		}
	}
}

func TestBFSOrder(t *testing.T) {
	g := NewWithNodes(6, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 4, 1)
	order := BFSOrder(g, 0, 0)
	if len(order) != 5 {
		t.Fatalf("BFS reached %d nodes, want 5 (node 5 isolated)", len(order))
	}
	if order[0] != 0 {
		t.Fatalf("BFS must start at root, got %v", order)
	}
	limited := BFSOrder(g, 0, 3)
	if len(limited) != 3 {
		t.Fatalf("limited BFS returned %d nodes, want 3", len(limited))
	}
}

func TestBFSOrderDepth(t *testing.T) {
	g := NewWithNodes(6, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 4, 1)
	for depth, want := range map[int]int{0: 1, 1: 3, 2: 4, 5: 5} {
		if got := BFSOrderDepth(g, 0, depth); len(got) != want {
			t.Errorf("depth %d: reached %d nodes, want %d", depth, len(got), want)
		}
	}
	if got := BFSOrderDepth(g, 0, 1); got[0] != 0 {
		t.Fatalf("order must start at root, got %v", got)
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	g := NewWithNodes(7, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 1, 1) // weakly connects 2 to {0,1}
	g.AddEdge(3, 4, 1)
	// 5, 6 isolated
	comps := WeaklyConnectedComponents(g)
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Fatalf("component sizes %d,%d want 3,2 (largest first)", len(comps[0]), len(comps[1]))
	}
	lc := LargestComponent(g)
	if lc.G.NumNodes() != 3 {
		t.Fatalf("largest component has %d nodes, want 3", lc.G.NumNodes())
	}
}

func TestSimplify(t *testing.T) {
	g := NewWithNodes(3, true)
	g.AddEdge(0, 1, 0.2)
	g.AddEdge(0, 1, 0.8) // parallel, keep max
	g.AddEdge(1, 1, 1.0) // self loop, drop
	g.AddEdge(1, 2, 0.5)
	s := g.Simplify()
	if s.NumEdges() != 2 {
		t.Fatalf("simplified edges = %d, want 2", s.NumEdges())
	}
	if w, _ := s.Weight(0, 1); w != 0.8 {
		t.Fatalf("parallel merge kept weight %v, want max 0.8", w)
	}
	if s.HasEdge(1, 1) {
		t.Fatal("self loop survived Simplify")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := NewWithNodes(4, true)
	g.AddEdge(0, 1, 0.25)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 0, 0.125)

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 4 || got.NumEdges() != 3 {
		t.Fatalf("round trip: %v, want 4 nodes 3 edges", got)
	}
	if !got.Directed() {
		t.Fatal("directedness lost in round trip")
	}
	if w, ok := got.Weight(3, 0); !ok || w != 0.125 {
		t.Fatalf("weight lost: %v %v", w, ok)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{
		"0\n",
		"a b\n",
		"0 b\n",
		"0 1 x\n",
	} {
		if _, err := ReadEdgeList(bytes.NewBufferString(bad)); err == nil {
			t.Errorf("ReadEdgeList(%q): expected error", bad)
		}
	}
}

func TestReadEdgeListDefaults(t *testing.T) {
	g, err := ReadEdgeList(bytes.NewBufferString("# a comment\n0 1\n2 0 0.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3 (auto-grown)", g.NumNodes())
	}
	if w, _ := g.Weight(0, 1); w != 1 {
		t.Fatalf("default weight = %v, want 1", w)
	}
}

func TestReadEdgeListEmpty(t *testing.T) {
	g, err := ReadEdgeList(bytes.NewBufferString("# privim-edgelist nodes=5 directed=0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 || g.Directed() {
		t.Fatalf("got %v, want 5-node undirected empty graph", g)
	}
}
