// Package graph provides the directed weighted graph substrate used by the
// PrivIM framework: adjacency-list graphs with influence-probability edge
// weights, θ-bounded in-degree projection, r-hop neighborhoods, induced
// subgraphs, and structural statistics.
//
// Graphs are directed (Definition 1 / §II-A of the paper); undirected inputs
// are represented by storing both arc directions. Edge weights w(u,v) ∈ [0,1]
// are Independent Cascade influence probabilities.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node within a Graph. IDs are dense: a graph with n
// nodes uses IDs 0..n-1.
type NodeID = int32

// Edge is a directed arc u→v with influence probability Weight.
type Edge struct {
	From, To NodeID
	Weight   float64
}

// Graph is a directed weighted graph stored as forward and reverse adjacency
// lists. The zero value is an empty graph; use New or NewWithNodes to
// construct one. Graph is not safe for concurrent mutation, but all read
// methods may be used concurrently once construction is complete.
type Graph struct {
	// out[u] lists arcs leaving u; in[v] lists arcs entering v.
	out [][]Arc
	in  [][]Arc

	numEdges int
	directed bool
}

// Arc is one endpoint-weight pair in an adjacency list.
type Arc struct {
	To     NodeID
	Weight float64
}

// New returns an empty graph. If directed is false, AddEdge inserts arcs in
// both directions (but the edge is counted once in NumEdges).
func New(directed bool) *Graph {
	return &Graph{directed: directed}
}

// NewWithNodes returns a graph with n isolated nodes.
func NewWithNodes(n int, directed bool) *Graph {
	g := New(directed)
	g.EnsureNodes(n)
	return g
}

// Directed reports whether the graph was constructed as directed.
func (g *Graph) Directed() bool { return g.directed }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.out) }

// NumEdges returns the number of logical edges: arcs for directed graphs,
// undirected edges (stored as two arcs) for undirected graphs.
func (g *Graph) NumEdges() int { return g.numEdges }

// EnsureNodes grows the graph so that it contains at least n nodes.
func (g *Graph) EnsureNodes(n int) {
	if len(g.out) >= n {
		return
	}
	if cap(g.out) >= n && cap(g.in) >= n {
		// Entries past the old length have never been written (append only
		// ever grows these slices), so reslicing exposes nil lists.
		g.out = g.out[:n]
		g.in = g.in[:n]
		return
	}
	out := make([][]Arc, n)
	copy(out, g.out)
	g.out = out
	in := make([][]Arc, n)
	copy(in, g.in)
	g.in = in
}

// AddNode appends a new isolated node and returns its ID.
func (g *Graph) AddNode() NodeID {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return NodeID(len(g.out) - 1)
}

// AddEdge inserts the edge u→v with weight w (and v→u for undirected
// graphs). It panics if u or v is out of range or w is outside [0,1].
// Parallel edges are permitted; callers that need simple graphs should use
// HasEdge first or deduplicate with Simplify.
func (g *Graph) AddEdge(u, v NodeID, w float64) {
	if int(u) >= len(g.out) || int(v) >= len(g.out) || u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) out of range [0,%d)", u, v, len(g.out)))
	}
	if w < 0 || w > 1 || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: AddEdge weight %v outside [0,1]", w))
	}
	g.out[u] = append(g.out[u], Arc{To: v, Weight: w})
	g.in[v] = append(g.in[v], Arc{To: u, Weight: w})
	if !g.directed && u != v {
		g.out[v] = append(g.out[v], Arc{To: u, Weight: w})
		g.in[u] = append(g.in[u], Arc{To: v, Weight: w})
	}
	g.numEdges++
}

// HasEdge reports whether at least one arc u→v exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	for _, a := range g.out[u] {
		if a.To == v {
			return true
		}
	}
	return false
}

// Weight returns the weight of the first arc u→v and whether it exists.
func (g *Graph) Weight(u, v NodeID) (float64, bool) {
	for _, a := range g.out[u] {
		if a.To == v {
			return a.Weight, true
		}
	}
	return 0, false
}

// Out returns the arcs leaving u. The returned slice is owned by the graph
// and must not be modified.
func (g *Graph) Out(u NodeID) []Arc { return g.out[u] }

// In returns the arcs entering v. The returned slice is owned by the graph
// and must not be modified.
func (g *Graph) In(v NodeID) []Arc { return g.in[v] }

// OutDegree returns the number of arcs leaving u.
func (g *Graph) OutDegree(u NodeID) int { return len(g.out[u]) }

// InDegree returns the number of arcs entering v.
func (g *Graph) InDegree(v NodeID) int { return len(g.in[v]) }

// Edges returns all logical edges in deterministic order (sorted by source,
// then insertion order). For undirected graphs each edge is reported once,
// oriented from its first insertion endpoint.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.numEdges)
	if g.directed {
		for u := range g.out {
			for _, a := range g.out[u] {
				edges = append(edges, Edge{From: NodeID(u), To: a.To, Weight: a.Weight})
			}
		}
		return edges
	}
	// Undirected: report u<=v orientation once. Self loops appear once by
	// construction.
	for u := range g.out {
		for _, a := range g.out[u] {
			if NodeID(u) <= a.To {
				edges = append(edges, Edge{From: NodeID(u), To: a.To, Weight: a.Weight})
			}
		}
	}
	return edges
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		out:      make([][]Arc, len(g.out)),
		in:       make([][]Arc, len(g.in)),
		numEdges: g.numEdges,
		directed: g.directed,
	}
	for i := range g.out {
		c.out[i] = append([]Arc(nil), g.out[i]...)
		c.in[i] = append([]Arc(nil), g.in[i]...)
	}
	return c
}

// SetUniformWeights overwrites every arc weight with w.
func (g *Graph) SetUniformWeights(w float64) {
	if w < 0 || w > 1 {
		panic("graph: SetUniformWeights outside [0,1]")
	}
	for u := range g.out {
		for i := range g.out[u] {
			g.out[u][i].Weight = w
		}
		for i := range g.in[u] {
			g.in[u][i].Weight = w
		}
	}
}

// SetWeightedCascade assigns each arc u→v the weight 1/indegree(v), the
// standard Weighted Cascade parametrization of the IC model.
func (g *Graph) SetWeightedCascade() {
	for u := range g.out {
		for i := range g.out[u] {
			v := g.out[u][i].To
			g.out[u][i].Weight = 1 / float64(len(g.in[v]))
		}
	}
	for v := range g.in {
		w := 1 / float64(len(g.in[v]))
		for i := range g.in[v] {
			g.in[v][i].Weight = w
		}
	}
}

// Stats summarises a graph's structure (Table I columns).
type Stats struct {
	Nodes     int
	Edges     int
	Directed  bool
	AvgDegree float64 // mean out-degree for directed, mean degree for undirected
	MaxIn     int
	MaxOut    int
}

// ComputeStats returns structural statistics for g.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges(), Directed: g.directed}
	if s.Nodes == 0 {
		return s
	}
	totalOut := 0
	for u := range g.out {
		totalOut += len(g.out[u])
		if len(g.out[u]) > s.MaxOut {
			s.MaxOut = len(g.out[u])
		}
		if len(g.in[u]) > s.MaxIn {
			s.MaxIn = len(g.in[u])
		}
	}
	s.AvgDegree = float64(totalOut) / float64(s.Nodes)
	return s
}

// String implements fmt.Stringer with a compact structural summary.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	return fmt.Sprintf("graph(%s, |V|=%d, |E|=%d)", kind, g.NumNodes(), g.NumEdges())
}

// Simplify returns a copy of g with parallel arcs merged (keeping the
// maximum weight) and self-loops removed.
func (g *Graph) Simplify() *Graph {
	s := NewWithNodes(g.NumNodes(), g.directed)
	seen := make(map[int64]float64)
	key := func(u, v NodeID) int64 { return int64(u)<<32 | int64(uint32(v)) }
	for _, e := range g.Edges() {
		if e.From == e.To {
			continue
		}
		k := key(e.From, e.To)
		if !g.directed && e.From > e.To {
			k = key(e.To, e.From)
		}
		if w, ok := seen[k]; !ok || e.Weight > w {
			seen[k] = e.Weight
		}
	}
	keys := make([]int64, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		s.AddEdge(NodeID(k>>32), NodeID(uint32(k)), seen[k])
	}
	return s
}
