package graph

// StronglyConnectedComponents returns the SCCs of g using an iterative
// Tarjan algorithm (recursion-free so million-node graphs don't blow the
// stack). Components are emitted in reverse topological order of the
// condensation: every arc between distinct components points from a
// later-emitted component to an earlier-emitted one, which is exactly the
// order reachability DP wants.
func StronglyConnectedComponents(g *Graph) [][]NodeID {
	n := g.NumNodes()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		counter int32
		stack   []NodeID // Tarjan stack
		comps   [][]NodeID
	)
	type frame struct {
		v    NodeID
		arcI int
	}
	var call []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		call = append(call[:0], frame{v: NodeID(root)})
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, NodeID(root))
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			out := g.Out(v)
			advanced := false
			for f.arcI < len(out) {
				w := out[f.arcI].To
				f.arcI++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v finished: pop a component if v is a root.
			if low[v] == index[v] {
				var comp []NodeID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comps
}

// Condensation contracts each SCC of g to a single node and returns the
// resulting DAG plus the mapping from original node to component index.
// Component indices follow StronglyConnectedComponents order (reverse
// topological), and parallel arcs between components are deduplicated.
func Condensation(g *Graph) (dag *Graph, comp []int32, comps [][]NodeID) {
	comps = StronglyConnectedComponents(g)
	comp = make([]int32, g.NumNodes())
	for ci, members := range comps {
		for _, v := range members {
			comp[v] = int32(ci)
		}
	}
	dag = NewWithNodes(len(comps), true)
	seen := make(map[int64]bool)
	for v := 0; v < g.NumNodes(); v++ {
		cv := comp[v]
		for _, a := range g.Out(NodeID(v)) {
			cw := comp[a.To]
			if cv == cw {
				continue
			}
			key := int64(cv)<<32 | int64(uint32(cw))
			if seen[key] {
				continue
			}
			seen[key] = true
			dag.AddEdge(NodeID(cv), NodeID(cw), 1)
		}
	}
	return dag, comp, comps
}
