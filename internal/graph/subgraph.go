package graph

import "sort"

// Subgraph is a node-induced subgraph of a parent graph, with its own dense
// node IDs 0..n-1 and a mapping back to parent IDs. Subgraphs are the unit of
// DP-SGD per-sample processing in Algorithm 2.
type Subgraph struct {
	// G is the induced graph with local IDs.
	G *Graph
	// Orig maps local ID -> parent ID.
	Orig []NodeID
}

// Induce returns the subgraph of g induced by the given parent node IDs.
// Duplicate IDs are ignored; local IDs follow the order of first appearance
// in nodes (so the starting node of a random walk keeps local ID 0).
func Induce(g *Graph, nodes []NodeID) *Subgraph {
	local := make(map[NodeID]NodeID, len(nodes))
	orig := make([]NodeID, 0, len(nodes))
	for _, v := range nodes {
		if _, ok := local[v]; ok {
			continue
		}
		local[v] = NodeID(len(orig))
		orig = append(orig, v)
	}
	sub := NewWithNodes(len(orig), true)
	// Count the induced degrees first, then carve every adjacency list out
	// of one flat arc buffer with exact capacity: AddEdge's appends then
	// fill in place instead of growth-reallocating each list (extraction
	// builds thousands of these subgraphs per training run).
	counts := make([]int32, 2*len(orig)) // [out degrees | in degrees]
	outCnt, inCnt := counts[:len(orig)], counts[len(orig):]
	total := 0
	for _, pu := range orig {
		for _, a := range g.Out(pu) {
			if lv, ok := local[a.To]; ok {
				outCnt[local[pu]]++
				inCnt[lv]++
				total++
			}
		}
	}
	buf := make([]Arc, 0, 2*total)
	off := 0
	for lu := range orig {
		sub.out[lu] = buf[off : off : off+int(outCnt[lu])]
		off += int(outCnt[lu])
	}
	for lv := range orig {
		sub.in[lv] = buf[off : off : off+int(inCnt[lv])]
		off += int(inCnt[lv])
	}
	for lu, pu := range orig {
		for _, a := range g.Out(pu) {
			if lv, ok := local[a.To]; ok {
				sub.AddEdge(NodeID(lu), lv, a.Weight)
			}
		}
	}
	return &Subgraph{G: sub, Orig: orig}
}

// Contains reports whether parent node v is part of the subgraph.
func (s *Subgraph) Contains(v NodeID) bool {
	for _, o := range s.Orig {
		if o == v {
			return true
		}
	}
	return false
}

// RemoveNodes returns a copy of g with the given nodes (and all incident
// arcs) removed, along with the mapping from new IDs to old IDs. Used by
// Boundary-Enhanced Sampling to build G_re = (V_re, E_re) after dropping
// nodes that reached the frequency threshold M.
func RemoveNodes(g *Graph, drop map[NodeID]bool) (*Graph, []NodeID) {
	keep := make([]NodeID, 0, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		if !drop[NodeID(v)] {
			keep = append(keep, NodeID(v))
		}
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
	newID := make([]NodeID, g.NumNodes())
	for i := range newID {
		newID[i] = -1
	}
	for i, v := range keep {
		newID[v] = NodeID(i)
	}
	out := NewWithNodes(len(keep), true)
	for _, u := range keep {
		for _, a := range g.Out(u) {
			if nv := newID[a.To]; nv >= 0 {
				out.AddEdge(newID[u], nv, a.Weight)
			}
		}
	}
	return out, keep
}
