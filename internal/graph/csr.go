package graph

// CSR is a frozen compressed-sparse-row view of a graph's out-adjacency,
// built once and shared read-only. The Monte Carlo diffusion hot path uses
// it to avoid the pointer-chasing and bounds diversity of per-node slices:
// arcs of node v occupy OutTo[OutStart[v]:OutStart[v+1]].
type CSR struct {
	NumNodes int
	OutStart []int32
	OutTo    []NodeID
	OutW     []float64
}

// BuildCSR flattens g's out-adjacency into CSR form.
func BuildCSR(g *Graph) *CSR {
	n := g.NumNodes()
	total := 0
	for v := 0; v < n; v++ {
		total += g.OutDegree(NodeID(v))
	}
	c := &CSR{
		NumNodes: n,
		OutStart: make([]int32, n+1),
		OutTo:    make([]NodeID, 0, total),
		OutW:     make([]float64, 0, total),
	}
	for v := 0; v < n; v++ {
		c.OutStart[v] = int32(len(c.OutTo))
		for _, a := range g.Out(NodeID(v)) {
			c.OutTo = append(c.OutTo, a.To)
			c.OutW = append(c.OutW, a.Weight)
		}
	}
	c.OutStart[n] = int32(len(c.OutTo))
	return c
}

// Out returns the arc targets and weights of node v as parallel slices.
func (c *CSR) Out(v NodeID) ([]NodeID, []float64) {
	s, e := c.OutStart[v], c.OutStart[v+1]
	return c.OutTo[s:e], c.OutW[s:e]
}

// OutDegree returns node v's out-degree.
func (c *CSR) OutDegree(v NodeID) int {
	return int(c.OutStart[v+1] - c.OutStart[v])
}
