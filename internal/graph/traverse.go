package graph

// RHopNeighborhood returns the set of nodes reachable from v0 by following
// at most r outgoing arcs, including v0 itself (the paper's N_r(v0) used to
// constrain random walks in Algorithm 1). The result is a membership set.
func RHopNeighborhood(g *Graph, v0 NodeID, r int) map[NodeID]bool {
	seen := map[NodeID]bool{v0: true}
	frontier := []NodeID{v0}
	for hop := 0; hop < r && len(frontier) > 0; hop++ {
		var next []NodeID
		for _, u := range frontier {
			for _, a := range g.Out(u) {
				if !seen[a.To] {
					seen[a.To] = true
					next = append(next, a.To)
				}
			}
		}
		frontier = next
	}
	return seen
}

// BFSOrder returns nodes in breadth-first order from v0 following outgoing
// arcs, up to limit nodes (limit <= 0 means no limit).
func BFSOrder(g *Graph, v0 NodeID, limit int) []NodeID {
	seen := make([]bool, g.NumNodes())
	seen[v0] = true
	order := []NodeID{v0}
	for i := 0; i < len(order); i++ {
		if limit > 0 && len(order) >= limit {
			break
		}
		for _, a := range g.Out(order[i]) {
			if !seen[a.To] {
				seen[a.To] = true
				order = append(order, a.To)
				if limit > 0 && len(order) >= limit {
					break
				}
			}
		}
	}
	return order
}

// BFSOrderDepth returns nodes within maxDepth hops of v0 (following
// outgoing arcs), in breadth-first order including v0.
func BFSOrderDepth(g *Graph, v0 NodeID, maxDepth int) []NodeID {
	seen := make(map[NodeID]bool, 16)
	seen[v0] = true
	order := []NodeID{v0}
	frontier := []NodeID{v0}
	for d := 0; d < maxDepth && len(frontier) > 0; d++ {
		var next []NodeID
		for _, u := range frontier {
			for _, a := range g.Out(u) {
				if !seen[a.To] {
					seen[a.To] = true
					next = append(next, a.To)
					order = append(order, a.To)
				}
			}
		}
		frontier = next
	}
	return order
}

// WeaklyConnectedComponents returns the weakly connected components of g
// (treating arcs as undirected), largest first.
func WeaklyConnectedComponents(g *Graph) [][]NodeID {
	n := g.NumNodes()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]NodeID
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(comps)
		comp[s] = id
		queue := []NodeID{NodeID(s)}
		var members []NodeID
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			members = append(members, u)
			for _, a := range g.Out(u) {
				if comp[a.To] < 0 {
					comp[a.To] = id
					queue = append(queue, a.To)
				}
			}
			for _, a := range g.In(u) {
				if comp[a.To] < 0 {
					comp[a.To] = id
					queue = append(queue, a.To)
				}
			}
		}
		comps = append(comps, members)
	}
	// Largest first (stable for determinism).
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && len(comps[j]) > len(comps[j-1]); j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	return comps
}

// LargestComponent returns the subgraph induced by the largest weakly
// connected component of g.
func LargestComponent(g *Graph) *Subgraph {
	comps := WeaklyConnectedComponents(g)
	if len(comps) == 0 {
		return &Subgraph{G: New(true)}
	}
	return Induce(g, comps[0])
}
