package graph

import "sort"

// DegreeHistogram returns the out-degree distribution: hist[d] is the
// number of nodes with out-degree d.
func DegreeHistogram(g *Graph) []int {
	maxDeg := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.OutDegree(NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	hist := make([]int, maxDeg+1)
	for v := 0; v < g.NumNodes(); v++ {
		hist[g.OutDegree(NodeID(v))]++
	}
	return hist
}

// ClusteringCoefficient returns the average local clustering coefficient
// under the weak (undirected) view: for each node, the fraction of
// neighbor pairs that are themselves connected. Nodes with fewer than two
// neighbors contribute 0, matching the usual convention.
func ClusteringCoefficient(g *Graph) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	// Weak neighbor sets.
	nbrs := make([]map[NodeID]bool, n)
	for v := 0; v < n; v++ {
		set := make(map[NodeID]bool)
		for _, a := range g.Out(NodeID(v)) {
			if a.To != NodeID(v) {
				set[a.To] = true
			}
		}
		for _, a := range g.In(NodeID(v)) {
			if a.To != NodeID(v) {
				set[a.To] = true
			}
		}
		nbrs[v] = set
	}
	total := 0.0
	for v := 0; v < n; v++ {
		set := nbrs[v]
		k := len(set)
		if k < 2 {
			continue
		}
		links := 0
		ids := make([]NodeID, 0, k)
		for u := range set {
			ids = append(ids, u)
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if nbrs[ids[i]][ids[j]] {
					links++
				}
			}
		}
		total += 2 * float64(links) / float64(k*(k-1))
	}
	return total / float64(n)
}

// Reciprocity returns the fraction of directed arcs u→v whose reverse arc
// v→u also exists. Returns 0 for edgeless graphs; undirected graphs report
// 1 by construction.
func Reciprocity(g *Graph) float64 {
	arcs, recip := 0, 0
	for u := 0; u < g.NumNodes(); u++ {
		for _, a := range g.Out(NodeID(u)) {
			arcs++
			if g.HasEdge(a.To, NodeID(u)) {
				recip++
			}
		}
	}
	if arcs == 0 {
		return 0
	}
	return float64(recip) / float64(arcs)
}

// KCore returns each node's core number under the weak degree view: the
// largest k such that the node belongs to a subgraph where every node has
// weak degree ≥ k. Uses the standard linear-time peeling algorithm.
func KCore(g *Graph) []int {
	n := g.NumNodes()
	deg := make([]int, n)
	nbrs := make([][]NodeID, n)
	for v := 0; v < n; v++ {
		seen := make(map[NodeID]bool)
		for _, a := range g.Out(NodeID(v)) {
			if a.To != NodeID(v) && !seen[a.To] {
				seen[a.To] = true
				nbrs[v] = append(nbrs[v], a.To)
			}
		}
		for _, a := range g.In(NodeID(v)) {
			if a.To != NodeID(v) && !seen[a.To] {
				seen[a.To] = true
				nbrs[v] = append(nbrs[v], a.To)
			}
		}
		deg[v] = len(nbrs[v])
	}
	// Peel in nondecreasing degree order.
	order := make([]NodeID, n)
	for i := range order {
		order[i] = NodeID(i)
	}
	sort.Slice(order, func(a, b int) bool { return deg[order[a]] < deg[order[b]] })
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	core := make([]int, n)
	curDeg := append([]int(nil), deg...)
	removed := make([]bool, n)
	for i := 0; i < n; i++ {
		v := order[i]
		core[v] = curDeg[v]
		removed[v] = true
		for _, u := range nbrs[v] {
			if removed[u] || curDeg[u] <= curDeg[v] {
				continue
			}
			// Decrease u's degree and bubble it left to keep order sorted.
			curDeg[u]--
			j := pos[u]
			for j > i+1 && curDeg[order[j-1]] > curDeg[u] {
				order[j], order[j-1] = order[j-1], order[j]
				pos[order[j]] = j
				j--
			}
			order[j] = u
			pos[u] = j
		}
	}
	// Core numbers are monotone along the peel: enforce the running max so
	// ties processed out of order can't understate a core.
	maxSoFar := 0
	for i := 0; i < n; i++ {
		v := order[i]
		if core[v] > maxSoFar {
			maxSoFar = core[v]
		} else {
			core[v] = maxSoFar
		}
	}
	return core
}

// Degeneracy returns the maximum core number of g (0 for empty graphs).
func Degeneracy(g *Graph) int {
	best := 0
	for _, c := range KCore(g) {
		if c > best {
			best = c
		}
	}
	return best
}
