package graph

import (
	"bytes"
	"math"
	"testing"
)

func TestFingerprintDeterministic(t *testing.T) {
	build := func() *Graph {
		g := NewWithNodes(5, true)
		g.AddEdge(0, 1, 0.5)
		g.AddEdge(1, 2, 0.25)
		g.AddEdge(2, 3, 1)
		g.AddEdge(4, 0, 0.125)
		return g
	}
	a, b := build(), build()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("identical graphs fingerprint differently: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	if got, want := a.Fingerprint(), a.Clone().Fingerprint(); got != want {
		t.Fatalf("clone fingerprint %x != original %x", want, got)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := NewWithNodes(4, true)
	base.AddEdge(0, 1, 0.5)
	base.AddEdge(1, 2, 0.5)
	fp := base.Fingerprint()

	// Changed weight.
	w := base.Clone()
	w.out[0][0].Weight = 0.75
	if w.Fingerprint() == fp {
		t.Fatal("weight change did not change fingerprint")
	}

	// Extra edge.
	e := base.Clone()
	e.AddEdge(2, 3, 0.5)
	if e.Fingerprint() == fp {
		t.Fatal("edge addition did not change fingerprint")
	}

	// Extra isolated node.
	n := base.Clone()
	n.AddNode()
	if n.Fingerprint() == fp {
		t.Fatal("node addition did not change fingerprint")
	}

	// Directedness flag.
	u := NewWithNodes(4, false)
	u.AddEdge(0, 1, 0.5)
	u.AddEdge(1, 2, 0.5)
	if u.Fingerprint() == fp {
		t.Fatal("undirected graph fingerprints like the directed one")
	}

	// Empty graphs still distinguish directedness.
	if New(true).Fingerprint() == New(false).Fingerprint() {
		t.Fatal("empty directed and undirected graphs collide")
	}
}

// TestFingerprintNodeIDFolding pins the uint64(uint32(u)) fold in the
// hash stream: IDs in the supported range (< 2³²) pass through intact,
// and the test documents that IDs differing only above bit 31 WOULD
// collide — the assumption called out in the Fingerprint doc comment.
func TestFingerprintNodeIDFolding(t *testing.T) {
	for _, u := range []uint64{0, 1, 12345, 1<<31 - 1, 1<<32 - 1} {
		if uint64(uint32(u)) != u {
			t.Fatalf("ID %d inside the supported range was mangled by the fold", u)
		}
		if got, want := fnvMix(fnvOffset64, uint64(uint32(u))), fnvMix(fnvOffset64, u); got != want {
			t.Fatalf("fold changed the hash of in-range ID %d", u)
		}
	}
	// Above the fold the stream collides: 2³²+7 hashes like 7. This is
	// the documented limitation, not desired behavior — if this ever
	// starts failing, the folding was widened and the doc comment (and
	// this test) should be updated together.
	overflow := uint64(1<<32 + 7)
	if fnvMix(fnvOffset64, uint64(uint32(overflow))) != fnvMix(fnvOffset64, 7) {
		t.Fatal("expected the documented fold collision for IDs >= 2^32")
	}
}

// TestFingerprintSignedZeroWeights: weights hash by IEEE bit pattern, so
// +0 and -0 are distinct — Float64bits, not ==, decides equality.
func TestFingerprintSignedZeroWeights(t *testing.T) {
	pos := NewWithNodes(2, true)
	pos.AddEdge(0, 1, 0)
	neg := NewWithNodes(2, true)
	neg.AddEdge(0, 1, math.Copysign(0, -1))
	if pos.Fingerprint() == neg.Fingerprint() {
		t.Fatal("+0 and -0 edge weights fingerprint identically")
	}
	// Sanity: both still differ from a nonzero weight.
	nz := NewWithNodes(2, true)
	nz.AddEdge(0, 1, 0.5)
	if pos.Fingerprint() == nz.Fingerprint() || neg.Fingerprint() == nz.Fingerprint() {
		t.Fatal("zero and nonzero weights collide")
	}
}

// TestFingerprintGolden pins the exact hash of a fixed graph so any
// accidental change to the canonical stream (field order, widths,
// folding) fails loudly — checkpoint compatibility and the serving
// layer's content addresses both ride on this value being stable.
func TestFingerprintGolden(t *testing.T) {
	g := NewWithNodes(5, true)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(1, 2, 0.25)
	g.AddEdge(2, 3, 1)
	g.AddEdge(4, 0, 0.125)
	const want = uint64(0x2f417cd2d90864a2)
	if got := g.Fingerprint(); got != want {
		t.Fatalf("golden fingerprint changed: got %#016x, want %#016x", got, want)
	}
}

func TestFingerprintEdgeListRoundTrip(t *testing.T) {
	g := NewWithNodes(6, true)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(1, 2, 0.0625)
	g.AddEdge(5, 0, 1)

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != g.Fingerprint() {
		t.Fatalf("edge-list round trip changed fingerprint: %x vs %x",
			back.Fingerprint(), g.Fingerprint())
	}
}
