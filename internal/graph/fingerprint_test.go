package graph

import (
	"bytes"
	"testing"
)

func TestFingerprintDeterministic(t *testing.T) {
	build := func() *Graph {
		g := NewWithNodes(5, true)
		g.AddEdge(0, 1, 0.5)
		g.AddEdge(1, 2, 0.25)
		g.AddEdge(2, 3, 1)
		g.AddEdge(4, 0, 0.125)
		return g
	}
	a, b := build(), build()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("identical graphs fingerprint differently: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	if got, want := a.Fingerprint(), a.Clone().Fingerprint(); got != want {
		t.Fatalf("clone fingerprint %x != original %x", want, got)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := NewWithNodes(4, true)
	base.AddEdge(0, 1, 0.5)
	base.AddEdge(1, 2, 0.5)
	fp := base.Fingerprint()

	// Changed weight.
	w := base.Clone()
	w.out[0][0].Weight = 0.75
	if w.Fingerprint() == fp {
		t.Fatal("weight change did not change fingerprint")
	}

	// Extra edge.
	e := base.Clone()
	e.AddEdge(2, 3, 0.5)
	if e.Fingerprint() == fp {
		t.Fatal("edge addition did not change fingerprint")
	}

	// Extra isolated node.
	n := base.Clone()
	n.AddNode()
	if n.Fingerprint() == fp {
		t.Fatal("node addition did not change fingerprint")
	}

	// Directedness flag.
	u := NewWithNodes(4, false)
	u.AddEdge(0, 1, 0.5)
	u.AddEdge(1, 2, 0.5)
	if u.Fingerprint() == fp {
		t.Fatal("undirected graph fingerprints like the directed one")
	}

	// Empty graphs still distinguish directedness.
	if New(true).Fingerprint() == New(false).Fingerprint() {
		t.Fatal("empty directed and undirected graphs collide")
	}
}

func TestFingerprintEdgeListRoundTrip(t *testing.T) {
	g := NewWithNodes(6, true)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(1, 2, 0.0625)
	g.AddEdge(5, 0, 1)

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != g.Fingerprint() {
		t.Fatalf("edge-list round trip changed fingerprint: %x vs %x",
			back.Fingerprint(), g.Fingerprint())
	}
}
