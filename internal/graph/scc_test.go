package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func sccOf(t *testing.T, comps [][]NodeID, v NodeID) int {
	t.Helper()
	for i, c := range comps {
		for _, m := range c {
			if m == v {
				return i
			}
		}
	}
	t.Fatalf("node %d in no component", v)
	return -1
}

func TestSCCCycleAndTail(t *testing.T) {
	// Cycle 0→1→2→0 plus tail 2→3→4.
	g := NewWithNodes(5, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	comps := StronglyConnectedComponents(g)
	if len(comps) != 3 {
		t.Fatalf("got %d SCCs, want 3", len(comps))
	}
	if sccOf(t, comps, 0) != sccOf(t, comps, 1) || sccOf(t, comps, 1) != sccOf(t, comps, 2) {
		t.Fatal("cycle nodes must share an SCC")
	}
	if sccOf(t, comps, 3) == sccOf(t, comps, 4) {
		t.Fatal("tail nodes must be singletons")
	}
}

func TestSCCReverseTopologicalOrder(t *testing.T) {
	// Chain of singletons 0→1→2→3: emission order must be reverse
	// topological (sinks first).
	g := NewWithNodes(4, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	comps := StronglyConnectedComponents(g)
	if len(comps) != 4 {
		t.Fatalf("got %d SCCs", len(comps))
	}
	// comps[0] must be the sink {3}, comps[3] the source {0}.
	if comps[0][0] != 3 || comps[3][0] != 0 {
		t.Fatalf("order %v not reverse topological", comps)
	}
}

func TestCondensation(t *testing.T) {
	// Two 2-cycles joined by one arc: condensation is a 2-node DAG.
	g := NewWithNodes(4, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 2, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1) // parallel component arc: must deduplicate

	dag, comp, comps := Condensation(g)
	if len(comps) != 2 || dag.NumNodes() != 2 {
		t.Fatalf("condensation: %d comps, %d dag nodes", len(comps), dag.NumNodes())
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Fatalf("component map wrong: %v", comp)
	}
	if dag.NumEdges() != 1 {
		t.Fatalf("dag edges = %d, want 1 (deduplicated)", dag.NumEdges())
	}
	if !dag.HasEdge(NodeID(comp[0]), NodeID(comp[2])) {
		t.Fatal("dag arc direction wrong")
	}
}

// Property: (1) components partition V; (2) dag arcs always point from a
// higher component index to a lower one (reverse topological emission);
// (3) mutual reachability within components on small graphs.
func TestSCCProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		g := NewWithNodes(n, true)
		for i := 0; i < 40; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u != v {
				g.AddEdge(u, v, 1)
			}
		}
		dag, comp, comps := Condensation(g)
		seen := map[NodeID]bool{}
		for _, c := range comps {
			for _, v := range c {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		if len(seen) != n {
			return false
		}
		for v := 0; v < dag.NumNodes(); v++ {
			for _, a := range dag.Out(NodeID(v)) {
				if a.To >= NodeID(v) {
					return false // must point to earlier (lower) component
				}
			}
		}
		// Mutual reachability within each multi-node component.
		reach := func(from, to NodeID) bool {
			for _, x := range BFSOrder(g, from, 0) {
				if x == to {
					return true
				}
			}
			return false
		}
		for _, c := range comps {
			if len(c) < 2 {
				continue
			}
			for i := 1; i < len(c); i++ {
				if !reach(c[0], c[i]) || !reach(c[i], c[0]) {
					return false
				}
			}
		}
		_ = comp
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCLargePathNoStackOverflow(t *testing.T) {
	// 200k-node path: the iterative implementation must handle it.
	n := 200_000
	g := NewWithNodes(n, true)
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), 1)
	}
	comps := StronglyConnectedComponents(g)
	if len(comps) != n {
		t.Fatalf("got %d SCCs, want %d", len(comps), n)
	}
}
