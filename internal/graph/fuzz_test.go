package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList hardens the parser against malformed input: it must
// either return an error or a structurally consistent graph — never panic
// and never produce a graph whose round trip disagrees with itself.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("# privim-edgelist nodes=3 directed=1\n0 1 0.5\n1 2 1\n")
	f.Add("0 1\n")
	f.Add("# privim-edgelist nodes=0 directed=0\n")
	f.Add("0 1 0.25\n2 0\n# comment\n\n1 2 1\n")
	f.Add("9999999 0 1\n")
	f.Add("0 1 nan\n")
	f.Add("-1 2\n")
	f.Add("# privim-edgelist nodes=abc directed=1\n")
	f.Fuzz(func(t *testing.T, input string) {
		// Guard against pathological allocation: the parser grows the node
		// set to max ID, so clamp inputs that would allocate gigabytes.
		for _, tok := range strings.Fields(input) {
			if len(tok) > 7 {
				t.Skip()
			}
		}
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		// Structural consistency: every out-arc has a matching in-arc.
		for v := 0; v < g.NumNodes(); v++ {
			for _, a := range g.Out(NodeID(v)) {
				found := false
				for _, b := range g.In(a.To) {
					if b.To == NodeID(v) && b.Weight == a.Weight {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("arc %d->%d has no reverse-index entry", v, a.To)
				}
			}
		}
		// Round trip must parse and preserve counts.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("WriteEdgeList: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip parse: %v", err)
		}
		if g2.NumNodes() < g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip: %v vs %v", g2, g)
		}
	})
}
