// Package audit empirically tests the privacy guarantee of a trained
// PrivIM pipeline by playing the differential-privacy distinguishing game:
// train many models on a graph G and on its node-adjacent neighbor G∖{v},
// then measure how well a threshold attacker can tell the two worlds apart
// from the models' outputs. For an (ε, δ)-DP trainer the attacker's
// advantage is bounded; the audit reports the empirical lower bound
// ε̂ = ln(TPR/FPR), which must not exceed the accountant's ε (up to
// sampling error). Non-private training should show near-perfect
// distinguishability on a high-influence target.
//
// This is the standard "DP auditing" methodology (Jagielski et al.) adapted
// to node-level graph privacy.
package audit

import (
	"fmt"
	"math"
	"sort"

	"privim/internal/dataset"
	"privim/internal/graph"
	core "privim/internal/privim"
	"privim/internal/tensor"
)

// Config controls one audit.
type Config struct {
	// Runs is the number of models trained per world (total 2·Runs).
	Runs int
	// Target is the node whose presence the attacker tries to detect; a
	// negative value selects the highest weak-degree node (the worst case
	// for privacy).
	Target graph.NodeID
	// Train is the pipeline under audit; its Seed field is overridden per
	// run.
	Train core.Config
	// Seed drives the run seeds.
	Seed int64
}

// Report summarizes the distinguishing game.
type Report struct {
	// Target is the audited node.
	Target graph.NodeID
	// Accuracy is the best threshold attacker's accuracy over the 2·Runs
	// trained models (0.5 = no leakage, 1.0 = full leakage).
	Accuracy float64
	// EmpiricalEpsLower is the attack-derived lower bound on ε, maximized
	// over thresholds, computed from 95% Clopper-Pearson confidence bounds
	// as ln(TPR_lo / FPR_hi). A valid (ε, δ)-DP trainer keeps this below ε
	// with 95% confidence; small run counts therefore yield conservative
	// (often zero) bounds, which is the statistically honest answer.
	EmpiricalEpsLower float64
	// TheoreticalEps is the accountant's guarantee for the audited config
	// (+Inf for non-private runs).
	TheoreticalEps float64
	// WithStats and WithoutStats are the attacker's test statistics per
	// world (exported for diagnostics).
	WithStats, WithoutStats []float64
}

// Run executes the audit on graph g.
func Run(g *graph.Graph, cfg Config) (*Report, error) {
	if cfg.Runs < 2 {
		return nil, fmt.Errorf("audit: need at least 2 runs per world, got %d", cfg.Runs)
	}
	target := cfg.Target
	if target < 0 {
		target = highestDegree(g)
	}
	if int(target) >= g.NumNodes() {
		return nil, fmt.Errorf("audit: target %d outside graph with %d nodes", target, g.NumNodes())
	}
	// The adjacent world: G with the target node removed (unbounded
	// node-level adjacency, §II-B).
	without, _ := graph.RemoveNodes(g, map[graph.NodeID]bool{target: true})

	// The probe is a fixed graph both worlds' models are scored on, so the
	// statistic depends only on the trained weights: use the "without"
	// graph (it exists in both worlds).
	probeX := tensor.FromSlice(without.NumNodes(), dataset.NumStructuralFeatures,
		dataset.StructuralFeatures(without))

	statistic := func(train *graph.Graph, seed int64) (float64, float64, error) {
		tc := cfg.Train
		tc.Seed = seed
		// Pin initialization across runs: init is public in the DP threat
		// model, and fixing it stops init variance from masking leakage.
		if tc.InitSeed == 0 {
			tc.InitSeed = cfg.Seed*31 + 17
		}
		res, err := core.Train(train, tc)
		if err != nil {
			return 0, 0, err
		}
		scores := res.Model.Score(without, probeX)
		mean := 0.0
		for _, s := range scores {
			mean += s
		}
		eps := math.Inf(1)
		if res.Private {
			eps = res.EpsilonSpent
		}
		return mean / float64(len(scores)), eps, nil
	}

	rep := &Report{Target: target, TheoreticalEps: math.Inf(1)}
	for r := 0; r < cfg.Runs; r++ {
		seed := cfg.Seed + int64(r)*104729
		sWith, eps, err := statistic(g, seed)
		if err != nil {
			return nil, err
		}
		if eps < rep.TheoreticalEps {
			rep.TheoreticalEps = eps
		}
		sWithout, _, err := statistic(without, seed+1)
		if err != nil {
			return nil, err
		}
		rep.WithStats = append(rep.WithStats, sWith)
		rep.WithoutStats = append(rep.WithoutStats, sWithout)
	}
	rep.Accuracy, rep.EmpiricalEpsLower = thresholdAttack(rep.WithStats, rep.WithoutStats)
	return rep, nil
}

// highestDegree returns the node with the largest weak degree.
func highestDegree(g *graph.Graph) graph.NodeID {
	best, bestDeg := graph.NodeID(0), -1
	for v := 0; v < g.NumNodes(); v++ {
		d := g.OutDegree(graph.NodeID(v)) + g.InDegree(graph.NodeID(v))
		if d > bestDeg {
			best, bestDeg = graph.NodeID(v), d
		}
	}
	return best
}

// thresholdAttack finds the threshold maximizing classification accuracy
// between the two stat samples (trying both orientations) and the
// threshold maximizing the smoothed ln(TPR/FPR) bound.
func thresholdAttack(with, without []float64) (accuracy, epsLower float64) {
	type sample struct {
		v    float64
		with bool
	}
	all := make([]sample, 0, len(with)+len(without))
	for _, v := range with {
		all = append(all, sample{v, true})
	}
	for _, v := range without {
		all = append(all, sample{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	nW, nO := float64(len(with)), float64(len(without))
	bestAcc := 0.5
	bestEps := 0.0
	// Sweep thresholds between consecutive distinct values.
	withAbove := nW
	withoutAbove := nO
	const confidence = 0.95
	consider := func(tp, fp, tn, fn float64) {
		acc := (tp + tn) / (nW + nO)
		if acc > bestAcc {
			bestAcc = acc
		}
		// 95% Clopper-Pearson: lower-bound the true TPR, upper-bound the
		// true FPR, then eps >= ln(TPR_lo/FPR_hi) (Jagielski et al.).
		tprLo := binomialLowerBound(int(tp), int(nW), confidence)
		fprHi := binomialUpperBound(int(fp), int(nO), confidence)
		if tprLo > 0 && fprHi > 0 {
			if e := math.Log(tprLo / fprHi); e > bestEps {
				bestEps = e
			}
		}
		// The symmetric direction: ln((1-FPR)_lo / (1-TPR)_hi).
		tnrLo := binomialLowerBound(int(tn), int(nO), confidence)
		fnrHi := binomialUpperBound(int(fn), int(nW), confidence)
		if tnrLo > 0 && fnrHi > 0 {
			if e := math.Log(tnrLo / fnrHi); e > bestEps {
				bestEps = e
			}
		}
	}
	consider(withAbove, withoutAbove, 0, 0)
	consider(0, 0, nO, nW)
	for i := 0; i < len(all); i++ {
		if all[i].with {
			withAbove--
		} else {
			withoutAbove--
		}
		if i+1 < len(all) && all[i+1].v == all[i].v {
			continue
		}
		// "predict with if stat > threshold" orientation:
		tp, fp := withAbove, withoutAbove
		tn, fn := nO-withoutAbove, nW-withAbove
		consider(tp, fp, tn, fn)
		// Opposite orientation.
		consider(fn, tn, fp, tp)
	}
	return bestAcc, bestEps
}

// binomialCDFAtMost returns P(Bin(n, p) <= k).
func binomialCDFAtMost(k, n int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	total := 0.0
	for i := 0; i <= k; i++ {
		total += math.Exp(logBinomPMF(n, i, p))
	}
	if total > 1 {
		total = 1
	}
	return total
}

// logBinomPMF returns log C(n,k) + k log p + (n-k) log(1-p).
func logBinomPMF(n, k int, p float64) float64 {
	if p <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if p >= 1 {
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
}

// binomialLowerBound returns the Clopper-Pearson lower confidence bound on
// the success probability after observing k successes in n trials: the
// smallest p with P(Bin(n,p) >= k) > 1-confidence, found by bisection.
func binomialLowerBound(k, n int, confidence float64) float64 {
	if n <= 0 || k <= 0 {
		return 0
	}
	alpha := 1 - confidence
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		// P(Bin(n, mid) >= k) = 1 - CDF(k-1).
		if 1-binomialCDFAtMost(k-1, n, mid) > alpha {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

// binomialUpperBound returns the Clopper-Pearson upper confidence bound.
func binomialUpperBound(k, n int, confidence float64) float64 {
	if n <= 0 {
		return 1
	}
	if k >= n {
		return 1
	}
	alpha := 1 - confidence
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if binomialCDFAtMost(k, n, mid) > alpha {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
