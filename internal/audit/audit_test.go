package audit

import (
	"math"
	"testing"

	"privim/internal/dataset"
	"privim/internal/graph"
	core "privim/internal/privim"
)

func auditGraph(t *testing.T) *graph.Graph {
	t.Helper()
	ds, err := dataset.Generate(dataset.Email, dataset.Options{Scale: 0.15, Seed: 1, InfluenceProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Graph
}

func auditTrainConfig(eps float64) core.Config {
	return core.Config{
		Mode:         core.ModeDual,
		Epsilon:      eps,
		SubgraphSize: 10,
		HiddenDim:    8,
		Layers:       2,
		Iterations:   6,
		BatchSize:    4,
		Seed:         1,
	}
}

func TestRunValidation(t *testing.T) {
	g := auditGraph(t)
	if _, err := Run(g, Config{Runs: 1, Train: auditTrainConfig(1)}); err == nil {
		t.Fatal("expected error for Runs < 2")
	}
	if _, err := Run(g, Config{Runs: 2, Target: graph.NodeID(g.NumNodes() + 5), Train: auditTrainConfig(1)}); err == nil {
		t.Fatal("expected error for out-of-range target")
	}
}

func TestAuditReportShape(t *testing.T) {
	g := auditGraph(t)
	rep, err := Run(g, Config{Runs: 3, Target: -1, Train: auditTrainConfig(2), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.WithStats) != 3 || len(rep.WithoutStats) != 3 {
		t.Fatalf("stats lengths %d/%d", len(rep.WithStats), len(rep.WithoutStats))
	}
	if rep.Accuracy < 0.5 || rep.Accuracy > 1 {
		t.Fatalf("accuracy %v outside [0.5, 1]", rep.Accuracy)
	}
	if rep.EmpiricalEpsLower < 0 {
		t.Fatalf("empirical eps %v negative", rep.EmpiricalEpsLower)
	}
	if math.IsInf(rep.TheoreticalEps, 1) {
		t.Fatal("private audit should report finite theoretical eps")
	}
	// Target defaulted to the max-degree node.
	wantTarget := graph.NodeID(0)
	bestDeg := -1
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.OutDegree(graph.NodeID(v)) + g.InDegree(graph.NodeID(v)); d > bestDeg {
			wantTarget, bestDeg = graph.NodeID(v), d
		}
	}
	if rep.Target != wantTarget {
		t.Fatalf("target %d, want max-degree node %d", rep.Target, wantTarget)
	}
}

func TestPrivateLeaksLessThanNonPrivate(t *testing.T) {
	// The headline audit property: the DP pipeline's empirical
	// distinguishability must not exceed the non-private pipeline's (with
	// slack for the small sample).
	g := auditGraph(t)
	priv, err := Run(g, Config{Runs: 5, Target: -1, Train: auditTrainConfig(1), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	nonPriv, err := Run(g, Config{Runs: 5, Target: -1, Train: auditTrainConfig(0), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if priv.Accuracy > nonPriv.Accuracy+0.21 {
		t.Fatalf("private attack accuracy %v should not exceed non-private %v",
			priv.Accuracy, nonPriv.Accuracy)
	}
	if !math.IsInf(nonPriv.TheoreticalEps, 1) {
		t.Fatalf("non-private audit should report +Inf eps, got %v", nonPriv.TheoreticalEps)
	}
}

func TestThresholdAttackSeparatedSamples(t *testing.T) {
	// Perfectly separated worlds with enough samples: accuracy 1 and a
	// positive 95%-confidence eps bound. (With only a handful of samples
	// the Clopper-Pearson bounds correctly refuse to certify leakage.)
	with := make([]float64, 20)
	without := make([]float64, 20)
	for i := range with {
		with[i] = 10 + float64(i)
		without[i] = float64(i)*0.1 - 10
	}
	acc, eps := thresholdAttack(with, without)
	if acc != 1 {
		t.Fatalf("accuracy = %v, want 1", acc)
	}
	if eps <= 0 {
		t.Fatalf("eps bound %v should be positive for 20 separated samples", eps)
	}
	// Few samples: bound must stay conservative even when separated.
	_, epsSmall := thresholdAttack([]float64{10, 11, 12}, []float64{1, 2, 3})
	if epsSmall < 0 {
		t.Fatalf("eps bound %v negative", epsSmall)
	}
	if epsSmall >= eps {
		t.Fatalf("3-sample bound %v should be weaker than 20-sample bound %v", epsSmall, eps)
	}
	// Identical worlds: accuracy stays at chance.
	acc2, _ := thresholdAttack([]float64{5, 5, 5}, []float64{5, 5, 5})
	if acc2 != 0.5 {
		t.Fatalf("identical worlds accuracy = %v, want 0.5", acc2)
	}
}

func TestClopperPearsonBounds(t *testing.T) {
	// k=n: lower bound solves p^n = alpha.
	lo := binomialLowerBound(20, 20, 0.95)
	want := math.Pow(0.05, 1.0/20)
	if math.Abs(lo-want) > 1e-6 {
		t.Fatalf("CP lower(20/20) = %v, want %v", lo, want)
	}
	// k=0: upper bound solves (1-p)^n = alpha.
	hi := binomialUpperBound(0, 20, 0.95)
	wantHi := 1 - math.Pow(0.05, 1.0/20)
	if math.Abs(hi-wantHi) > 1e-6 {
		t.Fatalf("CP upper(0/20) = %v, want %v", hi, wantHi)
	}
	// Bounds bracket the point estimate.
	if l := binomialLowerBound(7, 10, 0.95); l >= 0.7 {
		t.Fatalf("lower bound %v should be below 0.7", l)
	}
	if h := binomialUpperBound(7, 10, 0.95); h <= 0.7 {
		t.Fatalf("upper bound %v should be above 0.7", h)
	}
	// Degenerate inputs.
	if binomialLowerBound(0, 10, 0.95) != 0 {
		t.Fatal("lower(0/10) should be 0")
	}
	if binomialUpperBound(10, 10, 0.95) != 1 {
		t.Fatal("upper(10/10) should be 1")
	}
}

func TestBinomialCDF(t *testing.T) {
	// Bin(4, 0.5): P(X <= 2) = (1+4+6)/16.
	if got := binomialCDFAtMost(2, 4, 0.5); math.Abs(got-11.0/16) > 1e-12 {
		t.Fatalf("CDF = %v, want 11/16", got)
	}
	if binomialCDFAtMost(-1, 4, 0.5) != 0 || binomialCDFAtMost(4, 4, 0.5) != 1 {
		t.Fatal("CDF edge cases wrong")
	}
}

func TestThresholdAttackOrientation(t *testing.T) {
	// The attack must work regardless of which world has larger stats.
	accA, _ := thresholdAttack([]float64{1, 2}, []float64{8, 9})
	accB, _ := thresholdAttack([]float64{8, 9}, []float64{1, 2})
	if accA != 1 || accB != 1 {
		t.Fatalf("orientation handling broken: %v, %v", accA, accB)
	}
}
