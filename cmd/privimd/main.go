// Command privimd is the PrivIM influence-serving daemon: it hosts
// trained model checkpoints and answers seed-selection/scoring queries
// over uploaded graphs, with an async training-job API — the paper's
// deployment story (train privately once, query the released indicator
// repeatedly) as a long-running HTTP service.
//
// Usage:
//
//	privimd -addr :7315 -models ./checkpoints -journal-dir ./journals
//	privimd -addr :7315 -max-concurrent 16 -debug-addr localhost:6060
//
// Endpoints (see the README's Serving section for curl examples):
//
//	GET  /healthz                  liveness (503 while draining)
//	GET  /metrics                  live metrics snapshot (JSON)
//	GET|POST|DELETE /v1/models...  checkpoint registry CRUD
//	GET|POST|DELETE /v1/graphs...  graph store CRUD (fingerprinted)
//	POST /v1/score, /v1/seeds      cached model queries
//	POST /v1/train, /v1/jobs...    async training jobs
//	GET  /v1/budget                caller's privacy-budget position
//	GET  /v1/stats                 windowed metric history (?metric=&window=)
//	GET  /v1/alerts                active + recently-resolved alerts
//
// The daemon samples every registry metric plus Go runtime telemetry
// into an in-process history ring each -history-every, and evaluates
// alert rules (built-ins: per-tenant ε burn rate, job-queue depth,
// route p99 latency, heap growth; more via -alert-rules) against it.
// With -profile-dir set, a firing rule or a -slow-span watchdog trip
// captures a pprof heap+CPU pair into a bounded on-disk ring and stamps
// the artifact path on the alert.
//
// With -budget set, every private training job charges a per-tenant
// (X-Privim-Tenant header) privacy-budget ledger keyed on the graph
// fingerprint; exhausted budgets deny admission with 403. The ledger
// persists to <journal-dir>/ledger.jsonl (or -budget-ledger) and
// replays on restart.
//
// SIGTERM/SIGINT drains gracefully: the listener closes, in-flight
// requests and queued/running training jobs finish (bounded by
// -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"privim/internal/cliutil"
	"privim/internal/obs"
	"privim/internal/obs/history"
	"privim/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", ":7315", "HTTP listen address")
		modelsDir     = flag.String("models", "", "preload every checkpoint file in this directory")
		graphsDir     = flag.String("graphs", "", "preload every edge-list file in this directory")
		journalDir    = flag.String("journal-dir", "", "durable state directory: per-job JSONL event journals, the crash-recovery job table (jobs.jsonl), and per-job training checkpoints")
		ckptEvery     = flag.Int("checkpoint-every", 10, "training-checkpoint cadence in iterations for jobs run under -journal-dir")
		maxConcurrent = flag.Int("max-concurrent", 8, "admission limit: max in-flight /v1 requests before 429")
		queryTimeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout for query endpoints")
		maxBody       = flag.Int64("max-body", 64<<20, "request body size limit in bytes")
		trainWorkers  = flag.Int("train-workers", 2, "training worker pool size")
		trainQueue    = flag.Int("train-queue", 16, "max queued training jobs before 429")
		cacheSize     = flag.Int("cache-size", 256, "LRU result-cache entry capacity")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight work on shutdown")
		drainGrace    = flag.Duration("drain-grace", 0, "how long shutdown waits for running training jobs before preempting them (checkpoint + partial ε commit); 0 waits the full -drain-timeout")
		historyEvery  = flag.Duration("history-every", 10*time.Second, "metric-history sampling and alert-evaluation cadence for /v1/stats and /v1/alerts")
		historyCap    = flag.Int("history-capacity", 0, "points retained per metric series in the in-process history ring (default 360 — one hour at the default cadence)")
		alertRules    = flag.String("alert-rules", "", "JSON file of alert rules (threshold, delta, slo_burn_rate) evaluated every -history-every, added to the built-in rules; see README Monitoring & alerting")
		workers       = cliutil.RegisterWorkers(flag.CommandLine)
		obsFlags      cliutil.ObserverFlags
		budgetFlags   cliutil.BudgetFlags
	)
	obsFlags.Register(flag.CommandLine)
	budgetFlags.Register(flag.CommandLine, "budget-ledger")
	flag.Parse()
	// Apply before serve.New: the job manager splits this limit across its
	// -train-workers slots to size each job's compute pool.
	cliutil.ApplyWorkers(*workers)

	logger := log.New(os.Stderr, "privimd: ", log.LstdFlags)

	var rules []history.Rule
	if *alertRules != "" {
		var err error
		if rules, err = history.LoadRules(*alertRules); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("loaded %d alert rule(s) from %s", len(rules), *alertRules)
	}

	// One registry backs /metrics, /debug/vars, and the training-event
	// aggregation, so every view of the daemon agrees.
	reg := obs.NewRegistry()
	stack, err := obsFlags.Setup("privimd", reg)
	if err != nil {
		logger.Fatal(err)
	}
	defer stack.Close()

	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			logger.Fatal(err)
		}
	}
	srv, err := serve.New(serve.Options{
		ModelsDir:       *modelsDir,
		JournalDir:      *journalDir,
		CheckpointEvery: *ckptEvery,
		MaxConcurrent:   *maxConcurrent,
		QueryTimeout:    *queryTimeout,
		MaxBodyBytes:    *maxBody,
		TrainWorkers:    *trainWorkers,
		TrainQueue:      *trainQueue,
		CacheSize:       *cacheSize,
		DrainGrace:      *drainGrace,
		Budget:          budgetFlags.Budget,
		BudgetDelta:     budgetFlags.Delta,
		BudgetLedger:    budgetFlags.Path,
		HistoryEvery:    *historyEvery,
		HistoryCapacity: *historyCap,
		AlertRules:      rules,
		ProfileDir:      obsFlags.ProfileDir,
		ProfileKeep:     obsFlags.ProfileKeep,
		Registry:        reg,
		Observer:        stack.Observer,
		Logf:            logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}
	if stack.Debug != nil && stack.Sampler == nil {
		// Surface the daemon's own history on the debug listener too. When
		// -stats-every ran a cliutil sampler, its handlers already own these
		// debug-mux patterns; the API listener serves this sampler either way.
		stack.Debug.Handle("GET /v1/stats", history.StatsHandler(srv.History()))
		stack.Debug.Handle("GET /v1/alerts", history.AlertsHandler(srv.History()))
	}
	if *graphsDir != "" {
		if err := preloadGraphs(srv, *graphsDir, logger); err != nil {
			logger.Fatal(err)
		}
	}
	if *journalDir != "" {
		// Replay the persisted job table after graphs are loaded: queued
		// jobs requeue, interrupted jobs resume from their last checkpoint,
		// unrecoverable ones are marked failed.
		requeued, failed := srv.RecoverJobs()
		if requeued+failed > 0 {
			logger.Printf("job recovery: %d requeued, %d unrecoverable", requeued, failed)
		}
	}

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// WriteTimeout backstops the per-route http.TimeoutHandler (with
		// headroom over -timeout so the 503 body still goes out), and
		// IdleTimeout reaps keep-alive connections a dead client left
		// behind — without these a stuck peer pins a connection forever.
		WriteTimeout: *queryTimeout + 10*time.Second,
		IdleTimeout:  2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("serving on http://%s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Printf("received %s, draining (timeout %s)", sig, *drainTimeout)
	case err := <-errc:
		logger.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop the listener and wait for in-flight HTTP first, then let the
	// job pool finish queued/running training.
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("http drain: %v", err)
	}
	if err := srv.Drain(ctx); err != nil {
		logger.Printf("job drain: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("serve: %v", err)
	}
	logger.Printf("drained, exiting")
}

// preloadGraphs stores every parseable edge-list file in dir under its
// base filename (extension stripped), mirroring the model preload.
func preloadGraphs(srv *serve.Server, dir string, logger *log.Logger) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	loaded := 0
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		path := filepath.Join(dir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			logger.Printf("skipping %s: %v", path, err)
			continue
		}
		name := de.Name()
		if ext := filepath.Ext(name); ext != "" {
			name = name[:len(name)-len(ext)]
		}
		info, err := srv.StoreGraph(name, data)
		if err != nil {
			logger.Printf("skipping %s: %v", path, err)
			continue
		}
		logger.Printf("graph %s loaded (|V|=%d |E|=%d fp=%s)", info.Name, info.Nodes, info.Edges, info.Fingerprint)
		loaded++
	}
	logger.Printf("loaded %d graph(s) from %s", loaded, dir)
	return nil
}
