package main

import (
	"fmt"
	"io"

	"privim/internal/audit"
	"privim/internal/dataset"
	"privim/internal/expt"
	core "privim/internal/privim"
)

// runAudit plays the DP distinguishing game against both the private and
// the non-private pipeline on the first configured dataset, reporting the
// attacker's accuracy and the empirical ε lower bound next to the
// accountant's guarantee.
func runAudit(s expt.Settings, w io.Writer) error {
	preset := dataset.Email
	if len(s.Datasets) > 0 {
		preset = s.Datasets[0]
	}
	ds, err := dataset.Generate(preset, dataset.Options{Scale: 0.15, Seed: s.Seed, InfluenceProb: 1})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Privacy audit on %s (|V|=%d): %d models per world\n",
		preset, ds.Graph.NumNodes(), 8)
	fmt.Fprintf(w, "%-14s %10s %14s %16s\n", "pipeline", "accuracy", "empirical-eps", "theoretical-eps")

	train := core.Config{
		Mode:         core.ModeDual,
		SubgraphSize: s.SubgraphSize,
		HiddenDim:    s.HiddenDim,
		Layers:       s.Layers,
		Iterations:   s.Iterations / 4,
		BatchSize:    s.BatchSize,
	}
	for _, eps := range []float64{1, 0} { // 0 = non-private
		tc := train
		tc.Epsilon = eps
		if eps == 0 {
			tc.Mode = core.ModeNonPrivate
		}
		rep, err := audit.Run(ds.Graph, audit.Config{
			Runs:   8,
			Target: -1,
			Train:  tc,
			Seed:   s.Seed,
		})
		if err != nil {
			return err
		}
		label := fmt.Sprintf("private eps=%g", eps)
		theo := fmt.Sprintf("%.3f", rep.TheoreticalEps)
		if eps == 0 {
			label = "non-private"
			theo = "inf"
		}
		fmt.Fprintf(w, "%-14s %10.3f %14.3f %16s\n", label, rep.Accuracy, rep.EmpiricalEpsLower, theo)
	}
	fmt.Fprintln(w, "A sound DP pipeline keeps empirical-eps below theoretical-eps;")
	fmt.Fprintln(w, "the non-private row shows what an unprotected pipeline leaks.")
	return nil
}
