// Command imbench runs the paper's experiment suite and prints the table
// or figure data it reproduces. Each subcommand regenerates one artifact
// of the evaluation section; "all" runs the whole suite.
//
// Usage:
//
//	imbench table1
//	imbench -scale 0.05 -repeats 3 fig5
//	imbench -datasets email,lastfm fig9
//	imbench -journal suite.jsonl -debug-addr localhost:6060 all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"privim/internal/cliutil"
	"privim/internal/dataset"
	"privim/internal/expt"
)

var commands = []string{
	"table1", "table2", "table3",
	"fig5", "fig5-friendster", "fig6", "fig7", "fig8", "fig9", "fig13", "fig14", "fig15",
	"ablation-mu", "ablation-bes", "ablation-steps", "ablation-accountant", "ldp", "solvers",
	"audit",
	"all",
}

func main() {
	var (
		scale    = flag.Float64("scale", 0, "dataset scale fraction (default: quick preset)")
		repeats  = flag.Int("repeats", 0, "repetitions per measurement")
		k        = flag.Int("k", 0, "seed set size")
		iters    = flag.Int("iters", 0, "training iterations")
		seed     = flag.Int64("seed", 1, "master seed")
		paper    = flag.Bool("paper", false, "paper-faithful settings (full scale, slow)")
		datasets = flag.String("datasets", "", "comma-separated preset subset")
		jsonPath = flag.String("json", "", "with 'all': also write machine-readable results to this JSON file")
		workers  = cliutil.RegisterWorkers(flag.CommandLine)
		obsFlags cliutil.ObserverFlags
	)
	obsFlags.Register(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: imbench [flags] <command>\ncommands: %s\nflags:\n", strings.Join(commands, " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	cliutil.ApplyWorkers(*workers)
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)

	s := expt.Quick()
	if *paper {
		s = expt.Paper()
	}
	if *scale > 0 {
		s.Scale = *scale
	}
	if *repeats > 0 {
		s.Repeats = *repeats
	}
	if *k > 0 {
		s.SeedSetSize = *k
	}
	if *iters > 0 {
		s.Iterations = *iters
	}
	s.Seed = *seed
	if *datasets != "" {
		s.Datasets = nil
		for _, name := range strings.Split(*datasets, ",") {
			s.Datasets = append(s.Datasets, dataset.Preset(strings.TrimSpace(name)))
		}
	}

	stack, err := obsFlags.Setup("imbench", nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imbench:", err)
		os.Exit(1)
	}
	s.Observer = stack.Observer

	if err := run(cmd, s, *jsonPath); err != nil {
		stack.Close()
		fmt.Fprintln(os.Stderr, "imbench:", err)
		os.Exit(1)
	}
	stack.Close()
}

func run(cmd string, s expt.Settings, jsonPath string) error {
	w := os.Stdout
	switch cmd {
	case "table1":
		_, err := expt.RunTableI(s, w)
		return err
	case "table2":
		_, err := expt.RunTableII(s, w)
		return err
	case "table3":
		_, err := expt.RunTableIII(s, w)
		return err
	case "fig5":
		_, err := expt.RunFig5(s, w)
		return err
	case "fig5-friendster":
		_, err := expt.RunFig5Friendster(s, 4, 400, w)
		return err
	case "fig6":
		_, err := expt.RunFig6(s, nil, nil, w)
		return err
	case "fig7":
		_, err := expt.RunFig7(s, nil, w)
		return err
	case "fig8":
		_, err := expt.RunFig8(s, 3, 0, nil, w)
		return err
	case "fig9":
		_, err := expt.RunFig9(s, w)
		return err
	case "fig13":
		_, err := expt.RunFig13(s, nil, w)
		return err
	case "fig14":
		// Appendix J: the HepPh panel of the spread-vs-epsilon sweep.
		s.Datasets = []dataset.Preset{dataset.HepPh}
		_, err := expt.RunFig5(s, w)
		return err
	case "fig15":
		for _, eps := range []float64{1, 6} {
			if _, err := expt.RunFig8(s, eps, 0, nil, w); err != nil {
				return err
			}
		}
		return nil
	case "ablation-mu":
		_, err := expt.RunAblationDecay(s, nil, w)
		return err
	case "ablation-bes":
		_, err := expt.RunAblationBESDivisor(s, nil, w)
		return err
	case "ablation-steps":
		_, err := expt.RunAblationDiffusionSteps(s, nil, w)
		return err
	case "ablation-accountant":
		_, err := expt.RunAblationAccountant(s, w)
		return err
	case "ldp":
		_, err := expt.RunLDPComparison(s, w)
		return err
	case "solvers":
		_, err := expt.RunSolverComparison(s, w)
		return err
	case "audit":
		return runAudit(s, w)
	case "all":
		if jsonPath != "" {
			// Assembled run: one pass that also produces the JSON artifact,
			// plus the runners RunAll doesn't cover.
			res, err := expt.RunAll(s, w)
			if err != nil {
				return err
			}
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := res.WriteJSON(f); err != nil {
				return err
			}
			fmt.Fprintf(w, "\nJSON results written to %s\n", jsonPath)
			for _, c := range []string{"fig5-friendster", "fig15", "ablation-mu", "ablation-bes", "ablation-steps", "ablation-accountant", "ldp", "solvers", "audit"} {
				fmt.Fprintf(w, "\n===== %s =====\n", c)
				if err := run(c, s, ""); err != nil {
					return fmt.Errorf("%s: %w", c, err)
				}
			}
			return nil
		}
		for _, c := range commands {
			if c == "all" {
				continue
			}
			fmt.Fprintf(w, "\n===== %s =====\n", c)
			if err := run(c, s, ""); err != nil {
				return fmt.Errorf("%s: %w", c, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q (want one of %s)", cmd, strings.Join(commands, " "))
	}
}
