// Command tracecat converts PrivIM JSONL run journals into Chrome
// trace-event JSON, the format Perfetto (https://ui.perfetto.dev) and
// chrome://tracing open directly:
//
//	tracecat run.jsonl > trace.json
//	tracecat -o trace.json run1.jsonl run2.jsonl
//	tracecat -trace 9f8e7d6c5b4a3f21 jobs/job-0001.jsonl > trace.json
//	tracecat -check trace.json
//
// With no file arguments the journal is read from stdin. Multiple
// journals are concatenated before conversion (timestamps are rebased
// to the earliest record), which is how a server journal and a per-job
// journal are merged into one timeline. -trace keeps only the records
// of one trace ID — the value of the X-Privim-Trace response header or
// a job's "trace" field. -check validates an already-converted trace
// file instead of converting, for use in CI smoke tests.
//
// Journals that carry alert history (alert_fired / alert_resolved
// records from the -stats-every sampler or the daemon's alert engine)
// convert too: each alert becomes a global instant event on the
// timeline, labeled with the rule name and carrying the metric, value,
// threshold, and any captured profile path in its args.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"privim/internal/obs"
)

func main() {
	out := flag.String("o", "", "write trace JSON to this file instead of stdout")
	traceID := flag.String("trace", "", "keep only records of this trace ID")
	check := flag.Bool("check", false, "validate trace-event JSON files instead of converting")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: tracecat [-o out.json] [-trace id] [journal.jsonl ...]\n"+
				"       tracecat -check [trace.json ...]\n\n"+
				"Converts PrivIM JSONL run journals to Chrome trace-event JSON\n"+
				"(open in https://ui.perfetto.dev or chrome://tracing).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *check {
		if err := runCheck(flag.Args()); err != nil {
			fmt.Fprintf(os.Stderr, "tracecat: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := runConvert(flag.Args(), *out, *traceID); err != nil {
		fmt.Fprintf(os.Stderr, "tracecat: %v\n", err)
		os.Exit(1)
	}
}

// runConvert concatenates the journals (stdin when none) and writes one
// trace-event document.
func runConvert(journals []string, out, traceID string) error {
	var readers []io.Reader
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	if len(journals) == 0 {
		readers = append(readers, os.Stdin)
	}
	for _, path := range journals {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		readers = append(readers, f)
	}

	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return obs.WriteChromeTrace(io.MultiReader(readers...), w, traceID)
}

// runCheck validates each trace file (stdin when none).
func runCheck(files []string) error {
	if len(files) == 0 {
		return obs.ValidateChromeTrace(os.Stdin)
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = obs.ValidateChromeTrace(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s: ok\n", path)
	}
	return nil
}
