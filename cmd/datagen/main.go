// Command datagen generates the surrogate benchmark datasets as edge-list
// files, with statistics matched to the paper's Table I.
//
// Usage:
//
//	datagen -preset gowalla -scale 0.05 -seed 1 -out gowalla.edges
//	datagen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"privim/internal/dataset"
	"privim/internal/graph"
)

func main() {
	var (
		preset = flag.String("preset", "email", "dataset preset (email, bitcoin, lastfm, hepph, facebook, gowalla)")
		scale  = flag.Float64("scale", 1.0, "fraction of the paper-scale node count")
		seed   = flag.Int64("seed", 1, "generation seed")
		prob   = flag.Float64("p", 1.0, "uniform influence probability (0 = weighted cascade)")
		out    = flag.String("out", "", "output edge-list path (default stdout)")
		list   = flag.Bool("list", false, "list presets and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("preset      |V|(paper)  directed  avg-degree  model")
		for _, p := range dataset.AllPresets() {
			spec, _ := dataset.SpecFor(p)
			fmt.Printf("%-10s %10d %9v %11.2f  %s\n", spec.Name, spec.Nodes, spec.Directed, spec.AvgDegree, spec.Model)
		}
		return
	}

	ds, err := dataset.Generate(dataset.Preset(*preset), dataset.Options{
		Scale: *scale, Seed: *seed, InfluenceProb: *prob,
	})
	if err != nil {
		fatal(err)
	}
	st := ds.Graph.ComputeStats()
	fmt.Fprintf(os.Stderr, "generated %s: |V|=%d |E|=%d avg-degree=%.2f directed=%v\n",
		*preset, st.Nodes, st.Edges, st.AvgDegree, st.Directed)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, ds.Graph); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
